lib/model/model.mli: Format Muir_rtl
