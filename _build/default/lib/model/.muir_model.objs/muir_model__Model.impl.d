lib/model/model.ml: Float Fmt List Muir_rtl String
