(** Synthesis models: FPGA (Arria-10-class) and ASIC (28 nm) area,
    frequency and power estimates from the component-level design.
    Replaces the paper's Quartus / Synopsys DC runs (see DESIGN.md);
    per-primitive costs are calibrated to Table 2's bands, and all
    relative orderings derive from circuit structure. *)

type fpga_report = {
  fr_mhz : float;
  fr_mw : float;
  fr_alms : int;
  fr_regs : int;
  fr_dsps : int;
  fr_brams : int;
}

type asic_report = {
  ar_ghz : float;
  ar_mw : float;
  ar_area : float;  (** 10^3 µm² of logic at 28 nm (SRAM excluded) *)
}

val fpga : Muir_rtl.Rtl.design -> fpga_report
val asic : Muir_rtl.Rtl.design -> asic_report

val pp_fpga : Format.formatter -> fpga_report -> unit
val pp_asic : Format.formatter -> asic_report -> unit
