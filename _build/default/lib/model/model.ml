(** Synthesis models: estimate FPGA (Arria-10-class) and ASIC (28 nm)
    area, frequency and power from the component-level design.

    This replaces the paper's Quartus and Synopsys DC runs (see the
    substitution table in DESIGN.md).  Per-primitive costs are
    calibrated so baseline accelerators land in the bands Table 2
    reports (FPGA 200–500 MHz / 0.5–1.5 W, ASIC 1.6–2.5 GHz /
    17–150 mW); relative ordering between designs derives entirely
    from circuit structure.  Frequency is the reciprocal of the worst
    per-stage combinational delay — every stage is registered in the
    dataflow, so fused chains are the main lever on the critical
    path (which is why op fusion is delay-bounded). *)

open Muir_rtl.Rtl

(** Per-component FPGA costs. *)
type fpga_cost = {
  alms : int;
  regs : int;
  dsps : int;
  brams : int;
  delay_ns : float;  (** per-stage combinational delay *)
}

(* Raw combinational delay per op (ns at our FPGA node); one adder
   unit = 1.55 ns.  A component's stage delay adds the per-stage
   handshake/routing overhead once — which is exactly what fusing a
   chain into one stage group saves. *)
let stage_overhead = 0.65

let alu_raw (op : string) ~(bits : int) : float =
  let scale = float_of_int bits /. 32.0 in
  let adder = 1.55 in
  if String.length op >= 4 && String.sub op 0 4 = "icmp" then
    0.9 *. adder *. scale
  else
    match op with
    | "add" | "sub" | "gep*1" -> adder *. scale
    | "and" | "or" | "xor" -> 0.35 *. adder
    | "shl" | "lshr" | "ashr" -> 0.5 *. adder
    | "select" | "ident" -> 0.4 *. adder
    | _ -> 0.8 *. adder

let alu_delay (op : string) ~(bits : int) : float =
  alu_raw op ~bits +. stage_overhead

let fpga_cost (p : prim) : fpga_cost =
  let z = { alms = 0; regs = 0; dsps = 0; brams = 0; delay_ns = 0.5 } in
  match p with
  | Preg { bits } -> { z with regs = bits; alms = bits / 10; delay_ns = 0.6 }
  | Pfifo { bits; depth } ->
    { z with regs = bits; alms = (bits * depth / 6) + 8; delay_ns = 1.2 }
  | Pqueue { bits; depth } ->
    { z with regs = bits; alms = (bits * depth / 6) + 20; delay_ns = 2.4 }
  | Palu { op; bits } ->
    let alms =
      match op with
      | "and" | "or" | "xor" -> bits / 3
      | "shl" | "lshr" | "ashr" -> bits / 2
      | "select" | "ident" -> bits / 4
      | _ -> bits / 2 + 6
    in
    { z with alms; delay_ns = alu_delay op ~bits }
  | Pchain { ops; bits } ->
    let alms =
      List.fold_left (fun a _op -> a + (bits / 2) + 4) 0 ops
    in
    (* The technology mapper packs a chained ALU group into shared
       LUT/carry structures, so the group's delay is sub-additive. *)
    let delay =
      stage_overhead
      +. (0.72
          *. List.fold_left (fun d op -> d +. alu_raw op ~bits) 0.0 ops)
    in
    { z with alms; delay_ns = delay }
  | Pmul { bits } -> { z with dsps = (bits + 17) / 18; alms = 30; delay_ns = 2.6 }
  | Pdiv { bits } -> { z with alms = bits * 14; delay_ns = 2.9 }
  | Pfpu { op } -> (
    match op with
    | "fexp" | "fsqrt" -> { z with alms = 900; dsps = 2; regs = 700; delay_ns = 2.4 }
    | "fmul" -> { z with alms = 220; dsps = 1; regs = 260; delay_ns = 2.2 }
    | _ -> { z with alms = 420; regs = 320; delay_ns = 2.2 })
  | Ptensor { shape_words; op } ->
    if op = "tensor.mul" then
      { z with dsps = 3 * shape_words; alms = 340; regs = 420; delay_ns = 1.9 }
    else { z with alms = 90 * shape_words; regs = 200; delay_ns = 1.6 }
  | Pmux { ways; bits } ->
    let lg = int_of_float (Float.ceil (Float.log2 (float_of_int (max 2 ways)))) in
    { z with alms = bits * lg / 3;
      delay_ns = 0.8 +. (0.3 *. float_of_int lg) }
  | Pdemux { ways; bits } ->
    { z with alms = bits * ways / 6; delay_ns = 0.9 }
  | Parbiter { ways } ->
    (* log-depth round-robin arbitration tree *)
    let lg = Float.log2 (float_of_int (max 2 ways)) in
    { z with alms = 12 * ways; delay_ns = 0.9 +. (0.35 *. lg) }
  | Psram { words; width_bits; ports } ->
    (* capacity is [words] 32-bit words regardless of access width *)
    ignore width_bits;
    { z with
      brams = max 1 (words * 32 / 20_000) * ports;
      alms = 25;
      delay_ns = 2.0 }
  | Ptag { entries } -> { z with alms = entries / 2 + 30; delay_ns = 2.2 }
  | Pcrossbar { ins; outs; bits } ->
    let lg = Float.log2 (float_of_int (max 2 (ins * outs))) in
    { z with alms = ins * outs * bits / 10;
      delay_ns = 1.0 +. (0.3 *. lg) }
  | Pctrl { kind } -> (
    match kind with
    | "hs" | "merge" | "mu" | "steer" -> { z with alms = 5; regs = 4; delay_ns = 0.9 }
    | "databox" -> { z with alms = 45; regs = 50; delay_ns = 1.8 }
    | "databox.t" -> { z with alms = 90; regs = 90; delay_ns = 1.9 }
    | "taskport" -> { z with alms = 60; regs = 70; delay_ns = 2.6 }
    | "join" -> { z with alms = 35; regs = 30; delay_ns = 2.2 }
    | "port" -> { z with alms = 8; regs = 6; delay_ns = 0.8 }
    | "dma" -> { z with alms = 160; regs = 150; delay_ns = 2.0 }
    | "axi" -> { z with alms = 420; regs = 500; delay_ns = 2.2 }
    | "tensor.seq" -> { z with alms = 70; regs = 40; delay_ns = 1.6 }
    | k when String.length k >= 5 && String.sub k 0 5 = "cache" ->
      { z with alms = 380; regs = 300; delay_ns = 2.5 }
    | _ -> { z with alms = 20; regs = 15; delay_ns = 1.2 })

type fpga_report = {
  fr_mhz : float;
  fr_mw : float;
  fr_alms : int;
  fr_regs : int;
  fr_dsps : int;
  fr_brams : int;
}

type asic_report = {
  ar_ghz : float;
  ar_mw : float;
  ar_area : float;  (** 10^3 µm² of logic+SRAM at 28 nm *)
}

(** FPGA synthesis estimate. *)
let fpga (d : design) : fpga_report =
  let alms = ref 0 and regs = ref 0 and dsps = ref 0 and brams = ref 0 in
  let crit = ref 0.0 in
  List.iter
    (fun c ->
      let k = fpga_cost c.prim in
      alms := !alms + k.alms;
      regs := !regs + k.regs;
      dsps := !dsps + k.dsps;
      brams := !brams + k.brams;
      if k.delay_ns > !crit then crit := k.delay_ns)
    d.comps;
  (* Interconnect penalty grows slowly with design size. *)
  let wire = 0.55 +. (0.04 *. Float.log (float_of_int (1 + !alms))) in
  let mhz = 1000.0 /. (!crit +. wire) in
  let dynamic =
    (float_of_int !alms *. 0.055)
    +. (float_of_int !regs *. 0.035)
    +. (float_of_int !dsps *. 11.0)
    +. (float_of_int !brams *. 7.0)
  in
  let mw = 420.0 +. (dynamic *. (mhz /. 400.0)) in
  { fr_mhz = mhz; fr_mw = mw; fr_alms = !alms; fr_regs = !regs;
    fr_dsps = !dsps; fr_brams = !brams }

(** ASIC (28 nm) synthesis estimate, derived from the same component
    walk: standard cells are ~4x faster than FPGA fabric and far
    denser; SRAM macros dominate area. *)
let asic (d : design) : asic_report =
  let area = ref 0.0 and crit = ref 0.0 and cap = ref 0.0 in
  List.iter
    (fun c ->
      let k = fpga_cost c.prim in
      (* Logic area only, in µm² — the paper's ASIC area column
         excludes the SRAM macros (64 KB alone would dwarf the
         reported figures).  One ALM of logic is a handful of 28 nm
         standard cells (~6 µm²); a flop ~2.5 µm²; a DSP-mapped
         multiplier ~800 µm². *)
      area :=
        !area
        +. (float_of_int k.alms *. 6.0)
        +. (float_of_int k.regs *. 2.5)
        +. (float_of_int k.dsps *. 800.0);
      cap :=
        !cap
        +. (float_of_int k.alms *. 0.004)
        +. (float_of_int k.regs *. 0.003)
        +. (float_of_int k.dsps *. 0.8);
      if k.delay_ns > !crit then crit := k.delay_ns)
    d.comps;
  let ghz = Float.min 2.5 (5.0 /. (!crit +. 0.6)) in
  let mw = 3.0 +. (0.6 *. !cap *. ghz) in
  { ar_ghz = ghz; ar_mw = mw; ar_area = !area /. 1000.0 }

let pp_fpga ppf (r : fpga_report) =
  Fmt.pf ppf "%4.0f MHz %5.0f mW %6d ALMs %6d regs %3d DSP %3d BRAM"
    r.fr_mhz r.fr_mw r.fr_alms r.fr_regs r.fr_dsps r.fr_brams

let pp_asic ppf (r : asic_report) =
  Fmt.pf ppf "%5.1f kum2 %5.1f mW %4.2f GHz" r.ar_area r.ar_mw r.ar_ghz
