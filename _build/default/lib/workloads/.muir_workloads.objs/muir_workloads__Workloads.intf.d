lib/workloads/workloads.mli: Muir_ir
