lib/workloads/workloads.ml: Data Fmt List Muir_frontend Muir_ir
