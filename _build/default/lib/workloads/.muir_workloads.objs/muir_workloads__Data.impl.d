lib/workloads/data.ml: Array Float Int64 List Muir_ir
