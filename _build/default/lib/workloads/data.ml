(** Deterministic dataset generation for the workloads (a fixed LCG,
    so every run of every substrate sees identical data). *)

open Muir_ir.Types

type gen = { mutable state : int64 }

let create seed = { state = Int64.of_int (seed * 2654435761 + 12345) }

let next (g : gen) : int64 =
  g.state <-
    Int64.add (Int64.mul g.state 6364136223846793005L) 1442695040888963407L;
  Int64.shift_right_logical g.state 17

(** Uniform float in [lo, hi). *)
let float_in (g : gen) lo hi =
  let u =
    Int64.to_float (Int64.logand (next g) 0xFFFFFFL) /. 16777216.0
  in
  lo +. (u *. (hi -. lo))

let int_in (g : gen) lo hi =
  lo + Int64.to_int (Int64.rem (next g) (Int64.of_int (hi - lo)))

let floats ?(seed = 1) ?(lo = -1.0) ?(hi = 1.0) n : value array =
  let g = create seed in
  Array.init n (fun _ -> VFloat (float_in g lo hi))

let ints_arr (l : int list) : value array =
  Array.of_list (List.map vint l)

let floats_arr (l : float list) : value array =
  Array.of_list (List.map (fun f -> VFloat f) l)

(** Bit reversal permutation table for an [n]-point FFT. *)
let bitrev_table n : value array =
  let bits =
    int_of_float (Float.round (Float.log2 (float_of_int n)))
  in
  Array.init n (fun i ->
      let r = ref 0 in
      for b = 0 to bits - 1 do
        if i land (1 lsl b) <> 0 then r := !r lor (1 lsl (bits - 1 - b))
      done;
      vint !r)

(** Per-stage twiddle steps for an [n]-point FFT: stage [s] uses
    w_len = exp(-2πi / 2^(s+1)). *)
let twiddle_steps n : value array * value array =
  let stages =
    int_of_float (Float.round (Float.log2 (float_of_int n)))
  in
  let wr =
    Array.init stages (fun s ->
        VFloat (Float.cos (-2.0 *. Float.pi /. float_of_int (1 lsl (s + 1)))))
  in
  let wi =
    Array.init stages (fun s ->
        VFloat (Float.sin (-2.0 *. Float.pi /. float_of_int (1 lsl (s + 1)))))
  in
  (wr, wi)

(** Full twiddle ROM for an [n]-point FFT: W_n^k = exp(-2πik/n) for
    k in [0, n/2). *)
let twiddle_table n : value array * value array =
  let half = n / 2 in
  let wr =
    Array.init half (fun k ->
        VFloat (Float.cos (-2.0 *. Float.pi *. float_of_int k
                           /. float_of_int n)))
  in
  let wi =
    Array.init half (fun k ->
        VFloat (Float.sin (-2.0 *. Float.pi *. float_of_int k
                           /. float_of_int n)))
  in
  (wr, wi)

(** CSR sparse matrix with [nnz_per_row] entries per row. *)
let csr ?(seed = 7) ~rows ~cols ~nnz_per_row () :
    value array * value array * value array =
  let g = create seed in
  let rowptr = Array.init (rows + 1) (fun r -> vint (r * nnz_per_row)) in
  let colidx =
    Array.init (rows * nnz_per_row) (fun _ -> vint (int_in g 0 cols))
  in
  let vals =
    Array.init (rows * nnz_per_row) (fun _ -> VFloat (float_in g (-1.0) 1.0))
  in
  (rowptr, colidx, vals)
