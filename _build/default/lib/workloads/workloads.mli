(** The benchmark programs of the paper's evaluation: Polybench /
    Machsuite loop nests, the Cilk task-parallel set, Tensorflow-
    derived layers, and the in-house tensor kernels — written in the
    mini-language with deterministic datasets. *)

type category = Poly | Cilk | Tf | Inhouse

val category_to_string : category -> string

type t = {
  wname : string;
  category : category;
  fp : bool;          (** floating-point workload (Table 2's F marker) *)
  tensor : bool;      (** tensor-intrinsic workload ([T] marker) *)
  source : string;    (** mini-language program text *)
  inits : (string * Muir_ir.Types.value array) list;
  outputs : string list;  (** arrays checked against the golden model *)
  description : string;
}

val all : t list
(** Every bundled workload (22). *)

val find : string -> t
(** @raise Invalid_argument for unknown names *)

val program : t -> Muir_ir.Program.t
(** Compile the workload and attach its dataset. *)
