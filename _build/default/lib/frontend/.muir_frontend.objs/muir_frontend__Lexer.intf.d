lib/frontend/lexer.mli: Ast Format
