lib/frontend/lexer.ml: Ast Fmt Int64 List String
