lib/frontend/frontend.ml: Ast Fmt Lexer Lower Muir_ir Parser Typecheck
