lib/frontend/parser.ml: Ast Fmt Int64 Lexer List
