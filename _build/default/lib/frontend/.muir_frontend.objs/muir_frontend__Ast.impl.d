lib/frontend/ast.ml: Fmt List
