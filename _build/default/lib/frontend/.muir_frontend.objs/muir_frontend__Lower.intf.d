lib/frontend/lower.mli: Ast Muir_ir
