lib/frontend/typecheck.mli: Ast
