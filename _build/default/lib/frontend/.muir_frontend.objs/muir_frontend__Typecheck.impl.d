lib/frontend/typecheck.ml: Ast Fmt Int64 List Map String
