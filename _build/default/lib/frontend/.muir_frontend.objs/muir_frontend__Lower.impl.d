lib/frontend/lower.ml: Ast Fmt List Map Muir_ir Option Set String Typecheck
