lib/frontend/frontend.mli: Muir_ir
