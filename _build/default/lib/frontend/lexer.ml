(** Hand-written lexer for the mini-language. *)

type token =
  | INT of int64
  | FLOAT of float
  | IDENT of string
  | KW of string       (** keyword *)
  | PUNCT of string    (** operator / punctuation *)
  | EOF

let pp_token ppf = function
  | INT i -> Fmt.pf ppf "int %Ld" i
  | FLOAT f -> Fmt.pf ppf "float %g" f
  | IDENT s -> Fmt.pf ppf "ident %s" s
  | KW s -> Fmt.pf ppf "keyword %s" s
  | PUNCT s -> Fmt.pf ppf "'%s'" s
  | EOF -> Fmt.string ppf "<eof>"

exception Error of string * Ast.pos

let keywords =
  [ "global"; "func"; "int"; "float"; "bool"; "tile"; "void"; "true";
    "false"; "if"; "else"; "for"; "parallel_for"; "while"; "spawn";
    "sync"; "return" ]

type t = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable bol : int;  (** offset of beginning of current line *)
}

let create src = { src; pos = 0; line = 1; bol = 0 }

let position (lx : t) : Ast.pos = { line = lx.line; col = lx.pos - lx.bol + 1 }

let peek_char (lx : t) =
  if lx.pos < String.length lx.src then Some lx.src.[lx.pos] else None

let advance (lx : t) =
  (match peek_char lx with
  | Some '\n' ->
    lx.line <- lx.line + 1;
    lx.bol <- lx.pos + 1
  | _ -> ());
  lx.pos <- lx.pos + 1

let is_digit c = c >= '0' && c <= '9'
let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || is_digit c

let rec skip_ws (lx : t) =
  match peek_char lx with
  | Some (' ' | '\t' | '\r' | '\n') ->
    advance lx;
    skip_ws lx
  | Some '/' when lx.pos + 1 < String.length lx.src && lx.src.[lx.pos + 1] = '/'
    ->
    while peek_char lx <> None && peek_char lx <> Some '\n' do advance lx done;
    skip_ws lx
  | Some '/' when lx.pos + 1 < String.length lx.src && lx.src.[lx.pos + 1] = '*'
    ->
    advance lx; advance lx;
    let rec close () =
      match peek_char lx with
      | None -> raise (Error ("unterminated comment", position lx))
      | Some '*' when lx.pos + 1 < String.length lx.src
                      && lx.src.[lx.pos + 1] = '/' ->
        advance lx; advance lx
      | Some _ -> advance lx; close ()
    in
    close ();
    skip_ws lx
  | _ -> ()

let lex_number (lx : t) : token =
  let start = lx.pos in
  while (match peek_char lx with Some c -> is_digit c | None -> false) do
    advance lx
  done;
  let is_float =
    match peek_char lx with
    | Some '.' when lx.pos + 1 < String.length lx.src
                    && is_digit lx.src.[lx.pos + 1] ->
      advance lx;
      while (match peek_char lx with Some c -> is_digit c | None -> false) do
        advance lx
      done;
      true
    | _ -> false
  in
  let is_float =
    match peek_char lx with
    | Some ('e' | 'E') ->
      advance lx;
      (match peek_char lx with
      | Some ('+' | '-') -> advance lx
      | _ -> ());
      while (match peek_char lx with Some c -> is_digit c | None -> false) do
        advance lx
      done;
      true
    | _ -> is_float
  in
  let text = String.sub lx.src start (lx.pos - start) in
  if is_float then FLOAT (float_of_string text)
  else INT (Int64.of_string text)

let two_char_puncts =
  [ "=="; "!="; "<="; ">="; "&&"; "||"; "<<"; ">>" ]

(** Next token together with its source position. *)
let next (lx : t) : token * Ast.pos =
  skip_ws lx;
  let pos = position lx in
  match peek_char lx with
  | None -> (EOF, pos)
  | Some c when is_digit c -> (lex_number lx, pos)
  | Some c when is_ident_start c ->
    let start = lx.pos in
    while
      (match peek_char lx with Some c -> is_ident_char c | None -> false)
    do
      advance lx
    done;
    let text = String.sub lx.src start (lx.pos - start) in
    if List.mem text keywords then (KW text, pos) else (IDENT text, pos)
  | Some c ->
    let two =
      if lx.pos + 1 < String.length lx.src then
        String.sub lx.src lx.pos 2
      else ""
    in
    if List.mem two two_char_puncts then begin
      advance lx; advance lx;
      (PUNCT two, pos)
    end
    else begin
      match c with
      | '+' | '-' | '*' | '/' | '%' | '&' | '|' | '^' | '<' | '>' | '='
      | '!' | '(' | ')' | '{' | '}' | '[' | ']' | ';' | ',' | '?' | ':' ->
        advance lx;
        (PUNCT (String.make 1 c), pos)
      | _ ->
        raise (Error (Fmt.str "unexpected character %C" c, pos))
    end

(** Tokenize the whole input (for tests). *)
let tokenize (src : string) : (token * Ast.pos) list =
  let lx = create src in
  let rec go acc =
    let t, p = next lx in
    if t = EOF then List.rev ((t, p) :: acc) else go ((t, p) :: acc)
  in
  go []
