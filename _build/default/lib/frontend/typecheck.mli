(** Type checker and elaborator. *)

exception Error of string * Ast.pos

type fsig = { sparams : Ast.ty list; sret : Ast.ty }
(** A function's signature, as seen by callers. *)

type genv = {
  globals : (string * Ast.ty) list;  (** element types *)
  funcs : (string * fsig) list;
}
(** The global typing environment. *)

val check : Ast.program -> Ast.program
(** Validate the program and return an elaborated copy in which the
    implicit conversions the surface syntax allows (integer literals in
    float positions) have been made explicit, so lowering never
    coerces.
    @raise Error with a message and source position *)
