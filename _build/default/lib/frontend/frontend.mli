(** Front-end entry point: mini-language source text to verified IR. *)

val compile : ?optimize:bool -> string -> Muir_ir.Program.t
(** Compile source to a verified (and, by default, cleanup-optimized)
    IR program.
    @raise Lexer.Error on malformed tokens
    @raise Parser.Error on syntax errors
    @raise Typecheck.Error on type errors *)

val describe_error : exn -> string option
(** Human-readable rendering of any front-end exception; [None] for
    exceptions the front-end does not own. *)
