(** Lowering from the elaborated AST to the SSA compiler IR.

    Structured-control-flow SSA construction: if-joins and loop
    headers get phis for exactly the variables assigned on the joining
    paths; every loop records {!Muir_ir.Func.loop_info} metadata for
    the μIR task extraction; [parallel_for] bodies are outlined into
    fresh spawned functions (the TAPIR shape). *)

exception Error of string * Ast.pos

val lower : Ast.program -> Muir_ir.Program.t
(** Lower a checked AST program (see {!Typecheck.check}).
    @raise Error on constructs the lowering does not support *)
