(** Lowering from the elaborated AST to the SSA compiler IR.

    The lowering is structured-control-flow SSA construction: every
    merge point (if-joins and loop headers) gets phis for exactly the
    variables assigned on the joining paths, so no later mem2reg pass
    is needed.  Each loop records {!Muir_ir.Func.loop_info} metadata
    that Algorithm 1 (μIR task extraction) consumes.

    [parallel_for] loops are outlined here: the body becomes a fresh
    function taking the induction variable and the body's free scalars
    as parameters; the loop itself spawns that function per iteration
    and a [sync] is placed after the loop — the TAPIR shape. *)

open Ast
module I = Muir_ir.Instr
module T = Muir_ir.Types
module B = Muir_ir.Builder
module F = Muir_ir.Func
module P = Muir_ir.Program

exception Error of string * pos

let fail pos fmt = Fmt.kstr (fun m -> raise (Error (m, pos))) fmt

let ir_ty : Ast.ty -> T.ty = function
  | Tint -> T.i32
  | Tfloat -> T.TFloat
  | Tbool -> T.TBool
  | Ttile -> T.TTensor { rows = 2; cols = 2 }
  | Tvoid -> T.TUnit

let tile_shape : T.shape = { rows = 2; cols = 2 }

module Env = Map.Make (String)
module SS = Set.Make (String)

type binding = { op : I.operand; bty : Ast.ty }

type ctx = {
  b : B.t;
  globals : (string * Ast.ty) list;
  mutable fsigs : (string * Typecheck.fsig) list;
  mutable extra : Ast.func list;  (** outlined bodies awaiting lowering *)
  gen_counter : int ref;          (** shared across the whole program *)
  fname : string;
  mutable depth : int;
  mutable terminated : bool;
}

(* ------------------------------------------------------------------ *)
(* Syntactic analyses over statement lists                             *)

(** Variables assigned by [stmts] that were declared outside of them. *)
let assigned_in (stmts : stmt list) : SS.t =
  let acc = ref SS.empty in
  let rec go_stmts declared stmts =
    ignore
      (List.fold_left
         (fun declared s -> go_stmt declared s)
         declared stmts)
  and go_stmt declared s =
    match s.s with
    | Sdecl (_, x, _) -> SS.add x declared
    | Sassign (x, _) ->
      if not (SS.mem x declared) then acc := SS.add x !acc;
      declared
    | Sif (_, t, e) ->
      go_stmts declared t;
      go_stmts declared e;
      declared
    | Sfor { init; step; body; _ } ->
      let declared' =
        match init with
        | Some { s = Sdecl (_, x, _); _ } -> SS.add x declared
        | Some ({ s = Sassign _; _ } as st) -> ignore (go_stmt declared st); declared
        | _ -> declared
      in
      go_stmts declared' body;
      (match step with Some st -> ignore (go_stmt declared' st) | None -> ());
      declared
    | Swhile (_, body) ->
      go_stmts declared body;
      declared
    | Sstore _ | Sspawn _ | Ssync | Sreturn _ | Sexpr _ -> declared
  in
  go_stmts SS.empty stmts;
  !acc

(** Free scalar variables read by [stmts] (reads of names not declared
    within, globals excluded by the caller). *)
let free_reads (stmts : stmt list) : SS.t =
  let acc = ref SS.empty in
  let rec go_expr declared e =
    match e.e with
    | Eint _ | Efloat _ | Ebool _ -> ()
    | Evar x -> if not (SS.mem x declared) then acc := SS.add x !acc
    | Eindex (_, i) -> go_expr declared i
    | Ebin (_, a, b2) -> go_expr declared a; go_expr declared b2
    | Eun (_, a) -> go_expr declared a
    | Eternary (c, a, b2) ->
      go_expr declared c; go_expr declared a; go_expr declared b2
    | Ecall (_, args) | Espawn (_, args) -> List.iter (go_expr declared) args
    | Ecast (_, a) -> go_expr declared a
  and go_stmts declared stmts =
    ignore (List.fold_left go_stmt declared stmts)
  and go_stmt declared s =
    match s.s with
    | Sdecl (_, x, e) ->
      go_expr declared e;
      SS.add x declared
    | Sassign (x, e) ->
      if not (SS.mem x declared) then acc := SS.add x !acc;
      go_expr declared e;
      declared
    | Sstore (_, i, e) ->
      go_expr declared i;
      go_expr declared e;
      declared
    | Sif (c, t, e) ->
      go_expr declared c;
      go_stmts declared t;
      go_stmts declared e;
      declared
    | Sfor { init; cond; step; body; _ } ->
      let declared' = List.fold_left go_stmt declared (Option.to_list init) in
      go_expr declared' cond;
      go_stmts declared' body;
      (match step with Some st -> ignore (go_stmt declared' st) | None -> ());
      declared
    | Swhile (c, body) ->
      go_expr declared c;
      go_stmts declared body;
      declared
    | Sspawn (_, args) ->
      List.iter (go_expr declared) args;
      declared
    | Ssync -> declared
    | Sreturn (Some e) -> go_expr declared e; declared
    | Sreturn None -> declared
    | Sexpr e -> go_expr declared e; declared
  in
  go_stmts SS.empty stmts;
  !acc

(* ------------------------------------------------------------------ *)
(* Expression lowering (always straight-line)                          *)

let rec lower_expr (ctx : ctx) (env : binding Env.t) (e : expr) :
    I.operand * Ast.ty =
  match e.e with
  | Eint i -> (I.CInt i, Tint)
  | Efloat f -> (I.CFloat f, Tfloat)
  | Ebool b -> (I.CBool b, Tbool)
  | Evar x -> (
    match Env.find_opt x env with
    | Some { op; bty } -> (op, bty)
    | None -> fail e.epos "lower: unbound variable %s" x)
  | Eindex (a, i) ->
    let addr = lower_addr ctx env a i in
    let elt = List.assoc a ctx.globals in
    (B.add ctx.b ~ty:(ir_ty elt) (I.Load { addr }), elt)
  | Ebin (op, a, b2) -> lower_bin ctx env e.epos op a b2
  | Eun (Uneg, a) -> (
    let va, ta = lower_expr ctx env a in
    match ta with
    | Tint -> (B.add ctx.b ~ty:T.i32 (I.Bin (Sub, CInt 0L, va)), Tint)
    | Tfloat -> (B.add ctx.b ~ty:T.TFloat (I.Funary (Fneg, va)), Tfloat)
    | _ -> fail e.epos "negation of non-numeric value")
  | Eun (Unot, a) ->
    let va, _ = lower_expr ctx env a in
    (B.add ctx.b ~ty:T.TBool (I.Bin (Xor, va, CInt 1L)), Tbool)
  | Eternary (c, a, b2) ->
    let vc, _ = lower_expr ctx env c in
    let va, ta = lower_expr ctx env a in
    let vb, _ = lower_expr ctx env b2 in
    (B.add ctx.b ~ty:(ir_ty ta) (I.Select (vc, va, vb)), ta)
  | Ecast (Tfloat, a) ->
    let va, _ = lower_expr ctx env a in
    (B.add ctx.b ~ty:T.TFloat (I.Cast (Sitofp, va)), Tfloat)
  | Ecast (Tint, a) -> (
    let va, ta = lower_expr ctx env a in
    match ta with
    | Tfloat -> (B.add ctx.b ~ty:T.i32 (I.Cast (Fptosi, va)), Tint)
    | Tbool -> (B.add ctx.b ~ty:T.i32 (I.Cast (Zext 32, va)), Tint)
    | _ -> (va, Tint))
  | Ecast (t, _) -> fail e.epos "lower: unsupported cast to %a" pp_ty t
  | Ecall (name, args) when is_intrinsic name ->
    lower_intrinsic ctx env e.epos name args
  | Ecall (name, args) ->
    let sg =
      match List.assoc_opt name ctx.fsigs with
      | Some s -> s
      | None -> fail e.epos "lower: unknown function %s" name
    in
    let vargs = List.map (fun a -> fst (lower_expr ctx env a)) args in
    ( B.add ctx.b ~ty:(ir_ty sg.sret) (I.Call { callee = name; args = vargs }),
      sg.sret )
  | Espawn (name, args) ->
    let sg =
      match List.assoc_opt name ctx.fsigs with
      | Some s -> s
      | None -> fail e.epos "lower: unknown function %s" name
    in
    let vargs = List.map (fun a -> fst (lower_expr ctx env a)) args in
    ( B.add ctx.b ~ty:(ir_ty sg.sret) (I.Spawn { callee = name; args = vargs }),
      sg.sret )

and lower_addr ctx env (a : string) (i : expr) : I.operand =
  let vi, _ = lower_expr ctx env i in
  B.add ctx.b ~ty:T.TPtr (I.Gep { base = GlobalAddr a; index = vi; scale = 1 })

and lower_bin ctx env pos (op : binop) a b2 : I.operand * Ast.ty =
  let va, ta = lower_expr ctx env a in
  let vb, _ = lower_expr ctx env b2 in
  let iadd k = (B.add ctx.b ~ty:T.i32 (I.Bin (k, va, vb)), Tint) in
  let fadd k = (B.add ctx.b ~ty:T.TFloat (I.Fbin (k, va, vb)), Tfloat) in
  let icmp k = (B.add ctx.b ~ty:T.TBool (I.Icmp (k, va, vb)), Tbool) in
  let fcmp k = (B.add ctx.b ~ty:T.TBool (I.Fcmp (k, va, vb)), Tbool) in
  match op, ta with
  | Badd, Tint -> iadd Add
  | Bsub, Tint -> iadd Sub
  | Bmul, Tint -> iadd Mul
  | Bdiv, Tint -> iadd Sdiv
  | Bmod, Tint -> iadd Srem
  | Badd, Tfloat -> fadd Fadd
  | Bsub, Tfloat -> fadd Fsub
  | Bmul, Tfloat -> fadd Fmul
  | Bdiv, Tfloat -> fadd Fdiv
  | Band, _ -> iadd And
  | Bor, _ -> iadd Or
  | Bxor, _ -> iadd Xor
  | Bshl, _ -> iadd Shl
  | Bshr, _ -> iadd Ashr
  | Blt, Tint -> icmp Slt
  | Ble, Tint -> icmp Sle
  | Bgt, Tint -> icmp Sgt
  | Bge, Tint -> icmp Sge
  | Beq, Tint -> icmp Eq
  | Bne, Tint -> icmp Ne
  | Blt, Tfloat -> fcmp Folt
  | Ble, Tfloat -> fcmp Fole
  | Bgt, Tfloat -> fcmp Fogt
  | Bge, Tfloat -> fcmp Foge
  | Beq, Tfloat -> fcmp Foeq
  | Bne, Tfloat -> fcmp Fone
  | Bland, _ ->
    (B.add ctx.b ~ty:T.TBool (I.Bin (And, va, vb)), Tbool)
  | Blor, _ ->
    (B.add ctx.b ~ty:T.TBool (I.Bin (Or, va, vb)), Tbool)
  | _ -> fail pos "lower: ill-typed binary operator"

and lower_intrinsic ctx env pos name args : I.operand * Ast.ty =
  let v1 () = fst (lower_expr ctx env (List.nth args 0)) in
  match name with
  | "exp" -> (B.add ctx.b ~ty:T.TFloat (I.Funary (Fexp, v1 ())), Tfloat)
  | "sqrt" -> (B.add ctx.b ~ty:T.TFloat (I.Funary (Fsqrt, v1 ())), Tfloat)
  | "abs" -> (B.add ctx.b ~ty:T.TFloat (I.Funary (Fabs, v1 ())), Tfloat)
  | "min" | "max" ->
    let a = fst (lower_expr ctx env (List.nth args 0)) in
    let b2 = fst (lower_expr ctx env (List.nth args 1)) in
    let pred = if name = "min" then I.Slt else I.Sgt in
    let c = B.add ctx.b ~ty:T.TBool (I.Icmp (pred, a, b2)) in
    (B.add ctx.b ~ty:T.i32 (I.Select (c, a, b2)), Tint)
  | "fmin" | "fmax" ->
    let a = fst (lower_expr ctx env (List.nth args 0)) in
    let b2 = fst (lower_expr ctx env (List.nth args 1)) in
    let pred = if name = "fmin" then I.Folt else I.Fogt in
    let c = B.add ctx.b ~ty:T.TBool (I.Fcmp (pred, a, b2)) in
    (B.add ctx.b ~ty:T.TFloat (I.Select (c, a, b2)), Tfloat)
  | "tload" -> (
    match args with
    | [ { e = Evar a; _ }; idx; stride ] ->
      let addr = lower_addr ctx env a idx in
      let vs, _ = lower_expr ctx env stride in
      ( B.add ctx.b ~ty:(T.TTensor tile_shape)
          (I.Tload { addr; row_stride = vs; shape = tile_shape }),
        Ttile )
    | _ -> fail pos "tload expects (array, index, stride)")
  | "tstore" -> (
    match args with
    | [ { e = Evar a; _ }; idx; stride; v ] ->
      let addr = lower_addr ctx env a idx in
      let vs, _ = lower_expr ctx env stride in
      let vv, _ = lower_expr ctx env v in
      B.add_unit ctx.b
        (I.Tstore { addr; row_stride = vs; value = vv; shape = tile_shape });
      (I.CInt 0L, Tvoid)
    | _ -> fail pos "tstore expects (array, index, stride, tile)")
  | "tmul" | "tadd" ->
    let a = fst (lower_expr ctx env (List.nth args 0)) in
    let b2 = fst (lower_expr ctx env (List.nth args 1)) in
    let k = if name = "tmul" then I.Tmul else I.Tadd in
    (B.add ctx.b ~ty:(T.TTensor tile_shape) (I.Tbin (k, a, b2)), Ttile)
  | "trelu" ->
    (B.add ctx.b ~ty:(T.TTensor tile_shape) (I.Tunary (Trelu, v1 ())), Ttile)
  | _ -> fail pos "lower: unknown intrinsic %s" name

(* ------------------------------------------------------------------ *)
(* Statement lowering                                                  *)

let reg_of = function I.Reg r -> r | _ -> invalid_arg "reg_of"

let rec lower_stmts ctx env stmts =
  List.fold_left
    (fun env s -> if ctx.terminated then env else lower_stmt ctx env s)
    env stmts

and lower_stmt (ctx : ctx) (env : binding Env.t) (s : stmt) : binding Env.t =
  match s.s with
  | Sdecl (ty, x, e) ->
    let op, _ = lower_expr ctx env e in
    Env.add x { op; bty = ty } env
  | Sassign (x, e) ->
    let op, _ = lower_expr ctx env e in
    let bty = (Env.find x env).bty in
    Env.add x { op; bty } env
  | Sstore (a, i, e) ->
    let addr = lower_addr ctx env a i in
    let v, _ = lower_expr ctx env e in
    B.add_unit ctx.b (I.Store { addr; value = v });
    env
  | Sif (c, thn, els) -> lower_if ctx env c thn els
  | Sfor { init; cond; step; body; parallel } ->
    if parallel then lower_parallel_for ctx env s.spos init cond step body
    else lower_for ctx env ~init ~cond ~step ~body ~parallel:false
  | Swhile (c, body) ->
    lower_for ctx env ~init:None ~cond:c ~step:None ~body ~parallel:false
  | Sspawn (name, args) ->
    let vargs = List.map (fun a -> fst (lower_expr ctx env a)) args in
    B.add_unit ctx.b (I.Spawn { callee = name; args = vargs });
    env
  | Ssync ->
    B.add_unit ctx.b I.Sync;
    env
  | Sreturn None ->
    B.set_term ctx.b (I.Ret None);
    ctx.terminated <- true;
    env
  | Sreturn (Some e) ->
    let v, _ = lower_expr ctx env e in
    B.set_term ctx.b (I.Ret (Some v));
    ctx.terminated <- true;
    env
  | Sexpr e ->
    ignore (lower_expr ctx env e);
    env

and lower_if ctx env c thn els =
  let vc, _ = lower_expr ctx env c in
  let then_l = B.new_block ctx.b in
  let else_l = B.new_block ctx.b in
  B.set_term ctx.b (I.CondBr (vc, then_l, else_l));
  B.position_at ctx.b then_l;
  ctx.terminated <- false;
  let env_t = lower_stmts ctx env thn in
  let t_end = B.current_label ctx.b in
  let t_term = ctx.terminated in
  B.position_at ctx.b else_l;
  ctx.terminated <- false;
  let env_e = lower_stmts ctx env els in
  let e_end = B.current_label ctx.b in
  let e_term = ctx.terminated in
  if t_term && e_term then begin
    ctx.terminated <- true;
    env
  end
  else begin
    let merge_l = B.new_block ctx.b in
    if not t_term then B.set_term_of ctx.b t_end (I.Br merge_l);
    if not e_term then B.set_term_of ctx.b e_end (I.Br merge_l);
    B.position_at ctx.b merge_l;
    ctx.terminated <- false;
    if t_term then env_e
    else if e_term then env_t
    else
      (* Merge: phi for outer-scope variables whose value differs. *)
      Env.mapi
        (fun x (outer : binding) ->
          let bt = Env.find x env_t and be = Env.find x env_e in
          if bt.op = be.op then bt
          else
            let op =
              B.add_phi ctx.b merge_l ~ty:(ir_ty outer.bty)
                [ (t_end, bt.op); (e_end, be.op) ]
            in
            { op; bty = outer.bty })
        env
  end

and lower_for ctx env ~init ~cond ~step ~body ~parallel =
  let env0 =
    match init with None -> env | Some st -> lower_stmt ctx env st
  in
  let pre_lbl = B.current_label ctx.b in
  let body_and_step = body @ Option.to_list step in
  let assigned =
    SS.filter (fun x -> Env.mem x env0) (assigned_in body_and_step)
  in
  let header = B.new_block ctx.b in
  B.set_term ctx.b (I.Br header);
  (* Header phis for loop-carried variables. *)
  let phis =
    SS.fold
      (fun x acc ->
        let bty = (Env.find x env0).bty in
        let op = B.add_phi ctx.b header ~ty:(ir_ty bty) [] in
        (x, op) :: acc)
      assigned []
  in
  let env_h =
    List.fold_left
      (fun e (x, op) -> Env.add x { op; bty = (Env.find x env0).bty } e)
      env0 phis
  in
  B.position_at ctx.b header;
  let vc, _ = lower_expr ctx env_h cond in
  let body_l = B.new_block ctx.b in
  B.position_at ctx.b body_l;
  ctx.depth <- ctx.depth + 1;
  let env_b = lower_stmts ctx env_h body in
  ctx.depth <- ctx.depth - 1;
  let body_end = B.current_label ctx.b in
  let latch = B.new_block ctx.b in
  B.set_term_of ctx.b body_end (I.Br latch);
  B.position_at ctx.b latch;
  let env_l =
    match step with None -> env_b | Some st -> lower_stmt ctx env_b st
  in
  B.set_term ctx.b (I.Br header);
  let exit = B.new_block ctx.b in
  B.set_term_of ctx.b header (I.CondBr (vc, body_l, exit));
  List.iter
    (fun (x, op) ->
      B.set_phi_incoming ctx.b header (reg_of op)
        [ (pre_lbl, (Env.find x env0).op); (latch, (Env.find x env_l).op) ])
    phis;
  B.position_at ctx.b exit;
  B.add_loop ctx.b
    { preheader = pre_lbl; header; latch; exit;
      body = List.init (exit - header) (fun k -> header + k);
      depth = ctx.depth + 1; parallel };
  (* After the loop, carried variables hold their header-phi values. *)
  env_h

and lower_parallel_for ctx env pos init cond step body =
  let loop_var, var_ty =
    match init with
    | Some { s = Sdecl (Tint, v, _); _ } -> (v, Tint)
    | _ -> fail pos "parallel_for must declare an int induction variable"
  in
  (* Free scalar reads of the body become by-value parameters. *)
  let frees =
    free_reads body
    |> SS.remove loop_var
    |> SS.filter (fun x ->
           Env.mem x env && not (List.mem_assoc x ctx.globals))
    |> SS.elements
  in
  let param_tys =
    List.map (fun x -> (x, (Env.find x env).bty)) frees
  in
  let k = !(ctx.gen_counter) in
  incr ctx.gen_counter;
  let gen_name = Fmt.str "%s_par%d" ctx.fname k in
  let gen_func =
    { fname = gen_name;
      fparams = (loop_var, var_ty) :: param_tys;
      fret = Tvoid;
      fbody = body;
      fpos = pos }
  in
  ctx.extra <- gen_func :: ctx.extra;
  ctx.fsigs <-
    (gen_name,
     { Typecheck.sparams = Tint :: List.map snd param_tys; sret = Tvoid })
    :: ctx.fsigs;
  let spawn_stmt =
    { s =
        Sspawn
          ( gen_name,
            { e = Evar loop_var; epos = pos }
            :: List.map (fun x -> { e = Evar x; epos = pos }) frees );
      spos = pos }
  in
  let env' =
    lower_for ctx env ~init ~cond ~step ~body:[ spawn_stmt ] ~parallel:true
  in
  B.add_unit ctx.b I.Sync;
  env'

(* ------------------------------------------------------------------ *)
(* Program lowering                                                    *)

let lower_func (globals : (string * Ast.ty) list)
    (fsigs : (string * Typecheck.fsig) list) (gen_counter : int ref)
    (f : Ast.func) : F.t * Ast.func list * (string * Typecheck.fsig) list =
  let b =
    B.create ~name:f.fname
      ~params:(List.map (fun (x, t) -> (x, ir_ty t)) f.fparams)
      ~ret:(ir_ty f.fret)
  in
  let ctx =
    { b; globals; fsigs; extra = []; gen_counter; fname = f.fname;
      depth = 0; terminated = false }
  in
  let entry = B.new_block b in
  B.position_at b entry;
  let env =
    List.fold_left
      (fun (i, env) (x, t) -> (i + 1, Env.add x { op = I.Reg i; bty = t } env))
      (0, Env.empty) f.fparams
    |> snd
  in
  let _ = lower_stmts ctx env f.fbody in
  if not ctx.terminated then B.set_term b (I.Ret None);
  (B.finish b, List.rev ctx.extra, ctx.fsigs)

(** Lower a checked AST program to the compiler IR. *)
let lower (astp : Ast.program) : P.t =
  let globals = List.map (fun g -> (g.gname, g.gty)) astp.globals in
  let fsigs =
    List.map
      (fun (f : Ast.func) ->
        (f.fname,
         { Typecheck.sparams = List.map snd f.fparams; sret = f.fret }))
      astp.funcs
  in
  let gen_counter = ref 0 in
  let rec go fsigs acc = function
    | [] -> List.rev acc
    | f :: rest ->
      let irf, extra, fsigs' = lower_func globals fsigs gen_counter f in
      go fsigs' (irf :: acc) (rest @ extra)
  in
  let funcs = go fsigs [] astp.funcs in
  let prog_globals =
    P.layout
      (List.map
         (fun (g : Ast.global) -> (g.gname, g.gsize, ir_ty g.gty, None))
         astp.globals)
  in
  { P.globals = prog_globals; funcs }
