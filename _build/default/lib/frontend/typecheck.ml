(** Type checker and elaborator.

    Validates the program and returns an elaborated copy in which the
    implicit conversions the surface syntax allows (integer literals
    used in float positions) are rewritten into explicit [Ecast]
    nodes, so that the SSA lowering never needs to coerce. *)

open Ast

exception Error of string * pos

let fail pos fmt = Fmt.kstr (fun m -> raise (Error (m, pos))) fmt

type fsig = { sparams : ty list; sret : ty }

type genv = {
  globals : (string * ty) list;        (** element types *)
  funcs : (string * fsig) list;
}

module Env = Map.Make (String)

(* An int literal (or a negated one) can be implicitly retyped float. *)
let rec as_float_literal (e : expr) : expr option =
  match e.e with
  | Eint i -> Some { e with e = Efloat (Int64.to_float i) }
  | Eun (Uneg, inner) -> (
    match as_float_literal inner with
    | Some f -> Some { e with e = Eun (Uneg, f) }
    | None -> None)
  | _ -> None

let rec check_expr (g : genv) (env : ty Env.t) (e : expr) : expr * ty =
  let pos = e.epos in
  match e.e with
  | Eint _ -> (e, Tint)
  | Efloat _ -> (e, Tfloat)
  | Ebool _ -> (e, Tbool)
  | Evar x -> (
    match Env.find_opt x env with
    | Some t -> (e, t)
    | None -> fail pos "unknown variable %s" x)
  | Eindex (a, i) -> (
    match List.assoc_opt a g.globals with
    | None -> fail pos "unknown global array %s" a
    | Some elt ->
      let i', ti = check_expr g env i in
      if ti <> Tint then fail pos "index of %s must be int, got %a" a pp_ty ti;
      ({ e with e = Eindex (a, i') }, elt))
  | Ebin (op, a, b) ->
    let a', ta = check_expr g env a in
    let b', tb = check_expr g env b in
    (* Implicit literal promotion. *)
    let a', ta, b', tb =
      if ta = Tint && tb = Tfloat then
        match as_float_literal a' with
        | Some fa -> (fa, Tfloat, b', tb)
        | None -> (a', ta, b', tb)
      else if ta = Tfloat && tb = Tint then
        match as_float_literal b' with
        | Some fb -> (a', ta, fb, Tfloat)
        | None -> (a', ta, b', tb)
      else (a', ta, b', tb)
    in
    let out = { e with e = Ebin (op, a', b') } in
    (match op with
    | Badd | Bsub | Bmul | Bdiv ->
      if ta = Tint && tb = Tint then (out, Tint)
      else if ta = Tfloat && tb = Tfloat then (out, Tfloat)
      else fail pos "arithmetic operands must both be int or both float"
    | Bmod | Band | Bor | Bxor | Bshl | Bshr ->
      if ta = Tint && tb = Tint then (out, Tint)
      else fail pos "integer operator applied to non-int operands"
    | Blt | Ble | Bgt | Bge | Beq | Bne ->
      if ta = tb && (ta = Tint || ta = Tfloat) then (out, Tbool)
      else fail pos "comparison operands must both be int or both float"
    | Bland | Blor ->
      if ta = Tbool && tb = Tbool then (out, Tbool)
      else fail pos "logical operator needs bool operands")
  | Eun (Uneg, a) ->
    let a', ta = check_expr g env a in
    if ta = Tint || ta = Tfloat then ({ e with e = Eun (Uneg, a') }, ta)
    else fail pos "unary '-' needs int or float"
  | Eun (Unot, a) ->
    let a', ta = check_expr g env a in
    if ta = Tbool then ({ e with e = Eun (Unot, a') }, Tbool)
    else fail pos "'!' needs bool"
  | Eternary (c, a, b) ->
    let c', tc = check_expr g env c in
    if tc <> Tbool then fail pos "ternary condition must be bool";
    let a', ta = check_expr g env a in
    let b', tb = check_expr g env b in
    let a', ta, b', tb =
      if ta = Tint && tb = Tfloat then
        match as_float_literal a' with
        | Some fa -> (fa, Tfloat, b', tb)
        | None -> (a', ta, b', tb)
      else if ta = Tfloat && tb = Tint then
        match as_float_literal b' with
        | Some fb -> (a', ta, fb, Tfloat)
        | None -> (a', ta, b', tb)
      else (a', ta, b', tb)
    in
    if ta <> tb then fail pos "ternary arms have different types";
    ({ e with e = Eternary (c', a', b') }, ta)
  | Ecast (Tfloat, a) ->
    let a', ta = check_expr g env a in
    if ta = Tint then ({ e with e = Ecast (Tfloat, a') }, Tfloat)
    else if ta = Tfloat then (a', Tfloat)
    else fail pos "float() needs an int argument"
  | Ecast (Tint, a) ->
    let a', ta = check_expr g env a in
    if ta = Tfloat then ({ e with e = Ecast (Tint, a') }, Tint)
    else if ta = Tint then (a', Tint)
    else if ta = Tbool then ({ e with e = Ecast (Tint, a') }, Tint)
    else fail pos "int() needs a float or bool argument"
  | Ecast (t, _) -> fail pos "cannot cast to %a" pp_ty t
  | Ecall (name, args) -> check_call g env pos name args ~spawn:false e
  | Espawn (name, args) -> check_call g env pos name args ~spawn:true e

and check_call g env pos name args ~spawn (orig : expr) : expr * ty =
  (* The first argument of tload/tstore is an array name, not an
     expression; validate it separately and check only the rest. *)
  let checked =
    match name, args with
    | ("tload" | "tstore"), first :: rest when not spawn ->
      let arr_ok =
        match first.e with
        | Evar a -> List.assoc_opt a g.globals = Some Tfloat
        | _ -> false
      in
      if not arr_ok then
        fail pos "%s's first argument must be a float global array" name;
      (first, Tvoid) :: List.map (fun a -> check_expr g env a) rest
    | _ -> List.map (fun a -> check_expr g env a) args
  in
  let rebuilt a =
    if spawn then { orig with e = Espawn (name, a) }
    else { orig with e = Ecall (name, a) }
  in
  let expect_arity n =
    if List.length args <> n then
      fail pos "%s expects %d argument(s), got %d" name n (List.length args)
  in
  let coerce_float (e', t) =
    if t = Tfloat then e'
    else
      match as_float_literal e' with
      | Some f -> f
      | None -> fail pos "%s expects a float argument" name
  in
  if is_intrinsic name && not spawn then begin
    match name with
    | "exp" | "sqrt" | "abs" ->
      expect_arity 1;
      (rebuilt (List.map coerce_float checked), Tfloat)
    | "fmin" | "fmax" ->
      expect_arity 2;
      (rebuilt (List.map coerce_float checked), Tfloat)
    | "min" | "max" ->
      expect_arity 2;
      List.iter
        (fun (_, t) -> if t <> Tint then fail pos "%s expects ints" name)
        checked;
      (rebuilt (List.map fst checked), Tint)
    | "tload" ->
      expect_arity 3;
      (match args with
      | { e = Evar a; _ } :: _ when List.assoc_opt a g.globals = Some Tfloat ->
        let rest = List.tl checked in
        List.iter
          (fun (_, t) ->
            if t <> Tint then fail pos "tload offsets must be int")
          rest;
        (rebuilt (List.nth args 0 :: List.map fst rest), Ttile)
      | _ -> fail pos "tload's first argument must be a float global array")
    | "tstore" ->
      expect_arity 4;
      (match args with
      | { e = Evar a; _ } :: _ when List.assoc_opt a g.globals = Some Tfloat ->
        let rest = List.tl checked in
        (match rest with
        | [ (_, Tint); (_, Tint); (_, Ttile) ] -> ()
        | _ -> fail pos "tstore expects (array, int, int, tile)");
        (rebuilt (List.nth args 0 :: List.map fst rest), Tvoid)
      | _ -> fail pos "tstore's first argument must be a float global array")
    | "tmul" | "tadd" ->
      expect_arity 2;
      List.iter
        (fun (_, t) -> if t <> Ttile then fail pos "%s expects tiles" name)
        checked;
      (rebuilt (List.map fst checked), Ttile)
    | "trelu" ->
      expect_arity 1;
      (match checked with
      | [ (_, Ttile) ] -> ()
      | _ -> fail pos "trelu expects a tile");
      (rebuilt (List.map fst checked), Ttile)
    | _ -> assert false
  end
  else begin
    match List.assoc_opt name g.funcs with
    | None -> fail pos "unknown function %s" name
    | Some { sparams; sret } ->
      expect_arity (List.length sparams);
      let coerced =
        List.map2
          (fun (e', t) expected ->
            if t = expected then e'
            else if expected = Tfloat && t = Tint then
              match as_float_literal e' with
              | Some f -> f
              | None ->
                fail pos "argument type mismatch in call to %s" name
            else fail pos "argument type mismatch in call to %s" name)
          checked sparams
      in
      (rebuilt coerced, sret)
  end

type sctx = {
  g : genv;
  fret : ty;
  in_loop : bool;
  in_parallel_body : bool;
  outer_scalars : unit Env.t;
      (** names declared outside the current parallel_for body *)
}

let rec check_stmts (ctx : sctx) (env : ty Env.t) (stmts : stmt list) :
    ty Env.t * stmt list =
  match stmts with
  | [] -> (env, [])
  | s :: rest ->
    let env', s' = check_stmt ctx env s in
    let env'', rest' = check_stmts ctx env' rest in
    (env'', s' :: rest')

and check_stmt (ctx : sctx) (env : ty Env.t) (s : stmt) : ty Env.t * stmt =
  let pos = s.spos in
  match s.s with
  | Sdecl (ty, x, e) ->
    if ty = Tvoid then fail pos "cannot declare a void variable";
    let e', te = check_expr ctx.g env e in
    let e' =
      if te = ty then e'
      else if ty = Tfloat && te = Tint then
        match as_float_literal e' with
        | Some f -> f
        | None -> fail pos "initializer for float %s has type int" x
      else fail pos "initializer type mismatch for %s" x
    in
    (Env.add x ty env, { s with s = Sdecl (ty, x, e') })
  | Sassign (x, e) -> (
    match Env.find_opt x env with
    | None -> fail pos "assignment to undeclared variable %s" x
    | Some tx ->
      if ctx.in_parallel_body && Env.mem x ctx.outer_scalars then
        fail pos
          "parallel_for body may not assign outer scalar %s (results must \
           flow through arrays)" x;
      let e', te = check_expr ctx.g env e in
      let e' =
        if te = tx then e'
        else if tx = Tfloat && te = Tint then
          match as_float_literal e' with
          | Some f -> f
          | None -> fail pos "assigning int to float variable %s" x
        else fail pos "assignment type mismatch for %s" x
      in
      (env, { s with s = Sassign (x, e') }))
  | Sstore (a, i, e) -> (
    match List.assoc_opt a ctx.g.globals with
    | None -> fail pos "unknown global array %s" a
    | Some elt ->
      let i', ti = check_expr ctx.g env i in
      if ti <> Tint then fail pos "store index must be int";
      let e', te = check_expr ctx.g env e in
      let e' =
        if te = elt then e'
        else if elt = Tfloat && te = Tint then
          match as_float_literal e' with
          | Some f -> f
          | None -> fail pos "storing int into float array %s" a
        else fail pos "store type mismatch for %s" a
      in
      (env, { s with s = Sstore (a, i', e') }))
  | Sif (c, thn, els) ->
    let c', tc = check_expr ctx.g env c in
    if tc <> Tbool then fail pos "if condition must be bool";
    let _, thn' = check_stmts ctx env thn in
    let _, els' = check_stmts ctx env els in
    (env, { s with s = Sif (c', thn', els') })
  | Sfor { init; cond; step; body; parallel } ->
    let env_in, init' =
      match init with
      | None -> (env, None)
      | Some i ->
        let env', i' = check_stmt ctx env i in
        (env', Some i')
    in
    let cond', tc = check_expr ctx.g env_in cond in
    if tc <> Tbool then fail pos "loop condition must be bool";
    let body_ctx =
      if parallel then
        { ctx with
          in_loop = true;
          in_parallel_body = true;
          outer_scalars = Env.map (fun _ -> ()) env_in }
      else { ctx with in_loop = true }
    in
    let _, body' = check_stmts body_ctx env_in body in
    let step' =
      match step with
      | None -> None
      | Some st ->
        let _, st' = check_stmt { ctx with in_loop = true } env_in st in
        Some st'
    in
    (env, { s with s = Sfor { init = init'; cond = cond'; step = step';
                              body = body'; parallel } })
  | Swhile (c, body) ->
    let c', tc = check_expr ctx.g env c in
    if tc <> Tbool then fail pos "while condition must be bool";
    let _, body' = check_stmts { ctx with in_loop = true } env body in
    (env, { s with s = Swhile (c', body') })
  | Sspawn (name, args) ->
    let e', _ = check_call ctx.g env pos name args ~spawn:true
        { e = Espawn (name, args); epos = pos } in
    (match e'.e with
    | Espawn (n, a) -> (env, { s with s = Sspawn (n, a) })
    | _ -> assert false)
  | Ssync -> (env, s)
  | Sreturn None ->
    if ctx.fret <> Tvoid then fail pos "missing return value";
    if ctx.in_loop then fail pos "return inside a loop is not supported";
    (env, s)
  | Sreturn (Some e) ->
    if ctx.fret = Tvoid then fail pos "void function returns a value";
    if ctx.in_loop then fail pos "return inside a loop is not supported";
    let e', te = check_expr ctx.g env e in
    let e' =
      if te = ctx.fret then e'
      else if ctx.fret = Tfloat && te = Tint then
        match as_float_literal e' with
        | Some f -> f
        | None -> fail pos "return type mismatch"
      else fail pos "return type mismatch"
    in
    (env, { s with s = Sreturn (Some e') })
  | Sexpr e ->
    let e', _ = check_expr ctx.g env e in
    (env, { s with s = Sexpr e' })

let check_func (g : genv) (f : func) : func =
  let env =
    List.fold_left (fun env (x, t) -> Env.add x t env) Env.empty f.fparams
  in
  let ctx =
    { g; fret = f.fret; in_loop = false; in_parallel_body = false;
      outer_scalars = Env.empty }
  in
  let _, body = check_stmts ctx env f.fbody in
  { f with fbody = body }

(** Check and elaborate a whole program. *)
let check (p : program) : program =
  (* Duplicate names. *)
  let dup l =
    let sorted = List.sort compare l in
    let rec go = function
      | a :: b :: _ when a = b -> Some a
      | _ :: rest -> go rest
      | [] -> None
    in
    go sorted
  in
  (match dup (List.map (fun g -> g.gname) p.globals) with
  | Some n -> fail { line = 0; col = 0 } "duplicate global %s" n
  | None -> ());
  (match dup (List.map (fun f -> f.fname) p.funcs) with
  | Some n -> fail { line = 0; col = 0 } "duplicate function %s" n
  | None -> ());
  List.iter
    (fun g ->
      if g.gsize <= 0 then fail g.gpos "global %s has non-positive size" g.gname;
      if g.gty <> Tint && g.gty <> Tfloat then
        fail g.gpos "global arrays must be int or float")
    p.globals;
  let genv =
    { globals = List.map (fun g -> (g.gname, g.gty)) p.globals;
      funcs =
        List.map
          (fun f ->
            (f.fname,
             { sparams = List.map snd f.fparams; sret = f.fret }))
          p.funcs }
  in
  { p with funcs = List.map (check_func genv) p.funcs }
