(** Hand-written lexer for the mini-language. *)

type token =
  | INT of int64
  | FLOAT of float
  | IDENT of string
  | KW of string       (** keyword *)
  | PUNCT of string    (** operator / punctuation *)
  | EOF

val pp_token : Format.formatter -> token -> unit

exception Error of string * Ast.pos

type t
(** Lexer state over one source buffer. *)

val create : string -> t

val next : t -> token * Ast.pos
(** Next token with its source position; returns [EOF] at the end.
    @raise Error on malformed input *)

val tokenize : string -> (token * Ast.pos) list
(** Tokenize the whole input (testing convenience). *)
