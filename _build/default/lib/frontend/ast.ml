(** Abstract syntax of the mini-language.

    The language is the "unmodified software" front door of the
    toolchain: C-like scalar code with counted loops, conditionals,
    Cilk-style [spawn]/[sync] and [parallel_for], and the tensor-tile
    intrinsics used by the paper's [T]-suffixed workloads. *)

type pos = { line : int; col : int }

let pp_pos ppf { line; col } = Fmt.pf ppf "%d:%d" line col

type ty = Tint | Tfloat | Tbool | Ttile | Tvoid

let pp_ty ppf = function
  | Tint -> Fmt.string ppf "int"
  | Tfloat -> Fmt.string ppf "float"
  | Tbool -> Fmt.string ppf "bool"
  | Ttile -> Fmt.string ppf "tile"
  | Tvoid -> Fmt.string ppf "void"

type binop =
  | Badd | Bsub | Bmul | Bdiv | Bmod
  | Band | Bor | Bxor | Bshl | Bshr
  | Blt | Ble | Bgt | Bge | Beq | Bne
  | Bland | Blor  (** logical and/or — evaluated without short circuit *)

type unop = Uneg | Unot

type expr = { e : expr_node; epos : pos }

and expr_node =
  | Eint of int64
  | Efloat of float
  | Ebool of bool
  | Evar of string
  | Eindex of string * expr          (** A[i] *)
  | Ebin of binop * expr * expr
  | Eun of unop * expr
  | Eternary of expr * expr * expr   (** c ? a : b *)
  | Ecall of string * expr list      (** call or intrinsic *)
  | Espawn of string * expr list     (** x = spawn f(...) *)
  | Ecast of ty * expr               (** int(e) / float(e) *)

type stmt = { s : stmt_node; spos : pos }

and stmt_node =
  | Sdecl of ty * string * expr
  | Sassign of string * expr
  | Sstore of string * expr * expr   (** A[i] = e *)
  | Sif of expr * stmt list * stmt list
  | Sfor of {
      init : stmt option;            (** Sdecl or Sassign *)
      cond : expr;
      step : stmt option;            (** Sassign *)
      body : stmt list;
      parallel : bool;
    }
  | Swhile of expr * stmt list
  | Sspawn of string * expr list     (** spawn f(...); as a statement *)
  | Ssync
  | Sreturn of expr option
  | Sexpr of expr                    (** expression statement (calls) *)

type func = {
  fname : string;
  fparams : (string * ty) list;
  fret : ty;
  fbody : stmt list;
  fpos : pos;
}

type global = {
  gname : string;
  gty : ty;   (** element type *)
  gsize : int;
  gpos : pos;
}

type program = { globals : global list; funcs : func list }

(** Intrinsic functions recognized by the type checker; everything
    else in call position must be a declared function. *)
let intrinsics =
  [ "exp"; "sqrt"; "abs"; "min"; "max"; "fmin"; "fmax";
    "tload"; "tstore"; "tmul"; "tadd"; "trelu" ]

let is_intrinsic n = List.mem n intrinsics
