(** Recursive-descent parser for the mini-language. *)

exception Error of string * Ast.pos

val parse : string -> Ast.program
(** Parse a complete program from source text.
    @raise Error on syntax errors (with position)
    @raise Lexer.Error on malformed tokens *)
