(** Recursive-descent parser for the mini-language. *)

open Ast

exception Error of string * pos

type t = {
  lx : Lexer.t;
  mutable tok : Lexer.token;
  mutable pos : pos;
}

let advance (p : t) =
  let tok, pos = Lexer.next p.lx in
  p.tok <- tok;
  p.pos <- pos

let create src =
  let lx = Lexer.create src in
  let tok, pos = Lexer.next lx in
  { lx; tok; pos }

let fail p fmt =
  Fmt.kstr
    (fun m -> raise (Error (Fmt.str "%s (found %a)" m Lexer.pp_token p.tok, p.pos)))
    fmt

let eat_punct (p : t) s =
  match p.tok with
  | PUNCT x when x = s -> advance p
  | _ -> fail p "expected '%s'" s

let eat_kw (p : t) s =
  match p.tok with
  | KW x when x = s -> advance p
  | _ -> fail p "expected keyword '%s'" s

let accept_punct (p : t) s =
  match p.tok with
  | PUNCT x when x = s ->
    advance p;
    true
  | _ -> false

let ident (p : t) =
  match p.tok with
  | IDENT x ->
    advance p;
    x
  | _ -> fail p "expected identifier"

let parse_ty (p : t) : ty =
  match p.tok with
  | KW "int" -> advance p; Tint
  | KW "float" -> advance p; Tfloat
  | KW "bool" -> advance p; Tbool
  | KW "tile" -> advance p; Ttile
  | KW "void" -> advance p; Tvoid
  | _ -> fail p "expected a type"

let is_ty (p : t) =
  match p.tok with
  | KW ("int" | "float" | "bool" | "tile" | "void") -> true
  | _ -> false

(* Expressions, by descending precedence:
   ternary < || < && < | < ^ < & < ==/!= < relational < shifts < +- < * / % < unary *)

let rec parse_expr (p : t) : expr = parse_ternary p

and parse_ternary p =
  let epos = p.pos in
  let c = parse_lor p in
  if accept_punct p "?" then begin
    let a = parse_expr p in
    eat_punct p ":";
    let b = parse_expr p in
    { e = Eternary (c, a, b); epos }
  end
  else c

and binlevel p next ops =
  let epos = p.pos in
  let rec go lhs =
    match p.tok with
    | PUNCT s when List.mem_assoc s ops ->
      advance p;
      let rhs = next p in
      go { e = Ebin (List.assoc s ops, lhs, rhs); epos }
    | _ -> lhs
  in
  go (next p)

and parse_lor p = binlevel p parse_land [ ("||", Blor) ]
and parse_land p = binlevel p parse_bor [ ("&&", Bland) ]
and parse_bor p = binlevel p parse_bxor [ ("|", Bor) ]
and parse_bxor p = binlevel p parse_band [ ("^", Bxor) ]
and parse_band p = binlevel p parse_eq [ ("&", Band) ]
and parse_eq p = binlevel p parse_rel [ ("==", Beq); ("!=", Bne) ]

and parse_rel p =
  binlevel p parse_shift
    [ ("<", Blt); ("<=", Ble); (">", Bgt); (">=", Bge) ]

and parse_shift p = binlevel p parse_add [ ("<<", Bshl); (">>", Bshr) ]
and parse_add p = binlevel p parse_mul [ ("+", Badd); ("-", Bsub) ]

and parse_mul p =
  binlevel p parse_unary [ ("*", Bmul); ("/", Bdiv); ("%", Bmod) ]

and parse_unary p =
  let epos = p.pos in
  match p.tok with
  | PUNCT "-" ->
    advance p;
    { e = Eun (Uneg, parse_unary p); epos }
  | PUNCT "!" ->
    advance p;
    { e = Eun (Unot, parse_unary p); epos }
  | _ -> parse_primary p

and parse_args p =
  eat_punct p "(";
  if accept_punct p ")" then []
  else begin
    let rec go acc =
      let a = parse_expr p in
      if accept_punct p "," then go (a :: acc)
      else begin
        eat_punct p ")";
        List.rev (a :: acc)
      end
    in
    go []
  end

and parse_primary p =
  let epos = p.pos in
  match p.tok with
  | INT i -> advance p; { e = Eint i; epos }
  | FLOAT f -> advance p; { e = Efloat f; epos }
  | KW "true" -> advance p; { e = Ebool true; epos }
  | KW "false" -> advance p; { e = Ebool false; epos }
  | KW "spawn" ->
    advance p;
    let f = ident p in
    { e = Espawn (f, parse_args p); epos }
  | KW ("int" | "float") ->
    (* cast syntax: int(e) / float(e) *)
    let ty = parse_ty p in
    eat_punct p "(";
    let e = parse_expr p in
    eat_punct p ")";
    { e = Ecast (ty, e); epos }
  | PUNCT "(" ->
    advance p;
    let e = parse_expr p in
    eat_punct p ")";
    e
  | IDENT name ->
    advance p;
    (match p.tok with
    | PUNCT "(" -> { e = Ecall (name, parse_args p); epos }
    | PUNCT "[" ->
      advance p;
      let i = parse_expr p in
      eat_punct p "]";
      { e = Eindex (name, i); epos }
    | _ -> { e = Evar name; epos })
  | _ -> fail p "expected an expression"

(* Statements *)

let rec parse_stmt (p : t) : stmt =
  let spos = p.pos in
  match p.tok with
  | KW ("int" | "float" | "bool" | "tile") ->
    let ty = parse_ty p in
    let name = ident p in
    eat_punct p "=";
    let e = parse_expr p in
    eat_punct p ";";
    { s = Sdecl (ty, name, e); spos }
  | KW "if" ->
    advance p;
    eat_punct p "(";
    let c = parse_expr p in
    eat_punct p ")";
    let thn = parse_block_or_stmt p in
    let els =
      match p.tok with
      | KW "else" ->
        advance p;
        parse_block_or_stmt p
      | _ -> []
    in
    { s = Sif (c, thn, els); spos }
  | KW "for" -> parse_for p ~parallel:false spos
  | KW "parallel_for" -> parse_for p ~parallel:true spos
  | KW "while" ->
    advance p;
    eat_punct p "(";
    let c = parse_expr p in
    eat_punct p ")";
    let body = parse_block_or_stmt p in
    { s = Swhile (c, body); spos }
  | KW "spawn" ->
    advance p;
    let f = ident p in
    let args = parse_args p in
    eat_punct p ";";
    { s = Sspawn (f, args); spos }
  | KW "sync" ->
    advance p;
    eat_punct p ";";
    { s = Ssync; spos }
  | KW "return" ->
    advance p;
    if accept_punct p ";" then { s = Sreturn None; spos }
    else begin
      let e = parse_expr p in
      eat_punct p ";";
      { s = Sreturn (Some e); spos }
    end
  | IDENT name ->
    advance p;
    (match p.tok with
    | PUNCT "=" ->
      advance p;
      let e = parse_expr p in
      eat_punct p ";";
      { s = Sassign (name, e); spos }
    | PUNCT "[" ->
      advance p;
      let i = parse_expr p in
      eat_punct p "]";
      eat_punct p "=";
      let e = parse_expr p in
      eat_punct p ";";
      { s = Sstore (name, i, e); spos }
    | PUNCT "(" ->
      let args = parse_args p in
      eat_punct p ";";
      { s = Sexpr { e = Ecall (name, args); epos = spos }; spos }
    | _ -> fail p "expected '=', '[' or '(' after identifier")
  | _ -> fail p "expected a statement"

and parse_simple_assign (p : t) : stmt =
  (* init/step clause of a for: decl or assignment, no trailing ';' *)
  let spos = p.pos in
  if is_ty p then begin
    let ty = parse_ty p in
    let name = ident p in
    eat_punct p "=";
    let e = parse_expr p in
    { s = Sdecl (ty, name, e); spos }
  end
  else begin
    let name = ident p in
    eat_punct p "=";
    let e = parse_expr p in
    { s = Sassign (name, e); spos }
  end

and parse_for p ~parallel spos =
  advance p;
  eat_punct p "(";
  let init =
    if accept_punct p ";" then None
    else begin
      let s = parse_simple_assign p in
      eat_punct p ";";
      Some s
    end
  in
  let cond = parse_expr p in
  eat_punct p ";";
  let step =
    match p.tok with
    | PUNCT ")" -> None
    | _ -> Some (parse_simple_assign p)
  in
  eat_punct p ")";
  let body = parse_block_or_stmt p in
  { s = Sfor { init; cond; step; body; parallel }; spos }

and parse_block_or_stmt (p : t) : stmt list =
  if accept_punct p "{" then begin
    let rec go acc =
      match p.tok with
      | PUNCT "}" ->
        advance p;
        List.rev acc
      | _ -> go (parse_stmt p :: acc)
    in
    go []
  end
  else [ parse_stmt p ]

(* Top level *)

let parse_global (p : t) : global =
  let gpos = p.pos in
  eat_kw p "global";
  let gty = parse_ty p in
  let gname = ident p in
  eat_punct p "[";
  let gsize =
    match p.tok with
    | INT i ->
      advance p;
      Int64.to_int i
    | _ -> fail p "expected array size"
  in
  eat_punct p "]";
  eat_punct p ";";
  { gname; gty; gsize; gpos }

let parse_func (p : t) : func =
  let fpos = p.pos in
  eat_kw p "func";
  let fret = parse_ty p in
  let fname = ident p in
  eat_punct p "(";
  let fparams =
    if accept_punct p ")" then []
    else begin
      let rec go acc =
        let ty = parse_ty p in
        let name = ident p in
        if accept_punct p "," then go ((name, ty) :: acc)
        else begin
          eat_punct p ")";
          List.rev ((name, ty) :: acc)
        end
      in
      go []
    end
  in
  eat_punct p "{";
  let rec body acc =
    match p.tok with
    | PUNCT "}" ->
      advance p;
      List.rev acc
    | _ -> body (parse_stmt p :: acc)
  in
  { fname; fparams; fret; fbody = body []; fpos }

(** Parse a complete program from source text. *)
let parse (src : string) : program =
  let p = create src in
  let rec go globals funcs =
    match p.tok with
    | EOF -> { globals = List.rev globals; funcs = List.rev funcs }
    | KW "global" -> go (parse_global p :: globals) funcs
    | KW "func" ->
      let f = parse_func p in
      go globals (f :: funcs)
    | _ -> fail p "expected 'global' or 'func' at top level"
  in
  go [] []
