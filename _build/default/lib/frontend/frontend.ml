(** Top-level front-end entry point: source text to verified IR. *)

(** Compile mini-language source to a verified (and, by default,
    cleanup-optimized) IR program.

    @raise Lexer.Error on malformed tokens
    @raise Parser.Error on syntax errors
    @raise Typecheck.Error on type errors
    @raise Invalid_argument if lowering produced ill-formed IR (a bug) *)
let compile ?(optimize = true) (src : string) : Muir_ir.Program.t =
  let ast = Parser.parse src in
  let ast = Typecheck.check ast in
  let p = Lower.lower ast in
  Muir_ir.Verify.check_exn p;
  if optimize then Muir_ir.Transform.optimize p else p

(** Render front-end exceptions as a human-readable message. *)
let describe_error = function
  | Lexer.Error (m, pos) -> Some (Fmt.str "lex error at %a: %s" Ast.pp_pos pos m)
  | Parser.Error (m, pos) ->
    Some (Fmt.str "parse error at %a: %s" Ast.pp_pos pos m)
  | Typecheck.Error (m, pos) ->
    Some (Fmt.str "type error at %a: %s" Ast.pp_pos pos m)
  | Lower.Error (m, pos) ->
    Some (Fmt.str "lowering error at %a: %s" Ast.pp_pos pos m)
  | _ -> None
