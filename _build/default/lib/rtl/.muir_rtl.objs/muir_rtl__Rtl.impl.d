lib/rtl/rtl.ml: Fmt Hashtbl List String
