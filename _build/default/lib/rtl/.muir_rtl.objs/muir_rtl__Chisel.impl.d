lib/rtl/chisel.ml: Array Buffer Fmt List Muir_core Muir_ir String
