lib/rtl/lower.ml: Fmt Hashtbl List Muir_core Muir_ir Rtl
