lib/rtl/chisel.mli: Muir_core
