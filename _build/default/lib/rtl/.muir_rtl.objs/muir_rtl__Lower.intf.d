lib/rtl/lower.mli: Muir_core Rtl
