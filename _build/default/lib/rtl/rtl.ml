(** The circuit-level IR below μIR — the moral equivalent of FIRRTL in
    the paper's comparison (§7).  A lowered design is a flat list of
    hardware components (registers, ALUs, muxes, SRAM macros,
    arbiters, queues...) and nets between them.  The synthesis model
    walks this representation to estimate area, frequency and power,
    and Table 4's "FIRRTL Δ" is a structural diff of two lowered
    designs. *)

type prim =
  | Preg of { bits : int }            (** pipeline/handshake register *)
  | Pfifo of { bits : int; depth : int }
  | Palu of { op : string; bits : int }  (** single-stage logic/arith *)
  | Pchain of { ops : string list; bits : int }  (** fused stage group *)
  | Pmul of { bits : int }
  | Pdiv of { bits : int }
  | Pfpu of { op : string }           (** FP macro (add, mul, exp, ...) *)
  | Ptensor of { shape_words : int; op : string }  (** Fig. 14 tree unit *)
  | Pmux of { ways : int; bits : int }
  | Pdemux of { ways : int; bits : int }
  | Parbiter of { ways : int }
  | Psram of { words : int; width_bits : int; ports : int }
  | Ptag of { entries : int }         (** cache tag/LRU array *)
  | Pqueue of { bits : int; depth : int }
  | Pcrossbar of { ins : int; outs : int; bits : int }
  | Pctrl of { kind : string }        (** misc FSM / handshake logic *)

type component = {
  cid : int;
  prim : prim;
  corigin : string;  (** task or structure this component belongs to *)
}

type net = {
  nsrc : int;
  ndst : int;
  nbits : int;
}

type design = {
  dname : string;
  comps : component list;
  nets : net list;
}

let prim_key (p : prim) : string =
  match p with
  | Preg { bits } -> Fmt.str "reg%d" bits
  | Pfifo { bits; depth } -> Fmt.str "fifo%dx%d" bits depth
  | Palu { op; bits } -> Fmt.str "alu.%s.%d" op bits
  | Pchain { ops; bits } -> Fmt.str "chain.%s.%d" (String.concat "+" ops) bits
  | Pmul { bits } -> Fmt.str "mul%d" bits
  | Pdiv { bits } -> Fmt.str "div%d" bits
  | Pfpu { op } -> "fpu." ^ op
  | Ptensor { shape_words; op } -> Fmt.str "tensor%d.%s" shape_words op
  | Pmux { ways; bits } -> Fmt.str "mux%dx%d" ways bits
  | Pdemux { ways; bits } -> Fmt.str "demux%dx%d" ways bits
  | Parbiter { ways } -> Fmt.str "arb%d" ways
  | Psram { words; width_bits; ports } ->
    Fmt.str "sram%dx%dp%d" words width_bits ports
  | Ptag { entries } -> Fmt.str "tag%d" entries
  | Pqueue { bits; depth } -> Fmt.str "queue%dx%d" bits depth
  | Pcrossbar { ins; outs; bits } -> Fmt.str "xbar%dx%dx%d" ins outs bits
  | Pctrl { kind } -> "ctrl." ^ kind

let size (d : design) = (List.length d.comps, List.length d.nets)

(** Structural diff: how many components and nets differ between two
    designs, counted as a multiset difference keyed by (origin, prim).
    This is the number of graph elements a designer would have had to
    touch when making the change at the RTL level. *)
let diff (a : design) (b : design) : int * int =
  let bag f l =
    let h = Hashtbl.create 64 in
    List.iter
      (fun x ->
        let k = f x in
        Hashtbl.replace h k (1 + try Hashtbl.find h k with Not_found -> 0))
      l;
    h
  in
  let bag_delta ha hb =
    let keys = Hashtbl.create 64 in
    Hashtbl.iter (fun k _ -> Hashtbl.replace keys k ()) ha;
    Hashtbl.iter (fun k _ -> Hashtbl.replace keys k ()) hb;
    Hashtbl.fold
      (fun k () acc ->
        let ca = try Hashtbl.find ha k with Not_found -> 0 in
        let cb = try Hashtbl.find hb k with Not_found -> 0 in
        acc + abs (ca - cb))
      keys 0
  in
  let comp_key (c : component) = (c.corigin, prim_key c.prim) in
  (* Nets are keyed by origin-pair of their endpoints' component prims;
     endpoint resolution uses each design's own table. *)
  let net_key (d : design) (n : net) =
    let find cid =
      match List.find_opt (fun c -> c.cid = cid) d.comps with
      | Some c -> (c.corigin, prim_key c.prim)
      | None -> ("?", "?")
    in
    (find n.nsrc, find n.ndst, n.nbits)
  in
  ( bag_delta (bag comp_key a.comps) (bag comp_key b.comps),
    bag_delta (bag (net_key a) a.nets) (bag (net_key b) b.nets) )

(** Aggregate component counts by primitive class (for reports). *)
let histogram (d : design) : (string * int) list =
  let h = Hashtbl.create 32 in
  List.iter
    (fun c ->
      let k =
        match c.prim with
        | Preg _ -> "registers"
        | Pfifo _ | Pqueue _ -> "fifos/queues"
        | Palu _ | Pchain _ -> "alu"
        | Pmul _ | Pdiv _ -> "int mul/div"
        | Pfpu _ -> "fp units"
        | Ptensor _ -> "tensor units"
        | Pmux _ | Pdemux _ | Pcrossbar _ -> "mux/xbar"
        | Parbiter _ -> "arbiters"
        | Psram _ | Ptag _ -> "sram"
        | Pctrl _ -> "control"
      in
      Hashtbl.replace h k (1 + try Hashtbl.find h k with Not_found -> 0))
    d.comps;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) h []
  |> List.sort compare

let pp_histogram ppf d =
  List.iter
    (fun (k, v) -> Fmt.pf ppf "%-14s %d@," k v)
    (histogram d)
