(** Lowering μIR circuits to the component-level design (Stage 3 of
    the toolchain, minus the Scala syntax — see {!Chisel} for that).

    The lowering is deliberately literal so that the cycle-level
    behaviour the simulator measures corresponds one-to-one with the
    hardware the model prices:

    - every μIR node becomes its function unit plus per-node handshake
      control; fused nodes share a single output register — that is
      the area/latency the fusion pass saves;
    - every registered μIR edge becomes a handshake stage (a register,
      or a FIFO when the balancing pass deepened it);
    - each task gets its invocation queue; tiled tasks are replicated
      and fed by a dispatch crossbar;
    - per-space junctions become arbiters; scratchpads and caches
      become SRAM macros (plus tag arrays) per bank. *)

module G = Muir_core.Graph
module T = Muir_ir.Types
open Rtl

type ctx = {
  mutable comps : component list;
  mutable nets : net list;
  mutable next_cid : int;
}

let add (ctx : ctx) ~(origin : string) (prim : prim) : int =
  let cid = ctx.next_cid in
  ctx.next_cid <- cid + 1;
  ctx.comps <- { cid; prim; corigin = origin } :: ctx.comps;
  cid

let wire (ctx : ctx) ~(bits : int) (src : int) (dst : int) =
  ctx.nets <- { nsrc = src; ndst = dst; nbits = bits } :: ctx.nets

let bits_of_ty (ty : T.ty) =
  match ty with
  | T.TPtr -> 32 (* address-bus width of the local memory map *)
  | ty -> max 1 (T.ty_bits ty)

let fu_op_name (op : G.fu_op) = G.fu_op_to_string op

let is_fp (op : G.fu_op) =
  match op with
  | G.Ffbin _ | G.Ffcmp _ | G.Ffunary _ -> true
  | _ -> false

(** Function-unit component(s) of a compute opcode. *)
let fu_prim (op : G.fu_op) ~(bits : int) : prim =
  match op with
  | G.Fibin Muir_ir.Instr.Mul -> Pmul { bits }
  | G.Fibin (Muir_ir.Instr.Sdiv | Muir_ir.Instr.Srem) -> Pdiv { bits }
  | op when is_fp op -> Pfpu { op = fu_op_name op }
  | op -> Palu { op = fu_op_name op; bits }

(** Lower one task (one tile's worth); [origin] distinguishes tiles. *)
let lower_task (ctx : ctx) (c : G.circuit) (t : G.task) ~(origin : string) :
    unit =
  let node_comp : (int, int) Hashtbl.t = Hashtbl.create 64 in
  (* Nodes *)
  List.iter
    (fun (n : G.node) ->
      let bits = bits_of_ty n.nty in
      let cid =
        match n.kind with
        | G.Compute op ->
          let fu = add ctx ~origin (fu_prim op ~bits) in
          let org = add ctx ~origin (Preg { bits }) in
          wire ctx ~bits fu org;
          ignore (add ctx ~origin (Pctrl { kind = "hs" }));
          fu
        | G.Fused ops | G.FusedSteer ops ->
          let names = List.map fu_op_name ops in
          let fu = add ctx ~origin (Pchain { ops = names; bits }) in
          let org = add ctx ~origin (Preg { bits }) in
          wire ctx ~bits fu org;
          ignore (add ctx ~origin (Pctrl { kind = "hs" }));
          (match n.kind with
          | G.FusedSteer _ -> ignore (add ctx ~origin (Pdemux { ways = 2; bits }))
          | _ -> ());
          fu
        | G.Merge k ->
          let m = add ctx ~origin (Pmux { ways = k; bits }) in
          ignore (add ctx ~origin (Pctrl { kind = "merge" }));
          let org = add ctx ~origin (Preg { bits }) in
          wire ctx ~bits m org;
          m
        | G.MergeLoop ->
          let m = add ctx ~origin (Pmux { ways = 2; bits }) in
          ignore (add ctx ~origin (Pctrl { kind = "mu" }));
          let org = add ctx ~origin (Preg { bits }) in
          wire ctx ~bits m org;
          m
        | G.Steer ->
          let d = add ctx ~origin (Pdemux { ways = 2; bits }) in
          ignore (add ctx ~origin (Pctrl { kind = "steer" }));
          d
        | G.Load _ | G.Store _ ->
          (* databox slice: address/data staging + handshake *)
          let d = add ctx ~origin (Pctrl { kind = "databox" }) in
          ignore (add ctx ~origin (Preg { bits = 64 }));
          d
        | G.Tload { shape; _ } | G.Tstore { shape; _ } ->
          let d = add ctx ~origin (Pctrl { kind = "databox.t" }) in
          ignore
            (add ctx ~origin (Preg { bits = 32 * T.shape_words shape }));
          d
        | G.Tcompute { top; dedicated } ->
          if dedicated then
            add ctx ~origin
              (Ptensor { shape_words = 4; op = G.tensor_op_to_string top })
          else begin
            (* shared scalar FUs + sequencing control *)
            let m = add ctx ~origin (Pfpu { op = "fmul" }) in
            ignore (add ctx ~origin (Pfpu { op = "fadd" }));
            ignore (add ctx ~origin (Pctrl { kind = "tensor.seq" }));
            ignore (add ctx ~origin (Preg { bits = 128 }));
            m
          end
        | G.LiveIn _ | G.LiveOut _ ->
          let r = add ctx ~origin (Preg { bits }) in
          ignore (add ctx ~origin (Pctrl { kind = "port" }));
          r
        | G.CallChild _ | G.SpawnChild _ ->
          let r = add ctx ~origin (Pctrl { kind = "taskport" }) in
          ignore (add ctx ~origin (Preg { bits = 64 }));
          r
        | G.SyncWait -> add ctx ~origin (Pctrl { kind = "join" })
      in
      Hashtbl.replace node_comp n.nid cid)
    t.nodes;
  (* Edges: handshake stages *)
  List.iter
    (fun (e : G.edge) ->
      let src = Hashtbl.find node_comp (fst e.src) in
      let dst = Hashtbl.find node_comp (fst e.dst) in
      let bits = bits_of_ty (G.node t (fst e.src)).nty in
      match e.ekind with
      | G.Comb -> wire ctx ~bits src dst
      | G.Registered ->
        let stage =
          if e.capacity <= 2 then add ctx ~origin (Preg { bits })
          else add ctx ~origin (Pfifo { bits; depth = e.capacity })
        in
        wire ctx ~bits src stage;
        wire ctx ~bits stage dst)
    t.edges;
  (* Per-space junction arbiters. *)
  let spaces =
    List.sort_uniq compare
      (List.filter_map G.node_space (G.memory_nodes t))
  in
  List.iter
    (fun sp ->
      let ways =
        List.length
          (List.filter
             (fun n -> G.node_space n = Some sp)
             (G.memory_nodes t))
      in
      if ways > 0 then begin
        let arb = add ctx ~origin (Parbiter { ways }) in
        let w = G.junction_width c t.tid in
        if w > 1 then
          ignore (add ctx ~origin (Pcrossbar { ins = ways; outs = w; bits = 64 }));
        ignore arb
      end)
    spaces

let lower_structure (ctx : ctx) (s : G.struct_inst) : unit =
  let origin = "structure:" ^ s.sname in
  match s.shape with
  | G.Scratchpad { banks; ports_per_bank; width_words; wb_buffer; _ } ->
    if wb_buffer then
      ignore (add ctx ~origin (Pfifo { bits = 96; depth = 8 }));
    for _ = 1 to banks do
      ignore
        (add ctx ~origin
           (Psram { words = 1024; width_bits = 32 * width_words;
                    ports = ports_per_bank }))
    done;
    ignore (add ctx ~origin (Pctrl { kind = "dma" }));
    if banks > 1 then ignore (add ctx ~origin (Parbiter { ways = banks }))
  | G.Cache { banks; line_words; size_words; ways; _ } ->
    for _ = 1 to banks do
      ignore
        (add ctx ~origin
           (Psram { words = size_words / banks; width_bits = 32 * line_words;
                    ports = 1 }));
      ignore
        (add ctx ~origin
           (Ptag { entries = size_words / (line_words * banks) }))
    done;
    ignore (add ctx ~origin (Pctrl { kind = Fmt.str "cache.%dway" ways }));
    if banks > 1 then ignore (add ctx ~origin (Parbiter { ways = banks }))

(** Lower a whole μIR circuit to the component-level design. *)
let design (c : G.circuit) : design =
  let ctx = { comps = []; nets = []; next_cid = 0 } in
  List.iter
    (fun (t : G.task) ->
      for tile = 0 to t.tiles - 1 do
        let origin =
          if t.tiles = 1 then t.tname else Fmt.str "%s.tile%d" t.tname tile
        in
        lower_task ctx c t ~origin
      done;
      (* task queue + dispatch *)
      let qbits = 32 * List.length t.arg_tys in
      ignore
        (add ctx ~origin:t.tname (Pqueue { bits = qbits; depth = t.queue_depth }));
      if t.tiles > 1 then
        ignore
          (add ctx ~origin:t.tname
             (Pcrossbar { ins = 1; outs = t.tiles; bits = qbits })))
    c.tasks;
  List.iter (lower_structure ctx) c.structures;
  (* AXI interface to DRAM/CPU *)
  ignore (add ctx ~origin:"top" (Pctrl { kind = "axi" }));
  { dname = c.cname; comps = List.rev ctx.comps; nets = List.rev ctx.nets }
