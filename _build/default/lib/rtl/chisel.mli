(** Chisel source emission — the textual Stage-3 output of the
    toolchain (compare Figs. 4 and 6 in the paper). *)

val class_name : Muir_core.Graph.task -> string
(** Scala class name generated for a task module. *)

val emit : Muir_core.Graph.circuit -> string
(** The whole accelerator as Chisel source text. *)
