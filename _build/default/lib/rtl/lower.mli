(** Lowering μIR circuits to the component-level design: one function
    unit + handshake per node, one register stage per channel, task
    queues and dispatch crossbars, junction arbiters, and SRAM macros
    per structure bank. *)

val design : Muir_core.Graph.circuit -> Rtl.design
