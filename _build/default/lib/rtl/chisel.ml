(** Chisel source emission — the textual Stage-3 output (compare the
    auto-generated listings in Figs. 4 and 6 of the paper).  The
    emitted Scala is a faithful structural rendering of the μIR graph
    against the accompanying component library ("IR Library" in
    Fig. 3); it is meant to be read (and, in the original toolchain,
    elaborated by Chisel) rather than executed here. *)

module G = Muir_core.Graph
module T = Muir_ir.Types

let class_name (t : G.task) : string =
  String.concat ""
    (List.map String.capitalize_ascii
       (String.split_on_char '.' (String.map (function '-' -> '_' | c -> c) t.tname)))

let ty_scala (ty : T.ty) : string =
  match ty with
  | T.TBool -> "Bool()"
  | T.TInt w -> Fmt.str "UInt(%d.W)" w
  | T.TFloat -> "UInt(32.W) /* f32 */"
  | T.TPtr -> "UInt(64.W)"
  | T.TTensor s -> Fmt.str "Vec(%d, UInt(32.W))" (T.shape_words s)
  | T.TUnit -> "Bool()"

let node_module (c : G.circuit) (n : G.node) : string =
  match n.kind with
  | G.Compute op -> Fmt.str "new ComputeNode(opCode = \"%s\")" (G.fu_op_to_string op)
  | G.Fused ops ->
    Fmt.str "new FusedNode(opCodes = Seq(%s))"
      (String.concat ", "
         (List.map (fun o -> Fmt.str "\"%s\"" (G.fu_op_to_string o)) ops))
  | G.FusedSteer ops ->
    Fmt.str "new FusedSteerNode(opCodes = Seq(%s))"
      (String.concat ", "
         (List.map (fun o -> Fmt.str "\"%s\"" (G.fu_op_to_string o)) ops))
  | G.Merge k -> Fmt.str "new MergeNode(ways = %d)" k
  | G.MergeLoop -> "new LoopMergeNode()"
  | G.Steer -> "new SteerNode()"
  | G.Load { space } -> Fmt.str "new Load(space = %d)" space
  | G.Store { space } -> Fmt.str "new Store(space = %d)" space
  | G.Tload { space; shape } ->
    Fmt.str "new TensorLoad(space = %d, shape = (%d, %d))" space shape.rows
      shape.cols
  | G.Tstore { space; shape } ->
    Fmt.str "new TensorStore(space = %d, shape = (%d, %d))" space shape.rows
      shape.cols
  | G.Tcompute { top; dedicated } ->
    Fmt.str "new TensorUnit(op = \"%s\", dedicated = %b)"
      (G.tensor_op_to_string top) dedicated
  | G.LiveIn i -> Fmt.str "new LiveIn(index = %d)" i
  | G.LiveOut i -> Fmt.str "new LiveOut(index = %d)" i
  | G.CallChild tid ->
    Fmt.str "new TaskCall(target = classOf[%s])" (class_name (G.task c tid))
  | G.SpawnChild tid ->
    Fmt.str "new TaskSpawn(target = classOf[%s])" (class_name (G.task c tid))
  | G.SyncWait -> "new SyncJoin()"

let emit_task (buf : Buffer.t) (c : G.circuit) (t : G.task) : unit =
  let p fmt = Fmt.kstr (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  p "class %s(val p: Parameters) extends TaskModule {" (class_name t);
  p "  // live-ins: %s"
    (String.concat ", " (List.map ty_scala t.arg_tys));
  p "  // tiles = %d, queueDepth = %d" t.tiles t.queue_depth;
  p "  /*------- Dataflow specification -------*/";
  List.iter
    (fun (n : G.node) ->
      p "  val n%d = Module(%s)%s" n.nid (node_module c n)
        (if n.label = "" then "" else "  // " ^ n.label))
    t.nodes;
  p "";
  p "  /*------- Connections (latency-insensitive) -------*/";
  List.iter
    (fun (e : G.edge) ->
      let extra =
        (if e.capacity > 2 then Fmt.str "  // FIFO depth %d" e.capacity
         else "")
        ^
        if e.initial <> [] then
          Fmt.str "  // primed: %s"
            (String.concat ","
               (List.map T.value_to_string e.initial))
        else ""
      in
      p "  n%d.io.In(%d) <> n%d.io.Out(%d)%s" (fst e.dst) (snd e.dst)
        (fst e.src) (snd e.src) extra)
    t.edges;
  (* Immediates *)
  List.iter
    (fun (n : G.node) ->
      Array.iteri
        (fun i slot ->
          match slot with
          | G.Simm v ->
            p "  n%d.io.In(%d) := %s.U  // immediate" n.nid i
              (T.value_to_string v)
          | G.Swire -> ())
        n.ins)
    t.nodes;
  p "}";
  p ""

let emit_structure (buf : Buffer.t) (s : G.struct_inst) : unit =
  let p fmt = Fmt.kstr (fun str -> Buffer.add_string buf (str ^ "\n")) fmt in
  match s.shape with
  | G.Scratchpad { banks; ports_per_bank; latency; width_words; wb_buffer } ->
    p "  val hw_%s = Module(new Scratchpad(banks = %d, ports = %d, latency = %d, width = %d, writebackBuffer = %b))"
      s.sname banks ports_per_bank latency width_words wb_buffer
  | G.Cache { banks; line_words; size_words; ways; _ } ->
    p "  val hw_%s = Module(new Cache(banks = %d, lineWords = %d, sizeWords = %d, ways = %d))"
      s.sname banks line_words size_words ways

(** Emit the whole accelerator as Chisel source text. *)
let emit (c : G.circuit) : string =
  let buf = Buffer.create 4096 in
  let p fmt = Fmt.kstr (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  p "// Auto-generated from the %s μIR graph — do not edit." c.cname;
  p "package muir.generated";
  p "";
  p "import chisel3._";
  p "import muir.lib._";
  p "";
  List.iter (emit_task buf c) c.tasks;
  p "class Accelerator(val p: Parameters) extends Architecture {";
  p "  /*------------ Task blocks -------------*/";
  List.iter
    (fun (t : G.task) ->
      p "  val task_%d = Module(new %s(p))  // %s" t.tid (class_name t)
        t.tname)
    c.tasks;
  p "";
  p "  /*------------ Structures -------------*/";
  List.iter (emit_structure buf) c.structures;
  p "";
  p "  /*------------ Task connections -------------*/";
  List.iter
    (fun (t : G.task) ->
      List.iteri
        (fun i ch -> p "  task_%d.io.task(%d) <||> task_%d.io.parent" t.tid i ch)
        t.children)
    c.tasks;
  p "";
  p "  /*------------ Memory connections -------------*/";
  List.iter
    (fun (sp, sid) ->
      let s = G.structure c sid in
      p "  memmap.space(%d) <==> hw_%s.io.Mem" sp s.sname)
    c.space_map;
  p "  io.Mem.axi <==> dram.io.AXI";
  p "}";
  Buffer.contents buf
