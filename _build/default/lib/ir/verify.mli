(** IR well-formedness verifier: structural checks plus SSA
    dominance, phi/predecessor agreement, and loop-metadata
    consistency. *)

type error = { where : string; what : string }

val pp_error : Format.formatter -> error -> unit

val verify_func : Program.t option -> Func.t -> error list
(** Check one function; pass the program to also check call targets. *)

val verify : Program.t -> error list

val check_exn : Program.t -> unit
(** @raise Invalid_argument with a report if the program is ill-formed *)
