lib/ir/builder.ml: Func Instr List Types
