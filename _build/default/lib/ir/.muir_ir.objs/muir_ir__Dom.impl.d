lib/ir/dom.ml: Func Hashtbl Instr List
