lib/ir/transform.ml: Eval Float Func Hashtbl Instr Int64 List Program Types
