lib/ir/program.ml: Array Fmt Func List Types
