lib/ir/unroll.ml: Array Func Hashtbl Instr Int64 List Program Transform
