lib/ir/dom.mli: Func Instr
