lib/ir/verify.ml: Dom Fmt Func Hashtbl Instr List Loops Program
