lib/ir/types.ml: Array Float Fmt Int64
