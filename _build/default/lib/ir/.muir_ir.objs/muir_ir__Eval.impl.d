lib/ir/eval.ml: Array Float Instr Int64 List Types
