lib/ir/unroll.mli: Func Program
