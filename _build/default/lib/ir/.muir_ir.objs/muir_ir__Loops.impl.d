lib/ir/loops.ml: Dom Dump Fmt Func Hashtbl Instr List
