lib/ir/instr.ml: Fmt List Types
