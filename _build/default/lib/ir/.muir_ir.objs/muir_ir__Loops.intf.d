lib/ir/loops.mli: Func Instr
