lib/ir/func.ml: Fmt Hashtbl Instr List Types
