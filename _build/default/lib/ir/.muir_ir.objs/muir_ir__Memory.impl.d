lib/ir/memory.ml: Array Fmt Int64 List Program Types
