lib/ir/verify.mli: Format Func Program
