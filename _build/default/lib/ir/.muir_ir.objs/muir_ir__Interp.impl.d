lib/ir/interp.ml: Array Eval Fmt Func Instr Int64 List Memory Program Types
