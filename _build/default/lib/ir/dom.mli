(** Dominator analysis over a function's CFG. *)

type t

val compute : Func.t -> t

val dominates : t -> Instr.label -> Instr.label -> bool
(** [dominates d a b] — does block [a] dominate block [b]? *)

val idom : t -> Instr.label -> Instr.label option
(** Immediate dominator ([None] for the entry block). *)
