(** Pure evaluation of instruction opcodes on runtime values.  Shared
    by the golden interpreter, the cycle-level simulator and the
    baseline CPU/HLS models so that all execution substrates agree on
    functional semantics. *)

open Types
open Instr

(** Integer division/remainder are made total (x/0 = 0) because
    predicated-off dataflow paths may evaluate them on garbage. *)
let ibin (op : ibin) (a : int64) (b : int64) : int64 =
  match op with
  | Add -> Int64.add a b
  | Sub -> Int64.sub a b
  | Mul -> Int64.mul a b
  | Sdiv -> if Int64.equal b 0L then 0L else Int64.div a b
  | Srem -> if Int64.equal b 0L then 0L else Int64.rem a b
  | And -> Int64.logand a b
  | Or -> Int64.logor a b
  | Xor -> Int64.logxor a b
  | Shl -> Int64.shift_left a (Int64.to_int b land 63)
  | Lshr -> Int64.shift_right_logical a (Int64.to_int b land 63)
  | Ashr -> Int64.shift_right a (Int64.to_int b land 63)

let fbin (op : fbin) (a : float) (b : float) : float =
  match op with
  | Fadd -> a +. b
  | Fsub -> a -. b
  | Fmul -> a *. b
  | Fdiv -> a /. b

let icmp (op : icmp) (a : int64) (b : int64) : bool =
  let c = Int64.compare a b in
  match op with
  | Eq -> c = 0 | Ne -> c <> 0 | Slt -> c < 0
  | Sle -> c <= 0 | Sgt -> c > 0 | Sge -> c >= 0

let fcmp (op : fcmp) (a : float) (b : float) : bool =
  match op with
  | Foeq -> a = b | Fone -> a <> b | Folt -> a < b
  | Fole -> a <= b | Fogt -> a > b | Foge -> a >= b

let funary (op : funary) (a : float) : float =
  match op with
  | Fneg -> -.a
  | Fexp -> Float.exp a
  | Fsqrt -> Float.sqrt a
  | Fabs -> Float.abs a

let cast (c : cast) (v : value) : value =
  match c, v with
  | Sitofp, VInt i -> VFloat (Int64.to_float i)
  | Sitofp, VBool b -> VFloat (if b then 1.0 else 0.0)
  | Fptosi, VFloat f -> VInt (Int64.of_float f)
  | Zext _, VBool b -> VInt (if b then 1L else 0L)
  | Zext _, VInt i -> VInt i
  | Trunc w, VInt i ->
    if w >= 64 then VInt i
    else
      let mask = Int64.sub (Int64.shift_left 1L w) 1L in
      VInt (Int64.logand i mask)
  | Trunc _, VBool _ -> v
  | _, VPoison -> VPoison
  | _ -> invalid_arg "Eval.cast: type mismatch"

(** Square-tile matrix multiply (row major). *)
let tensor_mul (s : shape) (a : float array) (b : float array) : float array =
  if s.rows <> s.cols then invalid_arg "Eval.tensor_mul: non-square tile";
  let n = s.rows in
  let c = Array.make (n * n) 0.0 in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      let acc = ref 0.0 in
      for k = 0 to n - 1 do
        acc := !acc +. (a.((i * n) + k) *. b.((k * n) + j))
      done;
      c.((i * n) + j) <- !acc
    done
  done;
  c

let tensor_add (a : float array) (b : float array) : float array =
  Array.mapi (fun i x -> x +. b.(i)) a

let tensor_relu (a : float array) : float array =
  Array.map (fun x -> Float.max 0.0 x) a

let tbin (op : tbin) (s : shape) a b =
  match op with
  | Tmul -> tensor_mul s a b
  | Tadd -> tensor_add a b

let tunary (op : tunary) a = match op with Trelu -> tensor_relu a

(** Evaluate a pure (register-only) opcode on already-resolved operand
    values.  Memory, phi, control and task opcodes are the caller's
    business.  Poison is propagated. *)
let pure (k : kind) (args : value list) : value =
  if List.exists is_poison args then VPoison
  else
    match k, args with
    | Bin (op, _, _), [ a; b ] -> VInt (ibin op (as_int a) (as_int b))
    | Fbin (op, _, _), [ a; b ] -> VFloat (fbin op (as_float a) (as_float b))
    | Icmp (op, _, _), [ a; b ] -> VBool (icmp op (as_int a) (as_int b))
    | Fcmp (op, _, _), [ a; b ] -> VBool (fcmp op (as_float a) (as_float b))
    | Funary (op, _), [ a ] -> VFloat (funary op (as_float a))
    | Cast (c, _), [ a ] -> cast c a
    | Select _, [ c; a; b ] -> if truth c then a else b
    | Gep { scale; _ }, [ base; index ] ->
      VInt (Int64.add (as_int base) (Int64.mul (as_int index)
              (Int64.of_int scale)))
    | Tbin (op, _, _), [ VTensor a; VTensor b ] ->
      let n = int_of_float (Float.sqrt (float_of_int (Array.length a))) in
      VTensor (tbin op { rows = n; cols = n } a b)
    | Tunary (op, _), [ VTensor a ] -> VTensor (tunary op a)
    | _ -> invalid_arg "Eval.pure: not a pure opcode or arity mismatch"
