(** Dominator analysis (iterative dataflow, Cooper-Harvey-Kennedy
    style on label sets — the CFGs here are small). *)

type t = {
  idom : (Instr.label, Instr.label) Hashtbl.t;
      (** immediate dominator; the entry block is absent *)
  entry : Instr.label;
}

let compute (f : Func.t) : t =
  let labels = List.map (fun (b : Func.block) -> b.label) f.blocks in
  let entry = (Func.entry f).label in
  let preds = Func.predecessors f in
  (* Reverse post-order for fast convergence. *)
  let visited = Hashtbl.create 16 in
  let order = ref [] in
  let rec dfs l =
    if not (Hashtbl.mem visited l) then begin
      Hashtbl.add visited l ();
      List.iter dfs (Func.successors (Func.block f l));
      order := l :: !order
    end
  in
  dfs entry;
  let rpo = !order in
  let rpo_index = Hashtbl.create 16 in
  List.iteri (fun i l -> Hashtbl.replace rpo_index l i) rpo;
  let idom = Hashtbl.create 16 in
  Hashtbl.replace idom entry entry;
  let intersect a b =
    let rec go a b =
      if a = b then a
      else
        let ia = Hashtbl.find rpo_index a and ib = Hashtbl.find rpo_index b in
        if ia > ib then go (Hashtbl.find idom a) b else go a (Hashtbl.find idom b)
    in
    go a b
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun l ->
        if l <> entry then begin
          let ps =
            List.filter (fun p -> Hashtbl.mem idom p)
              (try Hashtbl.find preds l with Not_found -> [])
          in
          match ps with
          | [] -> ()
          | p0 :: rest ->
            let new_idom = List.fold_left intersect p0 rest in
            let old = Hashtbl.find_opt idom l in
            if old <> Some new_idom then begin
              Hashtbl.replace idom l new_idom;
              changed := true
            end
          end)
      rpo
  done;
  Hashtbl.remove idom entry;
  ignore labels;
  { idom; entry }

(** [dominates d a b] — does block [a] dominate block [b]? *)
let dominates (d : t) a b =
  let rec up b = if a = b then true
    else if b = d.entry then a = d.entry
    else match Hashtbl.find_opt d.idom b with
      | None -> false
      | Some p -> up p
  in
  up b

let idom (d : t) l = Hashtbl.find_opt d.idom l
