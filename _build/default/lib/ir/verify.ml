(** IR well-formedness verifier: structural checks plus SSA dominance. *)

open Instr

type error = { where : string; what : string }

let pp_error ppf e = Fmt.pf ppf "%s: %s" e.where e.what

let verify_func (p : Program.t option) (f : Func.t) : error list =
  let errs = ref [] in
  let err where fmt = Fmt.kstr (fun what -> errs := { where; what } :: !errs) fmt in
  let labels = List.map (fun (b : Func.block) -> b.label) f.blocks in
  let where_blk (b : Func.block) = Fmt.str "%s/bb%d" f.name b.label in
  (* Unique labels. *)
  if List.length (List.sort_uniq compare labels) <> List.length labels then
    err f.name "duplicate block labels";
  (* Terminator targets exist. *)
  List.iter
    (fun (b : Func.block) ->
      List.iter
        (fun s ->
          if not (List.mem s labels) then
            err (where_blk b) "branch to missing bb%d" s)
        (Func.successors b))
    f.blocks;
  (* Unique defs; build def-site map. *)
  let def_block : (reg, label) Hashtbl.t = Hashtbl.create 64 in
  List.iteri (fun i (_, _) -> Hashtbl.replace def_block i (Func.entry f).label)
    f.params;
  List.iter
    (fun (b : Func.block) ->
      List.iter
        (fun (i : Instr.t) ->
          if Hashtbl.mem def_block i.id then
            err (where_blk b) "register %%%d defined twice" i.id
          else Hashtbl.replace def_block i.id b.label)
        b.instrs)
    f.blocks;
  (* Phis only reference existing predecessors and cover all of them. *)
  let preds = Func.predecessors f in
  List.iter
    (fun (b : Func.block) ->
      let bpreds = try Hashtbl.find preds b.label with Not_found -> [] in
      List.iter
        (fun (i : Instr.t) ->
          match i.kind with
          | Phi incoming ->
            let ins = List.map fst incoming in
            List.iter
              (fun l ->
                if not (List.mem l bpreds) then
                  err (where_blk b) "phi %%%d: bb%d is not a predecessor" i.id l)
              ins;
            List.iter
              (fun l ->
                if not (List.mem l ins) then
                  err (where_blk b) "phi %%%d: missing incoming for bb%d" i.id l)
              bpreds
          | _ -> ())
        b.instrs)
    f.blocks;
  (* SSA dominance: each non-phi use is dominated by its def. *)
  let dom = Dom.compute f in
  let check_use (b : Func.block) (u : Instr.t option) op =
    match op with
    | Reg r -> (
      match Hashtbl.find_opt def_block r with
      | None ->
        err (where_blk b) "use of undefined register %%%d" r
      | Some dl ->
        (* Spawn results materialize at sync; the front-end guarantees
           the use is after the matching sync, so plain dominance of
           the def block suffices here as well. *)
        if not (Dom.dominates dom dl b.label) then
          err (where_blk b) "use of %%%d not dominated by its def (bb%d)" r dl);
      ignore u
    | _ -> ()
  in
  List.iter
    (fun (b : Func.block) ->
      List.iter
        (fun (i : Instr.t) ->
          match i.kind with
          | Phi incoming ->
            (* Phi operand must be available at the end of the incoming
               edge's source block. *)
            List.iter
              (fun (l, op) ->
                match op with
                | Reg r -> (
                  match Hashtbl.find_opt def_block r with
                  | None -> err (where_blk b) "phi uses undefined %%%d" r
                  | Some dl ->
                    if not (Dom.dominates dom dl l) then
                      err (where_blk b)
                        "phi operand %%%d (def bb%d) unavailable on edge from bb%d"
                        r dl l)
                | _ -> ())
              incoming
          | _ -> List.iter (check_use b (Some i)) (operands i))
        b.instrs;
      match b.term with
      | CondBr (c, _, _) -> check_use b None c
      | Ret (Some v) -> check_use b None v
      | _ -> ())
    f.blocks;
  (* Called functions exist. *)
  (match p with
  | None -> ()
  | Some prog ->
    Func.iter_instrs
      (fun i ->
        match i.kind with
        | Call { callee; _ } | Spawn { callee; _ } ->
          if not (Program.has_func prog callee) then
            err f.name "call to missing function %s" callee
        | _ -> ())
      f);
  (* Loop metadata consistent with the CFG. *)
  (match Loops.check_metadata f with
  | Ok () -> ()
  | Error m -> err f.name "%s" m);
  List.rev !errs

let verify (p : Program.t) : error list =
  List.concat_map (verify_func (Some p)) p.funcs

(** Raise [Invalid_argument] with a report if the program is ill-formed. *)
let check_exn (p : Program.t) : unit =
  match verify p with
  | [] -> ()
  | errs ->
    invalid_arg
      (Fmt.str "IR verification failed:@,%a"
         Fmt.(list ~sep:cut pp_error) errs)
