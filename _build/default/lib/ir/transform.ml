(** Behaviour-level compiler optimizations (the "compiler opt" stage of
    the toolchain in Fig. 3 of the paper): constant folding and dead
    code elimination.  These run before μIR construction, mirroring the
    paper's reliance on software-compiler cleanups ahead of the
    microarchitectural passes. *)

open Instr

let const_of_value (v : Types.value) : operand option =
  match v with
  | VBool b -> Some (CBool b)
  | VInt i -> Some (CInt i)
  | VFloat f -> Some (CFloat f)
  | _ -> None

let is_const = function
  | CBool _ | CInt _ | CFloat _ -> true
  | Reg _ | GlobalAddr _ -> false

let value_of_const = function
  | CBool b -> Types.VBool b
  | CInt i -> Types.VInt i
  | CFloat f -> Types.VFloat f
  | _ -> invalid_arg "value_of_const"

(** Fold instructions whose operands are all literal constants, and
    propagate the results.  Iterates to a fixed point within each
    function.  Returns the number of folded instructions. *)
let constant_fold_func (f : Func.t) : int =
  let folded = ref 0 in
  let substitution : (reg, operand) Hashtbl.t = Hashtbl.create 16 in
  let subst op =
    match op with
    | Reg r -> ( match Hashtbl.find_opt substitution r with
      | Some c -> c
      | None -> op)
    | _ -> op
  in
  let subst_kind (k : kind) : kind =
    match k with
    | Bin (o, a, b) -> Bin (o, subst a, subst b)
    | Fbin (o, a, b) -> Fbin (o, subst a, subst b)
    | Icmp (o, a, b) -> Icmp (o, subst a, subst b)
    | Fcmp (o, a, b) -> Fcmp (o, subst a, subst b)
    | Funary (o, a) -> Funary (o, subst a)
    | Cast (c, a) -> Cast (c, subst a)
    | Select (c, a, b) -> Select (subst c, subst a, subst b)
    | Phi ins -> Phi (List.map (fun (l, o) -> (l, subst o)) ins)
    | Gep { base; index; scale } ->
      Gep { base = subst base; index = subst index; scale }
    | Load { addr } -> Load { addr = subst addr }
    | Store { addr; value } -> Store { addr = subst addr; value = subst value }
    | Call { callee; args } -> Call { callee; args = List.map subst args }
    | Spawn { callee; args } -> Spawn { callee; args = List.map subst args }
    | Sync -> Sync
    | Tload { addr; row_stride; shape } ->
      Tload { addr = subst addr; row_stride = subst row_stride; shape }
    | Tstore { addr; row_stride; value; shape } ->
      Tstore { addr = subst addr; row_stride = subst row_stride;
               value = subst value; shape }
    | Tbin (o, a, b) -> Tbin (o, subst a, subst b)
    | Tunary (o, a) -> Tunary (o, subst a)
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (b : Func.block) ->
        b.instrs <-
          List.filter_map
            (fun (i : Instr.t) ->
              let i = { i with kind = subst_kind i.kind } in
              match i.kind with
              | (Bin _ | Fbin _ | Icmp _ | Fcmp _ | Funary _ | Cast _
                | Select _ | Gep _)
                when List.for_all is_const (operands i) -> (
                let v = Eval.pure i.kind (List.map value_of_const (operands i)) in
                match const_of_value v with
                | Some c ->
                  Hashtbl.replace substitution i.id c;
                  incr folded;
                  changed := true;
                  None
                | None -> Some i)
              | _ -> Some i)
            b.instrs;
        (match b.term with
        | CondBr (c, t, e) -> (
          match subst c with
          | CBool true -> b.term <- Br t; changed := true
          | CBool false -> b.term <- Br e; changed := true
          | c' -> b.term <- CondBr (c', t, e))
        | Ret (Some v) -> b.term <- Ret (Some (subst v))
        | _ -> ()))
      f.blocks
  done;
  !folded

(** Remove side-effect-free instructions whose results are never used.
    Returns the number of removed instructions. *)
let dead_code_elim_func (f : Func.t) : int =
  let removed = ref 0 in
  let changed = ref true in
  while !changed do
    changed := false;
    let used : (reg, unit) Hashtbl.t = Hashtbl.create 64 in
    Func.iter_instrs
      (fun i -> List.iter (fun r -> Hashtbl.replace used r ()) (used_regs i))
      f;
    List.iter
      (fun (b : Func.block) ->
        (match b.term with
        | CondBr (Reg r, _, _) -> Hashtbl.replace used r ()
        | Ret (Some (Reg r)) -> Hashtbl.replace used r ()
        | _ -> ()))
      f.blocks;
    List.iter
      (fun (b : Func.block) ->
        let keep, drop =
          List.partition
            (fun (i : Instr.t) ->
              has_side_effect i || is_memory i
              || Types.equal_ty i.ty TUnit
              || Hashtbl.mem used i.id)
            b.instrs
        in
        if drop <> [] then begin
          removed := !removed + List.length drop;
          changed := true;
          b.instrs <- keep
        end)
      f.blocks
  done;
  !removed

(** Strength reduction: multiply/divide/modulo by a power-of-two
    constant becomes a shift/mask — keeps constant-stride address
    arithmetic off the multipliers, as any production compiler would.
    Returns the number of rewritten instructions. *)
let strength_reduce_func (f : Func.t) : int =
  let count = ref 0 in
  let log2_exact (i : int64) : int option =
    let n = Int64.to_int i in
    if n > 0 && n land (n - 1) = 0 then
      Some (int_of_float (Float.round (Float.log2 (float_of_int n))))
    else None
  in
  List.iter
    (fun (b : Func.block) ->
      b.instrs <-
        List.map
          (fun (ins : Instr.t) ->
            let rewrite kind =
              incr count;
              { ins with kind }
            in
            match ins.kind with
            | Bin (Mul, a, CInt c) | Bin (Mul, CInt c, a) -> (
              (* shifting is exact for two's-complement multiply;
                 division/modulo are left alone (signed semantics) *)
              match log2_exact c with
              | Some s -> rewrite (Bin (Shl, a, CInt (Int64.of_int s)))
              | None -> ins)
            | _ -> ins)
          b.instrs)
    f.blocks;
  !count

(** Run the standard cleanup pipeline on every function. *)
let optimize (p : Program.t) : Program.t =
  List.iter
    (fun f ->
      ignore (constant_fold_func f);
      ignore (strength_reduce_func f);
      ignore (dead_code_elim_func f))
    p.funcs;
  p
