(** Natural-loop detection, used to cross-check the loop metadata the
    structured front-end records on each function. *)

type natural_loop = {
  header : Instr.label;
  latches : Instr.label list;
  blocks : Instr.label list;
}

(** Find natural loops from back edges [latch -> header] where the
    header dominates the latch. *)
let analyze (f : Func.t) : natural_loop list =
  let dom = Dom.compute f in
  let back_edges =
    List.concat_map
      (fun (b : Func.block) ->
        List.filter_map
          (fun s -> if Dom.dominates dom s b.label then Some (b.label, s) else None)
          (Func.successors b))
      f.blocks
  in
  let preds = Func.predecessors f in
  let loop_of (latch, header) =
    let in_loop = Hashtbl.create 8 in
    Hashtbl.replace in_loop header ();
    let rec walk l =
      if not (Hashtbl.mem in_loop l) then begin
        Hashtbl.replace in_loop l ();
        List.iter walk (try Hashtbl.find preds l with Not_found -> [])
      end
    in
    walk latch;
    { header; latches = [ latch ];
      blocks = Hashtbl.fold (fun l () acc -> l :: acc) in_loop [] }
  in
  (* Merge loops sharing a header. *)
  let by_header = Hashtbl.create 8 in
  List.iter
    (fun e ->
      let lp = loop_of e in
      match Hashtbl.find_opt by_header lp.header with
      | None -> Hashtbl.replace by_header lp.header lp
      | Some prev ->
        Hashtbl.replace by_header lp.header
          { prev with
            latches = prev.latches @ lp.latches;
            blocks =
              List.sort_uniq compare (prev.blocks @ lp.blocks) })
    back_edges;
  Hashtbl.fold (fun _ lp acc -> lp :: acc) by_header []
  |> List.sort (fun a b -> compare a.header b.header)

(** Check that the recorded metadata matches the CFG-derived loops:
    same headers, each recorded body a superset of the natural body,
    and each latch is a recorded latch.  Returns an error description
    on mismatch. *)
let check_metadata (f : Func.t) : (unit, string) result =
  let natural = analyze f in
  let recorded = f.loops in
  let nat_headers = List.map (fun l -> l.header) natural in
  let rec_headers =
    List.map (fun (l : Func.loop_info) -> l.header) recorded
  in
  if List.sort compare nat_headers <> List.sort compare rec_headers then
    Error
      (Fmt.str "loop headers differ in %s: cfg=%a recorded=%a" f.name
         Fmt.(Dump.list int) nat_headers
         Fmt.(Dump.list int) rec_headers)
  else
    List.fold_left
      (fun acc (nl : natural_loop) ->
        match acc with
        | Error _ -> acc
        | Ok () -> (
          match
            List.find_opt
              (fun (l : Func.loop_info) -> l.header = nl.header)
              recorded
          with
          | None -> Error (Fmt.str "no metadata for loop bb%d" nl.header)
          | Some meta ->
            if not (List.for_all (fun b -> List.mem b meta.body) nl.blocks)
            then
              Error
                (Fmt.str "loop bb%d: metadata body misses cfg blocks"
                   nl.header)
            else if not (List.mem meta.latch nl.latches) then
              Error (Fmt.str "loop bb%d: latch mismatch" nl.header)
            else Ok ()))
      (Ok ()) natural
