(** The flat word-addressed memory shared by every execution substrate
    (golden interpreter, cycle simulator, CPU and HLS models). *)

open Types

type t = {
  cells : value array;
  mutable loads : int;
  mutable stores : int;
}

let create (p : Program.t) : t =
  let size = Program.memory_words p in
  let cells = Array.make (max size 1) (VInt 0L) in
  List.iter
    (fun (g : Program.global) ->
      match g.ginit with
      | None ->
        (* Zero of the element type. *)
        let zero =
          match g.gelt with TFloat -> VFloat 0.0 | _ -> VInt 0L
        in
        for i = 0 to g.gsize - 1 do
          cells.(g.gbase + i) <- zero
        done
      | Some init ->
        Array.iteri
          (fun i v -> if i < g.gsize then cells.(g.gbase + i) <- v)
          init)
    p.globals;
  { cells; loads = 0; stores = 0 }

let size (m : t) = Array.length m.cells

let in_bounds (m : t) addr = addr >= 0 && addr < Array.length m.cells

let load (m : t) (addr : int) : value =
  if not (in_bounds m addr) then
    invalid_arg (Fmt.str "Memory.load: address %d out of bounds" addr);
  m.loads <- m.loads + 1;
  m.cells.(addr)

let store (m : t) (addr : int) (v : value) : unit =
  if not (in_bounds m addr) then
    invalid_arg (Fmt.str "Memory.store: address %d out of bounds" addr);
  m.stores <- m.stores + 1;
  m.cells.(addr) <- v

let load_float (m : t) addr =
  match load m addr with
  | VFloat f -> f
  | VInt i -> Int64.to_float i
  | v -> invalid_arg ("Memory.load_float: " ^ value_to_string v)

(** Load a [shape] tile whose row [r] starts at [addr + r*row_stride]. *)
let load_tile (m : t) ~(addr : int) ~(row_stride : int) (s : shape) :
    float array =
  let t = Array.make (shape_words s) 0.0 in
  for r = 0 to s.rows - 1 do
    for c = 0 to s.cols - 1 do
      t.((r * s.cols) + c) <- load_float m (addr + (r * row_stride) + c)
    done
  done;
  t

let store_tile (m : t) ~(addr : int) ~(row_stride : int) (s : shape)
    (t : float array) : unit =
  for r = 0 to s.rows - 1 do
    for c = 0 to s.cols - 1 do
      store m (addr + (r * row_stride) + c) (VFloat t.((r * s.cols) + c))
    done
  done

(** Snapshot of a named global's contents, for golden comparisons. *)
let dump_global (m : t) (p : Program.t) (name : string) : value array =
  let g = Program.find_global p name in
  Array.sub m.cells g.gbase g.gsize

let reset_counters (m : t) =
  m.loads <- 0;
  m.stores <- 0
