(** Behaviour-level loop unrolling.

    The paper's front-end leans on software transformations — "we
    would like to leverage software transformations such as loop
    unrolling to expose more opportunity for hardware transformations"
    (§2.2) — because each unrolled copy of a loop body becomes an
    independent slice of dataflow in the μIR graph (more function
    units in flight per iteration).

    This implements full unrolling of innermost counted loops with
    straight-line bodies and a known constant trip count:

      for (i = C0; i < C1; i = i + C2) BODY      trip = ceil((C1-C0)/C2)

    The loop's blocks are replaced by [trip] renamed copies of the
    body/latch instructions chained in the preheader's stead; header
    phis become direct operand substitutions.  Loops with conditional
    control flow, calls, spawns, or non-constant bounds are left
    alone. *)

open Instr

(** Header phis as (reg, init operand, latch operand). *)
let carried_phis (f : Func.t) (lp : Func.loop_info) :
    (reg * operand * operand) list =
  List.filter_map
    (fun (i : Instr.t) ->
      match i.kind with
      | Phi incoming -> (
        match
          ( List.assoc_opt lp.preheader incoming,
            List.assoc_opt lp.latch incoming )
        with
        | Some init, Some next -> Some (i.id, init, next)
        | _ -> None)
      | _ -> None)
    (Func.block f lp.header).instrs

(** Constant trip count of [lp] if its induction phi (the one feeding
    the exit comparison) has constant bounds and a positive constant
    step; other carried phis (accumulators) are fine. *)
let trip_count (f : Func.t) (lp : Func.loop_info) : int option =
  let header = Func.block f lp.header in
  match header.term with
  | CondBr (Reg c, _, _) -> (
    let cond = Func.find_instr f c in
    match cond with
    | Some { kind = Icmp (Slt, Reg ind, CInt c1); _ } -> (
      match
        List.find_opt (fun (r, _, _) -> r = ind) (carried_phis f lp)
      with
      | Some (_, CInt c0, Reg nxt) -> (
        match Func.find_instr f nxt with
        | Some { kind = Bin (Add, Reg i', CInt s); _ }
          when i' = ind && Int64.to_int s > 0 ->
          let c0 = Int64.to_int c0
          and c1 = Int64.to_int c1
          and s = Int64.to_int s in
          if c1 <= c0 then Some 0 else Some ((c1 - c0 + s - 1) / s)
        | _ -> None)
      | _ -> None)
    | _ -> None)
  | _ -> None

(** The loop is unrollable when its body is pure straight-line code:
    header + one body block + latch, no calls/spawns/syncs, and no
    inner loops. *)
let unrollable (f : Func.t) (lp : Func.loop_info) : bool =
  let inner =
    List.exists
      (fun (l : Func.loop_info) ->
        l.header <> lp.header && List.mem l.header lp.body)
      f.loops
  in
  (not inner)
  && List.length lp.body <= 3
  && List.for_all
       (fun l ->
         let b = Func.block f l in
         List.for_all
           (fun (i : Instr.t) ->
             match i.kind with
             | Call _ | Spawn _ | Sync -> false
             | Phi _ -> l = lp.header
             | _ -> true)
           b.instrs)
       lp.body

(** Fully unroll one loop; returns true on success. *)
let unroll_loop (f : Func.t) (lp : Func.loop_info) ~(max_trip : int) : bool =
  match trip_count f lp with
  | Some trip when trip >= 0 && trip <= max_trip && unrollable f lp ->
    let header = Func.block f lp.header in
    let body_labels =
      List.filter (fun l -> l <> lp.header) lp.body
    in
    (* instructions of one iteration, in execution order *)
    let iteration_instrs =
      List.filter
        (fun (i : Instr.t) ->
          match i.kind with Phi _ -> false | _ -> true)
        header.instrs
      @ List.concat_map (fun l -> (Func.block f l).instrs) body_labels
    in
    let carried = carried_phis f lp in
    if carried = [] then invalid_arg "unroll: no carried phis";
    (* Emit [trip] renamed copies into a straight line. *)
    let out_instrs = ref [] in
    let cur =
      Array.of_list (List.map (fun (_, init, _) -> init) carried)
    in
    let fresh () =
      let r = f.next_reg in
      f.next_reg <- r + 1;
      r
    in
    for _ = 1 to trip do
      let rename : (reg, operand) Hashtbl.t = Hashtbl.create 16 in
      List.iteri
        (fun k (r, _, _) -> Hashtbl.replace rename r cur.(k))
        carried;
      let subst op =
        match op with
        | Reg r -> (
          match Hashtbl.find_opt rename r with Some o -> o | None -> op)
        | _ -> op
      in
      let subst_kind (k : kind) : kind =
        match k with
        | Bin (o, a, b) -> Bin (o, subst a, subst b)
        | Fbin (o, a, b) -> Fbin (o, subst a, subst b)
        | Icmp (o, a, b) -> Icmp (o, subst a, subst b)
        | Fcmp (o, a, b) -> Fcmp (o, subst a, subst b)
        | Funary (o, a) -> Funary (o, subst a)
        | Cast (c, a) -> Cast (c, subst a)
        | Select (c, a, b) -> Select (subst c, subst a, subst b)
        | Gep { base; index; scale } ->
          Gep { base = subst base; index = subst index; scale }
        | Load { addr } -> Load { addr = subst addr }
        | Store { addr; value } ->
          Store { addr = subst addr; value = subst value }
        | Tload { addr; row_stride; shape } ->
          Tload { addr = subst addr; row_stride = subst row_stride; shape }
        | Tstore { addr; row_stride; value; shape } ->
          Tstore
            { addr = subst addr; row_stride = subst row_stride;
              value = subst value; shape }
        | Tbin (o, a, b) -> Tbin (o, subst a, subst b)
        | Tunary (o, a) -> Tunary (o, subst a)
        | Phi _ | Call _ | Spawn _ | Sync -> assert false
      in
      List.iter
        (fun (i : Instr.t) ->
          let id = fresh () in
          Hashtbl.replace rename i.id (Reg id);
          out_instrs := { i with id; kind = subst_kind i.kind } :: !out_instrs)
        iteration_instrs;
      (* carried values feeding the following copy *)
      List.iteri
        (fun k (_, _, next_op) ->
          cur.(k) <-
            (match next_op with
            | Reg r -> (
              match Hashtbl.find_opt rename r with
              | Some o -> o
              | None -> next_op)
            | o -> o))
        carried
    done;
    (* Uses of the header phis after the loop see the final carried
       values: rewrite them throughout the function. *)
    let final : (reg, operand) Hashtbl.t = Hashtbl.create 4 in
    List.iteri (fun k (r, _, _) -> Hashtbl.replace final r cur.(k)) carried;
    let subst_final op =
      match op with
      | Reg r -> (
        match Hashtbl.find_opt final r with Some o -> o | None -> op)
      | _ -> op
    in
    let subst_kind_final (k : kind) : kind =
      match k with
      | Bin (o, a, b) -> Bin (o, subst_final a, subst_final b)
      | Fbin (o, a, b) -> Fbin (o, subst_final a, subst_final b)
      | Icmp (o, a, b) -> Icmp (o, subst_final a, subst_final b)
      | Fcmp (o, a, b) -> Fcmp (o, subst_final a, subst_final b)
      | Funary (o, a) -> Funary (o, subst_final a)
      | Cast (c, a) -> Cast (c, subst_final a)
      | Select (c, a, b) ->
        Select (subst_final c, subst_final a, subst_final b)
      | Phi ins -> Phi (List.map (fun (l, o) -> (l, subst_final o)) ins)
      | Gep { base; index; scale } ->
        Gep { base = subst_final base; index = subst_final index; scale }
      | Load { addr } -> Load { addr = subst_final addr }
      | Store { addr; value } ->
        Store { addr = subst_final addr; value = subst_final value }
      | Tload { addr; row_stride; shape } ->
        Tload
          { addr = subst_final addr; row_stride = subst_final row_stride;
            shape }
      | Tstore { addr; row_stride; value; shape } ->
        Tstore
          { addr = subst_final addr; row_stride = subst_final row_stride;
            value = subst_final value; shape }
      | Tbin (o, a, b) -> Tbin (o, subst_final a, subst_final b)
      | Tunary (o, a) -> Tunary (o, subst_final a)
      | Call { callee; args } ->
        Call { callee; args = List.map subst_final args }
      | Spawn { callee; args } ->
        Spawn { callee; args = List.map subst_final args }
      | Sync -> Sync
    in
    List.iter
      (fun (b : Func.block) ->
        if not (List.mem b.label lp.body) then begin
          b.instrs <-
            List.map
              (fun (i : Instr.t) -> { i with kind = subst_kind_final i.kind })
              b.instrs;
          (match b.term with
          | CondBr (c, t, e) -> b.term <- CondBr (subst_final c, t, e)
          | Ret (Some v) -> b.term <- Ret (Some (subst_final v))
          | _ -> ())
        end)
      f.blocks;
    (* Splice: the header block becomes the unrolled straight-line
       code, jumping to the exit; other loop blocks are dropped. *)
    header.instrs <- List.rev !out_instrs;
    header.term <- Br lp.exit;
    f.blocks <-
      List.filter
        (fun (b : Func.block) ->
          b.label = lp.header || not (List.mem b.label body_labels))
        f.blocks;
    f.loops <-
      List.filter_map
        (fun (l : Func.loop_info) ->
          if l.header = lp.header then None
          else
            (* scrub the deleted blocks from enclosing loops' bodies *)
            Some
              { l with
                body =
                  List.filter
                    (fun b -> not (List.mem b body_labels))
                    l.body })
        f.loops;
    true
  | _ -> false

(** Unroll every eligible innermost loop of [f]; returns how many. *)
let unroll_func ?(max_trip = 16) (f : Func.t) : int =
  let n = ref 0 in
  let rec go () =
    let candidate =
      List.find_opt (fun lp -> unroll_loop f lp ~max_trip) f.loops
    in
    match candidate with
    | Some _ ->
      incr n;
      go ()
    | None -> ()
  in
  go ();
  !n

(** Unroll across the whole program (then re-run the cleanups, since
    unrolled bodies are constant-folding fodder). *)
let unroll ?(max_trip = 16) (p : Program.t) : int =
  let n =
    List.fold_left (fun acc f -> acc + unroll_func ~max_trip f) 0 p.funcs
  in
  if n > 0 then ignore (Transform.optimize p);
  n
