(** Behaviour-level loop unrolling (the software transformation the
    paper's front-end leans on to expose hardware parallelism).

    Fully unrolls innermost counted loops with straight-line bodies
    and constant trip counts; loops with conditional control flow,
    calls, spawns, or dynamic bounds are left untouched. *)

val trip_count : Func.t -> Func.loop_info -> int option
(** Constant trip count, when the loop has the canonical
    [for (i = C0; i < C1; i = i + C2)] shape. *)

val unroll_func : ?max_trip:int -> Func.t -> int
(** Unroll every eligible loop of one function; returns how many. *)

val unroll : ?max_trip:int -> Program.t -> int
(** Unroll across the whole program, then re-run the cleanup passes.
    Returns the number of loops unrolled. *)
