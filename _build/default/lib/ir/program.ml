(** A whole program: global arrays laid out in a flat word-addressed
    memory, plus a set of functions.  Each global array is its own
    allocation site; the trivial points-to analysis used by the memory
    localization passes maps every address expression to the global it
    was derived from. *)

open Types

type global = {
  gname : string;
  gsize : int;               (** words *)
  gelt : ty;                 (** element type, for width modelling *)
  ginit : value array option; (** optional initial contents *)
  gbase : int;               (** assigned word address of element 0 *)
  gspace : int;              (** allocation-site / address-space id *)
}

type t = {
  globals : global list;
  funcs : Func.t list;
}

let find_func (p : t) name =
  match List.find_opt (fun (f : Func.t) -> f.name = name) p.funcs with
  | Some f -> f
  | None -> invalid_arg ("Program.find_func: no function " ^ name)

let find_global (p : t) name =
  match List.find_opt (fun g -> g.gname = name) p.globals with
  | Some g -> g
  | None -> invalid_arg ("Program.find_global: no global " ^ name)

let has_func (p : t) name =
  List.exists (fun (f : Func.t) -> f.name = name) p.funcs

(** Total memory footprint in words. *)
let memory_words (p : t) =
  List.fold_left (fun acc g -> max acc (g.gbase + g.gsize)) 0 p.globals

(** Lay out globals from word 0 and assign space ids.  Each array is
    aligned to a cache line (8 words) and separated from its neighbour
    by one line of padding, which skews equally-sized arrays across
    cache banks instead of landing them all on bank 0. *)
let layout ?(line_words = 8) ?(pad_lines = 1)
    (globals : (string * int * ty * value array option) list) : global list =
  let align n = (n + line_words - 1) / line_words * line_words in
  let _, gs =
    List.fold_left
      (fun (base, acc) (gname, gsize, gelt, ginit) ->
        let g =
          { gname; gsize; gelt; ginit; gbase = base;
            gspace = List.length acc + 1 }
        in
        (align (base + gsize) + (pad_lines * line_words), g :: acc))
      (0, []) globals
  in
  List.rev gs

(** The global that contains word address [addr], if any. *)
let global_of_addr (p : t) (addr : int) =
  List.find_opt
    (fun g -> addr >= g.gbase && addr < g.gbase + g.gsize)
    p.globals

(** Attach initial contents to named globals (used by workload drivers
    to load datasets before execution). *)
let with_init (p : t) (inits : (string * value array) list) : t =
  List.iter
    (fun (n, a) ->
      let g = find_global p n in
      if Array.length a > g.gsize then
        invalid_arg (Fmt.str "Program.with_init: %s data too large" n))
    inits;
  { p with
    globals =
      List.map
        (fun g ->
          match List.assoc_opt g.gname inits with
          | Some a -> { g with ginit = Some a }
          | None -> g)
        p.globals }

let pp ppf (p : t) =
  Fmt.pf ppf "@[<v>";
  List.iter
    (fun g ->
      Fmt.pf ppf "global %s : %a[%d] @@%d space %d@," g.gname pp_ty g.gelt
        g.gsize g.gbase g.gspace)
    p.globals;
  List.iter (fun f -> Fmt.pf ppf "%a@," Func.pp f) p.funcs;
  Fmt.pf ppf "@]"
