(** Instructions of the SSA compiler IR.

    The IR deliberately mirrors the LLVM subset the μIR paper's
    front-end consumes: three-address scalar ops, phis, loads/stores
    through word addresses, calls, TAPIR-style [spawn]/[sync], and the
    tensor-tile intrinsics used by the [T]-suffixed workloads. *)

open Types

type reg = int

type label = int

type operand =
  | Reg of reg
  | CBool of bool
  | CInt of int64
  | CFloat of float
  | GlobalAddr of string  (** word address of a global array's base *)

let op_reg = function Reg r -> Some r | _ -> None

type ibin = Add | Sub | Mul | Sdiv | Srem | And | Or | Xor | Shl | Lshr | Ashr
type fbin = Fadd | Fsub | Fmul | Fdiv
type icmp = Eq | Ne | Slt | Sle | Sgt | Sge
type fcmp = Foeq | Fone | Folt | Fole | Fogt | Foge
type funary = Fneg | Fexp | Fsqrt | Fabs
type cast = Sitofp | Fptosi | Zext of int | Trunc of int

type tbin = Tmul  (** tile matrix multiply *) | Tadd  (** elementwise add *)
type tunary = Trelu

type kind =
  | Bin of ibin * operand * operand
  | Fbin of fbin * operand * operand
  | Icmp of icmp * operand * operand
  | Fcmp of fcmp * operand * operand
  | Funary of funary * operand
  | Cast of cast * operand
  | Select of operand * operand * operand
  | Phi of (label * operand) list
  | Gep of { base : operand; index : operand; scale : int }
      (** word address [base + index*scale] *)
  | Load of { addr : operand }
  | Store of { addr : operand; value : operand }
  | Call of { callee : string; args : operand list }
  | Spawn of { callee : string; args : operand list }
      (** fire a concurrent child; the result register becomes valid
          only after the next [Sync] *)
  | Sync
  | Tload of { addr : operand; row_stride : operand; shape : shape }
  | Tstore of { addr : operand; row_stride : operand; value : operand;
                shape : shape }
  | Tbin of tbin * operand * operand
  | Tunary of tunary * operand

type t = {
  id : reg;      (** result register; also the instruction's identity *)
  ty : ty;       (** result type, [TUnit] for void instructions *)
  kind : kind;
}

type terminator =
  | Br of label
  | CondBr of operand * label * label  (** cond, then-target, else-target *)
  | Ret of operand option

(** Operands read by an instruction, in positional order. *)
let operands (i : t) : operand list =
  match i.kind with
  | Bin (_, a, b) | Fbin (_, a, b) | Icmp (_, a, b) | Fcmp (_, a, b)
  | Tbin (_, a, b) -> [ a; b ]
  | Funary (_, a) | Cast (_, a) | Tunary (_, a) -> [ a ]
  | Select (c, a, b) -> [ c; a; b ]
  | Phi ins -> List.map snd ins
  | Gep { base; index; _ } -> [ base; index ]
  | Load { addr } -> [ addr ]
  | Store { addr; value } -> [ addr; value ]
  | Call { args; _ } | Spawn { args; _ } -> args
  | Sync -> []
  | Tload { addr; row_stride; _ } -> [ addr; row_stride ]
  | Tstore { addr; row_stride; value; _ } -> [ addr; row_stride; value ]

let used_regs i = List.filter_map op_reg (operands i)

let has_side_effect (i : t) =
  match i.kind with
  | Store _ | Call _ | Spawn _ | Sync | Tstore _ -> true
  | Load _ | Tload _ -> false (* reordered only by the may-alias rules *)
  | _ -> false

let is_memory (i : t) =
  match i.kind with
  | Load _ | Store _ | Tload _ | Tstore _ -> true
  | _ -> false

let ibin_to_string = function
  | Add -> "add" | Sub -> "sub" | Mul -> "mul" | Sdiv -> "sdiv"
  | Srem -> "srem" | And -> "and" | Or -> "or" | Xor -> "xor"
  | Shl -> "shl" | Lshr -> "lshr" | Ashr -> "ashr"

let fbin_to_string = function
  | Fadd -> "fadd" | Fsub -> "fsub" | Fmul -> "fmul" | Fdiv -> "fdiv"

let icmp_to_string = function
  | Eq -> "eq" | Ne -> "ne" | Slt -> "slt" | Sle -> "sle"
  | Sgt -> "sgt" | Sge -> "sge"

let fcmp_to_string = function
  | Foeq -> "oeq" | Fone -> "one" | Folt -> "olt" | Fole -> "ole"
  | Fogt -> "ogt" | Foge -> "oge"

let funary_to_string = function
  | Fneg -> "fneg" | Fexp -> "fexp" | Fsqrt -> "fsqrt" | Fabs -> "fabs"

let cast_to_string = function
  | Sitofp -> "sitofp" | Fptosi -> "fptosi"
  | Zext w -> Fmt.str "zext.i%d" w
  | Trunc w -> Fmt.str "trunc.i%d" w

let tbin_to_string = function Tmul -> "tmul" | Tadd -> "tadd"
let tunary_to_string = function Trelu -> "trelu"

let pp_operand ppf = function
  | Reg r -> Fmt.pf ppf "%%%d" r
  | CBool b -> Fmt.bool ppf b
  | CInt i -> Fmt.pf ppf "%Ld" i
  | CFloat f -> Fmt.pf ppf "%h" f
  | GlobalAddr g -> Fmt.pf ppf "@%s" g

let pp_kind ppf (k : kind) =
  let op = pp_operand in
  match k with
  | Bin (b, x, y) -> Fmt.pf ppf "%s %a, %a" (ibin_to_string b) op x op y
  | Fbin (b, x, y) -> Fmt.pf ppf "%s %a, %a" (fbin_to_string b) op x op y
  | Icmp (c, x, y) -> Fmt.pf ppf "icmp %s %a, %a" (icmp_to_string c) op x op y
  | Fcmp (c, x, y) -> Fmt.pf ppf "fcmp %s %a, %a" (fcmp_to_string c) op x op y
  | Funary (u, x) -> Fmt.pf ppf "%s %a" (funary_to_string u) op x
  | Cast (c, x) -> Fmt.pf ppf "%s %a" (cast_to_string c) op x
  | Select (c, a, b) -> Fmt.pf ppf "select %a, %a, %a" op c op a op b
  | Phi ins ->
    Fmt.pf ppf "phi %a"
      Fmt.(list ~sep:(any ", ")
             (fun ppf (l, o) -> pf ppf "[bb%d: %a]" l pp_operand o))
      ins
  | Gep { base; index; scale } ->
    Fmt.pf ppf "gep %a + %a*%d" op base op index scale
  | Load { addr } -> Fmt.pf ppf "load %a" op addr
  | Store { addr; value } -> Fmt.pf ppf "store %a, %a" op value op addr
  | Call { callee; args } ->
    Fmt.pf ppf "call @%s(%a)" callee Fmt.(list ~sep:comma pp_operand) args
  | Spawn { callee; args } ->
    Fmt.pf ppf "spawn @%s(%a)" callee Fmt.(list ~sep:comma pp_operand) args
  | Sync -> Fmt.string ppf "sync"
  | Tload { addr; row_stride; shape } ->
    Fmt.pf ppf "tload<%a> %a stride %a" pp_shape shape op addr op row_stride
  | Tstore { addr; row_stride; value; shape } ->
    Fmt.pf ppf "tstore<%a> %a, %a stride %a" pp_shape shape op value op addr
      op row_stride
  | Tbin (b, x, y) -> Fmt.pf ppf "%s %a, %a" (tbin_to_string b) op x op y
  | Tunary (u, x) -> Fmt.pf ppf "%s %a" (tunary_to_string u) op x

let pp ppf (i : t) =
  if equal_ty i.ty TUnit then Fmt.pf ppf "%a" pp_kind i.kind
  else Fmt.pf ppf "%%%d:%a = %a" i.id pp_ty i.ty pp_kind i.kind

let pp_terminator ppf = function
  | Br l -> Fmt.pf ppf "br bb%d" l
  | CondBr (c, t, f) -> Fmt.pf ppf "br %a, bb%d, bb%d" pp_operand c t f
  | Ret None -> Fmt.string ppf "ret"
  | Ret (Some v) -> Fmt.pf ppf "ret %a" pp_operand v
