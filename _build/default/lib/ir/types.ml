(** Scalar and composite types of the compiler IR.

    The IR uses a word-oriented memory model: every scalar occupies one
    64-bit word of the flat address space, regardless of its declared
    width.  Declared widths still matter — the synthesis model sizes
    function units and wires from them — but the functional semantics
    are width-checked only at the boundaries (stores truncate, loads
    sign-extend), which keeps the interpreter and the cycle simulator
    simple without changing any timing-relevant behaviour. *)

type shape = { rows : int; cols : int }

let shape_words { rows; cols } = rows * cols

type ty =
  | TUnit
  | TBool
  | TInt of int  (** bit width: 32 or 64 *)
  | TFloat      (** single precision *)
  | TPtr        (** word address into the flat memory *)
  | TTensor of shape  (** a tile register of [rows*cols] floats *)

let i32 = TInt 32
let i64 = TInt 64

let equal_ty (a : ty) (b : ty) = a = b

let ty_bits = function
  | TUnit -> 0
  | TBool -> 1
  | TInt w -> w
  | TFloat -> 32
  | TPtr -> 64
  | TTensor s -> 32 * shape_words s

let pp_shape ppf { rows; cols } = Fmt.pf ppf "%dx%d" rows cols

let pp_ty ppf = function
  | TUnit -> Fmt.string ppf "void"
  | TBool -> Fmt.string ppf "bool"
  | TInt w -> Fmt.pf ppf "i%d" w
  | TFloat -> Fmt.string ppf "f32"
  | TPtr -> Fmt.string ppf "ptr"
  | TTensor s -> Fmt.pf ppf "tile<%a>" pp_shape s

let ty_to_string t = Fmt.str "%a" pp_ty t

(** Runtime values flowing through the interpreter and the cycle
    simulator.  [VPoison] marks the output of a predicated-off
    side-effecting node; it must never be consumed by a committed
    side effect. *)
type value =
  | VUnit
  | VBool of bool
  | VInt of int64
  | VFloat of float
  | VTensor of float array  (** row major, length = rows*cols *)
  | VPoison

let vint i = VInt (Int64.of_int i)

let pp_value ppf = function
  | VUnit -> Fmt.string ppf "()"
  | VBool b -> Fmt.bool ppf b
  | VInt i -> Fmt.pf ppf "%Ld" i
  | VFloat f -> Fmt.pf ppf "%g" f
  | VTensor a ->
    Fmt.pf ppf "[%a]" Fmt.(array ~sep:(any ";") float) a
  | VPoison -> Fmt.string ppf "poison"

let value_to_string v = Fmt.str "%a" pp_value v

(** Structural equality with a tolerance for floats, used by tests and
    the golden-model comparison. *)
let value_close ?(eps = 1e-5) a b =
  let feq x y =
    let d = Float.abs (x -. y) in
    d <= eps *. Float.max 1.0 (Float.max (Float.abs x) (Float.abs y))
  in
  match a, b with
  | VUnit, VUnit -> true
  | VBool x, VBool y -> x = y
  | VInt x, VInt y -> Int64.equal x y
  | VFloat x, VFloat y -> feq x y
  | VTensor x, VTensor y ->
    Array.length x = Array.length y
    && (let ok = ref true in
        Array.iteri (fun i xi -> if not (feq xi y.(i)) then ok := false) x;
        !ok)
  | VPoison, VPoison -> true
  | _ -> false

let is_poison = function VPoison -> true | _ -> false

(** Truth of a value used as a branch condition. *)
let truth = function
  | VBool b -> b
  | VInt i -> not (Int64.equal i 0L)
  | _ -> invalid_arg "Types.truth: not a condition value"

(* The conversions below are lenient about the scalar kind: a
   speculatively executed (predicated-off) operation may read a word
   that was last written with a different element type — hardware
   reinterprets the bits; here we convert numerically.  Such values
   only flow into discarded merge arms. *)
let as_int = function
  | VInt i -> i
  | VBool true -> 1L
  | VBool false -> 0L
  | VFloat f -> Int64.of_float f
  | v -> invalid_arg ("Types.as_int: " ^ value_to_string v)

let as_float = function
  | VFloat f -> f
  | VInt i -> Int64.to_float i
  | VBool b -> (if b then 1.0 else 0.0)
  | v -> invalid_arg ("Types.as_float: " ^ value_to_string v)

let as_tensor = function
  | VTensor a -> a
  | v -> invalid_arg ("Types.as_tensor: " ^ value_to_string v)
