lib/cpu/arm.ml: Array Instr Interp List Muir_ir Program
