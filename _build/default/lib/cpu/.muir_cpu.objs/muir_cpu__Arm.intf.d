lib/cpu/arm.mli: Muir_ir
