(** ARM Cortex-A9-class timing model (the §6.6 comparison baseline):
    dual-issue, 1 GHz, partial out-of-order latency hiding, 32 KB L1,
    VFP latencies, libm calls for exp/sqrt.  Driven by the golden
    interpreter's dynamic trace, so it executes exactly the program
    the accelerator implements. *)

type params = {
  issue_width : float;
  ooo_hiding : float;   (** fraction of producer latency hidden *)
  l1_kb : int;
  l1_ways : int;
  line_words : int;
  miss_cycles : float;
  branch_miss_rate : float;
  branch_penalty : float;
  call_overhead : float;
}

val default : params

type result = {
  cpu_cycles : float;  (** at 1 GHz, cycles = nanoseconds *)
  cpu_instrs : int;
  cpu_l1_misses : int;
}

val run :
  ?entry:string ->
  ?args:Muir_ir.Types.value list ->
  ?params:params ->
  Muir_ir.Program.t ->
  result

val nanoseconds : result -> float
(** Wall-clock nanoseconds at the modelled 1 GHz clock. *)
