(** ARM Cortex-A9-class timing model (the paper's §6.6 comparison
    point: dual-issue out-of-order, 1 GHz, running the same programs).

    The model consumes the golden interpreter's dynamic trace, so it
    executes exactly the program the accelerator implements.  Costs:

    - issue bandwidth: 2 instructions per cycle;
    - an out-of-order window hides roughly half of each long-latency
      producer's latency (int mul/div, FP, libm calls for exp/sqrt —
      the A9's VFP has no exp instruction);
    - a 32 KB 4-way L1 with 8-word lines; a miss costs the DRAM round
      trip; no prefetcher is modelled (these kernels stream, so this
      mildly favours the accelerator — noted in EXPERIMENTS.md);
    - branches: 2-cycle average redirect cost on the ~6% of branches a
      simple predictor misses in loopy code;
    - call/spawn linkage overhead per invocation.  Cilk constructs are
      executed serially (the paper's A9 numbers also note "ARM does
      not support Cilk"). *)

open Muir_ir
module I = Instr

type params = {
  issue_width : float;
  ooo_hiding : float;       (** fraction of producer latency hidden *)
  l1_kb : int;
  l1_ways : int;
  line_words : int;
  miss_cycles : float;
  branch_miss_rate : float;
  branch_penalty : float;
  call_overhead : float;
}

let default : params =
  { issue_width = 2.0; ooo_hiding = 0.5; l1_kb = 32; l1_ways = 4;
    line_words = 8; miss_cycles = 70.0; branch_miss_rate = 0.06;
    branch_penalty = 9.0; call_overhead = 6.0 }

(* Simple set-associative LRU cache for the trace. *)
type cache = { sets : int; ways : int; line_words : int; lines : int list array }

let new_cache (p : params) : cache =
  let words = p.l1_kb * 1024 / 4 in
  let sets = max 1 (words / (p.line_words * p.l1_ways)) in
  { sets; ways = p.l1_ways; line_words = p.line_words;
    lines = Array.make sets [] }

let cache_access (c : cache) (addr : int) : bool =
  let line = addr / c.line_words in
  let set = line mod c.sets in
  let cur = c.lines.(set) in
  if List.mem line cur then begin
    c.lines.(set) <- line :: List.filter (fun l -> l <> line) cur;
    true
  end
  else begin
    let kept =
      if List.length cur >= c.ways then
        List.filteri (fun i _ -> i < c.ways - 1) cur
      else cur
    in
    c.lines.(set) <- line :: kept;
    false
  end

(** Extra (post-issue) latency of an instruction, in cycles. *)
let op_latency (k : I.kind) : float =
  match k with
  | I.Bin (I.Mul, _, _) -> 3.0
  | I.Bin ((I.Sdiv | I.Srem), _, _) -> 14.0
  | I.Fbin ((I.Fadd | I.Fsub), _, _) -> 9.0  (* A9 VFP add *)
  | I.Fbin (I.Fmul, _, _) -> 6.0
  | I.Fbin (I.Fdiv, _, _) -> 25.0
  | I.Funary ((I.Fexp | I.Fsqrt), _) -> 70.0  (* libm call *)
  | I.Fcmp _ -> 2.0
  | I.Tbin (I.Tmul, _, _) -> 8.0 *. 4.0  (* 8 scalar MACs on the VFP *)
  | I.Tbin (I.Tadd, _, _) -> 4.0 *. 4.0
  | I.Tunary (I.Trelu, _) -> 4.0 *. 2.0
  | _ -> 0.0

type result = {
  cpu_cycles : float;  (** at 1 GHz, cycles = ns *)
  cpu_instrs : int;
  cpu_l1_misses : int;
}

(** Run [prog] on the CPU model. *)
let run ?(entry = "main") ?(args = []) ?(params = default) (prog : Program.t)
    : result =
  let cache = new_cache params in
  let cycles = ref 0.0 in
  let instrs = ref 0 in
  let misses = ref 0 in
  let tracer (ev : Interp.trace_event) =
    incr instrs;
    cycles := !cycles +. (1.0 /. params.issue_width);
    cycles := !cycles +. ((1.0 -. params.ooo_hiding) *. op_latency ev.ev_kind);
    (match ev.ev_kind, ev.ev_addr with
    | (I.Load _ | I.Store _), Some a ->
      if not (cache_access cache a) then begin
        incr misses;
        cycles := !cycles +. params.miss_cycles
      end
    | (I.Tload _ | I.Tstore _), Some a ->
      (* four word accesses per tile *)
      for w = 0 to 3 do
        if not (cache_access cache (a + w)) then begin
          incr misses;
          cycles := !cycles +. params.miss_cycles
        end
      done
    | _ -> ());
    match ev.ev_kind with
    | I.Call _ | I.Spawn _ -> cycles := !cycles +. params.call_overhead
    | _ -> ()
  in
  let _, _, stats = Interp.run ~entry ~args ~tracer prog in
  (* branch redirects *)
  cycles :=
    !cycles
    +. (float_of_int stats.dyn_branches *. params.branch_miss_rate
        *. params.branch_penalty);
  { cpu_cycles = !cycles; cpu_instrs = !instrs; cpu_l1_misses = !misses }

(** Wall-clock nanoseconds at the A9's 1 GHz. *)
let nanoseconds (r : result) = r.cpu_cycles
