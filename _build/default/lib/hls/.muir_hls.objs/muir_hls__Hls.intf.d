lib/hls/hls.mli: Hashtbl Muir_ir
