lib/hls/hls.ml: Float Func Hashtbl Instr Interp List Muir_ir Program Types
