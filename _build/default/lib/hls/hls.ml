(** Commercial-HLS baseline model (the §5.2 comparison).

    LegUp and Intel HLS are closed/unavailable, so this models their
    documented execution style:

    - each basic block is statically list-scheduled against a fixed
      resource budget and sequenced by a central FSM;
    - only innermost loops are pipelined; nested loops are serialized
      (an inner loop fully drains before the outer iteration
      continues) — the paper calls this out for GEMM/2MM/3MM;
    - the initiation interval of a pipelined loop is bounded by memory
      ports, loop-carried floating-point reductions, and
      memory-carried dependences;
    - when an innermost loop's accesses are all affine in its
      induction variable, the tool infers streaming buffers
      (burst-friendly, two effective ports, no external latency) —
      this is how HLS wins on FFT/DENSE in Fig. 9;
    - the synthesized clock is ~20% below the μIR dataflow clock
      (shallow statically-scheduled stages vs deep elastic
      pipelines — §5.2 Observation 1).

    Dynamic totals come from driving the golden interpreter and
    charging each basic-block visit its static cost. *)

open Muir_ir
module I = Instr
module F = Func

type params = {
  mem_ports : int;
  fadd_latency : float;
  carried_fp_ii : float;
      (** II of a pipelined loop with a floating-point reduction: the
          synthesized adder's full latency (statically scheduled tools
          cannot retime around it) *)
  nonstream_mem_latency : float;  (** per access, II contribution *)
  carried_mem_ii : float;
  burst_cycles_per_line : float;
      (** compulsory off-chip traffic cost per 8-word line *)
  clock_ratio : float;  (** μIR MHz / HLS MHz *)
}

let default : params =
  { mem_ports = 1; fadd_latency = 4.0; carried_fp_ii = 7.0;
    nonstream_mem_latency = 3.0; carried_mem_ii = 9.0;
    burst_cycles_per_line = 16.0; clock_ratio = 1.2 }

let op_latency (k : I.kind) : float =
  match k with
  | I.Bin (I.Mul, _, _) -> 3.0
  | I.Bin ((I.Sdiv | I.Srem), _, _) -> 16.0
  | I.Fbin ((I.Fadd | I.Fsub | I.Fmul), _, _) -> 4.0
  | I.Fbin (I.Fdiv, _, _) -> 16.0
  | I.Funary ((I.Fexp | I.Fsqrt), _) -> 16.0
  | I.Fcmp _ -> 2.0
  | I.Load _ | I.Tload _ -> 2.0
  | I.Store _ | I.Tstore _ -> 1.0
  | I.Tbin (I.Tmul, _, _) -> 24.0 (* sequenced over shared FUs *)
  | I.Tbin (I.Tadd, _, _) -> 10.0
  | I.Tunary (I.Trelu, _) -> 6.0
  | I.Call _ | I.Spawn _ -> 2.0
  | _ -> 1.0

(** Critical-path length of one block under the static schedule. *)
let block_critical_path (b : F.block) : float =
  let depth : (I.reg, float) Hashtbl.t = Hashtbl.create 16 in
  let d_of op =
    match op with
    | I.Reg r -> ( try Hashtbl.find depth r with Not_found -> 0.0)
    | _ -> 0.0
  in
  List.fold_left
    (fun acc (ins : I.t) ->
      let start =
        List.fold_left (fun m op -> Float.max m (d_of op)) 0.0
          (I.operands ins)
      in
      let fin = start +. op_latency ins.kind in
      Hashtbl.replace depth ins.id fin;
      Float.max acc fin)
    1.0 b.instrs

let mem_ops (b : F.block) =
  List.filter (fun i -> I.is_memory i) b.instrs

(** Syntactic affine-in-induction check: the access's index expression
    mentions the loop's header phi. *)
let rec index_uses_phi (f : F.t) (phis : I.reg list) (op : I.operand)
    ~(fuel : int) : bool =
  if fuel = 0 then false
  else
    match op with
    | I.Reg r when List.mem r phis -> true
    | I.Reg r -> (
      match F.find_instr f r with
      | Some { kind = I.Gep { base; index; _ }; _ } ->
        index_uses_phi f phis base ~fuel:(fuel - 1)
        || index_uses_phi f phis index ~fuel:(fuel - 1)
      | Some { kind = I.Bin (_, a, b); _ } ->
        index_uses_phi f phis a ~fuel:(fuel - 1)
        || index_uses_phi f phis b ~fuel:(fuel - 1)
      | _ -> false)
    | _ -> false

(** Memory ops of an access are "streaming" when the address is a
    direct affine function of the loop induction (global base + index
    expression over the phi). *)
let streaming_access (f : F.t) (phis : I.reg list) (ins : I.t) : bool =
  let addr_op =
    match ins.kind with
    | I.Load { addr } | I.Store { addr; _ } -> Some addr
    | I.Tload { addr; _ } | I.Tstore { addr; _ } -> Some addr
    | _ -> None
  in
  match addr_op with
  | Some (I.Reg r) -> (
    match F.find_instr f r with
    | Some { kind = I.Gep { base = I.GlobalAddr _; index; _ }; _ } ->
      index_uses_phi f phis index ~fuel:8
    | _ -> false)
  | _ -> false

(** Carried memory dependence: a store and a load on the same global
    whose address computations are not the identical instruction. *)
let carried_memory (f : F.t) (body_blocks : F.block list) : bool =
  let base_of (ins : I.t) =
    let addr =
      match ins.kind with
      | I.Load { addr } | I.Store { addr; _ } -> Some addr
      | I.Tload { addr; _ } | I.Tstore { addr; _ } -> Some addr
      | _ -> None
    in
    match addr with
    | Some (I.Reg r) -> (
      match F.find_instr f r with
      | Some { kind = I.Gep { base = I.GlobalAddr g; index; _ }; _ } ->
        Some (g, Some index)
      | _ -> Some ("?", None))
    | Some (I.GlobalAddr g) -> Some (g, None)
    | _ -> None
  in
  let ops = List.concat_map mem_ops body_blocks in
  let stores = List.filter (fun (i : I.t) -> I.has_side_effect i) ops in
  List.exists
    (fun (s : I.t) ->
      match base_of s with
      | Some (g, si) ->
        List.exists
          (fun (l : I.t) ->
            (not (I.has_side_effect l))
            &&
            match base_of l with
            | Some (g', li) -> g = g' && (si = None || li = None || si <> li)
            | None -> true)
          ops
      | None -> true)
    stores

(** Loop-carried FP reduction: a float-typed header phi. *)
let carried_fp (header : F.block) : bool =
  List.exists
    (fun (ins : I.t) ->
      match ins.kind, ins.ty with
      | I.Phi _, Types.TFloat -> true
      | _ -> false)
    header.instrs

type sched = {
  cost : (string * I.label, float) Hashtbl.t;   (** per-visit cycles *)
  loop_ii : (string * I.label, float) Hashtbl.t;  (** per innermost loop *)
}

(** Build the static schedule of every function. *)
let analyze ?(params = default) (prog : Program.t) : sched =
  let cost = Hashtbl.create 64 and loop_ii = Hashtbl.create 16 in
  List.iter
    (fun (f : F.t) ->
      let innermost =
        List.filter
          (fun (l : F.loop_info) ->
            not
              (List.exists
                 (fun (l' : F.loop_info) ->
                   l'.header <> l.header && List.mem l'.header l.body)
                 f.loops))
          f.loops
      in
      (* default: every block costs its static schedule *)
      List.iter
        (fun (b : F.block) ->
          Hashtbl.replace cost (f.name, b.label) (block_critical_path b))
        f.blocks;
      List.iter
        (fun (l : F.loop_info) ->
          let body_blocks = List.map (F.block f) l.body in
          let header = F.block f l.header in
          let phis =
            List.filter_map
              (fun (i : I.t) ->
                match i.kind with I.Phi _ -> Some i.id | _ -> None)
              header.instrs
          in
          let ops = List.concat_map mem_ops body_blocks in
          let streaming =
            ops <> [] && List.for_all (streaming_access f phis) ops
          in
          let ports =
            if streaming then float_of_int (2 * params.mem_ports)
            else float_of_int params.mem_ports
          in
          let mem_ii = float_of_int (List.length ops) /. ports in
          let mem_ii =
            if streaming then mem_ii
            else
              mem_ii
              +. (params.nonstream_mem_latency
                  *. float_of_int (List.length ops) /. 4.0)
          in
          let ii = Float.max 1.0 mem_ii in
          let ii =
            if carried_fp header then Float.max ii params.carried_fp_ii
            else ii
          in
          let ii =
            if carried_memory f body_blocks then
              Float.max ii params.carried_mem_ii
            else ii
          in
          Hashtbl.replace loop_ii (f.name, l.header) ii;
          (* charge II once per iteration at the header; body blocks of
             the pipelined loop are covered by it *)
          Hashtbl.replace cost (f.name, l.header) ii;
          List.iter
            (fun lbl ->
              if lbl <> l.header then Hashtbl.replace cost (f.name, lbl) 0.0)
            l.body;
          (* pipeline fill/drain, charged once per invocation at exit *)
          let fill =
            List.fold_left
              (fun acc b -> acc +. block_critical_path b)
              0.0 body_blocks
          in
          let prev = try Hashtbl.find cost (f.name, l.exit) with Not_found -> 1.0 in
          Hashtbl.replace cost (f.name, l.exit) (prev +. fill))
        innermost)
    prog.funcs;
  { cost; loop_ii }

type result = {
  hls_cycles : float;
  clock_ratio : float;  (** divide the μIR clock by this for HLS MHz *)
}

(** Execute [prog] under the HLS timing model. *)
let run ?(entry = "main") ?(args = []) ?(params = default) (prog : Program.t)
    : result =
  let sched = analyze ~params prog in
  let total = ref 0.0 in
  let on_block fname lbl =
    total :=
      !total
      +. (try Hashtbl.find sched.cost (fname, lbl) with Not_found -> 1.0)
  in
  let _ = Interp.run ~entry ~args ~on_block prog in
  (* Compulsory off-chip traffic: every array crosses the AXI bus at
     least once, in line-sized bursts — the same cold traffic the μIR
     cache pays. *)
  let lines =
    List.fold_left
      (fun acc (g : Program.global) -> acc + ((g.gsize + 7) / 8))
      0 prog.globals
  in
  total := !total +. (float_of_int lines *. params.burst_cycles_per_line);
  { hls_cycles = !total; clock_ratio = params.clock_ratio }
