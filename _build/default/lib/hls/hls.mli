(** Commercial-HLS baseline model (the §5.2 comparison): statically
    list-scheduled basic blocks sequenced by a central FSM, pipelined
    innermost loops, serialized nested loops, streaming-buffer
    inference for affine access patterns, and a ~20% clock deficit
    against the μIR dataflow.  Driven by the golden interpreter. *)

type params = {
  mem_ports : int;
  fadd_latency : float;
  carried_fp_ii : float;
  nonstream_mem_latency : float;
  carried_mem_ii : float;
  burst_cycles_per_line : float;
  clock_ratio : float;  (** μIR MHz / HLS MHz *)
}

val default : params

type sched = {
  cost : (string * Muir_ir.Instr.label, float) Hashtbl.t;
      (** cycles charged per dynamic visit of each block *)
  loop_ii : (string * Muir_ir.Instr.label, float) Hashtbl.t;
      (** initiation interval of each pipelined innermost loop *)
}

val analyze : ?params:params -> Muir_ir.Program.t -> sched
(** The static schedule (exposed for tests). *)

type result = {
  hls_cycles : float;
  clock_ratio : float;  (** divide the μIR clock by this for HLS MHz *)
}

val run :
  ?entry:string ->
  ?args:Muir_ir.Types.value list ->
  ?params:params ->
  Muir_ir.Program.t ->
  result
