lib/sim/exec.ml: Array Float Int64 List Muir_core Muir_ir
