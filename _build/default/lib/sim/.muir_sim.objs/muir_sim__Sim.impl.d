lib/sim/sim.ml: Array Buffer Dump Exec Fmt Fun Hashtbl Int64 List Memsys Muir_core Muir_ir Option Queue String
