lib/sim/memsys.ml: Array Hashtbl Int64 List Muir_core Muir_ir Queue
