(** The structural μopt passes: task-block queuing (Pass 1), execution
    tiling (Pass 2), localized type-specific scratchpads (Pass 3 /
    §6.4 memory localization = Algorithm 2), scratchpad banking
    (Pass 4), and cache banking (§6.4).

    These passes never touch a task's internal dataflow; they
    re-parameterize the whole-accelerator graph — exactly the locality
    of change the paper's Table 4 quantifies (tiling a task touches
    one block node and its four boundary connections, independent of
    the task's internal size). *)

module G = Muir_core.Graph
module P = Muir_ir.Program

(* ------------------------------------------------------------------ *)
(* Pass 1: task-block queuing                                           *)

(** Deepen the asynchronous task queues so producers and consumers of
    task invocations can proceed at different rates. *)
let task_queuing ?(depth = 16) (c : G.circuit) : Pass.report =
  let touched = ref 0 in
  G.iter_tasks
    (fun t ->
      if t.queue_depth <> depth then begin
        t.queue_depth <- depth;
        incr touched
      end)
    c;
  (* per task: the queue block and its two (enqueue/dequeue) links *)
  Pass.report "task-queuing" ~nodes:!touched ~edges:(2 * !touched)
    ~detail:(Fmt.str "depth=%d on %d tasks" depth !touched)

let queuing_pass ?depth () : Pass.t =
  { pname = "task-queuing"; prun = (fun c -> task_queuing ?depth c) }

(* ------------------------------------------------------------------ *)
(* Pass 2: execution tiling                                             *)

(** Replicate the execution units of the named task; by default every
    spawned task (and every dynamically-scheduled recursive task) is
    tiled — the ones with harvestable task-level parallelism.  With
    [scope = `All_loops], every loop task is tiled as well: concurrent
    invocations of an inner loop then run on parallel units, which is
    how the optimized accelerators issue more operations per cycle
    than a CPU (§6.6). *)
let execution_tiling ?task ?(scope = `Spawned) (c : G.circuit)
    ~(tiles : int) : Pass.report =
  let eligible (t : G.task) =
    match task with
    | Some name -> t.tname = name
    | None -> (
      match scope with
      | `All_loops -> (
        match t.tkind with G.Tloop _ -> true | G.Tfunc -> false)
      | `Spawned ->
        (* spawned tasks: targets of SpawnChild nodes anywhere *)
        List.exists
          (fun (p : G.task) ->
            List.exists
              (fun (n : G.node) ->
                match n.kind with
                | G.SpawnChild tid -> tid = t.tid
                | _ -> false)
              p.nodes)
          c.tasks)
  in
  let touched = ref 0 in
  (* Tiling a task replicates its whole execution subtree: the loops
     and helpers a tile runs must be replicated with it, or they would
     re-serialize the tiles. *)
  let visited = Hashtbl.create 8 in
  let rec apply (t : G.task) =
    if not (Hashtbl.mem visited t.tid) then begin
      Hashtbl.add visited t.tid ();
      if t.tiles < tiles then begin
        t.tiles <- tiles;
        incr touched
      end;
      List.iter (fun ch -> apply (G.task c ch)) t.children
    end
  in
  G.iter_tasks (fun t -> if eligible t then apply t) c;
  (* Replicating a task block touches the block node and its four
     boundary connections (task-in, task-out, mem request, mem
     response); the dispatcher crossbar is generated below μIR. *)
  Pass.report "execution-tiling" ~nodes:!touched ~edges:(4 * !touched)
    ~detail:(Fmt.str "%d tiles on %d tasks" tiles !touched)

let tiling_pass ?task ?scope ~tiles () : Pass.t =
  { pname = "execution-tiling";
    prun = (fun c -> execution_tiling ?task ?scope c ~tiles) }

(* ------------------------------------------------------------------ *)
(* Pass 3: localized type-specific scratchpads (Algorithm 2)            *)

(** Memory-space analysis: which address spaces does each memory node
    use?  (The compiler-IR points-to ran during construction; node
    kinds already carry their space id, so this is the [Mem_groups]
    map of Algorithm 2.) *)
let memory_groups (c : G.circuit) : (G.space_id * G.node list) list =
  let groups = Hashtbl.create 8 in
  G.iter_tasks
    (fun t ->
      List.iter
        (fun (n : G.node) ->
          match G.node_space n with
          | Some sp ->
            Hashtbl.replace groups sp
              (n :: (try Hashtbl.find groups sp with Not_found -> []))
          | None -> ())
        t.nodes)
    c;
  Hashtbl.fold (fun sp ns acc -> (sp, ns) :: acc) groups []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(** Give each (small enough) array its own local scratchpad instead of
    going through the shared cache, and route its memory operations
    there.  Arrays larger than [max_words] stay behind the cache.
    The simulator charges the DMA prefill for scratchpad contents. *)
let memory_localization ?(max_words = 8192) ?(latency = 2) (c : G.circuit) :
    Pass.report =
  let groups = memory_groups c in
  let moved = ref 0 and routed = ref 0 in
  List.iter
    (fun (sp, ops) ->
      if sp <> 0 then begin
        let g =
          List.find_opt (fun (g : P.global) -> g.gspace = sp) c.prog.globals
        in
        match g with
        | Some g when g.gsize <= max_words ->
          let already_local =
            match (G.structure_of_space c sp).shape with
            | G.Scratchpad _ -> true
            | G.Cache _ -> false
          in
          if not already_local then begin
            let s =
              G.add_structure c ~sname:(Fmt.str "spad_%s" g.gname)
                (G.Scratchpad
                   { banks = 1; ports_per_bank = 1; latency;
                     width_words = 1; wb_buffer = false })
            in
            G.bind_space c sp s.sid;
            incr moved;
            routed := !routed + List.length ops
          end
        | _ -> ()
      end)
    groups;
  (* one structure node per new scratchpad; each memory op re-routed
     is one connection change *)
  Pass.report "memory-localization" ~nodes:!moved ~edges:!routed
    ~detail:(Fmt.str "%d scratchpads, %d ops re-routed" !moved !routed)

let localization_pass ?max_words ?latency () : Pass.t =
  { pname = "memory-localization";
    prun = (fun c -> memory_localization ?max_words ?latency c) }

(* ------------------------------------------------------------------ *)
(* Pass 4: scratchpad banking                                           *)

(** Raise scratchpad bank counts (word-interleaved) and widen the
    junctions of tasks that use them, so more requests are granted per
    cycle. *)
let scratchpad_banking ?(banks = 2) ?(ports_per_bank = 1) (c : G.circuit) :
    Pass.report =
  let touched = ref 0 in
  List.iter
    (fun (s : G.struct_inst) ->
      match s.shape with
      | G.Scratchpad p ->
        if p.banks <> banks || p.ports_per_bank <> ports_per_bank then begin
          p.banks <- banks;
          p.ports_per_bank <- ports_per_bank;
          incr touched
        end
      | G.Cache _ -> ())
    c.structures;
  if !touched > 0 then
    G.iter_tasks
      (fun t ->
        if G.memory_nodes t <> [] then
          G.set_junction_width c t.tid
            (max (G.junction_width c t.tid) banks))
      c;
  Pass.report "scratchpad-banking" ~nodes:!touched ~edges:(2 * !touched)
    ~detail:(Fmt.str "%d banks on %d scratchpads" banks !touched)

let scratchpad_banking_pass ?banks ?ports_per_bank () : Pass.t =
  { pname = "scratchpad-banking";
    prun = (fun c -> scratchpad_banking ?banks ?ports_per_bank c) }

(** Attach write-back buffers to the scratchpads: stores acknowledge
    in one cycle and drain in the background ("another option would be
    introducing a separate writeback buffer", Pass 3 §4). *)
let writeback_buffers (c : G.circuit) : Pass.report =
  let touched = ref 0 in
  List.iter
    (fun (s : G.struct_inst) ->
      match s.shape with
      | G.Scratchpad p when not p.wb_buffer ->
        p.wb_buffer <- true;
        incr touched
      | _ -> ())
    c.structures;
  Pass.report "writeback-buffer" ~nodes:!touched ~edges:!touched
    ~detail:(Fmt.str "%d scratchpads buffered" !touched)

let writeback_pass () : Pass.t =
  { pname = "writeback-buffer"; prun = writeback_buffers }

(* ------------------------------------------------------------------ *)
(* Cache banking (§6.4)                                                 *)

(** Bank the shared L1 cache (line-interleaved) to parallelize global
    accesses, widening junctions to match. *)
let cache_banking ?(banks = 2) (c : G.circuit) : Pass.report =
  let touched = ref 0 in
  List.iter
    (fun (s : G.struct_inst) ->
      match s.shape with
      | G.Cache p ->
        if p.banks <> banks then begin
          p.banks <- banks;
          incr touched
        end
      | G.Scratchpad _ -> ())
    c.structures;
  if !touched > 0 then
    G.iter_tasks
      (fun t ->
        if G.memory_nodes t <> [] then
          G.set_junction_width c t.tid
            (max (G.junction_width c t.tid) banks))
      c;
  Pass.report "cache-banking" ~nodes:!touched ~edges:(2 * !touched)
    ~detail:(Fmt.str "%d banks on %d caches" banks !touched)

let cache_banking_pass ?banks () : Pass.t =
  { pname = "cache-banking"; prun = (fun c -> cache_banking ?banks c) }
