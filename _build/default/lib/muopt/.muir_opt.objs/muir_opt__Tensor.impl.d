lib/muopt/tensor.ml: Fmt List Muir_core Muir_ir Pass
