lib/muopt/structural.ml: Fmt Hashtbl List Muir_core Muir_ir Pass
