lib/muopt/stacks.ml: Fusion Muir_core Muir_ir Pass Structural Tensor
