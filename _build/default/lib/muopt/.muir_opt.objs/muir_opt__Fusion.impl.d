lib/muopt/fusion.ml: Array Fmt Hashtbl List Muir_core Muir_ir Option Pass String
