lib/muopt/pass.ml: Fmt List Muir_core
