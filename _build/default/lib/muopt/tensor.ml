(** Tensor higher-order ops (§6.3).

    The baseline lowers tile operations onto shared scalar function
    units (time-multiplexed) and moves tiles word-by-word through the
    junction.  This pass:

    - swaps every tile compute node to the dedicated reduction-tree
      unit of Fig. 14 (fully pipelined, II = 1);
    - gives the arrays accessed with tile loads/stores type-specific
      scratchpads whose width matches the tile, so a whole tile row
      moves per access ("the operand networks are all widened to
      implicitly transfer all the elements of the Tensor2D at one
      time");
    - widens the junctions of tasks containing tensor memory ops. *)

module G = Muir_core.Graph
module P = Muir_ir.Program

let run ?(tile_words = 4) (c : G.circuit) : Pass.report =
  let nodes = ref 0 and edges = ref 0 in
  (* 1. dedicated tensor function units *)
  G.iter_tasks
    (fun t ->
      List.iter
        (fun (n : G.node) ->
          match n.kind with
          | G.Tcompute { top; dedicated = false } ->
            n.kind <- G.Tcompute { top; dedicated = true };
            incr nodes
          | _ -> ())
        t.nodes)
    c;
  (* 2. wide, type-specific scratchpads for tensor-accessed spaces *)
  let tensor_spaces = ref [] in
  G.iter_tasks
    (fun t ->
      List.iter
        (fun (n : G.node) ->
          match n.kind with
          | G.Tload { space; _ } | G.Tstore { space; _ } ->
            if space <> 0 && not (List.mem space !tensor_spaces) then
              tensor_spaces := space :: !tensor_spaces
          | _ -> ())
        t.nodes)
    c;
  List.iter
    (fun sp ->
      let s = G.structure_of_space c sp in
      match s.shape with
      | G.Scratchpad p when p.width_words >= tile_words -> ()
      | G.Scratchpad p ->
        p.width_words <- tile_words;
        incr nodes
      | G.Cache _ ->
        let gname =
          match
            List.find_opt (fun (g : P.global) -> g.gspace = sp)
              c.prog.globals
          with
          | Some g -> g.gname
          | None -> string_of_int sp
        in
        let s =
          G.add_structure c ~sname:(Fmt.str "tspad_%s" gname)
            (G.Scratchpad
               { banks = 2; ports_per_bank = 1; latency = 2;
                 width_words = tile_words; wb_buffer = false })
        in
        G.bind_space c sp s.sid;
        incr nodes;
        edges := !edges + 2)
    !tensor_spaces;
  (* 3. widen junctions of tensor tasks *)
  G.iter_tasks
    (fun t ->
      let has_tensor_mem =
        List.exists
          (fun (n : G.node) ->
            match n.kind with
            | G.Tload _ | G.Tstore _ -> true
            | _ -> false)
          t.nodes
      in
      if has_tensor_mem then begin
        G.set_junction_width c t.tid
          (max (G.junction_width c t.tid) 2);
        incr edges
      end)
    c;
  Pass.report "tensor-ops" ~nodes:!nodes ~edges:!edges
    ~detail:
      (Fmt.str "%d components specialized, %d tensor spaces" !nodes
         (List.length !tensor_spaces))

let pass : Pass.t = { pname = "tensor-ops"; prun = (fun c -> run c) }
