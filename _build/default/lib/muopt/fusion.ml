(** Auto-pipelining and op fusion (§6.1, Fig. 10).

    The baseline graph makes no scheduling decisions: every connection
    is a registered ready/valid handshake, so a chain of k cheap
    operations costs k stages.  This pass walks each task's dataflow
    depth-first and greedily fuses chains of inexpensive single-cycle
    operations into one stage group, eliminating the intermediate
    handshakes and pipeline registers.  A chain that ends in a [Steer]
    absorbs it ([FusedSteer]), which is what re-times the serial loop
    ring (the paper's Buffer→φ→i++→i==0→branch, five stages → two).

    Fusion is delay-bounded ([max_chain]) so the resulting stage does
    not rob frequency — the synthesis model charges the summed
    combinational delay of the fused group. *)

module G = Muir_core.Graph
module I = Muir_ir.Instr

(** Cheap ops eligible for fusion: sub-nanosecond ALU primitives. *)
let fusable (op : G.fu_op) : bool =
  match op with
  | Fibin (Add | Sub | And | Or | Xor | Shl | Lshr | Ashr) -> true
  | Ficmp _ | Fselect | Fgep _ | Fident -> true
  | Fibin (Mul | Sdiv | Srem) | Ffbin _ | Ffcmp _ | Ffunary _ | Fcast _ ->
    false

(** Can the running value enter this op at input [port]?  Position 0
    always works; position 1 works for commutative ops (the pass swaps
    the operands when building the fused chain). *)
let commutative (op : G.fu_op) : bool =
  match op with
  | Fibin (Add | And | Or | Xor) -> true
  | Ficmp (Eq | Ne) -> true
  | Fgep 1 -> true (* base + index*1 is symmetric *)
  | _ -> false

let op_of (n : G.node) : G.fu_op option =
  match n.kind with G.Compute op -> Some op | _ -> None

(** A node participates only if its inputs are exactly the opcode's
    operands (no trailing trigger/order tokens). *)
let plain_arity (n : G.node) : bool =
  match op_of n with
  | Some op -> Array.length n.ins = Muir_core.Graph.in_arity n.kind ~call_args:0
             && fusable op
  | None -> false

type chain_elt = {
  ce_node : G.node;
  ce_entry_port : int;  (** where the running value enters (chain tail) *)
}

(** Total raw delay of a chain, in adder units. *)
let chain_delay (ops : G.fu_op list) : float =
  List.fold_left (fun d op -> d +. Muir_core.Cost.fu_raw_delay op) 0.0 ops

(** Delay budget for one fused stage (≈ two chained adders): fusing
    beyond this would rob frequency, which the paper's pass explicitly
    avoids. *)
let default_budget = 2.1

(** Fuse chains in one task; returns (nodes removed, edges removed). *)
let fuse_task ?(max_chain = 4) ?(budget = default_budget) (t : G.task) :
    int * int =
  let removed_nodes = ref 0 and removed_edges = ref 0 in
  let out_edges nid =
    List.filter (fun (e : G.edge) -> fst e.src = nid) t.edges
  in
  let consumed = Hashtbl.create 16 in
  (* Grow a chain starting at [head_node] (which must be plain &
     fusable); [n] is the current tail. *)
  let rec grow ~(head_node : G.node) (chain : chain_elt list) (n : G.node) :
      chain_elt list =
    if List.length chain >= max_chain then chain
    else
      match out_edges n.nid with
      | [ e ] when snd e.src = 0 -> (
        let succ = G.node t (fst e.dst) in
        if Hashtbl.mem consumed succ.nid then chain
        else
          match succ.kind with
          | G.Compute op when plain_arity succ -> (
            let port = snd e.dst in
            let cur_ops =
              List.filter_map (fun c -> op_of c.ce_node)
                ({ ce_node = head_node; ce_entry_port = 0 } :: chain)
            in
            if
              (port = 0 || (port = 1 && commutative op))
              && chain_delay (op :: cur_ops) <= budget
            then
              grow ~head_node
                (chain @ [ { ce_node = succ; ce_entry_port = port } ])
                succ
            else chain)
          | G.Steer when snd e.dst = 1 ->
            (* absorb the steer as the chain terminator *)
            chain @ [ { ce_node = succ; ce_entry_port = 1 } ]
          | _ -> chain)
      | _ -> chain
  in
  let try_fuse (head : G.node) : unit =
    if (not (Hashtbl.mem consumed head.nid)) && plain_arity head then begin
      let chain = grow ~head_node:head [] head in
      (* If an absorbed steer's predicate is produced inside the chain
         itself, leave the steer out (its pred must stay external). *)
      let chain =
        match List.rev chain with
        | ({ ce_node = { kind = G.Steer; _ } as s; _ } as last) :: rest_rev ->
          let member_ids =
            head.nid :: List.map (fun c -> c.ce_node.G.nid) chain
          in
          let pred_internal =
            List.exists
              (fun (e : G.edge) ->
                e.dst = (s.nid, 0) && List.mem (fst e.src) member_ids)
              t.edges
          in
          if pred_internal then List.rev rest_rev else List.rev (last :: rest_rev)
        | _ -> chain
      in
      (* Need at least one successor to be worth fusing. *)
      if chain <> [] then begin
        let members = head :: List.map (fun c -> c.ce_node) chain in
        List.iter (fun (n : G.node) -> Hashtbl.replace consumed n.nid ()) members;
        let member_ids = List.map (fun (n : G.node) -> n.nid) members in
        let ends_in_steer =
          match (List.nth chain (List.length chain - 1)).ce_node.kind with
          | G.Steer -> true
          | _ -> false
        in
        let compute_members =
          if ends_in_steer then
            head :: List.map (fun c -> c.ce_node)
                      (List.filteri
                         (fun i _ -> i < List.length chain - 1)
                         chain)
          else members
        in
        let ops = List.filter_map op_of compute_members in
        let steer_node =
          if ends_in_steer then
            Some (List.nth chain (List.length chain - 1)).ce_node
          else None
        in
        (* Gather external inputs in Exec.fused order: head's operands,
           then each later member's non-chained operands. *)
        let ext_inputs : (G.slot * (G.node_id * int) option) list ref =
          ref []
        in
        let internal_edge (e : G.edge) =
          List.mem (fst e.src) member_ids && List.mem (fst e.dst) member_ids
        in
        let input_src (n : G.node) (port : int) =
          List.find_opt (fun (e : G.edge) -> e.dst = (n.nid, port)) t.edges
        in
        let add_port (n : G.node) (port : int) =
          match n.ins.(port) with
          | G.Simm v -> ext_inputs := !ext_inputs @ [ (G.Simm v, None) ]
          | G.Swire ->
            let e = Option.get (input_src n port) in
            ext_inputs := !ext_inputs @ [ (G.Swire, Some e.src) ]
        in
        (* Steer's predicate goes first if present. *)
        (match steer_node with
        | Some s -> add_port s 0
        | None -> ());
        Array.iteri (fun i _ -> add_port head i) head.ins;
        List.iter
          (fun ce ->
            match ce.ce_node.kind with
            | G.Steer -> () (* data port is the chain; pred added above *)
            | _ ->
              Array.iteri
                (fun i _ -> if i <> ce.ce_entry_port then add_port ce.ce_node i)
                ce.ce_node.ins)
          chain;
        (* Create the fused node. *)
        let kind =
          if ends_in_steer then G.FusedSteer ops else G.Fused ops
        in
        let last = List.nth members (List.length members - 1) in
        let fused =
          G.add_node t ~ty:last.nty kind ~nins:(List.length !ext_inputs)
            ~label:
              (Fmt.str "fused(%s)"
                 (String.concat "+"
                    (List.filter_map
                       (fun (n : G.node) ->
                         if n.label = "" then None else Some n.label)
                       members)))
        in
        List.iteri
          (fun i (slot, src) ->
            match slot, src with
            | G.Simm v, _ -> G.set_imm fused i v
            | G.Swire, Some src ->
              (* Retarget the feeding edge to the fused node. *)
              let e =
                List.find
                  (fun (e : G.edge) ->
                    e.src = src && List.mem (fst e.dst) member_ids
                    && not (internal_edge e))
                  t.edges
              in
              e.dst <- (fused.nid, i)
            | G.Swire, None -> assert false)
          !ext_inputs;
        (* Outputs: re-source the last member's out edges. *)
        List.iter
          (fun (e : G.edge) ->
            if fst e.src = last.nid then e.src <- (fused.nid, snd e.src))
          t.edges;
        (* Drop internal edges and the old nodes. *)
        let is_dead (e : G.edge) =
          (List.mem (fst e.src) member_ids || List.mem (fst e.dst) member_ids)
        in
        removed_edges :=
          !removed_edges + List.length (List.filter is_dead t.edges);
        t.edges <- List.filter (fun e -> not (is_dead e)) t.edges;
        t.nodes <-
          List.filter (fun (n : G.node) -> not (List.mem n.nid member_ids))
            t.nodes;
        removed_nodes := !removed_nodes + List.length members - 1
      end
    end
  in
  (* Depth-first over a snapshot of the node list. *)
  List.iter try_fuse t.nodes;
  (!removed_nodes, !removed_edges)

(* ------------------------------------------------------------------ *)
(* Pipeline balancing                                                   *)

(** Auto-balance a task's dataflow: size each channel so reconvergent
    paths of different depths do not throttle the producer (§6.1:
    "We auto balance the dataflow pipeline ...").  The slack of an
    edge is the difference between its consumer's longest-path arrival
    time and the producer's; a channel needs roughly [slack] extra
    token slots to decouple.  Back edges (the loop ring and ordering
    chains) are left alone — their depth is the loop's II, which
    buffering cannot and must not change. *)
let balance_task ?(max_slots = 16) (t : G.task) : int =
  let lat (n : G.node) = (Muir_core.Cost.node_cost n.kind).latency in
  (* Forward edges only: drop edges carrying initial tokens (primed
     back edges) and MergeLoop data-back/ctl inputs. *)
  let forward (e : G.edge) =
    e.initial = []
    &&
    match (G.node t (fst e.dst)).kind with
    | G.MergeLoop -> snd e.dst = 1 (* init input is forward *)
    | _ -> true
  in
  let depth = Hashtbl.create 64 in
  let rec node_depth nid =
    match Hashtbl.find_opt depth nid with
    | Some (Some d) -> d
    | Some None -> 0 (* cycle guard *)
    | None ->
      Hashtbl.replace depth nid None;
      let ins =
        List.filter (fun (e : G.edge) -> fst e.dst = nid && forward e) t.edges
      in
      let d =
        List.fold_left
          (fun acc (e : G.edge) ->
            let src = G.node t (fst e.src) in
            max acc (node_depth src.nid + lat src))
          0 ins
      in
      Hashtbl.replace depth nid (Some d);
      d
  in
  let touched = ref 0 in
  List.iter
    (fun (e : G.edge) ->
      if forward e then begin
        let src = G.node t (fst e.src) in
        let slack = node_depth (fst e.dst) - (node_depth src.nid + lat src) in
        let want = min max_slots (max e.capacity (1 + slack)) in
        if want > e.capacity then begin
          e.capacity <- want;
          incr touched
        end
      end)
    t.edges;
  !touched

(** Run auto-pipelining (balancing) and op fusion over the circuit. *)
let run ?(max_chain = 4) (c : G.circuit) : Pass.report =
  let nodes = ref 0 and edges = ref 0 in
  G.iter_tasks
    (fun t ->
      let n, e = fuse_task ~max_chain t in
      let buffered = balance_task t in
      nodes := !nodes + n;
      edges := !edges + e + buffered)
    c;
  Pass.report "op-fusion" ~nodes:!nodes ~edges:!edges
    ~detail:(Fmt.str "fused %d nodes away" !nodes)

let pass : Pass.t = { pname = "op-fusion"; prun = (fun c -> run c) }
