(** Predefined pass stacks, mirroring the orderings the paper
    evaluates (§6.5, Fig. 8 and Fig. 17). *)

module G = Muir_core.Graph

(** The full five-pass stack of Fig. 8 for Cilk-style accelerators:
    task queuing → execution tiling → local scratchpads → scratchpad
    banking → op fusion and pipelining. *)
let cilk_stack ?(tiles = 4) ?(banks = 2) () : Pass.t list =
  [ Structural.queuing_pass ();
    Structural.tiling_pass ~tiles ();
    Structural.localization_pass ();
    Structural.scratchpad_banking_pass ~banks ();
    Structural.cache_banking_pass ~banks ();
    Fusion.pass ]

(** The stack used for the loop-nest workloads in Fig. 17: cache
    banking, memory localization, op fusion. *)
let loop_stack ?(banks = 2) () : Pass.t list =
  [ Structural.queuing_pass ();
    Structural.cache_banking_pass ~banks ();
    Structural.localization_pass ();
    Fusion.pass ]

(** The "every optimization" stack used against the ARM A9 (§6.6):
    the loop stack plus execution tiling of every loop task, so
    concurrent inner-loop invocations run on parallel units. *)
let best_loop_stack ?(banks = 4) ?(tiles = 8) () : Pass.t list =
  [ Structural.queuing_pass ();
    Structural.tiling_pass ~scope:`All_loops ~tiles ();
    Structural.cache_banking_pass ~banks ();
    Structural.localization_pass ();
    Structural.scratchpad_banking_pass ~banks ();
    Fusion.pass ]

(** The tensor stack: localization into type-specific scratchpads plus
    dedicated tensor units (§6.3), then fusion. *)
let tensor_stack () : Pass.t list =
  [ Structural.queuing_pass ();
    Structural.localization_pass ();
    Tensor.pass;
    Fusion.pass ]

(** Every optimization the repository implements, in Fig. 8 order. *)
let all ?(tiles = 4) ?(banks = 2) () : Pass.t list =
  [ Structural.queuing_pass ();
    Structural.tiling_pass ~tiles ();
    Structural.localization_pass ();
    Structural.scratchpad_banking_pass ~banks ();
    Structural.cache_banking_pass ~banks ();
    Tensor.pass;
    Fusion.pass ]

(** Apply a stack to a fresh circuit built from [prog]. *)
let optimized ?(entry = "main") ?(name = "accelerator")
    (passes : Pass.t list) (prog : Muir_ir.Program.t) :
    G.circuit * Pass.report list =
  let c = Muir_core.Build.circuit ~entry ~name prog in
  let reports = Pass.run_all passes c in
  (c, reports)
