lib/muir/dot.ml: Buffer Fmt Graph List String
