lib/muir/dot.mli: Graph
