lib/muir/build.mli: Graph Muir_ir
