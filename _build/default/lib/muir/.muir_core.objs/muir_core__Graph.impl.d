lib/muir/graph.ml: Array Fmt List Muir_ir String
