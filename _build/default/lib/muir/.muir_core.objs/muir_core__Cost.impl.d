lib/muir/cost.ml: Graph List Muir_ir
