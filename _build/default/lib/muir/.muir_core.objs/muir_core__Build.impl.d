lib/muir/build.ml: Array Fmt Graph Hashtbl Int64 List Muir_ir Queue
