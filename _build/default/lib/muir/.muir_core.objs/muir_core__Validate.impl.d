lib/muir/validate.ml: Array Fmt Graph Hashtbl List Muir_ir
