lib/muir/validate.mli: Format Graph
