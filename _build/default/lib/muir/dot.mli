(** Graphviz export of μIR circuits, one cluster per task block. *)

val render : Graph.circuit -> string
(** Render as a Graphviz digraph (pipe through [dot -Tsvg]). *)
