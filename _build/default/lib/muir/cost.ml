(** Timing cost model for μIR nodes: pipeline latency (cycles from
    consuming inputs to the result being visible to the consumer) and
    initiation interval (minimum cycles between successive firings).

    The baseline graph performs no scheduling: every connection is a
    full ready/valid handshake with its own pipeline register, so even
    a 1-gate operation costs a compute stage plus a handshake stage
    (latency 2).  This is exactly what makes the baseline loop ring
    the paper's five stages (Buffer→φ→i++→i==0→branch ≈ μ(1) +
    add(2) + steer(2)), and what the op-fusion pass removes by
    collapsing a chain into one stage group.

    The synthesis model in [Muir_model] independently derives clock
    frequency from the same primitives' combinational delays. *)

module G = Graph
module I = Muir_ir.Instr

type t = { latency : int; ii : int }

let one = { latency = 1; ii = 1 }
let alu = { latency = 2; ii = 1 }

let fu_cost : G.fu_op -> t = function
  | Fibin (Add | Sub | And | Or | Xor | Shl | Lshr | Ashr) -> alu
  | Fibin Mul -> { latency = 4; ii = 1 }
  | Fibin (Sdiv | Srem) -> { latency = 13; ii = 12 }
  | Ffbin (Fadd | Fsub) -> { latency = 5; ii = 1 }
  | Ffbin Fmul -> { latency = 5; ii = 1 }
  | Ffbin Fdiv -> { latency = 13; ii = 12 }
  | Ficmp _ -> alu
  | Ffcmp _ -> { latency = 3; ii = 1 }
  | Ffunary (Fneg | Fabs) -> alu
  | Ffunary (Fexp | Fsqrt) -> { latency = 13; ii = 1 }
  | Fcast _ -> { latency = 3; ii = 1 }
  | Fselect | Fgep _ -> alu
  | Fident -> one

(** Does a fused chain contain a long-delay primitive (forcing an
    extra stage so frequency is not robbed)? *)
let heavy_chain (ops : G.fu_op list) : bool =
  List.exists
    (function
      | G.Fibin I.Mul | G.Fibin (I.Sdiv | I.Srem)
      | G.Ffbin _ | G.Ffunary (I.Fexp | I.Fsqrt) | G.Fcast _ -> true
      | _ -> false)
    ops

(** Tile ops: the baseline (shared FU) implementation serializes the
    scalar operations of the tile through one multiplier and one adder
    (Fig. 14 left); the dedicated reduction-tree unit installed by the
    tensor pass is fully pipelined (Fig. 14 right). *)
let tensor_cost (top : G.tensor_op) ~(dedicated : bool) : t =
  let open G in
  if dedicated then
    match top with
    | Tmul2 -> { latency = 5; ii = 1 }
    | Tadd2 -> { latency = 3; ii = 1 }
    | Trelu2 -> { latency = 2; ii = 1 }
  else
    match top with
    | Tmul2 -> { latency = 16; ii = 8 }  (* 8 muls + 4-add tree, shared FUs *)
    | Tadd2 -> { latency = 8; ii = 4 }
    | Trelu2 -> { latency = 5; ii = 4 }

(** Raw combinational delay of a scalar opcode, in "adder units"
    (a 32-bit carry chain = 1.0).  Shared by the op-fusion pass (its
    chain budget) and the synthesis model (stage delay = sum of raw
    delays + one handshake overhead). *)
let fu_raw_delay : G.fu_op -> float = function
  | Fibin (I.Add | I.Sub) | Fgep _ -> 1.0
  | Fibin (I.And | I.Or | I.Xor) -> 0.35
  | Fibin (I.Shl | I.Lshr | I.Ashr) -> 0.5
  | Ficmp _ -> 0.9
  | Fselect | Fident -> 0.4
  | Fibin I.Mul -> 2.2
  | Fibin (I.Sdiv | I.Srem) -> 2.6
  | Ffbin _ | Ffcmp _ | Ffunary _ | Fcast _ -> 1.8

let node_cost (k : G.node_kind) : t =
  match k with
  | Compute op -> fu_cost op
  | Fused ops | FusedSteer ops ->
    (* One stage group: a single handshake for the whole chain. *)
    { latency = (if heavy_chain ops then 3 else 2); ii = 1 }
  | Merge _ -> alu
  | MergeLoop -> one
  | Steer -> alu
  | Load _ | Store _ | Tload _ | Tstore _ -> one (* issue; memory adds more *)
  | Tcompute { top; dedicated } -> tensor_cost top ~dedicated
  | LiveIn _ | LiveOut _ -> one
  | CallChild _ | SpawnChild _ -> one
  | SyncWait -> one
