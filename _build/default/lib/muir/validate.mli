(** Structural validation of μIR circuits.  μopt passes must leave
    circuits valid; the pass manager re-checks after every pass. *)

type error = { vwhere : string; vwhat : string }

val pp_error : Format.formatter -> error -> unit

val validate_task : Graph.circuit -> Graph.task -> error list

val validate : Graph.circuit -> error list
(** All structural violations (empty when the circuit is valid). *)

val check_exn : Graph.circuit -> unit
(** @raise Invalid_argument with a report if the circuit is invalid *)
