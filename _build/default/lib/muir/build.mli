(** Construction of the baseline μIR circuit from compiler IR
    (Algorithm 1 of the paper): one task block per function and per
    loop, each lowered to a predicated hyperblock dataflow, plus the
    default shared-cache memory system. *)

val circuit :
  ?entry:string -> ?name:string -> Muir_ir.Program.t -> Graph.circuit
(** Build the baseline circuit for [prog], rooted at [entry]
    (default ["main"]).  The result validates under {!Validate} and is
    ready for μopt passes, simulation, and lowering. *)
