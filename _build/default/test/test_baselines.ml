(* Tests for the comparison baselines: the ARM-A9 timing model and the
   statically-scheduled HLS model. *)

open Muir_ir
module W = Muir_workloads.Workloads

let saxpy =
  {|
global float X[64]; global float Y[64];
func void main() {
  for (int i = 0; i < 64; i = i + 1) { Y[i] = 2.0 * X[i] + Y[i]; }
}|}

let prog src = Muir_frontend.Frontend.compile src

(* --- CPU model ----------------------------------------------------- *)

let test_cpu_counts_instructions () =
  let p = prog saxpy in
  let r = Muir_cpu.Arm.run p in
  let _, _, stats = Interp.run p in
  Alcotest.(check int) "trace length = dynamic instructions"
    stats.dyn_instrs r.cpu_instrs;
  Alcotest.(check bool) "cycles at least instrs/issue-width" true
    (r.cpu_cycles >= float_of_int r.cpu_instrs /. 2.0)

let test_cpu_fp_costs_more () =
  let int_src =
    {|
global int O[1];
func void main() {
  int s = 0;
  for (int i = 0; i < 256; i = i + 1) { s = s + i; }
  O[0] = s;
}|}
  in
  let fp_src =
    {|
global float O[1];
func void main() {
  float s = 0.0;
  for (int i = 0; i < 256; i = i + 1) { s = s + 1.5; }
  O[0] = s;
}|}
  in
  let ri = Muir_cpu.Arm.run (prog int_src) in
  let rf = Muir_cpu.Arm.run (prog fp_src) in
  Alcotest.(check bool)
    (Fmt.str "fp loop slower (%.0f vs %.0f)" rf.cpu_cycles ri.cpu_cycles)
    true
    (rf.cpu_cycles > 1.5 *. ri.cpu_cycles)

let test_cpu_cache_behaviour () =
  (* Strided accesses over a large array should miss much more than a
     unit-stride scan of the same footprint. *)
  let mk stride =
    Fmt.str
      {|
global float A[16384]; global float O[1];
func void main() {
  float s = 0.0;
  for (int i = 0; i < 2048; i = i + 1) { s = s + A[(i * %d) %% 16384]; }
  O[0] = s;
}|}
      stride
  in
  let unit = Muir_cpu.Arm.run (prog (mk 1)) in
  let strided = Muir_cpu.Arm.run (prog (mk 9)) in
  Alcotest.(check bool)
    (Fmt.str "strided misses more (%d vs %d)" strided.cpu_l1_misses
       unit.cpu_l1_misses)
    true
    (strided.cpu_l1_misses > 2 * unit.cpu_l1_misses)

(* --- HLS model ----------------------------------------------------- *)

let test_hls_runs_all_fig9_benches () =
  List.iter
    (fun name ->
      let w = W.find name in
      let r = Muir_hls.Hls.run (W.program w) in
      Alcotest.(check bool)
        (Fmt.str "%s has positive cycles" name)
        true (r.hls_cycles > 0.0))
    [ "gemm"; "covar"; "fft"; "spmv"; "2mm"; "3mm"; "conv"; "dense8";
      "softm8" ]

let test_hls_streaming_detection () =
  let p = prog saxpy in
  let sched = Muir_hls.Hls.analyze p in
  (* exactly one innermost loop; streaming accesses should give it a
     small initiation interval despite 3 memory ops *)
  let iis = Hashtbl.fold (fun _ ii acc -> ii :: acc) sched.loop_ii [] in
  match iis with
  | [ ii ] ->
    Alcotest.(check bool)
      (Fmt.str "streaming II small (got %.1f)" ii)
      true (ii <= 8.0)
  | _ -> Alcotest.fail "expected a single innermost loop"

let test_hls_indirection_is_slower () =
  (* SPMV's X[COLS[k]] is not streaming: per-iteration cost must
     exceed saxpy's *)
  let spmv = W.find "spmv" in
  let s1 = Muir_hls.Hls.analyze (W.program spmv) in
  let s2 = Muir_hls.Hls.analyze (prog saxpy) in
  let max_ii s = Hashtbl.fold (fun _ ii acc -> Float.max ii acc) s 0.0 in
  Alcotest.(check bool) "indirect loop II larger" true
    (max_ii s1.loop_ii > max_ii s2.loop_ii)

let test_hls_nested_serialization () =
  (* HLS charges the inner loop's fill on every outer iteration: gemm's
     total must exceed inner-iterations x II. *)
  let w = W.find "gemm" in
  let p = W.program w in
  let r = Muir_hls.Hls.run p in
  let sched = Muir_hls.Hls.analyze p in
  let inner_ii =
    Hashtbl.fold (fun _ ii acc -> Float.max ii acc) sched.loop_ii 0.0
  in
  Alcotest.(check bool) "total exceeds pipelined-inner lower bound" true
    (r.hls_cycles > 16.0 *. 16.0 *. 16.0 *. inner_ii)

let test_hls_clock_ratio () =
  let r = Muir_hls.Hls.run (prog saxpy) in
  Alcotest.(check (float 0.01)) "20% clock deficit" 1.2 r.clock_ratio

let () =
  Alcotest.run "baselines"
    [ ( "cpu",
        [ Alcotest.test_case "instruction accounting" `Quick
            test_cpu_counts_instructions;
          Alcotest.test_case "fp costs more" `Quick test_cpu_fp_costs_more;
          Alcotest.test_case "cache behaviour" `Quick
            test_cpu_cache_behaviour ] );
      ( "hls",
        [ Alcotest.test_case "runs fig9 benches" `Quick
            test_hls_runs_all_fig9_benches;
          Alcotest.test_case "streaming detection" `Quick
            test_hls_streaming_detection;
          Alcotest.test_case "indirection slower" `Quick
            test_hls_indirection_is_slower;
          Alcotest.test_case "nested serialization" `Quick
            test_hls_nested_serialization;
          Alcotest.test_case "clock ratio" `Quick test_hls_clock_ratio ] ) ]
