(* Tests for the μIR core: graph construction (Algorithm 1),
   structural validation, and the task/space queries passes rely on. *)

open Muir_core
module G = Graph

let compile src = Muir_frontend.Frontend.compile src

let saxpy_src =
  {|
global float X[8];
global float Y[8];
func void main() {
  for (int i = 0; i < 8; i = i + 1) { Y[i] = 2.5 * X[i] + Y[i]; }
}
|}

let nested_src =
  {|
global float A[16]; global float B[16]; global float C[16];
func void main() {
  for (int i = 0; i < 4; i = i + 1) {
    for (int j = 0; j < 4; j = j + 1) {
      float acc = 0.0;
      for (int k = 0; k < 4; k = k + 1) { acc = acc + A[i*4+k] * B[k*4+j]; }
      C[i*4+j] = acc;
    }
  }
}
|}

let cilk_src =
  {|
global float X[16]; global float Y[16];
func void main() {
  parallel_for (int i = 0; i < 16; i = i + 1) { Y[i] = X[i] + 1.0; }
  sync;
}
|}

let test_valid_circuits () =
  List.iter
    (fun src ->
      let c = Build.circuit (compile src) in
      Alcotest.(check (list string))
        "no validation errors" []
        (List.map (Fmt.str "%a" Validate.pp_error) (Validate.validate c)))
    [ saxpy_src; nested_src; cilk_src ]

let test_task_per_loop () =
  let c = Build.circuit (compile nested_src) in
  (* main + three loop tasks *)
  Alcotest.(check int) "task count" 4 (List.length c.tasks);
  let root = G.task c c.root in
  Alcotest.(check string) "root is main" "main" root.tname;
  (* The hierarchy is a chain main -> i -> j -> k. *)
  let rec depth tid =
    let t = G.task c tid in
    match t.children with
    | [] -> 1
    | [ ch ] -> 1 + depth ch
    | _ -> Alcotest.fail "unexpected fan-out in task tree"
  in
  Alcotest.(check int) "chain of four tasks" 4 (depth c.root)

let test_parallel_loop_kind () =
  let c = Build.circuit (compile cilk_src) in
  let has_parallel =
    List.exists
      (fun (t : G.task) ->
        match t.tkind with
        | G.Tloop { parallel } -> parallel
        | G.Tfunc -> false)
      c.tasks
  in
  Alcotest.(check bool) "parallel loop task exists" true has_parallel;
  (* The loop spawns the outlined body; the body is a function task. *)
  let spawned =
    List.exists
      (fun (t : G.task) ->
        List.exists
          (fun (n : G.node) ->
            match n.kind with G.SpawnChild _ -> true | _ -> false)
          t.nodes)
      c.tasks
  in
  Alcotest.(check bool) "spawn node generated" true spawned;
  let synced =
    List.exists
      (fun (t : G.task) ->
        List.exists (fun (n : G.node) -> n.kind = G.SyncWait) t.nodes)
      c.tasks
  in
  Alcotest.(check bool) "sync node generated" true synced

let test_memory_spaces () =
  let c = Build.circuit (compile saxpy_src) in
  let loop =
    List.find
      (fun (t : G.task) -> match t.tkind with G.Tloop _ -> true | _ -> false)
      c.tasks
  in
  let spaces =
    List.sort_uniq compare
      (List.filter_map G.node_space (G.memory_nodes loop))
  in
  (* X and Y resolve to their own allocation sites, never space 0. *)
  Alcotest.(check int) "two spaces" 2 (List.length spaces);
  Alcotest.(check bool) "no unknown space" false (List.mem 0 spaces)

let test_loop_ring_structure () =
  let c = Build.circuit (compile saxpy_src) in
  let loop =
    List.find
      (fun (t : G.task) -> match t.tkind with G.Tloop _ -> true | _ -> false)
      c.tasks
  in
  let mus =
    List.filter (fun (n : G.node) -> n.kind = G.MergeLoop) loop.nodes
  in
  (* token + induction variable *)
  Alcotest.(check int) "two mu nodes" 2 (List.length mus);
  (* every mu's ctl edge carries exactly one initial false *)
  List.iter
    (fun (mu : G.node) ->
      let ctl =
        List.find (fun (e : G.edge) -> e.dst = (mu.nid, 0)) loop.edges
      in
      Alcotest.(check bool) "ctl primed" true
        (ctl.initial = [ Muir_ir.Types.VBool false ]))
    mus;
  (* steers route back into every mu *)
  List.iter
    (fun (mu : G.node) ->
      let back =
        List.find (fun (e : G.edge) -> e.dst = (mu.nid, 2)) loop.edges
      in
      let src = G.node loop (fst back.src) in
      match src.kind with
      | G.Steer | G.FusedSteer _ -> ()
      | k ->
        Alcotest.failf "mu back edge fed by %s" (G.kind_to_string k))
    mus

let test_validate_catches_broken () =
  let c = Build.circuit (compile saxpy_src) in
  let loop = List.nth c.tasks 1 in
  (* remove an edge: some input becomes undriven *)
  loop.edges <- List.tl loop.edges;
  Alcotest.(check bool) "detects undriven port" true
    (List.length (Validate.validate c) > 0)

let test_graph_size () =
  let c = Build.circuit (compile nested_src) in
  let n, e = G.graph_size c in
  Alcotest.(check bool) "nontrivial graph" true (n > 30 && e > 40)

let test_structure_binding () =
  let c = Build.circuit (compile saxpy_src) in
  let s = G.structure_of_space c 1 in
  (match s.shape with
  | G.Cache _ -> ()
  | G.Scratchpad _ -> Alcotest.fail "baseline should use the shared cache");
  let sp =
    G.add_structure c ~sname:"sp"
      (G.Scratchpad { banks = 2; ports_per_bank = 1; latency = 1;
                      width_words = 1; wb_buffer = false })
  in
  G.bind_space c 1 sp.sid;
  let s' = G.structure_of_space c 1 in
  Alcotest.(check string) "rebind works" "sp" s'.sname

(* Property: circuits built from random small loop nests validate. *)
let prop_random_programs_validate =
  QCheck.Test.make ~count:30 ~name:"random loop nests build valid circuits"
    QCheck.(pair (int_range 1 4) (int_range 2 6))
    (fun (depth, trip) ->
      let rec nest d =
        if d = 0 then
          Fmt.str "O[i0] = O[i0] + %d.0;" trip
        else
          Fmt.str "for (int i%d = 0; i%d < %d; i%d = i%d + 1) { %s }" d d trip
            d d (nest (d - 1))
      in
      let src =
        Fmt.str
          "global float O[16];\nfunc void main() { for (int i0 = 0; i0 < 8; \
           i0 = i0 + 1) { %s } }"
          (nest depth)
      in
      let c = Build.circuit (compile src) in
      Validate.validate c = [])

let () =
  Alcotest.run "muir"
    [ ( "build",
        [ Alcotest.test_case "valid circuits" `Quick test_valid_circuits;
          Alcotest.test_case "task per loop" `Quick test_task_per_loop;
          Alcotest.test_case "parallel loop kind" `Quick
            test_parallel_loop_kind;
          Alcotest.test_case "memory spaces" `Quick test_memory_spaces;
          Alcotest.test_case "loop ring structure" `Quick
            test_loop_ring_structure ] );
      ( "validate",
        [ Alcotest.test_case "catches broken graph" `Quick
            test_validate_catches_broken;
          Alcotest.test_case "graph size" `Quick test_graph_size;
          Alcotest.test_case "structure binding" `Quick
            test_structure_binding ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest prop_random_programs_validate ] ) ]
