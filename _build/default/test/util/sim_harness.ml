(* Shared test harness: compile a mini-language program, run the
   golden interpreter and the cycle simulator (optionally after μopt
   passes), and compare results. *)

open Muir_ir

let farr l = Array.of_list (List.map (fun f -> Types.VFloat f) l)
let iarr l = Array.of_list (List.map (fun i -> Types.vint i) l)

let value_testable =
  Alcotest.testable Types.pp_value (fun a b -> Types.value_close a b)

(** Compile and attach initial data. *)
let program ?(inits = []) src =
  let p = Muir_frontend.Frontend.compile src in
  Program.with_init p inits

(** Golden execution. *)
let golden ?entry ?args (p : Program.t) = Interp.run ?entry ?args p

(** Build (optionally optimize) and simulate; returns the sim result. *)
let simulate ?(passes = []) ?entry ?args ?max_cycles (p : Program.t) :
    Muir_sim.Sim.result =
  let c =
    match entry with
    | Some e -> Muir_core.Build.circuit ~entry:e p
    | None -> Muir_core.Build.circuit p
  in
  let _reports = Muir_opt.Pass.run_all passes c in
  Muir_sim.Sim.run ?args ?max_cycles c

(** Assert the simulator reproduces the golden memory for [globals]
    and the golden return value (unless void). *)
let check_against_golden ?(passes = []) ?(inits = []) ?entry ?args
    ~(globals : string list) (name : string) (src : string) :
    Muir_sim.Sim.result =
  let p = program ~inits src in
  let gv, gold_mem, _ = golden ?entry ?args p in
  let args =
    Option.map (List.map (fun v -> (v : Types.value))) args
  in
  let r = simulate ~passes ?entry ?args p in
  (match gv with
  | Types.VUnit -> ()
  | _ ->
    Alcotest.check value_testable (name ^ ": return value") gv r.value);
  List.iter
    (fun g ->
      let a = Memory.dump_global gold_mem p g in
      let b = Memory.dump_global r.memory p g in
      Array.iteri
        (fun i x ->
          if not (Types.value_close x b.(i)) then
            Alcotest.failf "%s: %s[%d] golden=%s sim=%s" name g i
              (Types.value_to_string x)
              (Types.value_to_string b.(i)))
        a)
    globals;
  r
