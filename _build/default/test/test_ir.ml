(* Unit tests for the compiler-IR substrate: builder, verifier,
   dominators, loops, interpreter, and the cleanup transforms. *)

open Muir_ir
open Muir_ir.Types
open Muir_ir.Instr

let value_testable =
  Alcotest.testable Types.pp_value (fun a b -> Types.value_close a b)

(* Build: func sum_to(n) { s=0; for(i=0;i<n;i++) s+=i; return s } *)
let build_sum_to () =
  let b = Builder.create ~name:"sum_to" ~params:[ ("n", i64) ] ~ret:i64 in
  let entry = Builder.new_block b in
  let header = Builder.new_block b in
  let body = Builder.new_block b in
  let exit = Builder.new_block b in
  Builder.position_at b entry;
  Builder.set_term b (Br header);
  (* header: i = phi [entry:0, body:i'], s = phi [entry:0, body:s'] *)
  let i_phi = Builder.add_phi b header ~ty:i64 [] in
  let s_phi = Builder.add_phi b header ~ty:i64 [] in
  Builder.position_at b header;
  let cond = Builder.add b ~ty:TBool (Icmp (Slt, i_phi, Reg 0)) in
  Builder.set_term b (CondBr (cond, body, exit));
  Builder.position_at b body;
  let s' = Builder.add b ~ty:i64 (Bin (Add, s_phi, i_phi)) in
  let i' = Builder.add b ~ty:i64 (Bin (Add, i_phi, CInt 1L)) in
  Builder.set_term b (Br header);
  let reg = function Reg r -> r | _ -> assert false in
  Builder.set_phi_incoming b header (reg i_phi)
    [ (entry, CInt 0L); (body, i') ];
  Builder.set_phi_incoming b header (reg s_phi)
    [ (entry, CInt 0L); (body, s') ];
  Builder.position_at b exit;
  Builder.set_term b (Ret (Some s_phi));
  Builder.add_loop b
    { preheader = entry; header; latch = body; exit;
      body = [ header; body ]; depth = 1; parallel = false };
  Builder.finish b

let sum_prog () =
  { Program.globals = []; funcs = [ build_sum_to () ] }

let test_interp_sum () =
  let v, _, stats = Interp.run ~entry:"sum_to" ~args:[ vint 10 ] (sum_prog ()) in
  Alcotest.check value_testable "sum 0..9" (vint 45) v;
  Alcotest.(check bool) "executed instructions" true (stats.dyn_instrs > 20)

let test_verify_sum () =
  Alcotest.(check int) "no verification errors" 0
    (List.length (Verify.verify (sum_prog ())))

let test_verify_catches_bad_use () =
  let f = build_sum_to () in
  (* Introduce a use of an undefined register. *)
  let blk = Func.entry f in
  blk.instrs <-
    [ { id = 99; ty = i64; kind = Bin (Add, Reg 42, CInt 1L) } ];
  let errs = Verify.verify_func None f in
  Alcotest.(check bool) "detects undefined use" true (List.length errs > 0)

let test_dominators () =
  let f = build_sum_to () in
  let d = Dom.compute f in
  (* entry=0 header=1 body=2 exit=3 *)
  Alcotest.(check bool) "entry dom header" true (Dom.dominates d 0 1);
  Alcotest.(check bool) "header dom body" true (Dom.dominates d 1 2);
  Alcotest.(check bool) "header dom exit" true (Dom.dominates d 1 3);
  Alcotest.(check bool) "body !dom exit" false (Dom.dominates d 2 3);
  Alcotest.(check (option int)) "idom of body" (Some 1) (Dom.idom d 2)

let test_natural_loops () =
  let f = build_sum_to () in
  match Loops.analyze f with
  | [ lp ] ->
    Alcotest.(check int) "header" 1 lp.header;
    Alcotest.(check (list int)) "latches" [ 2 ] lp.latches;
    Alcotest.(check (list int)) "blocks" [ 1; 2 ]
      (List.sort compare lp.blocks)
  | ls -> Alcotest.failf "expected one loop, got %d" (List.length ls)

let test_const_fold () =
  let b = Builder.create ~name:"cf" ~params:[] ~ret:i64 in
  let e = Builder.new_block b in
  Builder.position_at b e;
  let x = Builder.add b ~ty:i64 (Bin (Add, CInt 2L, CInt 3L)) in
  let y = Builder.add b ~ty:i64 (Bin (Mul, x, CInt 4L)) in
  Builder.set_term b (Ret (Some y));
  let f = Builder.finish b in
  let n = Transform.constant_fold_func f in
  Alcotest.(check int) "folded both" 2 n;
  let p = { Program.globals = []; funcs = [ f ] } in
  let v, _, _ = Interp.run ~entry:"cf" p in
  Alcotest.check value_testable "result preserved" (vint 20) v

let test_dce () =
  let b = Builder.create ~name:"dce" ~params:[] ~ret:i64 in
  let e = Builder.new_block b in
  Builder.position_at b e;
  let _dead = Builder.add b ~ty:i64 (Bin (Add, CInt 1L, CInt 1L)) in
  let live = Builder.add b ~ty:i64 (Bin (Add, CInt 2L, CInt 2L)) in
  Builder.set_term b (Ret (Some live));
  let f = Builder.finish b in
  let n = Transform.dead_code_elim_func f in
  Alcotest.(check int) "one dead instr removed" 1 n;
  let p = { Program.globals = []; funcs = [ f ] } in
  let v, _, _ = Interp.run ~entry:"dce" p in
  Alcotest.check value_testable "result preserved" (vint 4) v

let test_memory_layout () =
  let globals =
    Program.layout
      [ ("a", 16, TFloat, None); ("b", 8, i32, None); ("c", 4, TFloat, None) ]
  in
  let p = { Program.globals; funcs = [] } in
  let a = Program.find_global p "a"
  and b = Program.find_global p "b"
  and c = Program.find_global p "c" in
  Alcotest.(check int) "a base" 0 a.gbase;
  Alcotest.(check int) "b base (line aligned + pad)" 24 b.gbase;
  Alcotest.(check int) "c base" 40 c.gbase;
  Alcotest.(check int) "distinct spaces" 3
    (List.length (List.sort_uniq compare [ a.gspace; b.gspace; c.gspace ]));
  Alcotest.(check int) "footprint" 44 (Program.memory_words p)

let test_memory_tiles () =
  let globals = Program.layout [ ("m", 16, TFloat, None) ] in
  let p = { Program.globals; funcs = [] } in
  let mem = Memory.create p in
  let s = { rows = 2; cols = 2 } in
  Memory.store_tile mem ~addr:0 ~row_stride:4 s [| 1.; 2.; 3.; 4. |];
  let t = Memory.load_tile mem ~addr:0 ~row_stride:4 s in
  Alcotest.check value_testable "tile roundtrip" (VTensor [| 1.; 2.; 3.; 4. |])
    (VTensor t);
  (* Row stride respected: row 1 starts at word 4. *)
  Alcotest.check value_testable "strided cell" (VFloat 3.0) (Memory.load mem 4)

let test_eval_tensor_mul () =
  let s = { rows = 2; cols = 2 } in
  let a = [| 1.; 2.; 3.; 4. |] and b = [| 5.; 6.; 7.; 8. |] in
  let c = Eval.tensor_mul s a b in
  Alcotest.check value_testable "2x2 matmul" (VTensor [| 19.; 22.; 43.; 50. |])
    (VTensor c)

(* QCheck properties on the evaluation core. *)
let prop_ibin_add_assoc =
  QCheck.Test.make ~count:200 ~name:"eval add associative"
    QCheck.(triple int64 int64 int64)
    (fun (a, b, c) ->
      Int64.equal
        (Eval.ibin Add (Eval.ibin Add a b) c)
        (Eval.ibin Add a (Eval.ibin Add b c)))

let prop_icmp_total_order =
  QCheck.Test.make ~count:200 ~name:"icmp slt/sge complementary"
    QCheck.(pair int64 int64)
    (fun (a, b) -> Eval.icmp Slt a b = not (Eval.icmp Sge a b))

let prop_pure_poison =
  QCheck.Test.make ~count:100 ~name:"poison operand poisons pure ops"
    QCheck.int64
    (fun a ->
      Types.is_poison
        (Eval.pure (Bin (Add, Reg 0, Reg 1)) [ VInt a; VPoison ]))

let prop_tensor_relu_nonneg =
  QCheck.Test.make ~count:200 ~name:"relu output non-negative"
    QCheck.(array_of_size (QCheck.Gen.return 4) (float_range (-100.) 100.))
    (fun a -> Array.for_all (fun x -> x >= 0.0) (Eval.tensor_relu a))

let prop_interp_sum_closed_form =
  QCheck.Test.make ~count:50 ~name:"interp sum_to matches closed form"
    QCheck.(int_range 0 200)
    (fun n ->
      let v, _, _ =
        Interp.run ~entry:"sum_to" ~args:[ vint n ] (sum_prog ())
      in
      Types.value_close v (vint (n * (n - 1) / 2)))

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [ prop_ibin_add_assoc; prop_icmp_total_order; prop_pure_poison;
      prop_tensor_relu_nonneg; prop_interp_sum_closed_form ]

let () =
  Alcotest.run "ir"
    [ ( "interp",
        [ Alcotest.test_case "sum loop" `Quick test_interp_sum ] );
      ( "verify",
        [ Alcotest.test_case "well-formed" `Quick test_verify_sum;
          Alcotest.test_case "catches bad use" `Quick
            test_verify_catches_bad_use ] );
      ( "analysis",
        [ Alcotest.test_case "dominators" `Quick test_dominators;
          Alcotest.test_case "natural loops" `Quick test_natural_loops ] );
      ( "transform",
        [ Alcotest.test_case "constant folding" `Quick test_const_fold;
          Alcotest.test_case "dead code elim" `Quick test_dce ] );
      ( "memory",
        [ Alcotest.test_case "layout" `Quick test_memory_layout;
          Alcotest.test_case "tiles" `Quick test_memory_tiles;
          Alcotest.test_case "tensor mul" `Quick test_eval_tensor_mul ] );
      ("properties", qcheck_cases) ]
