(* μopt pass tests: every pass must (1) keep the circuit valid,
   (2) preserve functional behaviour, and (3) move performance in the
   documented direction on a workload it targets. *)

open Sim_harness
module G = Muir_core.Graph
module Opt = Muir_opt

let saxpy_src n =
  Fmt.str
    {|
global float X[%d]; global float Y[%d];
func void main() {
  for (int i = 0; i < %d; i = i + 1) { Y[i] = 2.5 * X[i] + Y[i]; }
}|}
    n n n

let saxpy_inits n = [ ("X", farr (List.init n float_of_int)) ]

let par_src n =
  Fmt.str
    {|
global float X[%d]; global float Y[%d];
func void main() {
  parallel_for (int i = 0; i < %d; i = i + 1) { Y[i] = 2.5 * X[i] + 1.0; }
  sync;
}|}
    n n n

let tensor_src =
  {|
global float A[64]; global float B[64]; global float C[64];
func void main() {
  for (int i = 0; i < 4; i = i + 1) {
    for (int j = 0; j < 4; j = j + 1) {
      tile acc = tmul(tload(A, i*16, 8), tload(B, j*2, 8));
      for (int k = 1; k < 4; k = k + 1) {
        acc = tadd(acc, tmul(tload(A, i*16 + k*2, 8), tload(B, k*16 + j*2, 8)));
      }
      tstore(C, i*16 + j*2, 8, acc);
    }
  }
}|}

let tensor_inits =
  [ ("A", farr (List.init 64 (fun i -> float_of_int (i mod 7))));
    ("B", farr (List.init 64 (fun i -> float_of_int ((i mod 5) - 2)))) ]

let cycles ?(passes = []) ?inits ~globals name src =
  (check_against_golden ~passes ?inits ~globals name src).stats.total_cycles

(* --- individual passes --------------------------------------------- *)

let test_fusion_correct_and_faster () =
  let base = cycles ~inits:(saxpy_inits 128) ~globals:[ "Y" ] "base" (saxpy_src 128) in
  let fused =
    cycles
      ~passes:[ Opt.Structural.localization_pass (); Opt.Fusion.pass ]
      ~inits:(saxpy_inits 128) ~globals:[ "Y" ] "fused" (saxpy_src 128)
  in
  Alcotest.(check bool)
    (Fmt.str "fusion+localization speeds saxpy up (%d -> %d)" base fused)
    true (fused < base)

let test_fusion_creates_fused_nodes () =
  let p = program (saxpy_src 16) in
  let c = Muir_core.Build.circuit p in
  let r = Opt.Fusion.run c in
  Alcotest.(check bool) "some nodes fused" true (r.delta_nodes > 0);
  Muir_core.Validate.check_exn c;
  let any_fused =
    List.exists
      (fun (t : G.task) ->
        List.exists
          (fun (n : G.node) ->
            match n.kind with
            | G.Fused _ | G.FusedSteer _ -> true
            | _ -> false)
          t.nodes)
      c.tasks
  in
  Alcotest.(check bool) "fused kinds present" true any_fused

let test_tiling_scales_parallel_loop () =
  (* Row-parallel stencil-like workload: each spawned body runs an
     inner loop, so replicating the body's execution subtree buys real
     task-level parallelism (Fig. 12's shape). *)
  let src =
    {|
global float IN[64]; global float OUT[64];
func void main() {
  parallel_for (int r = 0; r < 8; r = r + 1) {
    for (int c = 0; c < 8; c = c + 1) {
      OUT[r*8+c] = exp(IN[r*8+c]) + 1.0;
    }
  }
  sync;
}|}
  in
  let inits = [ ("IN", farr (List.init 64 (fun i -> float_of_int i /. 64.))) ] in
  let run tiles =
    cycles
      ~passes:
        [ Opt.Structural.localization_pass ();
          Opt.Structural.scratchpad_banking_pass ~banks:4 ();
          Opt.Structural.tiling_pass ~tiles () ]
      ~inits ~globals:[ "OUT" ]
      (Fmt.str "tiles%d" tiles) src
  in
  let t1 = run 1 and t4 = run 4 in
  Alcotest.(check bool)
    (Fmt.str "4 tiles faster than 1 (%d -> %d)" t1 t4)
    true
    (float_of_int t4 < 0.7 *. float_of_int t1);
  (* Flat memory-bound parallel loops still improve, just less. *)
  let flat tiles =
    cycles
      ~passes:[ Opt.Structural.tiling_pass ~tiles () ]
      ~inits:(saxpy_inits 64) ~globals:[ "Y" ]
      (Fmt.str "flat tiles%d" tiles) (par_src 64)
  in
  let f1 = flat 1 and f4 = flat 4 in
  Alcotest.(check bool)
    (Fmt.str "flat parallel loop not slower (%d -> %d)" f1 f4)
    true (f4 <= f1)

let test_tiling_scales_recursion () =
  let src =
    {|
func int fib(int n) {
  if (n < 2) { return n; }
  int a = spawn fib(n - 1);
  int b = spawn fib(n - 2);
  sync;
  return a + b;
}
func int main() { int r = fib(11); return r; }|}
  in
  let run tiles =
    (check_against_golden
       ~passes:[ Opt.Structural.tiling_pass ~tiles () ]
       ~globals:[] (Fmt.str "fib tiles%d" tiles) src)
      .stats.total_cycles
  in
  let t1 = run 1 and t8 = run 8 in
  Alcotest.(check bool)
    (Fmt.str "8 tiles much faster (%d -> %d)" t1 t8)
    true
    (float_of_int t8 < 0.4 *. float_of_int t1)

let test_localization_adds_scratchpads () =
  let p = program (saxpy_src 16) in
  let c = Muir_core.Build.circuit p in
  let r = Opt.Structural.memory_localization c in
  Alcotest.(check int) "two scratchpads (X, Y)" 2 r.delta_nodes;
  Muir_core.Validate.check_exn c;
  let spads =
    List.filter
      (fun (s : G.struct_inst) ->
        match s.shape with G.Scratchpad _ -> true | _ -> false)
      c.structures
  in
  Alcotest.(check int) "structures added" 2 (List.length spads)

let test_localization_skips_large_arrays () =
  let p = program (saxpy_src 16) in
  let c = Muir_core.Build.circuit p in
  let r = Opt.Structural.memory_localization ~max_words:8 c in
  Alcotest.(check int) "arrays over budget stay cached" 0 r.delta_nodes

let test_banking_params () =
  let p = program (saxpy_src 16) in
  let c = Muir_core.Build.circuit p in
  ignore (Opt.Structural.memory_localization c);
  ignore (Opt.Structural.scratchpad_banking ~banks:4 c);
  List.iter
    (fun (s : G.struct_inst) ->
      match s.shape with
      | G.Scratchpad { banks; _ } -> Alcotest.(check int) "banks" 4 banks
      | G.Cache _ -> ())
    c.structures;
  (* junctions widened for tasks with memory ops *)
  let loop =
    List.find
      (fun (t : G.task) -> G.memory_nodes t <> [])
      c.tasks
  in
  Alcotest.(check int) "junction width" 4 (G.junction_width c loop.tid)

let test_cache_banking_faster () =
  let src =
    {|
global float A[256]; global float B[256]; global float O[256];
func void main() {
  for (int i = 0; i < 256; i = i + 1) { O[i] = A[i] + B[i]; }
}|}
  in
  let inits =
    [ ("A", farr (List.init 256 float_of_int));
      ("B", farr (List.init 256 (fun i -> float_of_int (255 - i)))) ]
  in
  let b1 = cycles ~inits ~globals:[ "O" ] "bank1" src in
  let b4 =
    cycles
      ~passes:[ Opt.Structural.cache_banking_pass ~banks:4 () ]
      ~inits ~globals:[ "O" ] "bank4" src
  in
  Alcotest.(check bool)
    (Fmt.str "4 cache banks faster (%d -> %d)" b1 b4)
    true (b4 < b1)

let test_tensor_pass () =
  let base = cycles ~inits:tensor_inits ~globals:[ "C" ] "tensor base" tensor_src in
  let opt =
    cycles
      ~passes:(Opt.Stacks.tensor_stack ())
      ~inits:tensor_inits ~globals:[ "C" ] "tensor opt" tensor_src
  in
  Alcotest.(check bool)
    (Fmt.str "tensor units >=2x faster (%d -> %d)" base opt)
    true
    (float_of_int opt < 0.5 *. float_of_int base)

let test_queuing_report () =
  let p = program (par_src 16) in
  let c = Muir_core.Build.circuit p in
  let r = Opt.Structural.task_queuing ~depth:16 c in
  Alcotest.(check bool) "touched all tasks" true (r.delta_nodes > 0);
  List.iter
    (fun (t : G.task) -> Alcotest.(check int) "depth set" 16 t.queue_depth)
    c.tasks

let test_stacks_compose () =
  List.iter
    (fun (name, passes, src, inits, globals) ->
      ignore (check_against_golden ~passes ~inits ~globals name src))
    [ ("cilk stack", Opt.Stacks.cilk_stack (), par_src 32,
       saxpy_inits 32, [ "Y" ]);
      ("loop stack", Opt.Stacks.loop_stack (), saxpy_src 32,
       saxpy_inits 32, [ "Y" ]);
      ("tensor stack", Opt.Stacks.tensor_stack (), tensor_src,
       tensor_inits, [ "C" ]);
      ("all", Opt.Stacks.all (), saxpy_src 32, saxpy_inits 32, [ "Y" ]) ]

(* Property: random pass subsets preserve functional behaviour. *)
let prop_pass_subsets_preserve_semantics =
  let all_passes =
    [| ("fuse", Opt.Fusion.pass);
       ("tile", Opt.Structural.tiling_pass ~tiles:2 ());
       ("local", Opt.Structural.localization_pass ());
       ("sbank", Opt.Structural.scratchpad_banking_pass ~banks:2 ());
       ("cbank", Opt.Structural.cache_banking_pass ~banks:2 ());
       ("queue", Opt.Structural.queuing_pass ());
       ("tensor", Opt.Tensor.pass) |]
  in
  QCheck.Test.make ~count:20 ~name:"random pass stacks preserve semantics"
    QCheck.(list_of_size (QCheck.Gen.int_range 0 5) (int_range 0 6))
    (fun picks ->
      let passes = List.map (fun i -> snd all_passes.(i)) picks in
      let src = saxpy_src 24 in
      let p = program ~inits:(saxpy_inits 24) src in
      let _, gold, _ = golden p in
      let r = simulate ~passes p in
      let a = Muir_ir.Memory.dump_global gold p "Y" in
      let b = Muir_ir.Memory.dump_global r.memory p "Y" in
      Array.for_all2 Muir_ir.Types.value_close a b)

let () =
  Alcotest.run "muopt"
    [ ( "passes",
        [ Alcotest.test_case "fusion faster" `Quick
            test_fusion_correct_and_faster;
          Alcotest.test_case "fusion nodes" `Quick
            test_fusion_creates_fused_nodes;
          Alcotest.test_case "tiling parallel loop" `Quick
            test_tiling_scales_parallel_loop;
          Alcotest.test_case "tiling recursion" `Slow
            test_tiling_scales_recursion;
          Alcotest.test_case "localization" `Quick
            test_localization_adds_scratchpads;
          Alcotest.test_case "localization budget" `Quick
            test_localization_skips_large_arrays;
          Alcotest.test_case "banking params" `Quick test_banking_params;
          Alcotest.test_case "cache banking faster" `Quick
            test_cache_banking_faster;
          Alcotest.test_case "tensor pass" `Quick test_tensor_pass;
          Alcotest.test_case "queuing" `Quick test_queuing_report;
          Alcotest.test_case "stacks compose" `Quick test_stacks_compose ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest prop_pass_subsets_preserve_semantics ]
      ) ]
