(* Tests for behaviour-level loop unrolling (lib/ir/unroll.ml). *)

open Muir_ir
open Sim_harness

let test_unrolls_counted_loop () =
  let src =
    {|
global float X[8]; global float O[1];
func void main() {
  float acc = 0.0;
  for (int i = 0; i < 8; i = i + 1) { acc = acc + X[i]; }
  O[0] = acc;
}|}
  in
  let p = program ~inits:[ ("X", farr (List.init 8 float_of_int)) ] src in
  let n = Unroll.unroll p in
  Alcotest.(check int) "one loop unrolled" 1 n;
  Verify.check_exn p;
  let f = Program.find_func p "main" in
  Alcotest.(check (list int)) "no loops remain" []
    (List.map (fun (l : Func.loop_info) -> l.header) f.loops);
  let _, mem, _ = Interp.run p in
  Alcotest.check value_testable "sum preserved" (Types.VFloat 28.0)
    (Memory.dump_global mem p "O").(0)

let test_respects_max_trip () =
  let src =
    {|
global float O[1];
func void main() {
  float acc = 0.0;
  for (int i = 0; i < 100; i = i + 1) { acc = acc + 1.0; }
  O[0] = acc;
}|}
  in
  let p = program src in
  Alcotest.(check int) "trip 100 > max 16: untouched" 0 (Unroll.unroll p)

let test_skips_dynamic_bounds () =
  let src =
    {|
global float O[1];
func float f(int n) {
  float acc = 0.0;
  for (int i = 0; i < n; i = i + 1) { acc = acc + 1.0; }
  return acc;
}
func void main() { O[0] = f(5); }|}
  in
  let p = program src in
  Alcotest.(check int) "dynamic bound: untouched" 0 (Unroll.unroll p)

let test_skips_loops_with_calls () =
  let src =
    {|
global float O[4];
func void leaf(int i) { O[i] = 1.0; }
func void main() {
  for (int i = 0; i < 4; i = i + 1) { leaf(i); }
}|}
  in
  let p = program src in
  Alcotest.(check int) "call in body: untouched" 0 (Unroll.unroll p)

let test_unrolled_inner_loop_of_nest () =
  let src =
    {|
global float A[16]; global float O[4];
func void main() {
  for (int i = 0; i < 4; i = i + 1) {
    float acc = 0.0;
    for (int j = 0; j < 4; j = j + 1) { acc = acc + A[i*4+j]; }
    O[i] = acc;
  }
}|}
  in
  let inits = [ ("A", farr (List.init 16 float_of_int)) ] in
  let p = program ~inits src in
  let _, gold, _ = golden p in
  Alcotest.(check int) "inner loop unrolled" 1 (Unroll.unroll p);
  Verify.check_exn p;
  (* and the unrolled program still simulates correctly *)
  let r = simulate p in
  let a = Memory.dump_global gold p "O" in
  let b = Memory.dump_global r.memory p "O" in
  Array.iteri
    (fun i x ->
      Alcotest.check value_testable (Fmt.str "O[%d]" i) x b.(i))
    a

let test_unroll_improves_ilp () =
  let src =
    {|
global float A[64]; global float O[16];
func void main() {
  for (int i = 0; i < 16; i = i + 1) {
    float acc = 0.0;
    for (int j = 0; j < 4; j = j + 1) { acc = acc + A[i*4+j]; }
    O[i] = acc;
  }
}|}
  in
  let inits = [ ("A", farr (List.init 64 float_of_int)) ] in
  let rolled = (simulate (program ~inits src)).stats.total_cycles in
  let p = program ~inits src in
  ignore (Unroll.unroll p);
  let unrolled = (simulate p).stats.total_cycles in
  Alcotest.(check bool)
    (Fmt.str "unrolled is faster (%d -> %d)" rolled unrolled)
    true (unrolled < rolled)

(* Property: unrolling never changes results. *)
let prop_unroll_preserves_semantics =
  QCheck.Test.make ~count:25 ~name:"unroll preserves program results"
    QCheck.(pair (int_range 1 12) (int_range 1 4))
    (fun (trip, stride) ->
      let src =
        Fmt.str
          {|
global float X[64]; global float O[2];
func void main() {
  float acc = 0.0;
  int last = 0;
  for (int i = 0; i < %d; i = i + %d) {
    acc = acc + X[i] * 2.0;
    last = i;
  }
  O[0] = acc;
  O[1] = float(last);
}|}
          trip stride
      in
      let inits = [ ("X", farr (List.init 64 (fun i -> float_of_int i *. 0.25))) ] in
      let p0 = program ~inits src in
      let _, m0, _ = golden p0 in
      let p1 = program ~inits src in
      ignore (Unroll.unroll p1);
      let _, m1, _ = golden p1 in
      let a = Memory.dump_global m0 p0 "O" in
      let b = Memory.dump_global m1 p1 "O" in
      Array.for_all2 Types.value_close a b)

let () =
  Alcotest.run "unroll"
    [ ( "transform",
        [ Alcotest.test_case "counted loop" `Quick test_unrolls_counted_loop;
          Alcotest.test_case "max trip" `Quick test_respects_max_trip;
          Alcotest.test_case "dynamic bounds" `Quick test_skips_dynamic_bounds;
          Alcotest.test_case "calls in body" `Quick
            test_skips_loops_with_calls;
          Alcotest.test_case "inner loop of nest" `Quick
            test_unrolled_inner_loop_of_nest;
          Alcotest.test_case "improves ILP" `Quick test_unroll_improves_ilp ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest prop_unroll_preserves_semantics ] ) ]
