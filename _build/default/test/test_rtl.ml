(* Tests for the RTL backend: circuit-IR lowering, the structural
   diff used by Table 4, and the Chisel emitter. *)

open Muir_core
module R = Muir_rtl.Rtl

let saxpy_src =
  {|
global float X[16]; global float Y[16];
func void main() {
  for (int i = 0; i < 16; i = i + 1) { Y[i] = 2.0 * X[i] + Y[i]; }
}|}

let circuit () = Build.circuit (Muir_frontend.Frontend.compile saxpy_src)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let test_lowering_size () =
  let d = Muir_rtl.Lower.design (circuit ()) in
  let comps, nets = R.size d in
  Alcotest.(check bool) "has components" true (comps > 30);
  Alcotest.(check bool) "has nets" true (nets > 20);
  let hist = R.histogram d in
  List.iter
    (fun key ->
      Alcotest.(check bool) (key ^ " present") true (List.mem_assoc key hist))
    [ "registers"; "alu"; "fp units"; "sram"; "arbiters"; "control" ]

let test_diff_identity () =
  let a = Muir_rtl.Lower.design (circuit ()) in
  let b = Muir_rtl.Lower.design (circuit ()) in
  Alcotest.(check (pair int int)) "identical designs diff to zero" (0, 0)
    (R.diff a b)

let test_diff_detects_change () =
  let c0 = circuit () and c1 = circuit () in
  ignore (Muir_opt.Structural.execution_tiling c1 ~tiles:2 ~task:"main.loop1");
  let dn, de =
    R.diff (Muir_rtl.Lower.design c0) (Muir_rtl.Lower.design c1)
  in
  Alcotest.(check bool) "tiling changes many rtl components" true (dn > 20);
  Alcotest.(check bool) "tiling changes many rtl nets" true (de > 10)

let test_uir_delta_much_smaller () =
  (* The Table 4 claim: the same change is orders of magnitude more
     concise at the μIR level. *)
  let c = circuit () in
  let d0 = Muir_rtl.Lower.design c in
  let rep = Muir_opt.Structural.execution_tiling c ~tiles:2 in
  let d1 = Muir_rtl.Lower.design c in
  let dn, de = R.diff d0 d1 in
  Alcotest.(check bool) "uIR delta is tiny" true
    (rep.delta_nodes + rep.delta_edges <= 8);
  Alcotest.(check bool) "rtl delta is much larger" true
    (dn + de >= 5 * (rep.delta_nodes + rep.delta_edges))

let test_fusion_saves_registers () =
  let c0 = circuit () and c1 = circuit () in
  ignore (Muir_opt.Fusion.run c1);
  let regs d =
    List.fold_left
      (fun acc (c : R.component) ->
        match c.prim with R.Preg { bits } -> acc + bits | _ -> acc)
      0 d.R.comps
  in
  let r0 = regs (Muir_rtl.Lower.design c0) in
  let r1 = regs (Muir_rtl.Lower.design c1) in
  Alcotest.(check bool)
    (Fmt.str "fused design has fewer register bits (%d -> %d)" r0 r1)
    true (r1 < r0)

let test_chisel_emission () =
  let c = circuit () in
  let src = Muir_rtl.Chisel.emit c in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("emits " ^ needle) true (contains src needle))
    [ "class Main"; "class MainLoop"; "extends TaskModule";
      "LoopMergeNode"; "SteerNode"; "new Load(space ="; "Accelerator";
      "hw_l1"; "<==>"; "import chisel3._" ];
  (* every task class appears *)
  List.iter
    (fun (t : Graph.task) ->
      Alcotest.(check bool)
        (t.tname ^ " has a module class")
        true
        (contains src (Muir_rtl.Chisel.class_name t)))
    c.tasks

let test_chisel_tracks_passes () =
  let c = circuit () in
  let _ = Muir_opt.Pass.run_all [ Muir_opt.Fusion.pass ] c in
  let src = Muir_rtl.Chisel.emit c in
  Alcotest.(check bool) "fused nodes emitted" true
    (contains src "FusedSteerNode" || contains src "FusedNode")

let prop_diff_symmetric =
  QCheck.Test.make ~count:10 ~name:"rtl diff is symmetric"
    QCheck.(int_range 2 6)
    (fun tiles ->
      let c0 = circuit () and c1 = circuit () in
      ignore (Muir_opt.Structural.execution_tiling c1 ~tiles);
      let a = Muir_rtl.Lower.design c0 and b = Muir_rtl.Lower.design c1 in
      R.diff a b = R.diff b a)

let () =
  Alcotest.run "rtl"
    [ ( "lowering",
        [ Alcotest.test_case "size & histogram" `Quick test_lowering_size;
          Alcotest.test_case "fusion saves registers" `Quick
            test_fusion_saves_registers ] );
      ( "diff",
        [ Alcotest.test_case "identity" `Quick test_diff_identity;
          Alcotest.test_case "detects change" `Quick
            test_diff_detects_change;
          Alcotest.test_case "uIR much smaller (Table 4)" `Quick
            test_uir_delta_much_smaller ] );
      ( "chisel",
        [ Alcotest.test_case "emission" `Quick test_chisel_emission;
          Alcotest.test_case "tracks passes" `Quick
            test_chisel_tracks_passes ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_diff_symmetric ]) ]
