(* Workload integration suite: every bundled benchmark must compile,
   validate, and simulate to the golden interpreter's results — both
   baseline and under its optimization stack.  A handful of workloads
   are additionally checked against independent OCaml reference
   implementations, so the interpreter itself is cross-validated. *)

open Muir_ir
module W = Muir_workloads.Workloads

let floats_of mem p name =
  Array.map
    (fun v ->
      match (v : Types.value) with
      | Types.VFloat f -> f
      | Types.VInt i -> Int64.to_float i
      | v -> Alcotest.failf "non-scalar %s" (Types.value_to_string v))
    (Memory.dump_global mem p name)

let close a b =
  let d = Float.abs (a -. b) in
  d <= 1e-3 *. Float.max 1.0 (Float.max (Float.abs a) (Float.abs b))

let check_floats name expected actual =
  Array.iteri
    (fun i e ->
      if not (close e actual.(i)) then
        Alcotest.failf "%s[%d]: expected %g, got %g" name i e actual.(i))
    expected

(* --- every workload, baseline + stacked ---------------------------- *)

let sim_matches_golden ?(passes = []) (w : W.t) =
  let p = W.program w in
  let _, gold, _ = Interp.run p in
  let c = Muir_core.Build.circuit ~name:w.wname p in
  Alcotest.(check (list string))
    "circuit validates" []
    (List.map
       (Fmt.str "%a" Muir_core.Validate.pp_error)
       (Muir_core.Validate.validate c));
  let _ = Muir_opt.Pass.run_all passes c in
  let r = Muir_sim.Sim.run c in
  List.iter
    (fun g ->
      let a = Memory.dump_global gold p g in
      let b = Memory.dump_global r.memory p g in
      Array.iteri
        (fun i x ->
          if not (Types.value_close x b.(i)) then
            Alcotest.failf "%s: %s[%d] golden=%s sim=%s" w.wname g i
              (Types.value_to_string x)
              (Types.value_to_string b.(i)))
        a)
    w.outputs

let baseline_cases =
  List.map
    (fun (w : W.t) ->
      Alcotest.test_case w.wname `Quick (fun () -> sim_matches_golden w))
    W.all

let stack_for (w : W.t) =
  if w.tensor then Muir_opt.Stacks.tensor_stack ()
  else
    match w.category with
    | W.Cilk -> Muir_opt.Stacks.cilk_stack ~tiles:4 ~banks:2 ()
    | _ -> Muir_opt.Stacks.best_loop_stack ~tiles:4 ()

let stacked_cases =
  List.map
    (fun (w : W.t) ->
      Alcotest.test_case w.wname `Slow (fun () ->
          sim_matches_golden ~passes:(stack_for w) w))
    W.all

(* --- independent references ---------------------------------------- *)

let run_golden (w : W.t) =
  let p = W.program w in
  let _, mem, _ = Interp.run p in
  (p, mem)

let init_floats (w : W.t) name =
  match List.assoc_opt name w.inits with
  | Some a ->
    Array.map
      (function
        | Types.VFloat f -> f
        | Types.VInt i -> Int64.to_float i
        | _ -> 0.0)
      a
  | None -> Alcotest.failf "no init for %s" name

let test_gemm_reference () =
  let w = W.find "gemm" in
  let n = 16 in
  let a = init_floats w "A" and b = init_floats w "B" in
  let expected =
    Array.init (n * n) (fun idx ->
        let i = idx / n and j = idx mod n in
        let acc = ref 0.0 in
        for k = 0 to n - 1 do
          acc := !acc +. (a.((i * n) + k) *. b.((k * n) + j))
        done;
        !acc)
  in
  let p, mem = run_golden w in
  check_floats "gemm C" expected (floats_of mem p "C")

let test_fft_reference () =
  (* Cross-check the radix-2 FFT against a naive O(n^2) DFT. *)
  let w = W.find "fft" in
  let n = 64 in
  let re = init_floats w "RE" and im = init_floats w "IM" in
  let exp_re = Array.make n 0.0 and exp_im = Array.make n 0.0 in
  for k = 0 to n - 1 do
    for t = 0 to n - 1 do
      let ang = -2.0 *. Float.pi *. float_of_int (k * t) /. float_of_int n in
      let c = Float.cos ang and s = Float.sin ang in
      exp_re.(k) <- exp_re.(k) +. (re.(t) *. c) -. (im.(t) *. s);
      exp_im.(k) <- exp_im.(k) +. (re.(t) *. s) +. (im.(t) *. c)
    done
  done;
  let p, mem = run_golden w in
  check_floats "fft RE" exp_re (floats_of mem p "RE");
  check_floats "fft IM" exp_im (floats_of mem p "IM")

let test_msort_reference () =
  let w = W.find "msort" in
  let a = init_floats w "A" in
  let expected = Array.copy a in
  Array.sort compare expected;
  let p, mem = run_golden w in
  check_floats "msort A" expected (floats_of mem p "A")

let test_softmax_reference () =
  let w = W.find "softm8" in
  let x = init_floats w "X" in
  let batch = 16 and classes = 8 in
  let expected = Array.make (batch * classes) 0.0 in
  for b = 0 to batch - 1 do
    let row = Array.sub x (b * classes) classes in
    let m = Array.fold_left Float.max neg_infinity row in
    let e = Array.map (fun v -> Float.exp (v -. m)) row in
    let s = Array.fold_left ( +. ) 0.0 e in
    Array.iteri (fun c v -> expected.((b * classes) + c) <- v /. s) e
  done;
  let p, mem = run_golden w in
  check_floats "softmax Y" expected (floats_of mem p "Y")

let test_conv1d_reference () =
  let w = W.find "conv1d" in
  let input = init_floats w "INPUT" and weight = init_floats w "WEIGHT" in
  let m = Array.length input and k = Array.length weight in
  let expected =
    Array.init (m - k) (fun i ->
        let acc = ref 0.0 in
        for j = 0 to k - 1 do
          acc := !acc +. (input.(i + j) *. weight.(j))
        done;
        !acc)
  in
  let p, mem = run_golden w in
  check_floats "conv1d OUTPUT" expected (floats_of mem p "OUTPUT")

let test_rgb2yuv_reference () =
  let w = W.find "rgb2yuv" in
  let r = init_floats w "R" and g = init_floats w "G"
  and b = init_floats w "B" in
  let expected_y =
    Array.init (Array.length r) (fun i ->
        (0.299 *. r.(i)) +. (0.587 *. g.(i)) +. (0.114 *. b.(i)))
  in
  let p, mem = run_golden w in
  check_floats "Y" expected_y (floats_of mem p "YY")

let test_fib_value () =
  let w = W.find "fib" in
  let p, mem = run_golden w in
  let out = Memory.dump_global mem p "OUT" in
  Alcotest.(check bool) "fib(15) = 610" true
    (Types.value_close out.(0) (Types.vint 610))

let () =
  Alcotest.run "workloads"
    [ ("baseline-vs-golden", baseline_cases);
      ("stacked-vs-golden", stacked_cases);
      ( "references",
        [ Alcotest.test_case "gemm" `Quick test_gemm_reference;
          Alcotest.test_case "fft vs naive DFT" `Quick test_fft_reference;
          Alcotest.test_case "mergesort" `Quick test_msort_reference;
          Alcotest.test_case "softmax" `Quick test_softmax_reference;
          Alcotest.test_case "conv1d" `Quick test_conv1d_reference;
          Alcotest.test_case "rgb2yuv" `Quick test_rgb2yuv_reference;
          Alcotest.test_case "fib" `Quick test_fib_value ] ) ]
