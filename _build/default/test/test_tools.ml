(* Tests for the tooling extensions: Graphviz export, write-back
   buffers, and the simulator's utilization accounting. *)

open Sim_harness
module G = Muir_core.Graph

let saxpy_src n =
  Fmt.str
    {|
global float X[%d]; global float Y[%d];
func void main() {
  for (int i = 0; i < %d; i = i + 1) { Y[i] = 2.5 * X[i] + Y[i]; }
}|}
    n n n

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

(* --- dot ------------------------------------------------------------ *)

let test_dot_render () =
  let c = Muir_core.Build.circuit (program (saxpy_src 8)) in
  let dot = Muir_core.Dot.render c in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("contains " ^ needle) true (contains dot needle))
    [ "digraph"; "cluster_task0"; "cluster_task1"; "mu"; "steer";
      "shape=cylinder"; "primed"; "->" ];
  (* balanced braces, roughly: same number of '{' and '}' *)
  let count ch =
    String.fold_left (fun a c -> if c = ch then a + 1 else a) 0 dot
  in
  Alcotest.(check int) "balanced braces" (count '{') (count '}')

let test_dot_marks_tiles () =
  let c = Muir_core.Build.circuit (program (saxpy_src 8)) in
  ignore (Muir_opt.Structural.execution_tiling c ~tiles:4 ~scope:`All_loops);
  let dot = Muir_core.Dot.render c in
  Alcotest.(check bool) "tile count rendered" true (contains dot "4 tiles")

(* --- write-back buffers --------------------------------------------- *)

let test_writeback_preserves_results () =
  let inits = [ ("X", farr (List.init 32 float_of_int)) ] in
  ignore
    (check_against_golden
       ~passes:
         [ Muir_opt.Structural.localization_pass ();
           Muir_opt.Structural.writeback_pass () ]
       ~inits ~globals:[ "Y" ] "writeback saxpy" (saxpy_src 32))

let test_writeback_marks_structures () =
  let c = Muir_core.Build.circuit (program (saxpy_src 8)) in
  ignore (Muir_opt.Structural.memory_localization c);
  let r = Muir_opt.Structural.writeback_buffers c in
  Alcotest.(check bool) "touched scratchpads" true (r.delta_nodes > 0);
  List.iter
    (fun (s : G.struct_inst) ->
      match s.shape with
      | G.Scratchpad { wb_buffer; _ } ->
        Alcotest.(check bool) "buffered" true wb_buffer
      | G.Cache _ -> ())
    c.structures;
  (* and it shows up in the emitted hardware *)
  let src = Muir_rtl.Chisel.emit c in
  Alcotest.(check bool) "chisel reflects it" true
    (contains src "writebackBuffer = true")

let test_writeback_not_slower () =
  (* A loop that stores every iteration: buffering the stores should
     never hurt. *)
  let src =
    {|
global float X[64]; global float O[64];
func void main() {
  for (int i = 0; i < 64; i = i + 1) { O[i] = X[i] + 1.0; }
}|}
  in
  let inits = [ ("X", farr (List.init 64 float_of_int)) ] in
  let plain =
    (check_against_golden
       ~passes:[ Muir_opt.Structural.localization_pass () ]
       ~inits ~globals:[ "O" ] "plain" src)
      .stats.total_cycles
  in
  let buffered =
    (check_against_golden
       ~passes:
         [ Muir_opt.Structural.localization_pass ();
           Muir_opt.Structural.writeback_pass () ]
       ~inits ~globals:[ "O" ] "buffered" src)
      .stats.total_cycles
  in
  Alcotest.(check bool)
    (Fmt.str "buffered not slower (%d vs %d)" buffered plain)
    true
    (buffered <= plain)

(* --- utilization ----------------------------------------------------- *)

let test_utilization_sane () =
  let r =
    check_against_golden
      ~inits:[ ("X", farr (List.init 32 float_of_int)) ]
      ~globals:[ "Y" ] "util" (saxpy_src 32)
  in
  List.iter
    (fun (t, u) ->
      Alcotest.(check bool)
        (Fmt.str "%s utilization in [0,1] (got %f)" t u)
        true
        (u >= 0.0 && u <= 1.0))
    r.stats.utilization;
  (* the hot loop is busier than the wrapper *)
  let u name = List.assoc name r.stats.utilization in
  Alcotest.(check bool) "loop busier than main" true
    (u "main.loop1" > u "main")

let () =
  Alcotest.run "tools"
    [ ( "dot",
        [ Alcotest.test_case "render" `Quick test_dot_render;
          Alcotest.test_case "tiles" `Quick test_dot_marks_tiles ] );
      ( "writeback",
        [ Alcotest.test_case "preserves results" `Quick
            test_writeback_preserves_results;
          Alcotest.test_case "marks structures" `Quick
            test_writeback_marks_structures;
          Alcotest.test_case "not slower" `Quick test_writeback_not_slower ] );
      ( "utilization",
        [ Alcotest.test_case "sane" `Quick test_utilization_sane ] ) ]
