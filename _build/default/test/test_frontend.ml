(* End-to-end front-end tests: source text -> IR -> golden interpreter. *)

open Muir_ir
open Muir_ir.Types

let value_testable =
  Alcotest.testable Types.pp_value (fun a b -> Types.value_close a b)

let farr l = Array.of_list (List.map (fun f -> VFloat f) l)
let iarr l = Array.of_list (List.map (fun i -> vint i) l)

let run ?(inits = []) ?(args = []) ?entry src =
  let p = Muir_frontend.Frontend.compile src in
  let p = Program.with_init p inits in
  let v, mem, _ = Interp.run ?entry ~args p in
  (v, mem, p)

let floats mem p name =
  Array.to_list (Memory.dump_global mem p name)
  |> List.map (function
       | VFloat f -> f
       | VInt i -> Int64.to_float i
       | v -> Alcotest.failf "expected float, got %s" (value_to_string v))

let check_floats msg expected actual =
  Alcotest.(check (list (float 1e-4))) msg expected actual

(* ------------------------------------------------------------------ *)

let saxpy_src =
  {|
global float X[8];
global float Y[8];
func void main() {
  for (int i = 0; i < 8; i = i + 1) {
    Y[i] = 2.5 * X[i] + Y[i];
  }
}
|}

let test_saxpy () =
  let x = List.init 8 float_of_int in
  let y = List.init 8 (fun i -> float_of_int (10 * i)) in
  let _, mem, p =
    run ~inits:[ ("X", farr x); ("Y", farr y) ] saxpy_src
  in
  let expected = List.map2 (fun a b -> (2.5 *. a) +. b) x y in
  check_floats "saxpy result" expected (floats mem p "Y")

let test_parallel_saxpy () =
  let src =
    {|
global float X[8];
global float Y[8];
func void main() {
  float a = 2.5;
  parallel_for (int i = 0; i < 8; i = i + 1) {
    Y[i] = a * X[i] + Y[i];
  }
}
|}
  in
  let x = List.init 8 float_of_int in
  let y = List.init 8 (fun _ -> 1.0) in
  let _, mem, p = run ~inits:[ ("X", farr x); ("Y", farr y) ] src in
  let expected = List.map2 (fun a b -> (2.5 *. a) +. b) x y in
  check_floats "parallel saxpy" expected (floats mem p "Y");
  (* The parallel body was outlined into its own function. *)
  Alcotest.(check bool) "outlined body exists" true
    (Program.has_func p "main_par0")

let test_gemm () =
  let n = 4 in
  let src =
    Fmt.str
      {|
global float A[%d];
global float B[%d];
global float C[%d];
func void main() {
  for (int i = 0; i < %d; i = i + 1) {
    for (int j = 0; j < %d; j = j + 1) {
      float acc = 0.0;
      for (int k = 0; k < %d; k = k + 1) {
        acc = acc + A[i * %d + k] * B[k * %d + j];
      }
      C[i * %d + j] = acc;
    }
  }
}
|}
      (n * n) (n * n) (n * n) n n n n n n
  in
  let a = List.init (n * n) (fun i -> float_of_int (i mod 5)) in
  let b = List.init (n * n) (fun i -> float_of_int ((i mod 3) - 1)) in
  let _, mem, p = run ~inits:[ ("A", farr a); ("B", farr b) ] src in
  let aa = Array.of_list a and ba = Array.of_list b in
  let expected =
    List.init (n * n) (fun idx ->
        let i = idx / n and j = idx mod n in
        let acc = ref 0.0 in
        for k = 0 to n - 1 do
          acc := !acc +. (aa.((i * n) + k) *. ba.((k * n) + j))
        done;
        !acc)
  in
  check_floats "gemm" expected (floats mem p "C")

let test_condition_phi () =
  let src =
    {|
global int O[10];
func void main() {
  for (int i = 0; i < 10; i = i + 1) {
    int v = 0;
    if (i % 2 == 0) { v = i * 10; } else { v = i + 100; }
    O[i] = v;
  }
}
|}
  in
  let _, mem, p = run src in
  let expected =
    List.init 10 (fun i ->
        float_of_int (if i mod 2 = 0 then i * 10 else i + 100))
  in
  check_floats "if/else phi" expected (floats mem p "O")

let test_fib_spawn () =
  let src =
    {|
func int fib(int n) {
  if (n < 2) { return n; }
  int a = spawn fib(n - 1);
  int b = spawn fib(n - 2);
  sync;
  return a + b;
}
func int main() {
  int r = fib(15);
  return r;
}
|}
  in
  let v, _, _ = run src in
  Alcotest.check value_testable "fib(15)" (vint 610) v

let test_while_loop () =
  let src =
    {|
func int main() {
  int x = 1;
  int n = 0;
  while (x < 1000) {
    x = x * 2;
    n = n + 1;
  }
  return n;
}
|}
  in
  let v, _, _ = run src in
  Alcotest.check value_testable "log2 steps" (vint 10) v

let test_ternary_minmax_cast () =
  let src =
    {|
global float O[4];
func void main() {
  int a = min(3, 7);
  int b = max(3, 7);
  float f = float(a + b);
  O[0] = f;
  O[1] = f > 5.0 ? 1.0 : 0.0;
  O[2] = fmax(2.5, -2.5);
  O[3] = sqrt(16.0) + abs(-2.0);
}
|}
  in
  let _, mem, p = run src in
  check_floats "ternary/minmax/cast" [ 10.0; 1.0; 2.5; 6.0 ]
    (floats mem p "O")

let test_tile_ops () =
  let src =
    {|
global float A[16];
global float B[16];
global float C[16];
func void main() {
  /* multiply 2x2 tiles at the four quadrants of 4x4 matrices */
  for (int ti = 0; ti < 2; ti = ti + 1) {
    for (int tj = 0; tj < 2; tj = tj + 1) {
      tile acc = tmul(tload(A, ti * 8 + 0, 4), tload(B, tj * 2 + 0, 4));
      tile acc2 = tadd(acc, tmul(tload(A, ti * 8 + 2, 4), tload(B, tj * 2 + 8, 4)));
      tstore(C, ti * 8 + tj * 2, 4, acc2);
    }
  }
}
|}
  in
  let a = List.init 16 (fun i -> float_of_int (i + 1)) in
  let b = List.init 16 (fun i -> float_of_int ((i mod 4) + 1)) in
  let _, mem, p = run ~inits:[ ("A", farr a); ("B", farr b) ] src in
  (* Reference 4x4 matmul. *)
  let aa = Array.of_list a and ba = Array.of_list b in
  let expected =
    List.init 16 (fun idx ->
        let i = idx / 4 and j = idx mod 4 in
        let acc = ref 0.0 in
        for k = 0 to 3 do
          acc := !acc +. (aa.((i * 4) + k) *. ba.((k * 4) + j))
        done;
        !acc)
  in
  check_floats "tiled 4x4 matmul" expected (floats mem p "C")

let test_int_array_and_spmv_like () =
  let src =
    {|
global int ROWPTR[5];
global int COLS[8];
global float VALS[8];
global float X[4];
global float Y[4];
func void main() {
  for (int r = 0; r < 4; r = r + 1) {
    float acc = 0.0;
    for (int k = ROWPTR[r]; k < ROWPTR[r + 1]; k = k + 1) {
      acc = acc + VALS[k] * X[COLS[k]];
    }
    Y[r] = acc;
  }
}
|}
  in
  let inits =
    [ ("ROWPTR", iarr [ 0; 2; 4; 6; 8 ]);
      ("COLS", iarr [ 0; 1; 1; 2; 2; 3; 0; 3 ]);
      ("VALS", farr [ 1.; 2.; 3.; 4.; 5.; 6.; 7.; 8. ]);
      ("X", farr [ 1.; 2.; 3.; 4. ]) ]
  in
  let _, mem, p = run ~inits src in
  check_floats "spmv"
    [ (1. *. 1.) +. (2. *. 2.);
      (3. *. 2.) +. (4. *. 3.);
      (5. *. 3.) +. (6. *. 4.);
      (7. *. 1.) +. (8. *. 4.) ]
    (floats mem p "Y")

(* Error reporting *)

let expect_type_error src =
  match Muir_frontend.Frontend.compile src with
  | exception Muir_frontend.Typecheck.Error _ -> ()
  | _ -> Alcotest.fail "expected a type error"

let test_type_errors () =
  expect_type_error "func void main() { x = 1; }";
  expect_type_error "func void main() { int x = 1.5; }";
  expect_type_error "func void main() { float f = 1.0; if (f) { } }";
  expect_type_error
    "func void main() { int s = 0; parallel_for (int i = 0; i < 4; i = i + 1) { s = s + i; } }";
  expect_type_error
    "func void main() { for (int i = 0; i < 4; i = i + 1) { return; } }";
  expect_type_error "func void main() { unknown_fn(3); }";
  expect_type_error "global float A[4]; func void main() { A[1.5] = 1.0; }"

let test_parse_errors () =
  let expect_parse_error src =
    match Muir_frontend.Frontend.compile src with
    | exception Muir_frontend.Parser.Error _ -> ()
    | _ -> Alcotest.fail "expected a parse error"
  in
  expect_parse_error "func void main( { }";
  expect_parse_error "func void main() { int x = ; }";
  expect_parse_error "global float A[]; func void main() { }"

let test_lexer_positions () =
  let toks = Muir_frontend.Lexer.tokenize "int x\n  = 42;" in
  match toks with
  | (KW "int", p1) :: (IDENT "x", _) :: (PUNCT "=", p2) :: (INT 42L, _) :: _
    ->
    Alcotest.(check int) "line 1" 1 p1.line;
    Alcotest.(check int) "line 2" 2 p2.line;
    Alcotest.(check int) "col 3" 3 p2.col
  | _ -> Alcotest.fail "unexpected token stream"

(* Structural checks on the lowered IR *)

let test_loop_metadata () =
  let p = Muir_frontend.Frontend.compile saxpy_src in
  let f = Program.find_func p "main" in
  match f.loops with
  | [ lp ] ->
    Alcotest.(check bool) "not parallel" false lp.parallel;
    Alcotest.(check int) "depth 1" 1 lp.depth;
    Alcotest.(check bool) "header in body" true (List.mem lp.header lp.body);
    Alcotest.(check bool) "latch in body" true (List.mem lp.latch lp.body);
    Alcotest.(check bool) "exit not in body" false (List.mem lp.exit lp.body)
  | ls -> Alcotest.failf "expected 1 loop, got %d" (List.length ls)

let test_nested_loop_depths () =
  let src =
    {|
global float A[4];
func void main() {
  for (int i = 0; i < 2; i = i + 1) {
    for (int j = 0; j < 2; j = j + 1) {
      A[i * 2 + j] = 1.0;
    }
  }
}
|}
  in
  let p = Muir_frontend.Frontend.compile src in
  let f = Program.find_func p "main" in
  let depths =
    List.sort compare (List.map (fun (l : Func.loop_info) -> l.depth) f.loops)
  in
  Alcotest.(check (list int)) "two nested loops" [ 1; 2 ] depths;
  (* Inner loop blocks are contained in the outer loop body. *)
  let outer = List.find (fun (l : Func.loop_info) -> l.depth = 1) f.loops in
  let inner = List.find (fun (l : Func.loop_info) -> l.depth = 2) f.loops in
  Alcotest.(check bool) "inner inside outer" true
    (List.for_all (fun b -> List.mem b outer.body) inner.body)

(* Property: compiled straight-line arithmetic agrees with OCaml. *)

let prop_arith_agrees =
  QCheck.Test.make ~count:100 ~name:"compiled int arithmetic matches OCaml"
    QCheck.(triple (int_range (-1000) 1000) (int_range (-1000) 1000)
              (int_range 1 100))
    (fun (a, b, c) ->
      let src =
        Fmt.str
          "func int main() { int a = %d; int b = %d; int c = %d; return (a \
           + b) * c - a / c + (a %% c); }"
          a b c
      in
      let v, _, _ = Interp.run (Muir_frontend.Frontend.compile src) in
      let expected = (((a + b) * c) - (a / c)) + (a mod c) in
      Types.value_close v (vint expected))

let prop_parallel_matches_serial =
  QCheck.Test.make ~count:30 ~name:"parallel_for equals serial for"
    QCheck.(int_range 1 32)
    (fun n ->
      let mk kw =
        Fmt.str
          {|
global float X[%d];
global float O[%d];
func void main() {
  %s (int i = 0; i < %d; i = i + 1) { O[i] = X[i] * 3.0 + 1.0; }
}
|}
          n n kw n
      in
      let x = Array.init n (fun i -> VFloat (float_of_int i *. 0.5)) in
      let run src =
        let p = Muir_frontend.Frontend.compile src in
        let p = Program.with_init p [ ("X", x) ] in
        let _, mem, _ = Interp.run p in
        Memory.dump_global mem p "O"
      in
      let serial = run (mk "for") and par = run (mk "parallel_for") in
      Array.for_all2 (fun a b -> Types.value_close a b) serial par)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [ prop_arith_agrees; prop_parallel_matches_serial ]

let () =
  Alcotest.run "frontend"
    [ ( "programs",
        [ Alcotest.test_case "saxpy" `Quick test_saxpy;
          Alcotest.test_case "parallel saxpy" `Quick test_parallel_saxpy;
          Alcotest.test_case "gemm" `Quick test_gemm;
          Alcotest.test_case "if/else phi" `Quick test_condition_phi;
          Alcotest.test_case "fib via spawn" `Quick test_fib_spawn;
          Alcotest.test_case "while" `Quick test_while_loop;
          Alcotest.test_case "ternary/minmax/cast" `Quick
            test_ternary_minmax_cast;
          Alcotest.test_case "tile intrinsics" `Quick test_tile_ops;
          Alcotest.test_case "spmv-like indirection" `Quick
            test_int_array_and_spmv_like ] );
      ( "errors",
        [ Alcotest.test_case "type errors" `Quick test_type_errors;
          Alcotest.test_case "parse errors" `Quick test_parse_errors;
          Alcotest.test_case "lexer positions" `Quick test_lexer_positions ] );
      ( "structure",
        [ Alcotest.test_case "loop metadata" `Quick test_loop_metadata;
          Alcotest.test_case "nested loop depths" `Quick
            test_nested_loop_depths ] );
      ("properties", qcheck_cases) ]
