test/test_ir.ml: Alcotest Array Builder Dom Eval Func Int64 Interp List Loops Memory Muir_ir Program QCheck QCheck_alcotest Transform Types Verify
