test/test_unroll.ml: Alcotest Array Fmt Func Interp List Memory Muir_ir Program QCheck QCheck_alcotest Sim_harness Types Unroll Verify
