test/test_unroll.mli:
