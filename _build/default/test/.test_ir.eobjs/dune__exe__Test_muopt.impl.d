test/test_muopt.ml: Alcotest Array Fmt List Muir_core Muir_ir Muir_opt QCheck QCheck_alcotest Sim_harness
