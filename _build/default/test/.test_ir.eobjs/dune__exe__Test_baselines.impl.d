test/test_baselines.ml: Alcotest Float Fmt Hashtbl Interp List Muir_cpu Muir_frontend Muir_hls Muir_ir Muir_workloads
