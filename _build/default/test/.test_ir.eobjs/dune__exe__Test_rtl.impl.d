test/test_rtl.ml: Alcotest Build Fmt Graph List Muir_core Muir_frontend Muir_opt Muir_rtl QCheck QCheck_alcotest String
