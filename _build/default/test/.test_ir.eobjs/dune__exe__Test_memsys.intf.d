test/test_memsys.mli:
