test/test_frontend.mli:
