test/test_muopt.mli:
