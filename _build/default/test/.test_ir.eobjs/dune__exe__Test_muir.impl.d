test/test_muir.ml: Alcotest Build Fmt Graph List Muir_core Muir_frontend Muir_ir QCheck QCheck_alcotest Validate
