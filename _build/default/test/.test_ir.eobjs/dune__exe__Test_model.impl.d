test/test_model.ml: Alcotest Fmt List Muir_core Muir_frontend Muir_model Muir_opt Muir_rtl Muir_workloads QCheck QCheck_alcotest
