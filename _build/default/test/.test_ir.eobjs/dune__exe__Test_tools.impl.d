test/test_tools.ml: Alcotest Fmt List Muir_core Muir_opt Muir_rtl Sim_harness String
