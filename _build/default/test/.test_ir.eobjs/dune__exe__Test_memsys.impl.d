test/test_memsys.ml: Alcotest Array Fmt List Muir_core Muir_frontend Muir_ir Muir_sim QCheck QCheck_alcotest
