test/test_muir.mli:
