test/test_tools.mli:
