test/test_workloads.ml: Alcotest Array Float Fmt Int64 Interp List Memory Muir_core Muir_ir Muir_opt Muir_sim Muir_workloads Types
