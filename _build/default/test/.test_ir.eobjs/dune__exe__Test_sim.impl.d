test/test_sim.ml: Alcotest Array Fmt List Muir_ir Muir_opt Muir_sim QCheck QCheck_alcotest Sim_harness
