test/test_frontend.ml: Alcotest Array Fmt Func Int64 Interp List Memory Muir_frontend Muir_ir Program QCheck QCheck_alcotest Types
