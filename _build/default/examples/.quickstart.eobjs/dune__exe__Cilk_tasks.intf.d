examples/cilk_tasks.mli:
