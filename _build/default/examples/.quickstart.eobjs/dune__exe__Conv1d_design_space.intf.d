examples/conv1d_design_space.mli:
