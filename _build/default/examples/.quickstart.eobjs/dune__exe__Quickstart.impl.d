examples/quickstart.ml: Array Fmt Interp List Memory Muir_core Muir_frontend Muir_ir Muir_model Muir_opt Muir_rtl Muir_sim Program String Types
