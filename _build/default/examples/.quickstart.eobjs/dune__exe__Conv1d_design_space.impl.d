examples/conv1d_design_space.ml: Array Fmt Interp List Memory Muir_core Muir_frontend Muir_ir Muir_model Muir_opt Muir_rtl Muir_sim Muir_workloads Program Types
