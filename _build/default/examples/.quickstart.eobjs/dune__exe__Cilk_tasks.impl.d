examples/cilk_tasks.ml: Array Fmt Interp List Memory Muir_core Muir_frontend Muir_ir Muir_opt Muir_sim Muir_workloads Types
