examples/tensor_accelerator.mli:
