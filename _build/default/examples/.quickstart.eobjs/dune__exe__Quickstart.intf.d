examples/quickstart.mli:
