examples/tensor_accelerator.ml: Array Fmt Interp List Memory Muir_core Muir_ir Muir_model Muir_opt Muir_rtl Muir_sim Muir_workloads String Types
