(* Heterogeneous task parallelism on hardware: recursive Cilk programs
   become dynamically-scheduled task blocks (§3.2 of the paper; this is
   the fib/mergesort half of Fig. 12).

   Run with:  dune exec examples/cilk_tasks.exe

   The accelerator has no program counter: each spawn enqueues a task
   invocation, tiles execute ready invocations, and a join counter
   implements sync.  Execution tiling sweeps the number of tiles. *)

open Muir_ir
module Opt = Muir_opt

let fib_src =
  {|
global int OUT[1];
func int fib(int n) {
  if (n < 2) { return n; }
  int a = spawn fib(n - 1);
  int b = spawn fib(n - 2);
  sync;
  return a + b;
}
func void main() { OUT[0] = fib(14); }
|}

let msort = Muir_workloads.Workloads.find "msort"

let sweep name prog check =
  Fmt.pr "@.%s: execution-tile sweep@." name;
  Fmt.pr "  %5s %10s %10s@." "tiles" "cycles" "speedup";
  let base = ref 0 in
  List.iter
    (fun tiles ->
      let c = Muir_core.Build.circuit ~name prog in
      let _ =
        Opt.Pass.run_all
          [ Opt.Structural.queuing_pass ();
            Opt.Structural.tiling_pass ~tiles () ]
          c
      in
      let r = Muir_sim.Sim.run c in
      check r;
      if !base = 0 then base := r.stats.total_cycles;
      Fmt.pr "  %5d %10d %9.2fx@." tiles r.stats.total_cycles
        (float_of_int !base /. float_of_int r.stats.total_cycles))
    [ 1; 2; 4; 8 ]

let () =
  (* fib: pure recursion; its tasks form a spawn cycle, so the
     simulator runs them as dynamic contexts over N tiles *)
  let fib_prog = Muir_frontend.Frontend.compile fib_src in
  let rec fib n = if n < 2 then n else fib (n - 1) + fib (n - 2) in
  sweep "fib(14)" fib_prog (fun r ->
      let out = Memory.dump_global r.memory fib_prog "OUT" in
      assert (Types.value_close out.(0) (Types.vint (fib 14))));

  (* mergesort: recursion + a called merge kernel with two loops *)
  let msort_prog = Muir_workloads.Workloads.program msort in
  let _, golden, _ = Interp.run msort_prog in
  sweep "mergesort(64)" msort_prog (fun r ->
      let a = Memory.dump_global golden msort_prog "A" in
      let b = Memory.dump_global r.memory msort_prog "A" in
      assert (Array.for_all2 Types.value_close a b));
  Fmt.pr "@.both accelerators return bit-identical results at every \
          tile count@."
