(* Higher-order tensor operators (§6.3, Figs. 13-15): the same tiled
   matrix-multiply behaviour lowered once onto shared scalar function
   units and once onto the dedicated 2x2 reduction-tree units, with
   type-specific wide scratchpads.

   Run with:  dune exec examples/tensor_accelerator.exe *)

open Muir_ir
module Opt = Muir_opt
module G = Muir_core.Graph

let w = Muir_workloads.Workloads.find "2mm[T]"

let count_kind (c : G.circuit) pred =
  List.fold_left
    (fun acc (t : G.task) ->
      acc + List.length (List.filter pred t.nodes))
    0 c.tasks

let () =
  let prog = Muir_workloads.Workloads.program w in
  let _, golden, _ = Interp.run prog in
  let check (r : Muir_sim.Sim.result) =
    List.iter
      (fun gname ->
        let a = Memory.dump_global golden prog gname in
        let b = Memory.dump_global r.memory prog gname in
        assert (Array.for_all2 Types.value_close a b))
      w.outputs
  in

  let build passes =
    let c = Muir_core.Build.circuit ~name:"2mm_t" prog in
    let _ = Opt.Pass.run_all passes c in
    c
  in

  let baseline = build [] in
  let tensor = build (Opt.Stacks.tensor_stack ()) in

  let dedicated (n : G.node) =
    match n.kind with
    | G.Tcompute { dedicated; _ } -> dedicated
    | _ -> false
  in
  let shared (n : G.node) =
    match n.kind with
    | G.Tcompute { dedicated; _ } -> not dedicated
    | _ -> false
  in
  Fmt.pr "tile compute nodes: baseline %d shared-FU, optimized %d \
          dedicated units@."
    (count_kind baseline shared)
    (count_kind tensor dedicated);
  List.iter
    (fun (s : G.struct_inst) -> Fmt.pr "  structure %a@." G.pp_structure s)
    tensor.structures;

  let r0 = Muir_sim.Sim.run baseline in
  check r0;
  let r1 = Muir_sim.Sim.run tensor in
  check r1;
  Fmt.pr "baseline : %6d cycles@." r0.stats.total_cycles;
  Fmt.pr "tensor   : %6d cycles (%.2fx)@." r1.stats.total_cycles
    (float_of_int r0.stats.total_cycles
    /. float_of_int r1.stats.total_cycles);

  (* area/frequency story: dedicated units trade DSPs for speed *)
  let f0 = Muir_model.Model.fpga (Muir_rtl.Lower.design baseline) in
  let f1 = Muir_model.Model.fpga (Muir_rtl.Lower.design tensor) in
  Fmt.pr "baseline FPGA : %a@." Muir_model.Model.pp_fpga f0;
  Fmt.pr "tensor   FPGA : %a@." Muir_model.Model.pp_fpga f1;

  (* and the generated hardware really instantiates the Fig. 14 unit *)
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  let chisel = Muir_rtl.Chisel.emit tensor in
  String.split_on_char '\n' chisel
  |> List.filter (fun l -> contains l "TensorUnit")
  |> List.iteri (fun i l -> if i < 4 then Fmt.pr "%s@." (String.trim l))
