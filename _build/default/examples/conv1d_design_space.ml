(* The paper's running example (Fig. 2): one 1D-convolution behaviour,
   many microarchitectures.

   Run with:  dune exec examples/conv1d_design_space.exe

   Starting from the same C-like source, we reproduce the four
   microarchitectural variants of Fig. 2 as μopt pass combinations and
   measure each one, without ever touching the program:

     baseline        time-multiplexed PE over a shared cache
     opt 1 locality  per-array scratchpad buffers
     opt 2 tiling    replicated execution units (+ banking)
     opt 3 pipeline  auto-balanced, fused dataflow
     opt 4 tensor    (for comparison: the tiled 2x2 tensor variant) *)

open Muir_ir
module Opt = Muir_opt

let m = 128
let w = 8

let source =
  Fmt.str
    {|
global float INPUT[%d];
global float WEIGHT[%d];
global float OUTPUT[%d];
func void main() {
  parallel_for (int i = 0; i < %d; i = i + 1) {
    float acc = 0.0;
    for (int j = 0; j < %d; j = j + 1) {
      acc = acc + INPUT[i+j] * WEIGHT[j];
    }
    OUTPUT[i] = acc;
  }
  sync;
}
|}
    m w (m - w) (m - w) w

let () =
  let prog = Muir_frontend.Frontend.compile source in
  let prog =
    Program.with_init prog
      [ ("INPUT", Muir_workloads.Data.floats ~seed:1 m);
        ("WEIGHT", Muir_workloads.Data.floats ~seed:2 w) ]
  in
  let _, golden, _ = Interp.run prog in
  let variants =
    [ ("baseline", []);
      ("opt1 locality", [ Opt.Structural.localization_pass () ]);
      ( "opt2 +tiling",
        [ Opt.Structural.localization_pass ();
          Opt.Structural.scratchpad_banking_pass ~banks:4 ();
          Opt.Structural.tiling_pass ~tiles:4 () ] );
      ( "opt3 +pipelining",
        [ Opt.Structural.localization_pass ();
          Opt.Structural.scratchpad_banking_pass ~banks:4 ();
          Opt.Structural.tiling_pass ~tiles:4 ();
          Opt.Fusion.pass ] ) ]
  in
  Fmt.pr "1D convolution, M=%d W=%d (Fig. 2 of the paper)@.@." m w;
  Fmt.pr "%-18s %10s %8s %8s %10s@." "variant" "cycles" "MHz" "us"
    "speedup";
  let base_us = ref 0.0 in
  List.iter
    (fun (name, passes) ->
      let c = Muir_core.Build.circuit ~name:"conv1d" prog in
      let _ = Opt.Pass.run_all passes c in
      let r = Muir_sim.Sim.run c in
      (* functional check on every variant *)
      let a = Memory.dump_global golden prog "OUTPUT" in
      let b = Memory.dump_global r.memory prog "OUTPUT" in
      assert (Array.for_all2 Types.value_close a b);
      let f = Muir_model.Model.fpga (Muir_rtl.Lower.design c) in
      let us = float_of_int r.stats.total_cycles /. f.fr_mhz in
      if !base_us = 0.0 then base_us := us;
      Fmt.pr "%-18s %10d %8.0f %8.2f %9.2fx@." name r.stats.total_cycles
        f.fr_mhz us (!base_us /. us))
    variants;
  Fmt.pr "@.(each variant is the same program — only the μIR graph \
          changed)@."
