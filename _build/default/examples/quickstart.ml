(* Quickstart: software in, accelerator out.

   Run with:  dune exec examples/quickstart.exe

   The flow below is the whole toolchain in five steps:
   1. compile an unmodified program to the compiler IR;
   2. build the baseline μIR circuit (Algorithm 1);
   3. simulate it cycle-accurately and check it against the golden
      interpreter;
   4. apply μopt passes and watch the same functionality get faster;
   5. emit Chisel for the optimized accelerator. *)

open Muir_ir

let source =
  {|
global float X[64];
global float Y[64];
func void main() {
  for (int i = 0; i < 64; i = i + 1) {
    Y[i] = 2.5 * X[i] + Y[i];
  }
}
|}

let () =
  (* 1. software -> compiler IR *)
  let prog = Muir_frontend.Frontend.compile source in
  let prog =
    Program.with_init prog
      [ ("X", Array.init 64 (fun i -> Types.VFloat (float_of_int i))) ]
  in
  Fmt.pr "compiled %d functions, %d globals@."
    (List.length prog.funcs) (List.length prog.globals);

  (* 2. compiler IR -> baseline μIR circuit *)
  let baseline = Muir_core.Build.circuit ~name:"saxpy" prog in
  let n, e = Muir_core.Graph.graph_size baseline in
  Fmt.pr "baseline μIR graph: %d nodes, %d edges, %d tasks@." n e
    (List.length baseline.tasks);

  (* 3. golden execution + cycle-accurate simulation *)
  let _, golden_mem, _ = Interp.run prog in
  let r0 = Muir_sim.Sim.run baseline in
  let check (r : Muir_sim.Sim.result) =
    let a = Memory.dump_global golden_mem prog "Y" in
    let b = Memory.dump_global r.memory prog "Y" in
    assert (Array.for_all2 Types.value_close a b)
  in
  check r0;
  Fmt.pr "baseline: %d cycles (results match the golden model)@."
    r0.stats.total_cycles;

  (* 4. μopt: localize memory, then auto-pipeline and fuse *)
  let optimized = Muir_core.Build.circuit ~name:"saxpy" prog in
  let reports =
    Muir_opt.Pass.run_all
      [ Muir_opt.Structural.localization_pass (); Muir_opt.Fusion.pass ]
      optimized
  in
  List.iter (fun rep -> Fmt.pr "  %a@." Muir_opt.Pass.pp_report rep) reports;
  let r1 = Muir_sim.Sim.run optimized in
  check r1;
  Fmt.pr "optimized: %d cycles (%.2fx faster, still correct)@."
    r1.stats.total_cycles
    (float_of_int r0.stats.total_cycles
    /. float_of_int r1.stats.total_cycles);

  (* 5. synthesis estimate + Chisel emission *)
  let design = Muir_rtl.Lower.design optimized in
  Fmt.pr "FPGA estimate: %a@." Muir_model.Model.pp_fpga
    (Muir_model.Model.fpga design);
  let chisel = Muir_rtl.Chisel.emit optimized in
  Fmt.pr "@.--- Chisel (first 12 lines) ---@.";
  String.split_on_char '\n' chisel
  |> List.filteri (fun i _ -> i < 12)
  |> List.iter print_endline
