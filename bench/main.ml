(* Experiment harness: regenerates every table and figure of the μIR
   paper's evaluation (see DESIGN.md's experiment index).

     dune exec bench/main.exe           -- run everything
     dune exec bench/main.exe -- table2 fig9 ...   -- selected experiments
     dune exec bench/main.exe -- bechamel          -- wall-clock microbenches

   Absolute numbers come from this repository's simulator and synthesis
   models, not the authors' testbed; EXPERIMENTS.md records the
   paper-vs-measured comparison of shapes. *)

open Muir_ir
module W = Muir_workloads.Workloads
module Opt = Muir_opt
module G = Muir_core.Graph

let line = String.make 78 '-'

let header title = Fmt.pr "@.%s@.%s@.%s@." line title line

(* ------------------------------------------------------------------ *)
(* Execution helpers                                                    *)

type run = {
  r_cycles : int;
  r_mhz : float;
  r_us : float;  (** wall time at the modelled clock *)
}

let check_outputs (w : W.t) (p : Program.t) (r : Muir_sim.Sim.result) =
  let _, gold, _ = Interp.run p in
  List.iter
    (fun g ->
      let a = Memory.dump_global gold p g in
      let b = Memory.dump_global r.memory p g in
      Array.iteri
        (fun i x ->
          if not (Types.value_close x b.(i)) then
            failwith
              (Fmt.str "%s: output %s[%d] mismatch (golden %s, sim %s)"
                 w.wname g i (Types.value_to_string x)
                 (Types.value_to_string b.(i))))
        a)
    w.outputs

(** Build, optimize, simulate and functionally check one workload. *)
let run_workload ?(passes = []) ?(unroll = false) (w : W.t) : run =
  let p = W.program w in
  if unroll then ignore (Unroll.unroll ~max_trip:16 p);
  let c = Muir_core.Build.circuit ~name:w.wname p in
  let _ = Opt.Pass.run_all passes c in
  let r = Muir_sim.Sim.run c in
  check_outputs w p r;
  let design = Muir_rtl.Lower.design c in
  let f = Muir_model.Model.fpga design in
  let cycles = r.Muir_sim.Sim.stats.total_cycles in
  { r_cycles = cycles;
    r_mhz = f.fr_mhz;
    r_us = float_of_int cycles /. f.fr_mhz }

(** The per-category "all optimizations" stack (§6.5). *)
let best_stack (w : W.t) : Opt.Pass.t list =
  if w.tensor then
    Opt.Stacks.tensor_stack ()
    @ [ Opt.Structural.tiling_pass ~scope:`All_loops ~tiles:4 ();
        Opt.Structural.scratchpad_banking_pass ~banks:4 () ]
  else
    match w.category with
    | W.Cilk -> Opt.Stacks.cilk_stack ~tiles:4 ~banks:2 ()
    | _ -> Opt.Stacks.best_loop_stack ()

(* ------------------------------------------------------------------ *)
(* Table 2: baseline synthesis quality                                  *)

let table2 () =
  header "Table 2: synthesizing baseline μIR accelerators (no μopt passes)";
  Fmt.pr "%-10s | %5s %6s %7s %7s %4s %5s | %7s %6s %5s@." "bench" "MHz"
    "mW" "ALMs" "Regs" "DSP" "BRAM" "kum2" "mW" "GHz";
  Fmt.pr "%s@." line;
  List.iter
    (fun (w : W.t) ->
      let p = W.program w in
      let c = Muir_core.Build.circuit ~name:w.wname p in
      let d = Muir_rtl.Lower.design c in
      let f = Muir_model.Model.fpga d in
      let a = Muir_model.Model.asic d in
      Fmt.pr "%-10s | %5.0f %6.0f %7d %7d %4d %5d | %7.1f %6.1f %5.2f%s@."
        w.wname f.fr_mhz f.fr_mw f.fr_alms f.fr_regs f.fr_dsps f.fr_brams
        a.ar_area a.ar_mw a.ar_ghz
        (if w.tensor then "  [T]" else if w.fp then "  [F]" else ""))
    W.all

(* ------------------------------------------------------------------ *)
(* Figure 9: baseline μIR vs HLS                                        *)

let fig9_benches =
  [ "gemm"; "covar"; "fft"; "spmv"; "2mm"; "3mm"; "conv"; "dense8";
    "dense16"; "softm8"; "softm16" ]

let fig9 () =
  header
    "Figure 9: baseline μIR vs HLS, normalized execution time (HLS = 1; < \
     1 means μIR is faster)";
  Fmt.pr "%-10s %10s %10s %8s %8s %10s@." "bench" "uIR cyc" "HLS cyc"
    "uIR MHz" "HLS MHz" "norm exec";
  List.iter
    (fun name ->
      let w = W.find name in
      let r = run_workload w in
      let hls = Muir_hls.Hls.run (W.program w) in
      let hls_mhz = r.r_mhz /. hls.clock_ratio in
      let hls_us = hls.hls_cycles /. hls_mhz in
      Fmt.pr "%-10s %10d %10.0f %8.0f %8.0f %10.2f@." name r.r_cycles
        hls.hls_cycles r.r_mhz hls_mhz (r.r_us /. hls_us))
    fig9_benches

(* ------------------------------------------------------------------ *)
(* Figure 11: op fusion                                                 *)

let fig11_benches = [ "fft"; "spmv"; "covar"; "saxpy" ]

let fig11 () =
  header
    "Figure 11: execution-time improvement from auto-pipelining + op \
     fusion (baseline = 1)";
  List.map
    (fun name ->
      let w = W.find name in
      let base = run_workload w in
      let fused = run_workload ~passes:[ Opt.Fusion.pass ] w in
      let norm = fused.r_us /. base.r_us in
      Fmt.pr "%-10s baseline=%-8d fused=%-8d normalized=%.2f (%.2fx)@." name
        base.r_cycles fused.r_cycles norm (1.0 /. norm);
      (name, 1.0 /. norm))
    fig11_benches

(* ------------------------------------------------------------------ *)
(* Figure 12: concurrency tiling                                        *)

let fig12_benches = [ "stencil"; "saxpy"; "img-scale"; "fib"; "msort" ]
let fig12_tiles = [ 1; 2; 4; 8 ]

let fig12 () =
  header
    "Figure 12: execution time when varying execution tiles per task (1T \
     = 1)";
  Fmt.pr "%-10s %8s %8s %8s %8s   best speedup@." "bench" "1T" "2T" "4T"
    "8T";
  List.map
    (fun name ->
      let w = W.find name in
      let runs =
        List.map
          (fun tiles ->
            (run_workload
               ~passes:
                 [ Opt.Structural.queuing_pass ();
                   Opt.Structural.tiling_pass ~tiles () ]
               w)
              .r_cycles)
          fig12_tiles
      in
      let base = float_of_int (List.hd runs) in
      Fmt.pr "%-10s %8d %8d %8d %8d   %.2fx@." name (List.nth runs 0)
        (List.nth runs 1) (List.nth runs 2) (List.nth runs 3)
        (base /. float_of_int (List.nth runs 3));
      (name, base /. float_of_int (List.nth runs 3)))
    fig12_benches

(* ------------------------------------------------------------------ *)
(* Figure 15: tensor higher-order ops                                   *)

let fig15_benches = [ "relu[T]"; "2mm[T]"; "conv[T]" ]

let fig15 () =
  header
    "Figure 15: performance improvement from dedicated tensor units \
     (baseline = 1)";
  List.map
    (fun name ->
      let w = W.find name in
      let base = run_workload w in
      let opt = run_workload ~passes:(Opt.Stacks.tensor_stack ()) w in
      let speedup = base.r_us /. opt.r_us in
      Fmt.pr "%-10s baseline=%-8d tensor=%-8d speedup=%.2fx@." name
        base.r_cycles opt.r_cycles speedup;
      (name, speedup))
    fig15_benches

(* ------------------------------------------------------------------ *)
(* Figure 16: cache banking                                             *)

let fig16_benches = [ "gemm"; "fft"; "2mm"; "3mm"; "saxpy"; "conv" ]

let fig16 () =
  header "Figure 16: effect of cache banking (1-4 banks, 1B = 1)";
  Fmt.pr "%-10s %8s %8s %8s   best speedup@." "bench" "1B" "2B" "4B";
  List.map
    (fun name ->
      let w = W.find name in
      let runs =
        List.map
          (fun banks ->
            let passes =
              if banks = 1 then []
              else [ Opt.Structural.cache_banking_pass ~banks () ]
            in
            (run_workload ~passes w).r_cycles)
          [ 1; 2; 4 ]
      in
      let base = float_of_int (List.hd runs) in
      let best = base /. float_of_int (List.nth runs 2) in
      Fmt.pr "%-10s %8d %8d %8d   %.2fx@." name (List.nth runs 0)
        (List.nth runs 1) (List.nth runs 2) best;
      (name, best))
    fig16_benches

(* ------------------------------------------------------------------ *)
(* §6.4 memory localization (the Table 3 row next to cache banking)     *)

let loc_benches = [ "spmv"; "conv"; "saxpy"; "covar" ]

let localization () =
  header
    "§6.4 memory localization: per-array scratchpads replacing the \
     shared cache (baseline = 1)";
  List.map
    (fun name ->
      let w = W.find name in
      let base = run_workload w in
      let opt =
        run_workload ~passes:[ Opt.Structural.localization_pass () ] w
      in
      let speedup = base.r_us /. opt.r_us in
      Fmt.pr "%-10s baseline=%-8d localized=%-8d speedup=%.2fx@." name
        base.r_cycles opt.r_cycles speedup;
      (name, speedup))
    loc_benches

(* ------------------------------------------------------------------ *)
(* Figure 17: stacking multiple optimizations                           *)

let fig17_cilk = [ "saxpy"; "stencil"; "img-scale" ]

let fig17_loop =
  [ "gemm"; "covar"; "fft"; "spmv"; "2mm"; "3mm"; "conv"; "dense8";
    "dense16"; "softm8"; "softm16" ]

let fig17 () =
  header
    "Figure 17: stacked μopt passes, normalized execution (baseline = 1)";
  let do_group names stack =
    List.map
      (fun name ->
        let w = W.find name in
        let base = run_workload w in
        let opt = run_workload ~passes:(stack w) w in
        let norm = opt.r_us /. base.r_us in
        Fmt.pr "%-10s baseline=%-8d stacked=%-8d normalized=%.2f (%.2fx)@."
          name base.r_cycles opt.r_cycles norm (1.0 /. norm);
        (name, 1.0 /. norm))
      names
  in
  Fmt.pr "Cilk group: queuing + tiling + localization + banking + fusion@.";
  let cilk =
    do_group fig17_cilk (fun _ -> Opt.Stacks.cilk_stack ~tiles:4 ~banks:2 ())
  in
  Fmt.pr
    "@.Loop-nest group: queuing + cache banking + localization + fusion@.";
  let loops = do_group fig17_loop (fun _ -> Opt.Stacks.loop_stack ()) in
  cilk @ loops

(* ------------------------------------------------------------------ *)
(* Figure 18: optimized μIR vs ARM A9                                   *)

let fig18_benches =
  [ "gemm"; "covar"; "fft"; "fft-buf"; "spmv"; "2mm"; "3mm"; "img-scale";
    "relu[T]"; "2mm[T]"; "conv[T]" ]

let fig18 () =
  header
    "Figure 18: fully optimized μIR accelerators vs an ARM A9 @ 1 GHz (> \
     1: μIR faster)";
  Fmt.pr "%-10s %12s %10s %10s %10s@." "bench" "acc cycles" "acc us"
    "cpu us" "speedup";
  List.map
    (fun name ->
      let w = W.find name in
      (* "all optimizations": compiler-level unrolling (the paper
         enables all compiler opts) + the per-category μopt stack *)
      let r = run_workload ~unroll:true ~passes:(best_stack w) w in
      let cpu = Muir_cpu.Arm.run (W.program w) in
      let cpu_us = Muir_cpu.Arm.nanoseconds cpu /. 1000.0 in
      let speedup = cpu_us /. r.r_us in
      Fmt.pr "%-10s %12d %10.2f %10.2f %10.2f@." name r.r_cycles r.r_us
        cpu_us speedup;
      (name, speedup))
    fig18_benches

(* ------------------------------------------------------------------ *)
(* Table 3 and the Figure 1 headline plot                               *)

let range l =
  let mn = List.fold_left (fun a (_, x) -> Float.min a x) infinity l in
  let mx = List.fold_left (fun a (_, x) -> Float.max a x) 0.0 l in
  (mn, mx)

let table3_data () =
  let f11 = fig11 () and f12 = fig12 () and f15 = fig15 ()
  and f16 = fig16 () and floc = localization () in
  header "Table 3: summary of μopt passes";
  Fmt.pr "%-16s %-12s %-38s %s@." "Opt" "Type" "Benchmarks" "Perf";
  let row name ty benches (mn, mx) =
    Fmt.pr "%-16s %-12s %-38s %.1f-%.1fx@." name ty
      (String.concat "," benches) mn mx
  in
  row "Op fusion" "Timing" fig11_benches (range f11);
  row "Task tiling" "Spatial" fig12_benches (range f12);
  row "Tensor ops" "Higher Ops" fig15_benches (range f15);
  row "Mem. localize" "Timing&Sp." loc_benches (range floc);
  row "Cache banking" "Timing&Sp." fig16_benches (range f16);
  (f11, f12, f15, f16, floc)

let table3 () = ignore (table3_data ())

let fig1 () =
  let f11, f12, f15, f16, floc = table3_data () in
  header "Figure 1 (headline plot): best improvement per pass class";
  let best l = snd (range l) in
  Fmt.pr "Op Fusion     %.1fx@." (best f11);
  Fmt.pr "Task Tiling   %.1fx@." (best f12);
  Fmt.pr "Tensor Intrin %.1fx@." (best f15);
  Fmt.pr "Locality      %.1fx@." (Float.max (best f16) (best floc))

(* ------------------------------------------------------------------ *)
(* Table 4: conciseness of μIR vs the circuit-level IR                  *)

let table4_benches = [ "saxpy"; "stencil"; "img-scale" ]

let table4 () =
  header
    "Table 4: conciseness of μIR vs the lowered circuit IR (elements \
     touched per transformation)";
  Fmt.pr "%-10s | %-26s | %-26s | %-26s | %s@." "bench"
    "tile 1->2 (uIR / rtl)" "add 1 SRAM (uIR / rtl)"
    "op fusion (uIR / rtl)" "rtl/uIR";
  List.iter
    (fun name ->
      let w = W.find name in
      let p = W.program w in
      let fresh () = Muir_core.Build.circuit ~name p in
      let delta (pass : Opt.Pass.t) =
        let c = fresh () in
        let d0 = Muir_rtl.Lower.design c in
        let rep = pass.prun c in
        let d1 = Muir_rtl.Lower.design c in
        let dn, de = Muir_rtl.Rtl.diff d0 d1 in
        (rep.delta_nodes, rep.delta_edges, dn, de)
      in
      let t = delta (Opt.Structural.tiling_pass ~tiles:2 ()) in
      let s = delta (Opt.Structural.localization_pass ()) in
      let f = delta Opt.Fusion.pass in
      let c = fresh () in
      let un, ue = G.graph_size c in
      let rn, re = Muir_rtl.Rtl.size (Muir_rtl.Lower.design c) in
      let pp (un', ue', rn', re') =
        Fmt.str "dN%4d dE%4d / %4d %4d" un' ue' rn' re'
      in
      Fmt.pr "%-10s | %s | %s | %s | %.1fx@." name (pp t) (pp s) (pp f)
        (float_of_int (rn + re) /. float_of_int (un + ue)))
    table4_benches

(* ------------------------------------------------------------------ *)
(* Ablations of DESIGN.md's called-out choices                          *)

let unroll_ablation () =
  header
    "Ablation: behaviour-level loop unrolling feeding hardware ILP \
     (baseline = 1)";
  List.iter
    (fun name ->
      let w = W.find name in
      let base = run_workload w in
      let unrolled = run_workload ~unroll:true w in
      let both =
        run_workload ~unroll:true ~passes:(best_stack w) w
      in
      Fmt.pr
        "%-10s baseline=%-8d unrolled=%-8d unrolled+stack=%-8d (%.2fx, \
         %.2fx)@."
        name base.r_cycles unrolled.r_cycles both.r_cycles
        (base.r_us /. unrolled.r_us)
        (base.r_us /. both.r_us))
    [ "gemm"; "dense8"; "conv1d"; "conv" ]

let writeback_ablation () =
  header
    "Ablation: scratchpad write-back buffers (Pass-3 alternative, \
     baseline = localized)";
  List.iter
    (fun name ->
      let w = W.find name in
      let plain =
        run_workload ~passes:[ Opt.Structural.localization_pass () ] w
      in
      let buffered =
        run_workload
          ~passes:
            [ Opt.Structural.localization_pass ();
              Opt.Structural.writeback_pass () ]
          w
      in
      Fmt.pr "%-10s localized=%-8d +wb-buffer=%-8d (%.2fx)@." name
        plain.r_cycles buffered.r_cycles
        (plain.r_us /. buffered.r_us))
    [ "saxpy"; "stencil"; "conv1d" ]

let ablation () =
  unroll_ablation ();
  writeback_ablation ();
  header "Ablation: channel capacity (saxpy), junction width (gemm)";
  let w = W.find "saxpy" in
  Fmt.pr "channel capacity (baseline edges):@.";
  List.iter
    (fun cap ->
      let p = W.program w in
      let c = Muir_core.Build.circuit p in
      G.iter_tasks
        (fun t ->
          List.iter
            (fun (e : G.edge) ->
              if e.initial = [] then e.capacity <- max e.capacity cap)
            t.edges)
        c;
      let r = Muir_sim.Sim.run c in
      Fmt.pr "  cap>=%d: %d cycles@." cap
        r.Muir_sim.Sim.stats.total_cycles)
    [ 2; 4; 8 ];
  Fmt.pr "junction width (requests granted/cycle):@.";
  let wg = W.find "gemm" in
  List.iter
    (fun width ->
      let p = W.program wg in
      let c = Muir_core.Build.circuit p in
      G.iter_tasks (fun t -> G.set_junction_width c t.tid width) c;
      let r = Muir_sim.Sim.run c in
      Fmt.pr "  width=%d: %d cycles@." width
        r.Muir_sim.Sim.stats.total_cycles)
    [ 1; 2; 4 ]

(* ------------------------------------------------------------------ *)
(* Simulation-kernel observability: how fast the event-driven kernel    *)
(* runs and how sparse its wake lists are                               *)

let kernel ?(jobs = 1) ?json () =
  header
    (Fmt.str
       "Simulation kernel: wall-clock throughput, wake-list sparsity and \
        GC pressure per workload (jobs=%d)"
       jobs);
  Fmt.pr "%-10s %10s %8s %12s %10s %10s %8s %9s %6s@." "bench" "cycles"
    "wall-s" "cycles/sec" "woken/cyc" "nodes/cyc" "sparsity" "minW/cyc"
    "majGC";
  let rows =
    List.map
      (fun (w : W.t) ->
        let p = W.program w in
        let c = Muir_core.Build.circuit ~name:w.wname p in
        let r = Muir_sim.Sim.run ~jobs c in
        let s = r.Muir_sim.Sim.stats in
        let sparsity =
          if s.live_nodes_per_cycle > 0.0 then
            s.woken_per_cycle /. s.live_nodes_per_cycle
          else 0.0
        in
        Fmt.pr "%-10s %10d %8.3f %12.0f %10.1f %10.1f %7.1f%% %9.4f %6d@."
          w.wname s.cycles s.wall_seconds s.cycles_per_sec s.woken_per_cycle
          s.live_nodes_per_cycle (100.0 *. sparsity)
          s.gc_minor_words_per_cycle s.gc_major_collections;
        (w.wname, s))
      W.all
  in
  (* Zero-allocation guard: the steady-state fire path must not touch
     the minor heap.  The sampled rate excludes construction warm-up
     (second half of the run); 0.05 words/cycle of slack covers the
     periodic sampling itself. *)
  List.iter
    (fun name ->
      let s = List.assoc name rows in
      if s.Muir_sim.Sim.gc_minor_words_per_cycle >= 0.05 then begin
        Fmt.epr
          "zero-allocation guard failed: %s steady-state allocates %.4f \
           minor words/cycle (limit 0.05)@."
          name s.Muir_sim.Sim.gc_minor_words_per_cycle;
        exit 1
      end
      else
        Fmt.pr
          "zero-allocation guard: %s steady-state %.4f minor words/cycle \
           (< 0.05)@."
          name s.Muir_sim.Sim.gc_minor_words_per_cycle)
    [ "gemm"; "fib" ];
  (match json with
  | None -> ()
  | Some path ->
    let module J = Muir_trace.Json in
    let j =
      J.Obj
        [ ("jobs", J.Int jobs);
          ( "workloads",
            J.Arr
              (List.map
                 (fun (name, (s : Muir_sim.Sim.stats)) ->
                   J.Obj
                     [ ("name", J.Str name);
                       ("cycles", J.Int s.cycles);
                       ("wall_seconds", J.Float s.wall_seconds);
                       ("cycles_per_sec", J.Float s.cycles_per_sec);
                       ("woken_per_cycle", J.Float s.woken_per_cycle);
                       ( "live_nodes_per_cycle",
                         J.Float s.live_nodes_per_cycle );
                       ( "gc_minor_words_per_cycle",
                         J.Float s.gc_minor_words_per_cycle );
                       ( "gc_major_collections",
                         J.Int s.gc_major_collections ) ])
                 rows) ) ]
    in
    let oc = open_out path in
    output_string oc (J.to_string j);
    output_char oc '\n';
    close_out oc;
    Fmt.pr "wrote kernel metrics for %d workloads to %s@."
      (List.length rows) path);
  (* Tracing-disabled overhead guard: with no tracer attached the
     instrumented kernel must be indistinguishable from noise.  Two
     interleaved batches of untraced GEMM runs must land within 3% of
     each other — if instrumentation cost real time, it would still
     show in both batches equally, so what this bounds is the machine
     noise floor against which any overhead claim is made; the traced
     run is then reported against that floor. *)
  let timed ?tracer () =
    let w = W.find "gemm" in
    let p = W.program w in
    let c = Muir_core.Build.circuit ~name:w.wname p in
    let r = Muir_sim.Sim.run ?tracer c in
    r.Muir_sim.Sim.stats.wall_seconds
  in
  let median l =
    List.nth (List.sort compare l) (List.length l / 2)
  in
  let batches () =
    let a = ref [] and b = ref [] in
    for _ = 1 to 5 do
      a := timed () :: !a;
      b := timed () :: !b
    done;
    (median !a, median !b)
  in
  let rec guard attempt =
    let ta, tb = batches () in
    let delta = Float.abs (ta -. tb) /. Float.max ta tb in
    Fmt.pr
      "tracing-disabled overhead guard: batch A %.4fs, batch B %.4fs \
       (%.1f%% apart, limit 3%%)@."
      ta tb (100.0 *. delta);
    if delta > 0.03 then
      if attempt < 3 then begin
        Fmt.pr "  ...above the noise limit, retrying (%d/3)@." attempt;
        guard (attempt + 1)
      end
      else begin
        Fmt.epr
          "tracing-disabled kernel overhead guard failed: batches %.1f%% \
           apart after 3 attempts@."
          (100.0 *. delta);
        exit 1
      end
  in
  guard 1;
  let t_off = median (List.init 5 (fun _ -> timed ())) in
  let t_on =
    median
      (List.init 5 (fun _ -> timed ~tracer:(Muir_trace.Trace.create ()) ()))
  in
  Fmt.pr "tracing enabled: %.4fs vs %.4fs disabled (%+.1f%%, informational)@."
    t_on t_off
    (100.0 *. (t_on -. t_off) /. t_off)

(* ------------------------------------------------------------------ *)
(* Profiler: the bottleneck -> μopt pass loop (§7's methodology)        *)

let profile () =
  header
    "Profiler: stall attribution, and how the blamed structure responds \
     to the bundled stack that widens it";
  let traced name passes =
    let w = W.find name in
    let p = W.program w in
    let c = Muir_core.Build.circuit ~name:w.wname p in
    let _ = Opt.Pass.run_all passes c in
    let tracer = Muir_trace.Trace.create () in
    let r = Muir_sim.Sim.run ~tracer c in
    Muir_trace.Profile.of_run c ~tracer r.Muir_sim.Sim.counters
  in
  List.iter
    (fun (name, stack_name, stack) ->
      let p0 = traced name [] in
      let p1 = traced name (stack ()) in
      Fmt.pr "@.== %s (baseline %d cycles; %s %d cycles)@." name p0.Muir_trace.Profile.p_cycles
        stack_name p1.Muir_trace.Profile.p_cycles;
      Muir_trace.Profile.report ~top:5 Fmt.stdout p0;
      List.iter
        (fun (s : Muir_trace.Profile.struct_row) ->
          if s.s_stalls > 0 then
            Fmt.pr
              "stall share of %-16s baseline %5.2f%% -> %s %5.2f%%@."
              s.s_name
              (100.0 *. Muir_trace.Profile.struct_share p0 s.s_name)
              stack_name
              (100.0 *. Muir_trace.Profile.struct_share p1 s.s_name))
        p0.Muir_trace.Profile.p_structs)
    [ ("gemm", "loop-stack", fun () -> Opt.Stacks.loop_stack ());
      ("fib", "cilk-stack", fun () -> Opt.Stacks.cilk_stack ());
      ("2mm[T]", "tensor-stack", fun () -> Opt.Stacks.tensor_stack ()) ]

(* ------------------------------------------------------------------ *)
(* Static timing bounds cross-validated against the simulator          *)

let timing () =
  header
    "Static timing analysis: max-cycle-ratio lower bounds vs measured \
     cycles, every workload under every registry stack";
  Fmt.pr "@.%-12s %-14s %10s %10s %10s@." "workload" "stack" "bound"
    "measured" "tightness";
  let rows = ref 0 and tight_sum = ref 0.0 in
  let tight_min = ref infinity and tight_max = ref 0.0 in
  List.iter
    (fun (w : W.t) ->
      List.iter
        (fun (s : Opt.Stacks.spec) ->
          let p = W.program w in
          let c = Muir_core.Build.circuit ~name:w.wname p in
          let _ = Opt.Pass.run_all (s.sp_build s.sp_defaults) c in
          let bound = Muir_analysis.Timing.bound_cycles c in
          let r = Muir_sim.Sim.run c in
          let m = r.Muir_sim.Sim.stats.total_cycles in
          (* The soundness contract: the static bound may be loose but
             must never exceed what the simulator measures. *)
          if bound > m then begin
            Fmt.epr "%s under %s: UNSOUND static bound %d > measured %d@."
              w.wname s.sp_name bound m;
            exit 1
          end;
          let tight =
            if m = 0 then 1.0 else float_of_int bound /. float_of_int m
          in
          incr rows;
          tight_sum := !tight_sum +. tight;
          if tight < !tight_min then tight_min := tight;
          if tight > !tight_max then tight_max := tight;
          Fmt.pr "%-12s %-14s %10d %10d %9.2f@." w.wname s.sp_name bound m
            tight)
        Opt.Stacks.registry)
    W.all;
  Fmt.pr "@.%d pairs, all sound; tightness min %.2f mean %.2f max %.2f@."
    !rows !tight_min
    (!tight_sum /. float_of_int (max 1 !rows))
    !tight_max;
  (* Cross-validation of the critical-cycle attribution: on gemm under
     the queue-bound baseline stack, the structure the profiler blames
     for the dominant stall must appear as some task's static binding. *)
  let w = W.find "gemm" in
  let c = Muir_core.Build.circuit ~name:w.wname (W.program w) in
  let tracer = Muir_trace.Trace.create () in
  let r = Muir_sim.Sim.run ~tracer c in
  let prof = Muir_trace.Profile.of_run c ~tracer r.Muir_sim.Sim.counters in
  (match Muir_trace.Profile.dominant_struct prof with
  | None ->
    Fmt.epr "gemm baseline: profiler reports no stalls@.";
    exit 1
  | Some s ->
    let a = Muir_analysis.Timing.analyze c in
    let blamed =
      List.exists
        (fun (tt : Muir_analysis.Timing.task_timing) ->
          match tt.tt_ii with
          | Muir_analysis.Timing.Bounded { binding; _ } ->
            Muir_analysis.Timing.binding_sref binding = Some s.s_ref
          | _ -> false)
        a.tasks
    in
    if not blamed then begin
      Fmt.epr
        "gemm baseline: profiler blames %s but no static critical cycle \
         binds it@."
        s.s_name;
      exit 1
    end;
    Fmt.pr
      "@.gemm baseline: profiler's dominant stall (%s, %d cycles) matches \
       a static critical-cycle binding@."
      s.s_name s.s_stalls)

(* ------------------------------------------------------------------ *)
(* Design-space exploration: the explorer vs the hand-picked stacks     *)

let frontier_fingerprint (t : Muir_dse.Explore.t) : string =
  String.concat "\n" (List.map Muir_dse.Explore.eval_to_json t.x_frontier)
  ^ "\nbest:"
  ^ (match t.x_best with
    | Some b -> Muir_dse.Explore.eval_to_json b
    | None -> "none")

(* Resolve bundled examples whether we run from the repo root or from
   inside the build tree. *)
let read_example name =
  let candidates =
    [ Filename.concat "examples" name;
      Filename.concat "../examples" name;
      Filename.concat "../../examples" name;
      Filename.concat "../../../examples" name ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some p ->
    let ic = open_in_bin p in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  | None ->
    Fmt.epr "cannot locate examples/%s@." name;
    exit 1

let explore () =
  header
    "Design-space exploration: best-found configuration vs the best \
     predefined stack (grid search, shared memo cache)";
  let jobs = max 1 (min 4 (Domain.recommended_domain_count () - 1)) in
  List.iter
    (fun name ->
      let w = W.find name in
      let subject = Muir_dse.Explore.workload_subject w in
      let cache = Muir_dse.Cache.create () in
      (* Pass 1: just the predefined stacks, each at its own default
         parameters — the configurations a user could have hand-picked. *)
      let predef =
        Muir_dse.Explore.run ~jobs ~cache
          ~grid:(List.map Muir_dse.Config.predefined (Opt.Stacks.names ()))
          subject
      in
      let pbest =
        match predef.x_best with
        | Some b -> b
        | None -> failwith (name ^ ": no feasible predefined stack")
      in
      (* Pass 2: the full grid over the same cache — the predefined
         points come back as cache hits, never re-simulated. *)
      let full =
        Muir_dse.Explore.run ~jobs ~budget_evals:128 ~cache subject
      in
      Fmt.pr "@.== %s@." name;
      Muir_dse.Explore.pp_result Fmt.stdout full;
      let fbest = Option.get full.x_best in
      let cyc e = Option.get e.Muir_dse.Explore.e_cycles in
      Fmt.pr "best predefined   %-28s %8d cycles %7d ALMs@."
        (Muir_dse.Config.label pbest.e_cfg)
        (cyc pbest) pbest.e_alms;
      Fmt.pr "best found        %-28s %8d cycles %7d ALMs@."
        (Muir_dse.Config.label fbest.e_cfg)
        (cyc fbest) fbest.e_alms;
      (* Acceptance: some explored point must match or beat the best
         predefined stack on cycles at equal-or-lower modeled area. *)
      let dominated =
        List.exists
          (fun e ->
            cyc e <= cyc pbest && e.Muir_dse.Explore.e_alms <= pbest.e_alms)
          full.x_frontier
      in
      if not dominated then begin
        Fmt.epr
          "%s: explorer found nothing at least as good as the best \
           predefined stack@."
          name;
        exit 1
      end;
      (* Pass 3: re-exploration must be answered entirely from the
         memo cache — zero fresh simulations. *)
      let again =
        Muir_dse.Explore.run ~jobs ~budget_evals:128 ~cache subject
      in
      if again.x_fresh_sims <> 0 || again.x_pruned <> 0 then begin
        Fmt.epr "%s: re-exploration re-simulated %d configurations@." name
          (again.x_fresh_sims + again.x_pruned);
        exit 1
      end;
      Fmt.pr
        "re-exploration    %d cache hits, 0 fresh simulations@."
        again.x_cache_hits;
      (* The shared memo cache across all three passes: the hit/miss/
         entry counters the explorer reports in its JSON. *)
      Fmt.pr "shared cache      %a@." Muir_dse.Cache.pp_stats
        (Muir_dse.Cache.stats cache);
      (* Pass 4: the timing admission filter must be transparent — a
         pruned run from a cold cache reproduces the same frontier,
         byte for byte, never simulating more. *)
      let pruned =
        Muir_dse.Explore.run ~timing_prune:true ~jobs ~budget_evals:128
          ~cache:(Muir_dse.Cache.create ()) subject
      in
      if frontier_fingerprint pruned <> frontier_fingerprint full then begin
        Fmt.epr "%s: timing-pruned frontier diverged@." name;
        exit 1
      end;
      Fmt.pr
        "timing-pruned     identical frontier, %d of %d simulations \
         skipped@."
        pruned.x_timing_pruned pruned.x_fresh_evals)
    [ "gemm"; "fib"; "2mm" ];
  (* The queue-bound workloads above have bounds far below any measured
     run, so their filter never fires (and must not).  divring — the
     closed-form divide ring, where op-fusion re-times the recurrence —
     is the subject with honest pruning geometry: an un-fused config's
     static bound exceeds a fused config's measured cycles, so the
     banked un-fused configs are rejected without simulating. *)
  let subject =
    Muir_dse.Explore.source_subject ~name:"divring"
      (read_example "divring.mc")
  in
  let grid =
    [ Muir_dse.Config.v "baseline";
      Muir_dse.Config.v "cilk-stack";
      Muir_dse.Config.v ~off:[ "op-fusion" ] "cilk-stack";
      Muir_dse.Config.v ~tiles:2 "cilk-stack";
      Muir_dse.Config.v ~banks:2 "cilk-stack";
      Muir_dse.Config.v ~banks:4 "cilk-stack";
      Muir_dse.Config.v ~tiles:2 ~banks:2 "cilk-stack";
      Muir_dse.Config.v ~tiles:2 ~banks:4 "cilk-stack";
      Muir_dse.Config.v ~banks:2 ~off:[ "op-fusion" ] "cilk-stack";
      Muir_dse.Config.v ~banks:4 ~off:[ "op-fusion" ] "cilk-stack";
      Muir_dse.Config.v ~tiles:2 ~banks:2 ~off:[ "op-fusion" ] "cilk-stack";
      Muir_dse.Config.v ~tiles:2 ~banks:4 ~off:[ "op-fusion" ] "cilk-stack" ]
  in
  let jobs = max 1 (min 4 (Domain.recommended_domain_count () - 1)) in
  let plain =
    Muir_dse.Explore.run ~jobs ~cache:(Muir_dse.Cache.create ()) ~grid
      subject
  in
  let pruned =
    Muir_dse.Explore.run ~timing_prune:true ~jobs
      ~cache:(Muir_dse.Cache.create ()) ~grid subject
  in
  Fmt.pr "@.== divring (timing-pruned grid)@.";
  Muir_dse.Explore.pp_result Fmt.stdout pruned;
  if frontier_fingerprint pruned <> frontier_fingerprint plain then begin
    Fmt.epr "divring: timing-pruned frontier diverged@.";
    exit 1
  end;
  if
    pruned.x_timing_pruned < 1
    || pruned.x_fresh_sims >= plain.x_fresh_sims
  then begin
    Fmt.epr
      "divring: timing filter skipped nothing (%d -> %d sims, %d pruned)@."
      plain.x_fresh_sims pruned.x_fresh_sims pruned.x_timing_pruned;
    exit 1
  end;
  Fmt.pr
    "timing filter: %d -> %d simulations (%d rejected on static bound), \
     identical frontier@."
    plain.x_fresh_sims pruned.x_fresh_sims pruned.x_timing_pruned

(* ------------------------------------------------------------------ *)
(* Tensor-graph frontend: what graph-level op fusion pays               *)

let nn () =
  header
    "Tensor-graph frontend: whole-model lowering, fused vs unfused \
     (fusion folds relu into the producing matmul/conv/dense and \
     elides flatten)";
  Fmt.pr "%-8s %-9s %12s %12s %8s %9s@." "model" "stack" "unfused cyc"
    "fused cyc" "saved" "speedup";
  let improved = ref false in
  List.iter
    (fun name ->
      let wf = W.nn_workload name in
      let wu = W.nn_workload ~fused:false name in
      List.iter
        (fun (stack_name, passes_of) ->
          let u = run_workload ~passes:(passes_of wu) wu in
          let f = run_workload ~passes:(passes_of wf) wf in
          if f.r_cycles < u.r_cycles then improved := true;
          Fmt.pr "%-8s %-9s %12d %12d %8d %8.2fx@." name stack_name
            u.r_cycles f.r_cycles (u.r_cycles - f.r_cycles)
            (float_of_int u.r_cycles /. float_of_int f.r_cycles))
        [ ("baseline", fun (_ : W.t) -> []); ("best", best_stack) ])
    (List.map fst Muir_nn.Models.all);
  (* Acceptance: fusion must pay on at least one model/stack pair —
     both lowerings are functionally checked by run_workload above. *)
  if not !improved then begin
    Fmt.epr "nn: graph-level fusion reduced cycles on no model/stack pair@.";
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* The serve daemon: cold vs warm batch latency over the suite          *)

let serve_experiment ?json () =
  let module S = Muir_serve.Server in
  let module C = Muir_serve.Client in
  let module P = Muir_serve.Proto in
  let module J = Muir_trace.Json in
  let module R = Muir_trace.Report in
  header
    "Serve daemon: cold vs warm batch latency and requests/sec over the \
     workload suite (persistent content-addressed cache)";
  let socket = Filename.temp_file "muir-serve" ".sock" in
  Sys.remove socket;
  let cache_dir = Filename.temp_file "muir-rcache" ".d" in
  Sys.remove cache_dir;
  let jobs = max 1 (min 4 (Domain.recommended_domain_count () - 1)) in
  let start () =
    let t = S.create ~cache_dir ~jobs () in
    let d = Domain.spawn (fun () -> S.serve ~socket t) in
    let rec wait n =
      if Sys.file_exists socket then ()
      else if n = 0 then failwith "serve: daemon socket never appeared"
      else begin
        Unix.sleepf 0.05;
        wait (n - 1)
      end
    in
    wait 100;
    d
  in
  (* Every workload at baseline and under the "best" registry stack:
     the same suite shape as the regression baseline. *)
  let items =
    List.concat (List.mapi
      (fun i (w : W.t) ->
        List.mapi
          (fun j stack ->
            { P.it_id = (2 * i) + j; it_src = P.Workload w.wname;
              it_stack = stack; it_tiles = None; it_banks = None;
              it_off = []; it_deadline_ms = None; it_jobs = 1 })
          [ "baseline"; "best" ])
      W.all)
  in
  let round label =
    C.with_connection socket (fun fd ->
        let t0 = Unix.gettimeofday () in
        let resp = C.rpc fd (P.Run items) in
        let wall = Unix.gettimeofday () -. t0 in
        match resp with
        | P.Results { results; fresh; cached; errors } ->
          if errors > 0 then
            failwith (Fmt.str "serve: %s round had %d error(s)" label errors);
          Fmt.pr
            "%-8s %3d items in %7.3fs  (%5.1f items/s, %d fresh, %d \
             cached)@."
            label (List.length results) wall
            (float_of_int (List.length results) /. wall)
            fresh cached;
          (wall, results, fresh)
        | P.Error_r { msg; _ } -> failwith ("serve: rejected: " ^ msg)
        | _ -> failwith "serve: unexpected response")
  in
  let reports (r : P.result_ list) =
    List.map
      (fun (x : P.result_) ->
        match x.rs_outcome with
        | P.Ok_ { report; _ } -> J.to_string report
        | P.Err _ -> failwith "serve: error outcome in checked round")
      r
  in
  let d = start () in
  let cold_wall, cold_results, _ = round "cold" in
  let warm_wall, warm_results, warm_fresh = round "warm" in
  if warm_fresh <> 0 then
    failwith (Fmt.str "serve: warm round ran %d fresh simulations" warm_fresh);
  if reports cold_results <> reports warm_results then
    failwith "serve: warm reports diverge from cold reports";
  (* Scrape the daemon's histograms: the cold round populated the
     fresh item-latency series, the warm round the cached one. *)
  let scrape () =
    C.with_connection socket (fun fd ->
        match C.rpc fd P.Metrics with
        | P.Metrics_r text -> Muir_obs.Prom.parse text
        | _ -> failwith "serve: unexpected response to metrics")
  in
  let item_hist p cached =
    match
      Muir_obs.Prom.find_histogram p ~name:"muir_serve_item_seconds"
        ~labels:[ ("cached", cached) ] ()
    with
    | Some h -> h
    | None ->
      failwith
        (Fmt.str "serve: no item-latency histogram for cached=%s" cached)
  in
  let scraped = scrape () in
  let hf = item_hist scraped "false" and hc = item_hist scraped "true" in
  let n = List.length items in
  if hf.Muir_obs.Prom.hd_count <> n then
    failwith
      (Fmt.str "serve: fresh histogram counts %d observations, served %d"
         hf.Muir_obs.Prom.hd_count n);
  if hc.Muir_obs.Prom.hd_count <> n then
    failwith
      (Fmt.str "serve: cached histogram counts %d observations, served %d"
         hc.Muir_obs.Prom.hd_count n);
  let q h p = Muir_obs.Prom.quantile h p in
  let cold_p50 = q hf 0.5 and cold_p99 = q hf 0.99 in
  let warm_p50 = q hc 0.5 and warm_p99 = q hc 0.99 in
  Fmt.pr
    "item latency      cold p50 %.2fms p99 %.2fms   warm p50 %.3fms p99 \
     %.3fms@."
    (1000.0 *. cold_p50) (1000.0 *. cold_p99) (1000.0 *. warm_p50)
    (1000.0 *. warm_p99);
  (* The cache must not merely help on average: the slowest warm item
     must beat the median cold item outright. *)
  if warm_p99 >= cold_p50 then
    failwith
      (Fmt.str "serve: warm p99 (%.4fs) >= cold p50 (%.4fs)" warm_p99
         cold_p50);
  C.with_connection socket (fun fd -> ignore (C.rpc fd P.Shutdown));
  ignore (Domain.join d : S.drain_summary);
  (* Restart on the same cache directory: the disk store alone must
     answer the whole batch — zero fresh simulations across restarts. *)
  let d2 = start () in
  let restart_wall, restart_results, restart_fresh = round "restart" in
  if restart_fresh <> 0 then
    failwith
      (Fmt.str "serve: restarted daemon ran %d fresh simulations"
         restart_fresh);
  if reports cold_results <> reports restart_results then
    failwith "serve: post-restart reports diverge from cold reports";
  C.with_connection socket (fun fd -> ignore (C.rpc fd P.Shutdown));
  ignore (Domain.join d2 : S.drain_summary);
  Fmt.pr
    "warm/cold speedup %.1fx; restart warms from disk at %.1fx (%d \
     entries)@."
    (cold_wall /. warm_wall)
    (cold_wall /. restart_wall)
    (List.length items);
  (match json with
  | None -> ()
  | Some path ->
    (* The standard suite shape, built from the daemon's own responses:
       interchangeable with `bench --json` output downstream. *)
    let runs =
      List.map
        (fun (x : P.result_) ->
          match x.rs_outcome with
          | P.Ok_ { report; _ } -> R.run_of_json (J.get "run" report)
          | P.Err _ -> assert false)
        cold_results
    in
    let suite = { R.su_provenance = R.provenance (); su_runs = runs } in
    let oc = open_out path in
    output_string oc (R.suite_to_json suite);
    output_char oc '\n';
    close_out oc;
    Fmt.pr "wrote %d runs to %s@." (List.length runs) path);
  (try Sys.remove socket with Sys_error _ -> ());
  Array.iter
    (fun f -> try Sys.remove (Filename.concat cache_dir f) with Sys_error _ -> ())
    (try Sys.readdir cache_dir with Sys_error _ -> [||]);
  try Unix.rmdir cache_dir with Unix.Unix_error _ -> ()

(* ------------------------------------------------------------------ *)
(* Bechamel wall-clock microbenchmarks (one per table/figure kernel)    *)

let bechamel () =
  kernel ();
  header "Bechamel: wall-clock cost of each experiment's kernel";
  let open Bechamel in
  let small name passes =
    let w = W.find name in
    let p = W.program w in
    Staged.stage (fun () ->
        let c = Muir_core.Build.circuit p in
        let _ = Opt.Pass.run_all passes c in
        ignore (Muir_sim.Sim.run c))
  in
  let tests =
    [ Test.make ~name:"table2:lower+model"
        (Staged.stage (fun () ->
             let p = W.program (W.find "spmv") in
             let c = Muir_core.Build.circuit p in
             ignore (Muir_model.Model.fpga (Muir_rtl.Lower.design c))));
      Test.make ~name:"fig9:hls-model"
        (Staged.stage (fun () ->
             ignore (Muir_hls.Hls.run (W.program (W.find "spmv")))));
      Test.make ~name:"fig11:fusion-sim" (small "spmv" [ Opt.Fusion.pass ]);
      Test.make ~name:"fig12:tiling-sim"
        (small "saxpy" [ Opt.Structural.tiling_pass ~tiles:4 () ]);
      Test.make ~name:"fig15:tensor-sim"
        (small "relu[T]" (Opt.Stacks.tensor_stack ()));
      Test.make ~name:"fig16:banking-sim"
        (small "spmv" [ Opt.Structural.cache_banking_pass ~banks:4 () ]);
      Test.make ~name:"fig17:stacked-sim"
        (small "spmv" (Opt.Stacks.loop_stack ()));
      Test.make ~name:"fig18:cpu-model"
        (Staged.stage (fun () ->
             ignore (Muir_cpu.Arm.run (W.program (W.find "spmv")))));
      Test.make ~name:"table4:rtl-diff"
        (Staged.stage (fun () ->
             let p = W.program (W.find "saxpy") in
             let a = Muir_core.Build.circuit p in
             let b = Muir_core.Build.circuit p in
             ignore
               (Muir_rtl.Rtl.diff (Muir_rtl.Lower.design a)
                  (Muir_rtl.Lower.design b)))) ]
  in
  let run_one test =
    let instances = [ Toolkit.Instance.monotonic_clock ] in
    let cfg =
      Benchmark.cfg ~limit:200 ~quota:(Time.second 0.25) ~kde:None ()
    in
    let results = Benchmark.all cfg instances test in
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
    in
    let analyzed = Analyze.all ols Toolkit.Instance.monotonic_clock results in
    Hashtbl.iter
      (fun name est ->
        match Analyze.OLS.estimates est with
        | Some [ ns ] -> Fmt.pr "%-24s %12.1f us/run@." name (ns /. 1000.0)
        | _ -> Fmt.pr "%-24s (no estimate)@." name)
      analyzed
  in
  List.iter run_one tests

(* ------------------------------------------------------------------ *)
(* Machine-readable run reports and the benchmark regression gate      *)

module Report = Muir_trace.Report

(** Simulate one workload under [passes] and capture the full run
    report from the always-on counter bank.  Deterministic: wall
    seconds are deliberately left out so the emitted JSON is
    byte-stable across machines (see Report's determinism notes). *)
let report_run ?(passes = []) ?(unroll = false) ~stack (w : W.t) :
    Report.run =
  let p = W.program w in
  if unroll then ignore (Unroll.unroll ~max_trip:16 p);
  let c = Muir_core.Build.circuit ~name:w.wname p in
  let _ = Opt.Pass.run_all passes c in
  let r = Muir_sim.Sim.run c in
  check_outputs w p r;
  let s = r.Muir_sim.Sim.stats in
  let mem =
    List.map
      (fun (ms : Muir_sim.Memsys.struct_stats) ->
        { Report.m_name = ms.ss_name; m_accesses = ms.ss_accesses;
          m_hits = ms.ss_hits; m_misses = ms.ss_misses;
          m_conflicts = ms.ss_conflicts })
      s.mem
  in
  let d = Muir_rtl.Lower.design c in
  let f = Muir_model.Model.fpga d in
  let a = Muir_model.Model.asic d in
  Report.make ~workload:w.wname ~stack ~mem
    ~fpga:
      { Report.f_mhz = f.fr_mhz; f_alms = f.fr_alms; f_regs = f.fr_regs;
        f_dsps = f.fr_dsps; f_brams = f.fr_brams }
    ~asic:{ Report.a_ghz = a.ar_ghz; a_area = a.ar_area }
    ~total_cycles:s.total_cycles c r.Muir_sim.Sim.counters

(** [--json PATH]: every workload at baseline and under its
    per-category best stack, as one suite file.  This is how
    `bench/baseline.json` is produced and what CI's regression gate
    compares against. *)
let suite_json (path : string) =
  let runs =
    List.concat_map
      (fun (w : W.t) ->
        [ report_run ~stack:"baseline" w;
          report_run ~passes:(best_stack w) ~stack:"best" w ])
      W.all
  in
  let suite =
    { Report.su_provenance = Report.provenance (); su_runs = runs }
  in
  let oc = open_out path in
  output_string oc (Report.suite_to_json suite);
  output_char oc '\n';
  close_out oc;
  Fmt.pr "wrote %d runs (%d workloads x 2 stacks) to %s@."
    (List.length runs) (List.length W.all) path

(** [compare BASE NEW [--tolerance PCT]]: the regression gate.  Exits
    non-zero iff some (workload, stack) pair got more than PCT percent
    slower; runs present on only one side are reported but never
    fail. *)
let compare_reports (base_path : string) (new_path : string)
    (tolerance : float) =
  let load path =
    try Report.load path with
    | Report.Bad_report e ->
      Fmt.epr "%s: %s@." path e;
      exit 2
    | Sys_error e ->
      Fmt.epr "%s@." e;
      exit 2
  in
  let base = load base_path in
  let next = load new_path in
  let cmp = Report.compare_suites ~tolerance base next in
  Report.pp_comparison ~tolerance Fmt.stdout cmp;
  if Report.any_regression cmp then exit 1

(* ------------------------------------------------------------------ *)

let experiments : (string * (unit -> unit)) list =
  [ ("table2", table2);
    ("fig9", fig9);
    ("localization", fun () -> ignore (localization ()));
    ("fig11", fun () -> ignore (fig11 ()));
    ("fig12", fun () -> ignore (fig12 ()));
    ("fig15", fun () -> ignore (fig15 ()));
    ("fig16", fun () -> ignore (fig16 ()));
    ("fig17", fun () -> ignore (fig17 ()));
    ("fig18", fun () -> ignore (fig18 ()));
    ("table3", table3);
    ("table4", table4);
    ("fig1", fig1);
    ("ablation", ablation);
    ("kernel", fun () -> kernel ());
    ("nn", nn);
    ("profile", profile);
    ("timing", timing);
    ("explore", explore);
    ("serve", fun () -> serve_experiment ());
    ("bechamel", bechamel) ]

let run_experiments args =
  let selected =
    if args = [] then
      [ ("table2", table2); ("fig9", fig9); ("fig1", fig1);
        ("fig17", fun () -> ignore (fig17 ()));
        ("fig18", fun () -> ignore (fig18 ()));
        ("table4", table4); ("nn", nn); ("ablation", ablation);
        ("explore", explore); ("bechamel", bechamel) ]
    else
      List.map
        (fun a ->
          match List.assoc_opt a experiments with
          | Some f -> (a, f)
          | None ->
            Fmt.epr "unknown experiment %s (have: %s)@." a
              (String.concat " " (List.map fst experiments));
            exit 1)
        args
  in
  List.iter (fun (_, f) -> f ()) selected

let () =
  let args =
    match Array.to_list Sys.argv with
    | _ :: rest -> List.filter (fun a -> a <> "--") rest
    | [] -> []
  in
  match args with
  | "kernel" :: rest ->
    (* kernel [--jobs N] [--json PATH] *)
    let rec parse jobs json = function
      | [] -> kernel ~jobs ?json ()
      | "--jobs" :: n :: rest -> (
        match int_of_string_opt n with
        | Some j when j >= 1 -> parse j json rest
        | _ ->
          Fmt.epr "kernel: bad --jobs %S@." n;
          exit 2)
      | "--json" :: path :: rest -> parse jobs (Some path) rest
      | a :: _ ->
        Fmt.epr "usage: bench kernel [--jobs N] [--json PATH] (got %S)@." a;
        exit 2
    in
    parse 1 None rest
  | "serve" :: rest -> (
    (* serve [--json PATH] *)
    match rest with
    | [] -> serve_experiment ()
    | [ "--json"; path ] -> serve_experiment ~json:path ()
    | a :: _ ->
      Fmt.epr "usage: bench serve [--json PATH] (got %S)@." a;
      exit 2)
  | [ "--json"; path ] -> suite_json path
  | "--json" :: _ ->
    Fmt.epr "usage: bench --json REPORT.json@.";
    exit 2
  | "compare" :: rest -> (
    match rest with
    | [ base; next ] -> compare_reports base next 5.0
    | [ base; next; "--tolerance"; pct ] -> (
      match float_of_string_opt pct with
      | Some t when t >= 0.0 -> compare_reports base next t
      | _ ->
        Fmt.epr "compare: bad tolerance %S@." pct;
        exit 2)
    | _ ->
      Fmt.epr "usage: bench compare BASE.json NEW.json [--tolerance PCT]@.";
      exit 2)
  | _ -> run_experiments args
