(* The observability subsystem's contract.

   The load-bearing property is the conservation invariant: the stall
   taxonomy partitions every node's lifetime exactly —

     busy + Σ stall-cause cycles = lifetime cycles

   for every node of every workload under every bundled μopt stack,
   and the aggregates must not depend on the ring size (the ring loses
   old events; the accounting must not).  On top of that: the
   exporters must produce well-formed output (the Chrome trace is
   checked with a real JSON parser), the critical path must fit inside
   the run, and the profile must be actionable — the structure it
   blames on GEMM loses its attributed stalls under the stack that
   widens it. *)

module W = Muir_workloads.Workloads
module Tr = Muir_trace.Trace
module P = Muir_trace.Profile
module Ex = Muir_trace.Export

let stacks : (string * (unit -> Muir_opt.Pass.t list)) list =
  [ ("baseline", fun () -> []);
    ("loop-stack", fun () -> Muir_opt.Stacks.loop_stack ());
    ("cilk-stack", fun () -> Muir_opt.Stacks.cilk_stack ());
    ("tensor-stack", fun () -> Muir_opt.Stacks.tensor_stack ()) ]

let traced_run ?(capacity = 1 lsl 12) (w : W.t) (passes : Muir_opt.Pass.t list)
    : Muir_core.Graph.circuit * Tr.t * Muir_sim.Sim.result =
  let p = W.program w in
  let c = Muir_core.Build.circuit ~name:w.wname p in
  ignore (Muir_opt.Pass.run_all passes c);
  (* A deliberately small ring: aggregates must be exact regardless of
     how many events were overwritten. *)
  let tracer = Tr.create ~capacity () in
  let r = Muir_sim.Sim.run ~tracer c in
  (c, tracer, r)

let test_conservation (w : W.t) () =
  List.iter
    (fun (sname, mk) ->
      let c, tracer, r = traced_run w (mk ()) in
      let prof = P.of_run c ~tracer r.counters in
      Alcotest.(check bool)
        (Fmt.str "%s/%s: profile has rows" w.wname sname)
        true
        (prof.p_rows <> []);
      List.iter
        (fun (row : P.row) ->
          if not (P.conserved row) then
            Alcotest.failf
              "%s/%s: node %s n%d violates conservation: Σcauses=%d span=%d"
              w.wname sname row.r_tname row.r_node
              (Array.fold_left ( + ) 0 row.r_acc)
              row.r_span)
        prof.p_rows;
      (* Every firing the kernel counted is attributed to some node. *)
      let total_fires =
        List.fold_left (fun acc (row : P.row) -> acc + row.r_fires) 0
          prof.p_rows
      in
      Alcotest.(check int)
        (Fmt.str "%s/%s: attributed fires == kernel fires" w.wname sname)
        r.stats.fires total_fires)
    stacks

(* Aggregates must not depend on ring retention. *)
let test_ring_independence () =
  let w = W.find "gemm" in
  let _, tr_small, r_small = traced_run ~capacity:16 w [] in
  let c, tr_big, r_big = traced_run ~capacity:(1 lsl 20) w [] in
  Alcotest.(check bool)
    "small ring overwrote events" true
    (Tr.retained_events tr_small < Tr.total_events tr_small);
  Alcotest.(check int)
    "same total events" (Tr.total_events tr_big)
    (Tr.total_events tr_small);
  let ps = P.of_run c ~tracer:tr_small r_small.counters
  and pb = P.of_run c ~tracer:tr_big r_big.counters in
  List.iter2
    (fun (a : P.row) (b : P.row) ->
      Alcotest.(check int)
        (Fmt.str "fires of %s n%d" a.r_tname a.r_node)
        b.r_fires a.r_fires;
      Alcotest.(check (array int))
        (Fmt.str "causes of %s n%d" a.r_tname a.r_node)
        b.r_acc a.r_acc)
    ps.p_rows pb.p_rows

(* ------------------------------------------------------------------ *)
(* A small strict JSON parser — enough to prove the Chrome export is
   well-formed without trusting the producer's own escaping. *)

exception Bad_json of string

let parse_json (s : string) : unit =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let fail msg = raise (Bad_json (Fmt.str "%s at offset %d" msg !pos)) in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect ch =
    match peek () with
    | Some c when c = ch -> advance ()
    | _ -> fail (Fmt.str "expected %c" ch)
  in
  let literal word =
    String.iter (fun c -> expect c) word
  in
  let parse_string () =
    expect '"';
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
        | Some ('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') ->
          advance ();
          go ()
        | Some 'u' ->
          advance ();
          for _ = 1 to 4 do
            match peek () with
            | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> advance ()
            | _ -> fail "bad \\u escape"
          done;
          go ()
        | _ -> fail "bad escape")
      | Some c when Char.code c < 0x20 -> fail "raw control char in string"
      | Some _ ->
        advance ();
        go ()
    in
    go ()
  in
  let parse_number () =
    (match peek () with Some '-' -> advance () | _ -> ());
    let digits () =
      let saw = ref false in
      let rec go () =
        match peek () with
        | Some '0' .. '9' ->
          saw := true;
          advance ();
          go ()
        | _ -> ()
      in
      go ();
      if not !saw then fail "expected digit"
    in
    digits ();
    (match peek () with
    | Some '.' ->
      advance ();
      digits ()
    | _ -> ());
    match peek () with
    | Some ('e' | 'E') ->
      advance ();
      (match peek () with Some ('+' | '-') -> advance () | _ -> ());
      digits ()
    | _ -> ()
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then advance ()
      else begin
        let rec members () =
          skip_ws ();
          parse_string ();
          skip_ws ();
          expect ':';
          parse_value ();
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ()
          | Some '}' -> advance ()
          | _ -> fail "expected , or }"
        in
        members ()
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then advance ()
      else begin
        let rec elements () =
          parse_value ();
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elements ()
          | Some ']' -> advance ()
          | _ -> fail "expected , or ]"
        in
        elements ()
      end
    | Some '"' -> parse_string ()
    | Some 't' -> literal "true"
    | Some 'f' -> literal "false"
    | Some 'n' -> literal "null"
    | Some ('-' | '0' .. '9') -> parse_number ()
    | _ -> fail "expected a value"
  in
  parse_value ();
  skip_ws ();
  if !pos <> n then fail "trailing garbage"

let test_chrome_export () =
  List.iter
    (fun name ->
      let w = W.find name in
      let c, tracer, _ = traced_run ~capacity:(1 lsl 16) w [] in
      let json = Ex.chrome c tracer in
      (try parse_json json with
      | Bad_json msg -> Alcotest.failf "%s: invalid Chrome JSON: %s" name msg);
      Alcotest.(check bool)
        (name ^ ": has traceEvents") true
        (String.length json > 20
        && String.sub json 0 15 = "{\"traceEvents\":"))
    [ "saxpy"; "gemm"; "fib" ]

(* Hostile names: a circuit name and node labels stuffed with every
   character class RFC 8259 forces us to escape.  The Chrome export
   must still pass the strict parser above (which rejects raw control
   characters and bad escapes), and the library's own Json module must
   round-trip the strings exactly. *)
let hostile = "ev\"il\\na\nme\twith\r\bctrl\x01\x1f/end"

let test_hostile_names () =
  let w = W.find "saxpy" in
  let p = W.program w in
  let c = Muir_core.Build.circuit ~name:hostile p in
  Muir_core.Graph.iter_tasks
    (fun (t : Muir_core.Graph.task) ->
      List.iter
        (fun (n : Muir_core.Graph.node) -> n.label <- hostile)
        t.nodes)
    c;
  let tracer = Tr.create ~capacity:(1 lsl 16) () in
  ignore (Muir_sim.Sim.run ~tracer c);
  let json = Ex.chrome c tracer in
  (try parse_json json with
  | Bad_json msg ->
    Alcotest.failf "hostile names broke the Chrome JSON: %s" msg);
  (* And the escape really is lossless, not merely parseable. *)
  let module J = Muir_trace.Json in
  match J.parse (J.to_string (J.Str hostile)) with
  | J.Str s -> Alcotest.(check string) "escape round-trips" hostile s
  | _ -> Alcotest.fail "string did not parse back as a string"

let count_substring (hay : string) (needle : string) : int =
  let nl = String.length needle in
  let rec go from acc =
    if from + nl > String.length hay then acc
    else if String.sub hay from nl = needle then go (from + nl) (acc + 1)
    else go (from + 1) acc
  in
  go 0 0

let test_vcd_export () =
  let w = W.find "saxpy" in
  let c, tracer, _ = traced_run ~capacity:(1 lsl 16) w [] in
  let vcd = Ex.vcd c tracer in
  List.iter
    (fun needle ->
      Alcotest.(check bool)
        ("vcd contains " ^ needle)
        true
        (count_substring vcd needle > 0))
    [ "$timescale"; "$enddefinitions"; "#0"; "$var wire 1" ];
  Alcotest.(check int)
    "balanced scopes"
    (count_substring vcd "$scope module")
    (count_substring vcd "$upscope")

let test_critical_path () =
  List.iter
    (fun name ->
      let w = W.find name in
      let c, tracer, r = traced_run ~capacity:(1 lsl 18) w [] in
      let prof = P.of_run c ~tracer r.counters in
      match prof.p_crit with
      | None -> Alcotest.failf "%s: no critical path" name
      | Some cr ->
        Alcotest.(check bool)
          (name ^ ": path has firings") true (cr.c_events > 0);
        Alcotest.(check bool)
          (name ^ ": path fits inside the run")
          true
          (cr.c_len >= 0 && cr.c_len <= r.stats.cycles);
        List.iter
          (fun (s : P.crit_step) ->
            if s.cs_count <= 0 || s.cs_lat < 0 || s.cs_wait < 0 then
              Alcotest.failf "%s: bad step for %s n%d" name s.cs_tname
                s.cs_node)
          cr.c_steps)
    [ "gemm"; "saxpy"; "fib" ]

(* The profile must be actionable: the task queue it blames on GEMM
   stops stalling once the loop stack deepens/tiles it. *)
let test_bottleneck_reduction () =
  let w = W.find "gemm" in
  let c0, tr0, r0 = traced_run w [] in
  let p0 = P.of_run c0 ~tracer:tr0 r0.counters in
  let blamed =
    match List.find_opt (fun (s : P.struct_row) -> s.s_stalls > 0) p0.p_structs with
    | Some s -> s
    | None -> Alcotest.fail "baseline gemm blames no structure"
  in
  let share0 = P.struct_share p0 blamed.s_name in
  Alcotest.(check bool) "baseline share positive" true (share0 > 0.0);
  let c1, tr1, r1 = traced_run w (Muir_opt.Stacks.loop_stack ()) in
  let p1 = P.of_run c1 ~tracer:tr1 r1.counters in
  let share1 = P.struct_share p1 blamed.s_name in
  if share1 >= share0 then
    Alcotest.failf "loop stack did not reduce %s stall share: %.4f -> %.4f"
      blamed.s_name share0 share1

let conservation_cases =
  List.map
    (fun (w : W.t) ->
      Alcotest.test_case w.wname `Quick (test_conservation w))
    W.all

let () =
  Alcotest.run "trace"
    [ ("conservation", conservation_cases);
      ( "machinery",
        [ Alcotest.test_case "ring independence" `Quick
            test_ring_independence;
          Alcotest.test_case "chrome export" `Quick test_chrome_export;
          Alcotest.test_case "hostile names" `Quick test_hostile_names;
          Alcotest.test_case "vcd export" `Quick test_vcd_export;
          Alcotest.test_case "critical path" `Quick test_critical_path;
          Alcotest.test_case "bottleneck reduction" `Quick
            test_bottleneck_reduction ] ) ]
