(* Unit tests for the memory-structure runtime: databox splitting,
   bank mapping, LRU tags, and the next-line prefetcher. *)

open Muir_ir.Types
module G = Muir_core.Graph
module M = Muir_sim.Memsys

(* A circuit shell with one scratchpad and one cache, no tasks. *)
let shell ~spad_width ~spad_banks ~cache_banks () =
  let prog =
    { Muir_ir.Program.globals =
        Muir_ir.Program.layout [ ("a", 64, TFloat, None) ];
      funcs = [] }
  in
  let c =
    { G.cname = "shell"; tasks = []; root = 0; structures = [];
      space_map = []; junction_width = []; prog }
  in
  let sp =
    G.add_structure c ~sname:"sp"
      (G.Scratchpad
         { banks = spad_banks; ports_per_bank = 1; latency = 2;
           width_words = spad_width; wb_buffer = false })
  in
  let l1 =
    G.add_structure c ~sname:"l1"
      (G.Cache
         { banks = cache_banks; line_words = 8; size_words = 1024; ways = 2;
           hit_latency = 2; miss_latency = 100 })
  in
  G.bind_space c 0 l1.sid;
  G.bind_space c 1 sp.sid;
  G.bind_space c 2 l1.sid;
  let mem = Muir_ir.Memory.create prog in
  let ms = M.create c mem in
  (ms, ms.space_of 1, ms.space_of 2)

let access addrs =
  let a = M.make_access ~words:(List.length addrs) ~notify:ignore in
  M.reset_access a ~is_store:false ~now:0;
  List.iter
    (fun w ->
      a.M.a_addrs.(a.M.a_n) <- w;
      a.M.a_n <- a.M.a_n + 1)
    addrs;
  a

(* split fills the access's reused sub-request slots; [a_nsrs] is the
   transaction count *)
let nsplit rt addrs =
  let a = access addrs in
  M.split rt a;
  a.M.a_nsrs

let test_scratchpad_split_width () =
  let _, sp, _ = shell ~spad_width:4 ~spad_banks:2 ~cache_banks:1 () in
  (* a 2x2 tile = 4 words: one wide access *)
  Alcotest.(check int) "wide scratchpad: one transaction" 1
    (nsplit sp [ 0; 1; 8; 9 ]);
  (* width 1 would need 4 *)
  let _, sp1, _ = shell ~spad_width:1 ~spad_banks:2 ~cache_banks:1 () in
  Alcotest.(check int) "narrow scratchpad: four transactions" 4
    (nsplit sp1 [ 0; 1; 8; 9 ])

let test_cache_split_coalesces_lines () =
  let _, _, l1 = shell ~spad_width:1 ~spad_banks:1 ~cache_banks:1 () in
  (* words 0,1 share a line; word 9 is on the next line: two requests *)
  Alcotest.(check int) "line coalescing" 2 (nsplit l1 [ 0; 1; 9 ])

let test_bank_mapping () =
  let _, _, l1 = shell ~spad_width:1 ~spad_banks:1 ~cache_banks:4 () in
  let bank rt addr =
    let a = access [ addr ] in
    M.split rt a;
    M.bank_of rt a.M.a_srs.(0)
  in
  (* line-interleaved: consecutive lines hit consecutive banks *)
  Alcotest.(check int) "line 0 -> bank 0" 0 (bank l1 0);
  Alcotest.(check int) "line 1 -> bank 1" 1 (bank l1 8);
  Alcotest.(check int) "line 4 wraps to bank 0" 0 (bank l1 32);
  let _, sp, _ = shell ~spad_width:1 ~spad_banks:2 ~cache_banks:1 () in
  (* word-interleaved scratchpad *)
  Alcotest.(check int) "word 0 -> bank 0" 0 (bank sp 0);
  Alcotest.(check int) "word 1 -> bank 1" 1 (bank sp 1)

let test_cache_lru_and_prefetch () =
  let ts = M.make_tagstore ~sets:2 ~ways:2 ~nbanks:1 in
  let look addr = M.cache_lookup ts ~nbanks:1 ~line_words:8 addr in
  Alcotest.(check bool) "cold miss" false (look 0);
  Alcotest.(check bool) "hit after fill" true (look 0);
  (* set 0 holds lines {0,2,4,...}: insert two more, evicting LRU *)
  Alcotest.(check bool) "line 2 cold" false (look 16);
  Alcotest.(check bool) "line 4 cold, evicts line 0" false (look 32);
  Alcotest.(check bool) "line 0 was evicted" false (look 0);
  (* explicit prefetch insertion *)
  M.insert_line ts ~nbanks:1 7;
  Alcotest.(check bool) "prefetched line hits" true (look (7 * 8))

let test_end_to_end_prefetch_counts () =
  (* through the simulator: unit-stride scan should mostly prefetch *)
  let p =
    Muir_frontend.Frontend.compile
      {|
global float A[128]; global float O[1];
func void main() {
  float s = 0.0;
  for (int i = 0; i < 128; i = i + 1) { s = s + A[i]; }
  O[0] = s;
}|}
  in
  let c = Muir_core.Build.circuit p in
  let r = Muir_sim.Sim.run c in
  let l1 =
    List.find (fun (s : M.struct_stats) -> s.ss_name = "l1") r.stats.mem
  in
  (* 17 cold lines (128 floats + padding skew); the prefetcher
     catches roughly every other one *)
  Alcotest.(check bool)
    (Fmt.str "few misses (got %d)" l1.ss_misses)
    true
    (l1.ss_misses <= 10 && l1.ss_misses >= 1)

let prop_split_preserves_words =
  QCheck.Test.make ~count:50 ~name:"splitting preserves the word set"
    QCheck.(list_of_size (QCheck.Gen.int_range 1 12) (int_range 0 63))
    (fun addrs ->
      let addrs = List.sort_uniq compare addrs in
      let _, sp, l1 = shell ~spad_width:3 ~spad_banks:2 ~cache_banks:2 () in
      let words rt =
        let a = access addrs in
        M.split rt a;
        let ws = ref [] in
        for j = a.M.a_nsrs - 1 downto 0 do
          let sr = a.M.a_srs.(j) in
          for i = sr.M.sr_n - 1 downto 0 do
            ws := sr.M.sr_addrs.(i) :: !ws
          done
        done;
        List.sort compare !ws
      in
      words sp = addrs && words l1 = addrs)

let () =
  Alcotest.run "memsys"
    [ ( "databox",
        [ Alcotest.test_case "scratchpad width" `Quick
            test_scratchpad_split_width;
          Alcotest.test_case "cache line coalescing" `Quick
            test_cache_split_coalesces_lines;
          Alcotest.test_case "bank mapping" `Quick test_bank_mapping ] );
      ( "cache",
        [ Alcotest.test_case "lru + prefetch" `Quick
            test_cache_lru_and_prefetch;
          Alcotest.test_case "end-to-end prefetch" `Quick
            test_end_to_end_prefetch_counts ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest prop_split_preserves_words ] ) ]
