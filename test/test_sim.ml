(* Simulator conformance tests: every circuit must reproduce the
   golden interpreter's memory and return value, cycle counts must be
   sane, and the memory system must keep its accounting straight. *)

open Sim_harness

let test_saxpy () =
  let r =
    check_against_golden "saxpy" ~globals:[ "Y" ]
      ~inits:[ ("X", farr (List.init 8 float_of_int)) ]
      {|
global float X[8]; global float Y[8];
func void main() {
  for (int i = 0; i < 8; i = i + 1) { Y[i] = 2.5 * X[i] + Y[i]; }
}|}
  in
  Alcotest.(check bool) "ran some cycles" true (r.stats.cycles > 10)

let test_gemm () =
  ignore
    (check_against_golden "gemm" ~globals:[ "C" ]
       ~inits:
         [ ("A", farr (List.init 16 (fun i -> float_of_int (i mod 5))));
           ("B", farr (List.init 16 (fun i -> float_of_int ((i mod 3) - 1))))
         ]
       {|
global float A[16]; global float B[16]; global float C[16];
func void main() {
  for (int i = 0; i < 4; i = i + 1) {
    for (int j = 0; j < 4; j = j + 1) {
      float acc = 0.0;
      for (int k = 0; k < 4; k = k + 1) { acc = acc + A[i*4+k] * B[k*4+j]; }
      C[i*4+j] = acc;
    }
  }
}|})

let test_parallel_for () =
  ignore
    (check_against_golden "parallel saxpy" ~globals:[ "Y" ]
       ~inits:[ ("X", farr (List.init 32 float_of_int)) ]
       {|
global float X[32]; global float Y[32];
func void main() {
  float a = 3.0;
  parallel_for (int i = 0; i < 32; i = i + 1) { Y[i] = a * X[i] + 1.0; }
  sync;
}|})

let test_fib_recursion () =
  let r =
    check_against_golden "fib" ~globals:[]
      {|
func int fib(int n) {
  if (n < 2) { return n; }
  int a = spawn fib(n - 1);
  int b = spawn fib(n - 2);
  sync;
  return a + b;
}
func int main() { int r = fib(12); return r; }|}
  in
  Alcotest.check value_testable "fib(12)" (Muir_ir.Types.vint 144) r.value

let test_mergesort_like () =
  (* recursive spawn + a called merge loop: the dynamic-task path *)
  ignore
    (check_against_golden "msort" ~globals:[ "A" ]
       ~inits:
         [ ("A", farr [ 7.; 3.; 9.; 1.; 5.; 2.; 8.; 6. ]) ]
       {|
global float A[8];
global float TMP[8];
func void merge(int lo, int mid, int hi) {
  int i = lo; int j = mid; int k = lo;
  while (k < hi) {
    bool takei = j >= hi || (i < mid && A[i] <= A[j]);
    if (takei) { TMP[k] = A[i]; i = i + 1; }
    else       { TMP[k] = A[j]; j = j + 1; }
    k = k + 1;
  }
  for (int t = lo; t < hi; t = t + 1) { A[t] = TMP[t]; }
}
func void msort(int lo, int hi) {
  if (hi - lo < 2) { return; }
  int mid = (lo + hi) / 2;
  spawn msort(lo, mid);
  spawn msort(mid, hi);
  sync;
  merge(lo, mid, hi);
}
func void main() { msort(0, 8); }|})

let test_predication () =
  ignore
    (check_against_golden "predication" ~globals:[ "O" ]
       {|
global int O[16];
func void main() {
  for (int i = 0; i < 16; i = i + 1) {
    int v = 0;
    if (i % 3 == 0) { v = i * 2; }
    else { if (i % 3 == 1) { v = i + 50; } else { v = 7; } }
    O[i] = v;
  }
}|})

let test_tensor_ops () =
  ignore
    (check_against_golden "tiles" ~globals:[ "C" ]
       ~inits:
         [ ("A", farr (List.init 16 (fun i -> float_of_int (i + 1))));
           ("B", farr (List.init 16 (fun i -> float_of_int ((i mod 4) + 1))))
         ]
       {|
global float A[16]; global float B[16]; global float C[16];
func void main() {
  for (int ti = 0; ti < 2; ti = ti + 1) {
    for (int tj = 0; tj < 2; tj = tj + 1) {
      tile acc = tmul(tload(A, ti*8, 4), tload(B, tj*2, 4));
      tile acc2 = tadd(acc, tmul(tload(A, ti*8+2, 4), tload(B, tj*2+8, 4)));
      tstore(C, ti*8+tj*2, 4, acc2);
    }
  }
}|})

let test_memory_carried_dependence () =
  (* O[0] accumulates across iterations through memory: the ordering
     chain must serialize it. *)
  ignore
    (check_against_golden "memory accumulation" ~globals:[ "O" ]
       ~inits:[ ("X", farr [ 1.; 2.; 3.; 4.; 5. ]) ]
       {|
global float X[5]; global float O[1];
func void main() {
  O[0] = 0.0;
  for (int i = 0; i < 5; i = i + 1) { O[0] = O[0] + X[i]; }
}|})

let test_indirection () =
  ignore
    (check_against_golden "spmv" ~globals:[ "Y" ]
       ~inits:
         [ ("ROWPTR", iarr [ 0; 2; 4; 6; 8 ]);
           ("COLS", iarr [ 0; 1; 1; 2; 2; 3; 0; 3 ]);
           ("VALS", farr [ 1.; 2.; 3.; 4.; 5.; 6.; 7.; 8. ]);
           ("X", farr [ 1.; 2.; 3.; 4. ]) ]
       {|
global int ROWPTR[5]; global int COLS[8]; global float VALS[8];
global float X[4]; global float Y[4];
func void main() {
  for (int r = 0; r < 4; r = r + 1) {
    float acc = 0.0;
    for (int k = ROWPTR[r]; k < ROWPTR[r+1]; k = k + 1) {
      acc = acc + VALS[k] * X[COLS[k]];
    }
    Y[r] = acc;
  }
}|})

let test_cache_stats () =
  let p =
    program
      ~inits:[ ("X", farr (List.init 64 float_of_int)) ]
      {|
global float X[64]; global float Y[64];
func void main() {
  for (int i = 0; i < 64; i = i + 1) { Y[i] = X[i] + 1.0; }
}|}
  in
  let r = simulate p in
  let l1 =
    List.find (fun (s : Muir_sim.Memsys.struct_stats) -> s.ss_name = "l1")
      r.stats.mem
  in
  (* 64 loads + 64 stores; 8-word lines: 16 cold lines, at most half
     of which miss thanks to the next-line prefetcher. *)
  Alcotest.(check int) "accesses" 128 l1.ss_accesses;
  Alcotest.(check bool) "some cold misses" true (l1.ss_misses > 0);
  Alcotest.(check bool) "prefetch hides most cold lines" true
    (l1.ss_misses <= 8);
  Alcotest.(check int) "hits + misses = accesses" 128
    (l1.ss_hits + l1.ss_misses)

let test_deadlock_detection () =
  (* An empty-capacity circuit can't run; instead test the cycle cap on
     a long loop. *)
  let p =
    program
      {|
func int main() {
  int s = 0;
  for (int i = 0; i < 100000; i = i + 1) { s = s + i; }
  return s;
}|}
  in
  match simulate ~max_cycles:500 p with
  | exception Muir_sim.Sim.Cycle_limit _ -> ()
  | _ -> Alcotest.fail "expected Cycle_limit"

let test_dma_accounting () =
  let p =
    program ~inits:[ ("X", farr (List.init 64 float_of_int)) ]
      {|
global float X[64]; global float Y[64];
func void main() {
  for (int i = 0; i < 64; i = i + 1) { Y[i] = X[i] * 2.0; }
}|}
  in
  let r =
    simulate ~passes:[ Muir_opt.Structural.localization_pass () ] p
  in
  (* 128 scratchpad words at 8 words/cycle *)
  Alcotest.(check int) "dma cycles" 16 r.stats.dma_cycles;
  Alcotest.(check int) "total = cycles + dma" r.stats.total_cycles
    (r.stats.cycles + r.stats.dma_cycles)

(* Kernel equivalence: the event-driven kernel must be bit-for-bit
   cycle-accurate against the dense-sweep seed kernel.  The constants
   below are total_cycles/fires recorded from the seed on every
   bundled workload; any wake-discipline bug that lets a node fire a
   cycle early/late, or reorders firings within a cycle, shifts these
   numbers.  Functional outputs are checked against the golden
   interpreter in the same run. *)

module W = Muir_workloads.Workloads

let seed_golden =
  [ ("gemm", 46136, 104811);
    ("covar", 14927, 31120);
    ("fft", 12952, 19131);
    ("fft-buf", 7752, 14886);
    ("spmv", 7017, 8591);
    ("2mm", 42274, 91557);
    ("3mm", 37678, 81691);
    ("fib", 15144, 27626);
    ("msort", 8479, 27894);
    ("saxpy", 8276, 8205);
    ("stencil", 36765, 89333);
    ("img-scale", 13819, 34117);
    ("conv", 36756, 84599);
    ("dense8", 12815, 28699);
    ("dense16", 24583, 57179);
    ("softm8", 6328, 8976);
    ("softm16", 11558, 16912);
    ("relu[T]", 2105, 1451);
    ("2mm[T]", 3906, 4485);
    ("conv[T]", 4064, 4875);
    ("rgb2yuv", 3300, 4390);
    ("conv1d", 11498, 21013);
    ("mlp", 8904, 10366);
    ("lenet", 219204, 640108) ]

let test_kernel_equivalence (w : W.t) () =
  let p = W.program w in
  let _, gold, _ = Muir_ir.Interp.run p in
  let c = Muir_core.Build.circuit ~name:w.wname p in
  let r = Muir_sim.Sim.run c in
  (match
     List.find_opt (fun (n, _, _) -> n = w.wname) seed_golden
   with
  | Some (_, cycles, fires) ->
    Alcotest.(check int)
      (w.wname ^ ": total_cycles == seed kernel")
      cycles r.stats.total_cycles;
    Alcotest.(check int) (w.wname ^ ": fires == seed kernel") fires
      r.stats.fires
  | None ->
    Alcotest.failf
      "workload %s has no recorded seed-kernel golden numbers — run it \
       through the kernel and add (name, total_cycles, fires) to \
       seed_golden"
      w.wname);
  List.iter
    (fun g ->
      let a = Muir_ir.Memory.dump_global gold p g in
      let b = Muir_ir.Memory.dump_global r.memory p g in
      Array.iteri
        (fun i x ->
          if not (Muir_ir.Types.value_close x b.(i)) then
            Alcotest.failf "%s: %s[%d] golden=%s sim=%s" w.wname g i
              (Muir_ir.Types.value_to_string x)
              (Muir_ir.Types.value_to_string b.(i)))
        a)
    w.outputs;
  (* Determinism and tracing-neutrality in one shot: a second run of
     the same circuit build — this time with the tracer attached —
     must land on exactly the same cycle and fire counts.  Tracing is
     strictly passive, and the worklists have no hidden
     hash/iteration-order dependence. *)
  let c2 = Muir_core.Build.circuit ~name:w.wname p in
  let tracer = Muir_trace.Trace.create () in
  let r2 = Muir_sim.Sim.run ~tracer c2 in
  Alcotest.(check int)
    (w.wname ^ ": deterministic across runs (traced)")
    r.stats.total_cycles r2.stats.total_cycles;
  Alcotest.(check int)
    (w.wname ^ ": fires unchanged by tracing")
    r.stats.fires r2.stats.fires

let equivalence_cases =
  List.map
    (fun (w : W.t) ->
      Alcotest.test_case w.wname `Quick (test_kernel_equivalence w))
    W.all

(* Properties *)

let prop_sim_matches_interp_random_saxpy =
  QCheck.Test.make ~count:15 ~name:"sim == interp on random saxpy sizes"
    QCheck.(int_range 1 40)
    (fun n ->
      let src =
        Fmt.str
          {|
global float X[%d]; global float Y[%d];
func void main() {
  for (int i = 0; i < %d; i = i + 1) { Y[i] = 2.0 * X[i] + Y[i]; }
}|}
          n n n
      in
      let p =
        program
          ~inits:[ ("X", farr (List.init n (fun i -> float_of_int i *. 0.5))) ]
          src
      in
      let _, gold, _ = golden p in
      let r = simulate p in
      let a = Muir_ir.Memory.dump_global gold p "Y" in
      let b = Muir_ir.Memory.dump_global r.memory p "Y" in
      Array.for_all2 Muir_ir.Types.value_close a b)

let prop_fib_matches =
  QCheck.Test.make ~count:8 ~name:"sim fib == closed form"
    QCheck.(int_range 0 12)
    (fun n ->
      let src =
        Fmt.str
          {|
func int fib(int n) {
  if (n < 2) { return n; }
  int a = spawn fib(n - 1);
  int b = spawn fib(n - 2);
  sync;
  return a + b;
}
func int main() { int r = fib(%d); return r; }|}
          n
      in
      let rec fib n = if n < 2 then n else fib (n - 1) + fib (n - 2) in
      let r = simulate (program src) in
      Muir_ir.Types.value_close r.value (Muir_ir.Types.vint (fib n)))

let () =
  Alcotest.run "sim"
    [ ( "conformance",
        [ Alcotest.test_case "saxpy" `Quick test_saxpy;
          Alcotest.test_case "gemm" `Quick test_gemm;
          Alcotest.test_case "parallel_for" `Quick test_parallel_for;
          Alcotest.test_case "fib recursion" `Quick test_fib_recursion;
          Alcotest.test_case "mergesort" `Quick test_mergesort_like;
          Alcotest.test_case "predication" `Quick test_predication;
          Alcotest.test_case "tensor ops" `Quick test_tensor_ops;
          Alcotest.test_case "memory-carried dep" `Quick
            test_memory_carried_dependence;
          Alcotest.test_case "indirection" `Quick test_indirection ] );
      ( "machinery",
        [ Alcotest.test_case "cache stats" `Quick test_cache_stats;
          Alcotest.test_case "cycle limit" `Quick test_deadlock_detection;
          Alcotest.test_case "dma accounting" `Quick test_dma_accounting ] );
      ("kernel-equivalence", equivalence_cases);
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_sim_matches_interp_random_saxpy; prop_fib_matches ] ) ]
