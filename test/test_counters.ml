(* The always-on counter bank's contract.

   The counters are the source of truth for every aggregate number in
   the repository — profiles, run reports, the bench regression gate —
   so they carry the strongest invariants we have:

   1. Conservation: busy + Σ stall-cause cycles = lifetime cycles for
      every (task, node) of every workload under every registry stack,
      with no tracer attached at all.

   2. Ring independence: the bank is identical whether the run was
      untraced, traced into a capacity-0 ring, or traced into a tiny
      ring that overwrote almost everything.  Tracing is passive; the
      counters never depend on retained history.

   3. No overflow/degeneracy on long runs: a heavily unrolled workload
      under the biggest stack keeps every accumulator non-negative and
      conserved, and the derived floating-point stats stay finite.

   4. The regression gate built on the reports actually gates: a +10%
      injected cycle count is flagged at 5% tolerance, and a
      self-comparison never is. *)

module W = Muir_workloads.Workloads
module G = Muir_core.Graph
module Ctr = Muir_trace.Counters
module P = Muir_trace.Profile
module Report = Muir_trace.Report
module Sim = Muir_sim.Sim

let stacks () : (string * Muir_opt.Pass.t list) list =
  List.map
    (fun name ->
      match Muir_opt.Stacks.find_spec name with
      | Some sp -> (name, sp.sp_build sp.sp_defaults)
      | None -> Alcotest.failf "registry lost stack %s" name)
    (Muir_opt.Stacks.names ())

let run ?tracer ?(unroll = false) (w : W.t)
    (passes : Muir_opt.Pass.t list) : G.circuit * Sim.result =
  let p = W.program w in
  if unroll then ignore (Muir_ir.Unroll.unroll ~max_trip:16 p);
  let c = Muir_core.Build.circuit ~name:w.wname p in
  ignore (Muir_opt.Pass.run_all passes c);
  (c, Sim.run ?tracer c)

let check_conserved ~(ctx : string) (c : G.circuit) (r : Sim.result) =
  let prof = P.of_run c r.counters in
  Alcotest.(check bool) (ctx ^ ": profile has rows") true (prof.p_rows <> []);
  List.iter
    (fun (row : P.row) ->
      if not (P.conserved row) then
        Alcotest.failf "%s: node %s n%d violates conservation: Σ=%d span=%d"
          ctx row.r_tname row.r_node
          (Array.fold_left ( + ) 0 row.r_acc)
          row.r_span)
    prof.p_rows;
  Alcotest.(check int)
    (ctx ^ ": counter fires == kernel fires")
    r.stats.fires
    (Ctr.total_fires r.counters);
  Alcotest.(check int)
    (ctx ^ ": final_cycle == simulated cycles")
    r.stats.cycles r.counters.Ctr.final_cycle

(* 1. Conservation with no tracer, per workload, under every registry
   stack. *)
let test_conservation (w : W.t) () =
  List.iter
    (fun (sname, passes) ->
      let c, r = run w passes in
      check_conserved ~ctx:(w.wname ^ "/" ^ sname) c r)
    (stacks ())

(* 2. The bank must not depend on the ring: untraced, capacity-0 and
   a 16-slot ring that sheds nearly everything all agree exactly. *)
let same_bank ~(ctx : string) (a : Ctr.t) (b : Ctr.t) =
  Alcotest.(check int) (ctx ^ ": spawns") a.Ctr.spawns b.Ctr.spawns;
  Alcotest.(check int) (ctx ^ ": syncs") a.Ctr.syncs b.Ctr.syncs;
  Alcotest.(check int)
    (ctx ^ ": final cycle")
    a.Ctr.final_cycle b.Ctr.final_cycle;
  Ctr.iter_nodes
    (fun ~task ~node (ga : Ctr.node_ctr) ->
      match Ctr.find_node b ~task ~node with
      | None -> Alcotest.failf "%s: (%d, n%d) missing" ctx task node
      | Some gb ->
        Alcotest.(check int)
          (Fmt.str "%s: fires of (%d, n%d)" ctx task node)
          ga.Ctr.n_fires gb.Ctr.n_fires;
        Alcotest.(check int)
          (Fmt.str "%s: span of (%d, n%d)" ctx task node)
          ga.Ctr.n_span gb.Ctr.n_span;
        Alcotest.(check (array int))
          (Fmt.str "%s: causes of (%d, n%d)" ctx task node)
          ga.Ctr.n_acc gb.Ctr.n_acc)
    a;
  List.iter
    (fun k ->
      let oa = Option.get (Ctr.find_occ a k) in
      match Ctr.find_occ b k with
      | None -> Alcotest.failf "%s: occupancy key missing" ctx
      | Some ob ->
        Alcotest.(check (list int))
          (ctx ^ ": occupancy integral")
          [ oa.Ctr.o_cycles; oa.Ctr.o_sum; oa.Ctr.o_max ]
          [ ob.Ctr.o_cycles; ob.Ctr.o_sum; ob.Ctr.o_max ])
    (Ctr.occ_keys a)

let test_ring_independence (w : W.t) () =
  let _, r_off = run w [] in
  let _, r_zero = run ~tracer:(Muir_trace.Trace.create ~capacity:0 ()) w [] in
  let c, r_tiny = run ~tracer:(Muir_trace.Trace.create ~capacity:16 ()) w [] in
  same_bank ~ctx:(w.wname ^ " untraced vs cap-0") r_off.counters
    r_zero.counters;
  same_bank ~ctx:(w.wname ^ " untraced vs cap-16") r_off.counters
    r_tiny.counters;
  check_conserved ~ctx:(w.wname ^ "/cap-0") c r_zero;
  (* Cross-check against the trace-derived totals: in a ring big
     enough to lose nothing, the fire events are exactly the bank's
     fire count. *)
  let big = Muir_trace.Trace.create ~capacity:(1 lsl 22) () in
  let _, r_big = run ~tracer:big w [] in
  Alcotest.(check int)
    (w.wname ^ ": lossless ring")
    (Muir_trace.Trace.total_events big)
    (Muir_trace.Trace.retained_events big);
  let ring_fires =
    List.length
      (List.filter
         (function Muir_trace.Trace.Efire _ -> true | _ -> false)
         (Muir_trace.Trace.events big))
  in
  Alcotest.(check int)
    (w.wname ^ ": ring fires == counter fires")
    (Ctr.total_fires r_big.counters)
    ring_fires

(* 3. Long unrolled run: everything stays non-negative, conserved and
   finite. *)
let test_long_run () =
  let w = W.find "gemm" in
  let c, r =
    run ~unroll:true w (Muir_opt.Stacks.best_loop_stack ())
  in
  check_conserved ~ctx:"gemm unrolled/best" c r;
  Ctr.iter_nodes
    (fun ~task ~node (g : Ctr.node_ctr) ->
      if g.Ctr.n_fires < 0 || g.Ctr.n_span < 0
         || Array.exists (fun v -> v < 0) g.Ctr.n_acc then
        Alcotest.failf "negative accumulator on (%d, n%d)" task node)
    r.counters;
  Alcotest.(check bool)
    "a long run actually accumulated" true
    (Ctr.total_fires r.counters > 1000)

(* Occupancy integrals: every key is sampled once per cycle, so all
   integrals cover the same number of cycles and the mean cannot
   exceed the high-water mark. *)
let test_occupancy_integrals () =
  let w = W.find "gemm" in
  let _, r = run w [] in
  let keys = Ctr.occ_keys r.counters in
  Alcotest.(check bool) "has occupancy keys" true (keys <> []);
  let cycles =
    (Option.get (Ctr.find_occ r.counters (List.hd keys))).Ctr.o_cycles
  in
  List.iter
    (fun k ->
      let o = Option.get (Ctr.find_occ r.counters k) in
      Alcotest.(check int) "all keys sampled alike" cycles o.Ctr.o_cycles;
      Alcotest.(check bool)
        "mean <= max" true
        (Ctr.occ_mean o <= float_of_int o.Ctr.o_max))
    keys

(* Task-parallel workloads must show up in the spawn/sync counters. *)
let test_spawn_sync () =
  let w = W.find "fib" in
  let _, r = run w [] in
  Alcotest.(check bool) "fib spawns" true (r.counters.Ctr.spawns > 0);
  Alcotest.(check bool) "fib syncs" true (r.counters.Ctr.syncs > 0);
  (* fib(n) recursion spawns many children; every join completes. *)
  Alcotest.(check bool)
    "fib spawns >= syncs" true
    (r.counters.Ctr.spawns >= r.counters.Ctr.syncs)

(* Derived stats are guarded against degenerate runs: never nan/inf. *)
let test_finite_stats () =
  List.iter
    (fun (w : W.t) ->
      let _, r = run w [] in
      let s = r.Sim.stats in
      List.iter
        (fun (name, v) ->
          if not (Float.is_finite v) then
            Alcotest.failf "%s: %s is %f" w.wname name v)
        [ ("cycles_per_sec", s.cycles_per_sec);
          ("woken_per_cycle", s.woken_per_cycle);
          ("live_nodes_per_cycle", s.live_nodes_per_cycle) ])
    W.all

(* ------------------------------------------------------------------ *)
(* 4. Run reports and the regression gate                               *)

let report_of (w : W.t) ~stack passes : Report.run =
  let c, r = run w passes in
  Report.make ~workload:w.wname ~stack
    ~total_cycles:r.Sim.stats.total_cycles c r.counters

let suite runs = { Report.su_provenance = Report.provenance (); su_runs = runs }

let test_report_roundtrip () =
  let rep = report_of (W.find "gemm") ~stack:"baseline" [] in
  let parsed = Report.parse (Report.to_json rep) in
  (match parsed.su_runs with
  | [ r ] ->
    Alcotest.(check string) "workload survives" rep.r_workload r.r_workload;
    Alcotest.(check int) "cycles survive" rep.r_cycles r.r_cycles;
    Alcotest.(check int) "fires survive" rep.r_fires r.r_fires;
    Alcotest.(check int)
      "node rows survive"
      (List.length rep.r_nodes)
      (List.length r.r_nodes);
    let causes (x : Report.run) =
      List.concat_map (fun (n : Report.node_row) -> n.nd_causes) x.r_nodes
    in
    Alcotest.(check (list (pair string int)))
      "per-cause cycles survive" (causes rep) (causes r)
  | rs -> Alcotest.failf "expected 1 run, got %d" (List.length rs));
  (* Determinism: emitting the same run twice is byte-identical. *)
  Alcotest.(check string)
    "byte-stable emission" (Report.to_json rep) (Report.to_json rep);
  (* A report claiming a future schema must be refused. *)
  let future =
    Printf.sprintf
      "{\"provenance\":{\"schema\":%d,\"git_rev\":\"x\",\"dune_profile\":\"dev\"},\"runs\":[]}"
      (Report.schema_version + 1)
  in
  match Report.parse future with
  | exception Report.Bad_report _ -> ()
  | _ -> Alcotest.fail "accepted a newer schema"

let test_regression_gate () =
  let base =
    suite
      [ report_of (W.find "saxpy") ~stack:"baseline" [];
        report_of (W.find "fib") ~stack:"baseline" [] ]
  in
  (* Self-comparison: always clean. *)
  let self = Report.compare_suites ~tolerance:5.0 base base in
  Alcotest.(check bool) "self compare ok" false (Report.any_regression self);
  Alcotest.(check int)
    "all runs matched" (List.length base.su_runs)
    (List.length self.cmp_verdicts);
  (* +10% injected cycles: flagged at 5%, tolerated at 15%. *)
  let slower =
    suite
      (List.map
         (fun (r : Report.run) ->
           { r with Report.r_cycles = r.r_cycles + (r.r_cycles / 10) + 1 })
         base.su_runs)
  in
  let flagged = Report.compare_suites ~tolerance:5.0 base slower in
  Alcotest.(check bool)
    "+10%% flagged at 5%% tolerance" true
    (Report.any_regression flagged);
  let tolerated = Report.compare_suites ~tolerance:15.0 base slower in
  Alcotest.(check bool)
    "+10%% tolerated at 15%% tolerance" false
    (Report.any_regression tolerated);
  (* One-sided runs are reported, never failed. *)
  let partial = suite [ List.hd base.su_runs ] in
  let onesided = Report.compare_suites ~tolerance:5.0 base partial in
  Alcotest.(check bool)
    "missing run is not a regression" false
    (Report.any_regression onesided);
  Alcotest.(check int) "missing run reported" 1
    (List.length onesided.cmp_only_base)

let conservation_cases =
  List.map
    (fun (w : W.t) ->
      Alcotest.test_case w.wname `Quick (test_conservation w))
    W.all

let ring_cases =
  List.map
    (fun name ->
      let w = W.find name in
      Alcotest.test_case name `Quick (test_ring_independence w))
    [ "gemm"; "saxpy"; "fib"; "2mm[T]" ]

let () =
  Alcotest.run "counters"
    [ ("conservation", conservation_cases);
      ("ring independence", ring_cases);
      ( "bank",
        [ Alcotest.test_case "long unrolled run" `Quick test_long_run;
          Alcotest.test_case "occupancy integrals" `Quick
            test_occupancy_integrals;
          Alcotest.test_case "spawn/sync counters" `Quick test_spawn_sync;
          Alcotest.test_case "finite derived stats" `Quick test_finite_stats ]
      );
      ( "reports",
        [ Alcotest.test_case "json round-trip" `Quick test_report_roundtrip;
          Alcotest.test_case "regression gate" `Quick test_regression_gate ]
      ) ]
