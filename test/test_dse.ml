(* Tests for the design-space explorer: content-keyed configuration
   dedup, job-count-independent determinism, memo-cache reuse,
   analytical pruning soundness, Pareto-frontier minimality, and the
   profiler-guided greedy search. *)

module Dse = Muir_dse.Explore
module Config = Muir_dse.Config
module Cache = Muir_dse.Cache
module Stacks = Muir_opt.Stacks

let saxpy_src =
  {|
global float X[16]; global float Y[16];
func void main() {
  parallel_for (int i = 0; i < 16; i = i + 1) { Y[i] = 2.5 * X[i] + Y[i]; }
  sync;
}|}

let subject () = Dse.source_subject ~name:"saxpy16" saxpy_src

(* A small grid that still exercises stacks, both knobs and a pass
   toggle — cheap enough to sweep several times per test binary. *)
let small_grid () =
  [ Config.v "baseline";
    Config.v ~banks:1 "loop-stack";
    Config.v ~banks:2 "loop-stack";
    Config.v ~banks:2 ~off:[ "op-fusion" ] "loop-stack";
    Config.v ~tiles:1 ~banks:1 "cilk-stack";
    Config.v ~tiles:2 ~banks:1 "cilk-stack";
    Config.v ~tiles:2 ~banks:2 "cilk-stack" ]

let render (t : Dse.t) : string = Fmt.str "%a" Dse.pp_result t

(* --- registry ------------------------------------------------------- *)

let test_registry () =
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " registered") true
        (Stacks.find_spec name <> None))
    [ "baseline"; "loop-stack"; "cilk-stack"; "tensor-stack"; "best" ];
  Alcotest.(check bool) "unknown stack rejected" true
    (Stacks.find_spec "no-such-stack" = None);
  (* the registry's defaults rebuild exactly the hand-written stacks *)
  let pnames ps = List.map (fun (p : Muir_opt.Pass.t) -> p.pname) ps in
  let check_same name built =
    let spec = Option.get (Stacks.find_spec name) in
    Alcotest.(check (list string))
      (name ^ " = hand-written stack")
      (pnames built)
      (pnames (spec.sp_build spec.sp_defaults))
  in
  check_same "loop-stack" (Stacks.loop_stack ());
  check_same "cilk-stack" (Stacks.cilk_stack ());
  check_same "tensor-stack" (Stacks.tensor_stack ());
  check_same "best" (Stacks.best_loop_stack ())

(* --- content keys --------------------------------------------------- *)

let test_keys_dedup_unused_knobs () =
  (* loop-stack never reads tiles: every tiles value is one config *)
  Alcotest.(check string) "loop-stack ignores tiles"
    (Config.key (Config.v ~tiles:2 ~banks:2 "loop-stack"))
    (Config.key (Config.v ~tiles:8 ~banks:2 "loop-stack"));
  (* ...but the banks knob it does read separates keys *)
  Alcotest.(check bool) "banks distinguishes loop-stack" true
    (Config.key (Config.v ~banks:1 "loop-stack")
    <> Config.key (Config.v ~banks:2 "loop-stack"));
  (* cilk-stack reads tiles, so tiles separates keys *)
  Alcotest.(check bool) "tiles distinguishes cilk-stack" true
    (Config.key (Config.v ~tiles:2 "cilk-stack")
    <> Config.key (Config.v ~tiles:4 "cilk-stack"));
  (* switching off a pass the stack doesn't contain changes nothing *)
  Alcotest.(check string) "irrelevant off entry collapses"
    (Config.key (Config.v "tensor-stack"))
    (Config.key (Config.v ~off:[ "execution-tiling" ] "tensor-stack"));
  (* switching off a member pass makes a new key *)
  Alcotest.(check bool) "op-fusion off is a distinct config" true
    (Config.key (Config.v ~banks:2 "loop-stack")
    <> Config.key (Config.v ~banks:2 ~off:[ "op-fusion" ] "loop-stack"))

(* --- determinism across --jobs -------------------------------------- *)

let test_jobs_determinism () =
  let run jobs =
    Dse.run ~jobs ~grid:(small_grid ()) (subject ())
  in
  let a = run 1 and b = run 4 in
  Alcotest.(check string) "frontier output byte-identical (1 vs 4 jobs)"
    (render a) (render b);
  Alcotest.(check string) "JSON identical (1 vs 4 jobs)" (Dse.to_json a)
    (Dse.to_json b);
  Alcotest.(check int) "same number of evaluations"
    (List.length a.x_evals)
    (List.length b.x_evals)

(* --- memo cache ----------------------------------------------------- *)

let test_cache_no_resimulation () =
  let cache = Cache.create () in
  let run () = Dse.run ~cache ~grid:(small_grid ()) (subject ()) in
  let first = run () in
  Alcotest.(check bool) "first run simulates" true (first.x_fresh_sims > 0);
  let second = run () in
  Alcotest.(check int) "second run: zero fresh simulations" 0
    second.x_fresh_sims;
  Alcotest.(check int) "second run: zero fresh evaluations" 0
    second.x_fresh_evals;
  Alcotest.(check bool) "second run answered from cache" true
    (second.x_cache_hits = List.length (small_grid ()));
  (* the header line differs (simulated vs from-cache counts); the
     frontier itself must not *)
  let keys t = List.map (fun e -> e.Dse.e_key) t.Dse.x_frontier in
  Alcotest.(check (list string)) "same frontier either way" (keys first)
    (keys second);
  Alcotest.(check string) "same best either way"
    (Option.get first.x_best).e_key
    (Option.get second.x_best).e_key

let test_cache_overlap_within_run () =
  (* two configs differing only in an unused knob cost one simulation *)
  let cache = Cache.create () in
  let grid =
    [ Config.v ~tiles:2 ~banks:2 "loop-stack";
      Config.v ~tiles:8 ~banks:2 "loop-stack" ]
  in
  let t = Dse.run ~cache ~grid (subject ()) in
  Alcotest.(check int) "one unique configuration" 1
    (List.length t.x_evals);
  Alcotest.(check int) "one simulation" 1 t.x_fresh_sims

(* --- analytical pruning --------------------------------------------- *)

let test_area_pruning_sound () =
  (* pick a budget between baseline and the widest config *)
  let base = Dse.run ~grid:[ Config.v "baseline" ] (subject ()) in
  let budget = (Option.get base.x_best).e_alms + 1 in
  let t = Dse.run ~area_budget:budget ~grid:(small_grid ()) (subject ()) in
  let prunes = List.filter Dse.pruned t.x_evals in
  Alcotest.(check bool) "something was pruned" true (prunes <> []);
  List.iter
    (fun (e : Dse.eval) ->
      Alcotest.(check bool)
        (Fmt.str "pruned %s exceeds the budget" (Config.label e.e_cfg))
        true
        (e.e_alms > budget))
    prunes;
  List.iter
    (fun (e : Dse.eval) ->
      Alcotest.(check bool) "frontier within budget" true
        (e.e_alms <= budget))
    t.x_frontier;
  Alcotest.(check int) "accounting: sims + pruned = fresh evals"
    t.x_fresh_evals
    (t.x_fresh_sims + t.x_pruned)

(* --- frontier ------------------------------------------------------- *)

let dominates (a : Dse.eval) (b : Dse.eval) =
  match (a.e_cycles, b.e_cycles) with
  | Some ca, Some cb ->
    ca <= cb && a.e_alms <= b.e_alms && (ca < cb || a.e_alms < b.e_alms)
  | _ -> false

let test_frontier_pareto () =
  let t = Dse.run ~grid:(small_grid ()) (subject ()) in
  Alcotest.(check bool) "frontier non-empty" true (t.x_frontier <> []);
  (* no evaluated point strictly dominates a frontier point *)
  List.iter
    (fun f ->
      List.iter
        (fun e ->
          Alcotest.(check bool)
            (Fmt.str "%s not dominated by %s" (Config.label f.Dse.e_cfg)
               (Config.label e.Dse.e_cfg))
            false (dominates e f))
        t.x_evals)
    t.x_frontier;
  (* sorted by cycles ascending, area strictly descending *)
  let rec ordered = function
    | a :: (b :: _ as tl) ->
      Option.get a.Dse.e_cycles <= Option.get b.Dse.e_cycles
      && a.Dse.e_alms > b.Dse.e_alms
      && ordered tl
    | _ -> true
  in
  Alcotest.(check bool) "frontier ordered" true (ordered t.x_frontier);
  (* the best point is on the frontier *)
  let best = Option.get t.x_best in
  Alcotest.(check bool) "best on frontier" true
    (List.exists (fun e -> e.Dse.e_key = best.e_key) t.x_frontier)

(* --- budget --------------------------------------------------------- *)

let test_eval_budget_respected () =
  let t = Dse.run ~budget_evals:3 ~grid:(small_grid ()) (subject ()) in
  Alcotest.(check bool) "at most 3 fresh evaluations" true
    (t.x_fresh_evals <= 3)

(* --- greedy --------------------------------------------------------- *)

let test_greedy_improves_and_is_deterministic () =
  let run jobs =
    Dse.run ~strategy:Dse.Greedy ~jobs ~budget_evals:12 ~seed:7 (subject ())
  in
  let a = run 1 and b = run 4 in
  Alcotest.(check string) "greedy frontier identical across jobs"
    (render a) (render b);
  (* greedy's seeds include the baseline, so best can only improve *)
  let cycles_of key =
    List.find_opt (fun e -> e.Dse.e_key = key) a.x_evals
  in
  let base = Option.get (cycles_of "baseline") in
  let best = Option.get a.x_best in
  Alcotest.(check bool) "greedy best no worse than baseline" true
    (Option.get best.e_cycles <= Option.get base.e_cycles);
  (* traced seeds carry a profiler hint on a stalled workload *)
  Alcotest.(check bool) "greedy made progress past the seeds" true
    (List.length a.x_evals > List.length Stacks.registry)

let () =
  Alcotest.run "dse"
    [ ( "registry",
        [ Alcotest.test_case "registered stacks" `Quick test_registry ] );
      ( "keys",
        [ Alcotest.test_case "content-keyed dedup" `Quick
            test_keys_dedup_unused_knobs ] );
      ( "determinism",
        [ Alcotest.test_case "jobs=1 vs jobs=4" `Quick
            test_jobs_determinism ] );
      ( "cache",
        [ Alcotest.test_case "no re-simulation" `Quick
            test_cache_no_resimulation;
          Alcotest.test_case "overlap within a run" `Quick
            test_cache_overlap_within_run ] );
      ( "pruning",
        [ Alcotest.test_case "area budget" `Quick test_area_pruning_sound ] );
      ( "frontier",
        [ Alcotest.test_case "pareto-minimal" `Quick test_frontier_pareto ] );
      ( "budget",
        [ Alcotest.test_case "eval budget" `Quick
            test_eval_budget_respected ] );
      ( "greedy",
        [ Alcotest.test_case "improves deterministically" `Quick
            test_greedy_improves_and_is_deterministic ] ) ]
