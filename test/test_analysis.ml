(* Tests for Muir_analysis: a corpus of deliberately broken inputs
   that must each trigger its intended diagnostic, clean-run checks
   over every bundled workload and pass stack, and the spawn-result /
   parameter-register checks added to the IR verifier. *)

open Muir_analysis
module G = Muir_core.Graph
module T = Muir_ir.Types
module I = Muir_ir.Instr

let compile = Muir_frontend.Frontend.compile

let contains (s : string) (sub : string) : bool =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let has ~(sev : Diag.severity) ~(code : string) (ds : Diag.t list) =
  List.exists (fun (d : Diag.t) -> d.sev = sev && d.code = code) ds

let pp_all ds = String.concat "; " (List.map (Fmt.str "%a" Diag.pp) ds)

(* ------------------------------------------------------------------ *)
(* Broken corpus 1: zero-token cycle — guaranteed deadlock            *)

let test_deadlock_cycle () =
  let t =
    G.new_task ~tid:0 ~tname:"dead" ~tkind:G.Tfunc ~arg_tys:[ T.TBool ]
      ~res_tys:[ T.TBool ]
  in
  let li = G.add_node t ~ty:T.TBool (G.LiveIn 0) ~nins:0 in
  let a = G.add_node t ~ty:T.i32 (G.Compute (G.Fibin I.Add)) ~nins:2 in
  let b = G.add_node t ~ty:T.i32 (G.Compute G.Fident) ~nins:1 in
  ignore (G.connect t ~src:(li.nid, 0) ~dst:(a.nid, 0));
  ignore (G.connect t ~src:(a.nid, 0) ~dst:(b.nid, 0));
  (* ring a -> b -> a with no initial token anywhere: never starts *)
  ignore (G.connect t ~src:(b.nid, 0) ~dst:(a.nid, 1));
  let ds = Liveness.check_task t in
  Alcotest.(check bool)
    (Fmt.str "deadlock reported (%s)" (pp_all ds))
    true
    (has ~sev:Diag.Error ~code:"deadlock" ds)

(* The same ring with one primed edge is a legal loop and must be
   silent — the false-positive guard for every loop the builder
   emits. *)
let test_primed_ring_clean () =
  let t =
    G.new_task ~tid:0 ~tname:"ring" ~tkind:G.Tfunc ~arg_tys:[ T.TBool ]
      ~res_tys:[ T.TBool ]
  in
  let li = G.add_node t ~ty:T.TBool (G.LiveIn 0) ~nins:0 in
  let a = G.add_node t ~ty:T.i32 (G.Compute (G.Fibin I.Add)) ~nins:2 in
  let b = G.add_node t ~ty:T.i32 (G.Compute G.Fident) ~nins:1 in
  ignore (G.connect t ~src:(li.nid, 0) ~dst:(a.nid, 0));
  ignore (G.connect t ~src:(a.nid, 0) ~dst:(b.nid, 0));
  ignore
    (G.connect t ~src:(b.nid, 0) ~dst:(a.nid, 1) ~initial:[ T.vint 0 ]);
  let ds = Liveness.check_task t in
  Alcotest.(check string) "no diagnostics" "" (pp_all ds)

(* ------------------------------------------------------------------ *)
(* Broken corpus 2: steer with an immediate predicate starves the     *)
(* side a live-out depends on                                         *)

let test_starved_liveout () =
  let t =
    G.new_task ~tid:0 ~tname:"starve" ~tkind:G.Tfunc ~arg_tys:[ T.TBool ]
      ~res_tys:[ T.TBool ]
  in
  let li = G.add_node t ~ty:T.TBool (G.LiveIn 0) ~nins:0 in
  let st = G.add_node t ~ty:T.TBool G.Steer ~nins:2 in
  G.set_imm st 0 (T.VBool false);
  let lo = G.add_node t ~ty:T.TBool (G.LiveOut 0) ~nins:1 in
  ignore (G.connect t ~src:(li.nid, 0) ~dst:(st.nid, 1));
  (* live-out hangs off the true side, but the predicate is always
     false: every token is steered away *)
  ignore (G.connect t ~src:(st.nid, 0) ~dst:(lo.nid, 0));
  let ds = Liveness.check_task t in
  Alcotest.(check bool)
    (Fmt.str "starved live-out is an error (%s)" (pp_all ds))
    true
    (has ~sev:Diag.Error ~code:"starved" ds)

(* ------------------------------------------------------------------ *)
(* Broken corpus 3: reconvergent fan-out with a deep registered path  *)
(* against a capacity-1 shortcut                                      *)

let test_buffer_imbalance () =
  let t =
    G.new_task ~tid:0 ~tname:"imbalance" ~tkind:G.Tfunc
      ~arg_tys:[ T.TBool ] ~res_tys:[ T.TBool ]
  in
  let li = G.add_node t ~ty:T.i32 (G.LiveIn 0) ~nins:0 in
  let chain =
    List.fold_left
      (fun prev _ ->
        let n = G.add_node t ~ty:T.i32 (G.Compute G.Fident) ~nins:1 in
        ignore (G.connect t ~capacity:1 ~src:(prev, 0) ~dst:(n.nid, 0));
        n.nid)
      li.nid [ 1; 2; 3 ]
  in
  let join = G.add_node t ~ty:T.i32 (G.Compute (G.Fibin I.Add)) ~nins:2 in
  ignore (G.connect t ~capacity:1 ~src:(chain, 0) ~dst:(join.nid, 0));
  ignore (G.connect t ~capacity:1 ~src:(li.nid, 0) ~dst:(join.nid, 1));
  let ds = Liveness.check_task t in
  Alcotest.(check bool)
    (Fmt.str "imbalance warned (%s)" (pp_all ds))
    true
    (has ~sev:Diag.Warning ~code:"buffer" ds);
  Alcotest.(check bool) "no errors" false (Diag.has_errors ds)

(* ------------------------------------------------------------------ *)
(* Broken corpus 4: node no token can ever reach                      *)

let test_unreachable_node () =
  let t =
    G.new_task ~tid:0 ~tname:"orphan" ~tkind:G.Tfunc ~arg_tys:[ T.TBool ]
      ~res_tys:[ T.TBool ]
  in
  let li = G.add_node t ~ty:T.TBool (G.LiveIn 0) ~nins:0 in
  let lo = G.add_node t ~ty:T.TBool (G.LiveOut 0) ~nins:1 in
  ignore (G.connect t ~src:(li.nid, 0) ~dst:(lo.nid, 0));
  let orphan = G.add_node t ~ty:T.i32 (G.Compute G.Fident) ~nins:1 in
  ignore orphan;
  let ds = Liveness.check_task t in
  Alcotest.(check bool)
    (Fmt.str "unreachable warned (%s)" (pp_all ds))
    true
    (has ~sev:Diag.Warning ~code:"unreachable" ds);
  Alcotest.(check bool) "no errors" false (Diag.has_errors ds)

(* ------------------------------------------------------------------ *)
(* Broken corpus 5: parallel_for iterations all read-modify-write the *)
(* same cell — a provable race                                        *)

let racy_src =
  {|
global int S[4]; global int X[16];
func void main() {
  parallel_for (int i = 0; i < 16; i = i + 1) {
    S[0] = S[0] + X[i];
  }
  sync;
}
|}

let test_definite_race () =
  let ds = Races.check (compile racy_src) in
  Alcotest.(check bool)
    (Fmt.str "definite race is an error (%s)" (pp_all ds))
    true
    (has ~sev:Diag.Error ~code:"race" ds)

(* Broken corpus 6: indirection the analysis cannot see through — a
   may-race warning, not an error. *)
let indirect_src =
  {|
global int A[16]; global int IDX[16];
func void main() {
  parallel_for (int i = 0; i < 16; i = i + 1) {
    A[IDX[i]] = i;
  }
  sync;
}
|}

let test_maybe_race () =
  let ds = Races.check (compile indirect_src) in
  Alcotest.(check bool)
    (Fmt.str "may-race warned (%s)" (pp_all ds))
    true
    (has ~sev:Diag.Warning ~code:"race" ds);
  Alcotest.(check bool) "not an error" false (Diag.has_errors ds)

(* Independent iterations must stay silent: the affine forms differ
   by the induction variable with coefficient 1. *)
let clean_par_src =
  {|
global float X[16]; global float Y[16];
func void main() {
  parallel_for (int i = 0; i < 16; i = i + 1) { Y[i] = X[i] + 1.0; }
  sync;
}
|}

let test_independent_iterations_clean () =
  let ds = Races.check (compile clean_par_src) in
  Alcotest.(check string) "no race diagnostics" "" (pp_all ds)

(* ------------------------------------------------------------------ *)
(* Spawn-result discipline (verifier)                                 *)

let expect_compile_error ~(substr : string) (src : string) =
  match compile src with
  | exception Invalid_argument m ->
    Alcotest.(check bool)
      (Fmt.str "error mentions %S (got %S)" substr m)
      true (contains m substr)
  | _p -> Alcotest.fail "expected the front-end to reject this program"

let test_spawn_use_before_sync () =
  expect_compile_error ~substr:"spawn result"
    {|
global int OUT[1];
func int work(int n) { return n + 1; }
func int bad(int n) {
  int a = spawn work(n);
  return a;
}
func void main() { OUT[0] = bad(3); }
|}

let test_spawn_sync_missing_on_one_path () =
  expect_compile_error ~substr:"spawn result"
    {|
global int OUT[1];
func int work(int n) { return n + 1; }
func int bad(int n) {
  int a = spawn work(n);
  if (n > 0) { sync; return a; }
  return a;
}
func void main() { OUT[0] = bad(3); }
|}

let test_spawn_synced_use_ok () =
  let p =
    compile
      {|
global int OUT[1];
func int work(int n) { return n + 1; }
func int good(int n) {
  int a = spawn work(n);
  int b = spawn work(n + 1);
  sync;
  return a + b;
}
func void main() { OUT[0] = good(3); }
|}
  in
  Alcotest.(check int) "verifies" 0
    (List.length (Muir_ir.Verify.verify p))

(* A phi that reads the spawn result along a sync-free edge, built
   directly on the IR (the front-end never emits this shape). *)
let test_spawn_phi_edge () =
  let open Muir_ir in
  let mk_worker () =
    let b = Builder.create ~name:"work" ~params:[ ("n", T.i32) ] ~ret:T.i32 in
    let e = Builder.new_block b in
    Builder.position_at b e;
    Builder.set_term b (Instr.Ret (Some (Instr.Reg 0)));
    Builder.finish b
  in
  let b = Builder.create ~name:"bad" ~params:[ ("n", T.i32) ] ~ret:T.i32 in
  let e = Builder.new_block b in
  Builder.position_at b e;
  let sp =
    Builder.add b ~ty:T.i32
      (Instr.Spawn { callee = "work"; args = [ Instr.Reg 0 ] })
  in
  let merge = Builder.new_block b in
  Builder.position_at b e;
  Builder.set_term b (Instr.Br merge);
  let ph = Builder.add_phi b merge ~ty:T.i32 [ (e, sp) ] in
  Builder.position_at b merge;
  Builder.set_term b (Instr.Ret (Some ph));
  let f = Builder.finish b in
  let p = { Program.globals = []; funcs = [ f; mk_worker () ] } in
  let errs = Verify.verify p in
  Alcotest.(check bool)
    (Fmt.str "phi use rejected (%s)"
       (String.concat "; " (List.map (Fmt.str "%a" Verify.pp_error) errs)))
    true
    (List.exists
       (fun (e : Verify.error) ->
         contains e.what "spawn result" && contains e.what "phi")
       errs)

(* ------------------------------------------------------------------ *)
(* Parameter registers need not be contiguous                         *)

let test_noncontiguous_param_regs () =
  let open Muir_ir in
  let f =
    {
      Func.name = "f";
      params =
        [ { Func.preg = 5; pname = "x"; pty = T.i32 };
          { Func.preg = 9; pname = "y"; pty = T.i32 } ];
      ret = T.i32;
      blocks =
        [ { Func.label = 0;
            instrs =
              [ { Instr.id = 10; ty = T.i32;
                  kind = Instr.Bin (Instr.Add, Instr.Reg 5, Instr.Reg 9) } ];
            term = Instr.Ret (Some (Instr.Reg 10)) } ];
      loops = [];
      next_reg = 11;
    }
  in
  let p = { Program.globals = []; funcs = [ f ] } in
  Alcotest.(check int) "verifies" 0 (List.length (Verify.verify p));
  let v, _, _ = Interp.run ~entry:"f" ~args:[ T.vint 40; T.vint 2 ] p in
  match v with
  | T.VInt x -> Alcotest.(check int) "result" 42 (Int64.to_int x)
  | _ -> Alcotest.fail "expected an int result"

let test_duplicate_param_reg_rejected () =
  let open Muir_ir in
  let f =
    {
      Func.name = "f";
      params =
        [ { Func.preg = 0; pname = "x"; pty = T.i32 };
          { Func.preg = 0; pname = "y"; pty = T.i32 } ];
      ret = T.i32;
      blocks =
        [ { Func.label = 0; instrs = [];
            term = Instr.Ret (Some (Instr.Reg 0)) } ];
      loops = [];
      next_reg = 1;
    }
  in
  let p = { Program.globals = []; funcs = [ f ] } in
  Alcotest.(check bool) "rejected" true
    (List.exists
       (fun (e : Verify.error) -> contains e.what "bound twice")
       (Verify.verify p))

(* ------------------------------------------------------------------ *)
(* Validate: duplicate node and edge ids                              *)

let test_validate_duplicate_ids () =
  let t =
    G.new_task ~tid:0 ~tname:"dup" ~tkind:G.Tfunc ~arg_tys:[ T.TBool ]
      ~res_tys:[ T.TBool ]
  in
  let li = G.add_node t ~ty:T.TBool (G.LiveIn 0) ~nins:0 in
  let lo = G.add_node t ~ty:T.TBool (G.LiveOut 0) ~nins:1 in
  ignore (G.connect t ~src:(li.nid, 0) ~dst:(lo.nid, 0));
  t.next_eid <- 0;
  ignore (G.connect t ~src:(li.nid, 0) ~dst:(lo.nid, 0));
  t.next_nid <- li.nid;
  ignore (G.add_node t ~ty:T.TBool (G.LiveIn 0) ~nins:0);
  let c =
    {
      G.cname = "dup";
      tasks = [ t ];
      root = 0;
      structures =
        [ { G.sid = 0; sname = "mem";
            shape =
              G.Scratchpad
                { banks = 1; ports_per_bank = 1; latency = 1;
                  width_words = 1; wb_buffer = false } } ];
      space_map = [ (0, 0) ];
      junction_width = [];
      prog = { Muir_ir.Program.globals = []; funcs = [] };
    }
  in
  let rendered =
    String.concat "; "
      (List.map
         (Fmt.str "%a" Muir_core.Validate.pp_error)
         (Muir_core.Validate.validate c))
  in
  Alcotest.(check bool)
    (Fmt.str "duplicate edge id caught (%s)" rendered)
    true
    (contains rendered "duplicate edge id");
  Alcotest.(check bool)
    (Fmt.str "duplicate node id caught (%s)" rendered)
    true
    (contains rendered "duplicate node id")

(* ------------------------------------------------------------------ *)
(* Clean runs: every bundled workload under every bundled stack must  *)
(* produce zero error-severity diagnostics, and strict pass running   *)
(* must not raise                                                     *)

let bundled_stacks () =
  [ ("bare", []);
    ("cilk-stack", Muir_opt.Stacks.cilk_stack ());
    ("loop-stack", Muir_opt.Stacks.loop_stack ());
    ("best", Muir_opt.Stacks.best_loop_stack ());
    ("tensor-stack", Muir_opt.Stacks.tensor_stack ()) ]

let test_workloads_clean () =
  List.iter
    (fun (w : Muir_workloads.Workloads.t) ->
      List.iter
        (fun (sname, passes) ->
          let p = Muir_workloads.Workloads.program w in
          let c = Muir_core.Build.circuit ~name:w.wname p in
          let _reports = Muir_opt.Pass.run_all ~strict:true passes c in
          let errs = Diag.errors (Check.circuit c) in
          Alcotest.(check string)
            (Fmt.str "%s under %s" w.wname sname)
            "" (pp_all errs))
        (bundled_stacks ()))
    Muir_workloads.Workloads.all

let () =
  Alcotest.run "analysis"
    [ ( "liveness",
        [ Alcotest.test_case "zero-token cycle" `Quick test_deadlock_cycle;
          Alcotest.test_case "primed ring clean" `Quick
            test_primed_ring_clean;
          Alcotest.test_case "starved live-out" `Quick test_starved_liveout;
          Alcotest.test_case "buffer imbalance" `Quick test_buffer_imbalance;
          Alcotest.test_case "unreachable node" `Quick test_unreachable_node
        ] );
      ( "races",
        [ Alcotest.test_case "definite race" `Quick test_definite_race;
          Alcotest.test_case "may race" `Quick test_maybe_race;
          Alcotest.test_case "independent iterations" `Quick
            test_independent_iterations_clean ] );
      ( "spawn-discipline",
        [ Alcotest.test_case "use before sync" `Quick
            test_spawn_use_before_sync;
          Alcotest.test_case "sync missing on one path" `Quick
            test_spawn_sync_missing_on_one_path;
          Alcotest.test_case "synced use ok" `Quick test_spawn_synced_use_ok;
          Alcotest.test_case "phi on sync-free edge" `Quick
            test_spawn_phi_edge ] );
      ( "params",
        [ Alcotest.test_case "non-contiguous registers" `Quick
            test_noncontiguous_param_regs;
          Alcotest.test_case "duplicate register rejected" `Quick
            test_duplicate_param_reg_rejected ] );
      ( "validate",
        [ Alcotest.test_case "duplicate ids" `Quick
            test_validate_duplicate_ids ] );
      ( "workloads",
        [ Alcotest.test_case "all stacks clean" `Quick test_workloads_clean ]
      ) ]
