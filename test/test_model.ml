(* Tests for the synthesis models: the absolute numbers are estimates,
   but bands, orderings and monotonicities must hold. *)

module M = Muir_model.Model

let design_of ?(passes = []) src =
  let c = Muir_core.Build.circuit (Muir_frontend.Frontend.compile src) in
  let _ = Muir_opt.Pass.run_all passes c in
  Muir_rtl.Lower.design c

let saxpy =
  {|
global float X[16]; global float Y[16];
func void main() {
  for (int i = 0; i < 16; i = i + 1) { Y[i] = 2.0 * X[i] + Y[i]; }
}|}

let test_fpga_bands () =
  List.iter
    (fun (w : Muir_workloads.Workloads.t) ->
      let p = Muir_workloads.Workloads.program w in
      let d = Muir_rtl.Lower.design (Muir_core.Build.circuit p) in
      let f = M.fpga d in
      Alcotest.(check bool)
        (Fmt.str "%s MHz in band (got %.0f)" w.wname f.fr_mhz)
        true
        (f.fr_mhz >= 150.0 && f.fr_mhz <= 550.0);
      Alcotest.(check bool)
        (Fmt.str "%s power in band (got %.0f mW)" w.wname f.fr_mw)
        true
        (f.fr_mw >= 400.0 && f.fr_mw <= 2500.0);
      Alcotest.(check bool) "has logic" true (f.fr_alms > 500))
    [ Muir_workloads.Workloads.find "gemm";
      Muir_workloads.Workloads.find "fib";
      Muir_workloads.Workloads.find "relu[T]" ]

let test_asic_bands () =
  let d = design_of saxpy in
  let a = M.asic d in
  Alcotest.(check bool)
    (Fmt.str "GHz band (got %.2f)" a.ar_ghz)
    true
    (a.ar_ghz >= 1.0 && a.ar_ghz <= 2.5);
  Alcotest.(check bool)
    (Fmt.str "area band (got %.1f kum2)" a.ar_area)
    true
    (a.ar_area > 5.0 && a.ar_area < 500.0);
  Alcotest.(check bool) "ASIC power well below FPGA power" true
    (a.ar_mw < (M.fpga d).fr_mw /. 3.0)

let test_tiling_costs_area () =
  let d1 = design_of saxpy in
  let d2 =
    design_of
      ~passes:[ Muir_opt.Structural.tiling_pass ~scope:`All_loops ~tiles:4 () ]
      saxpy
  in
  let f1 = M.fpga d1 and f2 = M.fpga d2 in
  Alcotest.(check bool)
    (Fmt.str "4 tiles cost ALMs (%d -> %d)" f1.fr_alms f2.fr_alms)
    true
    (f2.fr_alms > 2 * f1.fr_alms);
  Alcotest.(check bool) "and power" true (f2.fr_mw > f1.fr_mw)

let test_banking_costs_brams () =
  let d1 = design_of saxpy in
  let d2 =
    design_of
      ~passes:
        [ Muir_opt.Structural.localization_pass ();
          Muir_opt.Structural.scratchpad_banking_pass ~banks:4 () ]
      saxpy
  in
  Alcotest.(check bool) "banking adds SRAM macros" true
    ((M.fpga d2).fr_brams > (M.fpga d1).fr_brams)

let test_fusion_frequency_bounded () =
  (* op fusion is delay-budgeted: the fused design may lose a little
     clock, but never more than ~20%. *)
  let d1 = design_of saxpy in
  let d2 = design_of ~passes:[ Muir_opt.Fusion.pass ] saxpy in
  let f1 = (M.fpga d1).fr_mhz and f2 = (M.fpga d2).fr_mhz in
  Alcotest.(check bool)
    (Fmt.str "clock within 20%% (%.0f -> %.0f)" f1 f2)
    true
    (f2 >= 0.8 *. f1)

let test_dense_dsp_counts () =
  (* strength reduction keeps constant-stride address math off the
     multipliers: gemm should cost ~1 DSP for its fmul *)
  let w = Muir_workloads.Workloads.find "gemm" in
  let d =
    Muir_rtl.Lower.design
      (Muir_core.Build.circuit (Muir_workloads.Workloads.program w))
  in
  Alcotest.(check bool)
    (Fmt.str "gemm DSP count small (got %d)" (M.fpga d).fr_dsps)
    true
    ((M.fpga d).fr_dsps <= 8)

(* --- monotonicity and sanity across the bundled stacks ---------------
   The design-space explorer prunes configurations whose modeled area
   exceeds the budget before simulating them; that is only sound if
   widening a knob never *shrinks* the modeled cost. *)

let par_saxpy =
  {|
global float X[16]; global float Y[16];
func void main() {
  parallel_for (int i = 0; i < 16; i = i + 1) { Y[i] = 2.5 * X[i] + Y[i]; }
  sync;
}|}

let reports_of ~tiles ~banks (s : Muir_opt.Stacks.spec) =
  let d = design_of ~passes:(s.sp_build { tiles; banks }) par_saxpy in
  (M.fpga d, M.asic d)

let test_banks_monotone () =
  List.iter
    (fun (s : Muir_opt.Stacks.spec) ->
      if s.sp_uses_banks then begin
        let sweep =
          List.map (fun banks -> reports_of ~tiles:2 ~banks s) [ 1; 2; 4; 8 ]
        in
        let rec pairs = function
          | (f1, a1) :: ((f2, a2) :: _ as tl) ->
            Alcotest.(check bool)
              (Fmt.str "%s: ALMs non-decreasing in banks (%d -> %d)"
                 s.sp_name f1.M.fr_alms f2.M.fr_alms)
              true (f2.M.fr_alms >= f1.M.fr_alms);
            Alcotest.(check bool)
              (Fmt.str "%s: ASIC area non-decreasing in banks" s.sp_name)
              true (a2.M.ar_area >= a1.M.ar_area);
            pairs tl
          | _ -> ()
        in
        pairs sweep
      end)
    Muir_opt.Stacks.registry

let test_tiles_monotone () =
  List.iter
    (fun (s : Muir_opt.Stacks.spec) ->
      if s.sp_uses_tiles then begin
        let sweep =
          List.map (fun tiles -> reports_of ~tiles ~banks:2 s) [ 1; 2; 4; 8 ]
        in
        let rec pairs = function
          | (f1, a1) :: ((f2, a2) :: _ as tl) ->
            Alcotest.(check bool)
              (Fmt.str "%s: ALMs non-decreasing in tiles (%d -> %d)"
                 s.sp_name f1.M.fr_alms f2.M.fr_alms)
              true (f2.M.fr_alms >= f1.M.fr_alms);
            Alcotest.(check bool)
              (Fmt.str "%s: ASIC area non-decreasing in tiles" s.sp_name)
              true (a2.M.ar_area >= a1.M.ar_area);
            pairs tl
          | _ -> ()
        in
        pairs sweep
      end)
    Muir_opt.Stacks.registry

let test_reports_non_negative () =
  (* every report field must be non-negative (and rates positive) for
     every bundled stack at its default parameters *)
  List.iter
    (fun (s : Muir_opt.Stacks.spec) ->
      let f, a = reports_of ~tiles:s.sp_defaults.tiles
          ~banks:s.sp_defaults.banks s
      in
      let ck name v = Alcotest.(check bool) (s.sp_name ^ ": " ^ name) true v in
      ck "MHz > 0" (f.M.fr_mhz > 0.0);
      ck "mW >= 0" (f.M.fr_mw >= 0.0);
      ck "ALMs >= 0" (f.M.fr_alms >= 0);
      ck "regs >= 0" (f.M.fr_regs >= 0);
      ck "DSPs >= 0" (f.M.fr_dsps >= 0);
      ck "BRAMs >= 0" (f.M.fr_brams >= 0);
      ck "GHz > 0" (a.M.ar_ghz > 0.0);
      ck "ASIC mW >= 0" (a.M.ar_mw >= 0.0);
      ck "ASIC area >= 0" (a.M.ar_area >= 0.0))
    Muir_opt.Stacks.registry

let prop_area_monotone_in_tiles =
  QCheck.Test.make ~count:6 ~name:"ALMs grow monotonically with tiles"
    QCheck.(int_range 1 3)
    (fun t ->
      let a =
        (M.fpga
           (design_of
              ~passes:
                [ Muir_opt.Structural.tiling_pass ~scope:`All_loops ~tiles:t () ]
              saxpy))
          .fr_alms
      in
      let b =
        (M.fpga
           (design_of
              ~passes:
                [ Muir_opt.Structural.tiling_pass ~scope:`All_loops
                    ~tiles:(t + 1) () ]
              saxpy))
          .fr_alms
      in
      b >= a)

let () =
  Alcotest.run "model"
    [ ( "bands",
        [ Alcotest.test_case "fpga" `Quick test_fpga_bands;
          Alcotest.test_case "asic" `Quick test_asic_bands ] );
      ( "orderings",
        [ Alcotest.test_case "tiling costs area" `Quick
            test_tiling_costs_area;
          Alcotest.test_case "banking costs brams" `Quick
            test_banking_costs_brams;
          Alcotest.test_case "fusion frequency bounded" `Quick
            test_fusion_frequency_bounded;
          Alcotest.test_case "dsp counts" `Quick test_dense_dsp_counts ] );
      ( "monotonicity",
        [ Alcotest.test_case "banks never shrink cost" `Quick
            test_banks_monotone;
          Alcotest.test_case "tiles never shrink cost" `Quick
            test_tiles_monotone;
          Alcotest.test_case "report fields non-negative" `Quick
            test_reports_non_negative ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest prop_area_monotone_in_tiles ] ) ]
