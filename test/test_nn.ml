(* Tensor-graph frontend suite: shape inference goldens, rejection of
   ill-shaped graphs, graph-level fusion legality, and the end-to-end
   contract — lowered models simulate to outputs that match the exact
   golden models BIT FOR BIT (not within a tolerance) under every
   registry pass stack and every job count, fused and unfused. *)

open Muir_ir
module Nn = Muir_nn
module W = Muir_workloads.Workloads
module Stacks = Muir_opt.Stacks

(* --- shape inference ----------------------------------------------- *)

let check_shape g name expected =
  let n =
    List.find (fun (n : Nn.Graph.node) -> n.name = name)
      (g : Nn.Graph.t).nodes
  in
  Alcotest.(check (list int)) (name ^ " shape") expected n.shape

let test_mlp_shapes () =
  let g = Nn.Models.mlp () in
  check_shape g "X" [ 4; 16 ];
  check_shape g "H1" [ 4; 16 ];
  check_shape g "R1" [ 4; 16 ];
  check_shape g "H2" [ 4; 8 ];
  check_shape g "Y" [ 4; 8 ]

let test_lenet_shapes () =
  let g = Nn.Models.lenet () in
  check_shape g "C1" [ 4; 12; 12 ];
  check_shape g "P1" [ 4; 6; 6 ];
  check_shape g "C2" [ 6; 4; 4 ];
  check_shape g "P2" [ 6; 2; 2 ];
  check_shape g "F" [ 1; 24 ];
  check_shape g "D" [ 1; 10 ];
  check_shape g "Y" [ 1; 10 ]

(* matmul + residual add also infer (neither model uses them) *)
let test_matmul_add_shapes () =
  let g = Nn.Graph.create "resid" in
  let x = Nn.Graph.input g ~name:"X" ~shape:[ 4; 4 ] ~seed:1 () in
  let w = Nn.Graph.weight g ~name:"W" ~shape:[ 4; 4 ] ~seed:2 () in
  let m = Nn.Graph.matmul g ~name:"M" x w in
  let a = Nn.Graph.add_ g ~name:"A" m x in
  Nn.Graph.output g a;
  let g = Nn.Shape.infer g in
  check_shape g "M" [ 4; 4 ];
  check_shape g "A" [ 4; 4 ]

let expect_ill name (build : unit -> Nn.Graph.t) =
  match build () with
  | (_ : Nn.Graph.t) -> Alcotest.failf "%s: ill-shaped graph accepted" name
  | exception Nn.Shape.Shape_error _ -> ()

let test_rejections () =
  expect_ill "dense inner mismatch" (fun () ->
      let g = Nn.Graph.create "bad" in
      let x = Nn.Graph.input g ~name:"X" ~shape:[ 2; 6 ] ~seed:1 () in
      let w = Nn.Graph.weight g ~name:"W" ~shape:[ 5; 4 ] ~seed:2 () in
      let b = Nn.Graph.weight g ~name:"B" ~shape:[ 4 ] ~seed:3 () in
      Nn.Graph.output g (Nn.Graph.dense g ~name:"D" x w b);
      Nn.Shape.infer g);
  expect_ill "dense bias mismatch" (fun () ->
      let g = Nn.Graph.create "bad" in
      let x = Nn.Graph.input g ~name:"X" ~shape:[ 2; 6 ] ~seed:1 () in
      let w = Nn.Graph.weight g ~name:"W" ~shape:[ 6; 4 ] ~seed:2 () in
      let b = Nn.Graph.weight g ~name:"B" ~shape:[ 3 ] ~seed:3 () in
      Nn.Graph.output g (Nn.Graph.dense g ~name:"D" x w b);
      Nn.Shape.infer g);
  expect_ill "conv channel mismatch" (fun () ->
      let g = Nn.Graph.create "bad" in
      let x = Nn.Graph.input g ~name:"X" ~shape:[ 2; 8; 8 ] ~seed:1 () in
      let k = Nn.Graph.weight g ~name:"K" ~shape:[ 4; 3; 3; 3 ] ~seed:2 () in
      let b = Nn.Graph.weight g ~name:"B" ~shape:[ 4 ] ~seed:3 () in
      Nn.Graph.output g (Nn.Graph.conv2d g ~name:"C" x k b);
      Nn.Shape.infer g);
  expect_ill "maxpool non-divisible" (fun () ->
      let g = Nn.Graph.create "bad" in
      let x = Nn.Graph.input g ~name:"X" ~shape:[ 1; 5; 5 ] ~seed:1 () in
      Nn.Graph.output g (Nn.Graph.maxpool g ~name:"P" x);
      Nn.Shape.infer g);
  expect_ill "add shape mismatch" (fun () ->
      let g = Nn.Graph.create "bad" in
      let a = Nn.Graph.input g ~name:"A" ~shape:[ 2; 3 ] ~seed:1 () in
      let b = Nn.Graph.input g ~name:"B" ~shape:[ 3; 2 ] ~seed:2 () in
      Nn.Graph.output g (Nn.Graph.add_ g ~name:"S" a b);
      Nn.Shape.infer g);
  expect_ill "softmax non-2D" (fun () ->
      let g = Nn.Graph.create "bad" in
      let x = Nn.Graph.input g ~name:"X" ~shape:[ 2; 4; 4 ] ~seed:1 () in
      Nn.Graph.output g (Nn.Graph.softmax g ~name:"S" x);
      Nn.Shape.infer g);
  expect_ill "matmul non-2D" (fun () ->
      let g = Nn.Graph.create "bad" in
      let x = Nn.Graph.input g ~name:"X" ~shape:[ 2; 3; 4 ] ~seed:1 () in
      let w = Nn.Graph.weight g ~name:"W" ~shape:[ 4; 2 ] ~seed:2 () in
      Nn.Graph.output g (Nn.Graph.matmul g ~name:"M" x w);
      Nn.Shape.infer g);
  expect_ill "dead operator" (fun () ->
      let g = Nn.Graph.create "bad" in
      let x = Nn.Graph.input g ~name:"X" ~shape:[ 2; 2 ] ~seed:1 () in
      let r = Nn.Graph.relu g ~name:"R" x in
      ignore (Nn.Graph.relu g ~name:"DEAD" x);
      Nn.Graph.output g r;
      Nn.Shape.infer g);
  expect_ill "leaf output" (fun () ->
      let g = Nn.Graph.create "bad" in
      let x = Nn.Graph.input g ~name:"X" ~shape:[ 2; 2 ] ~seed:1 () in
      Nn.Graph.output g x;
      Nn.Shape.infer g)

(* --- fusion -------------------------------------------------------- *)

let test_fusion_report () =
  let g = Nn.Models.mlp () in
  let r = Nn.Fuse.run g in
  Alcotest.(check int) "mlp relus folded" 1 r.relus_folded;
  Alcotest.(check int) "mlp flattens elided" 0 r.flattens_elided;
  let r2 = Nn.Fuse.run g in
  Alcotest.(check int) "idempotent (relu)" 0 r2.relus_folded;
  let g = Nn.Models.lenet () in
  let r = Nn.Fuse.run g in
  Alcotest.(check int) "lenet relus folded" 2 r.relus_folded;
  Alcotest.(check int) "lenet flattens elided" 1 r.flattens_elided

let test_task_counts () =
  let tasks name fused =
    let g = (Option.get (Nn.Models.find name)) () in
    if fused then ignore (Nn.Fuse.run g);
    let _, (r : Nn.Lower.report) = Nn.Lower.lower g in
    r.tasks
  in
  Alcotest.(check int) "mlp unfused tasks" 4 (tasks "mlp" false);
  Alcotest.(check int) "mlp fused tasks" 3 (tasks "mlp" true);
  Alcotest.(check int) "lenet unfused tasks" 9 (tasks "lenet" false);
  Alcotest.(check int) "lenet fused tasks" 6 (tasks "lenet" true)

(* a relu feeding two consumers, or producing a graph output, must
   not be folded away *)
let test_fusion_legality () =
  let g = Nn.Graph.create "shared" in
  let x = Nn.Graph.input g ~name:"X" ~shape:[ 2; 2 ] ~seed:1 () in
  let w = Nn.Graph.weight g ~name:"W" ~shape:[ 2; 2 ] ~seed:2 () in
  let m = Nn.Graph.matmul g ~name:"M" x w in
  let r = Nn.Graph.relu g ~name:"R" m in
  let s = Nn.Graph.add_ g ~name:"S" r r in
  Nn.Graph.output g s;
  Nn.Graph.output g r;
  let g = Nn.Shape.infer g in
  let rep = Nn.Fuse.run g in
  Alcotest.(check int) "output relu not folded" 0 rep.relus_folded

(* --- lowering determinism ------------------------------------------ *)

let test_lowering_deterministic () =
  List.iter
    (fun name ->
      let a = (W.nn_workload name).source in
      let b = (W.nn_workload name).source in
      Alcotest.(check string) (name ^ " source stable") a b)
    [ "mlp"; "lenet" ]

(* --- dot render ---------------------------------------------------- *)

let test_gdot () =
  let g = Nn.Models.lenet () in
  ignore (Nn.Fuse.run g);
  let dot = Nn.Gdot.render g in
  Alcotest.(check bool) "digraph" true
    (String.length dot > 0
    && String.sub dot 0 7 = "digraph");
  let has needle =
    let nl = String.length needle and l = String.length dot in
    let rec go i = i + nl <= l && (String.sub dot i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "per-node shapes" true (has "[6x2x2]");
  Alcotest.(check bool) "fused stage marked" true (has "+ relu");
  Alcotest.(check bool) "elided flatten dashed" true (has "dashed")

(* --- end-to-end: sim output == golden, bit for bit ------------------ *)

let data_fn (i : Nn.Lower.init) : float array =
  Array.map
    (function Types.VFloat f -> f | _ -> 0.0)
    (Muir_workloads.Data.floats ~seed:i.seed ~lo:i.lo ~hi:i.hi i.count)

let golden_outputs name ~fused =
  let g = (Option.get (Nn.Models.find name)) () in
  if fused then ignore (Nn.Fuse.run g);
  Nn.Golden.run g ~data:data_fn

let sim_floats (r : Muir_sim.Sim.result) p name =
  Array.map
    (function
      | Types.VFloat f -> f
      | v -> Alcotest.failf "non-float in %s: %s" name (Types.value_to_string v))
    (Memory.dump_global r.memory p name)

let check_bits tag expected actual =
  Alcotest.(check int)
    (tag ^ ": length") (Array.length expected) (Array.length actual);
  Array.iteri
    (fun i e ->
      if Int64.bits_of_float e <> Int64.bits_of_float actual.(i) then
        Alcotest.failf "%s[%d]: golden %h (%Lx) != sim %h (%Lx)" tag i e
          (Int64.bits_of_float e) actual.(i)
          (Int64.bits_of_float actual.(i)))
    expected

let test_model_exact name ~fused () =
  let w = W.nn_workload ~fused name in
  let p = W.program w in
  let gold = golden_outputs name ~fused in
  List.iter
    (fun (spec : Stacks.spec) ->
      List.iter
        (fun jobs ->
          let c, _ =
            Stacks.optimized ~name:w.wname (spec.sp_build spec.sp_defaults) p
          in
          let r = Muir_sim.Sim.run ~jobs c in
          List.iter
            (fun (oname, expected) ->
              check_bits
                (Fmt.str "%s/%s/jobs=%d %s" w.wname spec.sp_name jobs oname)
                expected
                (sim_floats r p oname))
            gold)
        [ 1; 4 ])
    Stacks.registry

(* fused and unfused lowerings must produce identical bits, and fusion
   must actually pay: fewer cycles on the same model *)
let test_fused_equals_unfused name () =
  let run fused =
    let w = W.nn_workload ~fused name in
    let p = W.program w in
    let c = Muir_core.Build.circuit ~name:w.wname p in
    (Muir_sim.Sim.run c, p, w)
  in
  let rf, pf, wf = run true in
  let ru, pu, _ = run false in
  List.iter
    (fun oname ->
      check_bits
        (Fmt.str "%s fused-vs-unfused %s" name oname)
        (sim_floats ru pu oname) (sim_floats rf pf oname))
    wf.outputs;
  Alcotest.(check bool)
    (Fmt.str "%s: fusion reduces cycles (%d fused vs %d unfused)" name
       rf.stats.total_cycles ru.stats.total_cycles)
    true
    (rf.stats.total_cycles < ru.stats.total_cycles)

let () =
  Alcotest.run "nn"
    [ ( "shapes",
        [ Alcotest.test_case "mlp" `Quick test_mlp_shapes;
          Alcotest.test_case "lenet" `Quick test_lenet_shapes;
          Alcotest.test_case "matmul+add" `Quick test_matmul_add_shapes;
          Alcotest.test_case "ill-shaped rejected" `Quick test_rejections ] );
      ( "fusion",
        [ Alcotest.test_case "reports" `Quick test_fusion_report;
          Alcotest.test_case "task counts" `Quick test_task_counts;
          Alcotest.test_case "legality" `Quick test_fusion_legality ] );
      ( "lowering",
        [ Alcotest.test_case "deterministic" `Quick
            test_lowering_deterministic;
          Alcotest.test_case "gdot" `Quick test_gdot ] );
      ( "exact-vs-golden",
        [ Alcotest.test_case "mlp fused" `Slow
            (test_model_exact "mlp" ~fused:true);
          Alcotest.test_case "mlp unfused" `Slow
            (test_model_exact "mlp" ~fused:false);
          Alcotest.test_case "lenet fused" `Slow
            (test_model_exact "lenet" ~fused:true);
          Alcotest.test_case "lenet unfused" `Slow
            (test_model_exact "lenet" ~fused:false) ] );
      ( "fused-vs-unfused",
        [ Alcotest.test_case "mlp" `Slow (test_fused_equals_unfused "mlp");
          Alcotest.test_case "lenet" `Slow
            (test_fused_equals_unfused "lenet") ] ) ]
