(* Sharded-simulation equivalence: the Domain-pool kernel must be
   bit-identical to the sequential kernel — same total_cycles, same
   fire count, same always-on counter bank — for every job count, on
   every bundled workload, under every registry pass stack.  The
   sharded protocol defers all cross-task effects (call/spawn/sync
   fires) to the coordinator, which replays them in task-id order, so
   job count must never be observable in the results. *)

module W = Muir_workloads.Workloads
module Ctr = Muir_trace.Counters
module Stacks = Muir_opt.Stacks

(* Canonical rendering of a counter bank: per-node fires, lifetime
   spans and per-cause cycle accumulators, occupancy integrals, and
   the whole-run scalars, in sorted key order.  Any divergence in any
   counter shows up as a string diff. *)
let bank_fingerprint (c : Ctr.t) : string =
  let buf = Buffer.create 1024 in
  let nodes = ref [] in
  Ctr.iter_nodes
    (fun ~task ~node g -> nodes := (task, node, g) :: !nodes)
    c;
  List.iter
    (fun (task, node, (g : Ctr.node_ctr)) ->
      Buffer.add_string buf
        (Fmt.str "n %d %d f=%d s=%d a=%s@." task node g.Ctr.n_fires
           g.Ctr.n_span
           (String.concat ","
              (Array.to_list (Array.map string_of_int g.Ctr.n_acc)))))
    (List.sort
       (fun (t1, n1, _) (t2, n2, _) -> compare (t1, n1) (t2, n2))
       !nodes);
  List.iter
    (fun k ->
      match Ctr.find_occ c k with
      | Some o ->
        let tag =
          match k with
          | Ctr.Ktask i -> Fmt.str "t%d" i
          | Ctr.Kstruct i -> Fmt.str "s%d" i
        in
        Buffer.add_string buf
          (Fmt.str "o %s c=%d s=%d m=%d@." tag o.Ctr.o_cycles o.Ctr.o_sum
             o.Ctr.o_max)
      | None -> ())
    (List.sort compare (Ctr.occ_keys c));
  Buffer.add_string buf
    (Fmt.str "spawns=%d syncs=%d final=%d@." c.Ctr.spawns c.Ctr.syncs
       c.Ctr.final_cycle);
  Buffer.contents buf

let run_with ~jobs (w : W.t) (spec : Stacks.spec) =
  let p = W.program w in
  let c, _ =
    Stacks.optimized ~name:w.wname (spec.sp_build spec.sp_defaults) p
  in
  Muir_sim.Sim.run ~jobs c

let test_jobs_equivalence (w : W.t) () =
  List.iter
    (fun (spec : Stacks.spec) ->
      let r1 = run_with ~jobs:1 w spec in
      let r4 = run_with ~jobs:4 w spec in
      let tag = Fmt.str "%s/%s" w.wname spec.sp_name in
      Alcotest.(check int)
        (tag ^ ": total_cycles jobs=1 == jobs=4")
        r1.stats.total_cycles r4.stats.total_cycles;
      Alcotest.(check int)
        (tag ^ ": fires jobs=1 == jobs=4")
        r1.stats.fires r4.stats.fires;
      Alcotest.(check string)
        (tag ^ ": counter bank jobs=1 == jobs=4")
        (bank_fingerprint r1.counters)
        (bank_fingerprint r4.counters))
    Stacks.registry

(* Odd job counts and more lanes than tasks must also be invisible. *)
let test_jobs_sweep () =
  let w = List.find (fun (w : W.t) -> w.wname = "fib") W.all in
  let spec = Option.get (Stacks.find_spec "cilk-stack") in
  let r1 = run_with ~jobs:1 w spec in
  List.iter
    (fun jobs ->
      let r = run_with ~jobs w spec in
      Alcotest.(check int)
        (Fmt.str "fib cycles jobs=%d" jobs)
        r1.stats.total_cycles r.stats.total_cycles;
      Alcotest.(check string)
        (Fmt.str "fib bank jobs=%d" jobs)
        (bank_fingerprint r1.counters)
        (bank_fingerprint r.counters))
    [ 2; 3; 7 ]

(* A tracer forces jobs=1 (the event ring is not sharded), so a traced
   run requested with jobs=4 must still match exactly — and carry the
   same events as a traced jobs=1 run. *)
let test_traced_equivalence () =
  List.iter
    (fun name ->
      let w = List.find (fun (w : W.t) -> w.wname = name) W.all in
      let p = W.program w in
      let c1 = Muir_core.Build.circuit ~name p in
      let r1 = Muir_sim.Sim.run ~jobs:1 c1 in
      let c2 = Muir_core.Build.circuit ~name p in
      let tracer = Muir_trace.Trace.create ~capacity:16 () in
      let r2 = Muir_sim.Sim.run ~tracer ~jobs:4 c2 in
      Alcotest.(check int)
        (name ^ ": traced jobs=4 total_cycles")
        r1.stats.total_cycles r2.stats.total_cycles;
      Alcotest.(check string)
        (name ^ ": traced jobs=4 counter bank")
        (bank_fingerprint r1.counters)
        (bank_fingerprint r2.counters))
    [ "gemm"; "fib"; "relu[T]" ]

let () =
  Alcotest.run "shard"
    [ ( "jobs-equivalence",
        List.map
          (fun (w : W.t) ->
            Alcotest.test_case w.wname `Quick (test_jobs_equivalence w))
          W.all );
      ( "sweep",
        [ Alcotest.test_case "fib job counts" `Quick test_jobs_sweep ] );
      ( "traced",
        [ Alcotest.test_case "tracer forces jobs=1" `Quick
            test_traced_equivalence ] ) ]
