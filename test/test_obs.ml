(* Tests for the telemetry subsystem: histogram bucket-boundary
   exactness, registry find-or-create identity and conflict rejection,
   label canonicalization, Prometheus text round-trip through the
   strict parser (hostile label values included), the parser's
   rejection cases, quantile interpolation, the structured-log record
   schema against a golden transcript, span layout / ring bounds /
   Chrome-trace export, and byte-identical explorer expositions across
   --jobs under the coordinator-only rule. *)

module M = Muir_obs.Metrics
module Prom = Muir_obs.Prom
module Log = Muir_obs.Log
module Span = Muir_obs.Span
module Obs = Muir_obs.Obs
module J = Muir_trace.Json
module Dse = Muir_dse.Explore
module Config = Muir_dse.Config
module Cache = Muir_dse.Cache

let expect_invalid (label : string) (f : unit -> 'a) : unit =
  match f () with
  | _ -> Alcotest.fail (label ^ ": expected Invalid_argument")
  | exception Invalid_argument _ -> ()

(* --- histogram bucket boundaries ------------------------------------- *)

let test_bucket_boundaries () =
  let r = M.create () in
  let h = M.histogram r ~buckets:[| 1.0; 2.0; 5.0 |] "t_lat_seconds" in
  (* Bounds are inclusive upper limits: a value exactly on a bound
     lands in that bucket, the next representable float in the one
     above. *)
  M.observe h 1.0;
  M.observe h (Float.succ 1.0);
  M.observe h 2.0;
  M.observe h 5.0;
  M.observe h 6.0;
  M.observe h 0.0;
  Alcotest.(check int) "total observations" 6 (M.hist_count h);
  Alcotest.(check (array int)) "cumulative counts exact"
    [| 2; 4; 5; 6 |] (M.cumulative h);
  Alcotest.(check bool) "sum accumulates" true
    (Float.abs (M.hist_sum h -. (1.0 +. Float.succ 1.0 +. 13.0)) < 1e-9);
  (* Exact integers survive the render: cumulative bucket values are
     printed as integers, never floats. *)
  let text = Prom.render r in
  Alcotest.(check bool) "bucket value rendered as integer" true
    (let p = Prom.parse text in
     match Prom.find_histogram p ~name:"t_lat_seconds" () with
     | Some hd -> hd.Prom.hd_cum = [| 2; 4; 5; 6 |] && hd.Prom.hd_count = 6
     | None -> false)

(* --- registry identity and conflicts --------------------------------- *)

let test_registry_identity () =
  let r = M.create () in
  let a = M.counter r "t_reqs_total" in
  M.inc a;
  (* find-or-create: the second ask is the same instance *)
  let b = M.counter r "t_reqs_total" in
  M.inc b;
  Alcotest.(check int) "same series instance" 2 (M.counter_value a);
  (* label order never matters; duplicates and "le" are rejected *)
  let c1 = M.counter r ~labels:[ ("b", "2"); ("a", "1") ] "t_lab_total" in
  let c2 = M.counter r ~labels:[ ("a", "1"); ("b", "2") ] "t_lab_total" in
  M.inc c1;
  Alcotest.(check int) "labels canonicalized" 1 (M.counter_value c2);
  expect_invalid "duplicate label" (fun () ->
      M.counter r ~labels:[ ("a", "1"); ("a", "2") ] "t_lab_total");
  expect_invalid "reserved le label" (fun () ->
      M.counter r ~labels:[ ("le", "1") ] "t_lab_total");
  expect_invalid "invalid label name" (fun () ->
      M.counter r ~labels:[ ("9x", "1") ] "t_lab_total");
  (* kind/help/bucket conflicts are programming errors *)
  expect_invalid "kind conflict" (fun () -> M.gauge r "t_reqs_total");
  expect_invalid "help conflict" (fun () ->
      M.counter r ~help:"different" "t_reqs_total");
  let _ = M.histogram r ~buckets:[| 1.0; 2.0 |] "t_h_seconds" in
  expect_invalid "bucket conflict" (fun () ->
      M.histogram r ~buckets:[| 1.0; 3.0 |] "t_h_seconds");
  expect_invalid "buckets not increasing" (fun () ->
      M.histogram r ~buckets:[| 1.0; 1.0 |] "t_h2_seconds");
  expect_invalid "non-finite bucket" (fun () ->
      M.histogram r ~buckets:[| Float.infinity |] "t_h3_seconds");
  expect_invalid "invalid metric name" (fun () -> M.counter r "1bad");
  (* counters are monotonic *)
  expect_invalid "negative add" (fun () -> M.add a (-1));
  (* gauges are not *)
  let g = M.gauge r "t_depth" in
  M.set g 5;
  M.gauge_add g (-8);
  Alcotest.(check int) "gauge goes negative" (-3) (M.gauge_value g)

(* --- quantile interpolation ------------------------------------------ *)

let test_quantiles () =
  let r = M.create () in
  let h = M.histogram r ~buckets:[| 1.0; 2.0; 4.0 |] "t_q_seconds" in
  Alcotest.(check (float 1e-9)) "empty histogram answers 0" 0.0
    (M.quantile h 0.5);
  for _ = 1 to 100 do M.observe h 0.5 done;
  (* all mass in (0, 1]: linear interpolation inside the bucket *)
  Alcotest.(check (float 1e-9)) "median interpolates" 0.5 (M.quantile h 0.5);
  Alcotest.(check (float 1e-9)) "p100 is the bound" 1.0 (M.quantile h 1.0);
  (* +Inf observations clamp to the highest finite bound *)
  let r2 = M.create () in
  let h2 = M.histogram r2 ~buckets:[| 1.0; 2.0; 4.0 |] "t_q_seconds" in
  M.observe h2 10.0;
  M.observe h2 11.0;
  M.observe h2 12.0;
  Alcotest.(check (float 1e-9)) "overflow clamps to top bound" 4.0
    (M.quantile h2 0.5)

(* --- Prometheus round trip ------------------------------------------- *)

let hostile = "we\"ird\\va\nlue"

let test_prom_roundtrip () =
  let r = M.create () in
  let c =
    M.counter r ~help:"Total requests." ~labels:[ ("path", hostile) ]
      "t_requests_total"
  in
  M.add c 42;
  let g = M.gauge r ~help:"Queue depth." "t_depth" in
  M.set g (-3);
  let h =
    M.histogram r ~help:"Latency." ~buckets:[| 0.1; 1.0 |]
      ~labels:[ ("kind", "x") ] "t_lat_seconds"
  in
  M.observe h 0.05;
  M.observe h 0.5;
  M.observe h 2.0;
  let text = Prom.render r in
  let p = Prom.parse text in
  Alcotest.(check (option (float 1e-9))) "hostile label value round-trips"
    (Some 42.0)
    (Prom.find_sample p ~name:"t_requests_total"
       ~labels:[ ("path", hostile) ] ());
  Alcotest.(check (option (float 1e-9))) "negative gauge" (Some (-3.0))
    (Prom.find_sample p ~name:"t_depth" ());
  (match Prom.find_histogram p ~name:"t_lat_seconds"
           ~labels:[ ("kind", "x") ] ()
   with
  | Some hd ->
    Alcotest.(check (array (float 1e-9))) "bounds" [| 0.1; 1.0 |]
      hd.Prom.hd_bounds;
    Alcotest.(check (array int)) "cumulative" [| 1; 2; 3 |] hd.Prom.hd_cum;
    Alcotest.(check int) "count" 3 hd.Prom.hd_count;
    Alcotest.(check (float 1e-9)) "sum" 2.55 hd.Prom.hd_sum
  | None -> Alcotest.fail "histogram series not found");
  (* TYPE lines present and correctly kinded *)
  Alcotest.(check (option string)) "counter typed" (Some "counter")
    (List.assoc_opt "t_requests_total" p.Prom.p_types);
  Alcotest.(check (option string)) "histogram typed" (Some "histogram")
    (List.assoc_opt "t_lat_seconds" p.Prom.p_types)

let test_render_deterministic () =
  (* Two registries with the same contents registered in opposite
     orders render byte-identically. *)
  let build order =
    let r = M.create () in
    List.iter
      (fun which ->
        match which with
        | `C -> M.add (M.counter r ~help:"c" "t_zz_total") 7
        | `G -> M.set (M.gauge r ~help:"g" "t_aa_depth") 4
        | `H1 ->
          M.observe
            (M.histogram r ~buckets:[| 1.0 |] ~labels:[ ("k", "b") ]
               ~help:"h" "t_mm_seconds")
            0.5
        | `H2 ->
          M.observe
            (M.histogram r ~buckets:[| 1.0 |] ~labels:[ ("k", "a") ]
               ~help:"h" "t_mm_seconds")
            0.5)
      order;
    Prom.render r
  in
  Alcotest.(check string) "registration order invisible"
    (build [ `C; `G; `H1; `H2 ])
    (build [ `H2; `H1; `G; `C ])

let test_parser_rejects () =
  let reject label text =
    match Prom.parse text with
    | _ -> Alcotest.fail (label ^ ": accepted a malformed exposition")
    | exception Prom.Invalid _ -> ()
  in
  reject "sample without TYPE" "t_x 1\n";
  reject "duplicate TYPE" "# TYPE t_x counter\n# TYPE t_x counter\nt_x 1\n";
  reject "duplicate sample" "# TYPE t_x counter\nt_x 1\nt_x 1\n";
  reject "two spaces before value" "# TYPE t_x counter\nt_x  1\n";
  reject "two value tokens" "# TYPE t_x counter\nt_x 1 2\n";
  reject "missing value" "# TYPE t_x counter\nt_x \n";
  reject "bad escape" "# TYPE t_x counter\nt_x{l=\"\\q\"} 1\n";
  reject "unterminated labels" "# TYPE t_x counter\nt_x{l=\"v\" 1\n";
  reject "duplicate label"
    "# TYPE t_x counter\nt_x{l=\"a\",l=\"b\"} 1\n";
  reject "unknown kind" "# TYPE t_x flavor\nt_x 1\n";
  reject "invalid family name" "# TYPE 9bad counter\n";
  reject "HELP after TYPE" "# TYPE t_x counter\n# HELP t_x late\nt_x 1\n";
  reject "malformed comment" "# bogus comment here\n";
  reject "bare hash comment" "#bare\n";
  reject "histogram without +Inf"
    "# TYPE t_x histogram\nt_x_bucket{le=\"1\"} 1\nt_x_sum 1\nt_x_count 1\n";
  reject "histogram count mismatch"
    "# TYPE t_x histogram\nt_x_bucket{le=\"+Inf\"} 2\nt_x_sum 1\nt_x_count 1\n";
  reject "histogram buckets decrease"
    "# TYPE t_x histogram\nt_x_bucket{le=\"1\"} 2\n\
     t_x_bucket{le=\"+Inf\"} 2\nt_x_sum 1\nt_x_count 2\n\
     t_x_bucket{le=\"0.5\"} 3\n";
  reject "histogram missing _sum"
    "# TYPE t_x histogram\nt_x_bucket{le=\"+Inf\"} 1\nt_x_count 1\n";
  (* ... and a well-formed empty exposition is fine *)
  match Prom.parse "" with
  | p -> Alcotest.(check int) "empty ok" 0 (List.length p.Prom.p_samples)
  | exception Prom.Invalid m -> Alcotest.fail ("empty rejected: " ^ m)

(* --- structured log schema (golden) ---------------------------------- *)

let test_log_golden () =
  let c = ref 0.0 in
  let clock () =
    c := !c +. 0.5;
    !c
  in
  let buf = Buffer.create 256 in
  let log =
    Log.create ~min_level:Log.Info ~clock (fun line ->
        Buffer.add_string buf line;
        Buffer.add_char buf '\n')
  in
  Log.event log "accept" [ ("client", J.Int 0) ];
  (* Below the threshold: not written, no seq consumed, clock untouched. *)
  Log.event log ~level:Log.Debug "probe" [ ("k", J.Str "x") ];
  Log.event log ~level:Log.Warn "reject"
    [ ("code", J.Str "overloaded"); ("queue_depth", J.Int 7) ];
  Log.event log ~level:Log.Error "boom" [ ("msg", J.Str "a\"b") ];
  let golden =
    "{\"seq\":0,\"ts\":0.5,\"level\":\"info\",\"event\":\"accept\",\
     \"client\":0}\n\
     {\"seq\":1,\"ts\":1,\"level\":\"warn\",\"event\":\"reject\",\
     \"code\":\"overloaded\",\"queue_depth\":7}\n\
     {\"seq\":2,\"ts\":1.5,\"level\":\"error\",\"event\":\"boom\",\
     \"msg\":\"a\\\"b\"}\n"
  in
  Alcotest.(check string) "log transcript byte-identical" golden
    (Buffer.contents buf);
  (* Every line is strict JSON with the fixed header fields. *)
  List.iteri
    (fun i line ->
      if line <> "" then begin
        let v = J.parse line in
        Alcotest.(check (option int))
          (Fmt.str "line %d seq" i)
          (Some i)
          (Option.map J.to_int_exn (J.member "seq" v));
        Alcotest.(check bool)
          (Fmt.str "line %d has level/event" i)
          true
          (J.member "level" v <> None && J.member "event" v <> None)
      end)
    (String.split_on_char '\n' (Buffer.contents buf));
  (* The null logger writes nothing and reports itself disabled. *)
  let nl = Log.null () in
  Alcotest.(check bool) "null logger disabled" false
    (Log.enabled nl Log.Error);
  Log.event nl "ignored" []

(* --- spans and Chrome trace export ----------------------------------- *)

let test_spans () =
  let segs, total = Span.layout [ ("compile", 0.25); ("simulate", 0.5) ] in
  Alcotest.(check (float 1e-9)) "layout total" 0.75 total;
  (match segs with
  | [ a; b ] ->
    Alcotest.(check (float 1e-9)) "first offset" 0.0 a.Span.sg_off;
    Alcotest.(check (float 1e-9)) "second offset" 0.25 b.Span.sg_off
  | _ -> Alcotest.fail "expected two segments");
  let sp id =
    { Span.sp_id = id; sp_name = Fmt.str "item-%d" id;
      sp_cat = "serve.item"; sp_start = 100.0; sp_dur = total;
      sp_segs = segs }
  in
  (* A full ring keeps the newest spans, oldest first. *)
  expect_invalid "zero capacity" (fun () -> Span.ring 0);
  let ring = Span.ring 2 in
  Span.push ring (sp 0);
  Span.push ring (sp 1);
  Span.push ring (sp 2);
  (match Span.items ring with
  | [ a; b ] ->
    Alcotest.(check int) "oldest survivor" 1 a.Span.sp_id;
    Alcotest.(check int) "newest last" 2 b.Span.sp_id
  | l -> Alcotest.fail (Fmt.str "ring kept %d spans" (List.length l)));
  (* Chrome export: one whole-span event plus one per segment, ph:X,
     microsecond units. *)
  let v = J.parse (Span.chrome [ sp 3 ]) in
  match J.member "traceEvents" v with
  | Some (J.Arr evs) ->
    Alcotest.(check int) "span + segments" 3 (List.length evs);
    (match evs with
    | first :: seg1 :: _ ->
      Alcotest.(check (option string)) "whole-span name" (Some "item-3")
        (Option.map
           (function J.Str s -> s | _ -> "?")
           (J.member "name" first));
      Alcotest.(check (option string)) "ph is X" (Some "X")
        (Option.map
           (function J.Str s -> s | _ -> "?")
           (J.member "ph" first));
      Alcotest.(check bool) "microseconds" true
        ((match J.member "ts" first with
         | Some (J.Float f) -> Float.abs (f -. 1e8) < 1e-3
         | Some (J.Int n) -> n = 100_000_000
         | _ -> false));
      Alcotest.(check (option string)) "segment category" (Some "serve.item.stage")
        (Option.map
           (function J.Str s -> s | _ -> "?")
           (J.member "cat" seg1))
    | _ -> Alcotest.fail "no events")
  | _ -> Alcotest.fail "no traceEvents array"

(* --- explorer expositions across --jobs ------------------------------ *)

let saxpy_src =
  {|
global float X[8]; global float Y[8];
func void main() {
  parallel_for (int i = 0; i < 8; i = i + 1) { Y[i] = 2.0 * X[i] + Y[i]; }
  sync;
}|}

let test_explore_exposition_jobs () =
  (* Workers return measurements, the coordinator folds them in — so
     with a fixed clock the exposition is byte-identical for every
     --jobs value. *)
  let grid =
    [ Config.v "baseline";
      Config.v ~banks:2 "loop-stack";
      Config.v ~tiles:2 "cilk-stack" ]
  in
  let run jobs =
    let obs = Obs.create ~clock:(fun () -> 100.0) () in
    let t =
      Dse.run ~jobs ~grid ~cache:(Cache.create ()) ~obs
        (Dse.source_subject ~name:"saxpy8" saxpy_src)
    in
    (t, Prom.render obs.Obs.o_metrics)
  in
  let t1, e1 = run 1 in
  let _, e4 = run 4 in
  Alcotest.(check string) "exposition byte-identical (1 vs 4 jobs)" e1 e4;
  let p = Prom.parse e1 in
  Alcotest.(check (option (float 1e-9))) "evals counter = fresh evals"
    (Some (float_of_int t1.Dse.x_fresh_evals))
    (Prom.find_sample p ~name:"muir_dse_evals_total" ());
  Alcotest.(check (option (float 1e-9))) "sims counter = fresh sims"
    (Some (float_of_int t1.Dse.x_fresh_sims))
    (Prom.find_sample p ~name:"muir_dse_sims_total" ());
  match Prom.find_histogram p ~name:"muir_dse_eval_seconds" () with
  | Some hd ->
    Alcotest.(check int) "one latency observation per fresh eval"
      t1.Dse.x_fresh_evals hd.Prom.hd_count
  | None -> Alcotest.fail "eval-seconds histogram missing"

(* --- registration ---------------------------------------------------- *)

let () =
  Alcotest.run "obs"
    [ ( "metrics",
        [ Alcotest.test_case "bucket boundaries exact" `Quick
            test_bucket_boundaries;
          Alcotest.test_case "registry identity and conflicts" `Quick
            test_registry_identity;
          Alcotest.test_case "quantile interpolation" `Quick test_quantiles ] );
      ( "prom",
        [ Alcotest.test_case "render/parse round trip" `Quick
            test_prom_roundtrip;
          Alcotest.test_case "render deterministic" `Quick
            test_render_deterministic;
          Alcotest.test_case "strict parser rejects" `Quick
            test_parser_rejects ] );
      ( "log",
        [ Alcotest.test_case "record schema golden" `Quick test_log_golden ] );
      ( "span",
        [ Alcotest.test_case "layout, ring, chrome export" `Quick
            test_spans ] );
      ( "explore",
        [ Alcotest.test_case "exposition identical across jobs" `Quick
            test_explore_exposition_jobs ] ) ]
