(* Tests for the serve subsystem: wire-protocol codecs and framing,
   malformed/oversize/truncated request rejection, on-disk result-cache
   persistence and corruption recovery, per-item deadlines, batch
   deduplication, cold/warm byte-identity across daemon restarts,
   admission-queue overload, the staged pipeline's equivalence with the
   direct toolchain calls, and an end-to-end socket round trip. *)

module Proto = Muir_serve.Proto
module Rcache = Muir_serve.Rcache
module Server = Muir_serve.Server
module Client = Muir_serve.Client
module Pipeline = Muir_pipeline.Pipeline
module J = Muir_trace.Json
module W = Muir_workloads.Workloads

let item ?(id = 0) ?(stack = "baseline") ?tiles ?banks ?(off = [])
    ?deadline_ms ?(jobs = 1) src : Proto.item =
  { Proto.it_id = id; it_src = src; it_stack = stack; it_tiles = tiles;
    it_banks = banks; it_off = off; it_deadline_ms = deadline_ms;
    it_jobs = jobs }

let results_of = function
  | Proto.Results { results; fresh; cached; errors } ->
    (results, fresh, cached, errors)
  | _ -> Alcotest.fail "expected a run response"

let outcome (rs : Proto.result_ list) (id : int) : Proto.outcome =
  match List.find_opt (fun (r : Proto.result_) -> r.rs_id = id) rs with
  | Some r -> r.rs_outcome
  | None -> Alcotest.fail (Fmt.str "no result for item %d" id)

let report_string = function
  | Proto.Ok_ { report; _ } -> J.to_string report
  | Proto.Err { code; msg; _ } ->
    Alcotest.fail (Fmt.str "expected ok, got error %s: %s" code msg)

let err_code = function
  | Proto.Err { code; _ } -> code
  | Proto.Ok_ _ -> Alcotest.fail "expected an error outcome"

let fresh_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Fmt.str "muir-serve-test-%d-%d" (Unix.getpid ()) !n)
    in
    if Sys.file_exists d then
      Array.iter
        (fun f -> Sys.remove (Filename.concat d f))
        (Sys.readdir d);
    d

(* --- protocol codecs ------------------------------------------------ *)

let test_request_roundtrip () =
  let hostile = "we\"ird\\na\nme\twith \x01 bytes and \xe2\x9c\x93" in
  let req =
    Proto.Run
      [ item ~id:3 ~stack:"loop-stack" ~tiles:4 ~banks:2
          ~off:[ "op-fusion" ] ~deadline_ms:250 ~jobs:2
          (Proto.Workload "gemm");
        item ~id:7 (Proto.Inline { name = hostile; text = hostile }) ]
  in
  let s = Proto.request_to_string req in
  (match Proto.request_of_string s with
  | Proto.Run [ a; b ] ->
    Alcotest.(check int) "id" 3 a.it_id;
    Alcotest.(check string) "stack" "loop-stack" a.it_stack;
    Alcotest.(check (option int)) "tiles" (Some 4) a.it_tiles;
    Alcotest.(check (option int)) "banks" (Some 2) a.it_banks;
    Alcotest.(check (list string)) "off" [ "op-fusion" ] a.it_off;
    Alcotest.(check (option int)) "deadline" (Some 250) a.it_deadline_ms;
    Alcotest.(check int) "jobs" 2 a.it_jobs;
    (match b.it_src with
    | Proto.Inline { name; text } ->
      Alcotest.(check string) "hostile name survives" hostile name;
      Alcotest.(check string) "hostile text survives" hostile text
    | _ -> Alcotest.fail "expected inline source")
  | _ -> Alcotest.fail "round trip lost the request shape");
  (* stats/shutdown round-trip too *)
  Alcotest.(check bool) "stats" true
    (Proto.request_of_string (Proto.request_to_string Proto.Stats)
    = Proto.Stats);
  Alcotest.(check bool) "shutdown" true
    (Proto.request_of_string (Proto.request_to_string Proto.Shutdown)
    = Proto.Shutdown)

let expect_bad (label : string) (s : string) =
  match Proto.request_of_string s with
  | _ -> Alcotest.fail (label ^ ": accepted a malformed request")
  | exception Proto.Bad_request _ -> ()

let test_malformed_requests () =
  expect_bad "garbage" "not json at all {{{";
  expect_bad "no version" {|{"op":"run","items":[]}|};
  expect_bad "wrong version" {|{"muirc":"serve-v9","op":"stats"}|};
  expect_bad "unknown op" {|{"muirc":"serve-v1","op":"dance"}|};
  expect_bad "run without items" {|{"muirc":"serve-v1","op":"run"}|};
  expect_bad "item no source"
    {|{"muirc":"serve-v1","op":"run","items":[{"id":1}]}|};
  expect_bad "item both sources"
    {|{"muirc":"serve-v1","op":"run","items":[{"id":1,"workload":"gemm","source":"x"}]}|};
  expect_bad "item missing id"
    {|{"muirc":"serve-v1","op":"run","items":[{"workload":"gemm"}]}|};
  expect_bad "bad jobs"
    {|{"muirc":"serve-v1","op":"run","items":[{"id":1,"workload":"gemm","jobs":0}]}|}

(* --- framing -------------------------------------------------------- *)

let with_socketpair f =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close a with Unix.Unix_error _ -> ());
      try Unix.close b with Unix.Unix_error _ -> ())
    (fun () -> f a b)

let test_frame_roundtrip () =
  with_socketpair (fun a b ->
      let payload = String.init 5000 (fun i -> Char.chr (i mod 256)) in
      Proto.write_frame a payload;
      Proto.write_frame a "";
      Alcotest.(check (option string)) "payload" (Some payload)
        (Proto.read_frame b);
      Alcotest.(check (option string)) "empty frame" (Some "")
        (Proto.read_frame b);
      Unix.close a;
      Alcotest.(check (option string)) "clean EOF" None (Proto.read_frame b))

let test_truncated_frames () =
  (* Header cut short: 2 of 4 length bytes, then EOF. *)
  with_socketpair (fun a b ->
      ignore (Unix.write_substring a "\x00\x01" 0 2);
      Unix.close a;
      match Proto.read_frame b with
      | _ -> Alcotest.fail "truncated header accepted"
      | exception Proto.Frame_error _ -> ());
  (* Payload cut short: header promises 100 bytes, 3 arrive. *)
  with_socketpair (fun a b ->
      ignore (Unix.write_substring a "\x00\x00\x00\x64abc" 0 7);
      Unix.close a;
      match Proto.read_frame b with
      | _ -> Alcotest.fail "truncated payload accepted"
      | exception Proto.Frame_error _ -> ())

let test_oversize_frame () =
  with_socketpair (fun a b ->
      Proto.write_frame a (String.make 100 'x');
      match Proto.read_frame ~max_frame:10 b with
      | _ -> Alcotest.fail "oversize frame accepted"
      | exception Proto.Oversize n -> Alcotest.(check int) "length" 100 n)

(* --- malformed payloads against a live server state ----------------- *)

let test_handle_malformed () =
  let t = Server.create () in
  (match Server.handle_payload t "}{ nope" with
  | Proto.Error_r { code; _ } ->
    Alcotest.(check string) "code" "bad_request" code
  | _ -> Alcotest.fail "garbage payload not rejected");
  (* ... and the server still works afterwards. *)
  let rs, fresh, _, errors =
    results_of (Server.handle t (Proto.Run [ item (Proto.Workload "saxpy") ]))
  in
  Alcotest.(check int) "still serving" 1 fresh;
  Alcotest.(check int) "no errors" 0 errors;
  ignore (report_string (outcome rs 0))

(* --- per-item failure containment ----------------------------------- *)

let test_item_errors_contained () =
  let t = Server.create () in
  let rs, fresh, _, errors =
    results_of
      (Server.handle t
         (Proto.Run
            [ item ~id:0 (Proto.Workload "no-such-workload");
              item ~id:1 ~stack:"no-such-stack" (Proto.Workload "saxpy");
              item ~id:2
                (Proto.Inline { name = "broken"; text = "func nope {" });
              item ~id:3 ~deadline_ms:0 (Proto.Workload "fib");
              item ~id:4 (Proto.Workload "saxpy") ]))
  in
  Alcotest.(check int) "four items failed" 4 errors;
  Alcotest.(check int) "the good item ran" 1 fresh;
  Alcotest.(check string) "unknown workload" "bad_request"
    (err_code (outcome rs 0));
  Alcotest.(check string) "unknown stack" "bad_request"
    (err_code (outcome rs 1));
  Alcotest.(check string) "compile error" "compile_error"
    (err_code (outcome rs 2));
  (match outcome rs 3 with
  | Proto.Err { code; stage; _ } ->
    Alcotest.(check string) "deadline code" "deadline" code;
    Alcotest.(check (option string)) "deadline names a stage"
      (Some "compile") stage
  | _ -> Alcotest.fail "expired deadline did not fail");
  ignore (report_string (outcome rs 4));
  (* The daemon state survives: the same batch again is served, and the
     good item now comes from the cache. *)
  let _, fresh2, cached2, errors2 =
    results_of
      (Server.handle t (Proto.Run [ item ~id:4 (Proto.Workload "saxpy") ]))
  in
  Alcotest.(check int) "no fresh work" 0 fresh2;
  Alcotest.(check int) "cache answers" 1 cached2;
  Alcotest.(check int) "no errors" 0 errors2

(* --- batch dedup ----------------------------------------------------- *)

let test_batch_dedup () =
  let t = Server.create () in
  let rs, fresh, cached, errors =
    results_of
      (Server.handle t
         (Proto.Run
            [ item ~id:0 (Proto.Workload "saxpy");
              item ~id:1 ~jobs:2 (Proto.Workload "saxpy");
              item ~id:2 ~deadline_ms:60_000 (Proto.Workload "saxpy") ]))
  in
  Alcotest.(check int) "one simulation" 1 fresh;
  Alcotest.(check int) "two dedup answers" 2 cached;
  Alcotest.(check int) "no errors" 0 errors;
  (* jobs and deadline are not part of the key, so all three reports
     are the same bytes. *)
  let a = report_string (outcome rs 0) in
  Alcotest.(check string) "dup report identical" a
    (report_string (outcome rs 1));
  Alcotest.(check string) "deadline variant identical" a
    (report_string (outcome rs 2));
  (* An expired deadline on one copy must not fail an unconstrained
     copy of the same key: the least-constrained item is the
     representative, and the constrained dup answers from its result. *)
  let t2 = Server.create () in
  let _, fresh, cached, errors =
    results_of
      (Server.handle t2
         (Proto.Run
            [ item ~id:0 ~deadline_ms:0 (Proto.Workload "gemm");
              item ~id:1 (Proto.Workload "gemm") ]))
  in
  Alcotest.(check int) "unconstrained copy evaluated" 1 fresh;
  Alcotest.(check int) "constrained copy answered" 1 cached;
  Alcotest.(check int) "nobody failed" 0 errors;
  (* When every copy is past its deadline, the error replays to dups. *)
  let rs, _, _, errors =
    results_of
      (Server.handle t2
         (Proto.Run
            [ item ~id:0 ~deadline_ms:0 (Proto.Workload "conv1d");
              item ~id:1 ~deadline_ms:0 (Proto.Workload "conv1d") ]))
  in
  Alcotest.(check int) "both expired" 2 errors;
  Alcotest.(check string) "rep deadline" "deadline" (err_code (outcome rs 0));
  Alcotest.(check string) "dup deadline" "deadline" (err_code (outcome rs 1))

(* --- persistence and byte-identity across restarts ------------------- *)

let suite_items () =
  [ item ~id:0 (Proto.Workload "saxpy");
    item ~id:1 ~stack:"loop-stack" (Proto.Workload "saxpy");
    item ~id:2 ~stack:"cilk-stack" ~tiles:2 (Proto.Workload "fib");
    item ~id:3
      (Proto.Inline
         { name = "tiny";
           text =
             {|
global float X[8]; global float Y[8];
func void main() {
  parallel_for (int i = 0; i < 8; i = i + 1) { Y[i] = 2.0 * X[i]; }
  sync;
}|} }) ]

let test_restart_byte_identity () =
  let dir = fresh_dir () in
  let t1 = Server.create ~cache_dir:dir () in
  let rs1, fresh1, _, errors1 =
    results_of (Server.handle t1 (Proto.Run (suite_items ())))
  in
  Alcotest.(check int) "cold round all fresh" 4 fresh1;
  Alcotest.(check int) "cold round clean" 0 errors1;
  (* A brand-new daemon on the same directory: zero fresh simulations,
     byte-identical reports. *)
  let t2 = Server.create ~cache_dir:dir () in
  let rs2, fresh2, cached2, errors2 =
    results_of (Server.handle t2 (Proto.Run (suite_items ())))
  in
  Alcotest.(check int) "warm round zero fresh" 0 fresh2;
  Alcotest.(check int) "warm round all cached" 4 cached2;
  Alcotest.(check int) "warm round clean" 0 errors2;
  List.iter
    (fun i ->
      Alcotest.(check string)
        (Fmt.str "report %d byte-identical" i)
        (report_string (outcome rs1 i))
        (report_string (outcome rs2 i)))
    [ 0; 1; 2; 3 ]

let test_cache_corruption_recovery () =
  let dir = fresh_dir () in
  let t1 = Server.create ~cache_dir:dir () in
  let _ = Server.handle t1 (Proto.Run (suite_items ())) in
  let entries = Sys.readdir dir in
  Alcotest.(check int) "four entries on disk" 4 (Array.length entries);
  (* Corrupt one entry (flip a payload byte) and truncate another. *)
  let path i = Filename.concat dir entries.(i) in
  let read p =
    let ic = open_in_bin p in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s
  in
  let write p s =
    let oc = open_out_bin p in
    output_string oc s;
    close_out oc
  in
  let s0 = read (path 0) in
  let flipped = Bytes.of_string s0 in
  let last = Bytes.length flipped - 1 in
  Bytes.set flipped last
    (Char.chr (Char.code (Bytes.get flipped last) lxor 0xff));
  write (path 0) (Bytes.to_string flipped);
  let s1 = read (path 1) in
  write (path 1) (String.sub s1 0 (String.length s1 / 2));
  (* A fresh daemon detects both, discards them, and keeps serving. *)
  let t2 = Server.create ~cache_dir:dir () in
  (match Server.handle t2 Proto.Stats with
  | Proto.Stats_r s ->
    Alcotest.(check int) "corrupt entries counted" 2 s.st_cache_corrupt;
    Alcotest.(check int) "survivors loaded" 2 s.st_cache_entries
  | _ -> Alcotest.fail "expected stats");
  Alcotest.(check bool) "corrupt files removed" true
    (Array.length (Sys.readdir dir) = 2);
  let _, fresh, cached, errors =
    results_of (Server.handle t2 (Proto.Run (suite_items ())))
  in
  Alcotest.(check int) "two re-simulated" 2 fresh;
  Alcotest.(check int) "two from surviving entries" 2 cached;
  Alcotest.(check int) "no errors" 0 errors;
  (* The rebuilt store is whole again. *)
  let t3 = Server.create ~cache_dir:dir () in
  let _, fresh3, _, _ =
    results_of (Server.handle t3 (Proto.Run (suite_items ())))
  in
  Alcotest.(check int) "rebuilt store answers everything" 0 fresh3

(* --- telemetry: the metrics op and the observation invariant --------- *)

module Prom = Muir_obs.Prom
module Obs = Muir_obs.Obs

let scrape (t : Server.t) : Prom.parsed =
  match Server.handle t Proto.Metrics with
  | Proto.Metrics_r text -> Prom.parse text
  | _ -> Alcotest.fail "expected a metrics response"

let sample p name = Prom.find_sample p ~name ()

let item_hist p cached =
  match
    Prom.find_histogram p ~name:"muir_serve_item_seconds"
      ~labels:[ ("cached", cached) ] ()
  with
  | Some hd -> hd
  | None -> Alcotest.fail ("no item histogram for cached=" ^ cached)

let test_metrics_op () =
  let obs = Obs.create ~clock:(fun () -> 42.0) () in
  let t = Server.create ~obs () in
  (* A scrape before any traffic already exposes every family, at
     zero, and parses strictly. *)
  let p0 = scrape t in
  Alcotest.(check (option (float 1e-9))) "items start at zero" (Some 0.0)
    (sample p0 "muir_serve_items_total");
  Alcotest.(check (option string)) "errors family pre-registered"
    (Some "counter")
    (List.assoc_opt "muir_serve_errors_total" p0.Prom.p_types);
  (* One batch: a fresh evaluation, an in-batch duplicate, a failure. *)
  let batch =
    Proto.Run
      [ item ~id:0 (Proto.Workload "saxpy");
        item ~id:1 (Proto.Workload "saxpy");
        item ~id:2 (Proto.Workload "no-such-workload") ]
  in
  let _, fresh, cached, errors = results_of (Server.handle t batch) in
  Alcotest.(check int) "one fresh" 1 fresh;
  Alcotest.(check int) "one dup" 1 cached;
  Alcotest.(check int) "one error" 1 errors;
  let p = scrape t in
  Alcotest.(check (option (float 1e-9))) "requests" (Some 1.0)
    (sample p "muir_serve_requests_total");
  Alcotest.(check (option (float 1e-9))) "items" (Some 3.0)
    (sample p "muir_serve_items_total");
  Alcotest.(check (option (float 1e-9))) "ok" (Some 2.0)
    (sample p "muir_serve_ok_total");
  Alcotest.(check (option (float 1e-9))) "error coded" (Some 1.0)
    (Prom.find_sample p ~name:"muir_serve_errors_total"
       ~labels:[ ("code", "bad_request") ] ());
  (* The invariant the CI smoke reconciles: exactly one latency
     observation per item, split fresh/cached, totalling ok+errors.
     The failed item counts as fresh (it was not answered from
     cache). *)
  let hf = item_hist p "false" and hc = item_hist p "true" in
  Alcotest.(check int) "fresh observations" 2 hf.Prom.hd_count;
  Alcotest.(check int) "cached observations" 1 hc.Prom.hd_count;
  Alcotest.(check int) "observations = ok + errors" 3
    (hf.Prom.hd_count + hc.Prom.hd_count);
  (* A second identical batch: everything answers from the cache or
     fails again; the invariant holds cumulatively. *)
  let _ = Server.handle t batch in
  let p2 = scrape t in
  let hf2 = item_hist p2 "false" and hc2 = item_hist p2 "true" in
  Alcotest.(check int) "cumulative observations" 6
    (hf2.Prom.hd_count + hc2.Prom.hd_count);
  Alcotest.(check int) "round 2 hits are cached" 3 hc2.Prom.hd_count;
  (* Per-stage histograms saw exactly the one fresh evaluation. *)
  (match
     Prom.find_histogram p2 ~name:"muir_serve_stage_seconds"
       ~labels:[ ("stage", "simulate") ] ()
   with
  | Some hd -> Alcotest.(check int) "one simulation staged" 1 hd.Prom.hd_count
  | None -> Alcotest.fail "no simulate stage histogram");
  (* The fixed clock pins the time-derived series. *)
  Alcotest.(check (option (float 1e-9))) "uptime from injected clock"
    (Some 0.0)
    (sample p2 "muir_serve_uptime_seconds")

let test_rcache_disk_bytes () =
  let dir = fresh_dir () in
  let t1 = Server.create ~cache_dir:dir () in
  let _ = Server.handle t1 (Proto.Run (suite_items ())) in
  let on_disk () =
    Array.fold_left
      (fun acc f ->
        acc + (Unix.stat (Filename.concat dir f)).Unix.st_size)
      0 (Sys.readdir dir)
  in
  let disk_bytes t =
    match Server.handle t Proto.Stats with
    | Proto.Stats_r s -> s.Proto.st_cache_disk_bytes
    | _ -> Alcotest.fail "expected stats"
  in
  Alcotest.(check bool) "entries written" true (on_disk () > 0);
  Alcotest.(check int) "gauge matches the files" (on_disk ())
    (disk_bytes t1);
  (* A fresh daemon re-derives the same total from the load scan. *)
  let t2 = Server.create ~cache_dir:dir () in
  Alcotest.(check int) "restart re-derives the total" (on_disk ())
    (disk_bytes t2);
  (* A memory-only daemon reports zero. *)
  Alcotest.(check int) "memory-only is zero" 0
    (disk_bytes (Server.create ()));
  (* ... and the metrics op exposes the same number. *)
  let p = scrape t2 in
  Alcotest.(check (option (float 1e-9))) "gauge in the exposition"
    (Some (float_of_int (on_disk ())))
    (Prom.find_sample p ~name:"muir_serve_rcache_disk_bytes" ())

(* --- pipeline equivalence -------------------------------------------- *)

let test_pipeline_matches_direct () =
  let w = W.find "saxpy" in
  let passes = Muir_opt.Stacks.loop_stack () in
  (* Direct toolchain calls, as the CLI made them before the port. *)
  let c = Muir_core.Build.circuit ~name:w.wname (W.program w) in
  let _ = Muir_opt.Pass.run_all passes c in
  let direct = Muir_sim.Sim.run c in
  (* The staged pipeline. *)
  let b =
    Pipeline.build
      ~passes:(Muir_opt.Stacks.loop_stack ())
      (Pipeline.of_workload w)
  in
  let piped = Pipeline.simulate b in
  Alcotest.(check int) "identical cycles"
    direct.Muir_sim.Sim.stats.total_cycles
    piped.Muir_sim.Sim.stats.total_cycles;
  Alcotest.(check int) "identical fires" direct.Muir_sim.Sim.stats.fires
    piped.Muir_sim.Sim.stats.fires;
  Alcotest.(check string) "circuit named after the workload" w.wname
    b.p_circuit.cname

let test_pipeline_ctl () =
  let ctl = Pipeline.ctl () in
  let b =
    Pipeline.build ~ctl ~passes:(Muir_opt.Stacks.loop_stack ())
      (Pipeline.of_workload_name "saxpy")
  in
  let _ = Pipeline.model ~ctl b in
  let _ = Pipeline.simulate ~ctl b in
  List.iter
    (fun st ->
      Alcotest.(check int)
        (Pipeline.stage_name st ^ " ran once")
        1
        ctl.stage_counts.(Pipeline.stage_index st);
      Alcotest.(check bool)
        (Pipeline.stage_name st ^ " time accounted")
        true
        (Pipeline.seconds ctl st >= 0.0))
    Pipeline.stages;
  (* An already-expired deadline fails at the first boundary, naming
     the stage that was about to run. *)
  let expired = Pipeline.ctl ~deadline:(Unix.gettimeofday () -. 1.0) () in
  match
    Pipeline.build ~ctl:expired (Pipeline.of_workload_name "saxpy")
  with
  | _ -> Alcotest.fail "expired deadline did not raise"
  | exception Pipeline.Deadline st ->
    Alcotest.(check string) "first stage blamed" "compile"
      (Pipeline.stage_name st)

(* --- end-to-end over the socket -------------------------------------- *)

let test_socket_end_to_end () =
  let socket =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Fmt.str "muir-serve-e2e-%d.sock" (Unix.getpid ()))
  in
  let t = Server.create ~jobs:2 ~queue_cap:3 () in
  (* A small frame cap keeps the oversize probe below the socket-buffer
     size, so the whole frame is written before the server answers. *)
  let d =
    Domain.spawn (fun () -> Server.serve ~max_frame:4096 ~socket t)
  in
  let rec wait n =
    if Sys.file_exists socket then ()
    else if n = 0 then Alcotest.fail "daemon socket never appeared"
    else begin
      Unix.sleepf 0.05;
      wait (n - 1)
    end
  in
  wait 100;
  (* Round 1: mixed batch. *)
  let batch =
    Proto.Run
      [ item ~id:0 (Proto.Workload "saxpy");
        item ~id:1 ~stack:"loop-stack" (Proto.Workload "saxpy");
        item ~id:2 (Proto.Workload "no-such-workload") ]
  in
  let rs1, fresh1, _, errors1 =
    Client.with_connection socket (fun fd ->
        results_of (Client.rpc fd batch))
  in
  Alcotest.(check int) "round 1 fresh" 2 fresh1;
  Alcotest.(check int) "round 1 errors" 1 errors1;
  (* Round 2: identical batch, zero fresh work, identical reports. *)
  let rs2, fresh2, cached2, _ =
    Client.with_connection socket (fun fd ->
        results_of (Client.rpc fd batch))
  in
  Alcotest.(check int) "round 2 zero fresh" 0 fresh2;
  Alcotest.(check int) "round 2 cached" 2 cached2;
  List.iter
    (fun i ->
      Alcotest.(check string)
        (Fmt.str "socket report %d identical" i)
        (report_string (outcome rs1 i))
        (report_string (outcome rs2 i)))
    [ 0; 1 ];
  (* Overload: a batch larger than the admission cap is rejected with a
     structured error, and the daemon keeps serving. *)
  let big =
    Proto.Run
      (List.init 4 (fun i -> item ~id:i (Proto.Workload "saxpy")))
  in
  (match
     Client.with_connection socket (fun fd -> Client.rpc fd big)
   with
  | Proto.Error_r { code; _ } ->
    Alcotest.(check string) "overloaded" "overloaded" code
  | _ -> Alcotest.fail "oversized batch admitted");
  (* Malformed JSON over the wire: structured rejection. *)
  Client.with_connection socket (fun fd ->
      Proto.write_frame fd "this is not json";
      match Proto.read_frame fd with
      | Some payload -> (
        match Proto.response_of_string payload with
        | Proto.Error_r { code; _ } ->
          Alcotest.(check string) "wire bad_request" "bad_request" code
        | _ -> Alcotest.fail "garbage frame not rejected")
      | None -> Alcotest.fail "no response to garbage frame");
  (* Oversize frame: structured rejection, connection closed. *)
  Client.with_connection socket (fun fd ->
      Proto.write_frame fd (String.make 5000 'x');
      match Proto.read_frame fd with
      | Some payload -> (
        match Proto.response_of_string payload with
        | Proto.Error_r { code; _ } ->
          Alcotest.(check string) "wire oversize" "oversize" code
        | _ -> Alcotest.fail "oversize frame not rejected")
      | None -> Alcotest.fail "no response to oversize frame");
  (* Still serving after all that; stats reflect the history. *)
  (match
     Client.with_connection socket (fun fd -> Client.rpc fd Proto.Stats)
   with
  | Proto.Stats_r s ->
    Alcotest.(check bool) "uptime sane" true (s.st_uptime_s >= 0.0);
    Alcotest.(check int) "fresh so far" 2 s.st_fresh;
    Alcotest.(check bool) "simulate stage counted" true
      (List.exists
         (fun (g : Proto.stage_stat) ->
           g.tg_stage = "simulate" && g.tg_count = 2)
         s.st_stages)
  | _ -> Alcotest.fail "expected stats");
  (* Graceful shutdown: Bye, then a clean drain summary. *)
  (match
     Client.with_connection socket (fun fd -> Client.rpc fd Proto.Shutdown)
   with
  | Proto.Bye -> ()
  | _ -> Alcotest.fail "expected bye");
  let s = Domain.join d in
  Alcotest.(check int) "drain saw every request" 2 s.Server.dr_requests;
  Alcotest.(check bool) "socket removed" false (Sys.file_exists socket)

(* --- registration ---------------------------------------------------- *)

let () =
  Alcotest.run "serve"
    [ ( "proto",
        [ Alcotest.test_case "request round trip" `Quick
            test_request_roundtrip;
          Alcotest.test_case "malformed requests rejected" `Quick
            test_malformed_requests;
          Alcotest.test_case "frame round trip" `Quick test_frame_roundtrip;
          Alcotest.test_case "truncated frames rejected" `Quick
            test_truncated_frames;
          Alcotest.test_case "oversize frame rejected" `Quick
            test_oversize_frame ] );
      ( "server",
        [ Alcotest.test_case "malformed payload contained" `Quick
            test_handle_malformed;
          Alcotest.test_case "item errors contained" `Quick
            test_item_errors_contained;
          Alcotest.test_case "in-batch dedup" `Quick test_batch_dedup;
          Alcotest.test_case "metrics op reconciles" `Quick
            test_metrics_op ] );
      ( "cache",
        [ Alcotest.test_case "restart byte-identity" `Quick
            test_restart_byte_identity;
          Alcotest.test_case "corruption detected and rebuilt" `Quick
            test_cache_corruption_recovery;
          Alcotest.test_case "disk bytes accounted" `Quick
            test_rcache_disk_bytes ] );
      ( "pipeline",
        [ Alcotest.test_case "matches direct toolchain" `Quick
            test_pipeline_matches_direct;
          Alcotest.test_case "stage control" `Quick test_pipeline_ctl ] );
      ( "socket",
        [ Alcotest.test_case "end to end" `Quick test_socket_end_to_end ] )
    ]
