(* The static timing oracle's machine-checked contract:

   1. soundness — the whole-run cycle lower bound never exceeds the
      simulator's measured cycles, for every bundled workload under
      every registry stack;
   2. exactness on a closed-form example — examples/divring.mc's
      loop-carried divide ring mu(1) -> steer(2) -> sdiv(13) -> add(2)
      must bound the loop's II at exactly 18;
   3. byte-stable diagnostics — golden renderings for the example
      programs, enabled by Diag's total (severity, task, node, code,
      text) order;
   4. admission-filter transparency — a timing-pruned exploration
      reproduces the unpruned run's frontier and best byte-for-byte
      while simulating strictly less. *)

module G = Muir_core.Graph
module A = Muir_analysis
module W = Muir_workloads.Workloads
module Stacks = Muir_opt.Stacks

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* Resolve bundled examples whether we run from the repo root, from
   test/, or from dune's sandbox (_build/default/test). *)
let example_path name =
  let candidates =
    [ Filename.concat "examples" name;
      Filename.concat "../examples" name;
      Filename.concat "../../examples" name;
      Filename.concat "../../../examples" name ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None -> Alcotest.fail ("cannot locate examples/" ^ name)

let compile_example name =
  Muir_frontend.Frontend.compile (read_file (example_path name))

(* --- 1. soundness sweep ------------------------------------------- *)

let test_soundness_sweep () =
  List.iter
    (fun (w : W.t) ->
      List.iter
        (fun (s : Stacks.spec) ->
          let p = W.program w in
          let c = Muir_core.Build.circuit ~name:w.wname p in
          let _ = Muir_opt.Pass.run_all (s.sp_build s.sp_defaults) c in
          let bound = A.Timing.bound_cycles c in
          let r = Muir_sim.Sim.run c in
          let measured = r.Muir_sim.Sim.stats.total_cycles in
          Alcotest.(check bool)
            (Fmt.str "%s under %s: bound %d <= measured %d" w.wname
               s.sp_name bound measured)
            true (bound <= measured))
        Stacks.registry)
    W.all

(* --- 2. closed-form critical cycle -------------------------------- *)

let test_divring_closed_form () =
  let p = compile_example "divring.mc" in
  let c = Muir_core.Build.circuit p in
  let a = A.Timing.analyze c in
  let lp =
    List.find
      (fun (tt : A.Timing.task_timing) -> tt.tt_name = "main.loop1")
      a.tasks
  in
  (match lp.tt_ii with
  | A.Timing.Bounded { num; den; binding; _ } ->
    Alcotest.(check int) "divide-ring II numerator" 18 num;
    Alcotest.(check int) "divide-ring II denominator" 1 den;
    Alcotest.(check bool)
      "the binding is the dependence ring itself" true
      (binding = A.Timing.Bring)
  | _ -> Alcotest.fail "divide ring not bounded");
  Alcotest.(check (option int)) "static trip count" (Some 256) lp.tt_trips;
  (* The bound must also hold — and the ring must dominate it: 256
     trips through an II-18 ring can't finish faster than the
     recurrence allows. *)
  let r = Muir_sim.Sim.run c in
  Alcotest.(check bool)
    (Fmt.str "bound %d <= measured %d" a.bound
       r.Muir_sim.Sim.stats.total_cycles)
    true
    (a.bound <= r.Muir_sim.Sim.stats.total_cycles);
  Alcotest.(check bool)
    (Fmt.str "ring dominates: bound %d >= 255 traversals" a.bound)
    true
    (a.bound >= 255 * 18)

(* --- 3. golden diagnostics ---------------------------------------- *)

let render_diags example =
  let p = compile_example example in
  let c = Muir_core.Build.circuit p in
  let ds = A.Check.circuit c in
  String.concat "\n" (List.map (Fmt.str "%a" A.Diag.pp) ds)

let test_golden_fib () =
  Alcotest.(check string)
    "fib.mc diagnostics"
    "warning: fib:n13: [buffer] join n13 (merge2): paths from n1 \
     reconverge with depth 6 on port 3 but only 2 slot(s) of buffering \
     on the depth-1 path into port 2; the short path can stall 5 \
     token(s) behind the long one"
    (render_diags "fib.mc")

let test_golden_histogram_racy () =
  Alcotest.(check string)
    "histogram_racy.mc diagnostics"
    "error: main: [race] provable race: concurrent tasks spawned at bb2 \
     (@main_par0) read and write the same address in @BINS on every \
     pair of iterations\n\
     error: main: [race] provable race: concurrent tasks spawned at bb2 \
     (@main_par0) write the same address in @BINS on every pair of \
     iterations\n\
     warning: main_par0:n8: [buffer] join n8 (store@1): paths from n0 \
     reconverge with depth 4 on port 2 but only 2 slot(s) of buffering \
     on the depth-1 path into port 0; the short path can stall 3 \
     token(s) behind the long one"
    (render_diags "histogram_racy.mc")

let test_golden_divring () =
  Alcotest.(check string) "divring.mc diagnostics" ""
    (render_diags "divring.mc")

(* --- 4. pruned exploration is transparent ------------------------- *)

let frontier_fingerprint (t : Muir_dse.Explore.t) : string =
  String.concat "\n"
    (List.map Muir_dse.Explore.eval_to_json t.x_frontier)
  ^ "\nbest:"
  ^ (match t.x_best with
    | Some b -> Muir_dse.Explore.eval_to_json b
    | None -> "none")

let test_prune_transparent () =
  let subject =
    Muir_dse.Explore.source_subject ~name:"divring"
      (read_file (example_path "divring.mc"))
  in
  (* divring is the one subject with honest pruning geometry: op-fusion
     re-times the divide ring from II 18 to 16, so a fused config's
     *measured* 4112 cycles undercuts an un-fused config's *static
     bound* of 4598 — and the un-fused configs that also pay for
     banking are strictly bigger, hence provably off the frontier
     without simulating.  The first batch (the explorer evaluates in
     batches of 8) simulates the incumbents; the trailing un-fused
     banked configs then fall to the timing filter. *)
  let grid =
    [ Muir_dse.Config.v "baseline";
      Muir_dse.Config.v "cilk-stack";
      Muir_dse.Config.v ~off:[ "op-fusion" ] "cilk-stack";
      Muir_dse.Config.v ~tiles:2 "cilk-stack";
      Muir_dse.Config.v ~banks:2 "cilk-stack";
      Muir_dse.Config.v ~banks:4 "cilk-stack";
      Muir_dse.Config.v ~tiles:2 ~banks:2 "cilk-stack";
      Muir_dse.Config.v ~tiles:2 ~banks:4 "cilk-stack";
      (* --- second batch: all four are timing-prunable ------------- *)
      Muir_dse.Config.v ~banks:2 ~off:[ "op-fusion" ] "cilk-stack";
      Muir_dse.Config.v ~banks:4 ~off:[ "op-fusion" ] "cilk-stack";
      Muir_dse.Config.v ~tiles:2 ~banks:2 ~off:[ "op-fusion" ] "cilk-stack";
      Muir_dse.Config.v ~tiles:2 ~banks:4 ~off:[ "op-fusion" ] "cilk-stack" ]
  in
  (* Fresh caches on both sides: a shared cache would answer the
     second run entirely from memory and prove nothing. *)
  let plain =
    Muir_dse.Explore.run ~cache:(Muir_dse.Cache.create ()) ~grid subject
  in
  let pruned =
    Muir_dse.Explore.run ~timing_prune:true
      ~cache:(Muir_dse.Cache.create ()) ~grid subject
  in
  Alcotest.(check string)
    "identical frontier and best"
    (frontier_fingerprint plain)
    (frontier_fingerprint pruned);
  Alcotest.(check bool)
    (Fmt.str "pruning skipped at least one simulation (%d -> %d, %d \
              timing-pruned)"
       plain.x_fresh_sims pruned.x_fresh_sims pruned.x_timing_pruned)
    true
    (pruned.x_fresh_sims < plain.x_fresh_sims
    && pruned.x_timing_pruned >= 1
    && pruned.x_fresh_sims + pruned.x_timing_pruned + pruned.x_pruned
       = pruned.x_fresh_evals)

let () =
  Alcotest.run "timing"
    [ ( "soundness",
        [ Alcotest.test_case "bound <= measured on all workloads x \
                              stacks" `Slow test_soundness_sweep ] );
      ( "closed-form",
        [ Alcotest.test_case "divring II = 18/1" `Quick
            test_divring_closed_form ] );
      ( "golden",
        [ Alcotest.test_case "fib.mc" `Quick test_golden_fib;
          Alcotest.test_case "histogram_racy.mc" `Quick
            test_golden_histogram_racy;
          Alcotest.test_case "divring.mc" `Quick test_golden_divring ] );
      ( "dse",
        [ Alcotest.test_case "timing prune is transparent" `Slow
            test_prune_transparent ] ) ]
