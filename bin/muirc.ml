(* muirc — the command-line driver of the μIR toolchain.

     muirc ir       prog.mc            print the compiler IR
     muirc graph    prog.mc            print the μIR circuit
     muirc graph    model [--fuse] [--dot f]  operator graph of a model
     muirc check    prog.mc [-O pass]  static analysis (deadlock, races)
     muirc chisel   prog.mc [-o f]     emit Chisel for the accelerator
     muirc simulate prog.mc [-O pass] [--jobs N]  cycle-accurate simulation
     muirc profile  prog.mc [-O pass]  traced simulation + stall report
     muirc synth    prog.mc [-O pass]  FPGA/ASIC synthesis estimates
     muirc workload name [-O pass]     same, for a bundled benchmark
     muirc explore  name [--jobs N]    design-space exploration (Pareto)

   Passes (-O, repeatable, applied in order): the individual passes
     fusion | queuing | tiling=N | localize | spad-bank=N | cache-bank=N
     | tensor, plus every named stack of Muir_opt.Stacks.registry —
   the stack list in the help text derives from that registry. *)

open Cmdliner
module Pipeline = Muir_pipeline.Pipeline

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let compile path = Muir_frontend.Frontend.compile (read_file path)

let handle_frontend f =
  try f () with
  | e -> (
    match Muir_frontend.Frontend.describe_error e with
    | Some msg ->
      Fmt.epr "%s@." msg;
      exit 1
    | None -> raise e)

(* -O pass parsing *)
let parse_pass (s : string) : Muir_opt.Pass.t list option =
  let int_arg prefix =
    let plen = String.length prefix in
    if String.length s > plen && String.sub s 0 plen = prefix then
      int_of_string_opt (String.sub s plen (String.length s - plen))
    else None
  in
  match s with
  | "fusion" -> Some [ Muir_opt.Fusion.pass ]
  | "queuing" -> Some [ Muir_opt.Structural.queuing_pass () ]
  | "localize" -> Some [ Muir_opt.Structural.localization_pass () ]
  | "tensor" -> Some [ Muir_opt.Tensor.pass ]
  | _ when Muir_opt.Stacks.find_spec s <> None ->
    (* named stacks come from the registry, at their own defaults *)
    let spec = Option.get (Muir_opt.Stacks.find_spec s) in
    Some (spec.sp_build spec.sp_defaults)
  | _ -> (
    match int_arg "tiling=" with
    | Some n -> Some [ Muir_opt.Structural.tiling_pass ~tiles:n () ]
    | None -> (
      match int_arg "spad-bank=" with
      | Some n ->
        Some [ Muir_opt.Structural.scratchpad_banking_pass ~banks:n () ]
      | None -> (
        match int_arg "cache-bank=" with
        | Some n ->
          Some [ Muir_opt.Structural.cache_banking_pass ~banks:n () ]
        | None -> None)))

let passes_conv : Muir_opt.Pass.t list Arg.conv =
  let parse s =
    match parse_pass s with
    | Some p -> Ok p
    | None -> Error (`Msg (Fmt.str "unknown pass %S" s))
  in
  Arg.conv (parse, fun ppf ps ->
      Fmt.(list ~sep:comma string) ppf
        (List.map (fun (p : Muir_opt.Pass.t) -> p.pname) ps))

let unroll_arg =
  Arg.(
    value & flag
    & info [ "U"; "unroll" ]
        ~doc:"Apply behaviour-level loop unrolling before building μIR.")

let passes_arg =
  (* The stack-name list derives from the registry, so a stack added
     there is parsed and documented here with no further edits. *)
  Arg.(
    value
    & opt_all passes_conv []
    & info [ "O"; "pass" ] ~docv:"PASS"
        ~doc:
          (Fmt.str
             "μopt pass to apply (repeatable): fusion, queuing, tiling=N, \
              localize, spad-bank=N, cache-bank=N, tensor, or a named \
              stack: %s."
             (String.concat ", " (Muir_opt.Stacks.names ()))))

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE")

let target_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"FILE|WORKLOAD"
        ~doc:"A .mc source file, or the name of a bundled workload.")

(* All circuit-producing commands go through the staged pipeline
   (lib/muir/pipeline.ml) — the same stages the explorer and the serve
   daemon run.  File targets keep their historical behavior: no
   circuit name override, pass reports echoed to stderr. *)
let build_file ?(unroll = false) path passes : Pipeline.built =
  let b =
    Pipeline.build ~unroll ~passes:(List.concat passes)
      (Pipeline.of_file path)
  in
  List.iter (fun r -> Fmt.epr "%a@." Muir_opt.Pass.pp_report r) b.p_reports;
  b

let optimized_circuit ?unroll path passes =
  let b = build_file ?unroll path passes in
  (b.Pipeline.p_program, b.Pipeline.p_circuit)

(* check/profile accept either a source file or a bundled workload
   name; workload targets are built under their bundled name and do
   not echo pass reports. *)
let target_built ?unroll target passes : Pipeline.built =
  if Sys.file_exists target then build_file ?unroll target passes
  else
    Pipeline.build ~passes:(List.concat passes)
      (Pipeline.of_workload_name target)

(* --- commands ------------------------------------------------------ *)

let ir_cmd =
  let run path =
    handle_frontend (fun () ->
        Fmt.pr "%a@." Muir_ir.Program.pp (compile path))
  in
  Cmd.v (Cmd.info "ir" ~doc:"Print the compiler IR of a program.")
    Term.(const run $ file_arg)

let write_file f s =
  let oc = open_out f in
  output_string oc s;
  close_out oc;
  Fmt.pr "wrote %s@." f

(* muirc graph: for a source file, the μIR circuit (historical
   behavior); for a tensor-graph model (lib/nn), the operator graph
   with inferred shapes plus the fusion and lowering reports. *)
let graph_cmd =
  let target_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FILE|MODEL"
          ~doc:
            (Fmt.str
               "A .mc source file (prints the μIR circuit), or a \
                tensor-graph model — %s — (prints the operator graph, \
                shapes, and the lowering report)."
               (String.concat ", "
                  (List.map fst Muir_nn.Models.all))))
  in
  let fuse_flag =
    Arg.(
      value & flag
      & info [ "fuse" ]
          ~doc:
            "Run graph-level op fusion (fold relu into producers, \
             elide flatten) before lowering.  Models only.")
  in
  let dot_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "dot" ] ~docv:"OUT"
          ~doc:
            "Write the operator graph as a Graphviz digraph with \
             per-node output shapes.  Models only.")
  in
  let run target passes unroll fuse dot =
    handle_frontend (fun () ->
        if Sys.file_exists target then begin
          let _, c = optimized_circuit ~unroll target passes in
          Fmt.pr "%a@." Muir_core.Graph.pp_circuit c
        end
        else
          match Muir_nn.Models.find target with
          | None ->
            Fmt.epr "unknown target %s: not a file, and not one of the \
                     models (%s)@."
              target
              (String.concat ", " (List.map fst Muir_nn.Models.all));
            exit 2
          | Some build ->
            let g = build () in
            if fuse then Fmt.pr "%a@." Muir_nn.Fuse.pp_report (Muir_nn.Fuse.run g);
            Fmt.pr "@[<v>%a@]" Muir_nn.Graph.pp g;
            let _src, report = Muir_nn.Lower.lower g in
            Fmt.pr "%a@." Muir_nn.Lower.pp_report report;
            Option.iter (fun f -> write_file f (Muir_nn.Gdot.render g)) dot)
  in
  Cmd.v
    (Cmd.info "graph"
       ~doc:
         "Print the μIR circuit of a source file, or the operator \
          graph of a tensor-graph model.")
    Term.(const run $ target_arg $ passes_arg $ unroll_arg $ fuse_flag
          $ dot_arg)

let dot_cmd =
  let out =
    Arg.(value & opt (some string) None & info [ "o" ] ~docv:"OUT")
  in
  let prof_flag =
    Arg.(
      value & flag
      & info [ "profile" ]
          ~doc:
            "Simulate first and overlay the profile: nodes colored by \
             fire count and annotated with their dominant stall cause.")
  in
  let run target passes unroll out profile =
    handle_frontend (fun () ->
        let b = target_built ~unroll target passes in
        let c = b.Pipeline.p_circuit in
        let heat =
          if not profile then None
          else begin
            (* the heat overlay only needs the counter bank — no ring *)
            let r = Muir_sim.Sim.run c in
            Some
              (Muir_trace.Profile.heat
                 (Muir_trace.Profile.of_run c r.Muir_sim.Sim.counters))
          end
        in
        let dot = Muir_core.Dot.render ?heat c in
        match out with
        | None -> print_string dot
        | Some f -> write_file f dot)
  in
  Cmd.v
    (Cmd.info "dot" ~doc:"Render the μIR circuit as a Graphviz digraph.")
    Term.(const run $ target_arg $ passes_arg $ unroll_arg $ out $ prof_flag)

(* muirc check: static analyses + optional timing oracle, with a
   versioned JSON form and scriptable exit codes (0 clean / 1 errors /
   3 warnings-only under --strict). *)

let check_json_schema = "muir-check-v1"

let check_json (c : Muir_core.Graph.circuit) ~(target : string)
    (diags : Muir_analysis.Diag.t list)
    (timing : Muir_analysis.Timing.t option) ~(exit_code : int) : string =
  let module J = Muir_trace.Json in
  let module A = Muir_analysis in
  let diag_json (d : A.Diag.t) =
    J.Obj
      [ ("severity", J.Str (A.Diag.severity_to_string d.sev));
        ("code", J.Str d.code);
        ("where", J.Str d.where);
        ("node", match d.node with Some n -> J.Int n | None -> J.Null);
        ("msg", J.Str d.msg) ]
  in
  let ii_json (tt : A.Timing.task_timing) =
    match tt.tt_ii with
    | A.Timing.Unconstrained -> J.Obj [ ("kind", J.Str "unconstrained") ]
    | A.Timing.Deadlocked cyc ->
      J.Obj
        [ ("kind", J.Str "deadlock");
          ("cycle", J.Arr (List.map (fun n -> J.Int n) cyc)) ]
    | A.Timing.Bounded { num; den; cycle; binding } ->
      J.Obj
        [ ("kind", J.Str "bounded");
          ("num", J.Int num);
          ("den", J.Int den);
          ("cycle", J.Arr (List.map (fun n -> J.Int n) cycle));
          ("binding", J.Str (A.Timing.binding_name c binding));
          ("suggest", J.Str (A.Timing.suggest c binding)) ]
  in
  let task_json (tt : A.Timing.task_timing) =
    J.Obj
      [ ("task", J.Int tt.tt_tid);
        ("name", J.Str tt.tt_name);
        ("ii", ii_json tt);
        ("trips",
         match tt.tt_trips with Some t -> J.Int t | None -> J.Null);
        ("ninv", J.Int tt.tt_ninv);
        ("rmin", J.Int tt.tt_rmin);
        ("bound", J.Int tt.tt_bound);
        ("pipelined", J.Bool tt.tt_pipelined);
        ("dynamic", J.Bool tt.tt_dynamic) ]
  in
  let nerr = List.length (A.Diag.errors diags) in
  J.to_string
    (J.Obj
       [ ("schema", J.Str check_json_schema);
         ("target", J.Str target);
         ("diagnostics", J.Arr (List.map diag_json diags));
         ("errors", J.Int nerr);
         ("warnings", J.Int (List.length diags - nerr));
         ("timing",
          match timing with
          | None -> J.Null
          | Some a ->
            J.Obj
              [ ("bound", J.Int a.bound);
                ("tasks", J.Arr (List.map task_json a.tasks)) ]);
         ("exit", J.Int exit_code) ])

let check_cmd =
  let target_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FILE|WORKLOAD"
          ~doc:"A .mc source file, or the name of a bundled workload.")
  in
  let timing_flag =
    Arg.(
      value & flag
      & info [ "timing" ]
          ~doc:
            "Also run the static timing analysis: per-task steady-state \
             II lower bounds (max cycle ratio of the timed token-flow \
             graph), critical cycles, binding resources and sizing \
             suggestions, plus a whole-run cycle lower bound.  On a \
             clean circuit the suggestions are ranked against the \
             simulator's measured stall attribution.")
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"OUT"
          ~doc:
            "Write the diagnostics (and timing results, with \
             $(b,--timing)) as schema-versioned JSON.")
  in
  let strict_flag =
    Arg.(
      value & flag
      & info [ "strict" ]
          ~doc:"Exit with code 3 when there are warnings but no errors.")
  in
  let run target passes unroll timing json strict =
    handle_frontend (fun () ->
        let b = target_built ~unroll target passes in
        let c = b.Pipeline.p_circuit in
        let diags = Muir_analysis.Check.circuit c in
        List.iter (fun d -> Fmt.pr "%a@." Muir_analysis.Diag.pp d) diags;
        let nerr = List.length (Muir_analysis.Diag.errors diags) in
        let nwarn = List.length diags - nerr in
        if diags = [] then Fmt.pr "no findings@."
        else Fmt.pr "%d error(s), %d warning(s)@." nerr nwarn;
        let timing_info =
          if not timing then None
          else Some (Muir_analysis.Timing.analyze c)
        in
        Option.iter
          (fun (a : Muir_analysis.Timing.t) ->
            Fmt.pr "@.%a@." (Muir_analysis.Timing.report c) a;
            (* Rank the static suggestions against measured stalls —
               only on a clean circuit (a deadlocked one won't finish). *)
            if nerr = 0 then begin
              let r = Pipeline.simulate b in
              let prof =
                Muir_trace.Profile.of_run c r.Muir_sim.Sim.counters
              in
              let measured = Muir_trace.Profile.dominant_struct prof in
              (match measured with
              | Some s ->
                Fmt.pr "@.measured bottleneck: %s (%d stall cycles)@."
                  s.s_name s.s_stalls
              | None -> Fmt.pr "@.measured bottleneck: none (no stalls)@.");
              let suggestions =
                List.filter_map
                  (fun (tt : Muir_analysis.Timing.task_timing) ->
                    match tt.tt_ii with
                    | Muir_analysis.Timing.Bounded { binding; _ } ->
                      let hit =
                        match
                          ( measured,
                            Muir_analysis.Timing.binding_sref binding )
                        with
                        | Some s, Some sref -> s.s_ref = sref
                        | _ -> false
                      in
                      Some (hit, tt, binding)
                    | _ -> None)
                  a.tasks
              in
              let suggestions =
                List.stable_sort
                  (fun (h1, _, _) (h2, _, _) -> compare h2 h1)
                  suggestions
              in
              List.iter
                (fun (hit, (tt : Muir_analysis.Timing.task_timing), b) ->
                  Fmt.pr "suggest%s: %s binds %s — %s@."
                    (if hit then " [matches measured]" else "")
                    tt.tt_name
                    (Muir_analysis.Timing.binding_name c b)
                    (Muir_analysis.Timing.suggest c b))
                suggestions;
              Fmt.pr "static bound %d <= measured %d cycles@." a.bound
                r.Muir_sim.Sim.stats.total_cycles
            end)
          timing_info;
        let code = if nerr > 0 then 1 else if strict && nwarn > 0 then 3 else 0 in
        Option.iter
          (fun f ->
            write_file f
              (check_json c ~target diags timing_info ~exit_code:code))
          json;
        exit code)
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Run the static analyses on a program's circuit: deadlock and \
          starvation on the dataflow graph, buffer-sizing imbalance, \
          parallel-race detection on the spawn structure, and (with \
          $(b,--timing)) max-cycle-ratio throughput bounds.  Exit code 0 \
          when clean, 1 on errors, 3 on warnings-only with \
          $(b,--strict).  $(b,--json) writes machine-readable results.")
    Term.(
      const run $ target_arg $ passes_arg $ unroll_arg $ timing_flag
      $ json_arg $ strict_flag)

let chisel_cmd =
  let out =
    Arg.(value & opt (some string) None & info [ "o" ] ~docv:"OUT")
  in
  let run path passes out =
    handle_frontend (fun () ->
        let _, c = optimized_circuit path passes in
        let src = Muir_rtl.Chisel.emit c in
        match out with
        | None -> print_string src
        | Some f ->
          let oc = open_out f in
          output_string oc src;
          close_out oc;
          Fmt.pr "wrote %s@." f)
  in
  Cmd.v (Cmd.info "chisel" ~doc:"Emit Chisel for the accelerator.")
    Term.(const run $ file_arg $ passes_arg $ out)

let report_simulation (r : Muir_sim.Sim.result) =
  Fmt.pr "cycles            %d (+%d DMA) = %d@." r.stats.cycles
    r.stats.dma_cycles r.stats.total_cycles;
  Fmt.pr "node firings      %d@." r.stats.fires;
  Fmt.pr "memory requests   %d@." r.stats.mem_requests;
  List.iter
    (fun (s : Muir_sim.Memsys.struct_stats) ->
      Fmt.pr "  %-12s accesses=%d hits=%d misses=%d conflicts=%d@." s.ss_name
        s.ss_accesses s.ss_hits s.ss_misses s.ss_conflicts)
    r.stats.mem;
  List.iter
    (fun (t, n) ->
      if n > 0 then
        let util =
          match List.assoc_opt t r.stats.utilization with
          | Some u -> Fmt.str " (%.0f%% busy)" (100.0 *. u)
          | None -> ""
        in
        Fmt.pr "  task %-14s %d invocations%s@." t n util)
    r.stats.invocations

let simulate_cmd =
  let jobs_arg =
    Arg.(
      value & opt int 1
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:
            "Shard the simulation across $(docv) domains (results are \
             bit-identical for every job count).")
  in
  let run target passes unroll jobs =
    handle_frontend (fun () ->
        let b = target_built ~unroll target passes in
        let r = Pipeline.simulate ~jobs b in
        report_simulation r;
        Fmt.pr "return value      %s@."
          (Muir_ir.Types.value_to_string r.value))
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Cycle-accurate simulation of the accelerator.")
    Term.(const run $ target_arg $ passes_arg $ unroll_arg $ jobs_arg)

let profile_cmd =
  let target_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FILE|WORKLOAD"
          ~doc:"A .mc source file, or the name of a bundled workload.")
  in
  let top_arg =
    Arg.(
      value & opt int 10
      & info [ "top" ] ~docv:"N" ~doc:"Rows per report section.")
  in
  let chrome_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "chrome" ] ~docv:"OUT"
          ~doc:
            "Write the retained event window as Chrome trace JSON (open \
             in chrome://tracing or Perfetto).")
  in
  let vcd_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "vcd" ] ~docv:"OUT"
          ~doc:"Write the retained event window as a VCD waveform dump.")
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"OUT"
          ~doc:
            "Write a versioned machine-readable run report (counter \
             bank, per-structure stalls, FPGA/ASIC model outputs, \
             provenance).")
  in
  let diff_flag =
    Arg.(
      value & flag
      & info [ "diff" ]
          ~doc:
            "Treat the two positional arguments as run-report files \
             (written by --json) and print the per-structure \
             cycle-delta view instead of simulating.")
  in
  let second_arg =
    Arg.(
      value
      & pos 1 (some string) None
      & info [] ~docv:"REPORT_B"
          ~doc:"Second report file (with $(b,--diff)).")
  in
  let run target passes unroll top chrome vcd json diff second =
    handle_frontend (fun () ->
        if diff then begin
          let b =
            match second with
            | Some b -> b
            | None ->
              Fmt.epr "profile --diff needs two report files: A B@.";
              exit 2
          in
          let sa = Muir_trace.Report.load target in
          let sb = Muir_trace.Report.load b in
          match (sa.su_runs, sb.su_runs) with
          | ra :: _, rb :: _ -> Muir_trace.Report.pp_diff Fmt.stdout ra rb
          | _ ->
            Fmt.epr "report with no runs@.";
            exit 2
        end
        else begin
          let b = target_built ~unroll target passes in
          let c = b.Pipeline.p_circuit in
          let tracer = Muir_trace.Trace.create () in
          let r = Pipeline.simulate ~tracer b in
          let prof = Muir_trace.Profile.of_run c ~tracer r.counters in
          Muir_trace.Profile.report ~top Fmt.stdout prof;
          Fmt.pr "@.total cycles      %d (%d fires)@." r.stats.total_cycles
            r.stats.fires;
          Option.iter
            (fun f -> write_file f (Muir_trace.Export.chrome c tracer))
            chrome;
          Option.iter
            (fun f -> write_file f (Muir_trace.Export.vcd c tracer))
            vcd;
          Option.iter
            (fun f ->
              let m = Pipeline.model b in
              let fp = m.Pipeline.m_fpga in
              let ac = m.Pipeline.m_asic in
              let stack =
                match
                  List.map
                    (fun (p : Muir_opt.Pass.t) -> p.pname)
                    (List.concat passes)
                with
                | [] -> "baseline"
                | ps -> String.concat "," ps
              in
              let mem =
                List.map
                  (fun (s : Muir_sim.Memsys.struct_stats) ->
                    { Muir_trace.Report.m_name = s.ss_name;
                      m_accesses = s.ss_accesses; m_hits = s.ss_hits;
                      m_misses = s.ss_misses; m_conflicts = s.ss_conflicts })
                  r.stats.mem
              in
              let rep =
                Muir_trace.Report.make ~workload:c.cname ~stack
                  ~wall:r.stats.wall_seconds ~mem
                  ~fpga:
                    { Muir_trace.Report.f_mhz = fp.fr_mhz;
                      f_alms = fp.fr_alms; f_regs = fp.fr_regs;
                      f_dsps = fp.fr_dsps; f_brams = fp.fr_brams }
                  ~asic:
                    { Muir_trace.Report.a_ghz = ac.ar_ghz;
                      a_area = ac.ar_area }
                  ~total_cycles:r.stats.total_cycles c r.counters
              in
              write_file f (Muir_trace.Report.to_json rep))
            json
        end)
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Simulate with cycle-level tracing and print the bottleneck \
          report: top stalled nodes with their dominant cause, stall \
          cycles attributed to memory structures and task queues (with \
          the μopt pass that widens each), the critical path over the \
          fire-event DAG, and queue-occupancy histograms.  With \
          $(b,--json), also write a versioned machine-readable run \
          report; with $(b,--diff A B), compare two such reports \
          structure by structure.")
    Term.(
      const run $ target_arg $ passes_arg $ unroll_arg $ top_arg
      $ chrome_arg $ vcd_arg $ json_arg $ diff_flag $ second_arg)

let explore_cmd =
  let target_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FILE|WORKLOAD"
          ~doc:"A .mc source file, or the name of a bundled workload.")
  in
  let budget_arg =
    Arg.(
      value & opt int 96
      & info [ "budget-evals" ] ~docv:"N"
          ~doc:"Evaluate at most $(docv) fresh configurations.")
  in
  let area_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "area-budget" ] ~docv:"ALMS"
          ~doc:
            "Prune configurations whose modeled FPGA area exceeds \
             $(docv) ALMs before they reach the simulator.")
  in
  let jobs_arg =
    Arg.(
      value & opt int 1
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:
            "Evaluate configurations on $(docv) parallel domains.  The \
             frontier is identical for every value.")
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"OUT"
          ~doc:"Write every evaluation and the frontier as JSON.")
  in
  let seed_arg =
    Arg.(
      value & opt int 0
      & info [ "seed" ] ~docv:"S"
          ~doc:"Seed of the greedy search's diversification step.")
  in
  let strategy_arg =
    Arg.(
      value & opt string "grid"
      & info [ "strategy" ] ~docv:"NAME"
          ~doc:
            "Search strategy: $(b,grid) (exhaustive sweep) or \
             $(b,greedy) (profiler-guided hill climb).")
  in
  let tprune_flag =
    Arg.(
      value & flag
      & info [ "timing-prune" ]
          ~doc:
            "Skip simulating configurations whose static timing lower \
             bound is already strictly dominated by a simulated point \
             (same frontier, fewer simulations).")
  in
  let metrics_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-file" ] ~docv:"OUT"
          ~doc:
            "Write the run's telemetry (evals, sims, prunes, cache \
             traffic, per-stage latency histograms — the \
             $(b,muir_dse_*) families) as Prometheus text.")
  in
  let run target budget area jobs json seed strat tprune metrics_file =
    handle_frontend (fun () ->
        let subject =
          if Sys.file_exists target then
            Muir_dse.Explore.source_subject
              ~name:(Filename.remove_extension (Filename.basename target))
              (read_file target)
          else
            Muir_dse.Explore.workload_subject
              (Muir_workloads.Workloads.find target)
        in
        let strategy =
          match Muir_dse.Explore.strategy_of_string strat with
          | Some s -> s
          | None ->
            Fmt.epr "unknown strategy %S (have: grid, greedy)@." strat;
            exit 1
        in
        let obs =
          Option.map (fun _ -> Muir_obs.Obs.create ()) metrics_file
        in
        let t =
          Muir_dse.Explore.run ~strategy ~jobs ~budget_evals:budget
            ?area_budget:area ~timing_prune:tprune ~seed ?obs subject
        in
        Muir_dse.Explore.pp_result Fmt.stdout t;
        Option.iter
          (fun f -> write_file f (Muir_dse.Explore.to_json t))
          json;
        Option.iter
          (fun f ->
            let obs = Option.get obs in
            write_file f
              (Muir_obs.Prom.render obs.Muir_obs.Obs.o_metrics))
          metrics_file)
  in
  Cmd.v
    (Cmd.info "explore"
       ~doc:
         "Design-space exploration: enumerate μopt stacks × tiling \
          width × banking (× per-pass on/off), evaluate each with the \
          cycle-accurate simulator and the synthesis models on a \
          parallel domain pool with a content-keyed memo cache, and \
          print the cycles-vs-area Pareto frontier.")
    Term.(
      const run $ target_arg $ budget_arg $ area_arg $ jobs_arg
      $ json_arg $ seed_arg $ strategy_arg $ tprune_flag $ metrics_arg)

let synth_cmd =
  let run path passes =
    handle_frontend (fun () ->
        let _, c = optimized_circuit path passes in
        let d = Muir_rtl.Lower.design c in
        let comps, nets = Muir_rtl.Rtl.size d in
        Fmt.pr "design: %d components, %d nets@." comps nets;
        Fmt.pr "@[<v2>histogram:@,%a@]@." Muir_rtl.Rtl.pp_histogram d;
        Fmt.pr "FPGA (Arria-10-class): %a@." Muir_model.Model.pp_fpga
          (Muir_model.Model.fpga d);
        Fmt.pr "ASIC (28 nm):          %a@." Muir_model.Model.pp_asic
          (Muir_model.Model.asic d))
  in
  Cmd.v (Cmd.info "synth" ~doc:"FPGA/ASIC synthesis estimates.")
    Term.(const run $ file_arg $ passes_arg)

let workload_cmd =
  let name_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"NAME")
  in
  let list_flag = Arg.(value & flag & info [ "list" ] ~doc:"List workloads.") in
  let run name passes listing =
    if listing then
      List.iter
        (fun (w : Muir_workloads.Workloads.t) ->
          Fmt.pr "%-10s %-22s %s@." w.wname
            (Muir_workloads.Workloads.category_to_string w.category)
            w.description)
        Muir_workloads.Workloads.all
    else begin
      let w = Muir_workloads.Workloads.find name in
      let p = Muir_workloads.Workloads.program w in
      let c = Muir_core.Build.circuit ~name:w.wname p in
      let _ = Muir_opt.Pass.run_all (List.concat passes) c in
      let r = Muir_sim.Sim.run c in
      report_simulation r;
      let cpu = Muir_cpu.Arm.run p in
      let hls = Muir_hls.Hls.run p in
      Fmt.pr "ARM A9 model      %.0f cycles @ 1 GHz@." cpu.cpu_cycles;
      Fmt.pr "HLS model         %.0f cycles@." hls.hls_cycles
    end
  in
  Cmd.v
    (Cmd.info "workload"
       ~doc:"Run a bundled benchmark (try --list with any name).")
    Term.(const run $ name_arg $ passes_arg $ list_flag)

(* --- version: every schema/provenance fact in one place ------------ *)

let muirc_version = "1.0.0"

let version_cmd =
  let run () =
    let p = Muir_trace.Report.provenance () in
    Fmt.pr "muirc %s@." muirc_version;
    Fmt.pr "git rev         %s@." p.pv_git_rev;
    Fmt.pr "dune profile    %s@." p.pv_profile;
    Fmt.pr "report schema   %d@." p.pv_schema;
    Fmt.pr "check schema    %s@." check_json_schema;
    Fmt.pr "serve protocol  %s@." Muir_serve.Proto.version
  in
  Cmd.v
    (Cmd.info "version"
       ~doc:
         "Print the toolchain's build provenance (git revision, dune \
          profile) and every wire/schema version — the run-report \
          schema, the $(b,muirc check --json) schema, and the serve \
          socket protocol — in one place.")
    Term.(const run $ const ())

(* --- the serve daemon and its client ------------------------------- *)

let default_socket =
  Filename.concat (Filename.get_temp_dir_name ()) "muirc-serve.sock"

let socket_arg =
  Arg.(
    value
    & opt string default_socket
    & info [ "socket" ] ~docv:"PATH"
        ~doc:"Unix-domain socket path the daemon listens on.")

let serve_cmd =
  let cache_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "cache-dir" ] ~docv:"DIR"
          ~doc:
            "Persist the content-addressed result cache in $(docv) \
             (created if missing); a restarted daemon warms from it, so \
             repeated batches cost zero fresh simulations across \
             restarts.  Without this flag the cache is memory-only.")
  in
  let jobs_arg =
    Arg.(
      value & opt int 1
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:"Evaluate each batch's fresh items on $(docv) domains.")
  in
  let queue_arg =
    Arg.(
      value & opt int 256
      & info [ "queue" ] ~docv:"N"
          ~doc:
            "Admission bound: reject a run request (with a structured \
             $(b,overloaded) error) when accepting it would put more \
             than $(docv) items in the queue.")
  in
  let log_json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "log-json" ] ~docv:"FILE"
          ~doc:
            "Write one structured JSON record per daemon event (accept, \
             admit, evaluate, reject, drain — leveled, with monotonic \
             sequence numbers) to $(docv); $(b,-) writes to stderr.")
  in
  let metrics_file_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-file" ] ~docv:"FILE"
          ~doc:
            "Keep an atomically replaced Prometheus text snapshot of \
             the daemon's metrics current at $(docv) (every ~2s and at \
             drain), for sidecar scrapers that cannot speak the socket \
             protocol.")
  in
  let trace_file_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-file" ] ~docv:"FILE"
          ~doc:
            "At drain, write the retained per-item request spans (with \
             per-stage segments) as Chrome trace JSON to $(docv).")
  in
  let run socket cache_dir jobs queue log_json metrics_file trace_file =
    let log =
      match log_json with
      | None -> None
      | Some "-" -> Some (Muir_obs.Log.create (Muir_obs.Log.to_channel stderr))
      | Some f ->
        Some (Muir_obs.Log.create (Muir_obs.Log.to_channel (open_out f)))
    in
    let obs = Muir_obs.Obs.create ?log () in
    let t =
      Muir_serve.Server.create ?cache_dir ~jobs ~queue_cap:queue ~obs ()
    in
    let drain _ = Muir_serve.Server.request_drain t in
    Sys.set_signal Sys.sigterm (Sys.Signal_handle drain);
    Sys.set_signal Sys.sigint (Sys.Signal_handle drain);
    Fmt.pr "muirc serve: listening on %s (jobs %d, queue cap %d%s)@." socket
      jobs queue
      (match cache_dir with
      | Some d -> ", cache " ^ d
      | None -> ", memory-only cache");
    let s =
      Muir_serve.Server.serve ?metrics_file ?trace_file ~socket t
    in
    Fmt.pr
      "muirc serve: drained — %d request(s), %d ok, %d error(s), %d \
       fresh, %d cached@."
      s.dr_requests s.dr_ok s.dr_errors s.dr_fresh s.dr_cached
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the persistent compile-and-simulate daemon: batched \
          requests (bundled workloads or inline source × μopt stack × \
          sim parameters) over length-prefixed JSON on a Unix-domain \
          socket, evaluated through the staged pipeline on a domain \
          pool, with a content-addressed result cache ($(b,--cache-dir) \
          makes it survive restarts), a bounded admission queue, \
          per-request deadlines, and graceful SIGINT/SIGTERM drain.  \
          Telemetry: $(b,--log-json) structured event logs, \
          $(b,--metrics-file) Prometheus snapshots, $(b,--trace-file) \
          Chrome request spans, plus the $(b,metrics) socket op.")
    Term.(
      const run $ socket_arg $ cache_arg $ jobs_arg $ queue_arg
      $ log_json_arg $ metrics_file_arg $ trace_file_arg)

let client_cmd =
  let targets_arg =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"FILE|WORKLOAD"
          ~doc:
            ".mc source files (sent inline) or bundled workload names; \
             each becomes one item of the batch.")
  in
  let stack_arg =
    Arg.(
      value & opt string "baseline"
      & info [ "stack" ] ~docv:"NAME"
          ~doc:"μopt registry stack for every positional target.")
  in
  let tiles_arg =
    Arg.(
      value & opt (some int) None
      & info [ "tiles" ] ~docv:"N" ~doc:"Override the stack's tile count.")
  in
  let banks_arg =
    Arg.(
      value & opt (some int) None
      & info [ "banks" ] ~docv:"N" ~doc:"Override the stack's bank count.")
  in
  let deadline_arg =
    Arg.(
      value & opt (some int) None
      & info [ "deadline-ms" ] ~docv:"MS"
          ~doc:
            "Per-item deadline, measured from admission and enforced at \
             pipeline stage boundaries.")
  in
  let jobs_arg =
    Arg.(
      value & opt int 1
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:
            "Simulator domains per item (results are bit-identical for \
             every value, so this never changes what is cached).")
  in
  let batch_arg =
    Arg.(
      value & opt (some string) None
      & info [ "batch" ] ~docv:"FILE"
          ~doc:
            "Read the batch from a JSON file of the form \
             {\"items\":[...]} instead of building it from positional \
             targets.")
  in
  let stats_flag =
    Arg.(
      value & flag
      & info [ "stats" ]
          ~doc:
            "Ask the daemon for its counters (uptime, queue depth, \
             cache hit/miss/entry counts, per-stage latency) instead of \
             running a batch.")
  in
  let metrics_flag =
    Arg.(
      value & flag
      & info [ "metrics" ]
          ~doc:
            "Ask the daemon for its Prometheus text exposition, \
             validate it with the strict parser (exit 2 on a malformed \
             scrape), and print it verbatim.")
  in
  let shutdown_flag =
    Arg.(
      value & flag
      & info [ "shutdown" ] ~doc:"Ask the daemon to drain and exit.")
  in
  let json_arg =
    Arg.(
      value & opt (some string) None
      & info [ "json" ] ~docv:"OUT"
          ~doc:"Write the daemon's full response as JSON.")
  in
  let module J = Muir_trace.Json in
  let module P = Muir_serve.Proto in
  let run socket targets stack tiles banks deadline jobs batch stats
      metrics shutdown json =
    let write_json resp =
      Option.iter
        (fun f -> write_file f (J.to_string (P.response_to_json resp)))
        json
    in
    let fail_transport msg =
      Fmt.epr "muirc client: %s@." msg;
      exit 2
    in
    try
      if stats then
        Muir_serve.Client.with_connection socket (fun fd ->
            match Muir_serve.Client.rpc fd P.Stats with
            | P.Stats_r s as resp ->
              write_json resp;
              Fmt.pr
                "uptime %.1fs  queue %d%s@.%d request(s): %d items, %d \
                 ok, %d error(s), %d fresh, %d cached@.cache: %d hits, \
                 %d misses, %d entries, %d corrupt discarded@."
                s.st_uptime_s s.st_queue_depth
                (if s.st_draining then " (draining)" else "")
                s.st_requests s.st_items s.st_ok s.st_errors s.st_fresh
                s.st_cached s.st_cache_hits s.st_cache_misses
                s.st_cache_entries s.st_cache_corrupt;
              List.iter
                (fun (t : P.stage_stat) ->
                  Fmt.pr "  %-9s %6d run(s)  %8.3fs@." t.tg_stage t.tg_count
                    t.tg_seconds)
                s.st_stages
            | resp ->
              write_json resp;
              fail_transport "unexpected response to stats")
      else if metrics then
        Muir_serve.Client.with_connection socket (fun fd ->
            match Muir_serve.Client.rpc fd P.Metrics with
            | P.Metrics_r text as resp -> (
              write_json resp;
              match Muir_obs.Prom.parse text with
              | _ -> print_string text
              | exception Muir_obs.Prom.Invalid m ->
                Fmt.epr "muirc client: malformed metrics exposition: %s@." m;
                exit 2)
            | resp ->
              write_json resp;
              fail_transport "unexpected response to metrics")
      else if shutdown then
        Muir_serve.Client.with_connection socket (fun fd ->
            match Muir_serve.Client.rpc fd P.Shutdown with
            | P.Bye -> Fmt.pr "daemon draining@."
            | _ -> fail_transport "unexpected response to shutdown")
      else begin
        let items =
          match batch with
          | Some f -> (
            let j =
              try J.parse (read_file f)
              with J.Parse_error e ->
                Fmt.epr "%s: invalid JSON: %s@." f e;
                exit 2
            in
            match J.member "items" j with
            | Some items -> (
              try P.items_of_json items
              with P.Bad_request m ->
                Fmt.epr "%s: %s@." f m;
                exit 2)
            | None ->
              Fmt.epr "%s: no \"items\" array@." f;
              exit 2)
          | None ->
            List.mapi
              (fun i target ->
                let src =
                  if Sys.file_exists target then
                    P.Inline
                      { name =
                          Filename.remove_extension
                            (Filename.basename target);
                        text = read_file target }
                  else P.Workload target
                in
                { P.it_id = i; it_src = src; it_stack = stack;
                  it_tiles = tiles; it_banks = banks; it_off = [];
                  it_deadline_ms = deadline; it_jobs = jobs })
              targets
        in
        if items = [] then begin
          Fmt.epr "muirc client: nothing to run (no targets, no --batch)@.";
          exit 2
        end;
        Muir_serve.Client.with_connection socket (fun fd ->
            match Muir_serve.Client.rpc fd (P.Run items) with
            | P.Results { results; fresh; cached; errors } as resp ->
              write_json resp;
              List.iter
                (fun (r : P.result_) ->
                  match r.rs_outcome with
                  | P.Ok_ { cached; report } ->
                    let get k j =
                      match Option.bind j (J.member k) with
                      | Some (J.Int n) -> string_of_int n
                      | Some (J.Str s) -> s
                      | _ -> "?"
                    in
                    let run_j = J.member "run" report in
                    Fmt.pr "  #%-3d %-12s %-24s %10s cycles  [%s]@."
                      r.rs_id
                      (get "workload" run_j)
                      (get "stack" run_j)
                      (get "cycles" run_j)
                      (if cached then "cached" else "fresh")
                  | P.Err { code; stage; msg } ->
                    Fmt.pr "  #%-3d ERROR %s%s: %s@." r.rs_id code
                      (match stage with
                      | Some s -> " at " ^ s
                      | None -> "")
                      msg)
                results;
              Fmt.pr "%d ok (%d fresh, %d cached), %d error(s)@."
                (List.length results - errors)
                fresh cached errors;
              if errors > 0 then exit 1
            | P.Error_r { code; msg } as resp ->
              write_json resp;
              Fmt.epr "muirc client: daemon rejected the request: %s (%s)@."
                msg code;
              exit 1
            | resp ->
              write_json resp;
              fail_transport "unexpected response to run")
      end
    with Muir_serve.Client.Transport m -> fail_transport m
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:
         "Send a batch to a running $(b,muirc serve) daemon and print \
          the per-item results; also $(b,--stats), $(b,--metrics) and \
          $(b,--shutdown).")
    Term.(
      const run $ socket_arg $ targets_arg $ stack_arg $ tiles_arg
      $ banks_arg $ deadline_arg $ jobs_arg $ batch_arg $ stats_flag
      $ metrics_flag $ shutdown_flag $ json_arg)

(* --- muirc top: a live terminal view of a running daemon ----------- *)

let top_cmd =
  let module P = Muir_serve.Proto in
  let module Pr = Muir_obs.Prom in
  let socket_pos =
    Arg.(
      value
      & pos 0 string default_socket
      & info [] ~docv:"SOCKET"
          ~doc:"Unix-domain socket of the daemon to watch.")
  in
  let interval_arg =
    Arg.(
      value & opt float 2.0
      & info [ "interval"; "n" ] ~docv:"SECONDS" ~doc:"Refresh period.")
  in
  let once_flag =
    Arg.(
      value & flag
      & info [ "once" ]
          ~doc:"Print a single frame and exit (no screen clearing).")
  in
  let ms h q = 1000.0 *. Pr.quantile h q in
  let pp_lat ppf = function
    | None -> Fmt.pf ppf "p50      -    p99      -"
    | Some h ->
      Fmt.pf ppf "p50 %8.2fms  p99 %8.2fms" (ms h 0.5) (ms h 0.99)
  in
  let render socket (s : P.stats_payload) (p : Pr.parsed) =
    let hist name labels = Pr.find_histogram p ~name ~labels () in
    Fmt.pr "muirc top — %s   uptime %.0fs   queue %d%s@." socket
      s.st_uptime_s s.st_queue_depth
      (if s.st_draining then "   DRAINING" else "");
    Fmt.pr "requests %d   items %d   ok %d   errors %d   fresh %d   \
            cached %d@."
      s.st_requests s.st_items s.st_ok s.st_errors s.st_fresh s.st_cached;
    let probes = s.st_cache_hits + s.st_cache_misses in
    Fmt.pr "cache    hits %d   misses %d   entries %d   disk %dB   \
            corrupt %d   hit rate %s@."
      s.st_cache_hits s.st_cache_misses s.st_cache_entries
      s.st_cache_disk_bytes s.st_cache_corrupt
      (if probes = 0 then "-"
       else Fmt.str "%.0f%%"
              (100.0 *. float_of_int s.st_cache_hits /. float_of_int probes));
    Fmt.pr "@.item latency   fresh:  %a@." pp_lat
      (hist "muir_serve_item_seconds" [ ("cached", "false") ]);
    Fmt.pr "               cached:  %a@." pp_lat
      (hist "muir_serve_item_seconds" [ ("cached", "true") ]);
    Fmt.pr "@.  %-9s %8s %10s %12s %12s@." "stage" "runs" "seconds"
      "p50" "p99";
    List.iter
      (fun (t : P.stage_stat) ->
        match hist "muir_serve_stage_seconds" [ ("stage", t.tg_stage) ] with
        | Some h when h.Pr.hd_count > 0 ->
          Fmt.pr "  %-9s %8d %10.3f %10.2fms %10.2fms@." t.tg_stage
            t.tg_count t.tg_seconds (ms h 0.5) (ms h 0.99)
        | _ ->
          Fmt.pr "  %-9s %8d %10.3f %12s %12s@." t.tg_stage t.tg_count
            t.tg_seconds "-" "-")
      s.st_stages;
    let errs =
      List.filter_map
        (fun (sm : Pr.sample_line) ->
          if sm.Pr.s_name = "muir_serve_errors_total" && sm.Pr.s_value > 0.0
          then
            Some
              ( Option.value ~default:"?" (List.assoc_opt "code" sm.Pr.s_labels),
                int_of_float sm.Pr.s_value )
          else None)
        p.Pr.p_samples
      |> List.sort (fun (_, a) (_, b) -> compare b a)
    in
    if errs <> [] then begin
      Fmt.pr "@.errors by code:@.";
      List.iter (fun (c, n) -> Fmt.pr "  %-16s %d@." c n) errs
    end
  in
  let run socket interval once =
    let clear () = if not once then Fmt.pr "\027[2J\027[H" in
    let tick () =
      match
        Muir_serve.Client.with_connection socket (fun fd ->
            let s = Muir_serve.Client.rpc fd P.Stats in
            let m = Muir_serve.Client.rpc fd P.Metrics in
            (s, m))
      with
      | P.Stats_r s, P.Metrics_r text -> (
        match Pr.parse text with
        | p ->
          clear ();
          render socket s p
        | exception Pr.Invalid m ->
          Fmt.epr "muirc top: malformed metrics exposition: %s@." m;
          exit 2)
      | _ ->
        Fmt.epr "muirc top: unexpected response@.";
        exit 2
      | exception Muir_serve.Client.Transport m ->
        if once then begin
          Fmt.epr "muirc top: %s@." m;
          exit 2
        end
        else begin
          clear ();
          Fmt.pr "muirc top: daemon unreachable (%s); retrying@." m
        end
    in
    if once then tick ()
    else
      while true do
        tick ();
        Unix.sleepf interval
      done
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Live terminal view of a running $(b,muirc serve) daemon: \
          queue depth, cache hit rate, p50/p99 item latency (fresh vs \
          cached), and the per-stage latency breakdown, refreshed every \
          $(b,--interval) seconds ($(b,--once) prints a single frame).")
    Term.(const run $ socket_pos $ interval_arg $ once_flag)

let main =
  Cmd.group
    (Cmd.info "muirc"
       ~version:
         (let p = Muir_trace.Report.provenance () in
          Fmt.str "%s (rev %s, %s profile)" muirc_version p.pv_git_rev
            p.pv_profile)
       ~doc:
         "μIR: an intermediate representation for transforming and \
          optimizing the microarchitecture of application accelerators.")
    [ ir_cmd; graph_cmd; check_cmd; dot_cmd; chisel_cmd; simulate_cmd;
      profile_cmd; explore_cmd; synth_cmd; workload_cmd; version_cmd;
      serve_cmd; client_cmd; top_cmd ]

let () = exit (Cmd.eval main)
