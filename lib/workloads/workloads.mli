(** The benchmark programs of the paper's evaluation: Polybench /
    Machsuite loop nests, the Cilk task-parallel set, Tensorflow-
    derived layers, and the in-house tensor kernels — written in the
    mini-language with deterministic datasets — plus whole-network
    models compiled through the tensor-graph frontend ([Muir_nn]). *)

type category = Poly | Cilk | Tf | Inhouse | Model

val category_to_string : category -> string

type t = {
  wname : string;
  category : category;
  fp : bool;          (** floating-point workload (Table 2's F marker) *)
  tensor : bool;      (** tensor-intrinsic workload ([T] marker) *)
  source : string;    (** mini-language program text *)
  inits : (string * Muir_ir.Types.value array) list;
  outputs : string list;  (** arrays checked against the golden model *)
  description : string;
}

val all : t list
(** Every bundled workload: the 22 kernels plus the tensor-graph
    models ([mlp], [lenet]). *)

val find : string -> t
(** @raise Invalid_argument for unknown names *)

val nn_workload : ?fused:bool -> string -> t
(** Lower a model of [Muir_nn.Models] to a workload.  [fused]
    (default true) runs graph-level op fusion first; [~fused:false]
    yields the one-task-per-operator lowering, registered under
    ["<name>-unfused"], for the fusion experiment. *)

val program : t -> Muir_ir.Program.t
(** Compile the workload and attach its dataset. *)
