(** The benchmark programs of the paper's evaluation (§5–§6):
    Polybench/Machsuite loop nests, the Cilk task-parallel set, the
    Tensorflow-derived layers, and the in-house tensor kernels — all
    written in the mini-language, with deterministic datasets and the
    list of output arrays used for golden checking. *)

open Muir_ir.Types

type category = Poly | Cilk | Tf | Inhouse | Model

let category_to_string = function
  | Poly -> "Polybench/Machsuite"
  | Cilk -> "Cilk"
  | Tf -> "Tensorflow"
  | Inhouse -> "In-house"
  | Model -> "Tensor-graph model"

type t = {
  wname : string;
  category : category;
  fp : bool;          (** floating-point workload (Table 2's F marker) *)
  tensor : bool;      (** tensor-intrinsic workload ([T] marker) *)
  source : string;
  inits : (string * value array) list;
  outputs : string list;
  description : string;
}

(* ------------------------------------------------------------------ *)
(* Polybench / Machsuite                                               *)

let gemm_n = 16

let gemm =
  { wname = "gemm";
    category = Poly;
    fp = true;
    tensor = false;
    description = "dense matrix multiply C = A*B";
    source =
      Fmt.str
        {|
global float A[%d]; global float B[%d]; global float C[%d];
func void main() {
  for (int i = 0; i < %d; i = i + 1) {
    for (int j = 0; j < %d; j = j + 1) {
      float acc = 0.0;
      for (int k = 0; k < %d; k = k + 1) {
        acc = acc + A[i*%d+k] * B[k*%d+j];
      }
      C[i*%d+j] = acc;
    }
  }
}|}
        (gemm_n * gemm_n) (gemm_n * gemm_n) (gemm_n * gemm_n) gemm_n gemm_n
        gemm_n gemm_n gemm_n gemm_n;
    inits =
      [ ("A", Data.floats ~seed:11 (gemm_n * gemm_n));
        ("B", Data.floats ~seed:12 (gemm_n * gemm_n)) ];
    outputs = [ "C" ] }

let covar_n = 12 (* samples *)
let covar_m = 12 (* variables *)

let covar =
  { wname = "covar";
    category = Poly;
    fp = true;
    tensor = false;
    description = "covariance matrix (mean subtraction + symmetric product)";
    source =
      Fmt.str
        {|
global float DATA[%d]; global float MEAN[%d]; global float COV[%d];
func void main() {
  for (int j = 0; j < %d; j = j + 1) {
    float s = 0.0;
    for (int i = 0; i < %d; i = i + 1) { s = s + DATA[i*%d+j]; }
    MEAN[j] = s / %d.0;
  }
  for (int i = 0; i < %d; i = i + 1) {
    for (int j = 0; j < %d; j = j + 1) {
      DATA[i*%d+j] = DATA[i*%d+j] - MEAN[j];
    }
  }
  for (int j1 = 0; j1 < %d; j1 = j1 + 1) {
    for (int j2 = j1; j2 < %d; j2 = j2 + 1) {
      float s = 0.0;
      for (int i = 0; i < %d; i = i + 1) {
        s = s + DATA[i*%d+j1] * DATA[i*%d+j2];
      }
      float c = s / %d.0;
      COV[j1*%d+j2] = c;
      COV[j2*%d+j1] = c;
    }
  }
}|}
        (covar_n * covar_m) covar_m (covar_m * covar_m) covar_m covar_n
        covar_m covar_n covar_n covar_m covar_m covar_m covar_m covar_m
        covar_n covar_m covar_m (covar_n - 1) covar_m covar_m;
    inits = [ ("DATA", Data.floats ~seed:21 (covar_n * covar_m)) ];
    outputs = [ "MEAN"; "COV" ] }

let fft_n = 64
let fft_stages = 6

let fft =
  let wlr, wli = Data.twiddle_steps fft_n in
  { wname = "fft";
    category = Poly;
    fp = true;
    tensor = false;
    description = "iterative radix-2 FFT (in place, bit-reversed input)";
    source =
      Fmt.str
        {|
global float RE[%d]; global float IM[%d];
global float TRE[%d]; global float TIM[%d];
global int REV[%d];
global float WLR[%d]; global float WLI[%d];
func void main() {
  for (int i = 0; i < %d; i = i + 1) {
    TRE[i] = RE[REV[i]];
    TIM[i] = IM[REV[i]];
  }
  for (int i = 0; i < %d; i = i + 1) {
    RE[i] = TRE[i];
    IM[i] = TIM[i];
  }
  for (int s = 0; s < %d; s = s + 1) {
    int len = 1 << (s + 1);
    int half = len / 2;
    for (int st = 0; st < %d; st = st + len) {
      float wr = 1.0;
      float wi = 0.0;
      for (int j = 0; j < half; j = j + 1) {
        int a = st + j;
        int b = a + half;
        float ur = RE[a]; float ui = IM[a];
        float vr = RE[b] * wr - IM[b] * wi;
        float vi = RE[b] * wi + IM[b] * wr;
        RE[a] = ur + vr; IM[a] = ui + vi;
        RE[b] = ur - vr; IM[b] = ui - vi;
        float nwr = wr * WLR[s] - wi * WLI[s];
        wi = wr * WLI[s] + wi * WLR[s];
        wr = nwr;
      }
    }
  }
}|}
        fft_n fft_n fft_n fft_n fft_n fft_stages fft_stages fft_n fft_n
        fft_stages fft_n;
    inits =
      [ ("RE", Data.floats ~seed:31 fft_n);
        ("IM", Data.floats ~seed:32 fft_n);
        ("REV", Data.bitrev_table fft_n);
        ("WLR", wlr); ("WLI", wli) ];
    outputs = [ "RE"; "IM" ] }

(** Double-buffered FFT: identical math to {!fft}, but each stage
    reads one buffer and writes the other.  The in-place version's
    same-array load/store pattern forces the conservative memory-order
    chains to serialize every butterfly; ping-pong buffering is how a
    hardware designer would actually structure it (and the paper's
    FFT presumably did). *)
let fft_buf =
  let wr, wi = Data.twiddle_table fft_n in
  let stage_fn name src dst =
    Fmt.str
      {|
func void %s(int s) {
  int len = 1 << (s + 1);
  int half = len / 2;
  int stride = %d / len;
  for (int j = 0; j < half; j = j + 1) {
    float wr = WR[j * stride];
    float wi = WI[j * stride];
    for (int st = 0; st < %d; st = st + len) {
      int a = st + j;
      int b = a + half;
      float ur = %sR[a]; float ui = %sI[a];
      float xr = %sR[b]; float xi = %sI[b];
      float vr = xr * wr - xi * wi;
      float vi = xr * wi + xi * wr;
      %sR[a] = ur + vr; %sI[a] = ui + vi;
      %sR[b] = ur - vr; %sI[b] = ui - vi;
    }
  }
}|}
      name fft_n fft_n src src src src dst dst dst dst
  in
  { wname = "fft-buf";
    category = Poly;
    fp = true;
    tensor = false;
    description = "radix-2 FFT with ping-pong stage buffers + twiddle ROM";
    source =
      Fmt.str
        {|
global float AR[%d]; global float AI[%d];
global float BR[%d]; global float BI[%d];
global int REV[%d];
global float WR[%d]; global float WI[%d];
%s
%s
func void main() {
  for (int i = 0; i < %d; i = i + 1) {
    BR[i] = AR[REV[i]];
    BI[i] = AI[REV[i]];
  }
  for (int i = 0; i < %d; i = i + 1) {
    AR[i] = BR[i];
    AI[i] = BI[i];
  }
  for (int s = 0; s < %d; s = s + 1) {
    if (s %% 2 == 0) { stage_ab(s); } else { stage_ba(s); }
  }
}|}
        fft_n fft_n fft_n fft_n fft_n (fft_n / 2) (fft_n / 2)
        (stage_fn "stage_ab" "A" "B")
        (stage_fn "stage_ba" "B" "A")
        fft_n fft_n fft_stages;
    inits =
      [ ("AR", Data.floats ~seed:31 fft_n);
        ("AI", Data.floats ~seed:32 fft_n);
        ("REV", Data.bitrev_table fft_n);
        ("WR", wr); ("WI", wi) ];
    (* after 6 stages (even count) the result lands back in AR/AI *)
    outputs = [ "AR"; "AI" ] }

let spmv_rows = 64
let spmv_nnz = 4

let spmv =
  let rowptr, colidx, vals =
    Data.csr ~rows:spmv_rows ~cols:spmv_rows ~nnz_per_row:spmv_nnz ()
  in
  { wname = "spmv";
    category = Poly;
    fp = true;
    tensor = false;
    description = "CSR sparse matrix-vector product";
    source =
      Fmt.str
        {|
global int ROWPTR[%d]; global int COLS[%d]; global float VALS[%d];
global float X[%d]; global float Y[%d];
func void main() {
  for (int r = 0; r < %d; r = r + 1) {
    float acc = 0.0;
    for (int k = ROWPTR[r]; k < ROWPTR[r+1]; k = k + 1) {
      acc = acc + VALS[k] * X[COLS[k]];
    }
    Y[r] = acc;
  }
}|}
        (spmv_rows + 1) (spmv_rows * spmv_nnz) (spmv_rows * spmv_nnz)
        spmv_rows spmv_rows spmv_rows;
    inits =
      [ ("ROWPTR", rowptr); ("COLS", colidx); ("VALS", vals);
        ("X", Data.floats ~seed:41 spmv_rows) ];
    outputs = [ "Y" ] }

let mm2_n = 12

let mm2 =
  let n = mm2_n in
  let nn = n * n in
  { wname = "2mm";
    category = Poly;
    fp = true;
    tensor = false;
    description = "two chained matrix multiplies E = (A*B)*C";
    source =
      Fmt.str
        {|
global float A[%d]; global float B[%d]; global float C[%d];
global float D[%d]; global float E[%d];
func void main() {
  for (int i = 0; i < %d; i = i + 1) {
    for (int j = 0; j < %d; j = j + 1) {
      float acc = 0.0;
      for (int k = 0; k < %d; k = k + 1) { acc = acc + A[i*%d+k] * B[k*%d+j]; }
      D[i*%d+j] = acc;
    }
  }
  for (int i = 0; i < %d; i = i + 1) {
    for (int j = 0; j < %d; j = j + 1) {
      float acc = 0.0;
      for (int k = 0; k < %d; k = k + 1) { acc = acc + D[i*%d+k] * C[k*%d+j]; }
      E[i*%d+j] = acc;
    }
  }
}|}
        nn nn nn nn nn n n n n n n n n n n n n;
    inits =
      [ ("A", Data.floats ~seed:51 nn); ("B", Data.floats ~seed:52 nn);
        ("C", Data.floats ~seed:53 nn) ];
    outputs = [ "D"; "E" ] }

let mm3_n = 10

let mm3 =
  let n = mm3_n in
  let nn = n * n in
  { wname = "3mm";
    category = Poly;
    fp = true;
    tensor = false;
    description = "three matrix multiplies G = (A*B)*(C*D)";
    source =
      Fmt.str
        {|
global float A[%d]; global float B[%d]; global float C[%d]; global float D[%d];
global float E[%d]; global float F[%d]; global float G[%d];
func void main() {
  for (int i = 0; i < %d; i = i + 1) {
    for (int j = 0; j < %d; j = j + 1) {
      float acc = 0.0;
      for (int k = 0; k < %d; k = k + 1) { acc = acc + A[i*%d+k] * B[k*%d+j]; }
      E[i*%d+j] = acc;
    }
  }
  for (int i = 0; i < %d; i = i + 1) {
    for (int j = 0; j < %d; j = j + 1) {
      float acc = 0.0;
      for (int k = 0; k < %d; k = k + 1) { acc = acc + C[i*%d+k] * D[k*%d+j]; }
      F[i*%d+j] = acc;
    }
  }
  for (int i = 0; i < %d; i = i + 1) {
    for (int j = 0; j < %d; j = j + 1) {
      float acc = 0.0;
      for (int k = 0; k < %d; k = k + 1) { acc = acc + E[i*%d+k] * F[k*%d+j]; }
      G[i*%d+j] = acc;
    }
  }
}|}
        nn nn nn nn nn nn nn n n n n n n n n n n n n n n n n n n;
    inits =
      [ ("A", Data.floats ~seed:61 nn); ("B", Data.floats ~seed:62 nn);
        ("C", Data.floats ~seed:63 nn); ("D", Data.floats ~seed:64 nn) ];
    outputs = [ "G" ] }

(* ------------------------------------------------------------------ *)
(* Cilk benchmarks                                                      *)

let fib =
  { wname = "fib";
    category = Cilk;
    fp = false;
    tensor = false;
    description = "recursive Cilk fib(15), pure task parallelism";
    source =
      {|
global int OUT[1];
func int fib(int n) {
  if (n < 2) { return n; }
  int a = spawn fib(n - 1);
  int b = spawn fib(n - 2);
  sync;
  return a + b;
}
func void main() {
  int r = fib(15);
  OUT[0] = r;
}|};
    inits = [];
    outputs = [ "OUT" ] }

let msort_n = 64

let msort =
  { wname = "msort";
    category = Cilk;
    fp = true;
    tensor = false;
    description = "recursive Cilk mergesort";
    source =
      Fmt.str
        {|
global float A[%d];
global float TMP[%d];
func void merge(int lo, int mid, int hi) {
  int i = lo; int j = mid; int k = lo;
  while (k < hi) {
    bool takei = j >= hi || (i < mid && A[min(i, %d)] <= A[min(j, %d)]);
    if (takei) { TMP[k] = A[i]; i = i + 1; }
    else       { TMP[k] = A[j]; j = j + 1; }
    k = k + 1;
  }
  for (int t = lo; t < hi; t = t + 1) { A[t] = TMP[t]; }
}
func void msort(int lo, int hi) {
  if (hi - lo < 2) { return; }
  int mid = (lo + hi) / 2;
  spawn msort(lo, mid);
  spawn msort(mid, hi);
  sync;
  merge(lo, mid, hi);
}
func void main() { msort(0, %d); }|}
        msort_n msort_n (msort_n - 1) (msort_n - 1) msort_n;
    inits = [ ("A", Data.floats ~seed:71 ~lo:0.0 ~hi:100.0 msort_n) ];
    outputs = [ "A" ] }

let saxpy_n = 512

let saxpy =
  { wname = "saxpy";
    category = Cilk;
    fp = true;
    tensor = false;
    description = "parallel_for y = a*x + y";
    source =
      Fmt.str
        {|
global float X[%d]; global float Y[%d];
func void main() {
  float a = 2.5;
  parallel_for (int i = 0; i < %d; i = i + 1) {
    Y[i] = a * X[i] + Y[i];
  }
  sync;
}|}
        saxpy_n saxpy_n saxpy_n;
    inits =
      [ ("X", Data.floats ~seed:81 saxpy_n);
        ("Y", Data.floats ~seed:82 saxpy_n) ];
    outputs = [ "Y" ] }

let stencil_n = 16

let stencil =
  let n = stencil_n in
  { wname = "stencil";
    category = Cilk;
    fp = true;
    tensor = false;
    description = "3x3 stencil, rows in parallel_for";
    source =
      Fmt.str
        {|
global float IN[%d]; global float OUT[%d]; global float K[9];
func void main() {
  parallel_for (int r = 1; r < %d; r = r + 1) {
    for (int c = 1; c < %d; c = c + 1) {
      float acc = 0.0;
      for (int dy = 0; dy < 3; dy = dy + 1) {
        for (int dx = 0; dx < 3; dx = dx + 1) {
          acc = acc + K[dy*3+dx] * IN[(r+dy-1)*%d + (c+dx-1)];
        }
      }
      OUT[r*%d+c] = acc;
    }
  }
  sync;
}|}
        (n * n) (n * n) (n - 1) (n - 1) n n;
    inits =
      [ ("IN", Data.floats ~seed:91 (n * n));
        ("K", Data.floats ~seed:92 9) ];
    outputs = [ "OUT" ] }

let img_in = 16
let img_out = 24

let img_scale =
  { wname = "img-scale";
    category = Cilk;
    fp = true;
    tensor = false;
    description = "bilinear image upscale 16x16 -> 24x24, parallel rows";
    source =
      Fmt.str
        {|
global float IN[%d]; global float OUT[%d];
func void main() {
  parallel_for (int r = 0; r < %d; r = r + 1) {
    float sy = float(r) * %f;
    int y0 = min(int(sy), %d);
    float fy = sy - float(y0);
    int y1 = min(y0 + 1, %d);
    for (int c = 0; c < %d; c = c + 1) {
      float sx = float(c) * %f;
      int x0 = min(int(sx), %d);
      float fx = sx - float(x0);
      int x1 = min(x0 + 1, %d);
      float top = IN[y0*%d+x0] * (1.0 - fx) + IN[y0*%d+x1] * fx;
      float bot = IN[y1*%d+x0] * (1.0 - fx) + IN[y1*%d+x1] * fx;
      OUT[r*%d+c] = top * (1.0 - fy) + bot * fy;
    }
  }
  sync;
}|}
        (img_in * img_in) (img_out * img_out) img_out
        (float_of_int (img_in - 1) /. float_of_int img_out)
        (img_in - 1) (img_in - 1) img_out
        (float_of_int (img_in - 1) /. float_of_int img_out)
        (img_in - 1) (img_in - 1) img_in img_in img_in img_in img_out;
    inits = [ ("IN", Data.floats ~seed:101 ~lo:0.0 ~hi:255.0 (img_in * img_in)) ];
    outputs = [ "OUT" ] }

(* ------------------------------------------------------------------ *)
(* Tensorflow benchmarks                                                *)

let conv_n = 14 (* output size for a 16x16 input, 3x3 valid conv *)

let conv =
  let inn = conv_n + 2 in
  { wname = "conv";
    category = Tf;
    fp = true;
    tensor = false;
    description = "2D 3x3 valid convolution layer";
    source =
      Fmt.str
        {|
global float IN[%d]; global float K[9]; global float OUT[%d];
func void main() {
  for (int r = 0; r < %d; r = r + 1) {
    for (int c = 0; c < %d; c = c + 1) {
      float acc = 0.0;
      for (int dy = 0; dy < 3; dy = dy + 1) {
        for (int dx = 0; dx < 3; dx = dx + 1) {
          acc = acc + K[dy*3+dx] * IN[(r+dy)*%d + c+dx];
        }
      }
      OUT[r*%d+c] = acc;
    }
  }
}|}
        (inn * inn) (conv_n * conv_n) conv_n conv_n inn conv_n;
    inits =
      [ ("IN", Data.floats ~seed:111 (inn * inn));
        ("K", Data.floats ~seed:112 9) ];
    outputs = [ "OUT" ] }

let dense ~units =
  let batch = 8 and input = 16 in
  { wname = Fmt.str "dense%d" units;
    category = Tf;
    fp = true;
    tensor = false;
    description = Fmt.str "dense layer with %d units + relu" units;
    source =
      Fmt.str
        {|
global float X[%d]; global float W[%d]; global float B[%d]; global float Y[%d];
func void main() {
  for (int b = 0; b < %d; b = b + 1) {
    for (int o = 0; o < %d; o = o + 1) {
      float acc = B[o];
      for (int i = 0; i < %d; i = i + 1) {
        acc = acc + W[o*%d+i] * X[b*%d+i];
      }
      Y[b*%d+o] = fmax(acc, 0.0);
    }
  }
}|}
        (batch * input) (units * input) units (batch * units) batch units
        input input input units;
    inits =
      [ ("X", Data.floats ~seed:121 (batch * input));
        ("W", Data.floats ~seed:122 (units * input));
        ("B", Data.floats ~seed:123 units) ];
    outputs = [ "Y" ] }

let dense8 = dense ~units:8
let dense16 = dense ~units:16

let softmax ~classes =
  let batch = 16 in
  { wname = Fmt.str "softm%d" classes;
    category = Tf;
    fp = true;
    tensor = false;
    description = Fmt.str "numerically-stable softmax over %d classes" classes;
    source =
      Fmt.str
        {|
global float X[%d]; global float Y[%d];
func void main() {
  for (int b = 0; b < %d; b = b + 1) {
    float m = X[b*%d];
    for (int c = 1; c < %d; c = c + 1) { m = fmax(m, X[b*%d+c]); }
    float s = 0.0;
    for (int c = 0; c < %d; c = c + 1) {
      float e = exp(X[b*%d+c] - m);
      Y[b*%d+c] = e;
      s = s + e;
    }
    for (int c = 0; c < %d; c = c + 1) {
      Y[b*%d+c] = Y[b*%d+c] / s;
    }
  }
}|}
        (batch * classes) (batch * classes) batch classes classes classes
        classes classes classes classes classes classes;
    inits = [ ("X", Data.floats ~seed:131 ~lo:(-4.0) ~hi:4.0 (batch * classes)) ];
    outputs = [ "Y" ] }

let softm8 = softmax ~classes:8
let softm16 = softmax ~classes:16

(* ------------------------------------------------------------------ *)
(* In-house tensor workloads ([T])                                      *)

let relu_t_n = 16

let relu_t =
  let n = relu_t_n in
  { wname = "relu[T]";
    category = Inhouse;
    fp = true;
    tensor = true;
    description = "tile-wise ReLU over a 16x16 activation map";
    source =
      Fmt.str
        {|
global float X[%d]; global float Y[%d];
func void main() {
  for (int ti = 0; ti < %d; ti = ti + 1) {
    for (int tj = 0; tj < %d; tj = tj + 1) {
      tstore(Y, ti*%d + tj*2, %d, trelu(tload(X, ti*%d + tj*2, %d)));
    }
  }
}|}
        (n * n) (n * n) (n / 2) (n / 2) (2 * n) n (2 * n) n;
    inits = [ ("X", Data.floats ~seed:141 (n * n)) ];
    outputs = [ "Y" ] }

let mm2t_n = 8

let mm2_t =
  let n = mm2t_n in
  let nn = n * n in
  let nt = n / 2 in
  { wname = "2mm[T]";
    category = Inhouse;
    fp = true;
    tensor = true;
    description = "chained tiled matrix multiplies with 2x2 tensor ops";
    source =
      Fmt.str
        {|
global float A[%d]; global float B[%d]; global float C[%d];
global float D[%d]; global float E[%d];
func void main() {
  for (int i = 0; i < %d; i = i + 1) {
    for (int j = 0; j < %d; j = j + 1) {
      tile acc = tmul(tload(A, i*%d, %d), tload(B, j*2, %d));
      for (int k = 1; k < %d; k = k + 1) {
        acc = tadd(acc, tmul(tload(A, i*%d + k*2, %d), tload(B, k*%d + j*2, %d)));
      }
      tstore(D, i*%d + j*2, %d, acc);
    }
  }
  for (int i = 0; i < %d; i = i + 1) {
    for (int j = 0; j < %d; j = j + 1) {
      tile acc = tmul(tload(D, i*%d, %d), tload(C, j*2, %d));
      for (int k = 1; k < %d; k = k + 1) {
        acc = tadd(acc, tmul(tload(D, i*%d + k*2, %d), tload(C, k*%d + j*2, %d)));
      }
      tstore(E, i*%d + j*2, %d, acc);
    }
  }
}|}
        nn nn nn nn nn nt nt (2 * n) n n nt (2 * n) n (2 * n) n (2 * n) n nt
        nt (2 * n) n n nt (2 * n) n (2 * n) n (2 * n) n;
    inits =
      [ ("A", Data.floats ~seed:151 nn); ("B", Data.floats ~seed:152 nn);
        ("C", Data.floats ~seed:153 nn) ];
    outputs = [ "D"; "E" ] }

let convt_n = 8

let conv_t =
  let n = convt_n in
  let inn = n + 2 in
  let nt = n / 2 in
  { wname = "conv[T]";
    category = Inhouse;
    fp = true;
    tensor = true;
    description = "block convolution mixing 2x2 tiles with tile kernels";
    source =
      Fmt.str
        {|
global float IN[%d]; global float KT[36]; global float OUT[%d];
func void main() {
  for (int ti = 0; ti < %d; ti = ti + 1) {
    for (int tj = 0; tj < %d; tj = tj + 1) {
      tile acc = tmul(tload(IN, ti*%d + tj*2, %d), tload(KT, 0, 2));
      for (int t = 1; t < 9; t = t + 1) {
        int dy = t / 3;
        int dx = t %% 3;
        acc = tadd(acc, tmul(tload(IN, (ti*2+dy)*%d + tj*2+dx, %d), tload(KT, t*4, 2)));
      }
      tstore(OUT, ti*%d + tj*2, %d, trelu(acc));
    }
  }
}|}
        (inn * inn) (n * n) nt nt (2 * inn) inn inn inn (2 * n) n;
    inits =
      [ ("IN", Data.floats ~seed:161 (inn * inn));
        ("KT", Data.floats ~seed:162 36) ];
    outputs = [ "OUT" ] }

(* ------------------------------------------------------------------ *)
(* Extra workloads used by specific experiments                         *)

let rgb_n = 128

let rgb2yuv =
  let n = rgb_n in
  { wname = "rgb2yuv";
    category = Inhouse;
    fp = true;
    tensor = false;
    description = "pixel-wise RGB to YUV conversion (cache-banking study)";
    source =
      Fmt.str
        {|
global float R[%d]; global float G[%d]; global float B[%d];
global float YY[%d]; global float U[%d]; global float V[%d];
func void main() {
  for (int i = 0; i < %d; i = i + 1) {
    float r = R[i]; float g = G[i]; float b = B[i];
    YY[i] = 0.299 * r + 0.587 * g + 0.114 * b;
    U[i] = 0.0 - 0.14713 * r - 0.28886 * g + 0.436 * b;
    V[i] = 0.615 * r - 0.51499 * g - 0.10001 * b;
  }
}|}
        n n n n n n n;
    inits =
      [ ("R", Data.floats ~seed:171 ~lo:0.0 ~hi:1.0 n);
        ("G", Data.floats ~seed:172 ~lo:0.0 ~hi:1.0 n);
        ("B", Data.floats ~seed:173 ~lo:0.0 ~hi:1.0 n) ];
    outputs = [ "YY"; "U"; "V" ] }

let conv1d_m = 128
let conv1d_w = 8

let conv1d =
  { wname = "conv1d";
    category = Inhouse;
    fp = true;
    tensor = false;
    description = "the 1D convolution running example of Fig. 2";
    source =
      Fmt.str
        {|
global float INPUT[%d]; global float WEIGHT[%d]; global float OUTPUT[%d];
func void main() {
  for (int i = 0; i < %d; i = i + 1) {
    float acc = 0.0;
    for (int j = 0; j < %d; j = j + 1) {
      acc = acc + INPUT[i+j] * WEIGHT[j];
    }
    OUTPUT[i] = acc;
  }
}|}
        conv1d_m conv1d_w (conv1d_m - conv1d_w) (conv1d_m - conv1d_w)
        conv1d_w;
    inits =
      [ ("INPUT", Data.floats ~seed:181 conv1d_m);
        ("WEIGHT", Data.floats ~seed:182 conv1d_w) ];
    outputs = [ "OUTPUT" ] }

(* ------------------------------------------------------------------ *)
(* Tensor-graph models (lib/nn): whole networks compiled through the
   operator-graph frontend into multi-task μIR                          *)

module Nn = Muir_nn

(** Materialize a leaf-tensor spec through the same LCG as every other
    dataset. *)
let nn_floats (i : Nn.Lower.init) : value array =
  Data.floats ~seed:i.seed ~lo:i.lo ~hi:i.hi i.count

(** Build a registered workload from a model of [Muir_nn.Models].
    [fused] (default) runs the graph-level fusion pass before
    lowering; [~fused:false] gives the one-task-per-operator lowering
    the fusion experiment compares against (registered under
    [name^"-unfused"]). *)
let nn_workload ?(fused = true) (name : string) : t =
  let g =
    match Nn.Models.find name with
    | Some build -> build ()
    | None -> invalid_arg ("Workloads.nn_workload: unknown model " ^ name)
  in
  if fused then ignore (Nn.Fuse.run g);
  let source, report = Nn.Lower.lower g in
  { wname = (if fused then name else name ^ "-unfused");
    category = Model;
    fp = true;
    tensor = report.tiled <> [];
    description =
      Fmt.str "%s operator graph lowered to %d μIR task(s)%s" name
        report.tasks
        (if fused then ", fused" else ", unfused");
    source;
    inits =
      List.map
        (fun (i : Nn.Lower.init) -> (i.iname, nn_floats i))
        (Nn.Lower.inits g);
    outputs =
      List.map (fun id -> (Nn.Graph.node g id).name) g.Nn.Graph.outputs }

let mlp = nn_workload "mlp"
let lenet = nn_workload "lenet"

(* ------------------------------------------------------------------ *)

let all : t list =
  [ gemm; covar; fft; fft_buf; spmv; mm2; mm3;
    fib; msort; saxpy; stencil; img_scale;
    conv; dense8; dense16; softm8; softm16;
    relu_t; mm2_t; conv_t;
    rgb2yuv; conv1d;
    mlp; lenet ]

let find (name : string) : t =
  match List.find_opt (fun w -> w.wname = name) all with
  | Some w -> w
  | None -> invalid_arg ("Workloads.find: unknown workload " ^ name)

(** Compile a workload and attach its dataset. *)
let program (w : t) : Muir_ir.Program.t =
  let p = Muir_frontend.Frontend.compile w.source in
  Muir_ir.Program.with_init p w.inits
