(** Flat (unboxed) token encoding for the hot execution substrates.

    A {!Types.value} is a heap-allocated variant; pushing one through
    a channel costs minor-heap words on every hop.  The cycle
    simulator instead carries tokens as four parallel columns — an
    integer tag, a native integer, a float and a boxed-object slot —
    so the steady-state fire path moves words between preallocated
    arrays without allocating.  This module owns the codec: the tag
    space, the flatten/materialize conversions at the boxed boundary,
    and an intern table so materializing common small integers and
    constants does not allocate either.

    Invariants:
    - [tint] rows always hold an integer that round-trips through the
      native [int]; an [int64] that does not fit is kept boxed under
      [tobj].
    - [tobj] rows keep the original box ([VTensor], oversized [VInt]);
      materializing returns it unchanged.
    - [tabsent] marks "no token here" in tables that need a presence
      mark inline (wave tables, load responses). *)

open Types

let tunit = 0
let tfalse = 1
let ttrue = 2
let tint = 3    (* payload in the int column *)
let tfloat = 4  (* payload in the float column *)
let tpoison = 5
let tobj = 6    (* payload in the object column *)
let tabsent = 7

(* A dummy occupant for object columns; never materialized. *)
let no_obj : value = VUnit

(* ------------------------------------------------------------------ *)
(* Intern table: materializing small naturals is allocation-free.      *)

let intern_width = 4096

let interned_ints : value array =
  Array.init intern_width (fun i -> VInt (Int64.of_int i))

let vtrue = VBool true
let vfalse = VBool false

(** Does this [int64] fit the native [int] exactly? *)
let fits_native (v : int64) : bool =
  Int64.equal (Int64.of_int (Int64.to_int v)) v

(* ------------------------------------------------------------------ *)
(* Codec                                                               *)

let tag_of (v : value) : int =
  match v with
  | VUnit -> tunit
  | VBool false -> tfalse
  | VBool true -> ttrue
  | VInt i -> if fits_native i then tint else tobj
  | VFloat _ -> tfloat
  | VPoison -> tpoison
  | VTensor _ -> tobj

let num_of (v : value) : int =
  match v with VInt i -> Int64.to_int i | _ -> 0

let flt_of (v : value) : float =
  match v with VFloat f -> f | _ -> 0.0

(** The boxed-object column entry for [v] (the box itself when the
    value cannot be carried flat, [no_obj] otherwise). *)
let obj_of (v : value) : value =
  match v with
  | VInt i when not (fits_native i) -> v
  | VTensor _ -> v
  | _ -> no_obj

(** Rebuild a boxed token from its columns.  Allocation-free for
    units, bools, poison, interned small naturals and [tobj] rows. *)
let materialize (tag : int) (num : int) (flt : float) (obj : value) : value =
  if tag = tint then
    if num >= 0 && num < intern_width then interned_ints.(num)
    else VInt (Int64.of_int num)
  else if tag = tfloat then VFloat flt
  else if tag = tfalse then vfalse
  else if tag = ttrue then vtrue
  else if tag = tpoison then VPoison
  else if tag = tobj then obj
  else VUnit (* tunit and tabsent *)
