(** Functions: a CFG of basic blocks plus the loop metadata recorded by
    the structured front-end lowering.  The metadata is re-derived and
    cross-checked by {!Loops.analyze}, so passes may trust it. *)

open Types

type block = {
  label : Instr.label;
  mutable instrs : Instr.t list;      (** in execution order *)
  mutable term : Instr.terminator;
}

(** A formal parameter.  The bound register is carried explicitly — the
    front-end assigns [0..n-1], but nothing downstream may assume
    contiguity (IR-level transforms are free to renumber). *)
type param = {
  preg : Instr.reg;
  pname : string;
  pty : ty;
}

type loop_info = {
  preheader : Instr.label;
  header : Instr.label;
  latch : Instr.label;
  exit : Instr.label;
  body : Instr.label list;  (** all blocks of the loop, header & latch
                                included, inner-loop blocks included *)
  depth : int;              (** 1 = outermost *)
  parallel : bool;          (** body iterations were a [parallel_for] *)
}

type t = {
  name : string;
  params : param list;
  ret : ty;
  mutable blocks : block list;  (** entry first, otherwise topological-ish *)
  mutable loops : loop_info list;
  mutable next_reg : int;
}

let param_tys (f : t) : ty list = List.map (fun p -> p.pty) f.params
let param_regs (f : t) : Instr.reg list = List.map (fun p -> p.preg) f.params

(** The parameter bound to register [r], if any. *)
let param_of_reg (f : t) (r : Instr.reg) : param option =
  List.find_opt (fun p -> p.preg = r) f.params

let entry (f : t) =
  match f.blocks with
  | [] -> invalid_arg "Func.entry: no blocks"
  | b :: _ -> b

let block (f : t) (l : Instr.label) =
  match List.find_opt (fun b -> b.label = l) f.blocks with
  | Some b -> b
  | None -> invalid_arg (Fmt.str "Func.block: bb%d not in %s" l f.name)

let successors (b : block) =
  match b.term with
  | Br l -> [ l ]
  | CondBr (_, t, f) -> if t = f then [ t ] else [ t; f ]
  | Ret _ -> []

(** Map from block label to predecessor labels. *)
let predecessors (f : t) : (Instr.label, Instr.label list) Hashtbl.t =
  let preds = Hashtbl.create 16 in
  List.iter (fun b -> Hashtbl.replace preds b.label []) f.blocks;
  List.iter
    (fun b ->
      List.iter
        (fun s ->
          let cur = try Hashtbl.find preds s with Not_found -> [] in
          Hashtbl.replace preds s (b.label :: cur))
        (successors b))
    f.blocks;
  preds

let iter_instrs f_instr (f : t) =
  List.iter (fun b -> List.iter f_instr b.instrs) f.blocks

let fold_instrs fn acc (f : t) =
  List.fold_left
    (fun acc b -> List.fold_left fn acc b.instrs)
    acc f.blocks

(** The loop (innermost) containing block [l], if any. *)
let innermost_loop (f : t) (l : Instr.label) =
  List.fold_left
    (fun best (lp : loop_info) ->
      if List.mem l lp.body then
        match best with
        | Some (b : loop_info) when b.depth >= lp.depth -> best
        | _ -> Some lp
      else best)
    None f.loops

let find_instr (f : t) (r : Instr.reg) =
  let found = ref None in
  iter_instrs (fun i -> if i.Instr.id = r then found := Some i) f;
  !found

let pp ppf (f : t) =
  Fmt.pf ppf "@[<v>func @%s(%a) : %a {@,"
    f.name
    Fmt.(list ~sep:comma
           (fun ppf p -> pf ppf "%s:%a=%%%d" p.pname pp_ty p.pty p.preg))
    f.params pp_ty f.ret;
  List.iter
    (fun b ->
      Fmt.pf ppf "bb%d:@," b.label;
      List.iter (fun i -> Fmt.pf ppf "  %a@," Instr.pp i) b.instrs;
      Fmt.pf ppf "  %a@," Instr.pp_terminator b.term)
    f.blocks;
  List.iter
    (fun (lp : loop_info) ->
      Fmt.pf ppf "; loop hdr=bb%d latch=bb%d exit=bb%d depth=%d%s@,"
        lp.header lp.latch lp.exit lp.depth
        (if lp.parallel then " parallel" else ""))
    f.loops;
  Fmt.pf ppf "}@]"
