(** Natural-loop detection, used to cross-check the loop metadata the
    structured front-end records. *)

type natural_loop = {
  header : Instr.label;
  latches : Instr.label list;
  blocks : Instr.label list;
}

val analyze : Func.t -> natural_loop list
(** Natural loops from back edges whose header dominates the latch. *)

val check_metadata : Func.t -> (unit, string) result
(** Does the recorded {!Func.loop_info} agree with the CFG? *)

val trip_count : Func.t -> Func.loop_info -> int option
(** Statically-known number of body executions of a counted loop
    (constant-init, constant-step induction phi compared against a
    constant bound, single exit through the header).  [None] when the
    shape is anything else — callers must treat unknown as "no static
    bound". *)
