(** Imperative function builder used by the front-end lowering and by
    tests that construct IR directly. *)

open Types

type t = {
  func : Func.t;
  mutable cur : Func.block option;
  mutable next_label : int;
}

let create ~name ~params ~ret : t =
  (* Parameters are bound to registers [0..n-1]; downstream code reads
     the register off the param record rather than assuming this. *)
  let params =
    List.mapi (fun i (pname, pty) -> { Func.preg = i; pname; pty }) params
  in
  let next_reg =
    1 + List.fold_left (fun m (p : Func.param) -> max m p.preg) (-1) params
  in
  let func = { Func.name; params; ret; blocks = []; loops = []; next_reg } in
  { func; cur = None; next_label = 0 }

let fresh_reg (b : t) =
  let r = b.func.next_reg in
  b.func.next_reg <- r + 1;
  r

let new_block (b : t) : Instr.label =
  let label = b.next_label in
  b.next_label <- label + 1;
  let blk = { Func.label; instrs = []; term = Instr.Ret None } in
  b.func.blocks <- b.func.blocks @ [ blk ];
  label

let position_at (b : t) (l : Instr.label) =
  b.cur <- Some (Func.block b.func l)

let current_label (b : t) =
  match b.cur with
  | Some blk -> blk.label
  | None -> invalid_arg "Builder.current_label: no current block"

(** Append an instruction with a fresh result register. *)
let add (b : t) ~(ty : ty) (kind : Instr.kind) : Instr.operand =
  match b.cur with
  | None -> invalid_arg "Builder.add: no current block"
  | Some blk ->
    let id = fresh_reg b in
    blk.instrs <- blk.instrs @ [ { Instr.id; ty; kind } ];
    Instr.Reg id

(** Append a void instruction. *)
let add_unit (b : t) (kind : Instr.kind) : unit =
  ignore (add b ~ty:TUnit kind)

(** Prepend a phi to block [l]; phis are kept in front of the block. *)
let add_phi (b : t) (l : Instr.label) ~(ty : ty)
    (incoming : (Instr.label * Instr.operand) list) : Instr.operand =
  let blk = Func.block b.func l in
  let id = fresh_reg b in
  blk.instrs <- { Instr.id; ty; kind = Phi incoming } :: blk.instrs;
  Instr.Reg id

(** Replace the incoming list of phi [r] in block [l]. *)
let set_phi_incoming (b : t) (l : Instr.label) (r : Instr.reg)
    (incoming : (Instr.label * Instr.operand) list) =
  let blk = Func.block b.func l in
  blk.instrs <-
    List.map
      (fun (i : Instr.t) ->
        if i.id = r then
          { i with kind = Phi incoming }
        else i)
      blk.instrs

let set_term (b : t) (term : Instr.terminator) =
  match b.cur with
  | None -> invalid_arg "Builder.set_term: no current block"
  | Some blk -> blk.term <- term

let set_term_of (b : t) (l : Instr.label) (term : Instr.terminator) =
  (Func.block b.func l).term <- term

let add_loop (b : t) (lp : Func.loop_info) =
  b.func.loops <- b.func.loops @ [ lp ]

let finish (b : t) : Func.t = b.func
