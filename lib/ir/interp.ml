(** Golden reference interpreter.

    Executes the compiler IR with sequential semantics ([spawn] runs
    its child immediately — the "serial elision" of Cilk, which is a
    legal schedule of any well-formed fork-join program).  Every other
    execution substrate in the repository is checked against the final
    memory state this interpreter produces.

    The interpreter can emit a dynamic trace, which the ARM-A9 timing
    model consumes. *)

open Types
open Instr

(** One dynamically executed instruction, as seen by timing models. *)
type trace_event = {
  ev_kind : kind;
  ev_ty : ty;
  ev_addr : int option;  (** effective word address for memory ops *)
}

type stats = {
  mutable dyn_instrs : int;
  mutable dyn_loads : int;
  mutable dyn_stores : int;
  mutable dyn_branches : int;
  mutable dyn_spawns : int;
  mutable dyn_flops : int;
}

let new_stats () =
  { dyn_instrs = 0; dyn_loads = 0; dyn_stores = 0; dyn_branches = 0;
    dyn_spawns = 0; dyn_flops = 0 }

exception Step_limit_exceeded

type ctx = {
  prog : Program.t;
  mem : Memory.t;
  stats : stats;
  tracer : (trace_event -> unit) option;
  on_block : (string -> Instr.label -> unit) option;
  mutable steps : int;
  max_steps : int;
}

let resolve (env : value array) (op : operand) : value =
  match op with
  | Reg r -> env.(r)
  | CBool b -> VBool b
  | CInt i -> VInt i
  | CFloat f -> VFloat f
  | GlobalAddr _ -> invalid_arg "Interp.resolve: unresolved global"

let trace ctx (i : Instr.t) addr =
  ctx.stats.dyn_instrs <- ctx.stats.dyn_instrs + 1;
  (match i.kind with
  | Load _ | Tload _ -> ctx.stats.dyn_loads <- ctx.stats.dyn_loads + 1
  | Store _ | Tstore _ -> ctx.stats.dyn_stores <- ctx.stats.dyn_stores + 1
  | Spawn _ -> ctx.stats.dyn_spawns <- ctx.stats.dyn_spawns + 1
  | Fbin _ | Funary _ | Fcmp _ ->
    ctx.stats.dyn_flops <- ctx.stats.dyn_flops + 1
  | _ -> ());
  match ctx.tracer with
  | None -> ()
  | Some f -> f { ev_kind = i.kind; ev_ty = i.ty; ev_addr = addr }

let rec run_func (ctx : ctx) (f : Func.t) (args : value list) : value =
  let ctx_fname = f.Func.name in
  let env = Array.make (max f.Func.next_reg 1) VUnit in
  List.iteri
    (fun i v ->
      match List.nth_opt f.Func.params i with
      | Some (p : Func.param) -> env.(p.preg) <- v
      | None -> env.(i) <- v)
    args;
  let resolve_op op =
    match op with
    | GlobalAddr g -> vint (Program.find_global ctx.prog g).gbase
    | _ -> resolve env op
  in
  let rec run_block (blk : Func.block) (prev : label option) : value =
    ctx.steps <- ctx.steps + 1;
    if ctx.steps > ctx.max_steps then raise Step_limit_exceeded;
    (match ctx.on_block with
    | Some f -> f ctx_fname blk.label
    | None -> ());
    (* Phis read their operands simultaneously on entry. *)
    let phis, rest =
      List.partition (fun i -> match i.kind with Phi _ -> true | _ -> false)
        blk.instrs
    in
    let phi_values =
      List.map
        (fun (i : Instr.t) ->
          match i.kind, prev with
          | Phi incoming, Some p -> (
            match List.assoc_opt p incoming with
            | Some op -> (i.id, resolve_op op)
            | None ->
              invalid_arg
                (Fmt.str "Interp: phi %%%d has no incoming for bb%d" i.id p))
          | Phi _, None ->
            invalid_arg "Interp: phi in entry block"
          | _ -> assert false)
        phis
    in
    List.iter (fun (r, v) -> env.(r) <- v) phi_values;
    List.iter (fun (i : Instr.t) -> trace ctx i None) phis;
    List.iter (fun i -> exec_instr i) rest;
    match blk.term with
    | Br l -> run_block (Func.block f l) (Some blk.label)
    | CondBr (c, t, e) ->
      ctx.stats.dyn_branches <- ctx.stats.dyn_branches + 1;
      let l = if truth (resolve_op c) then t else e in
      run_block (Func.block f l) (Some blk.label)
    | Ret None -> VUnit
    | Ret (Some op) -> resolve_op op
  and exec_instr (i : Instr.t) : unit =
    let v =
      match i.kind with
      | Bin _ | Fbin _ | Icmp _ | Fcmp _ | Funary _ | Cast _ | Select _
      | Gep _ | Tbin _ | Tunary _ ->
        let args = List.map resolve_op (operands i) in
        trace ctx i None;
        Eval.pure i.kind args
      | Load { addr } ->
        let a = Int64.to_int (as_int (resolve_op addr)) in
        trace ctx i (Some a);
        Memory.load ctx.mem a
      | Store { addr; value } ->
        let a = Int64.to_int (as_int (resolve_op addr)) in
        trace ctx i (Some a);
        Memory.store ctx.mem a (resolve_op value);
        VUnit
      | Tload { addr; row_stride; shape } ->
        let a = Int64.to_int (as_int (resolve_op addr)) in
        let s = Int64.to_int (as_int (resolve_op row_stride)) in
        trace ctx i (Some a);
        VTensor (Memory.load_tile ctx.mem ~addr:a ~row_stride:s shape)
      | Tstore { addr; row_stride; value; shape } ->
        let a = Int64.to_int (as_int (resolve_op addr)) in
        let s = Int64.to_int (as_int (resolve_op row_stride)) in
        trace ctx i (Some a);
        Memory.store_tile ctx.mem ~addr:a ~row_stride:s shape
          (as_tensor (resolve_op value));
        VUnit
      | Call { callee; args } | Spawn { callee; args } ->
        let argv = List.map resolve_op args in
        trace ctx i None;
        run_func ctx (Program.find_func ctx.prog callee) argv
      | Sync ->
        trace ctx i None;
        VUnit
      | Phi _ -> assert false
    in
    if not (equal_ty i.ty TUnit) then env.(i.id) <- v
  in
  run_block (Func.entry f) None

(** Run [entry] (default ["main"]) to completion.  Returns the entry
    function's return value, the final memory and dynamic stats. *)
let run ?(entry = "main") ?(args = []) ?tracer ?on_block
    ?(max_steps = 50_000_000) (prog : Program.t) :
    value * Memory.t * stats =
  let ctx =
    { prog; mem = Memory.create prog; stats = new_stats (); tracer;
      on_block; steps = 0; max_steps }
  in
  let f = Program.find_func prog entry in
  let v = run_func ctx f args in
  (v, ctx.mem, ctx.stats)
