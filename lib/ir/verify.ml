(** IR well-formedness verifier: structural checks plus SSA dominance. *)

open Instr

type error = { where : string; what : string }

let pp_error ppf e = Fmt.pf ppf "%s: %s" e.where e.what

let verify_func (p : Program.t option) (f : Func.t) : error list =
  let errs = ref [] in
  let err where fmt = Fmt.kstr (fun what -> errs := { where; what } :: !errs) fmt in
  let labels = List.map (fun (b : Func.block) -> b.label) f.blocks in
  let where_blk (b : Func.block) = Fmt.str "%s/bb%d" f.name b.label in
  (* Unique labels. *)
  if List.length (List.sort_uniq compare labels) <> List.length labels then
    err f.name "duplicate block labels";
  (* Terminator targets exist. *)
  List.iter
    (fun (b : Func.block) ->
      List.iter
        (fun s ->
          if not (List.mem s labels) then
            err (where_blk b) "branch to missing bb%d" s)
        (Func.successors b))
    f.blocks;
  (* Unique defs; build def-site map. *)
  let def_block : (reg, label) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (p : Func.param) ->
      if Hashtbl.mem def_block p.preg then
        err f.name "parameter register %%%d bound twice" p.preg
      else Hashtbl.replace def_block p.preg (Func.entry f).label)
    f.params;
  List.iter
    (fun (b : Func.block) ->
      List.iter
        (fun (i : Instr.t) ->
          if Hashtbl.mem def_block i.id then
            err (where_blk b) "register %%%d defined twice" i.id
          else Hashtbl.replace def_block i.id b.label)
        b.instrs)
    f.blocks;
  (* Phis only reference existing predecessors and cover all of them. *)
  let preds = Func.predecessors f in
  List.iter
    (fun (b : Func.block) ->
      let bpreds = try Hashtbl.find preds b.label with Not_found -> [] in
      List.iter
        (fun (i : Instr.t) ->
          match i.kind with
          | Phi incoming ->
            let ins = List.map fst incoming in
            List.iter
              (fun l ->
                if not (List.mem l bpreds) then
                  err (where_blk b) "phi %%%d: bb%d is not a predecessor" i.id l)
              ins;
            List.iter
              (fun l ->
                if not (List.mem l ins) then
                  err (where_blk b) "phi %%%d: missing incoming for bb%d" i.id l)
              bpreds
          | _ -> ())
        b.instrs)
    f.blocks;
  (* SSA dominance: each non-phi use is dominated by its def. *)
  let dom = Dom.compute f in
  let check_use (b : Func.block) (u : Instr.t option) op =
    match op with
    | Reg r -> (
      match Hashtbl.find_opt def_block r with
      | None ->
        err (where_blk b) "use of undefined register %%%d" r
      | Some dl ->
        (* Spawn results materialize at sync; the sync-separation of
           every use is checked for real by [check_spawn_discipline]
           below, so plain dominance of the def block suffices here. *)
        if not (Dom.dominates dom dl b.label) then
          err (where_blk b) "use of %%%d not dominated by its def (bb%d)" r dl);
      ignore u
    | _ -> ()
  in
  List.iter
    (fun (b : Func.block) ->
      List.iter
        (fun (i : Instr.t) ->
          match i.kind with
          | Phi incoming ->
            (* Phi operand must be available at the end of the incoming
               edge's source block. *)
            List.iter
              (fun (l, op) ->
                match op with
                | Reg r -> (
                  match Hashtbl.find_opt def_block r with
                  | None -> err (where_blk b) "phi uses undefined %%%d" r
                  | Some dl ->
                    if not (Dom.dominates dom dl l) then
                      err (where_blk b)
                        "phi operand %%%d (def bb%d) unavailable on edge from bb%d"
                        r dl l)
                | _ -> ())
              incoming
          | _ -> List.iter (check_use b (Some i)) (operands i))
        b.instrs;
      match b.term with
      | CondBr (c, _, _) -> check_use b None c
      | Ret (Some v) -> check_use b None v
      | _ -> ())
    f.blocks;
  (* Called functions exist. *)
  (match p with
  | None -> ()
  | Some prog ->
    Func.iter_instrs
      (fun i ->
        match i.kind with
        | Call { callee; _ } | Spawn { callee; _ } ->
          if not (Program.has_func prog callee) then
            err f.name "call to missing function %s" callee
        | _ -> ())
      f);
  (* Spawn-result discipline.  A [Spawn]'s result register only
     materializes at the next [Sync]; a use reachable from the spawn
     without crossing a sync can observe an unmaterialized value.
     Walk the CFG forward from each spawn, stopping at syncs; any use
     of the result in the sync-free region is an error.  (This is the
     dataflow check the builder and simulator rely on — it used to be
     trusted to the front-end.) *)
  let check_spawn_discipline (b0 : Func.block) (sp : Instr.t) =
    let r = sp.id in
    let reads_r ops =
      List.exists (function Reg x -> x = r | _ -> false) ops
    in
    (* Scan straight-line instructions until a sync; report uses. *)
    let rec scan blk (instrs : Instr.t list) =
      match instrs with
      | [] -> `Fallthrough
      | (i : Instr.t) :: rest -> (
        match i.kind with
        | Sync -> `Synced
        | Phi _ -> scan blk rest (* phi reads are checked edge-wise *)
        | _ ->
          if reads_r (operands i) then
            err (where_blk blk)
              "use of spawn result %%%d not separated from its spawn by sync"
              r;
          scan blk rest)
    in
    let term_check (blk : Func.block) =
      let ops =
        match blk.term with
        | CondBr (c, _, _) -> [ c ]
        | Ret (Some v) -> [ v ]
        | _ -> []
      in
      if reads_r ops then
        err (where_blk blk)
          "use of spawn result %%%d not separated from its spawn by sync" r
    in
    let visited = Hashtbl.create 8 in
    (* Enter block [l] sync-free via the CFG edge [pred -> l]. *)
    let rec enter (pred : label) (l : label) =
      let blk = Func.block f l in
      List.iter
        (fun (i : Instr.t) ->
          match i.kind with
          | Phi incoming -> (
            match List.assoc_opt pred incoming with
            | Some (Reg x) when x = r ->
              err (where_blk blk)
                "phi %%%d reads spawn result %%%d on a sync-free edge from \
                 bb%d"
                i.id r pred
            | _ -> ())
          | _ -> ())
        blk.instrs;
      if not (Hashtbl.mem visited l) then begin
        Hashtbl.add visited l ();
        match scan blk blk.instrs with
        | `Synced -> ()
        | `Fallthrough ->
          term_check blk;
          List.iter (enter l) (Func.successors blk)
      end
    in
    let rec after = function
      | [] -> []
      | (i : Instr.t) :: rest -> if i == sp then rest else after rest
    in
    match scan b0 (after b0.instrs) with
    | `Synced -> ()
    | `Fallthrough ->
      term_check b0;
      List.iter (enter b0.label) (Func.successors b0)
  in
  List.iter
    (fun (b : Func.block) ->
      List.iter
        (fun (i : Instr.t) ->
          match i.kind with
          | Spawn _ when not (Types.equal_ty i.ty Types.TUnit) ->
            check_spawn_discipline b i
          | _ -> ())
        b.instrs)
    f.blocks;
  (* Loop metadata consistent with the CFG. *)
  (match Loops.check_metadata f with
  | Ok () -> ()
  | Error m -> err f.name "%s" m);
  List.rev !errs

let verify (p : Program.t) : error list =
  List.concat_map (verify_func (Some p)) p.funcs

(** Raise [Invalid_argument] with a report if the program is ill-formed. *)
let check_exn (p : Program.t) : unit =
  match verify p with
  | [] -> ()
  | errs ->
    invalid_arg
      (Fmt.str "IR verification failed:@,%a"
         Fmt.(list ~sep:cut pp_error) errs)
