(** The flat word-addressed memory shared by every execution substrate
    (golden interpreter, cycle simulator, CPU and HLS models).

    Storage is struct-of-arrays in the {!Flat} encoding — a tag column
    plus int/float/object payload columns — so the cycle simulator's
    memory datapath moves words without boxing them.  The boxed
    [load]/[store] API is preserved for the interpreter and tests;
    [load] materializes through the intern table, so small integers
    and constants stay allocation-free there too. *)

open Types
module F = Flat

type t = {
  tags : int array;
  nums : int array;
  flts : float array;
  objs : value array;
  mutable loads : int;
  mutable stores : int;
}

let create (p : Program.t) : t =
  let size = max (Program.memory_words p) 1 in
  let m =
    { tags = Array.make size F.tint;
      nums = Array.make size 0;
      flts = Array.make size 0.0;
      objs = Array.make size F.no_obj;
      loads = 0; stores = 0 }
  in
  let set addr v =
    m.tags.(addr) <- F.tag_of v;
    m.nums.(addr) <- F.num_of v;
    m.flts.(addr) <- F.flt_of v;
    m.objs.(addr) <- F.obj_of v
  in
  List.iter
    (fun (g : Program.global) ->
      match g.ginit with
      | None ->
        (* Zero of the element type. *)
        let zt = match g.gelt with TFloat -> F.tfloat | _ -> F.tint in
        for i = 0 to g.gsize - 1 do
          m.tags.(g.gbase + i) <- zt
        done
      | Some init ->
        Array.iteri (fun i v -> if i < g.gsize then set (g.gbase + i) v) init)
    p.globals;
  m

let size (m : t) = Array.length m.tags

let in_bounds (m : t) addr = addr >= 0 && addr < Array.length m.tags

let load (m : t) (addr : int) : value =
  if not (in_bounds m addr) then
    invalid_arg (Fmt.str "Memory.load: address %d out of bounds" addr);
  m.loads <- m.loads + 1;
  F.materialize m.tags.(addr) m.nums.(addr) m.flts.(addr) m.objs.(addr)

let store (m : t) (addr : int) (v : value) : unit =
  if not (in_bounds m addr) then
    invalid_arg (Fmt.str "Memory.store: address %d out of bounds" addr);
  m.stores <- m.stores + 1;
  m.tags.(addr) <- F.tag_of v;
  m.nums.(addr) <- F.num_of v;
  m.flts.(addr) <- F.flt_of v;
  m.objs.(addr) <- F.obj_of v

(* ------------------------------------------------------------------ *)
(* Flat access (the simulator's zero-allocation datapath)              *)

(** Copy word [addr] into row [di] of the destination columns, without
    materializing.  Bounds and load accounting match {!load}. *)
let load_into (m : t) (addr : int) (dtags : int array) (dnums : int array)
    (dflts : float array) (dobjs : value array) (di : int) : unit =
  if not (in_bounds m addr) then
    invalid_arg (Fmt.str "Memory.load: address %d out of bounds" addr);
  m.loads <- m.loads + 1;
  dtags.(di) <- m.tags.(addr);
  dnums.(di) <- m.nums.(addr);
  dflts.(di) <- m.flts.(addr);
  dobjs.(di) <- m.objs.(addr)

(** Store row [si] of the source columns into word [addr]. *)
let store_from (m : t) (addr : int) (stags : int array) (snums : int array)
    (sflts : float array) (sobjs : value array) (si : int) : unit =
  if not (in_bounds m addr) then
    invalid_arg (Fmt.str "Memory.store: address %d out of bounds" addr);
  m.stores <- m.stores + 1;
  m.tags.(addr) <- stags.(si);
  m.nums.(addr) <- snums.(si);
  m.flts.(addr) <- sflts.(si);
  m.objs.(addr) <- sobjs.(si)

(* ------------------------------------------------------------------ *)

let load_float (m : t) addr =
  match load m addr with
  | VFloat f -> f
  | VInt i -> Int64.to_float i
  | v -> invalid_arg ("Memory.load_float: " ^ value_to_string v)

(** Load a [shape] tile whose row [r] starts at [addr + r*row_stride]. *)
let load_tile (m : t) ~(addr : int) ~(row_stride : int) (s : shape) :
    float array =
  let t = Array.make (shape_words s) 0.0 in
  for r = 0 to s.rows - 1 do
    for c = 0 to s.cols - 1 do
      t.((r * s.cols) + c) <- load_float m (addr + (r * row_stride) + c)
    done
  done;
  t

let store_tile (m : t) ~(addr : int) ~(row_stride : int) (s : shape)
    (t : float array) : unit =
  for r = 0 to s.rows - 1 do
    for c = 0 to s.cols - 1 do
      store m (addr + (r * row_stride) + c) (VFloat t.((r * s.cols) + c))
    done
  done

(** Snapshot of a named global's contents, for golden comparisons. *)
let dump_global (m : t) (p : Program.t) (name : string) : value array =
  let g = Program.find_global p name in
  Array.init g.gsize (fun i ->
      let a = g.gbase + i in
      F.materialize m.tags.(a) m.nums.(a) m.flts.(a) m.objs.(a))

let reset_counters (m : t) =
  m.loads <- 0;
  m.stores <- 0
