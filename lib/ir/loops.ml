(** Natural-loop detection, used to cross-check the loop metadata the
    structured front-end records on each function. *)

type natural_loop = {
  header : Instr.label;
  latches : Instr.label list;
  blocks : Instr.label list;
}

(** Find natural loops from back edges [latch -> header] where the
    header dominates the latch. *)
let analyze (f : Func.t) : natural_loop list =
  let dom = Dom.compute f in
  let back_edges =
    List.concat_map
      (fun (b : Func.block) ->
        List.filter_map
          (fun s -> if Dom.dominates dom s b.label then Some (b.label, s) else None)
          (Func.successors b))
      f.blocks
  in
  let preds = Func.predecessors f in
  let loop_of (latch, header) =
    let in_loop = Hashtbl.create 8 in
    Hashtbl.replace in_loop header ();
    let rec walk l =
      if not (Hashtbl.mem in_loop l) then begin
        Hashtbl.replace in_loop l ();
        List.iter walk (try Hashtbl.find preds l with Not_found -> [])
      end
    in
    walk latch;
    { header; latches = [ latch ];
      blocks = Hashtbl.fold (fun l () acc -> l :: acc) in_loop [] }
  in
  (* Merge loops sharing a header. *)
  let by_header = Hashtbl.create 8 in
  List.iter
    (fun e ->
      let lp = loop_of e in
      match Hashtbl.find_opt by_header lp.header with
      | None -> Hashtbl.replace by_header lp.header lp
      | Some prev ->
        Hashtbl.replace by_header lp.header
          { prev with
            latches = prev.latches @ lp.latches;
            blocks =
              List.sort_uniq compare (prev.blocks @ lp.blocks) })
    back_edges;
  Hashtbl.fold (fun _ lp acc -> lp :: acc) by_header []
  |> List.sort (fun a b -> compare a.header b.header)

(* ------------------------------------------------------------------ *)
(* Trip counts                                                         *)

(** Statically-known trip count of [lp]: the number of body
    executions, for the common counted shape

    {v  header:  %i = phi [preheader: C_init] [latch: %i']
                 br (icmp op %iv, C_n), ...   ;; one arm exits
        ...      %i' = add/sub %i, C_step  v}

    The recurrence is {e iterated numerically} (Int64, budgeted) from
    the constant initial value rather than solved in closed form, so
    every icmp/step-sign combination — including overflow-free
    non-termination — is decided uniformly; loops that would run past
    the budget (1,000,000 iterations) are reported unknown.

    Requirements checked before trusting the recurrence: the loop has
    a single exit edge (header → [lp.exit]; every non-header body
    block branches only within the body), the compared register is
    the induction phi itself (or its header-resident increment,
    evaluated one step ahead), and init/step/limit are integer
    constants.  Anything else returns [None] — the analysis's callers
    treat unknown as "no static bound", never as zero. *)
let trip_count (f : Func.t) (lp : Func.loop_info) : int option =
  let open Instr in
  let ( let* ) = Option.bind in
  let* header =
    List.find_opt (fun (b : Func.block) -> b.label = lp.header) f.blocks
  in
  (* Single-exit shape: only the header may leave the body. *)
  let body_ok =
    List.for_all
      (fun (b : Func.block) ->
        (not (List.mem b.label lp.body))
        || b.label = lp.header
        || List.for_all (fun s -> List.mem s lp.body) (Func.successors b))
      f.blocks
  in
  let* () = if body_ok then Some () else None in
  let* cond, t_tgt, f_tgt =
    match header.term with
    | CondBr (c, t, fl) -> Some (c, t, fl)
    | _ -> None
  in
  let exits_then = t_tgt = lp.exit and exits_else = f_tgt = lp.exit in
  let* () = if exits_then <> exits_else then Some () else None in
  let* cond_reg = op_reg cond in
  let* cmp = Func.find_instr f cond_reg in
  let* op, lhs, rhs =
    match cmp.kind with
    | Icmp (op, a, b) -> Some (op, a, b)
    | _ -> None
  in
  (* One side a constant, the other the induction value. *)
  let* iv_opnd, limit, iv_on_left =
    match (lhs, rhs) with
    | Reg r, CInt k -> Some (r, k, true)
    | CInt k, Reg r -> Some (r, k, false)
    | _ -> None
  in
  (* Resolve the induction phi: the compared register is the phi, or a
     header-resident add/sub of the phi (compared one step ahead). *)
  let phi_of r =
    let* i = Func.find_instr f r in
    match i.kind with
    | Phi _ when List.exists (fun j -> j.id = r) header.instrs -> Some r
    | _ -> None
  in
  let step_of (phi : reg) (back : reg) : int64 option =
    let* i = Func.find_instr f back in
    match i.kind with
    | Bin (Add, Reg r, CInt s) when r = phi -> Some s
    | Bin (Add, CInt s, Reg r) when r = phi -> Some s
    | Bin (Sub, Reg r, CInt s) when r = phi -> Some (Int64.neg s)
    | _ -> None
  in
  let* phi_reg, shifted =
    match phi_of iv_opnd with
    | Some r -> Some (r, false)
    | None -> (
      (* compared register computed in the header from the phi *)
      let* i = Func.find_instr f iv_opnd in
      let* () =
        if List.exists (fun j -> j.id = iv_opnd) header.instrs then Some ()
        else None
      in
      match i.kind with
      | Bin ((Add | Sub), Reg r, CInt _) | Bin (Add, CInt _, Reg r) -> (
        match phi_of r with Some p -> Some (p, true) | None -> None)
      | _ -> None)
  in
  let* phi = Func.find_instr f phi_reg in
  let* incomings = match phi.kind with Phi ins -> Some ins | _ -> None in
  let* init =
    match List.assoc_opt lp.preheader incomings with
    | Some (CInt v) -> Some v
    | _ -> None
  in
  let* back_reg =
    match List.assoc_opt lp.latch incomings with
    | Some (Reg r) -> Some r
    | _ -> None
  in
  let* step = step_of phi_reg back_reg in
  let* step_cmp =
    if not shifted then Some 0L
    else step_of phi_reg iv_opnd (* value at the compare, one step on *)
  in
  let eval op a b =
    let c = Int64.compare a b in
    match op with
    | Eq -> c = 0 | Ne -> c <> 0 | Slt -> c < 0
    | Sle -> c <= 0 | Sgt -> c > 0 | Sge -> c >= 0
  in
  let budget = 1_000_000 in
  let rec iterate (x : int64) (trips : int) : int option =
    if trips > budget then None
    else begin
      let v = Int64.add x step_cmp in
      let taken =
        if iv_on_left then eval op v limit else eval op limit v
      in
      let target = if taken then t_tgt else f_tgt in
      if target = lp.exit then Some trips
      else iterate (Int64.add x step) (trips + 1)
    end
  in
  iterate init 0

(** Check that the recorded metadata matches the CFG-derived loops:
    same headers, each recorded body a superset of the natural body,
    and each latch is a recorded latch.  Returns an error description
    on mismatch. *)
let check_metadata (f : Func.t) : (unit, string) result =
  let natural = analyze f in
  let recorded = f.loops in
  let nat_headers = List.map (fun l -> l.header) natural in
  let rec_headers =
    List.map (fun (l : Func.loop_info) -> l.header) recorded
  in
  if List.sort compare nat_headers <> List.sort compare rec_headers then
    Error
      (Fmt.str "loop headers differ in %s: cfg=%a recorded=%a" f.name
         Fmt.(Dump.list int) nat_headers
         Fmt.(Dump.list int) rec_headers)
  else
    List.fold_left
      (fun acc (nl : natural_loop) ->
        match acc with
        | Error _ -> acc
        | Ok () -> (
          match
            List.find_opt
              (fun (l : Func.loop_info) -> l.header = nl.header)
              recorded
          with
          | None -> Error (Fmt.str "no metadata for loop bb%d" nl.header)
          | Some meta ->
            if not (List.for_all (fun b -> List.mem b meta.body) nl.blocks)
            then
              Error
                (Fmt.str "loop bb%d: metadata body misses cfg blocks"
                   nl.header)
            else if not (List.mem meta.latch nl.latches) then
              Error (Fmt.str "loop bb%d: latch mismatch" nl.header)
            else Ok ()))
      (Ok ()) natural
