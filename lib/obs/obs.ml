(** The telemetry handle: one clock, one metrics registry, one logger,
    one span ring.  Producers (the serve daemon, the explorer) take an
    optional [?obs] and fall back to a fresh silent instance, so
    telemetry is always on structurally but costs nothing and changes
    no output unless a sink is attached.

    Everything in here follows the coordinator-only rule: workers
    return measurements, the coordinating domain folds them into the
    registry.  Nothing is synchronized. *)

type t = {
  o_clock : unit -> float;
  o_metrics : Metrics.t;
  o_log : Log.t;
  o_spans : Span.ring;
  mutable o_seq : int;  (** next span/request id *)
}

let create ?(clock = Unix.gettimeofday) ?log ?(span_capacity = 512) () : t =
  let log = match log with Some l -> l | None -> Log.null () in
  { o_clock = clock; o_metrics = Metrics.create (); o_log = log;
    o_spans = Span.ring span_capacity; o_seq = 0 }

let now (t : t) : float = t.o_clock ()

(** Fresh span/request id; unique per handle, dense from 0. *)
let span_id (t : t) : int =
  let id = t.o_seq in
  t.o_seq <- t.o_seq + 1;
  id
