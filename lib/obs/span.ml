(** Request spans: a completed unit of work (one serve item, one DSE
    evaluation) with its start time, total duration, and an ordered
    list of per-stage segments.  Spans are recorded into a fixed-size
    ring by the coordinator and exported as Chrome trace events — the
    same about://tracing format PR 3 uses for simulator event rings, so
    a serve-layer trace and a simulator trace load into the same
    viewer. *)

module J = Muir_trace.Json

type seg = {
  sg_name : string;  (** stage name, e.g. ["simulate"] *)
  sg_off : float;    (** seconds after span start *)
  sg_dur : float;    (** seconds *)
}

type t = {
  sp_id : int;       (** unique per recorder; Chrome [tid] *)
  sp_name : string;  (** e.g. the workload/stack label *)
  sp_cat : string;   (** e.g. ["serve.item"] *)
  sp_start : float;  (** absolute seconds (injectable clock upstream) *)
  sp_dur : float;    (** total seconds *)
  sp_segs : seg list;
}

(** Sequential layout: stages ran back-to-back, so segment [i] starts
    where [i-1] ended.  Returns the segments and the summed duration. *)
let layout (stages : (string * float) list) : seg list * float =
  let off = ref 0.0 in
  let segs =
    List.map
      (fun (name, dur) ->
        let s = { sg_name = name; sg_off = !off; sg_dur = dur } in
        off := !off +. dur;
        s)
      stages
  in
  (segs, !off)

(* ------------------------------------------------------------------ *)
(* Bounded recording                                                   *)

type ring = {
  r_slots : t option array;
  mutable r_next : int;   (** total pushes; slot = r_next mod capacity *)
}

let ring (cap : int) : ring =
  if cap <= 0 then invalid_arg "Span.ring: capacity must be positive";
  { r_slots = Array.make cap None; r_next = 0 }

let push (r : ring) (sp : t) : unit =
  let cap = Array.length r.r_slots in
  r.r_slots.(r.r_next mod cap) <- Some sp;
  r.r_next <- r.r_next + 1

(** Retained spans, oldest first. *)
let items (r : ring) : t list =
  let cap = Array.length r.r_slots in
  let n = min r.r_next cap in
  let first = if r.r_next <= cap then 0 else r.r_next mod cap in
  List.init n (fun i ->
      match r.r_slots.((first + i) mod cap) with
      | Some sp -> sp
      | None -> assert false)

(* ------------------------------------------------------------------ *)
(* Chrome trace export                                                 *)

let us (s : float) : J.t = J.Float (s *. 1e6)

(** Chrome trace-event JSON ([ph:"X"] complete events, microseconds).
    Each span maps to one whole-span event plus one event per segment,
    all on [tid = sp_id] so concurrent items stack as separate rows. *)
let chrome (spans : t list) : string =
  let events =
    List.concat_map
      (fun sp ->
        let ev name cat ts dur =
          J.Obj
            [ ("name", J.Str name); ("cat", J.Str cat); ("ph", J.Str "X");
              ("ts", us ts); ("dur", us dur); ("pid", J.Int 1);
              ("tid", J.Int sp.sp_id) ]
        in
        ev sp.sp_name sp.sp_cat sp.sp_start sp.sp_dur
        :: List.map
             (fun sg ->
               ev sg.sg_name (sp.sp_cat ^ ".stage")
                 (sp.sp_start +. sg.sg_off) sg.sg_dur)
             sp.sp_segs)
      spans
  in
  J.to_string
    (J.Obj
       [ ("traceEvents", J.Arr events); ("displayTimeUnit", J.Str "ms") ])
