(** Prometheus text exposition (format version 0.0.4): a deterministic
    renderer over {!Metrics}, and a strict line parser used by the
    tests, the CI smoke and [muirc client --metrics] to refuse a
    malformed scrape before anything downstream sees it.

    The renderer sorts families by name and series by canonical label
    string, so two registries with the same contents render
    byte-identically regardless of registration order.  The parser is
    deliberately stricter than Prometheus' own (single-space
    separators, [# TYPE] required before any sample of a family, no
    duplicate samples) and additionally checks histogram invariants:
    every bucket series must carry a [+Inf] bucket whose value equals
    its [_count], with cumulative bucket values non-decreasing in
    [le]. *)

module J = Muir_trace.Json

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)

let escape_help (s : string) : string =
  let buf = Buffer.create (String.length s) in
  String.iter
    (function
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let escape_label_value (s : string) : string =
  let buf = Buffer.create (String.length s) in
  String.iter
    (function
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let float_str (f : float) : string =
  if f = Float.infinity then "+Inf"
  else if f = Float.neg_infinity then "-Inf"
  else if Float.is_nan f then "NaN"
  else J.float_repr f

let label_str (ls : Metrics.labels) : string =
  match ls with
  | [] -> ""
  | _ ->
    "{"
    ^ String.concat ","
        (List.map
           (fun (k, v) -> Fmt.str "%s=\"%s\"" k (escape_label_value v))
           ls)
    ^ "}"

let sample (buf : Buffer.t) (name : string) (ls : Metrics.labels)
    (value : string) : unit =
  Buffer.add_string buf name;
  Buffer.add_string buf (label_str ls);
  Buffer.add_char buf ' ';
  Buffer.add_string buf value;
  Buffer.add_char buf '\n'

let render (t : Metrics.t) : string =
  let buf = Buffer.create 4096 in
  List.iter
    (fun (f : Metrics.family) ->
      if f.f_help <> "" then
        Buffer.add_string buf
          (Fmt.str "# HELP %s %s\n" f.f_name (escape_help f.f_help));
      Buffer.add_string buf
        (Fmt.str "# TYPE %s %s\n" f.f_name (Metrics.kind_name f.f_kind));
      let srs =
        List.sort
          (fun (a : Metrics.series) (b : Metrics.series) ->
            compare (label_str a.sr_labels) (label_str b.sr_labels))
          f.f_series
      in
      List.iter
        (fun (s : Metrics.series) ->
          match s.sr_value with
          | Metrics.VCounter c ->
            sample buf f.f_name s.sr_labels (string_of_int c.cv)
          | Metrics.VGauge g ->
            sample buf f.f_name s.sr_labels (string_of_int g.gv)
          | Metrics.VHist h ->
            let cum = Metrics.cumulative h in
            Array.iteri
              (fun i bound ->
                sample buf (f.f_name ^ "_bucket")
                  (s.sr_labels @ [ ("le", float_str bound) ])
                  (string_of_int cum.(i)))
              h.hb;
            sample buf (f.f_name ^ "_bucket")
              (s.sr_labels @ [ ("le", "+Inf") ])
              (string_of_int cum.(Array.length cum - 1));
            sample buf (f.f_name ^ "_sum") s.sr_labels (float_str h.hsum);
            sample buf (f.f_name ^ "_count") s.sr_labels (string_of_int h.hn))
        srs)
    (Metrics.families t);
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* The strict parser                                                   *)

exception Invalid of string

type sample_line = {
  s_name : string;
  s_labels : (string * string) list;  (** in source order, [le] included *)
  s_value : float;
}

type parsed = {
  p_types : (string * string) list;  (** family → kind, declaration order *)
  p_samples : sample_line list;      (** source order *)
}

let fail line fmt =
  Fmt.kstr (fun m -> raise (Invalid (Fmt.str "line %d: %s" line m))) fmt

let parse_value ~line (s : string) : float =
  match s with
  | "+Inf" | "Inf" -> Float.infinity
  | "-Inf" -> Float.neg_infinity
  | "NaN" -> Float.nan
  | _ -> (
    match float_of_string_opt s with
    | Some f when Float.is_finite f -> f
    | _ -> fail line "invalid sample value %S" s)

(** Parse [name{l="v",...} value]; positions are byte offsets used only
    for error messages. *)
let parse_sample ~line (s : string) : sample_line =
  let n = String.length s in
  let i = ref 0 in
  while
    !i < n
    && (match s.[!i] with
       | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true
       | _ -> false)
  do
    incr i
  done;
  let name = String.sub s 0 !i in
  if not (Metrics.valid_metric_name name) then
    fail line "invalid metric name %S" name;
  let labels = ref [] in
  if !i < n && s.[!i] = '{' then begin
    incr i;
    let parsing = ref true in
    while !parsing do
      if !i >= n then fail line "unterminated label set";
      if s.[!i] = '}' then begin
        incr i;
        parsing := false
      end
      else begin
        let start = !i in
        while
          !i < n
          && (match s.[!i] with
             | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true
             | _ -> false)
        do
          incr i
        done;
        let lname = String.sub s start (!i - start) in
        if not (Metrics.valid_label_name lname) then
          fail line "invalid label name %S" lname;
        if not (!i + 1 < n && s.[!i] = '=' && s.[!i + 1] = '"') then
          fail line "label %s: expected =\"" lname;
        i := !i + 2;
        let buf = Buffer.create 16 in
        let closed = ref false in
        while not !closed do
          if !i >= n then fail line "unterminated label value";
          (match s.[!i] with
          | '"' ->
            closed := true;
            incr i
          | '\\' ->
            if !i + 1 >= n then fail line "dangling escape";
            (match s.[!i + 1] with
            | '\\' -> Buffer.add_char buf '\\'
            | '"' -> Buffer.add_char buf '"'
            | 'n' -> Buffer.add_char buf '\n'
            | c -> fail line "invalid escape \\%c" c);
            i := !i + 2
          | c ->
            Buffer.add_char buf c;
            incr i)
        done;
        if List.mem_assoc lname !labels then
          fail line "duplicate label %S" lname;
        labels := (lname, Buffer.contents buf) :: !labels;
        if !i < n && s.[!i] = ',' then incr i
        else if !i < n && s.[!i] = '}' then ()
        else if !i >= n then fail line "unterminated label set"
        else fail line "expected , or } after label %s" lname
      end
    done
  end;
  if !i >= n || s.[!i] <> ' ' then fail line "expected single space before value";
  incr i;
  let value = String.sub s !i (n - !i) in
  if value = "" || String.contains value ' ' then
    fail line "expected exactly one value after single space";
  { s_name = name; s_labels = List.rev !labels;
    s_value = parse_value ~line value }

(** The family a sample belongs to under [types]: its own name, or the
    base name when a [_bucket]/[_sum]/[_count] suffix points at a
    declared histogram. *)
let family_of ~(types : (string * string) list) (name : string) :
    string option =
  if List.mem_assoc name types then Some name
  else
    let strip suf =
      if Filename.check_suffix name suf then
        Some (Filename.chop_suffix name suf)
      else None
    in
    let base =
      match strip "_bucket" with
      | Some b -> Some b
      | None -> (
        match strip "_sum" with
        | Some b -> Some b
        | None -> strip "_count")
    in
    match base with
    | Some b when List.assoc_opt b types = Some "histogram" -> Some b
    | _ -> None

let valid_kinds = [ "counter"; "gauge"; "histogram"; "summary"; "untyped" ]

let check_histograms (p : parsed) : unit =
  List.iteri
    (fun _ (fam, kind) ->
      if kind = "histogram" then begin
        (* Group bucket samples by their non-le label set. *)
        let groups : (string, (float * float) list ref) Hashtbl.t =
          Hashtbl.create 4
        in
        let group_key ls =
          label_str
            (List.sort compare (List.filter (fun (k, _) -> k <> "le") ls))
        in
        List.iter
          (fun s ->
            if s.s_name = fam ^ "_bucket" then begin
              let le =
                match List.assoc_opt "le" s.s_labels with
                | Some v -> parse_value ~line:0 v
                | None -> raise (Invalid (fam ^ ": bucket without le label"))
              in
              let key = group_key s.s_labels in
              let cell =
                match Hashtbl.find_opt groups key with
                | Some c -> c
                | None ->
                  let c = ref [] in
                  Hashtbl.add groups key c;
                  c
              in
              cell := (le, s.s_value) :: !cell
            end)
          p.p_samples;
        Hashtbl.iter
          (fun key cell ->
            let buckets =
              List.sort (fun (a, _) (b, _) -> compare a b) !cell
            in
            (match List.rev buckets with
            | (le, last) :: _ ->
              if le <> Float.infinity then
                raise (Invalid (Fmt.str "%s%s: no +Inf bucket" fam key));
              let count =
                List.find_opt
                  (fun s ->
                    s.s_name = fam ^ "_count" && group_key s.s_labels = key)
                  p.p_samples
              in
              (match count with
              | None ->
                raise (Invalid (Fmt.str "%s%s: missing _count" fam key))
              | Some c ->
                if c.s_value <> last then
                  raise
                    (Invalid
                       (Fmt.str "%s%s: _count %g <> +Inf bucket %g" fam key
                          c.s_value last)));
              if
                not
                  (List.exists
                     (fun s ->
                       s.s_name = fam ^ "_sum" && group_key s.s_labels = key)
                     p.p_samples)
              then raise (Invalid (Fmt.str "%s%s: missing _sum" fam key))
            | [] -> ());
            ignore
              (List.fold_left
                 (fun prev (_, v) ->
                   if v < prev then
                     raise
                       (Invalid
                          (Fmt.str "%s%s: bucket values decrease" fam key));
                   v)
                 0.0 buckets))
          groups
      end)
    p.p_types

(** Parse a whole exposition strictly.
    @raise Invalid with a line-numbered reason on the first violation *)
let parse (text : string) : parsed =
  let lines = String.split_on_char '\n' text in
  let types = ref [] and samples = ref [] in
  let seen : (string, unit) Hashtbl.t = Hashtbl.create 64 in
  List.iteri
    (fun idx raw ->
      let line = idx + 1 in
      if raw = "" then ()  (* blank lines and the trailing newline *)
      else if String.length raw >= 2 && String.sub raw 0 2 = "# " then begin
        match String.split_on_char ' ' raw with
        | "#" :: "TYPE" :: name :: [ kind ] ->
          if not (Metrics.valid_metric_name name) then
            fail line "TYPE with invalid name %S" name;
          if not (List.mem kind valid_kinds) then
            fail line "unknown TYPE %S" kind;
          if List.mem_assoc name !types then
            fail line "duplicate TYPE for %s" name;
          types := !types @ [ (name, kind) ]
        | "#" :: "HELP" :: name :: _ ->
          if not (Metrics.valid_metric_name name) then
            fail line "HELP with invalid name %S" name;
          if List.mem_assoc name !types then
            fail line "HELP for %s after its TYPE" name
        | _ -> fail line "malformed comment (only # HELP / # TYPE allowed)"
      end
      else if String.length raw >= 1 && raw.[0] = '#' then
        fail line "malformed comment"
      else begin
        let s = parse_sample ~line raw in
        (match family_of ~types:!types s.s_name with
        | Some _ -> ()
        | None -> fail line "sample %s has no preceding # TYPE" s.s_name);
        let key = s.s_name ^ label_str s.s_labels in
        if Hashtbl.mem seen key then fail line "duplicate sample %s" key;
        Hashtbl.add seen key ();
        samples := s :: !samples
      end)
    lines;
  let p = { p_types = !types; p_samples = List.rev !samples } in
  check_histograms p;
  p

(* ------------------------------------------------------------------ *)
(* Readers over a parsed exposition                                    *)

let find_sample (p : parsed) ~(name : string)
    ?(labels : (string * string) list = []) () : float option =
  let want = List.sort compare labels in
  List.find_map
    (fun s ->
      if s.s_name = name && List.sort compare s.s_labels = want then
        Some s.s_value
      else None)
    p.p_samples

type histdata = {
  hd_bounds : float array;  (** finite bounds, ascending *)
  hd_cum : int array;       (** cumulative counts incl. the +Inf slot *)
  hd_sum : float;
  hd_count : int;
}

(** Reconstruct one histogram series (identified by its non-le labels)
    from a parsed exposition. *)
let find_histogram (p : parsed) ~(name : string)
    ?(labels : (string * string) list = []) () : histdata option =
  let want = List.sort compare labels in
  let buckets =
    List.filter_map
      (fun s ->
        if s.s_name <> name ^ "_bucket" then None
        else
          let le = List.assoc_opt "le" s.s_labels in
          let rest =
            List.sort compare
              (List.filter (fun (k, _) -> k <> "le") s.s_labels)
          in
          match le with
          | Some v when rest = want ->
            Some (parse_value ~line:0 v, int_of_float s.s_value)
          | _ -> None)
      p.p_samples
  in
  if buckets = [] then None
  else begin
    let buckets = List.sort (fun (a, _) (b, _) -> compare a b) buckets in
    let finite = List.filter (fun (le, _) -> Float.is_finite le) buckets in
    let sum =
      Option.value ~default:0.0 (find_sample p ~name:(name ^ "_sum") ~labels ())
    in
    let count =
      int_of_float
        (Option.value ~default:0.0
           (find_sample p ~name:(name ^ "_count") ~labels ()))
    in
    Some
      { hd_bounds = Array.of_list (List.map fst finite);
        hd_cum = Array.of_list (List.map snd buckets);
        hd_sum = sum;
        hd_count = count }
  end

let quantile (h : histdata) (q : float) : float =
  Metrics.quantile_of ~bounds:h.hd_bounds ~cum:h.hd_cum q
