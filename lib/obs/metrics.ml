(** The metrics registry: named counters, gauges and fixed-bucket
    latency histograms.

    Design constraints, in order:

    - {e deterministic} — every stored quantity is an exact integer
      (counters, gauges, per-bucket observation counts) except a
      histogram's running sum, which only ever accumulates observed
      values; with an injected clock upstream, two identical runs
      render byte-identical expositions ({!Prom.render} sorts families
      and series, so registration order never shows);
    - {e O(1) per observation} — an observation is one bounded bucket
      scan (bucket counts are fixed at registration) and two adds; no
      allocation, no hashing;
    - {e coordinator-only} — nothing here is synchronized.  The rule,
      inherited from the explorer's memo cache and the daemon's stats
      block, is that only the coordinating domain touches a registry;
      workers return measurements and the coordinator folds them in.

    A {e family} is a metric name with a kind, help text and (for
    histograms) bucket bounds; a {e series} is one labelled instance of
    a family.  Registration is find-or-create: asking twice for the
    same name and label set returns the same instance, asking for the
    same name with a conflicting kind, help or bucket layout is a
    programming error ([Invalid_argument]). *)

type labels = (string * string) list

(* ------------------------------------------------------------------ *)
(* Name validation (the Prometheus data model)                         *)

let valid_metric_name (s : string) : bool =
  s <> ""
  && (match s.[0] with
     | 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true
     | _ -> false)
  && String.for_all
       (function
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true
         | _ -> false)
       s

let valid_label_name (s : string) : bool =
  s <> ""
  && (match s.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' -> true | _ -> false)
  && String.for_all
       (function
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true
         | _ -> false)
       s

(** Canonical form: sorted by label name, duplicates rejected.  Two
    label lists denote the same series iff their canonical forms are
    equal. *)
let canon_labels (name : string) (ls : labels) : labels =
  let ls = List.sort (fun (a, _) (b, _) -> compare a b) ls in
  let rec check = function
    | [] -> ()
    | (k, _) :: tl ->
      if not (valid_label_name k) then
        invalid_arg (Fmt.str "metric %s: invalid label name %S" name k);
      if k = "le" then
        invalid_arg (Fmt.str "metric %s: label name \"le\" is reserved" name);
      (match tl with
      | (k2, _) :: _ when k = k2 ->
        invalid_arg (Fmt.str "metric %s: duplicate label %S" name k)
      | _ -> ());
      check tl
  in
  check ls;
  ls

(* ------------------------------------------------------------------ *)
(* Values                                                              *)

type counter = { mutable cv : int }
type gauge = { mutable gv : int }

type hist = {
  hb : float array;      (** upper bucket bounds, strictly increasing *)
  hc : int array;        (** per-bucket counts; last slot is +Inf *)
  mutable hsum : float;  (** running sum of observed values *)
  mutable hn : int;      (** total observations *)
}

type value = VCounter of counter | VGauge of gauge | VHist of hist

type kind = Counter | Gauge | Histogram

let kind_name = function
  | Counter -> "counter"
  | Gauge -> "gauge"
  | Histogram -> "histogram"

type series = { sr_labels : labels; sr_value : value }

type family = {
  f_name : string;
  f_help : string;
  f_kind : kind;
  f_bounds : float array;       (** empty unless [f_kind = Histogram] *)
  mutable f_series : series list;  (** registration order *)
}

type t = { families : (string, family) Hashtbl.t }

let create () : t = { families = Hashtbl.create 32 }

let families (t : t) : family list =
  Hashtbl.fold (fun _ f acc -> f :: acc) t.families []
  |> List.sort (fun a b -> compare a.f_name b.f_name)

(* ------------------------------------------------------------------ *)
(* Registration                                                        *)

(** Latency buckets that resolve both a cache probe (~µs) and a cold
    whole-pipeline simulation (~s): 10 µs up to 10 s, roughly
    geometric.  The implicit final bucket is +Inf. *)
let default_buckets : float array =
  [| 1e-5; 1e-4; 5e-4; 1e-3; 5e-3; 0.01; 0.025; 0.05; 0.1; 0.25; 0.5;
     1.0; 2.5; 5.0; 10.0 |]

let family (t : t) ~(kind : kind) ~(help : string) ~(bounds : float array)
    (name : string) : family =
  if not (valid_metric_name name) then
    invalid_arg (Fmt.str "invalid metric name %S" name);
  match Hashtbl.find_opt t.families name with
  | Some f ->
    if f.f_kind <> kind then
      invalid_arg
        (Fmt.str "metric %s is a %s, requested as %s" name
           (kind_name f.f_kind) (kind_name kind));
    if f.f_help <> help then
      invalid_arg (Fmt.str "metric %s re-registered with different help" name);
    if f.f_bounds <> bounds then
      invalid_arg
        (Fmt.str "metric %s re-registered with different buckets" name);
    f
  | None ->
    Array.iteri
      (fun i b ->
        if not (Float.is_finite b) then
          invalid_arg (Fmt.str "metric %s: non-finite bucket bound" name);
        if i > 0 && bounds.(i - 1) >= b then
          invalid_arg
            (Fmt.str "metric %s: bucket bounds not strictly increasing" name))
      bounds;
    let f = { f_name = name; f_help = help; f_kind = kind;
              f_bounds = bounds; f_series = [] }
    in
    Hashtbl.add t.families name f;
    f

let series (f : family) (labels : labels) (fresh : unit -> value) : value =
  let labels = canon_labels f.f_name labels in
  match
    List.find_opt (fun s -> s.sr_labels = labels) f.f_series
  with
  | Some s -> s.sr_value
  | None ->
    let v = fresh () in
    f.f_series <- f.f_series @ [ { sr_labels = labels; sr_value = v } ];
    v

let counter (t : t) ?(help = "") ?(labels = []) (name : string) : counter =
  let f = family t ~kind:Counter ~help ~bounds:[||] name in
  match series f labels (fun () -> VCounter { cv = 0 }) with
  | VCounter c -> c
  | _ -> assert false

let gauge (t : t) ?(help = "") ?(labels = []) (name : string) : gauge =
  let f = family t ~kind:Gauge ~help ~bounds:[||] name in
  match series f labels (fun () -> VGauge { gv = 0 }) with
  | VGauge g -> g
  | _ -> assert false

let histogram (t : t) ?(help = "") ?(labels = [])
    ?(buckets = default_buckets) (name : string) : hist =
  let f = family t ~kind:Histogram ~help ~bounds:buckets name in
  match
    series f labels (fun () ->
        VHist
          { hb = buckets; hc = Array.make (Array.length buckets + 1) 0;
            hsum = 0.0; hn = 0 })
  with
  | VHist h -> h
  | _ -> assert false

(* ------------------------------------------------------------------ *)
(* Updates                                                             *)

let inc (c : counter) : unit = c.cv <- c.cv + 1

let add (c : counter) (n : int) : unit =
  if n < 0 then invalid_arg "Metrics.add: counters are monotonic";
  c.cv <- c.cv + n

(** Mirror an externally maintained monotonic total (the daemon's
    cache hit/miss counts live in {!Muir_dse.Cache}); the counter
    semantics still hold because the source is monotonic. *)
let counter_set (c : counter) (n : int) : unit = c.cv <- n

let set (g : gauge) (n : int) : unit = g.gv <- n
let gauge_add (g : gauge) (n : int) : unit = g.gv <- g.gv + n

(** One observation: one bounded scan for the bucket (bounds are
    inclusive upper limits, [v <= hb.(i)]), three field updates. *)
let observe (h : hist) (v : float) : unit =
  let n = Array.length h.hb in
  let rec slot i = if i >= n || v <= h.hb.(i) then i else slot (i + 1) in
  let i = slot 0 in
  h.hc.(i) <- h.hc.(i) + 1;
  h.hsum <- h.hsum +. v;
  h.hn <- h.hn + 1

(* ------------------------------------------------------------------ *)
(* Reading                                                             *)

let counter_value (c : counter) : int = c.cv
let gauge_value (g : gauge) : int = g.gv
let hist_count (h : hist) : int = h.hn
let hist_sum (h : hist) : float = h.hsum

(** Cumulative bucket counts (the Prometheus wire shape): one entry
    per bound plus the +Inf slot; the last entry equals {!hist_count}. *)
let cumulative (h : hist) : int array =
  let cum = Array.make (Array.length h.hc) 0 in
  let acc = ref 0 in
  Array.iteri
    (fun i c ->
      acc := !acc + c;
      cum.(i) <- !acc)
    h.hc;
  cum

(** Quantile estimate from bucket counts, the [histogram_quantile]
    interpolation: find the first bucket whose cumulative count covers
    rank [q * n], then interpolate linearly inside it.  Observations in
    the +Inf bucket clamp to the highest finite bound; an empty
    histogram answers 0. *)
let quantile_of ~(bounds : float array) ~(cum : int array) (q : float) :
    float =
  let nb = Array.length bounds in
  let total = if Array.length cum = 0 then 0 else cum.(Array.length cum - 1) in
  if total = 0 || nb = 0 then 0.0
  else begin
    let rank = q *. float_of_int total in
    let rec find i = if i >= nb || float_of_int cum.(i) >= rank then i else find (i + 1) in
    let i = find 0 in
    if i >= nb then bounds.(nb - 1)
    else
      let lo = if i = 0 then 0.0 else bounds.(i - 1) in
      let hi = bounds.(i) in
      let below = if i = 0 then 0 else cum.(i - 1) in
      let inside = cum.(i) - below in
      if inside = 0 then hi
      else
        lo +. ((hi -. lo) *. (rank -. float_of_int below) /. float_of_int inside)
  end

let quantile (h : hist) (q : float) : float =
  quantile_of ~bounds:h.hb ~cum:(cumulative h) q
