(** Structured JSON event log: one line per event, greppable, with a
    monotonic sequence number and a timestamp from an injectable clock.

    Records are rendered with {!Muir_trace.Json} so the wire shape is
    the same strict JSON as every other artifact in the repo:

    {v {"seq":12,"ts":1723118400.25,"level":"info","event":"admit","id":3,...} v}

    The sink is any [string -> unit]; the daemon points it at a file
    or stderr, tests at a [Buffer].  A disabled logger ({!null}) costs
    one branch per call — producers do not guard their call sites. *)

module J = Muir_trace.Json

type level = Debug | Info | Warn | Error

let level_name = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

let level_rank = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3

type t = {
  lg_sink : (string -> unit) option;
  lg_min : level;
  lg_clock : unit -> float;
  mutable lg_seq : int;  (** next sequence number; counts emitted records *)
}

(** A logger that drops everything; the default everywhere so telemetry
    never changes behaviour unless asked for. *)
let null () : t =
  { lg_sink = None; lg_min = Error; lg_clock = (fun () -> 0.0); lg_seq = 0 }

let create ?(min_level = Debug) ?(clock = Unix.gettimeofday)
    (sink : string -> unit) : t =
  { lg_sink = Some sink; lg_min = min_level; lg_clock = clock; lg_seq = 0 }

(** Sink writing one line per record, flushed so a [tail -f] or a
    crashed daemon never hides records. *)
let to_channel (oc : out_channel) : string -> unit =
 fun line ->
  output_string oc line;
  output_char oc '\n';
  flush oc

let enabled (t : t) (lvl : level) : bool =
  match t.lg_sink with
  | None -> false
  | Some _ -> level_rank lvl >= level_rank t.lg_min

(** Emit one record.  [fields] follow the fixed header fields; the
    sequence number only advances on records that are actually
    written, so a file of N lines always carries seq 0..N-1. *)
let event (t : t) ?(level = Info) (name : string)
    (fields : (string * J.t) list) : unit =
  match t.lg_sink with
  | Some sink when level_rank level >= level_rank t.lg_min ->
    let record =
      J.Obj
        ([ ("seq", J.Int t.lg_seq);
           ("ts", J.Float (t.lg_clock ()));
           ("level", J.Str (level_name level));
           ("event", J.Str name) ]
        @ fields)
    in
    t.lg_seq <- t.lg_seq + 1;
    sink (J.to_string record)
  | _ -> ()
