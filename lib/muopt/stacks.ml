(** Predefined pass stacks, mirroring the orderings the paper
    evaluates (§6.5, Fig. 8 and Fig. 17). *)

module G = Muir_core.Graph

(** The full five-pass stack of Fig. 8 for Cilk-style accelerators:
    task queuing → execution tiling → local scratchpads → scratchpad
    banking → op fusion and pipelining. *)
let cilk_stack ?(tiles = 4) ?(banks = 2) () : Pass.t list =
  [ Structural.queuing_pass ();
    Structural.tiling_pass ~tiles ();
    Structural.localization_pass ();
    Structural.scratchpad_banking_pass ~banks ();
    Structural.cache_banking_pass ~banks ();
    Fusion.pass ]

(** The stack used for the loop-nest workloads in Fig. 17: cache
    banking, memory localization, op fusion. *)
let loop_stack ?(banks = 2) () : Pass.t list =
  [ Structural.queuing_pass ();
    Structural.cache_banking_pass ~banks ();
    Structural.localization_pass ();
    Fusion.pass ]

(** The "every optimization" stack used against the ARM A9 (§6.6):
    the loop stack plus execution tiling of every loop task, so
    concurrent inner-loop invocations run on parallel units. *)
let best_loop_stack ?(banks = 4) ?(tiles = 8) () : Pass.t list =
  [ Structural.queuing_pass ();
    Structural.tiling_pass ~scope:`All_loops ~tiles ();
    Structural.cache_banking_pass ~banks ();
    Structural.localization_pass ();
    Structural.scratchpad_banking_pass ~banks ();
    Fusion.pass ]

(** The tensor stack: localization into type-specific scratchpads plus
    dedicated tensor units (§6.3), then fusion. *)
let tensor_stack () : Pass.t list =
  [ Structural.queuing_pass ();
    Structural.localization_pass ();
    Tensor.pass;
    Fusion.pass ]

(** Every optimization the repository implements, in Fig. 8 order. *)
let all ?(tiles = 4) ?(banks = 2) () : Pass.t list =
  [ Structural.queuing_pass ();
    Structural.tiling_pass ~tiles ();
    Structural.localization_pass ();
    Structural.scratchpad_banking_pass ~banks ();
    Structural.cache_banking_pass ~banks ();
    Tensor.pass;
    Fusion.pass ]

(* ------------------------------------------------------------------ *)
(* Named-stack registry                                                 *)

(** The numeric knobs a stack can expose.  Every stack takes the full
    record and reads only the fields it uses (see {!spec.sp_uses_tiles}
    / {!spec.sp_uses_banks}) — callers that sweep the space can use
    those flags to avoid re-evaluating configurations that build the
    same pass list. *)
type params = { tiles : int; banks : int }

(** One named, parameterizable stack.  [muirc]'s [-O] parsing, its help
    text and the design-space explorer all derive from this registry,
    so a stack added here shows up everywhere at once. *)
type spec = {
  sp_name : string;
  sp_desc : string;
  sp_uses_tiles : bool;   (** the builder reads [params.tiles] *)
  sp_uses_banks : bool;   (** the builder reads [params.banks] *)
  sp_defaults : params;   (** what a bare [-O name] means *)
  sp_build : params -> Pass.t list;
}

let registry : spec list =
  [ { sp_name = "baseline";
      sp_desc = "no μopt passes (the constructed circuit as-is)";
      sp_uses_tiles = false; sp_uses_banks = false;
      sp_defaults = { tiles = 1; banks = 1 };
      sp_build = (fun _ -> []) };
    { sp_name = "loop-stack";
      sp_desc = "queuing + cache banking + localization + fusion (Fig. 17)";
      sp_uses_tiles = false; sp_uses_banks = true;
      sp_defaults = { tiles = 1; banks = 2 };
      sp_build = (fun p -> loop_stack ~banks:p.banks ()) };
    { sp_name = "cilk-stack";
      sp_desc =
        "queuing + tiling + localization + banking + fusion (Fig. 8)";
      sp_uses_tiles = true; sp_uses_banks = true;
      sp_defaults = { tiles = 4; banks = 2 };
      sp_build = (fun p -> cilk_stack ~tiles:p.tiles ~banks:p.banks ()) };
    { sp_name = "tensor-stack";
      sp_desc = "localization + dedicated tensor units + fusion (§6.3)";
      sp_uses_tiles = false; sp_uses_banks = false;
      sp_defaults = { tiles = 1; banks = 1 };
      sp_build = (fun _ -> tensor_stack ()) };
    { sp_name = "best";
      sp_desc = "every loop optimization incl. all-loops tiling (§6.6)";
      sp_uses_tiles = true; sp_uses_banks = true;
      sp_defaults = { tiles = 8; banks = 4 };
      sp_build = (fun p -> best_loop_stack ~banks:p.banks ~tiles:p.tiles ()) } ]

let find_spec (name : string) : spec option =
  List.find_opt (fun s -> s.sp_name = name) registry

let names () : string list = List.map (fun s -> s.sp_name) registry

(** Apply a stack to a fresh circuit built from [prog]. *)
let optimized ?(entry = "main") ?(name = "accelerator")
    (passes : Pass.t list) (prog : Muir_ir.Program.t) :
    G.circuit * Pass.report list =
  let c = Muir_core.Build.circuit ~entry ~name prog in
  let reports = Pass.run_all passes c in
  (c, reports)
