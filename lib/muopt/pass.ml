(** The μopt pass framework.

    A pass is an in-place transformation of a μIR circuit together
    with a change report.  The report counts the graph elements the
    pass touched (added, removed, or re-parameterized) — this is the
    μIR side of the paper's Table 4 conciseness study, where the same
    architectural change is also measured as a diff of the lowered
    circuit ("FIRRTL") graph. *)

module G = Muir_core.Graph

type report = {
  rname : string;
  delta_nodes : int;  (** μIR nodes added/removed/re-parameterized *)
  delta_edges : int;  (** μIR edges added/removed/rewired *)
  detail : string;
}

let report ?(detail = "") rname ~nodes ~edges =
  { rname; delta_nodes = nodes; delta_edges = edges; detail }

type t = {
  pname : string;
  prun : G.circuit -> report;
}

(** Run passes in order, validating the circuit after each one.
    Raises [Invalid_argument] if a pass breaks a structural
    invariant.  With [~strict] the liveness analysis also runs after
    every pass, so a rewrite that leaves the circuit structurally
    valid but unable to make progress (a zero-token cycle, a starved
    live-out) is caught at the pass that introduced it. *)
let run_all ?(strict = false) (passes : t list) (c : G.circuit) :
    report list =
  List.map
    (fun p ->
      let r = p.prun c in
      (try Muir_core.Validate.check_exn c
       with Invalid_argument m ->
         invalid_arg (Fmt.str "pass %s broke the circuit: %s" p.pname m));
      if strict then
        Muir_analysis.Check.exn_on_errors
          ~stage:(Fmt.str "pass %s" p.pname)
          (Muir_analysis.Check.circuit_liveness c);
      r)
    passes

let pp_report ppf r =
  Fmt.pf ppf "%-24s Δnodes=%-4d Δedges=%-4d %s" r.rname r.delta_nodes
    r.delta_edges r.detail
