(** The design-space explorer: enumerate μopt configurations
    ({!Config.t}), evaluate each one with the cycle-level simulator
    (performance) and the synthesis models (cost), and report the
    cycles-vs-area Pareto frontier.

    Evaluation is memoized through a content-keyed {!Cache} and fanned
    out over a {!Pool} of domains; because the cache is consulted and
    filled only by the coordinating domain and the pool merges results
    by input index, the explorer's output is identical for every
    [--jobs] value.

    Two search strategies:
    - {e grid} — exhaustive sweep of a finite space (the default space
      covers every registry stack × tiles × banks × op-fusion on/off,
      and always contains each predefined stack at its own defaults);
    - {e greedy} — counter-guided hill climb: seeds every stack at
      minimal parameters and widens the parameter behind the dominant
      stall ({!Muir_trace.Profile} attribution over the simulator's
      always-on counter bank — no event ring involved: task-queue
      stalls → more tiles, memory-structure stalls → more banks), with
      a seeded-LCG diversification step that also expands one other
      frontier point per round.

    Either way, a configuration whose modeled FPGA area already
    exceeds [--area-budget] is pruned analytically — the model runs,
    the simulator does not. *)

module G = Muir_core.Graph
module Stacks = Muir_opt.Stacks
module W = Muir_workloads.Workloads

(* ------------------------------------------------------------------ *)
(* Subjects                                                             *)

(** What to explore: a name and a thunk producing a fresh program.
    The thunk runs once per evaluation {e inside the worker domain},
    so nothing mutable (program memory included) is ever shared across
    domains. *)
type subject = {
  s_name : string;
  s_program : unit -> Muir_ir.Program.t;
}

let workload_subject (w : W.t) : subject =
  { s_name = w.wname; s_program = (fun () -> W.program w) }

let source_subject ~(name : string) (src : string) : subject =
  { s_name = name;
    s_program = (fun () -> Muir_frontend.Frontend.compile src) }

(* ------------------------------------------------------------------ *)
(* Evaluations                                                          *)

(** What the profiler blames, mapped onto the knob that widens it. *)
type hint = Widen_tiles | Widen_banks

type eval = {
  e_key : string;          (** {!Config.key} — the memo-cache key *)
  e_cfg : Config.t;
  e_alms : int;            (** FPGA cost (Arria-10-class ALMs) *)
  e_brams : int;
  e_mhz : float;
  e_asic_area : float;     (** ASIC logic area, 10^3 µm² at 28 nm *)
  e_bound : int;           (** static cycle lower bound ({!Muir_analysis.Timing}) *)
  e_cycles : int option;   (** [None] — pruned before simulation *)
  e_us : float option;     (** cycles at the modeled FPGA clock *)
  e_tpruned : bool;        (** pruned by the timing bound, not area *)
  e_hint : hint option;    (** greedy guidance, from the counter bank *)
  e_secs : float array;    (** per-stage seconds ({!Muir_pipeline.Pipeline.stage_index});
                               telemetry only — never serialized *)
  e_counts : int array;    (** per-stage invocations, same indexing *)
}

let pruned (e : eval) : bool = e.e_cycles = None

(** Does an already-simulated point [(c0, a0)] make simulating a
    candidate with static cycle bound [>= b] and area [a] pointless?
    Strict domination only: the candidate's true cycles are [>= b], so
    it can neither enter the frontier (some point is no worse on both
    axes and strictly better on one, and wins the [(cycles, alms,
    key)] sort ties) nor become [best].  Exact ties are never pruned —
    the frontier and best stay byte-identical with pruning off. *)
let timing_dominates ~(bound : int) ~(alms : int) ((c0, a0) : int * int) :
    bool =
  (c0 <= bound && a0 < alms) || (c0 < bound && a0 <= alms)

(** Evaluate one configuration from scratch: compile, build, optimize,
    model — and, if neither the area budget nor an incumbent's timing
    domination rules it out, simulate.  [dominators] are
    already-simulated [(cycles, alms)] points (the coordinator passes
    the current frontier).  Every simulated evaluation checks the
    static bound against the measured cycles — the analysis's
    soundness contract is enforced on every run, not only in tests. *)
let evaluate ?now ~(subject : subject) ~(area_budget : int option)
    ~(dominators : (int * int) list) (cfg : Config.t) : eval =
  let module P = Muir_pipeline.Pipeline in
  let ctl = P.ctl ?now () in
  let key = Config.key cfg in
  let b =
    P.build ~ctl ~passes:(Config.passes cfg)
      { P.src_name = Some subject.s_name; src_load = subject.s_program }
  in
  let c = b.P.p_circuit in
  let m = P.model ~ctl b in
  let f = m.P.m_fpga in
  let a = m.P.m_asic in
  let bound = Muir_analysis.Timing.bound_cycles c in
  let base =
    { e_key = key; e_cfg = cfg; e_alms = f.fr_alms; e_brams = f.fr_brams;
      e_mhz = f.fr_mhz; e_asic_area = a.ar_area; e_bound = bound;
      e_cycles = None; e_us = None; e_tpruned = false; e_hint = None;
      e_secs = ctl.P.stage_seconds; e_counts = ctl.P.stage_counts }
  in
  let over =
    match area_budget with Some b -> f.fr_alms > b | None -> false
  in
  if over then base
  else if
    List.exists (timing_dominates ~bound ~alms:f.fr_alms) dominators
  then { base with e_tpruned = true }
  else begin
    let r = P.simulate ~ctl b in
    let cycles = r.Muir_sim.Sim.stats.total_cycles in
    if bound > cycles then
      invalid_arg
        (Fmt.str
           "timing unsound on %s (%s): static bound %d > measured %d \
            cycles"
           subject.s_name (Config.label cfg) bound cycles);
    (* The hint comes from the always-on counter bank — every
       simulated evaluation gets one, no event ring attached. *)
    let prof = Muir_trace.Profile.of_run c r.Muir_sim.Sim.counters in
    let hint =
      match Muir_trace.Profile.dominant_struct prof with
      | None -> None
      | Some s -> (
        match s.s_ref with
        | G.Rqueue _ -> Some Widen_tiles
        | G.Rstruct sid -> (
          match (G.structure c sid).shape with
          | G.Cache _ | G.Scratchpad _ -> Some Widen_banks))
    in
    { base with
      e_cycles = Some cycles;
      e_us = Some (float_of_int cycles /. f.fr_mhz);
      e_hint = hint }
  end

(* ------------------------------------------------------------------ *)
(* Frontier                                                             *)

(** Pareto-minimal evaluations over (cycles, ALMs), sorted by cycles
    ascending / area descending.  Pruned points never qualify. *)
let frontier (evs : eval list) : eval list =
  let pts =
    List.filter_map
      (fun e ->
        match e.e_cycles with Some c -> Some (c, e) | None -> None)
      evs
    |> List.sort (fun (c1, e1) (c2, e2) ->
           compare (c1, e1.e_alms, e1.e_key) (c2, e2.e_alms, e2.e_key))
  in
  let rec sweep best_alms acc = function
    | [] -> List.rev acc
    | (_, e) :: tl ->
      if e.e_alms < best_alms then sweep e.e_alms (e :: acc) tl
      else sweep best_alms acc tl
  in
  sweep max_int [] pts

(** Fastest configuration: min cycles, ties broken by area then key. *)
let best (evs : eval list) : eval option =
  List.fold_left
    (fun acc e ->
      match (e.e_cycles, acc) with
      | None, _ -> acc
      | Some _, None -> Some e
      | Some c, Some b ->
        let bc = Option.get b.e_cycles in
        if compare (c, e.e_alms, e.e_key) (bc, b.e_alms, b.e_key) < 0
        then Some e
        else acc)
    None evs

(* ------------------------------------------------------------------ *)
(* Search spaces                                                        *)

(** The exhaustive grid: every registry stack × the knobs it actually
    reads × op-fusion on/off.  Contains each predefined stack at its
    own default parameters, so the explorer's best can never lose to a
    predefined stack (at equal or lower area) unless the budget
    excludes it. *)
let default_grid () : Config.t list =
  List.concat_map
    (fun (s : Stacks.spec) ->
      let tiles = if s.sp_uses_tiles then [ 1; 2; 4; 8 ] else [ 1 ] in
      let banks = if s.sp_uses_banks then [ 1; 2; 4 ] else [ 1 ] in
      let offs = [ []; [ "op-fusion" ] ] in
      List.concat_map
        (fun t ->
          List.concat_map
            (fun b ->
              List.map
                (fun off -> Config.v ~tiles:t ~banks:b ~off s.sp_name)
                offs)
            banks)
        tiles)
    Stacks.registry

type strategy = Grid | Greedy

let strategy_to_string = function Grid -> "grid" | Greedy -> "greedy"

let strategy_of_string = function
  | "grid" -> Some Grid
  | "greedy" -> Some Greedy
  | _ -> None

(* ------------------------------------------------------------------ *)
(* The explorer                                                         *)

(** The explorer's registered metric handles ([muir_dse_*] naming
    convention); created against the [?obs] registry when one is
    passed.  Updated by the coordinating domain only, and only for
    {e fresh} evaluations — a cached replay is never re-observed, so
    [muir_dse_evals_total] always equals [fresh_evals] in the JSON. *)
type dse_mx = {
  dx_evals : Muir_obs.Metrics.counter;
  dx_sims : Muir_obs.Metrics.counter;
  dx_pruned_area : Muir_obs.Metrics.counter;
  dx_pruned_timing : Muir_obs.Metrics.counter;
  dx_cache_hits : Muir_obs.Metrics.counter;
  dx_eval_seconds : Muir_obs.Metrics.hist;
  dx_stage : Muir_obs.Metrics.hist array;
}

let make_dse_mx (obs : Muir_obs.Obs.t) : dse_mx =
  let module M = Muir_obs.Metrics in
  let module P = Muir_pipeline.Pipeline in
  let r = obs.Muir_obs.Obs.o_metrics in
  { dx_evals =
      M.counter r ~help:"Fresh configuration evaluations."
        "muir_dse_evals_total";
    dx_sims =
      M.counter r ~help:"Fresh evaluations that reached the simulator."
        "muir_dse_sims_total";
    dx_pruned_area =
      M.counter r ~help:"Fresh evaluations pruned before simulation."
        ~labels:[ ("kind", "area") ] "muir_dse_pruned_total";
    dx_pruned_timing =
      M.counter r ~help:"Fresh evaluations pruned before simulation."
        ~labels:[ ("kind", "timing") ] "muir_dse_pruned_total";
    dx_cache_hits =
      M.counter r ~help:"Evaluations answered from the memo cache."
        "muir_dse_cache_hits_total";
    dx_eval_seconds =
      M.histogram r ~help:"Whole-evaluation seconds (fresh only)."
        "muir_dse_eval_seconds";
    dx_stage =
      Array.of_list
        (List.map
           (fun st ->
             M.histogram r ~help:"Per-stage seconds of fresh evaluations."
               ~labels:[ ("stage", P.stage_name st) ]
               "muir_dse_stage_seconds")
           P.stages) }

type t = {
  x_subject : string;
  x_strategy : strategy;
  x_evals : eval list;     (** unique configurations, evaluation order *)
  x_frontier : eval list;
  x_best : eval option;
  x_fresh_evals : int;     (** configurations evaluated this run *)
  x_fresh_sims : int;      (** ... of which reached the simulator *)
  x_pruned : int;          (** ... of which the area model pruned *)
  x_timing_pruned : int;   (** ... of which the timing bound pruned *)
  x_cache_hits : int;      (** evaluations answered from the cache *)
  x_cache : Cache.stats;
}

let rec split_at n = function
  | [] -> ([], [])
  | l when n <= 0 -> ([], l)
  | x :: tl ->
    let a, b = split_at (n - 1) tl in
    (x :: a, b)

(* Deterministic diversification for the greedy search: a 63-bit LCG
   (Knuth-style constants), never the global Random state. *)
let lcg (s : int) : int =
  ((s * 0x2545F4914F6CDD1D) + 0x9E3779B9) land max_int

let run ?(strategy = Grid) ?(jobs = 1) ?(budget_evals = 96) ?area_budget
    ?(timing_prune = false) ?(seed = 0) ?(cache : eval Cache.t option)
    ?grid ?obs (subject : subject) : t =
  let cache = match cache with Some c -> c | None -> Cache.create () in
  let mx = Option.map make_dse_mx obs in
  let tick f = match mx with Some m -> f m | None -> () in
  let now =
    match obs with
    | Some o -> Some (fun () -> Muir_obs.Obs.now o)
    | None -> None
  in
  let fresh_evals = ref 0 and fresh_sims = ref 0 in
  let prune_count = ref 0 and tprune_count = ref 0 and hits = ref 0 in
  let seen = Hashtbl.create 64 in
  let order = ref [] in
  let record ev =
    if not (Hashtbl.mem seen ev.e_key) then begin
      Hashtbl.add seen ev.e_key ();
      order := ev :: !order
    end
  in
  let remaining () = budget_evals - !fresh_evals in
  (* Evaluate a batch of configurations: answer what the cache knows,
     dispatch the rest to the pool (within budget), and fold fresh
     results back into the cache.  Cache traffic stays in this domain. *)
  let eval_batch (cfgs : Config.t list) : unit =
    let keys = Hashtbl.create 16 in
    let uniq =
      List.filter
        (fun cfg ->
          let k = Config.key cfg in
          if Hashtbl.mem keys k then false
          else begin
            Hashtbl.add keys k ();
            true
          end)
        cfgs
    in
    let cached, fresh =
      List.partition_map
        (fun cfg ->
          let k = Config.key cfg in
          match Cache.find_opt cache k with
          | Some ev ->
            incr hits;
            tick (fun m -> Muir_obs.Metrics.inc m.dx_cache_hits);
            Either.Left ev
          | None -> Either.Right cfg)
        uniq
    in
    List.iter record cached;
    let fresh = List.filteri (fun i _ -> i < remaining ()) fresh in
    (* Fixed-size chunks so the timing filter sees the same incumbent
       frontier whatever [--jobs] is: dominators are recomputed in
       this domain between chunks, never inside workers. *)
    let rec by_chunk todo =
      match todo with
      | [] -> ()
      | _ ->
        let chunk, rest = split_at 8 todo in
        let dominators =
          if not timing_prune then []
          else
            List.filter_map
              (fun e ->
                match e.e_cycles with
                | Some c -> Some (c, e.e_alms)
                | None -> None)
              (frontier (List.rev !order))
        in
        let results =
          Pool.map ~jobs (evaluate ?now ~subject ~area_budget ~dominators)
            chunk
        in
        List.iter
          (fun ev ->
            (* A timing-pruned result is relative to this run's
               incumbents — never memoize it. *)
            if not ev.e_tpruned then Cache.add cache ev.e_key ev;
            incr fresh_evals;
            if ev.e_tpruned then incr tprune_count
            else if pruned ev then incr prune_count
            else incr fresh_sims;
            tick (fun m ->
                let module M = Muir_obs.Metrics in
                M.inc m.dx_evals;
                if ev.e_tpruned then M.inc m.dx_pruned_timing
                else if pruned ev then M.inc m.dx_pruned_area
                else M.inc m.dx_sims;
                M.observe m.dx_eval_seconds
                  (Array.fold_left ( +. ) 0.0 ev.e_secs);
                Array.iteri
                  (fun i n -> if n > 0 then M.observe m.dx_stage.(i) ev.e_secs.(i))
                  ev.e_counts);
            record ev)
          results;
        by_chunk rest
    in
    by_chunk fresh
  in
  (match (strategy, grid) with
  | Grid, g ->
    let space = match g with Some g -> g | None -> default_grid () in
    eval_batch space
  | Greedy, _ ->
    (* Seed: every stack at minimal parameters. *)
    let seeds =
      List.map (fun (s : Stacks.spec) -> Config.v s.sp_name) Stacks.registry
    in
    eval_batch seeds;
    let rand = ref (lcg (seed + 1)) in
    let unseen cfg = not (Hashtbl.mem seen (Config.key cfg)) in
    (* Neighbors of a point, hint-directed widening first. *)
    let expand (ev : eval) : Config.t list =
      let s = Config.spec ev.e_cfg in
      let cfg = ev.e_cfg in
      let wider_tiles =
        if s.sp_uses_tiles && cfg.tiles < 16 then
          [ { cfg with tiles = cfg.tiles * 2 } ]
        else []
      and wider_banks =
        if s.sp_uses_banks && cfg.banks < 8 then
          [ { cfg with banks = cfg.banks * 2 } ]
        else []
      and toggle =
        if List.mem "op-fusion" cfg.off then
          [ { cfg with off = List.filter (( <> ) "op-fusion") cfg.off } ]
        else [ { cfg with off = "op-fusion" :: cfg.off } ]
      in
      match ev.e_hint with
      | Some Widen_banks -> wider_banks @ wider_tiles @ toggle
      | Some Widen_tiles | None -> wider_tiles @ wider_banks @ toggle
    in
    let continue_ = ref true in
    while !continue_ && remaining () > 0 do
      let evs = List.rev !order in
      let front = frontier evs in
      let proposals =
        (match best evs with Some b -> expand b | None -> [])
        @ (match front with
          | [] -> []
          | _ ->
            rand := lcg !rand;
            let i = abs !rand mod List.length front in
            expand (List.nth front i))
      in
      let proposals = List.filter unseen proposals in
      (* Exhausted the neighborhood of the best: widen the search to
         every point evaluated so far before giving up. *)
      let proposals =
        if proposals <> [] then proposals
        else List.filter unseen (List.concat_map expand evs)
      in
      if proposals = [] then continue_ := false
      else eval_batch proposals
    done);
  let evs = List.rev !order in
  { x_subject = subject.s_name;
    x_strategy = strategy;
    x_evals = evs;
    x_frontier = frontier evs;
    x_best = best evs;
    x_fresh_evals = !fresh_evals;
    x_fresh_sims = !fresh_sims;
    x_pruned = !prune_count;
    x_timing_pruned = !tprune_count;
    x_cache_hits = !hits;
    x_cache = Cache.stats cache }

(* ------------------------------------------------------------------ *)
(* Rendering                                                            *)

(** The human-readable frontier table.  Deliberately free of wall-clock
    or job-count detail: for a fixed seed this output is byte-identical
    whatever [--jobs] was. *)
let pp_result ppf (t : t) =
  Fmt.pf ppf
    "design space of %s (%s): %d configurations, %d simulated, %d \
     pruned by the area model, %d by the timing bound, %d from cache@."
    t.x_subject
    (strategy_to_string t.x_strategy)
    (List.length t.x_evals) t.x_fresh_sims t.x_pruned t.x_timing_pruned
    t.x_cache_hits;
  Fmt.pf ppf "@.  %10s %8s %8s %6s  %s@." "cycles" "ALMs" "kum2" "MHz"
    "config";
  List.iter
    (fun e ->
      Fmt.pf ppf "  %10d %8d %8.1f %6.0f  %s@."
        (Option.value ~default:0 e.e_cycles)
        e.e_alms e.e_asic_area e.e_mhz (Config.label e.e_cfg))
    t.x_frontier;
  (match t.x_best with
  | None -> Fmt.pf ppf "@.no feasible configuration within the budget@."
  | Some b ->
    Fmt.pf ppf "@.best: %s  (%d cycles, %d ALMs, key %s)@."
      (Config.label b.e_cfg)
      (Option.value ~default:0 b.e_cycles)
      b.e_alms b.e_key);
  Fmt.pf ppf "cache: %a@." Cache.pp_stats t.x_cache

(* --- JSON ----------------------------------------------------------- *)

let json_escape = Muir_trace.Json.escape

let eval_to_json (e : eval) : string =
  let cfg = e.e_cfg in
  Fmt.str
    "{\"config\":\"%s\",\"key\":\"%s\",\"stack\":\"%s\",\"tiles\":%d,\
     \"banks\":%d,\"off\":[%s],\"pruned\":%b,\"timing_pruned\":%b,\
     \"bound\":%d,\"cycles\":%s,\"alms\":%d,\
     \"brams\":%d,\"mhz\":%.2f,\"asic_kum2\":%.3f,\"us\":%s}"
    (json_escape (Config.label cfg))
    (json_escape e.e_key)
    (json_escape cfg.stack)
    cfg.tiles cfg.banks
    (String.concat ","
       (List.map (fun o -> "\"" ^ json_escape o ^ "\"") cfg.off))
    (pruned e) e.e_tpruned e.e_bound
    (match e.e_cycles with Some c -> string_of_int c | None -> "null")
    e.e_alms e.e_brams e.e_mhz e.e_asic_area
    (match e.e_us with Some u -> Fmt.str "%.4f" u | None -> "null")

let to_json (t : t) : string =
  let list evs =
    "[" ^ String.concat "," (List.map eval_to_json evs) ^ "]"
  in
  (* The same deterministic provenance block run reports carry: no
     wall-clock content, so identical explorations serialize
     byte-identically (and remain cache-key-friendly). *)
  let prov =
    Muir_trace.Json.to_string
      (Muir_trace.Report.provenance_json (Muir_trace.Report.provenance ()))
  in
  Fmt.str
    "{\"provenance\":%s,\"subject\":\"%s\",\"strategy\":\"%s\",\"evals\":%s,\
     \"frontier\":%s,\"best\":%s,\"fresh_evals\":%d,\"fresh_sims\":%d,\
     \"pruned\":%d,\"timing_pruned\":%d,\"cache_hits\":%d,\
     \"cache\":{\"hits\":%d,\"misses\":%d,\"entries\":%d}}"
    prov
    (json_escape t.x_subject)
    (strategy_to_string t.x_strategy)
    (list t.x_evals) (list t.x_frontier)
    (match t.x_best with Some b -> eval_to_json b | None -> "null")
    t.x_fresh_evals t.x_fresh_sims t.x_pruned t.x_timing_pruned
    t.x_cache_hits
    t.x_cache.c_hits t.x_cache.c_misses t.x_cache.c_entries
