(** The explorer's memo cache: evaluation results keyed by the
    content key of ({!Config.key} × workload), so re-exploration and
    overlapping configurations never re-simulate.

    The cache lives in the coordinating domain only — workers never
    touch it.  The pool master consults it before dispatching a batch
    and records fresh results after the batch joins, which keeps the
    table free of cross-domain races by construction. *)

type 'a t = {
  tbl : (string, 'a) Hashtbl.t;
  mutable hits : int;
  mutable misses : int;
}

type stats = { c_hits : int; c_misses : int; c_entries : int }

let create () : 'a t = { tbl = Hashtbl.create 64; hits = 0; misses = 0 }

(** Lookup that counts hits.  Misses are recorded by {!add} — a
    budget-truncated lookup that never gets evaluated isn't one. *)
let find_opt (c : 'a t) (key : string) : 'a option =
  match Hashtbl.find_opt c.tbl key with
  | Some v ->
    c.hits <- c.hits + 1;
    Some v
  | None -> None

(** Record a freshly paid-for result. *)
let add (c : 'a t) (key : string) (v : 'a) : unit =
  c.misses <- c.misses + 1;
  Hashtbl.replace c.tbl key v

(** Install an entry without touching the hit/miss counters.  This is
    how a persistent cache (lib/serve's result store) warms the table
    from disk at startup: the entries were paid for by an earlier
    process, so they are neither hits nor misses of this one. *)
let seed (c : 'a t) (key : string) (v : 'a) : unit =
  Hashtbl.replace c.tbl key v

let mem (c : 'a t) (key : string) : bool = Hashtbl.mem c.tbl key

let stats (c : 'a t) : stats =
  { c_hits = c.hits; c_misses = c.misses;
    c_entries = Hashtbl.length c.tbl }

let reset_counters (c : 'a t) : unit =
  c.hits <- 0;
  c.misses <- 0

let pp_stats ppf (s : stats) =
  Fmt.pf ppf "%d hit%s, %d miss%s, %d entr%s" s.c_hits
    (if s.c_hits = 1 then "" else "s")
    s.c_misses
    (if s.c_misses = 1 then "" else "es")
    s.c_entries
    (if s.c_entries = 1 then "y" else "ies")
