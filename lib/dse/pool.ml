(** A [Domain]-based parallel evaluation pool.

    [map ~jobs f xs] applies [f] to every element of [xs] using up to
    [jobs] domains and returns the results {e in input order}.  Work is
    handed out through an atomic counter (so an expensive element
    doesn't serialize a whole chunk behind it), but each worker writes
    its result into the slot of the element's original index; the merge
    is therefore a pure array read-out and the output is identical for
    every job count — the determinism the explorer's frontier test
    locks in.

    [f] must be safe to run in a fresh domain: the evaluators built on
    this compile their own program text and build their own circuit per
    call, sharing nothing mutable with the coordinator. *)

let map ~(jobs : int) (f : 'a -> 'b) (xs : 'a list) : 'b list =
  let arr = Array.of_list xs in
  let n = Array.length arr in
  if n = 0 then []
  else begin
    let jobs = max 1 (min jobs n) in
    let out : 'b option array = Array.make n None in
    if jobs = 1 then
      Array.iteri (fun i x -> out.(i) <- Some (f x)) arr
    else begin
      let next = Atomic.make 0 in
      let worker () =
        let rec go () =
          let i = Atomic.fetch_and_add next 1 in
          if i < n then begin
            out.(i) <- Some (f arr.(i));
            go ()
          end
        in
        go ()
      in
      (* The coordinator is one of the workers: spawn jobs-1 domains
         and join them, re-raising the first worker exception. *)
      let ds = List.init (jobs - 1) (fun _ -> Domain.spawn worker) in
      worker ();
      List.iter Domain.join ds
    end;
    Array.to_list
      (Array.map
         (function
           | Some v -> v
           | None -> assert false (* every index was claimed *))
         out)
  end
