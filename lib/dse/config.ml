(** One point of the design space: a named μopt stack from
    {!Muir_opt.Stacks.registry}, its numeric knobs, and the set of
    member passes switched off.

    Two configurations that build the {e same} pass list — e.g.
    [loop-stack] at [tiles = 2] vs [tiles = 4], since that stack never
    reads [tiles] — share a {!key}, so the explorer's memo cache
    evaluates the pair once.  The key is content-derived: it serializes
    the pass sequence the configuration actually builds, with each
    pass's effective parameters inlined. *)

module Stacks = Muir_opt.Stacks
module Pass = Muir_opt.Pass

type t = {
  stack : string;        (** a {!Muir_opt.Stacks.registry} name *)
  tiles : int;
  banks : int;
  off : string list;     (** pass names ([Pass.t.pname]) to drop *)
}

let v ?(tiles = 1) ?(banks = 1) ?(off = []) stack =
  { stack; tiles; banks; off = List.sort_uniq compare off }

let spec (cfg : t) : Stacks.spec =
  match Stacks.find_spec cfg.stack with
  | Some s -> s
  | None -> invalid_arg ("Dse.Config: unknown stack " ^ cfg.stack)

(** The pass list this configuration denotes: the stack built at
    ([tiles], [banks]) with the [off] passes filtered out. *)
let passes (cfg : t) : Pass.t list =
  let s = spec cfg in
  s.sp_build { tiles = cfg.tiles; banks = cfg.banks }
  |> List.filter (fun (p : Pass.t) -> not (List.mem p.pname cfg.off))

(** Content key: the canonical serialization of {!passes}.  Parameters
    appear only on the passes that consume them, so configurations that
    differ in an unused knob collide (by design), and an [off] entry
    naming a pass the stack doesn't contain changes nothing. *)
let key (cfg : t) : string =
  let describe (p : Pass.t) =
    match p.pname with
    | "execution-tiling" -> Fmt.str "execution-tiling=%d" cfg.tiles
    | "scratchpad-banking" -> Fmt.str "scratchpad-banking=%d" cfg.banks
    | "cache-banking" -> Fmt.str "cache-banking=%d" cfg.banks
    | n -> n
  in
  match passes cfg with
  | [] -> "baseline"
  | ps -> String.concat "+" (List.map describe ps)

(** Short human label: stack name plus only the knobs it reads. *)
let label (cfg : t) : string =
  let s = spec cfg in
  let knobs =
    (if s.sp_uses_tiles then [ Fmt.str "tiles=%d" cfg.tiles ] else [])
    @ (if s.sp_uses_banks then [ Fmt.str "banks=%d" cfg.banks ] else [])
    @ List.map (fun p -> "-" ^ p) cfg.off
  in
  match knobs with
  | [] -> cfg.stack
  | ks -> Fmt.str "%s(%s)" cfg.stack (String.concat "," ks)

let pp ppf cfg = Fmt.string ppf (label cfg)

(** The registry stack [name] at its own default parameters — the
    configuration a user gets from [muirc -O name]. *)
let predefined (name : string) : t =
  match Stacks.find_spec name with
  | None -> invalid_arg ("Dse.Config: unknown stack " ^ name)
  | Some s ->
    { stack = name; tiles = s.sp_defaults.tiles;
      banks = s.sp_defaults.banks; off = [] }
