(** Runtime model of the memory structures: banked scratchpads and
    set-associative caches in front of DRAM, fed through per-tile
    junctions.  Functional data lives in the shared flat
    {!Muir_ir.Memory} so results can be compared against the golden
    interpreter; the structures model timing (latency, bank conflicts,
    misses) and enforce per-bank FIFO order.

    Everything on the per-cycle path is preallocated struct-of-arrays:
    accesses carry their words as flat {!Muir_ir.Flat} columns and own
    a reusable set of sub-request buffers (the issuing node pools one
    access per outstanding-request slot), banks are rings of
    sub-requests, the cache tag stores are flat MRU arrays, and
    completions sit in a ring-buffer timing wheel — the steady state
    allocates nothing on the minor heap. *)

module G = Muir_core.Graph
module T = Muir_ir.Types
module F = Muir_ir.Flat

(** One word-group processed by a single bank access.  The buffers are
    owned (and reused) by the parent access; [sr_n] addresses are
    live. *)
type subreq = {
  sr_addrs : int array;         (** consecutive-ish words served together *)
  mutable sr_n : int;
  sr_access : access;
}

(** A whole load/store as issued by a node: possibly many sub-requests
    (tile accesses through the databox, §3.4).  Word data travels in
    flat columns: stores carry their data in, loads get their data
    written back ([tabsent] rows have not completed). *)
and access = {
  mutable a_is_store : bool;
  a_addrs : int array;
  a_tags : int array;
  a_nums : int array;
  a_flts : float array;
  a_objs : T.value array;
  mutable a_n : int;            (** live words *)
  mutable a_pending : int;      (** sub-requests still in flight *)
  mutable a_done : bool;
  mutable a_issued : int;       (** cycle of issue, for stats *)
  mutable a_notify : unit -> unit;
      (** called once when the access completes, so the issuing node
          is woken instead of polled every cycle *)
  mutable a_orphan : bool;
      (** popped from its node's in-flight window while sub-requests
          were still draining (write-buffered stores): the completion
          callback returns it to the pool instead of waking the node *)
  mutable a_srs : subreq array; (** one per possible word, reused;
                                    patched once at construction to tie
                                    the access <-> subreq knot *)
  mutable a_nsrs : int;
}

(** A reusable access with room for [words] words.  The issuing node
    pools these (one per outstanding-request slot) with a preallocated
    [notify], so steady-state memory traffic allocates nothing. *)
let make_access ~(words : int) ~(notify : unit -> unit) : access =
  let w = max words 1 in
  let a =
    { a_is_store = false; a_addrs = Array.make w 0;
      a_tags = Array.make w F.tabsent; a_nums = Array.make w 0;
      a_flts = Array.make w 0.0; a_objs = Array.make w F.no_obj;
      a_n = 0; a_pending = 0; a_done = false; a_issued = 0;
      a_notify = notify; a_orphan = false; a_srs = [||]; a_nsrs = 0 }
  in
  a.a_srs <-
    Array.init w (fun _ ->
        { sr_addrs = Array.make w 0; sr_n = 0; sr_access = a });
  a

(** Reset [a] for reissue from its pool slot. *)
let reset_access (a : access) ~(is_store : bool) ~(now : int) : unit =
  a.a_is_store <- is_store;
  a.a_n <- 0;
  a.a_pending <- 0;
  a.a_done <- false;
  a.a_issued <- now;
  a.a_orphan <- false;
  a.a_nsrs <- 0

type bank = {
  mutable bq : subreq array;    (** FIFO ring *)
  mutable bq_head : int;
  mutable bq_n : int;
  mutable busy_until : int;
}

let bank_push (b : bank) (sr : subreq) : unit =
  let cap = Array.length b.bq in
  if b.bq_n = cap then begin
    let ncap = max 4 (cap * 2) in
    let nq = Array.make ncap sr in
    for i = 0 to b.bq_n - 1 do
      nq.(i) <- b.bq.((b.bq_head + i) mod max cap 1)
    done;
    b.bq <- nq;
    b.bq_head <- 0
  end;
  b.bq.((b.bq_head + b.bq_n) mod Array.length b.bq) <- sr;
  b.bq_n <- b.bq_n + 1

let bank_pop (b : bank) : subreq =
  let sr = b.bq.(b.bq_head) in
  b.bq_head <- (b.bq_head + 1) mod Array.length b.bq;
  b.bq_n <- b.bq_n - 1;
  sr

(** MRU-first tag store of one cache: per (bank, set), up to [ways]
    line numbers in a flat array. *)
type tagstore = {
  sets : int;
  ways : int;
  t_lines : int array;   (** (bank*sets + set)*ways + way, MRU first *)
  t_n : int array;       (** valid ways per (bank, set) *)
}

let make_tagstore ~(sets : int) ~(ways : int) ~(nbanks : int) : tagstore =
  { sets; ways; t_lines = Array.make (sets * nbanks * ways) (-1);
    t_n = Array.make (sets * nbanks) 0 }

type struct_rt = {
  inst : G.struct_inst;
  banks : bank array;
  tags : tagstore option;  (** caches only *)
  mutable hits : int;
  mutable misses : int;
  mutable prefetches : int;
  mutable accesses : int;
  mutable busy_cycles : int;
  mutable conflicts : int;
      (** sub-requests that arrived at a bank already holding queued
          work — the paper's bank-conflict counter *)
}

(* Completions timing wheel: slot = ready-cycle mod size; entries keep
   their absolute cycle, so a slot can safely hold far-future rows. *)
let cw_size = 256

type cslot = {
  mutable ca : access array;
  mutable cc : int array;       (** absolute ready cycle per entry *)
  mutable cn : int;
}

type t = {
  mem : Muir_ir.Memory.t;
  structs : struct_rt array;    (** circuit declaration order *)
  sids : int array;             (** struct id per [structs] row *)
  space_of : G.space_id -> struct_rt;
  completions : cslot array;    (** [cw_size] slots *)
  mutable total_requests : int;
}

let create (c : G.circuit) (mem : Muir_ir.Memory.t) : t =
  let mk_rt (s : G.struct_inst) =
    let nbanks =
      match s.shape with
      | Scratchpad { banks; _ } | Cache { banks; _ } -> banks
    in
    let nbanks = max nbanks 1 in
    let tags =
      match s.shape with
      | Scratchpad _ -> None
      | Cache { banks; line_words; size_words; ways; _ } ->
        let sets = max 1 (size_words / (line_words * ways * banks)) in
        Some (make_tagstore ~sets ~ways ~nbanks)
    in
    { inst = s;
      banks =
        Array.init nbanks (fun _ ->
            { bq = [||]; bq_head = 0; bq_n = 0; busy_until = 0 });
      tags; hits = 0; misses = 0; prefetches = 0; accesses = 0;
      busy_cycles = 0; conflicts = 0 }
  in
  let structs = Array.of_list (List.map mk_rt c.structures) in
  let sids = Array.map (fun rt -> rt.inst.G.sid) structs in
  let find_sid sid =
    let rec go i =
      if i >= Array.length structs then
        invalid_arg "Memsys: unknown structure"
      else if sids.(i) = sid then structs.(i)
      else go (i + 1)
    in
    go 0
  in
  (* Dense space -> structure table for the mapped spaces; anything
     unmapped resolves through [G.structure_of_space] (cold). *)
  let max_sp =
    List.fold_left (fun acc (sp, _) -> max acc sp) 0 c.space_map
  in
  let by_space = Array.make (max_sp + 1) None in
  List.iter
    (fun (sp, sid) ->
      if sp >= 0 then by_space.(sp) <- Some (find_sid sid))
    c.space_map;
  let space_of sp =
    if sp >= 0 && sp <= max_sp then
      match by_space.(sp) with
      | Some rt -> rt
      | None -> find_sid (G.structure_of_space c sp).sid
    else find_sid (G.structure_of_space c sp).sid
  in
  { mem; structs; sids; space_of;
    completions =
      Array.init cw_size (fun _ -> { ca = [||]; cc = [||]; cn = 0 });
    total_requests = 0 }

(* ------------------------------------------------------------------ *)
(* Access construction (the databox, §3.4)                             *)

let new_subreq (a : access) (j : int) : subreq =
  let sr = a.a_srs.(j) in
  sr.sr_n <- 0;
  sr

(** Group an access's words into bank transactions, into the access's
    own sub-request buffers: scratchpads serve up to [width_words]
    consecutive words per access; caches serve one line per access
    (the databox coalesces words of the same line, first-occurrence
    order). *)
(* Find the open sub-request already covering cache line [line], or
   -1.  Top-level so the per-access split path allocates nothing. *)
let rec find_line (a : access) (lw : int) (line : int) (j : int) : int =
  if j >= a.a_nsrs then -1
  else if a.a_srs.(j).sr_addrs.(0) / lw = line then j
  else find_line a lw line (j + 1)

(* Insertion-sort shift for the cache-order emulation below: slide
   entries with a smaller bucket index up one slot, returning the
   insertion point for a row whose bucket index is [b]. *)
let rec sift_sr (a : access) (lw : int) (b : int) (j : int) : int =
  if
    j > 0 && Hashtbl.hash (a.a_srs.(j - 1).sr_addrs.(0) / lw) land 15 < b
  then begin
    a.a_srs.(j) <- a.a_srs.(j - 1);
    sift_sr a lw b (j - 1)
  end
  else j

let split (rt : struct_rt) (a : access) : unit =
  a.a_nsrs <- 0;
  (match rt.inst.shape with
  | Scratchpad { width_words; _ } ->
    let width = max width_words 1 in
    for i = 0 to a.a_n - 1 do
      if i mod width = 0 then begin
        ignore (new_subreq a a.a_nsrs);
        a.a_nsrs <- a.a_nsrs + 1
      end;
      let sr = a.a_srs.(a.a_nsrs - 1) in
      sr.sr_addrs.(sr.sr_n) <- a.a_addrs.(i);
      sr.sr_n <- sr.sr_n + 1
    done
  | Cache { line_words; _ } ->
    let lw = max line_words 1 in
    for i = 0 to a.a_n - 1 do
      let w = a.a_addrs.(i) in
      let line = w / lw in
      let j = find_line a lw line 0 in
      let sr =
        if j >= 0 then a.a_srs.(j)
        else begin
          let sr = new_subreq a a.a_nsrs in
          a.a_nsrs <- a.a_nsrs + 1;
          sr
        end
      in
      sr.sr_addrs.(sr.sr_n) <- w;
      sr.sr_n <- sr.sr_n + 1
    done;
    (* Transaction order is timing-visible (bank-queue service and
       prefetch order).  The reference implementation grouped lines in
       a 16-bucket hash table and emitted Hashtbl.fold's order
       reversed — bucket index descending, first-occurrence order
       within a bucket — so reproduce that exactly. *)
    if a.a_nsrs > 1 then
      for i = 1 to a.a_nsrs - 1 do
        let sr = a.a_srs.(i) in
        let b = Hashtbl.hash (sr.sr_addrs.(0) / lw) land 15 in
        let j = sift_sr a lw b i in
        a.a_srs.(j) <- sr
      done);
  a.a_pending <- a.a_nsrs

(** Which bank serves a sub-request. *)
let bank_of (rt : struct_rt) (sr : subreq) : int =
  let nbanks = Array.length rt.banks in
  match rt.inst.shape with
  | Scratchpad { width_words; _ } ->
    (sr.sr_addrs.(0) / max width_words 1) mod nbanks
  | Cache { line_words; _ } -> sr.sr_addrs.(0) / line_words mod nbanks

(** Enqueue a sub-request at its bank; a non-empty bank queue means
    this request collided with in-flight work on the same bank. *)
let enqueue (ms : t) (rt : struct_rt) (sr : subreq) : unit =
  ms.total_requests <- ms.total_requests + 1;
  let b = rt.banks.(bank_of rt sr) in
  if b.bq_n > 0 then rt.conflicts <- rt.conflicts + 1;
  bank_push b sr

(* ------------------------------------------------------------------ *)
(* Cache tag handling                                                  *)

(* Both scans are top-level: a local [let rec] would close over the
   tagstore and allocate on every lookup. *)
let rec line_mem (ts : tagstore) (base : int) (line : int) (i : int)
    (n : int) : bool =
  i < n && (ts.t_lines.(base + i) = line || line_mem ts base line (i + 1) n)

let rec line_find (ts : tagstore) (base : int) (line : int) (i : int)
    (n : int) : int =
  if i >= n then -1
  else if ts.t_lines.(base + i) = line then i
  else line_find ts base line (i + 1) n

let insert_line (ts : tagstore) ~(nbanks : int) (line : int) : unit =
  let bank = line mod nbanks in
  let set = line / nbanks mod ts.sets in
  let idx = (bank * ts.sets) + set in
  let base = idx * ts.ways in
  let n = ts.t_n.(idx) in
  if not (line_mem ts base line 0 n) then begin
    let keep = min n (ts.ways - 1) in
    for i = keep downto 1 do
      ts.t_lines.(base + i) <- ts.t_lines.(base + i - 1)
    done;
    ts.t_lines.(base) <- line;
    ts.t_n.(idx) <- keep + 1
  end

let cache_lookup (ts : tagstore) ~(nbanks : int) ~(line_words : int)
    (addr : int) : bool =
  let line = addr / line_words in
  let bank = line mod nbanks in
  let set = line / nbanks mod ts.sets in
  let idx = (bank * ts.sets) + set in
  let base = idx * ts.ways in
  let n = ts.t_n.(idx) in
  let hit = line_find ts base line 0 n in
  if hit >= 0 then begin
    (* MRU touch *)
    for i = hit downto 1 do
      ts.t_lines.(base + i) <- ts.t_lines.(base + i - 1)
    done;
    ts.t_lines.(base) <- line;
    true
  end
  else begin
    insert_line ts ~nbanks line;
    false
  end

(* ------------------------------------------------------------------ *)
(* Per-cycle advance                                                   *)

(* First slot of [a] holding address [w]. *)
let rec addr_slot (a : access) (w : int) (j : int) : int =
  if j >= a.a_n then -1
  else if a.a_addrs.(j) = w then j
  else addr_slot a w (j + 1)

let perform_word (ms : t) (a : access) (w : int) : unit =
  let j0 = addr_slot a w 0 in
  if j0 >= 0 then
    if a.a_is_store then
      Muir_ir.Memory.store_from ms.mem w a.a_tags a.a_nums a.a_flts a.a_objs
        j0
    else begin
      Muir_ir.Memory.load_into ms.mem w a.a_tags a.a_nums a.a_flts a.a_objs
        j0;
      (* duplicate addresses within the access see the same word *)
      for j = j0 + 1 to a.a_n - 1 do
        if a.a_addrs.(j) = w then begin
          a.a_tags.(j) <- a.a_tags.(j0);
          a.a_nums.(j) <- a.a_nums.(j0);
          a.a_flts.(j) <- a.a_flts.(j0);
          a.a_objs.(j) <- a.a_objs.(j0)
        end
      done
    end

let perform_words (ms : t) (a : access) (sr : subreq) : unit =
  for i = 0 to sr.sr_n - 1 do
    perform_word ms a sr.sr_addrs.(i)
  done

let complete_at (ms : t) (ready : int) (a : access) : unit =
  let s = ms.completions.(ready land (cw_size - 1)) in
  let cap = Array.length s.ca in
  if s.cn = cap then begin
    let ncap = max 8 (cap * 2) in
    let nca = Array.make ncap a and ncc = Array.make ncap 0 in
    Array.blit s.ca 0 nca 0 s.cn;
    Array.blit s.cc 0 ncc 0 s.cn;
    s.ca <- nca;
    s.cc <- ncc
  end;
  s.ca.(s.cn) <- a;
  s.cc.(s.cn) <- ready;
  s.cn <- s.cn + 1

(* Deliver completions that are due: scan the cycle's wheel slot,
   compacting rows whose absolute cycle lies a full wheel turn ahead.
   Tail-recursive with the keep cursor as an argument — this runs
   every cycle and must not allocate. *)
let rec drain_completions (s : cslot) (now : int) (i : int) (n : int)
    (kept : int) : int =
  if i >= n then kept
  else if s.cc.(i) = now then begin
    let a = s.ca.(i) in
    a.a_pending <- a.a_pending - 1;
    if a.a_pending <= 0 then begin
      a.a_done <- true;
      a.a_notify ()
    end;
    drain_completions s now (i + 1) n kept
  end
  else begin
    s.ca.(kept) <- s.ca.(i);
    s.cc.(kept) <- s.cc.(i);
    drain_completions s now (i + 1) n (kept + 1)
  end

(** Advance every structure by one cycle: each bank processes up to
    [ports_per_bank] queued sub-requests (1 for caches), misses keep
    the bank busy for the DRAM round trip. *)
let step (ms : t) ~(now : int) : unit =
  for si = 0 to Array.length ms.structs - 1 do
    let rt = ms.structs.(si) in
    let ports =
      match rt.inst.shape with
      | Scratchpad { ports_per_bank; _ } -> ports_per_bank
      | Cache _ -> 1
    in
    for bi = 0 to Array.length rt.banks - 1 do
      let b = rt.banks.(bi) in
      if b.busy_until > now then rt.busy_cycles <- rt.busy_cycles + 1
      else
        for _ = 1 to ports do
          if b.busy_until <= now && b.bq_n > 0 then begin
            let sr = bank_pop b in
            let a = sr.sr_access in
            rt.accesses <- rt.accesses + 1;
            let lat =
              match rt.inst.shape with
              | Scratchpad { latency; _ } -> latency
              | Cache { hit_latency; miss_latency; line_words; _ } ->
                let hit =
                  match rt.tags with
                  | Some ts ->
                    cache_lookup ts ~nbanks:(Array.length rt.banks)
                      ~line_words sr.sr_addrs.(0)
                  | None -> true
                in
                if hit then begin
                  rt.hits <- rt.hits + 1;
                  (* single-ported SRAM macro: one access per two
                     cycles per bank *)
                  b.busy_until <- now + 2;
                  hit_latency
                end
                else begin
                  rt.misses <- rt.misses + 1;
                  (* the miss occupies the bank for the DRAM command
                     slot, not the full round trip — misses to a bank
                     overlap (MSHR-style); a next-line prefetch rides
                     the open DRAM row, so unit-stride streams are
                     bandwidth-bound *)
                  (match rt.tags with
                  | Some ts ->
                    rt.prefetches <- rt.prefetches + 1;
                    insert_line ts ~nbanks:(Array.length rt.banks)
                      ((sr.sr_addrs.(0) / line_words) + 1)
                  | None -> ());
                  b.busy_until <- now + (miss_latency / 5);
                  miss_latency
                end
            in
            perform_words ms a sr;
            complete_at ms (now + lat) a
          end
        done
    done
  done;
  (* Deliver completions that are due: scan this cycle's wheel slot,
     keeping rows whose absolute cycle lies a full wheel turn ahead. *)
  let s = ms.completions.(now land (cw_size - 1)) in
  if s.cn > 0 then s.cn <- drain_completions s now 0 s.cn 0

(** Does this structure acknowledge stores from a write-back buffer? *)
let store_buffered (rt : struct_rt) : bool =
  match rt.inst.shape with
  | G.Scratchpad { wb_buffer; _ } -> wb_buffer
  | G.Cache _ -> false

(** Issue a whole access: split into sub-requests and enqueue. *)
let issue (ms : t) (space : G.space_id) (a : access) : unit =
  let rt = ms.space_of space in
  split rt a;
  for j = 0 to a.a_nsrs - 1 do
    enqueue ms rt a.a_srs.(j)
  done

(** Assembled load value for a scalar access. *)
let scalar_value (a : access) : T.value =
  if a.a_n = 1 && a.a_tags.(0) <> F.tabsent then
    F.materialize a.a_tags.(0) a.a_nums.(0) a.a_flts.(0) a.a_objs.(0)
  else invalid_arg "Memsys.scalar_value: not a completed scalar load"

(** Assemble a tile from a completed tensor load, in the word order the
    access was built with. *)
let tile_value (a : access) : T.value =
  let data =
    Array.init a.a_n (fun j ->
        let t = a.a_tags.(j) in
        if t = F.tfloat then a.a_flts.(j)
        else if t = F.tint then float_of_int a.a_nums.(j)
        else
          match a.a_objs.(j) with
          | T.VInt i -> Int64.to_float i
          | _ -> 0.0)
  in
  T.VTensor data

type struct_stats = {
  ss_name : string;
  ss_accesses : int;
  ss_hits : int;
  ss_misses : int;
  ss_conflicts : int;
}

(* Direct occupancy access (no closures, no lists) for the kernel's
   always-on per-cycle sampling. *)
let nstructs (ms : t) : int = Array.length ms.structs
let struct_sid (ms : t) (i : int) : int = ms.sids.(i)

let rec bank_depth_from (rt : struct_rt) (b : int) (d : int) : int =
  if b >= Array.length rt.banks then d
  else bank_depth_from rt (b + 1) (d + rt.banks.(b).bq_n)

let struct_depth (ms : t) (i : int) : int = bank_depth_from ms.structs.(i) 0 0

(** Queued sub-requests per structure right now, summed over its
    banks — the occupancy signal the tracer samples each cycle. *)
let occupancy (ms : t) : (G.struct_id * int) list =
  List.init (nstructs ms) (fun i -> (struct_sid ms i, struct_depth ms i))

let stats (ms : t) : struct_stats list =
  Array.to_list
    (Array.map
       (fun rt ->
         { ss_name = rt.inst.G.sname; ss_accesses = rt.accesses;
           ss_hits = rt.hits; ss_misses = rt.misses;
           ss_conflicts = rt.conflicts })
       ms.structs)
