(** Runtime model of the memory structures: banked scratchpads and
    set-associative caches in front of DRAM, fed through per-tile
    junctions.  Functional data lives in the shared flat
    {!Muir_ir.Memory} so results can be compared against the golden
    interpreter; the structures model timing (latency, bank conflicts,
    misses) and enforce per-bank FIFO order. *)

module G = Muir_core.Graph
module T = Muir_ir.Types

(** One word-group processed by a single bank access. *)
type subreq = {
  sr_addrs : int list;          (** consecutive-ish words served together *)
  sr_access : access;
}

(** A whole load/store as issued by a node: possibly many sub-requests
    (tile accesses through the databox, §3.4). *)
and access = {
  a_is_store : bool;
  a_words : (int * T.value option) array;
      (** (address, store data); [None] for loads *)
  mutable a_loaded : (int * T.value) list;
  mutable a_pending : int;      (** sub-requests still in flight *)
  mutable a_done : bool;
  a_issued : int;               (** cycle of issue, for stats *)
  mutable a_notify : unit -> unit;
      (** called once when the access completes, so the issuing node
          is woken instead of polled every cycle *)
}

type bank = {
  bq : subreq Queue.t;
  mutable busy_until : int;
}

(** LRU tag store of one cache bank: per set, most-recent-first lines. *)
type tagstore = { sets : int; ways : int; lines : int list array }

type struct_rt = {
  inst : G.struct_inst;
  banks : bank array;
  tags : tagstore option;  (** caches only *)
  mutable hits : int;
  mutable misses : int;
  mutable prefetches : int;
  mutable accesses : int;
  mutable busy_cycles : int;
  mutable conflicts : int;
      (** sub-requests that arrived at a bank already holding queued
          work — the paper's bank-conflict counter *)
}

type t = {
  mem : Muir_ir.Memory.t;
  structs : (G.struct_id * struct_rt) list;
  space_of : G.space_id -> struct_rt;
  completions : (int, access list) Hashtbl.t;
      (** ready cycle -> accesses due; drained as [now] reaches each key *)
  mutable total_requests : int;
}

let create (c : G.circuit) (mem : Muir_ir.Memory.t) : t =
  let mk_rt (s : G.struct_inst) =
    let nbanks =
      match s.shape with
      | Scratchpad { banks; _ } | Cache { banks; _ } -> banks
    in
    let tags =
      match s.shape with
      | Scratchpad _ -> None
      | Cache { banks; line_words; size_words; ways; _ } ->
        let sets = max 1 (size_words / (line_words * ways * banks)) in
        Some { sets; ways; lines = Array.make (sets * banks) [] }
    in
    ( s.sid,
      { inst = s;
        banks = Array.init (max nbanks 1) (fun _ ->
                    { bq = Queue.create (); busy_until = 0 });
        tags; hits = 0; misses = 0; prefetches = 0; accesses = 0;
        busy_cycles = 0; conflicts = 0 } )
  in
  let structs = List.map mk_rt c.structures in
  let space_of sp =
    let s = G.structure_of_space c sp in
    List.assoc s.sid structs
  in
  { mem; structs; space_of; completions = Hashtbl.create 64;
    total_requests = 0 }

(* ------------------------------------------------------------------ *)
(* Access construction (the databox, §3.4)                              *)

(** Group an access's words into bank transactions: scratchpads serve
    up to [width_words] consecutive words per access; caches serve one
    line per access (the databox coalesces words of the same line). *)
let split (rt : struct_rt) (a : access) : subreq list =
  let addrs = Array.to_list (Array.map fst a.a_words) in
  match rt.inst.shape with
  | Scratchpad { width_words; _ } ->
    let rec group acc cur n = function
      | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
      | w :: rest ->
        if n < width_words then group acc (w :: cur) (n + 1) rest
        else group (List.rev cur :: acc) [ w ] 1 rest
    in
    let groups = group [] [] 0 addrs in
    List.map (fun g -> { sr_addrs = g; sr_access = a }) groups
  | Cache { line_words; _ } ->
    let by_line = Hashtbl.create 4 in
    List.iter
      (fun w ->
        let l = w / line_words in
        Hashtbl.replace by_line l
          (w :: (try Hashtbl.find by_line l with Not_found -> [])))
      addrs;
    Hashtbl.fold
      (fun _ ws acc -> { sr_addrs = List.rev ws; sr_access = a } :: acc)
      by_line []

(** Which bank serves a sub-request. *)
let bank_of (rt : struct_rt) (sr : subreq) : int =
  let nbanks = Array.length rt.banks in
  match rt.inst.shape with
  | Scratchpad { width_words; _ } ->
    (List.hd sr.sr_addrs / max width_words 1) mod nbanks
  | Cache { line_words; _ } -> List.hd sr.sr_addrs / line_words mod nbanks

(** Enqueue a sub-request at its bank; a non-empty bank queue means
    this request collided with in-flight work on the same bank. *)
let enqueue (ms : t) (rt : struct_rt) (sr : subreq) : unit =
  ms.total_requests <- ms.total_requests + 1;
  let b = rt.banks.(bank_of rt sr) in
  if not (Queue.is_empty b.bq) then rt.conflicts <- rt.conflicts + 1;
  Queue.add sr b.bq

(* ------------------------------------------------------------------ *)
(* Cache tag handling                                                   *)

let insert_line (ts : tagstore) ~(nbanks : int) (line : int) : unit =
  let bank = line mod nbanks in
  let set = line / nbanks mod ts.sets in
  let idx = (bank * ts.sets) + set in
  let cur = ts.lines.(idx) in
  if not (List.mem line cur) then begin
    let kept =
      if List.length cur >= ts.ways then
        List.filteri (fun i _ -> i < ts.ways - 1) cur
      else cur
    in
    ts.lines.(idx) <- line :: kept
  end

let cache_lookup (ts : tagstore) ~(nbanks : int) ~(line_words : int)
    (addr : int) : bool =
  let line = addr / line_words in
  let bank = line mod nbanks in
  let set = line / nbanks mod ts.sets in
  let idx = (bank * ts.sets) + set in
  let cur = ts.lines.(idx) in
  if List.mem line cur then begin
    (* LRU touch *)
    ts.lines.(idx) <- line :: List.filter (fun l -> l <> line) cur;
    true
  end
  else begin
    insert_line ts ~nbanks line;
    false
  end

(* ------------------------------------------------------------------ *)
(* Per-cycle advance                                                    *)

let perform_words (ms : t) (a : access) (sr : subreq) : unit =
  List.iter
    (fun w ->
      match
        Array.to_list a.a_words
        |> List.find_opt (fun (addr, _) -> addr = w)
      with
      | Some (_, Some v) -> Muir_ir.Memory.store ms.mem w v
      | Some (_, None) ->
        a.a_loaded <- (w, Muir_ir.Memory.load ms.mem w) :: a.a_loaded
      | None -> ())
    sr.sr_addrs

(** Advance every structure by one cycle: each bank processes up to
    [ports_per_bank] queued sub-requests (1 for caches), misses keep
    the bank busy for the DRAM round trip. *)
let step (ms : t) ~(now : int) : unit =
  List.iter
    (fun (_, rt) ->
      let ports =
        match rt.inst.shape with
        | Scratchpad { ports_per_bank; _ } -> ports_per_bank
        | Cache _ -> 1
      in
      Array.iter
        (fun b ->
          if b.busy_until > now then rt.busy_cycles <- rt.busy_cycles + 1
          else
            for _ = 1 to ports do
              if b.busy_until <= now && not (Queue.is_empty b.bq) then begin
                let sr = Queue.pop b.bq in
                let a = sr.sr_access in
                rt.accesses <- rt.accesses + 1;
                let lat =
                  match rt.inst.shape with
                  | Scratchpad { latency; _ } -> latency
                  | Cache { hit_latency; miss_latency; line_words; _ } ->
                    let hit =
                      match rt.tags with
                      | Some ts ->
                        cache_lookup ts ~nbanks:(Array.length rt.banks)
                          ~line_words (List.hd sr.sr_addrs)
                      | None -> true
                    in
                    if hit then begin
                      rt.hits <- rt.hits + 1;
                      (* single-ported SRAM macro: one access per two
                         cycles per bank *)
                      b.busy_until <- now + 2;
                      hit_latency
                    end
                    else begin
                      rt.misses <- rt.misses + 1;
                      (* the miss occupies the bank for the DRAM
                         command slot, not the full round trip —
                         misses to a bank overlap (MSHR-style); a
                         next-line prefetch rides the open DRAM row,
                         so unit-stride streams are bandwidth-bound *)
                      (match rt.tags with
                      | Some ts ->
                        rt.prefetches <- rt.prefetches + 1;
                        insert_line ts ~nbanks:(Array.length rt.banks)
                          ((List.hd sr.sr_addrs / line_words) + 1)
                      | None -> ());
                      b.busy_until <- now + (miss_latency / 5);
                      miss_latency
                    end
                in
                perform_words ms a sr;
                let ready = now + lat in
                let prev =
                  try Hashtbl.find ms.completions ready
                  with Not_found -> []
                in
                Hashtbl.replace ms.completions ready (a :: prev)
              end
            done)
        rt.banks)
    ms.structs;
  (* Deliver completions that are due.  [now] advances by one each
     step, so draining the bucket at [now] is exact. *)
  match Hashtbl.find_opt ms.completions now with
  | None -> ()
  | Some due ->
    Hashtbl.remove ms.completions now;
    List.iter
      (fun a ->
        a.a_pending <- a.a_pending - 1;
        if a.a_pending <= 0 then begin
          a.a_done <- true;
          a.a_notify ()
        end)
      due

(** Does this structure acknowledge stores from a write-back buffer? *)
let store_buffered (rt : struct_rt) : bool =
  match rt.inst.shape with
  | G.Scratchpad { wb_buffer; _ } -> wb_buffer
  | G.Cache _ -> false

(** Issue a whole access: split into sub-requests and enqueue. *)
let issue (ms : t) (space : G.space_id) (a : access) : unit =
  let rt = ms.space_of space in
  let srs = split rt a in
  a.a_pending <- List.length srs;
  List.iter (enqueue ms rt) srs

(** Assembled load value for a scalar access. *)
let scalar_value (a : access) : T.value =
  match a.a_loaded with
  | [ (_, v) ] -> v
  | _ -> invalid_arg "Memsys.scalar_value: not a completed scalar load"

(** Assemble a tile from a completed tensor load, in the word order the
    access was built with. *)
let tile_value (a : access) : T.value =
  let data =
    Array.map
      (fun (addr, _) ->
        match List.assoc_opt addr a.a_loaded with
        | Some (T.VFloat f) -> f
        | Some (T.VInt i) -> Int64.to_float i
        | _ -> 0.0)
      a.a_words
  in
  T.VTensor data

type struct_stats = {
  ss_name : string;
  ss_accesses : int;
  ss_hits : int;
  ss_misses : int;
  ss_conflicts : int;
}

(** Queued sub-requests per structure right now, summed over its
    banks — the occupancy signal the tracer samples each cycle. *)
let occupancy (ms : t) : (G.struct_id * int) list =
  List.map
    (fun (sid, rt) ->
      ( sid,
        Array.fold_left (fun acc b -> acc + Queue.length b.bq) 0 rt.banks ))
    ms.structs

(** Allocation-free variant of {!occupancy} for the kernel's always-on
    per-cycle sampling. *)
let iter_occupancy (ms : t) (f : G.struct_id -> int -> unit) : unit =
  List.iter
    (fun (sid, rt) ->
      f sid
        (Array.fold_left (fun acc b -> acc + Queue.length b.bq) 0 rt.banks))
    ms.structs

let stats (ms : t) : struct_stats list =
  List.map
    (fun (_, rt) ->
      { ss_name = rt.inst.sname; ss_accesses = rt.accesses;
        ss_hits = rt.hits; ss_misses = rt.misses;
        ss_conflicts = rt.conflicts })
    ms.structs
