(** Cycle-level simulation of μIR circuits.

    Execution model (§3.2 of the paper): the circuit is a set of
    asynchronously running task blocks.  Each task has a hardware
    queue of pending invocations and [tiles] execution units.  Within
    a task, execution is a pipelined latency-insensitive dataflow:
    every edge is a ready/valid channel (a register stage), nodes fire
    when all wired inputs hold tokens and downstream has space, and
    concurrent invocations complete in order of invocation.

    Two task-instance disciplines exist:
    - ordinary tasks run one {e instance per tile}; function tasks
      pipeline multiple invocations through an instance (wave
      pipelining), loop tasks process one invocation at a time (the
      loop ring already pipelines its iterations);
    - tasks on a call/spawn cycle (recursive Cilk tasks such as FIB
      and M-SORT) are {e dynamic}: each invocation gets its own
      context, contexts park while blocked, and at most [tiles]
      contexts may fire datapath operations in a cycle — the
      issue-queue + execution-tile structure of §3.6.

    {2 The event-driven kernel}

    [step] does not sweep every node of every instance.  Each node
    carries [queued] flags and sits on a per-instance wake worklist;
    it is attempted only when something that could enable it changed:
    a token committed into an input channel, space freed in a
    downstream channel, a pipeline/memory/reorder-buffer entry
    matured, a child task's queue drained, a spawned child joined, or
    an invocation was injected.  Nodes sleeping on latency
    ([nr_busy_until], pipeline emit times, bank round trips) wake from
    a timed table keyed by absolute cycle.  Completion checks and
    junction arbitration likewise run only on instances whose state
    moved, and only channels with staged writes are committed.

    The wake discipline is {e conservative}: over-waking a node is
    always safe (a failed attempt has no side effects), under-waking
    never happens (every condition a blocked node waits on has a wake
    source).  Within a cycle the woken nodes are drained in the same
    deterministic order the dense sweep used — tasks in id order,
    instances in queue order, nodes in graph order — so the kernel is
    bit-for-bit cycle-accurate against the dense reference:
    [total_cycles], [fires] and all utilization stats are unchanged on
    every workload (enforced by the golden constants in
    [test/test_sim.ml]).

    Functional results are written to the same flat memory the golden
    interpreter uses, so every simulation is checkable end to end. *)

module G = Muir_core.Graph
module Cost = Muir_core.Cost
module T = Muir_ir.Types
module I = Muir_ir.Instr
module E = Muir_ir.Eval
module Tr = Muir_trace.Trace
module Ctr = Muir_trace.Counters

type token = T.value

let truthy = Exec.truthy
let to_int = Exec.to_int

(* ------------------------------------------------------------------ *)
(* Runtime structures                                                   *)

(* Channels carry committed tokens in [fq]; writes land in [staged]
   and become visible at the end-of-cycle commit.  The back-pointers
   drive the wake lists: a commit wakes the consumer ([f_dst]) for
   fire, a pop wakes the producer ([f_src]) for emission. *)
type fifo = {
  fq : token Queue.t;
  staged : token Queue.t;
  cap : int;
  mutable f_dirty : bool;              (** queued on the commit list *)
  mutable f_src : (instance * node_rt) option;
  mutable f_dst : (instance * node_rt) option;
}

and sync_ctx = {
  mutable live_children : int;
  mutable cx_owner : instance option;
      (** instance whose invocation owns this context: re-checked for
          completion when a child joins *)
  mutable cx_waiters : (instance * node_rt) list;
      (** SyncWait nodes parked on this context *)
}

and reply =
  | Rroot
  | Rcall of { r_inst : instance; r_node : int; r_wave : int }
  | Rspawn of {
      r_inst : instance;
      r_node : int;
      r_wave : int;
      r_ctx : sync_ctx;  (** decremented when the child completes *)
    }

and invocation = {
  iv_wave : int;
  iv_reply : reply;
  iv_eff_ctx : sync_ctx;        (** where this invocation's spawns join *)
  iv_own_ctx : sync_ctx option; (** fresh context (function tasks) *)
  iv_liveouts : token option array;
  mutable iv_stores : int;      (** outstanding stores attributed here *)
}

and mem_entry = {
  me_acc : Memsys.access option;  (** [None] when predicated off *)
  me_gated : token;               (** data token to emit when gated *)
  me_inv : invocation option;     (** store attribution (loads: None ok) *)
  me_is_store : bool;
}

and node_rt = {
  nr : G.node;
  nr_cost : Cost.t;
  mutable nr_idx : int;           (** position in [inodes] (drain order) *)
  nr_in : fifo option array;      (** [None] = immediate slot *)
  nr_imm : token array;           (** immediate values (valid when in=None) *)
  nr_out : fifo list array;       (** per out port: fan-out channels *)
  mutable nr_fired : int;         (** firings so far (the wave counter) *)
  mutable nr_busy_until : int;
  nr_pipe : (int * (int * token) list) Queue.t;
      (** (emit-at cycle, [(port, token)]) *)
  nr_mem : mem_entry Queue.t;     (** loads/stores in flight, FIFO *)
  nr_resp : (int, token array) Hashtbl.t;  (** call/spawn reorder buffer *)
  mutable nr_next_resp : int;
  nr_sync : (invocation * int) Queue.t;
      (** pending sync waits: (invocation, wave) *)
  mutable nr_qfire : bool;        (** on the instance's fire worklist *)
  mutable nr_qemit : bool;        (** on the instance's emit worklist *)
  mutable nr_wait_child : bool;   (** parked on a full child task queue *)
}

and instance = {
  it : G.task;
  iid : int;
  mutable i_ord : int;            (** drain order within the task: the
                                      list order of [tinstances] is
                                      ascending [i_ord] *)
  inodes : node_rt array;
  inode_by_id : node_rt option array;  (** node id -> runtime (ids are
                                           sparse after fusion) *)
  ififos : fifo array;            (** indexed by edge id *)
  i_waves : (int, invocation) Hashtbl.t;  (** wave -> inflight invocation *)
  mutable i_lo : int;             (** lowest possibly-inflight wave *)
  mutable i_count : int;          (** inflight invocations *)
  mutable next_wave : int;
  mutable live : bool;            (** dynamic instances are retired *)
  idynamic : bool;
  ipipe_loop : bool;
      (** leaf loop (no stores/calls/spawns/syncs): safe to pipeline
          invocations through the ring, like the paper's in-order
          concurrent invocations *)
  iprime : int array;             (** resting token count per edge *)
  mutable junction : (G.space_id * Memsys.subreq) Queue.t;
  isyncs : node_rt array;         (** SyncWait nodes, for join wakes *)
  mutable i_fire_nodes : node_rt list;  (** woken for fire (unordered) *)
  mutable i_emit_nodes : node_rt list;  (** woken for emit (unordered) *)
  mutable i_qfire : bool;         (** on the task's fire worklist *)
  mutable i_qemit : bool;
  mutable i_qcomplete : bool;
  mutable i_qjunction : bool;
  i_prof : Tr.Prof.iprof;         (** always-on stall accounting *)
}

type task_rt = {
  tk : G.task;
  tqueue : msg Queue.t;           (** pending invocations *)
  mutable tinstances : instance list;
  tdynamic : bool;
  mutable tinvocations : int;     (** total, for stats *)
  mutable tbusy : int;            (** cycles with at least one firing *)
  mutable trr : int;              (** round-robin dispatch cursor *)
  mutable t_next_ord : int;       (** next [i_ord] for dynamic instances
                                      (decreasing: newest first) *)
  mutable t_fire : instance list;     (** instances with woken nodes *)
  mutable t_emit : instance list;
  mutable t_complete : instance list; (** instances to re-check for
                                          invocation completion *)
  mutable t_junction : instance list; (** instances with queued junction
                                          sub-requests *)
  mutable t_wait_child : (instance * node_rt) list;
      (** caller nodes parked on this task's full invocation queue *)
}

and msg = {
  m_args : token array;
  m_ctx : sync_ctx;
  m_reply : reply;
}

type stats = {
  cycles : int;
  dma_cycles : int;
  total_cycles : int;
  fires : int;
  invocations : (string * int) list;
  utilization : (string * float) list;
      (** per task: fraction of cycles with at least one node firing *)
  mem : Memsys.struct_stats list;
  mem_requests : int;
  wall_seconds : float;           (** kernel wall-clock time of [run] *)
  cycles_per_sec : float;         (** simulated cycles per wall second *)
  woken_per_cycle : float;        (** fire-phase node attempts per cycle *)
  live_nodes_per_cycle : float;   (** instantiated nodes per cycle (the
                                      dense sweep would attempt these) *)
}

type result = {
  value : token;                  (** root task's return value *)
  memory : Muir_ir.Memory.t;
  stats : stats;
  counters : Ctr.t;               (** always-on performance counters *)
}

exception Deadlock of string
exception Cycle_limit of int

(* ------------------------------------------------------------------ *)
(* Simulator state                                                      *)

type timed_ev =
  | Wfire of instance * node_rt
  | Wemit of instance * node_rt

type t = {
  circ : G.circuit;
  ms : Memsys.t;
  tasks : task_rt array;          (** indexed by task id *)
  mutable now : int;
  mutable fires : int;
  mutable last_activity : int;
  mutable next_iid : int;
  mutable root_result : token array option;
  junction_width : int array;     (** per task *)
  max_outstanding : int;
  timed : (int, timed_ev list) Hashtbl.t;
      (** absolute cycle -> wakes due; drained as [now] reaches each key *)
  mutable dirty_fifos : fifo list;    (** channels with staged writes *)
  mutable woken : int;            (** total fire-phase attempts, stats *)
  mutable live_nodes : int;       (** nodes across live instances *)
  mutable node_cycles : int;      (** Σ live_nodes per cycle, stats *)
  tr : Tr.t option;               (** event sink; [None] = tracing off *)
  ctrs : Ctr.t;                   (** always-on counter bank *)
}

(* ------------------------------------------------------------------ *)
(* Wake plumbing                                                        *)

let wake_fire (sim : t) (inst : instance) (n : node_rt) : unit =
  if inst.live && not n.nr_qfire then begin
    n.nr_qfire <- true;
    inst.i_fire_nodes <- n :: inst.i_fire_nodes;
    if not inst.i_qfire then begin
      inst.i_qfire <- true;
      let trt = sim.tasks.(inst.it.tid) in
      trt.t_fire <- inst :: trt.t_fire
    end
  end

let wake_emit (sim : t) (inst : instance) (n : node_rt) : unit =
  if inst.live && not n.nr_qemit then begin
    n.nr_qemit <- true;
    inst.i_emit_nodes <- n :: inst.i_emit_nodes;
    if not inst.i_qemit then begin
      inst.i_qemit <- true;
      let trt = sim.tasks.(inst.it.tid) in
      trt.t_emit <- inst :: trt.t_emit
    end
  end

let wake_complete (sim : t) (inst : instance) : unit =
  if inst.live && not inst.i_qcomplete then begin
    inst.i_qcomplete <- true;
    let trt = sim.tasks.(inst.it.tid) in
    trt.t_complete <- inst :: trt.t_complete
  end

let wake_junction (sim : t) (inst : instance) : unit =
  if inst.live && not inst.i_qjunction then begin
    inst.i_qjunction <- true;
    let trt = sim.tasks.(inst.it.tid) in
    trt.t_junction <- inst :: trt.t_junction
  end

(** Schedule a wake at absolute cycle [c] (clamped to the future). *)
let at (sim : t) (c : int) (ev : timed_ev) : unit =
  let c = max c (sim.now + 1) in
  let prev = try Hashtbl.find sim.timed c with Not_found -> [] in
  Hashtbl.replace sim.timed c (ev :: prev)

let drain_timed (sim : t) : unit =
  match Hashtbl.find_opt sim.timed sim.now with
  | None -> ()
  | Some evs ->
    Hashtbl.remove sim.timed sim.now;
    List.iter
      (function
        | Wfire (i, n) -> wake_fire sim i n
        | Wemit (i, n) -> wake_emit sim i n)
      evs

(** A spawned child joined or a context count moved: re-check the
    owner's completion and retry every parked sync. *)
let ctx_dec (sim : t) (c : sync_ctx) : unit =
  c.live_children <- c.live_children - 1;
  (match c.cx_owner with Some i -> wake_complete sim i | None -> ());
  List.iter (fun (i, n) -> wake_emit sim i n) c.cx_waiters

let cmp_inst (a : instance) (b : instance) = compare a.i_ord b.i_ord
let cmp_node (a : node_rt) (b : node_rt) = compare a.nr_idx b.nr_idx

(* ------------------------------------------------------------------ *)
(* Channel operations                                                   *)

let fifo_space (f : fifo) = Queue.length f.fq + Queue.length f.staged < f.cap

let fifo_push (sim : t) (f : fifo) (v : token) =
  Queue.add v f.staged;
  if not f.f_dirty then begin
    f.f_dirty <- true;
    sim.dirty_fifos <- f :: sim.dirty_fifos
  end

(* ------------------------------------------------------------------ *)
(* Construction                                                         *)

(* Tasks on a call/spawn cycle need dynamic instances. *)
let dynamic_tasks (c : G.circuit) : bool array =
  let n = List.length c.tasks in
  let reach = Array.make_matrix n n false in
  List.iter
    (fun (t : G.task) ->
      List.iter (fun ch -> reach.(t.tid).(ch) <- true) t.children)
    c.tasks;
  for k = 0 to n - 1 do
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        if reach.(i).(k) && reach.(k).(j) then reach.(i).(j) <- true
      done
    done
  done;
  (* A task is dynamic if it lies on a cycle, or is reachable from one
     (its parents may hold unbounded concurrent invocations). *)
  let on_cycle = Array.init n (fun i -> reach.(i).(i)) in
  Array.init n (fun i ->
      on_cycle.(i)
      || List.exists
           (fun j -> on_cycle.(j) && reach.(j).(i))
           (List.init n Fun.id))

let imm_token = function
  | G.Simm v -> v
  | G.Swire -> T.VPoison

let new_fifo cap =
  { fq = Queue.create (); staged = Queue.create (); cap;
    f_dirty = false; f_src = None; f_dst = None }

let new_instance (sim : t) (task : G.task) ~(dynamic : bool) : instance =
  let nedges = task.next_eid in
  let fifos = Array.init nedges (fun _ -> new_fifo 1) in
  List.iter
    (fun (e : G.edge) ->
      let f = new_fifo e.capacity in
      List.iter (fun v -> Queue.add v f.fq) e.initial;
      fifos.(e.eid) <- f)
    task.edges;
  let max_nid = task.next_nid in
  let by_id = Array.make max_nid None in
  List.iter (fun (n : G.node) -> by_id.(n.nid) <- Some n) task.nodes;
  let in_map = Hashtbl.create 64 and out_map = Hashtbl.create 64 in
  List.iter
    (fun (e : G.edge) ->
      Hashtbl.replace in_map e.dst e.eid;
      Hashtbl.replace out_map e.src
        (e.eid :: (try Hashtbl.find out_map e.src with Not_found -> [])))
    task.edges;
  let nodes =
    Array.of_list
      (List.map
         (fun (n : G.node) ->
           let arity = Array.length n.ins in
           let nr_in =
             Array.init arity (fun i ->
                 match n.ins.(i) with
                 | G.Simm _ -> None
                 | G.Swire -> (
                   match Hashtbl.find_opt in_map (n.nid, i) with
                   | Some eid -> Some fifos.(eid)
                   | None -> None (* validated: shouldn't happen *)))
           in
           let nr_imm = Array.map imm_token n.ins in
           let outs = G.out_arity n.kind ~call_res:16 in
           let nr_out =
             Array.init (max outs 1) (fun p ->
                 match Hashtbl.find_opt out_map (n.nid, p) with
                 | Some eids -> List.map (fun e -> fifos.(e)) eids
                 | None -> [])
           in
           { nr = n; nr_cost = Cost.node_cost n.kind; nr_idx = 0; nr_in;
             nr_imm; nr_out; nr_fired = 0; nr_busy_until = 0;
             nr_pipe = Queue.create (); nr_mem = Queue.create ();
             nr_resp = Hashtbl.create 8; nr_next_resp = 0;
             nr_sync = Queue.create (); nr_qfire = false; nr_qemit = false;
             nr_wait_child = false })
         task.nodes)
  in
  Array.iteri (fun i n -> n.nr_idx <- i) nodes;
  let iid = sim.next_iid in
  sim.next_iid <- iid + 1;
  let iprime = Array.make nedges 0 in
  List.iter
    (fun (e : G.edge) -> iprime.(e.eid) <- List.length e.initial)
    task.edges;
  let ipipe_loop =
    (match task.tkind with G.Tloop _ -> true | G.Tfunc -> false)
    && List.for_all
         (fun (n : G.node) ->
           match n.kind with
           | G.Store _ | G.Tstore _ | G.CallChild _ | G.SpawnChild _
           | G.SyncWait -> false
           | _ -> true)
         task.nodes
  in
  let inode_by_id = Array.make (max max_nid 1) None in
  Array.iter (fun nr -> inode_by_id.(nr.nr.G.nid) <- Some nr) nodes;
  let isyncs =
    Array.of_list
      (List.filter
         (fun (n : node_rt) ->
           match n.nr.kind with G.SyncWait -> true | _ -> false)
         (Array.to_list nodes))
  in
  let inst =
    { it = task; iid; i_ord = 0; inodes = nodes; inode_by_id;
      ififos = fifos; i_waves = Hashtbl.create 8; i_lo = 0; i_count = 0;
      next_wave = 0; live = true; idynamic = dynamic; ipipe_loop; iprime;
      junction = Queue.create (); isyncs; i_fire_nodes = [];
      i_emit_nodes = []; i_qfire = false; i_qemit = false;
      i_qcomplete = false; i_qjunction = false;
      i_prof = Tr.Prof.make ~born:sim.now ~nnodes:(Array.length nodes) }
  in
  (* Back-pointers so channel events can wake producer/consumer. *)
  List.iter
    (fun (e : G.edge) ->
      let f = fifos.(e.eid) in
      (match inode_by_id.(fst e.dst) with
      | Some n -> f.f_dst <- Some (inst, n)
      | None -> ());
      match inode_by_id.(fst e.src) with
      | Some n -> f.f_src <- Some (inst, n)
      | None -> ())
    task.edges;
  sim.live_nodes <- sim.live_nodes + Array.length nodes;
  (* First cycle behaves like a dense sweep over the fresh instance:
     initial loop-control tokens can enable nodes with no other wake
     source. *)
  Array.iter (fun n -> wake_fire sim inst n) nodes;
  inst

let create ?tracer (c : G.circuit) : t =
  Muir_core.Validate.check_exn c;
  let mem = Muir_ir.Memory.create c.prog in
  let ms = Memsys.create c mem in
  let n = List.length c.tasks in
  let dyn = dynamic_tasks c in
  let tasks =
    Array.of_list
      (List.map
         (fun (t : G.task) ->
           { tk = t; tqueue = Queue.create (); tinstances = [];
             tdynamic = dyn.(t.tid); tinvocations = 0; tbusy = 0;
             trr = 0; t_next_ord = -1; t_fire = []; t_emit = [];
             t_complete = []; t_junction = []; t_wait_child = [] })
         c.tasks)
  in
  let sim =
    { circ = c; ms; tasks; now = 0; fires = 0; last_activity = 0;
      next_iid = 0; root_result = None;
      junction_width =
        Array.init n (fun tid -> G.junction_width c tid);
      max_outstanding = 8; timed = Hashtbl.create 64; dirty_fifos = [];
      woken = 0; live_nodes = 0; node_cycles = 0; tr = tracer;
      ctrs = Ctr.create () }
  in
  (* Static instances for non-dynamic tasks: one per tile. *)
  Array.iter
    (fun trt ->
      if not trt.tdynamic then begin
        trt.tinstances <-
          List.init trt.tk.tiles (fun _ ->
              new_instance sim trt.tk ~dynamic:false);
        List.iteri (fun k inst -> inst.i_ord <- k) trt.tinstances
      end)
    tasks;
  sim

(* ------------------------------------------------------------------ *)
(* Invocation plumbing                                                  *)

let find_inv (inst : instance) (wave : int) : invocation =
  match Hashtbl.find_opt inst.i_waves wave with
  | Some iv -> iv
  | None ->
    raise
      (Deadlock
         (Fmt.str "task %s: no inflight invocation for wave %d" inst.it.tname
            wave))

(** Oldest inflight invocation (lowest wave), advancing the window's
    low cursor past completed waves. *)
let oldest_inv (inst : instance) : invocation option =
  if inst.i_count = 0 then None
  else begin
    let rec go w =
      if w >= inst.next_wave then None
      else
        match Hashtbl.find_opt inst.i_waves w with
        | Some iv ->
          inst.i_lo <- w;
          Some iv
        | None -> go (w + 1)
    in
    go inst.i_lo
  end

(** Inflight invocations in wave (= invocation) order. *)
let inflight_waves (inst : instance) : (int * invocation) list =
  let acc = ref [] in
  for w = inst.next_wave - 1 downto inst.i_lo do
    match Hashtbl.find_opt inst.i_waves w with
    | Some iv -> acc := (w, iv) :: !acc
    | None -> ()
  done;
  !acc

(** The invocation a firing of node [n] belongs to.  In function tasks
    every node fires exactly once per wave; in loop tasks only one
    invocation is in flight, so attribution is exact in both cases. *)
let attr_inv (inst : instance) (n : node_rt) : invocation =
  match inst.it.tkind with
  | G.Tfunc -> find_inv inst n.nr_fired
  | G.Tloop _ -> (
    match oldest_inv inst with
    | Some iv -> iv
    | None ->
      raise
        (Deadlock
           (Fmt.str "loop task %s fired with no inflight invocation"
              inst.it.tname)))

(** Can this instance accept another invocation right now? *)
let can_accept (inst : instance) : bool =
  (match inst.it.tkind with
  | G.Tloop _ -> inst.ipipe_loop || inst.i_count = 0
  | G.Tfunc -> true)
  && List.for_all
       (fun (n : node_rt) ->
         match n.nr.kind with
         | G.LiveIn _ -> Array.for_all (List.for_all fifo_space) n.nr_out
         | _ -> true)
       (Array.to_list inst.inodes)

let inject (sim : t) (trt : task_rt) (inst : instance) (m : msg) : unit =
  let wave = inst.next_wave in
  inst.next_wave <- wave + 1;
  trt.tinvocations <- trt.tinvocations + 1;
  let own_ctx =
    match inst.it.tkind with
    | G.Tfunc ->
      Some { live_children = 0; cx_owner = Some inst; cx_waiters = [] }
    | G.Tloop _ -> None
  in
  let iv =
    { iv_wave = wave; iv_reply = m.m_reply;
      iv_eff_ctx =
        (match own_ctx with Some c -> c | None -> m.m_ctx);
      iv_own_ctx = own_ctx;
      iv_liveouts = Array.make (List.length inst.it.res_tys) None;
      iv_stores = 0 }
  in
  Hashtbl.replace inst.i_waves wave iv;
  inst.i_count <- inst.i_count + 1;
  Array.iter
    (fun (n : node_rt) ->
      match n.nr.kind with
      | G.LiveIn i ->
        let v = if i < Array.length m.m_args then m.m_args.(i) else T.VPoison in
        List.iter (fun f -> fifo_push sim f v) n.nr_out.(0)
      | _ -> ())
    inst.inodes;
  wake_complete sim inst;
  sim.last_activity <- sim.now

(** Deliver a completed child's results to its parent. *)
let deliver_reply (sim : t) (reply : reply) (res : token array) : unit =
  match reply with
  | Rroot -> sim.root_result <- Some res
  | Rcall { r_inst; r_node; r_wave } ->
    let n = Option.get r_inst.inode_by_id.(r_node) in
    Hashtbl.replace n.nr_resp r_wave res;
    wake_emit sim r_inst n
  | Rspawn { r_inst; r_node; r_wave; r_ctx } ->
    ctx_dec sim r_ctx;
    let v = if Array.length res > 1 then res.(1) else T.VBool true in
    let n = Option.get r_inst.inode_by_id.(r_node) in
    Hashtbl.replace n.nr_resp r_wave [| v |];
    wake_emit sim r_inst n

(** A function-task wave is fully fired once every node (live-ins are
    driven by injection) has consumed it — this is exact because every
    node fires exactly once per wave in a predicated hyperblock. *)
let wave_fully_fired (inst : instance) (wave : int) : bool =
  Array.for_all
    (fun (n : node_rt) ->
      match n.nr.kind with
      | G.LiveIn _ -> true
      | G.CallChild _ | G.SpawnChild _ ->
        (* The child invoked for this wave must itself have completed
           (its response emitted in order): a void call's side effects
           otherwise race ahead of the caller's completion. *)
        n.nr_fired > wave && n.nr_next_resp > wave
      | _ -> n.nr_fired > wave)
    inst.inodes

(** A loop instance is quiescent when every token at rest sits on a
    primed edge (loop-control or ordering back edges) at its resting
    count and no node holds in-flight work.  Mid-invocation the
    carried values necessarily occupy other channels or pipelines, so
    quiescence is equivalent to "the invocation has fully drained". *)
let loop_quiescent (inst : instance) : bool =
  Array.for_all
    (fun (n : node_rt) ->
      Queue.is_empty n.nr_pipe && Queue.is_empty n.nr_mem
      && Hashtbl.length n.nr_resp = 0
      && Queue.is_empty n.nr_sync
      && (match n.nr.kind with
         | G.CallChild _ | G.SpawnChild _ -> n.nr_next_resp = n.nr_fired
         | _ -> true))
    inst.inodes
  && Queue.is_empty inst.junction
  && Array.for_all2
       (fun (f : fifo) prime ->
         Queue.length f.fq + Queue.length f.staged = prime)
       inst.ififos inst.iprime

let try_complete (sim : t) (trt : task_rt) (inst : instance) : unit =
  let complete =
    List.filter
      (fun ((wave, iv) : int * invocation) ->
        Array.for_all Option.is_some iv.iv_liveouts
        && iv.iv_stores = 0
        && (match iv.iv_own_ctx with
           | Some c -> c.live_children = 0
           | None -> true)
        && (match inst.it.tkind with
           | G.Tfunc -> wave_fully_fired inst wave
           | G.Tloop _ ->
             (* leaf loops have no side effects to wait for: the
                live-out tuple is the whole observable result *)
             inst.ipipe_loop || loop_quiescent inst))
      (inflight_waves inst)
  in
  if complete <> [] then begin
    List.iter (fun (wave, _) -> Hashtbl.remove inst.i_waves wave) complete;
    inst.i_count <- inst.i_count - List.length complete;
    while
      inst.i_lo < inst.next_wave
      && not (Hashtbl.mem inst.i_waves inst.i_lo)
    do
      inst.i_lo <- inst.i_lo + 1
    done;
    sim.last_activity <- sim.now;
    List.iter
      (fun (_, iv) ->
        let res = Array.map Option.get iv.iv_liveouts in
        deliver_reply sim iv.iv_reply res)
      complete;
    if inst.i_count = 0 then begin
      (* Invocation drained: every node is idle from the next cycle.
         A retiring dynamic instance also folds its accounting into
         the whole-run counter bank here, before it disappears. *)
      let ip = inst.i_prof in
      Array.iter
        (fun np ->
          ignore
            (Tr.Prof.transition np (Tr.cause_index Tr.Idle) (sim.now + 1)))
        ip.nprofs;
      if inst.idynamic then
        Array.iteri
          (fun i np ->
            let n = inst.inodes.(i) in
            Ctr.fold sim.ctrs ~task:inst.it.tid ~node:n.nr.nid
              ~fires:n.nr_fired ~born:ip.born ~upto:(sim.now + 1) np)
          ip.nprofs
    end;
    if inst.idynamic && inst.i_count = 0 then begin
      inst.live <- false;
      sim.live_nodes <- sim.live_nodes - Array.length inst.inodes;
      trt.tinstances <-
        List.filter (fun i -> i.iid <> inst.iid) trt.tinstances
    end
  end

(* ------------------------------------------------------------------ *)
(* Node firing (phase A)                                                *)

let peek_in (n : node_rt) (i : int) : token option =
  match n.nr_in.(i) with
  | None -> Some n.nr_imm.(i)
  | Some f -> if Queue.is_empty f.fq then None else Some (Queue.peek f.fq)

let pop_in (sim : t) (n : node_rt) (i : int) : token =
  match n.nr_in.(i) with
  | None -> n.nr_imm.(i)
  | Some f ->
    let v = Queue.pop f.fq in
    (* Space freed: the producer's blocked emission may proceed. *)
    (match f.f_src with
    | Some (si, sn) -> wake_emit sim si sn
    | None -> ());
    v

let all_inputs_ready (n : node_rt) : bool =
  let ok = ref true in
  Array.iteri
    (fun i _ -> if peek_in n i = None then ok := false)
    n.nr_in;
  !ok

(** Could the node fire again with the tokens already committed?  Used
    to self-schedule a re-attempt after a successful firing — no other
    event will arrive for tokens that are already there. *)
let ready_again (n : node_rt) : bool =
  match n.nr.kind with
  | G.LiveIn _ -> false
  | G.MergeLoop -> (
    match peek_in n 0 with
    | None -> false
    | Some ctl -> peek_in n (if truthy ctl then 2 else 1) <> None)
  | _ -> all_inputs_ready n

(** Build the word list of a memory access. *)
let access_words (kind : G.node_kind) (addr : int) (stride : int)
    (value : token) : (int * token option) array =
  match kind with
  | G.Load _ -> [| (addr, None) |]
  | G.Store _ -> [| (addr, Some value) |]
  | G.Tload { shape; _ } ->
    Array.init (T.shape_words shape) (fun i ->
        let r = i / shape.cols and c = i mod shape.cols in
        (addr + (r * stride) + c, None))
  | G.Tstore { shape; _ } ->
    let tile = match value with T.VTensor a -> a | _ -> Array.make 4 0.0 in
    Array.init (T.shape_words shape) (fun i ->
        let r = i / shape.cols and c = i mod shape.cols in
        (addr + (r * stride) + c, Some (T.VFloat tile.(i))))
  | _ -> invalid_arg "access_words"

(** Attempt to fire node [n] of [inst]; true if it fired.  A failed
    attempt has no side effects beyond (re)subscribing the node to the
    event that can unblock it. *)
let try_fire (sim : t) (_trt : task_rt) (inst : instance) (n : node_rt) : bool
    =
  let now = sim.now in
  if n.nr_busy_until > now then begin
    (* Sleeping on the initiation interval: retry when it expires. *)
    at sim n.nr_busy_until (Wfire (inst, n));
    false
  end
  else
    match n.nr.kind with
    | G.LiveIn _ -> false (* driven by injection *)
    | G.MergeLoop -> (
      (* Consume ctl, then the selected data input only. *)
      match peek_in n 0 with
      | None -> false
      | Some ctl ->
        let sel = if truthy ctl then 2 else 1 in
        (match peek_in n sel with
        | None -> false
        | Some _ ->
          if Queue.length n.nr_pipe >= 4 then false
          else begin
            ignore (pop_in sim n 0);
            let v = pop_in sim n sel in
            Queue.add (now + n.nr_cost.latency - 1, [ (0, v) ]) n.nr_pipe;
            n.nr_fired <- n.nr_fired + 1;
            true
          end))
    | _ ->
      if not (all_inputs_ready n) then false
      else if Queue.length n.nr_pipe >= 4 && not (G.is_memory_node n.nr) then
        false
      else begin
        match n.nr.kind with
        | G.Compute op ->
          let args = Array.to_list (Array.mapi (fun i _ -> peek_in n i |> Option.get) n.nr_in) in
          Array.iteri (fun i _ -> ignore (pop_in sim n i)) n.nr_in;
          let v = Exec.compute op args in
          Queue.add (now + n.nr_cost.latency - 1, [ (0, v) ]) n.nr_pipe;
          n.nr_busy_until <- now + n.nr_cost.ii;
          n.nr_fired <- n.nr_fired + 1;
          true
        | G.Fused ops ->
          let args = Array.to_list (Array.mapi (fun i _ -> peek_in n i |> Option.get) n.nr_in) in
          Array.iteri (fun i _ -> ignore (pop_in sim n i)) n.nr_in;
          let v = Exec.fused ops args in
          Queue.add (now + n.nr_cost.latency - 1, [ (0, v) ]) n.nr_pipe;
          n.nr_busy_until <- now + n.nr_cost.ii;
          n.nr_fired <- n.nr_fired + 1;
          true
        | G.Merge k ->
          let args = Array.init (Array.length n.nr_in) (fun i -> peek_in n i |> Option.get) in
          Array.iteri (fun i _ -> ignore (pop_in sim n i)) n.nr_in;
          let v = Exec.merge k args in
          Queue.add (now + n.nr_cost.latency - 1, [ (0, v) ]) n.nr_pipe;
          n.nr_fired <- n.nr_fired + 1;
          true
        | G.Steer ->
          let p = peek_in n 0 |> Option.get in
          let d = peek_in n 1 |> Option.get in
          ignore (pop_in sim n 0);
          ignore (pop_in sim n 1);
          let port = if truthy p then 0 else 1 in
          Queue.add (now + n.nr_cost.latency - 1, [ (port, d) ]) n.nr_pipe;
          n.nr_fired <- n.nr_fired + 1;
          true
        | G.FusedSteer ops ->
          let p = peek_in n 0 |> Option.get in
          let args =
            List.init
              (Array.length n.nr_in - 1)
              (fun i -> peek_in n (i + 1) |> Option.get)
          in
          Array.iteri (fun i _ -> ignore (pop_in sim n i)) n.nr_in;
          let v = Exec.fused ops args in
          let port = if truthy p then 0 else 1 in
          Queue.add (now + n.nr_cost.latency - 1, [ (port, v) ]) n.nr_pipe;
          n.nr_busy_until <- now + n.nr_cost.ii;
          n.nr_fired <- n.nr_fired + 1;
          true
        | G.Tcompute { top; _ } ->
          let args = Array.to_list (Array.mapi (fun i _ -> peek_in n i |> Option.get) n.nr_in) in
          Array.iteri (fun i _ -> ignore (pop_in sim n i)) n.nr_in;
          let v = Exec.tensor top args in
          Queue.add (now + n.nr_cost.latency - 1, [ (0, v) ]) n.nr_pipe;
          n.nr_busy_until <- now + n.nr_cost.ii;
          n.nr_fired <- n.nr_fired + 1;
          true
        | G.Load { space } | G.Store { space }
        | G.Tload { space; _ } | G.Tstore { space; _ } ->
          if Queue.length n.nr_mem >= sim.max_outstanding then false
          else begin
            let is_store_kind =
              match n.nr.kind with
              | G.Store _ | G.Tstore _ -> true
              | _ -> false
            in
            let inv =
              if is_store_kind then Some (attr_inv inst n)
              else oldest_inv inst
            in
            let pred = peek_in n 0 |> Option.get in
            let is_store = is_store_kind in
            let addr = peek_in n 1 |> Option.get in
            let stride, value =
              match n.nr.kind with
              | G.Load _ -> (T.VInt 0L, T.VPoison)
              | G.Store _ -> (T.VInt 0L, peek_in n 2 |> Option.get)
              | G.Tload _ -> (peek_in n 2 |> Option.get, T.VPoison)
              | G.Tstore _ ->
                (peek_in n 2 |> Option.get, peek_in n 3 |> Option.get)
              | _ -> assert false
            in
            Array.iteri (fun i _ -> ignore (pop_in sim n i)) n.nr_in;
            if truthy pred && not (T.is_poison addr) then begin
              let words =
                access_words n.nr.kind (to_int addr) (to_int stride) value
              in
              let a =
                { Memsys.a_is_store = is_store; a_words = words;
                  a_loaded = []; a_pending = 0; a_done = false;
                  a_issued = now; a_notify = ignore }
              in
              (* Matured responses push the node's emission, not a
                 next-cycle poll of every memory node. *)
              a.Memsys.a_notify <- (fun () -> wake_emit sim inst n);
              let rt = sim.ms.space_of space in
              let srs = Memsys.split rt a in
              a.a_pending <- List.length srs;
              let buffered = is_store && Memsys.store_buffered rt in
              (match inv with
              | Some iv when is_store && not buffered ->
                iv.iv_stores <- iv.iv_stores + 1
              | _ -> ());
              List.iter (fun sr -> Queue.add (space, sr) inst.junction) srs;
              (* write-back buffer: the store is architecturally done
                 the moment the buffer accepts it; it drains to the
                 bank in FIFO order behind this point *)
              if buffered then a.Memsys.a_done <- true;
              Queue.add
                { me_acc = Some a; me_gated = T.VPoison; me_inv = inv;
                  me_is_store = is_store }
                n.nr_mem
            end
            else
              Queue.add
                { me_acc = None; me_gated = T.VPoison; me_inv = inv;
                  me_is_store = is_store }
                n.nr_mem;
            n.nr_busy_until <- now + n.nr_cost.ii;
            n.nr_fired <- n.nr_fired + 1;
            true
          end
        | G.CallChild tid | G.SpawnChild tid ->
          let pred = peek_in n 0 |> Option.get in
          let child = sim.tasks.(tid) in
          let is_spawn =
            match n.nr.kind with G.SpawnChild _ -> true | _ -> false
          in
          let child_arity = List.length child.tk.arg_tys in
          let queue_cap = child.tk.queue_depth * max child.tk.tiles 1 in
          if truthy pred && Queue.length child.tqueue >= queue_cap
             && not child.tdynamic
          then begin
            (* Park on the child's full queue; its dispatch pops us
               back onto the worklist. *)
            if not n.nr_wait_child then begin
              n.nr_wait_child <- true;
              child.t_wait_child <- (inst, n) :: child.t_wait_child
            end;
            false
          end
          else begin
            let wave = n.nr_fired in
            let inv = attr_inv inst n in
            let args =
              Array.init child_arity (fun i ->
                  if i = 0 then T.VBool true
                  else
                    match peek_in n i with
                    | Some v -> v
                    | None -> T.VPoison)
            in
            Array.iteri (fun i _ -> ignore (pop_in sim n i)) n.nr_in;
            if truthy pred then begin
              let reply =
                if is_spawn then begin
                  inv.iv_eff_ctx.live_children <-
                    inv.iv_eff_ctx.live_children + 1;
                  Rspawn
                    { r_inst = inst; r_node = n.nr.nid; r_wave = wave;
                      r_ctx = inv.iv_eff_ctx }
                end
                else Rcall { r_inst = inst; r_node = n.nr.nid; r_wave = wave }
              in
              Queue.add
                { m_args = args; m_ctx = inv.iv_eff_ctx; m_reply = reply }
                child.tqueue
            end
            else begin
              (* Predicated off: synthesize an immediate response. *)
              let res =
                if is_spawn then [| T.VPoison |]
                else
                  Array.of_list
                    (List.mapi
                       (fun i _ -> if i = 0 then T.VBool false else T.VPoison)
                       child.tk.res_tys)
              in
              Hashtbl.replace n.nr_resp wave res
            end;
            n.nr_busy_until <- now + n.nr_cost.ii;
            n.nr_fired <- n.nr_fired + 1;
            true
          end
        | G.SyncWait ->
          let inv = attr_inv inst n in
          Array.iteri (fun i _ -> ignore (pop_in sim n i)) n.nr_in;
          Queue.add (inv, n.nr_fired) n.nr_sync;
          (* Park on the join context: each child completion retries
             the sync's emission. *)
          if
            not
              (List.exists (fun (_, m) -> m == n) inv.iv_eff_ctx.cx_waiters)
          then
            inv.iv_eff_ctx.cx_waiters <-
              (inst, n) :: inv.iv_eff_ctx.cx_waiters;
          n.nr_fired <- n.nr_fired + 1;
          true
        | G.LiveOut idx ->
          let v = peek_in n 0 |> Option.get in
          let inv =
            match inst.it.tkind with
            | G.Tfunc -> find_inv inst n.nr_fired
            | G.Tloop _ -> attr_inv inst n
          in
          Array.iteri (fun i _ -> ignore (pop_in sim n i)) n.nr_in;
          inv.iv_liveouts.(idx) <- Some v;
          n.nr_fired <- n.nr_fired + 1;
          true
        | G.LiveIn _ | G.MergeLoop -> assert false
      end

(* ------------------------------------------------------------------ *)
(* Stall classification (always-on)                                     *)

(* Why did this woken node fail to fire?  Mirrors [try_fire]'s failure
   paths; a failed attempt has no side effects, so re-inspecting the
   state after the attempt is exact. *)
let stall_cause (sim : t) (n : node_rt) : Tr.cause =
  if n.nr_busy_until > sim.now then Tr.Structural
  else
    match n.nr.kind with
    | G.LiveIn _ -> Tr.Idle (* driven by injection, never stalled *)
    | G.MergeLoop -> (
      match peek_in n 0 with
      | None -> Tr.Operand
      | Some ctl ->
        if peek_in n (if truthy ctl then 2 else 1) = None then Tr.Operand
        else Tr.Backpressure)
    | _ ->
      if not (all_inputs_ready n) then Tr.Operand
      else if Queue.length n.nr_pipe >= 4 && not (G.is_memory_node n.nr)
      then Tr.Backpressure
      else (
        match n.nr.kind with
        | G.Load _ | G.Store _ | G.Tload _ | G.Tstore _ -> Tr.Memory
        | G.CallChild _ | G.SpawnChild _ -> Tr.Structural
        | _ -> Tr.Operand)

(* The label a node enters after firing at [sim.now], effective from
   [sim.now + 1].  Any event that changes the node's state relabels it,
   so this only has to be right for the state as left by the firing. *)
let post_fire_cause (sim : t) (n : node_rt) : Tr.cause =
  match n.nr.kind with
  | G.SyncWait -> Tr.Sync
  | _ ->
    if not (ready_again n) then Tr.Operand
    else if n.nr_busy_until > sim.now + 1 then Tr.Structural
    else (
      match n.nr.kind with
      | G.Load _ | G.Store _ | G.Tload _ | G.Tstore _ ->
        if Queue.length n.nr_mem >= sim.max_outstanding then Tr.Memory
        else Tr.Busy
      | _ ->
        if Queue.length n.nr_pipe >= 4 then Tr.Backpressure else Tr.Busy)

(** Fire attempt plus the event subscriptions a success implies. *)
let fire_node (sim : t) (trt : task_rt) (inst : instance) (n : node_rt) :
    bool =
  let fired = try_fire sim trt inst n in
  (* Interval accounting is always-on (it feeds the counter bank); the
     ring only sees events when a tracer is attached. *)
  let np = inst.i_prof.nprofs.(n.nr_idx) in
  if fired then begin
    ignore (Tr.Prof.transition np (Tr.cause_index Tr.Busy) sim.now);
    ignore
      (Tr.Prof.transition np
         (Tr.cause_index (post_fire_cause sim n))
         (sim.now + 1));
    match sim.tr with
    | Some tr ->
      Tr.emit tr
        (Tr.Efire
           { c = sim.now; task = inst.it.tid; inst = inst.iid;
             node = n.nr.nid; lat = n.nr_cost.latency })
    | None -> ()
  end
  else begin
    let cause = stall_cause sim n in
    let changed = Tr.Prof.transition np (Tr.cause_index cause) sim.now in
    match sim.tr with
    | Some tr when changed && cause <> Tr.Idle ->
      Tr.emit tr
        (Tr.Estall
           { c = sim.now; task = inst.it.tid; inst = inst.iid;
             node = n.nr.nid; cause })
    | _ -> ()
  end;
  if fired then begin
    sim.fires <- sim.fires + 1;
    sim.last_activity <- sim.now;
    (* The firing may have produced something to emit this very cycle
       and may have changed the instance's completion conditions. *)
    wake_emit sim inst n;
    wake_complete sim inst;
    (match n.nr.kind with
    | G.Load _ | G.Store _ | G.Tload _ | G.Tstore _ ->
      wake_junction sim inst
    | G.SpawnChild _ ->
      sim.ctrs.Ctr.spawns <- sim.ctrs.Ctr.spawns + 1;
      (* spawns_issued moved: parked syncs may now be able to pass *)
      Array.iter (fun s -> wake_emit sim inst s) inst.isyncs
    | _ -> ());
    (* Tokens already committed can enable the next firing without any
       further event: self-schedule past the initiation interval. *)
    if ready_again n then
      at sim (max n.nr_busy_until (sim.now + 1)) (Wfire (inst, n));
    true
  end
  else false

(* ------------------------------------------------------------------ *)
(* Emission (phase B)                                                   *)

let ports_have_space (n : node_rt) (outs : (int * token) list) : bool =
  List.for_all
    (fun (p, _) -> List.for_all fifo_space n.nr_out.(p))
    outs

let emit_ports (sim : t) (n : node_rt) (outs : (int * token) list) : unit =
  List.iter
    (fun (p, v) -> List.iter (fun f -> fifo_push sim f v) n.nr_out.(p))
    outs

let try_emit (sim : t) (inst : instance) (n : node_rt) : bool =
  let progressed = ref false in
  (* Pipeline outputs (in order). *)
  let rec drain_pipe () =
    if not (Queue.is_empty n.nr_pipe) then begin
      let ready, outs = Queue.peek n.nr_pipe in
      if ready <= sim.now && ports_have_space n outs then begin
        ignore (Queue.pop n.nr_pipe);
        emit_ports sim n outs;
        progressed := true;
        drain_pipe ()
      end
    end
  in
  drain_pipe ();
  (* Memory responses (FIFO per node). *)
  let rec drain_mem () =
    if not (Queue.is_empty n.nr_mem) then begin
      let e = Queue.peek n.nr_mem in
      let ready =
        match e.me_acc with None -> true | Some a -> a.a_done
      in
      if ready then begin
        let outs =
          match n.nr.kind, e.me_acc with
          | (G.Load _ | G.Tload _), None ->
            [ (0, e.me_gated); (1, T.VBool false) ]
          | G.Load _, Some a -> [ (0, Memsys.scalar_value a); (1, T.VBool true) ]
          | G.Tload _, Some a -> [ (0, Memsys.tile_value a); (1, T.VBool true) ]
          | (G.Store _ | G.Tstore _), None -> [ (0, T.VBool false) ]
          | (G.Store _ | G.Tstore _), Some _ -> [ (0, T.VBool true) ]
          | _ -> assert false
        in
        if ports_have_space n outs then begin
          ignore (Queue.pop n.nr_mem);
          (match e.me_inv with
          | Some iv when e.me_is_store && e.me_acc <> None ->
            if iv.iv_stores > 0 then iv.iv_stores <- iv.iv_stores - 1
          | _ -> ());
          emit_ports sim n outs;
          progressed := true;
          drain_mem ()
        end
      end
    end
  in
  drain_mem ();
  (* Call/spawn responses in wave order. *)
  let rec drain_resp () =
    match Hashtbl.find_opt n.nr_resp n.nr_next_resp with
    | Some res ->
      let outs =
        List.filteri
          (fun p _ -> p < Array.length n.nr_out)
          (Array.to_list (Array.mapi (fun p v -> (p, v)) res))
      in
      if ports_have_space n outs then begin
        Hashtbl.remove n.nr_resp n.nr_next_resp;
        n.nr_next_resp <- n.nr_next_resp + 1;
        emit_ports sim n outs;
        progressed := true;
        drain_resp ()
      end
    | None -> ()
  in
  drain_resp ();
  (* Sync completions, in order.  A sync of wave [w] may only
     complete once every spawn of the task has issued wave [w]'s
     spawns — otherwise it could observe a transiently-zero child
     count before the children were even created. *)
  let spawns_issued wave =
    Array.for_all
      (fun (s : node_rt) ->
        match s.nr.kind with
        | G.SpawnChild _ -> s.nr_fired > wave
        | _ -> true)
      inst.inodes
  in
  let rec drain_sync () =
    if not (Queue.is_empty n.nr_sync) then begin
      let inv, wave = Queue.peek n.nr_sync in
      if spawns_issued wave
         && inv.iv_eff_ctx.live_children = 0
         && ports_have_space n [ (0, T.VBool true) ]
      then begin
        ignore (Queue.pop n.nr_sync);
        sim.ctrs.Ctr.syncs <- sim.ctrs.Ctr.syncs + 1;
        emit_ports sim n [ (0, T.VBool true) ];
        progressed := true;
        drain_sync ()
      end
    end
  in
  drain_sync ();
  (* Whatever is still pipelined wakes the node on its due cycle. *)
  (match Queue.peek_opt n.nr_pipe with
  | Some (ready, _) when ready > sim.now -> at sim ready (Wemit (inst, n))
  | _ -> ());
  !progressed

(* ------------------------------------------------------------------ *)
(* The main loop                                                        *)

(** Pull an instance's woken nodes in graph order, clearing flags. *)
let take_fire_nodes (inst : instance) : node_rt list =
  let ns = inst.i_fire_nodes in
  inst.i_fire_nodes <- [];
  List.iter (fun n -> n.nr_qfire <- false) ns;
  List.sort cmp_node ns

let take_emit_nodes (inst : instance) : node_rt list =
  let ns = inst.i_emit_nodes in
  inst.i_emit_nodes <- [];
  List.iter (fun n -> n.nr_qemit <- false) ns;
  List.sort cmp_node ns

let step (sim : t) : unit =
  let now = sim.now in
  (* 0. always-on occupancy integrals (exact time-average and
     high-water depths, O(tasks + structures) per cycle, no
     allocation); ring samples additionally when tracing *)
  Array.iter
    (fun trt ->
      Ctr.occ_add sim.ctrs (Ctr.Ktask trt.tk.tid) (Queue.length trt.tqueue))
    sim.tasks;
  Memsys.iter_occupancy sim.ms (fun sid depth ->
      Ctr.occ_add sim.ctrs (Ctr.Kstruct sid) depth);
  (match sim.tr with
  | Some tr when now mod tr.Tr.sample_every = 0 ->
    Array.iter
      (fun trt ->
        Tr.occ_sample tr ~c:now (Tr.Ktask trt.tk.tid)
          (Queue.length trt.tqueue))
      sim.tasks;
    List.iter
      (fun (sid, depth) -> Tr.occ_sample tr ~c:now (Tr.Kstruct sid) depth)
      (Memsys.occupancy sim.ms)
  | _ -> ());
  drain_timed sim;
  (* 1. memory structures (completions notify waiting nodes) *)
  Memsys.step sim.ms ~now;
  (* 2. junction arbitration, only where sub-requests are queued *)
  Array.iter
    (fun trt ->
      match trt.t_junction with
      | [] -> ()
      | insts ->
        trt.t_junction <- [];
        let insts = List.sort cmp_inst insts in
        let w = sim.junction_width.(trt.tk.tid) in
        List.iter
          (fun inst ->
            inst.i_qjunction <- false;
            if inst.live then begin
              for _ = 1 to w do
                if not (Queue.is_empty inst.junction) then begin
                  let space, sr = Queue.pop inst.junction in
                  let rt = sim.ms.space_of space in
                  Memsys.enqueue sim.ms rt sr;
                  sim.last_activity <- now;
                  wake_complete sim inst
                end
              done;
              if not (Queue.is_empty inst.junction) then
                wake_junction sim inst
            end)
          insts)
    sim.tasks;
  (* 3. fire phase over woken nodes *)
  Array.iter
    (fun trt ->
      match trt.t_fire with
      | [] -> ()
      | insts ->
        trt.t_fire <- [];
        let insts = List.sort cmp_inst insts in
        let task_fired = ref false in
        if trt.tdynamic then begin
          (* At most [tiles] contexts issue datapath work per cycle. *)
          let slots = ref trt.tk.tiles in
          List.iter
            (fun inst ->
              inst.i_qfire <- false;
              if not inst.live then begin
                List.iter (fun n -> n.nr_qfire <- false) inst.i_fire_nodes;
                inst.i_fire_nodes <- []
              end
              else if !slots = 0 then begin
                (* No tile this cycle: stay woken for the next one. *)
                inst.i_qfire <- true;
                trt.t_fire <- inst :: trt.t_fire
              end
              else begin
                let ns = take_fire_nodes inst in
                sim.woken <- sim.woken + List.length ns;
                let fired_any = ref false in
                List.iter
                  (fun n ->
                    if fire_node sim trt inst n then fired_any := true)
                  ns;
                if !fired_any then begin
                  decr slots;
                  task_fired := true
                end
              end)
            insts
        end
        else
          List.iter
            (fun inst ->
              inst.i_qfire <- false;
              if inst.live then begin
                let ns = take_fire_nodes inst in
                sim.woken <- sim.woken + List.length ns;
                List.iter
                  (fun n ->
                    if fire_node sim trt inst n then task_fired := true)
                  ns
              end
              else begin
                List.iter (fun n -> n.nr_qfire <- false) inst.i_fire_nodes;
                inst.i_fire_nodes <- []
              end)
            insts;
        if !task_fired then trt.tbusy <- trt.tbusy + 1)
    sim.tasks;
  (* 4. emission phase over woken nodes *)
  Array.iter
    (fun trt ->
      match trt.t_emit with
      | [] -> ()
      | insts ->
        trt.t_emit <- [];
        let insts = List.sort cmp_inst insts in
        List.iter
          (fun inst ->
            inst.i_qemit <- false;
            let ns = take_emit_nodes inst in
            if inst.live then
              List.iter
                (fun n ->
                  if try_emit sim inst n then begin
                    sim.last_activity <- now;
                    (* Freed pipeline/memory slots may unblock the
                       node's next firing; drained state feeds the
                       completion check below. *)
                    wake_fire sim inst n;
                    wake_complete sim inst
                  end)
                ns)
          insts)
    sim.tasks;
  (* 5. completions, only on instances whose state moved.  A child
     completing here can enable its parent's completion in the same
     cycle when the parent sits later in the sweep order — chase those
     wakes exactly as far as the dense sweep would have. *)
  Array.iter
    (fun trt ->
      if trt.t_complete <> [] then begin
        let rec drain cursor =
          let ready, later =
            List.partition (fun i -> i.i_ord > cursor) trt.t_complete
          in
          if ready <> [] then begin
            trt.t_complete <- later;
            let ready = List.sort cmp_inst ready in
            let c = ref cursor in
            List.iter
              (fun inst ->
                inst.i_qcomplete <- false;
                c := inst.i_ord;
                if inst.live then try_complete sim trt inst)
              ready;
            drain !c
          end
        in
        drain min_int
      end)
    sim.tasks;
  (* 6. dispatch *)
  Array.iter
    (fun trt ->
      if not (Queue.is_empty trt.tqueue) then begin
        if trt.tdynamic then
          (* every queued message becomes a fresh context *)
          while not (Queue.is_empty trt.tqueue) do
            let m = Queue.pop trt.tqueue in
            let inst = new_instance sim trt.tk ~dynamic:true in
            inst.i_ord <- trt.t_next_ord;
            trt.t_next_ord <- trt.t_next_ord - 1;
            (* LIFO: newest contexts first, so recursion runs depth-first *)
            trt.tinstances <- inst :: trt.tinstances;
            inject sim trt inst m
          done
        else begin
          (* Round-robin dispatch across tiles: a pipelined instance
             would otherwise accept every invocation and starve its
             replicas. *)
          let insts = Array.of_list trt.tinstances in
          let n = Array.length insts in
          let popped = ref false in
          if n > 0 then
            for k = 0 to n - 1 do
              let inst = insts.((trt.trr + k) mod n) in
              if (not (Queue.is_empty trt.tqueue)) && can_accept inst then begin
                inject sim trt inst (Queue.pop trt.tqueue);
                popped := true;
                trt.trr <- (trt.trr + k + 1) mod n
              end
            done;
          (* Queue space freed: parked callers can try again. *)
          if !popped && trt.t_wait_child <> [] then begin
            let ws = trt.t_wait_child in
            trt.t_wait_child <- [];
            List.iter
              (fun (i, wn) ->
                wn.nr_wait_child <- false;
                wake_fire sim i wn)
              ws
          end
        end
      end)
    sim.tasks;
  (* 7. commit staged channel writes (dirty channels only) *)
  let dirty = sim.dirty_fifos in
  sim.dirty_fifos <- [];
  List.iter
    (fun f ->
      f.f_dirty <- false;
      if not (Queue.is_empty f.staged) then begin
        Queue.transfer f.staged f.fq;
        (* Fresh tokens: the consumer may be able to fire. *)
        match f.f_dst with
        | Some (di, dn) -> wake_fire sim di dn
        | None -> ()
      end)
    dirty;
  sim.node_cycles <- sim.node_cycles + sim.live_nodes;
  sim.now <- now + 1

(** Pre-load cycles for DMA into scratchpads (8 words per cycle). *)
let dma_cycles (c : G.circuit) : int =
  let scratch_words =
    List.fold_left
      (fun acc (g : Muir_ir.Program.global) ->
        match List.assoc_opt g.gspace c.space_map with
        | Some sid -> (
          match (G.structure c sid).shape with
          | G.Scratchpad _ -> acc + g.gsize
          | G.Cache _ -> acc)
        | None -> acc)
      0 c.prog.globals
  in
  (scratch_words + 7) / 8

let diagnose (sim : t) : string =
  let buf = Buffer.create 256 in
  Array.iter
    (fun trt ->
      Buffer.add_string buf
        (Fmt.str "task %s: %d queued, %d invocations, %d instances@."
           trt.tk.tname (Queue.length trt.tqueue) trt.tinvocations
           (List.length trt.tinstances));
      List.iter
        (fun inst ->
          if inst.i_count > 0 then begin
            Buffer.add_string buf
              (Fmt.str "task %s#%d: %d inflight, waves %a@." trt.tk.tname
                 inst.iid inst.i_count
                 Fmt.(Dump.list int)
                 (List.map fst (inflight_waves inst)));
            Array.iter
              (fun (n : node_rt) ->
                let in_state =
                  Array.to_list
                    (Array.map
                       (function
                         | None -> "imm"
                         | Some f -> string_of_int (Queue.length f.fq))
                       n.nr_in)
                in
                let out_state =
                  Array.to_list
                    (Array.map
                       (fun fs ->
                         String.concat "/"
                           (List.map
                              (fun (f : fifo) ->
                                Fmt.str "%d(%d)" (Queue.length f.fq) f.cap)
                              fs))
                       n.nr_out)
                in
                let resp_waves =
                  Hashtbl.fold (fun w _ acc -> w :: acc) n.nr_resp []
                  |> List.sort compare
                in
                Buffer.add_string buf
                  (Fmt.str
                     "  n%d %s fired=%d pipe=%d mem=%d resp=%a next=%d sync=%d in=[%s] out=[%s]@."
                     n.nr.nid
                     (Muir_core.Graph.kind_to_string n.nr.kind)
                     n.nr_fired (Queue.length n.nr_pipe)
                     (Queue.length n.nr_mem)
                     Fmt.(Dump.list int) resp_waves
                     n.nr_next_resp
                     (Queue.length n.nr_sync)
                     (String.concat ";" in_state)
                     (String.concat ";" out_state)))
              inst.inodes
          end)
        trt.tinstances)
    sim.tasks;
  Buffer.contents buf

(** Run the circuit's root task with [args] to completion.  Returns
    the root's return value, the final memory, statistics, and the
    always-on performance-counter bank (exact fires, per-cause stall
    cycles and occupancy integrals — maintained whether or not a
    tracer is attached).  [?tracer] additionally streams timeline
    events into a [Muir_trace.Trace.t]; tracing is strictly passive,
    so cycle counts, stats and counters are identical with it on or
    off. *)
let run ?tracer ?(args = []) ?(max_cycles = 20_000_000)
    ?(deadlock_window = 50_000) (c : G.circuit) : result =
  let t_start = Unix.gettimeofday () in
  let sim = create ?tracer c in
  let root = sim.tasks.(c.root) in
  let ctx = { live_children = 0; cx_owner = None; cx_waiters = [] } in
  Queue.add
    { m_args = Array.of_list (T.VBool true :: args); m_ctx = ctx;
      m_reply = Rroot }
    root.tqueue;
  while sim.root_result = None && sim.now < max_cycles do
    if sim.now - sim.last_activity > deadlock_window then
      raise
        (Deadlock
           (Fmt.str "no progress for %d cycles at cycle %d:@.%s"
              deadlock_window sim.now (diagnose sim)));
    step sim
  done;
  (match sim.root_result with
  | None -> raise (Cycle_limit max_cycles)
  | Some _ -> ());
  (* Close the books: fold every still-live instance's accounting into
     the whole-run counter bank. *)
  sim.ctrs.Ctr.final_cycle <- sim.now;
  (match sim.tr with
  | Some tr -> tr.Tr.final_cycle <- sim.now
  | None -> ());
  Array.iter
    (fun trt ->
      List.iter
        (fun inst ->
          let ip = inst.i_prof in
          Array.iteri
            (fun i np ->
              let n = inst.inodes.(i) in
              Ctr.fold sim.ctrs ~task:inst.it.tid ~node:n.nr.nid
                ~fires:n.nr_fired ~born:ip.born ~upto:sim.now np)
            ip.nprofs)
        trt.tinstances)
    sim.tasks;
  let res = Option.get sim.root_result in
  let value = if Array.length res > 1 then res.(1) else T.VBool true in
  let dma = dma_cycles c in
  let wall = Unix.gettimeofday () -. t_start in
  (* Derived rates must stay printable on degenerate runs: a zero-cycle
     program or a wall-clock too small to resolve would otherwise put
     nan/inf into profiles and machine-read reports. *)
  let finite f = if Float.is_finite f then f else 0.0 in
  let per_cycle total =
    if sim.now = 0 then 0.0
    else finite (float_of_int total /. float_of_int sim.now)
  in
  { value;
    memory = sim.ms.mem;
    counters = sim.ctrs;
    stats =
      { cycles = sim.now; dma_cycles = dma; total_cycles = sim.now + dma;
        fires = sim.fires;
        invocations =
          Array.to_list
            (Array.map (fun trt -> (trt.tk.tname, trt.tinvocations)) sim.tasks);
        utilization =
          Array.to_list
            (Array.map
               (fun trt ->
                 ( trt.tk.tname,
                   if sim.now = 0 then 0.0
                   else float_of_int trt.tbusy /. float_of_int sim.now ))
               sim.tasks);
        mem = Memsys.stats sim.ms;
        mem_requests = sim.ms.total_requests;
        wall_seconds = wall;
        cycles_per_sec =
          (if wall > 0.0 then finite (float_of_int sim.now /. wall) else 0.0);
        woken_per_cycle = per_cycle sim.woken;
        live_nodes_per_cycle = per_cycle sim.node_cycles } }
