(** Cycle-level simulation of μIR circuits.

    Execution model (§3.2 of the paper): the circuit is a set of
    asynchronously running task blocks.  Each task has a hardware
    queue of pending invocations and [tiles] execution units.  Within
    a task, execution is a pipelined latency-insensitive dataflow:
    every edge is a ready/valid channel (a register stage), nodes fire
    when all wired inputs hold tokens and downstream has space, and
    concurrent invocations complete in order of invocation.

    Two task-instance disciplines exist:
    - ordinary tasks run one {e instance per tile}; function tasks
      pipeline multiple invocations through an instance (wave
      pipelining), loop tasks process one invocation at a time (the
      loop ring already pipelines its iterations);
    - tasks on a call/spawn cycle (recursive Cilk tasks such as FIB
      and M-SORT) are {e dynamic}: each invocation gets its own
      context, contexts park while blocked, and at most [tiles]
      contexts may fire datapath operations in a cycle — the
      issue-queue + execution-tile structure of §3.6.

    {2 The event-driven kernel}

    [step] does not sweep every node of every instance.  Each node
    carries [queued] flags and sits on a per-instance wake worklist;
    it is attempted only when something that could enable it changed:
    a token committed into an input channel, space freed in a
    downstream channel, a pipeline/memory/reorder-buffer entry
    matured, a child task's queue drained, a spawned child joined, or
    an invocation was injected.  Nodes sleeping on latency wake from a
    ring-buffer timing wheel keyed by absolute cycle.  Completion
    checks and junction arbitration likewise run only on instances
    whose state moved, and only channels with staged writes are
    committed.

    {2 Data layout}

    Everything on the steady-state path is preallocated
    struct-of-arrays indexed by dense ids: channels are flat
    ring-buffer columns in the {!Muir_ir.Flat} token encoding, node
    pipeline/memory/reorder/sync state are fixed rings, invocations
    and task-queue entries are pooled flat rows, wake worklists are
    preallocated cursor arrays, and retired dynamic instances return
    to a per-task pool and are reborn in place.  The steady-state fire
    path allocates {e zero} words on the OCaml minor heap (asserted by
    the bench gate); wall-clock throughput is the headline metric of
    the bench suite.

    The wake discipline is {e conservative}: over-waking a node is
    always safe (a failed attempt has no side effects), under-waking
    never happens (every condition a blocked node waits on has a wake
    source).  Within a cycle the woken nodes are drained in the same
    deterministic order the dense sweep used — tasks in id order,
    instances in queue order, nodes in graph order — so the kernel is
    bit-for-bit cycle-accurate against the dense reference:
    [total_cycles], [fires] and all utilization stats are unchanged on
    every workload (enforced by the golden constants in
    [test/test_sim.ml]).

    {2 Sharded simulation}

    [run ~jobs:n] with [n > 1] partitions tasks across an OCaml-5
    domain pool ([t_lane = tid mod jobs]) and fans the fire and emit
    phases out each cycle.  Lanes only touch state owned by their
    tasks; every cross-task effect (child-queue pushes, sync-context
    mutation, parked callers) is deferred to the coordinator, which
    replays it in task-id order — so the sharded schedule commutes
    with the sequential one and the results (cycles, fires, the whole
    counter bank) are bit-identical for every job count.

    Functional results are written to the same flat memory the golden
    interpreter uses, so every simulation is checkable end to end. *)

module G = Muir_core.Graph
module Cost = Muir_core.Cost
module T = Muir_ir.Types
module F = Muir_ir.Flat
module Tr = Muir_trace.Trace
module Ctr = Muir_trace.Counters

type token = T.value

let truthy = Exec.truthy
let to_int = Exec.to_int

(* ------------------------------------------------------------------ *)
(* Runtime structures                                                   *)

(* Channels are flat ring buffers of token columns.  Three monotonic
   cursors: [fhead] (next pop), [fmid] (end of committed tokens),
   [ftail] (end of staged writes).  Writes land between [fmid] and
   [ftail] and become visible at the end-of-cycle commit
   ([fmid <- ftail]).  The back-pointers drive the wake lists: a
   commit wakes the consumer ([f_dst]) for fire, a pop wakes the
   producer ([f_src]) for emission. *)
type fifo = {
  fcap : int;                          (** architectural capacity *)
  fmask : int;                         (** physical ring size - 1 *)
  ftags : int array;
  fnums : int array;
  fflts : float array;
  fobjs : token array;
  mutable fhead : int;
  mutable fmid : int;
  mutable ftail : int;
  mutable f_dirty : bool;              (** queued on the commit list *)
  mutable f_src : (instance * node_rt) option;
  mutable f_dst : (instance * node_rt) option;
}

and sync_ctx = {
  mutable live_children : int;
  mutable cx_owner : instance option;
      (** instance whose invocation owns this context: re-checked for
          completion when a child joins *)
  mutable cx_w_inst : instance array;  (** parked SyncWait nodes *)
  mutable cx_w_node : node_rt array;
  mutable cx_nw : int;
}

(* Reply routing lives in flat fields: [iv_rkind] 0 = root, 1 = call,
   2 = spawn; the remaining fields are dummies for the root reply. *)
and invocation = {
  mutable iv_gen : int;         (** bumped on pool reuse: stale ring
                                    entries referencing a completed
                                    invocation are detectable *)
  mutable iv_wave : int;
  mutable iv_rkind : int;
  mutable iv_rinst : instance;
  mutable iv_rnode : node_rt;
  mutable iv_rwave : int;
  mutable iv_rctx : sync_ctx;   (** decremented when a spawn completes *)
  mutable iv_eff_ctx : sync_ctx; (** where this invocation's spawns join *)
  iv_own : sync_ctx option;     (** fresh context (function tasks);
                                    pooled with the invocation *)
  iv_lo_tags : int array;       (** live-outs; [tabsent] = not yet set *)
  iv_lo_nums : int array;
  iv_lo_flts : float array;
  iv_lo_objs : token array;
  mutable iv_stores : int;      (** outstanding stores attributed here *)
}

and node_rt = {
  nr : G.node;
  nr_cost : Cost.t;
  mutable nr_idx : int;           (** position in [inodes] (drain order) *)
  nr_in : fifo option array;      (** [None] = immediate slot *)
  im_tags : int array;            (** immediates, flat columns *)
  im_nums : int array;
  im_flts : float array;
  im_objs : token array;
  nr_out : fifo array array;      (** per out port: fan-out channels *)
  nr_words : int;                 (** words per access (memory nodes) *)
  nr_space : int;                 (** address space (memory nodes) *)
  mutable nr_fired : int;         (** firings so far (the wave counter) *)
  mutable nr_busy_until : int;
  (* pipeline ring: 4 slots of (ready cycle, out port, token) *)
  np_ready : int array;
  np_port : int array;
  np_tags : int array;
  np_nums : int array;
  np_flts : float array;
  np_objs : token array;
  mutable np_head : int;
  mutable np_tail : int;
  (* outstanding-request window: ring of [max_outstanding] entries *)
  nm_live : bool array;           (** entry carries an access *)
  nm_store : bool array;
  nm_hasiv : bool array;          (** store attribution attached *)
  nm_acc : Memsys.access array;
  nm_inv : invocation array;
  mutable nm_head : int;
  mutable nm_tail : int;
  mutable na_pool : Memsys.access array;  (** reusable accesses *)
  mutable na_n : int;
  (* call/spawn reorder buffer: wave-indexed flat rows, width [rs_w] *)
  rs_w : int;
  mutable rs_wave : int array;    (** -1 = empty *)
  mutable rs_tags : int array;
  mutable rs_nums : int array;
  mutable rs_flts : float array;
  mutable rs_objs : token array;
  mutable nr_next_resp : int;
  (* pending sync waits: FIFO ring of (invocation, wave) *)
  mutable ns_inv : invocation array;
  mutable ns_wave : int array;
  mutable ns_gen : int array;   (** [iv_gen] at push time *)
  mutable ns_head : int;
  mutable ns_tail : int;
  mutable nr_qfire : bool;        (** on the instance's fire worklist *)
  mutable nr_qemit : bool;        (** on the instance's emit worklist *)
  mutable nr_wait_child : bool;   (** parked on a full child task queue *)
}

and instance = {
  it : G.task;
  iid : int;
  mutable i_ord : int;            (** drain order within the task *)
  mutable i_slot : int;           (** position in the task's [tinst] *)
  inodes : node_rt array;
  inode_by_id : node_rt option array;  (** node id -> runtime (ids are
                                           sparse after fusion) *)
  ififos : fifo array;            (** indexed by edge id *)
  (* inflight window: wave-indexed table, pow2, -1 = empty slot *)
  mutable iw_wave : int array;
  mutable iw_iv : invocation array;
  mutable i_lo : int;             (** lowest possibly-inflight wave *)
  mutable i_count : int;          (** inflight invocations *)
  mutable next_wave : int;
  mutable live : bool;            (** dynamic instances are retired *)
  mutable i_retired : int;        (** cycle of retirement (pool guard) *)
  idynamic : bool;
  ipipe_loop : bool;
      (** leaf loop (no stores/calls/spawns/syncs): safe to pipeline
          invocations through the ring, like the paper's in-order
          concurrent invocations *)
  iprime : int array;             (** resting token count per edge *)
  (* initial tokens, one row per token, for allocation-free rebirth *)
  i_init_eid : int array;
  i_init_tags : int array;
  i_init_nums : int array;
  i_init_flts : float array;
  i_init_objs : token array;
  (* junction queue: ring of (space, sub-request) *)
  mutable ij_space : int array;
  mutable ij_sr : Memsys.subreq array;
  mutable ij_head : int;
  mutable ij_tail : int;
  isyncs : node_rt array;         (** SyncWait nodes, for join wakes *)
  (* wake worklists: double-buffered, [nnodes]-sized (dedup flags
     bound the population) *)
  mutable if_v : node_rt array;
  mutable if_v2 : node_rt array;
  mutable if_n : int;
  mutable ie_v : node_rt array;
  mutable ie_v2 : node_rt array;
  mutable ie_n : int;
  mutable i_qfire : bool;         (** on the task's fire worklist *)
  mutable i_qemit : bool;
  mutable i_qcomplete : bool;
  mutable i_qjunction : bool;
  mutable ivp : invocation array; (** invocation pool *)
  mutable ivp_n : int;
  i_nres : int;
  i_sc : Exec.sc;                 (** flat ALU scratch *)
  i_prof : Tr.Prof.iprof;         (** always-on stall accounting *)
  i_nctr : Ctr.node_ctr array;
  (** whole-run counter rows, parallel to [inodes] — resolved once at
      construction so retirement folds without hashing a key *)
}

type task_rt = {
  tk : G.task;
  t_arity : int;
  t_nres : int;
  tdynamic : bool;
  (* pending invocations: flat ring, row-major args + reply routing *)
  mutable tq_tags : int array;
  mutable tq_nums : int array;
  mutable tq_flts : float array;
  mutable tq_objs : token array;
  mutable tq_ctx : sync_ctx array;
  mutable tq_rkind : int array;
  mutable tq_rinst : instance array;
  mutable tq_rnode : node_rt array;
  mutable tq_rwave : int array;
  mutable tq_rctx : sync_ctx array;
  mutable tq_head : int;
  mutable tq_tail : int;
  mutable tinst : instance array;
  mutable tinst_n : int;
  mutable tinvocations : int;     (** total, for stats *)
  mutable tbusy : int;            (** cycles with at least one firing *)
  mutable t_fired_now : bool;
  mutable trr : int;              (** round-robin dispatch cursor *)
  mutable t_next_ord : int;       (** next [i_ord] for dynamic instances
                                      (decreasing: newest first) *)
  (* instance worklists (dedup via i_q* flags) *)
  mutable tf_v : instance array;  (** woken for fire *)
  mutable tf_v2 : instance array;
  mutable tf_n : int;
  mutable te_v : instance array;  (** woken for emit *)
  mutable te_v2 : instance array;
  mutable te_n : int;
  mutable tc_v : instance array;  (** re-check invocation completion *)
  mutable tc_n : int;
  mutable tc2 : instance array;   (** completion-drain scratch *)
  mutable tj_v : instance array;  (** queued junction sub-requests *)
  mutable tj_v2 : instance array;
  mutable tj_n : int;
  mutable tw_inst : instance array;  (** callers parked on full queue *)
  mutable tw_node : node_rt array;
  mutable tw_n : int;
  (* call/spawn/sync fires deferred to the coordinator (sharded) *)
  mutable td_inst : instance array;
  mutable td_node : node_rt array;
  mutable td_n : int;
  (* retired dynamic instances, FIFO (head reused only on a later
     cycle than its retirement, so staged state flushes first) *)
  mutable tp_v : instance array;
  mutable tp_head : int;
  mutable tp_tail : int;
}

type stats = {
  cycles : int;
  dma_cycles : int;
  total_cycles : int;
  fires : int;
  invocations : (string * int) list;
  utilization : (string * float) list;
      (** per task: fraction of cycles with at least one node firing *)
  mem : Memsys.struct_stats list;
  mem_requests : int;
  wall_seconds : float;           (** kernel wall-clock time of [run] *)
  cycles_per_sec : float;         (** simulated cycles per wall second *)
  woken_per_cycle : float;        (** fire-phase node attempts per cycle *)
  live_nodes_per_cycle : float;   (** instantiated nodes per cycle (the
                                      dense sweep would attempt these) *)
  gc_minor_words_per_cycle : float;
      (** steady-state minor-heap allocation rate of the kernel *)
  gc_major_collections : int;     (** major GCs during [run] *)
}

type result = {
  value : token;                  (** root task's return value *)
  memory : Muir_ir.Memory.t;
  stats : stats;
  counters : Ctr.t;               (** always-on performance counters *)
}

exception Deadlock of string
exception Cycle_limit of int

(* ------------------------------------------------------------------ *)
(* Timing wheel and per-lane state                                     *)

(* 512-slot wheel of (instance, node, absolute cycle, kind); kind 0 =
   fire, 1 = emit.  Entries keep their absolute cycle, so a slot can
   safely hold wakes a full wheel turn ahead. *)
let wheel_size = 512

type wslot = {
  mutable wi : instance array;
  mutable wn : node_rt array;
  mutable wc : int array;
  mutable wk : int array;
  mutable w_n : int;
}

(* Each simulation lane owns a wheel, a dirty-channel list and local
   counters; lane 0 is the coordinator (and the only lane in
   sequential mode).  Lane-local state is merged deterministically by
   the coordinator each cycle. *)
type lane = {
  wheel : wslot array;
  mutable ld_v : fifo array;      (** channels with staged writes *)
  mutable ld_n : int;
  mutable l_fires : int;
  mutable l_woken : int;
  mutable l_syncs : int;
  mutable l_active : bool;
}

type t = {
  circ : G.circuit;
  ms : Memsys.t;
  tasks : task_rt array;          (** indexed by task id *)
  mutable now : int;
  mutable fires : int;
  mutable last_activity : int;
  mutable next_iid : int;
  mutable root_done : bool;
  mutable root_val : token;
  junction_width : int array;     (** per task *)
  max_outstanding : int;
  lanes : lane array;             (** [njobs] entries; lane 0 first *)
  njobs : int;
  mutable dpool : Dpool.t option;
  mutable woken : int;            (** total fire-phase attempts, stats *)
  mutable live_nodes : int;       (** nodes across live instances *)
  mutable node_cycles : int;      (** Σ live_nodes per cycle, stats *)
  tr : Tr.t option;               (** event sink; [None] = tracing off *)
  ctrs : Ctr.t;                   (** always-on counter bank *)
  otasks : Ctr.occ_ctr array;     (** queue-occupancy integrals *)
  ostructs : Ctr.occ_ctr array;   (** per [ms.structs] row *)
}

(* ------------------------------------------------------------------ *)
(* Small flat-vector helpers                                           *)

(* Amortized push into a growable array; the caller stores the
   returned array and bumps its own count. *)
let vpush : 'a. 'a array -> int -> 'a -> 'a array =
 fun arr n x ->
  let cap = Array.length arr in
  if n < cap then begin
    arr.(n) <- x;
    arr
  end
  else begin
    let na = Array.make (max 8 (cap * 2)) x in
    Array.blit arr 0 na 0 n;
    na.(n) <- x;
    na
  end

(* In-place insertion sorts over the worklist prefixes (keys are
   unique and lists are short, so this beats allocating a sort). *)
let sort_nodes (a : node_rt array) (n : int) : unit =
  for i = 1 to n - 1 do
    let x = a.(i) in
    let k = x.nr_idx in
    let j = ref (i - 1) in
    while !j >= 0 && a.(!j).nr_idx > k do
      a.(!j + 1) <- a.(!j);
      decr j
    done;
    a.(!j + 1) <- x
  done

let sort_insts (a : instance array) (n : int) : unit =
  for i = 1 to n - 1 do
    let x = a.(i) in
    let k = x.i_ord in
    let j = ref (i - 1) in
    while !j >= 0 && a.(!j).i_ord > k do
      a.(!j + 1) <- a.(!j);
      decr j
    done;
    a.(!j + 1) <- x
  done

(* ------------------------------------------------------------------ *)
(* Dummy rows (array initializers; never read through)                 *)

let dummy_task : G.task =
  { tid = -1; tname = "<none>"; tkind = G.Tfunc; nodes = []; edges = [];
    next_nid = 0; next_eid = 0; arg_tys = []; res_tys = []; tiles = 1;
    queue_depth = 1; children = [] }

let dummy_gnode : G.node =
  { nid = -1; kind = G.SyncWait; ins = [||]; nty = T.TFloat; label = "" }

let dummy_ctx : sync_ctx =
  { live_children = 0; cx_owner = None; cx_w_inst = [||]; cx_w_node = [||];
    cx_nw = 0 }

let dummy_node : node_rt =
  { nr = dummy_gnode; nr_cost = Cost.node_cost G.SyncWait; nr_idx = 0;
    nr_in = [||]; im_tags = [||]; im_nums = [||]; im_flts = [||];
    im_objs = [||]; nr_out = [||]; nr_words = 1; nr_space = 0; nr_fired = 0;
    nr_busy_until = 0; np_ready = [||]; np_port = [||]; np_tags = [||];
    np_nums = [||]; np_flts = [||]; np_objs = [||]; np_head = 0;
    np_tail = 0; nm_live = [||]; nm_store = [||]; nm_hasiv = [||];
    nm_acc = [||]; nm_inv = [||]; nm_head = 0; nm_tail = 0; na_pool = [||];
    na_n = 0; rs_w = 0; rs_wave = [||]; rs_tags = [||]; rs_nums = [||];
    rs_flts = [||]; rs_objs = [||]; nr_next_resp = 0; ns_inv = [||];
    ns_wave = [||]; ns_gen = [||]; ns_head = 0; ns_tail = 0;
    nr_qfire = false; nr_qemit = false; nr_wait_child = false }

let dummy_inst : instance =
  { it = dummy_task; iid = -1; i_ord = 0; i_slot = 0; inodes = [||];
    inode_by_id = [||]; ififos = [||]; iw_wave = [||]; iw_iv = [||];
    i_lo = 0; i_count = 0; next_wave = 0; live = false; i_retired = -1;
    idynamic = false; ipipe_loop = false; iprime = [||]; i_init_eid = [||];
    i_init_tags = [||]; i_init_nums = [||]; i_init_flts = [||];
    i_init_objs = [||]; ij_space = [||];
    ij_sr = [||]; ij_head = 0; ij_tail = 0; isyncs = [||]; if_v = [||];
    if_v2 = [||]; if_n = 0; ie_v = [||]; ie_v2 = [||]; ie_n = 0;
    i_qfire = false; i_qemit = false; i_qcomplete = false;
    i_qjunction = false; ivp = [||]; ivp_n = 0; i_nres = 0;
    i_sc = Exec.make_sc ~slots:1;
    i_prof = Tr.Prof.make ~born:0 ~nnodes:0; i_nctr = [||] }

let dummy_inv : invocation =
  { iv_gen = 0; iv_wave = -1; iv_rkind = 0; iv_rinst = dummy_inst;
    iv_rnode = dummy_node; iv_rwave = 0; iv_rctx = dummy_ctx;
    iv_eff_ctx = dummy_ctx; iv_own = None; iv_lo_tags = [||];
    iv_lo_nums = [||]; iv_lo_flts = [||]; iv_lo_objs = [||];
    iv_stores = 0 }

let dummy_access : Memsys.access = Memsys.make_access ~words:1 ~notify:ignore

(* ------------------------------------------------------------------ *)
(* Wake plumbing                                                        *)

let wake_fire (sim : t) (inst : instance) (n : node_rt) : unit =
  if inst.live && not n.nr_qfire then begin
    n.nr_qfire <- true;
    inst.if_v.(inst.if_n) <- n;
    inst.if_n <- inst.if_n + 1;
    if not inst.i_qfire then begin
      inst.i_qfire <- true;
      let trt = sim.tasks.(inst.it.tid) in
      trt.tf_v <- vpush trt.tf_v trt.tf_n inst;
      trt.tf_n <- trt.tf_n + 1
    end
  end

let wake_emit (sim : t) (inst : instance) (n : node_rt) : unit =
  if inst.live && not n.nr_qemit then begin
    n.nr_qemit <- true;
    inst.ie_v.(inst.ie_n) <- n;
    inst.ie_n <- inst.ie_n + 1;
    if not inst.i_qemit then begin
      inst.i_qemit <- true;
      let trt = sim.tasks.(inst.it.tid) in
      trt.te_v <- vpush trt.te_v trt.te_n inst;
      trt.te_n <- trt.te_n + 1
    end
  end

let wake_complete (sim : t) (inst : instance) : unit =
  if inst.live && not inst.i_qcomplete then begin
    inst.i_qcomplete <- true;
    let trt = sim.tasks.(inst.it.tid) in
    trt.tc_v <- vpush trt.tc_v trt.tc_n inst;
    trt.tc_n <- trt.tc_n + 1
  end

let wake_junction (sim : t) (inst : instance) : unit =
  if inst.live && not inst.i_qjunction then begin
    inst.i_qjunction <- true;
    let trt = sim.tasks.(inst.it.tid) in
    trt.tj_v <- vpush trt.tj_v trt.tj_n inst;
    trt.tj_n <- trt.tj_n + 1
  end

(** Schedule a wake on [ln]'s wheel at absolute cycle [c] (clamped to
    the future); [kind] 0 = fire, 1 = emit. *)
let at (sim : t) (ln : lane) (c : int) (inst : instance) (n : node_rt)
    (kind : int) : unit =
  let c = max c (sim.now + 1) in
  let s = ln.wheel.(c land (wheel_size - 1)) in
  let m = s.w_n in
  s.wi <- vpush s.wi m inst;
  s.wn <- vpush s.wn m n;
  s.wc <- vpush s.wc m c;
  s.wk <- vpush s.wk m kind;
  s.w_n <- m + 1

(* Drain this cycle's wheel slot on every lane, keeping entries whose
   absolute cycle lies a full wheel turn ahead. *)
let rec drain_slot (sim : t) (s : wslot) (i : int) (n : int) (kept : int)
    : int =
  if i >= n then kept
  else if s.wc.(i) = sim.now then begin
    if s.wk.(i) = 0 then wake_fire sim s.wi.(i) s.wn.(i)
    else wake_emit sim s.wi.(i) s.wn.(i);
    drain_slot sim s (i + 1) n kept
  end
  else begin
    s.wi.(kept) <- s.wi.(i);
    s.wn.(kept) <- s.wn.(i);
    s.wc.(kept) <- s.wc.(i);
    s.wk.(kept) <- s.wk.(i);
    drain_slot sim s (i + 1) n (kept + 1)
  end

let drain_timed (sim : t) : unit =
  let idx = sim.now land (wheel_size - 1) in
  for l = 0 to sim.njobs - 1 do
    let s = sim.lanes.(l).wheel.(idx) in
    if s.w_n > 0 then s.w_n <- drain_slot sim s 0 s.w_n 0
  done

(** A spawned child joined or a context count moved: re-check the
    owner's completion and retry every parked sync. *)
let ctx_dec (sim : t) (c : sync_ctx) : unit =
  c.live_children <- c.live_children - 1;
  (match c.cx_owner with Some i -> wake_complete sim i | None -> ());
  for i = 0 to c.cx_nw - 1 do
    wake_emit sim c.cx_w_inst.(i) c.cx_w_node.(i)
  done

(* ------------------------------------------------------------------ *)
(* Channel operations                                                   *)

(* Statically allocated 0.0 for constant-token pushes: passing a float
   literal through the array-indexed push API without a fresh box. *)
let f0 = [| 0.0 |]

let fifo_space (f : fifo) = f.ftail - f.fhead < f.fcap

let fifo_push (ln : lane) (f : fifo) (tag : int) (num : int)
    (flts : float array) (fi : int)
    (obj : token) : unit =
  let i = f.ftail land f.fmask in
  f.ftags.(i) <- tag;
  f.fnums.(i) <- num;
  f.fflts.(i) <- flts.(fi);
  f.fobjs.(i) <- obj;
  f.ftail <- f.ftail + 1;
  if not f.f_dirty then begin
    f.f_dirty <- true;
    ln.ld_v <- vpush ln.ld_v ln.ld_n f;
    ln.ld_n <- ln.ld_n + 1
  end

(** Stage every input of [n] into rows [0 ..] of [sc]; false if some
    wired input is empty (rows may be partially staged then).
    Tail-recursive with the verdict threaded as an argument: the hot
    path must not allocate a [ref]. *)
let rec stage_inputs_from (n : node_rt) (sc : Exec.sc) (i : int)
    (ok : bool) : bool =
  if i >= Array.length n.nr_in then ok
  else
    match n.nr_in.(i) with
    | None ->
      sc.Exec.stags.(i) <- n.im_tags.(i);
      sc.Exec.snums.(i) <- n.im_nums.(i);
      sc.Exec.sflts.(i) <- n.im_flts.(i);
      sc.Exec.sobjs.(i) <- n.im_objs.(i);
      stage_inputs_from n sc (i + 1) ok
    | Some f ->
      if f.fmid - f.fhead = 0 then stage_inputs_from n sc (i + 1) false
      else begin
        let j = f.fhead land f.fmask in
        sc.Exec.stags.(i) <- f.ftags.(j);
        sc.Exec.snums.(i) <- f.fnums.(j);
        sc.Exec.sflts.(i) <- f.fflts.(j);
        sc.Exec.sobjs.(i) <- f.fobjs.(j);
        stage_inputs_from n sc (i + 1) ok
      end

let stage_inputs (n : node_rt) (sc : Exec.sc) : bool =
  stage_inputs_from n sc 0 true

(** Stage input [i] only; false if empty. *)
let stage_one (n : node_rt) (sc : Exec.sc) (i : int) : bool =
  match n.nr_in.(i) with
  | None ->
    sc.Exec.stags.(i) <- n.im_tags.(i);
    sc.Exec.snums.(i) <- n.im_nums.(i);
    sc.Exec.sflts.(i) <- n.im_flts.(i);
    sc.Exec.sobjs.(i) <- n.im_objs.(i);
    true
  | Some f ->
    if f.fmid - f.fhead = 0 then false
    else begin
      let j = f.fhead land f.fmask in
      sc.Exec.stags.(i) <- f.ftags.(j);
      sc.Exec.snums.(i) <- f.fnums.(j);
      sc.Exec.sflts.(i) <- f.fflts.(j);
      sc.Exec.sobjs.(i) <- f.fobjs.(j);
      true
    end

let rec all_inputs_ready_from (n : node_rt) (i : int) : bool =
  i >= Array.length n.nr_in
  || (match n.nr_in.(i) with
     | None -> all_inputs_ready_from n (i + 1)
     | Some f -> f.fmid - f.fhead > 0 && all_inputs_ready_from n (i + 1))

let all_inputs_ready (n : node_rt) : bool = all_inputs_ready_from n 0

let input_ready (n : node_rt) (i : int) : bool =
  match n.nr_in.(i) with None -> true | Some f -> f.fmid - f.fhead > 0

let pop_in (sim : t) (n : node_rt) (i : int) : unit =
  match n.nr_in.(i) with
  | None -> ()
  | Some f ->
    f.fhead <- f.fhead + 1;
    (* Space freed: the producer's blocked emission may proceed. *)
    (match f.f_src with
    | Some (si, sn) -> wake_emit sim si sn
    | None -> ())

let pop_all (sim : t) (n : node_rt) : unit =
  for i = 0 to Array.length n.nr_in - 1 do
    pop_in sim n i
  done

(* ------------------------------------------------------------------ *)
(* Construction                                                         *)

(* Tasks on a call/spawn cycle need dynamic instances. *)
let dynamic_tasks (c : G.circuit) : bool array =
  let n = List.length c.tasks in
  let reach = Array.make_matrix n n false in
  List.iter
    (fun (t : G.task) ->
      List.iter (fun ch -> reach.(t.tid).(ch) <- true) t.children)
    c.tasks;
  for k = 0 to n - 1 do
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        if reach.(i).(k) && reach.(k).(j) then reach.(i).(j) <- true
      done
    done
  done;
  (* A task is dynamic if it lies on a cycle, or is reachable from one
     (its parents may hold unbounded concurrent invocations). *)
  let on_cycle = Array.init n (fun i -> reach.(i).(i)) in
  Array.init n (fun i ->
      on_cycle.(i)
      || List.exists
           (fun j -> on_cycle.(j) && reach.(j).(i))
           (List.init n Fun.id))

let imm_token = function
  | G.Simm v -> v
  | G.Swire -> T.VPoison

let rec pow2_at_least (n : int) (p : int) = if p >= n then p else
  pow2_at_least n (p * 2)

let new_fifo (cap : int) (ninit : int) : fifo =
  let phys = pow2_at_least (max cap (max ninit 1)) 1 in
  { fcap = cap; fmask = phys - 1; ftags = Array.make phys F.tabsent;
    fnums = Array.make phys 0; fflts = Array.make phys 0.0;
    fobjs = Array.make phys F.no_obj; fhead = 0; fmid = 0; ftail = 0;
    f_dirty = false; f_src = None; f_dst = None }

let shape_of_kind = function
  | G.Tload { shape; _ } | G.Tstore { shape; _ } -> Some shape
  | _ -> None

let new_instance (sim : t) (task : G.task) ~(dynamic : bool) : instance =
  let nedges = task.next_eid in
  let fifos = Array.init nedges (fun _ -> new_fifo 1 0) in
  List.iter
    (fun (e : G.edge) ->
      let f = new_fifo e.capacity (List.length e.initial) in
      List.iter
        (fun v ->
          let i = f.ftail land f.fmask in
          f.ftags.(i) <- F.tag_of v;
          f.fnums.(i) <- F.num_of v;
          f.fflts.(i) <- F.flt_of v;
          f.fobjs.(i) <- F.obj_of v;
          f.ftail <- f.ftail + 1;
          f.fmid <- f.ftail)
        e.initial;
      fifos.(e.eid) <- f)
    task.edges;
  let max_nid = task.next_nid in
  let in_map = Hashtbl.create 64 and out_map = Hashtbl.create 64 in
  List.iter
    (fun (e : G.edge) ->
      Hashtbl.replace in_map e.dst e.eid;
      Hashtbl.replace out_map e.src
        (e.eid
        :: (match Hashtbl.find_opt out_map e.src with
           | Some l -> l
           | None -> [])))
    task.edges;
  let mo = sim.max_outstanding in
  let nodes =
    Array.of_list
      (List.map
         (fun (n : G.node) ->
           let arity = Array.length n.ins in
           let nr_in =
             Array.init arity (fun i ->
                 match n.ins.(i) with
                 | G.Simm _ -> None
                 | G.Swire -> (
                   match Hashtbl.find_opt in_map (n.nid, i) with
                   | Some eid -> Some fifos.(eid)
                   | None -> None (* validated: shouldn't happen *)))
           in
           let imms = Array.map imm_token n.ins in
           let outs = G.out_arity n.kind ~call_res:16 in
           let nr_out =
             Array.init (max outs 1) (fun p ->
                 match Hashtbl.find_opt out_map (n.nid, p) with
                 | Some eids ->
                   Array.of_list (List.map (fun e -> fifos.(e)) eids)
                 | None -> [||])
           in
           let is_mem = G.is_memory_node n in
           let nr_words =
             match shape_of_kind n.kind with
             | Some s -> T.shape_words s
             | None -> 1
           in
           let nr_space =
             match n.kind with
             | G.Load { space } | G.Store { space }
             | G.Tload { space; _ } | G.Tstore { space; _ } -> space
             | _ -> 0
           in
           let rs_w =
             match n.kind with
             | G.CallChild tid ->
               List.length sim.tasks.(tid).tk.res_tys
             | G.SpawnChild _ -> 1
             | _ -> 0
           in
           { nr = n; nr_cost = Cost.node_cost n.kind; nr_idx = 0; nr_in;
             im_tags = Array.map F.tag_of imms;
             im_nums = Array.map F.num_of imms;
             im_flts = Array.map F.flt_of imms;
             im_objs = Array.map F.obj_of imms; nr_out; nr_words; nr_space;
             nr_fired = 0; nr_busy_until = 0; np_ready = Array.make 4 0;
             np_port = Array.make 4 0; np_tags = Array.make 4 F.tabsent;
             np_nums = Array.make 4 0; np_flts = Array.make 4 0.0;
             np_objs = Array.make 4 F.no_obj; np_head = 0; np_tail = 0;
             nm_live = (if is_mem then Array.make mo false else [||]);
             nm_store = (if is_mem then Array.make mo false else [||]);
             nm_hasiv = (if is_mem then Array.make mo false else [||]);
             nm_acc = (if is_mem then Array.make mo dummy_access else [||]);
             nm_inv = (if is_mem then Array.make mo dummy_inv else [||]);
             nm_head = 0; nm_tail = 0; na_pool = [||]; na_n = 0; rs_w;
             rs_wave = [||]; rs_tags = [||]; rs_nums = [||]; rs_flts = [||];
             rs_objs = [||]; nr_next_resp = 0; ns_inv = [||]; ns_wave = [||];
             ns_gen = [||];
             ns_head = 0; ns_tail = 0; nr_qfire = false; nr_qemit = false;
             nr_wait_child = false })
         task.nodes)
  in
  Array.iteri (fun i n -> n.nr_idx <- i) nodes;
  let nnodes = Array.length nodes in
  let iid = sim.next_iid in
  sim.next_iid <- iid + 1;
  let iprime = Array.make nedges 0 in
  List.iter
    (fun (e : G.edge) -> iprime.(e.eid) <- List.length e.initial)
    task.edges;
  let ninit =
    List.fold_left
      (fun acc (e : G.edge) -> acc + List.length e.initial)
      0 task.edges
  in
  let i_init_eid = Array.make ninit 0 in
  let i_init_tags = Array.make ninit F.tabsent in
  let i_init_nums = Array.make ninit 0 in
  let i_init_flts = Array.make ninit 0.0 in
  let i_init_objs = Array.make ninit F.no_obj in
  let k = ref 0 in
  List.iter
    (fun (e : G.edge) ->
      List.iter
        (fun v ->
          i_init_eid.(!k) <- e.eid;
          i_init_tags.(!k) <- F.tag_of v;
          i_init_nums.(!k) <- F.num_of v;
          i_init_flts.(!k) <- F.flt_of v;
          i_init_objs.(!k) <- F.obj_of v;
          incr k)
        e.initial)
    task.edges;
  let ipipe_loop =
    (match task.tkind with G.Tloop _ -> true | G.Tfunc -> false)
    && List.for_all
         (fun (n : G.node) ->
           match n.kind with
           | G.Store _ | G.Tstore _ | G.CallChild _ | G.SpawnChild _
           | G.SyncWait -> false
           | _ -> true)
         task.nodes
  in
  let inode_by_id = Array.make (max max_nid 1) None in
  Array.iter (fun nr -> inode_by_id.(nr.nr.G.nid) <- Some nr) nodes;
  let isyncs =
    Array.of_list
      (List.filter
         (fun (n : node_rt) ->
           match n.nr.kind with G.SyncWait -> true | _ -> false)
         (Array.to_list nodes))
  in
  let max_arity =
    Array.fold_left
      (fun acc (n : node_rt) -> max acc (Array.length n.nr_in))
      1 nodes
  in
  let inst =
    { it = task; iid; i_ord = 0; i_slot = 0; inodes = nodes; inode_by_id;
      ififos = fifos; iw_wave = [||]; iw_iv = [||]; i_lo = 0; i_count = 0;
      next_wave = 0; live = true; i_retired = -1; idynamic = dynamic;
      ipipe_loop; iprime; i_init_eid; i_init_tags; i_init_nums;
      i_init_flts; i_init_objs; ij_space = [||]; ij_sr = [||]; ij_head = 0;
      ij_tail = 0; isyncs;
      if_v = Array.make nnodes dummy_node;
      if_v2 = Array.make nnodes dummy_node; if_n = 0;
      ie_v = Array.make nnodes dummy_node;
      ie_v2 = Array.make nnodes dummy_node; ie_n = 0; i_qfire = false;
      i_qemit = false; i_qcomplete = false; i_qjunction = false;
      ivp = [||]; ivp_n = 0; i_nres = List.length task.res_tys;
      i_sc = Exec.make_sc ~slots:((max_arity * 2) + 4);
      i_prof = Tr.Prof.make ~born:sim.now ~nnodes;
      i_nctr =
        Array.map
          (fun (n : node_rt) ->
            Ctr.node_ctr sim.ctrs ~task:task.tid ~node:n.nr.G.nid)
          nodes }
  in
  (* Back-pointers so channel events can wake producer/consumer. *)
  List.iter
    (fun (e : G.edge) ->
      let f = fifos.(e.eid) in
      (match inode_by_id.(fst e.dst) with
      | Some n -> f.f_dst <- Some (inst, n)
      | None -> ());
      match inode_by_id.(fst e.src) with
      | Some n -> f.f_src <- Some (inst, n)
      | None -> ())
    task.edges;
  sim.live_nodes <- sim.live_nodes + nnodes;
  (* First cycle behaves like a dense sweep over the fresh instance:
     initial loop-control tokens can enable nodes with no other wake
     source. *)
  Array.iter (fun n -> wake_fire sim inst n) nodes;
  inst

(* Rebirth a pooled dynamic instance in place: channels back to their
   primed state, node state cleared, profile reset — no allocation on
   this path beyond worklist growth. *)
let reset_instance (sim : t) (inst : instance) : unit =
  for e = 0 to Array.length inst.ififos - 1 do
    let f = inst.ififos.(e) in
    f.fhead <- 0;
    f.fmid <- 0;
    f.ftail <- 0
  done;
  for k = 0 to Array.length inst.i_init_eid - 1 do
    let f = inst.ififos.(inst.i_init_eid.(k)) in
    let i = f.ftail land f.fmask in
    f.ftags.(i) <- inst.i_init_tags.(k);
    f.fnums.(i) <- inst.i_init_nums.(k);
    f.fflts.(i) <- inst.i_init_flts.(k);
    f.fobjs.(i) <- inst.i_init_objs.(k);
    f.ftail <- f.ftail + 1;
    f.fmid <- f.ftail
  done;
  for i = 0 to Array.length inst.inodes - 1 do
    let n = inst.inodes.(i) in
    n.nr_fired <- 0;
    n.nr_busy_until <- 0;
    n.np_head <- 0;
    n.np_tail <- 0;
    n.nm_head <- 0;
    n.nm_tail <- 0;
    if Array.length n.rs_wave > 0 then
      Array.fill n.rs_wave 0 (Array.length n.rs_wave) (-1);
    n.nr_next_resp <- 0;
    n.ns_head <- 0;
    n.ns_tail <- 0;
    n.nr_qfire <- false;
    n.nr_qemit <- false;
    n.nr_wait_child <- false
  done;
  if Array.length inst.iw_wave > 0 then
    Array.fill inst.iw_wave 0 (Array.length inst.iw_wave) (-1);
  inst.i_lo <- 0;
  inst.i_count <- 0;
  inst.next_wave <- 0;
  inst.ij_head <- 0;
  inst.ij_tail <- 0;
  inst.if_n <- 0;
  inst.ie_n <- 0;
  inst.i_qfire <- false;
  inst.i_qemit <- false;
  inst.i_qcomplete <- false;
  inst.i_qjunction <- false;
  Tr.Prof.reset inst.i_prof ~born:sim.now;
  inst.live <- true;
  sim.live_nodes <- sim.live_nodes + Array.length inst.inodes;
  for i = 0 to Array.length inst.inodes - 1 do
    wake_fire sim inst inst.inodes.(i)
  done

(* Retired-instance pool ring (FIFO; the head is only reusable once
   its retirement cycle has passed, so staged channel writes from the
   dying cycle have flushed). *)
let pool_put (trt : task_rt) (inst : instance) : unit =
  let cap = Array.length trt.tp_v in
  let n = trt.tp_tail - trt.tp_head in
  if n = cap then begin
    let ncap = max 8 (cap * 2) in
    let nv = Array.make ncap inst in
    for i = 0 to n - 1 do
      nv.(i) <- trt.tp_v.((trt.tp_head + i) mod max cap 1)
    done;
    trt.tp_v <- nv;
    trt.tp_head <- 0;
    trt.tp_tail <- n
  end;
  trt.tp_v.(trt.tp_tail mod Array.length trt.tp_v) <- inst;
  trt.tp_tail <- trt.tp_tail + 1

let acquire_instance (sim : t) (trt : task_rt) : instance =
  if
    trt.tp_tail - trt.tp_head > 0
    && trt.tp_v.(trt.tp_head mod Array.length trt.tp_v).i_retired < sim.now
  then begin
    let inst = trt.tp_v.(trt.tp_head mod Array.length trt.tp_v) in
    trt.tp_head <- trt.tp_head + 1;
    reset_instance sim inst;
    inst
  end
  else begin
    (* Fresh instances register on the task's roster (reborn pooled
       ones already sit there); the roster feeds the final counter
       fold and the deadlock dump. *)
    let inst = new_instance sim trt.tk ~dynamic:true in
    inst.i_slot <- trt.tinst_n;
    trt.tinst <- vpush trt.tinst trt.tinst_n inst;
    trt.tinst_n <- trt.tinst_n + 1;
    inst
  end

let create ?tracer ?(jobs = 1) (c : G.circuit) : t =
  Muir_core.Validate.check_exn c;
  let mem = Muir_ir.Memory.create c.prog in
  let ms = Memsys.create c mem in
  let n = List.length c.tasks in
  let dyn = dynamic_tasks c in
  let tasks =
    Array.of_list
      (List.map
         (fun (t : G.task) ->
           { tk = t; t_arity = List.length t.arg_tys;
             t_nres = List.length t.res_tys; tdynamic = dyn.(t.tid);
             tq_tags = [||]; tq_nums = [||]; tq_flts = [||];
             tq_objs = [||]; tq_ctx = [||]; tq_rkind = [||];
             tq_rinst = [||]; tq_rnode = [||]; tq_rwave = [||];
             tq_rctx = [||]; tq_head = 0; tq_tail = 0; tinst = [||];
             tinst_n = 0; tinvocations = 0; tbusy = 0;
             t_fired_now = false; trr = 0; t_next_ord = -1; tf_v = [||];
             tf_v2 = [||]; tf_n = 0; te_v = [||]; te_v2 = [||]; te_n = 0;
             tc_v = [||]; tc_n = 0; tc2 = [||]; tj_v = [||]; tj_v2 = [||];
             tj_n = 0; tw_inst = [||]; tw_node = [||]; tw_n = 0;
             td_inst = [||]; td_node = [||]; td_n = 0; tp_v = [||];
             tp_head = 0; tp_tail = 0 })
         c.tasks)
  in
  let njobs = max 1 jobs in
  let ctrs = Ctr.create () in
  let sim =
    { circ = c; ms; tasks; now = 0; fires = 0; last_activity = 0;
      next_iid = 0; root_done = false; root_val = T.VBool true;
      junction_width = Array.init n (fun tid -> G.junction_width c tid);
      max_outstanding = 8;
      lanes =
        Array.init njobs (fun _ ->
            { wheel =
                Array.init wheel_size (fun _ ->
                    { wi = [||]; wn = [||]; wc = [||]; wk = [||]; w_n = 0 });
              ld_v = [||]; ld_n = 0; l_fires = 0; l_woken = 0;
              l_syncs = 0; l_active = false });
      njobs; dpool = None; woken = 0; live_nodes = 0; node_cycles = 0;
      tr = tracer; ctrs;
      otasks = Array.init n (fun tid -> Ctr.occ_ref ctrs (Ctr.Ktask tid));
      ostructs =
        Array.init (Memsys.nstructs ms) (fun i ->
            Ctr.occ_ref ctrs (Ctr.Kstruct (Memsys.struct_sid ms i))) }
  in
  (* Static instances for non-dynamic tasks: one per tile. *)
  Array.iter
    (fun trt ->
      if not trt.tdynamic then
        for k = 0 to trt.tk.tiles - 1 do
          let inst = new_instance sim trt.tk ~dynamic:false in
          inst.i_ord <- k;
          inst.i_slot <- k;
          trt.tinst <- vpush trt.tinst trt.tinst_n inst;
          trt.tinst_n <- trt.tinst_n + 1
        done)
    tasks;
  sim

(* ------------------------------------------------------------------ *)
(* Invocation plumbing                                                  *)

(* Wave table: open-addressed by [wave land (cap-1)] with the wave as
   its own tag.  Live waves occupy a dense window, so a table at least
   as large as the window never collides; grow (rarely) on collision. *)
let rec wv_grow (inst : instance) (ncap : int) : unit =
  let nw = Array.make ncap (-1) in
  let ni = Array.make ncap dummy_inv in
  let ok = ref true in
  Array.iteri
    (fun k w ->
      if w >= 0 && !ok then begin
        let s = w land (ncap - 1) in
        if nw.(s) >= 0 then ok := false
        else begin
          nw.(s) <- w;
          ni.(s) <- inst.iw_iv.(k)
        end
      end)
    inst.iw_wave;
  if !ok then begin
    inst.iw_wave <- nw;
    inst.iw_iv <- ni
  end
  else wv_grow inst (ncap * 2)

let rec wv_insert (inst : instance) (wave : int) (iv : invocation) : unit =
  let cap = Array.length inst.iw_wave in
  if cap = 0 then begin
    inst.iw_wave <- Array.make 8 (-1);
    inst.iw_iv <- Array.make 8 dummy_inv;
    wv_insert inst wave iv
  end
  else begin
    let s = wave land (cap - 1) in
    if inst.iw_wave.(s) < 0 then begin
      inst.iw_wave.(s) <- wave;
      inst.iw_iv.(s) <- iv
    end
    else begin
      wv_grow inst (cap * 2);
      wv_insert inst wave iv
    end
  end

let wv_mem (inst : instance) (wave : int) : bool =
  let cap = Array.length inst.iw_wave in
  cap > 0 && inst.iw_wave.(wave land (cap - 1)) = wave

let wv_get (inst : instance) (wave : int) : invocation =
  inst.iw_iv.(wave land (Array.length inst.iw_wave - 1))

let wv_remove (inst : instance) (wave : int) : unit =
  inst.iw_wave.(wave land (Array.length inst.iw_wave - 1)) <- -1;
  inst.i_count <- inst.i_count - 1

let find_inv (inst : instance) (wave : int) : invocation =
  if wv_mem inst wave then wv_get inst wave
  else
    raise
      (Deadlock
         (Fmt.str "task %s: no inflight invocation for wave %d" inst.it.tname
            wave))

(** Oldest inflight wave (advancing the window's low cursor past
    completed waves), or [-1] if none. *)
let rec oldest_wave_from (inst : instance) (w : int) : int =
  if w >= inst.next_wave then -1
  else if wv_mem inst w then w
  else oldest_wave_from inst (w + 1)

let oldest_wave (inst : instance) : int =
  if inst.i_count = 0 then -1
  else begin
    let w = oldest_wave_from inst inst.i_lo in
    if w >= 0 then inst.i_lo <- w;
    w
  end

(** The invocation a firing of node [n] belongs to.  In function tasks
    every node fires exactly once per wave; in loop tasks only one
    invocation is in flight, so attribution is exact in both cases. *)
let attr_inv (inst : instance) (n : node_rt) : invocation =
  match inst.it.tkind with
  | G.Tfunc -> find_inv inst n.nr_fired
  | G.Tloop _ ->
    let w = oldest_wave inst in
    if w >= 0 then wv_get inst w
    else
      raise
        (Deadlock
           (Fmt.str "loop task %s fired with no inflight invocation"
              inst.it.tname))

(** Can this instance accept another invocation right now? *)
let rec ca_fans (fs : fifo array) (k : int) : bool =
  k >= Array.length fs || (fifo_space fs.(k) && ca_fans fs (k + 1))

let rec ca_ports (outs : fifo array array) (p : int) : bool =
  p >= Array.length outs || (ca_fans outs.(p) 0 && ca_ports outs (p + 1))

let rec ca_nodes (inst : instance) (i : int) : bool =
  i >= Array.length inst.inodes
  || ((match inst.inodes.(i).nr.kind with
      | G.LiveIn _ -> ca_ports inst.inodes.(i).nr_out 0
      | _ -> true)
     && ca_nodes inst (i + 1))

let can_accept (inst : instance) : bool =
  (match inst.it.tkind with
  | G.Tloop _ -> inst.ipipe_loop || inst.i_count = 0
  | G.Tfunc -> true)
  && ca_nodes inst 0

(* Invocation pool: records (and their own sync context, for function
   tasks) are built once per instance and recycled. *)
let new_invocation (inst : instance) : invocation =
  let own =
    match inst.it.tkind with
    | G.Tfunc ->
      Some
        { live_children = 0; cx_owner = Some inst; cx_w_inst = [||];
          cx_w_node = [||]; cx_nw = 0 }
    | G.Tloop _ -> None
  in
  let nres = inst.i_nres in
  { iv_gen = 0; iv_wave = 0; iv_rkind = 0; iv_rinst = dummy_inst;
    iv_rnode = dummy_node;
    iv_rwave = 0; iv_rctx = dummy_ctx; iv_eff_ctx = dummy_ctx; iv_own = own;
    iv_lo_tags = Array.make nres F.tabsent;
    iv_lo_nums = Array.make nres 0; iv_lo_flts = Array.make nres 0.0;
    iv_lo_objs = Array.make nres F.no_obj; iv_stores = 0 }

let acquire_inv (inst : instance) : invocation =
  if inst.ivp_n > 0 then begin
    inst.ivp_n <- inst.ivp_n - 1;
    let iv = inst.ivp.(inst.ivp_n) in
    iv.iv_gen <- iv.iv_gen + 1;
    iv
  end
  else new_invocation inst

let release_inv (inst : instance) (iv : invocation) : unit =
  inst.ivp <- vpush inst.ivp inst.ivp_n iv;
  inst.ivp_n <- inst.ivp_n + 1

(* Response reorder table: same open-addressing discipline as the wave
   table, with [rs_w] token columns per row. *)
let rec resp_grow (n : node_rt) (ncap : int) : unit =
  let w = max n.rs_w 1 in
  let nw = Array.make ncap (-1) in
  let nt = Array.make (ncap * w) F.tabsent in
  let nn = Array.make (ncap * w) 0 in
  let nf = Array.make (ncap * w) 0.0 in
  let no = Array.make (ncap * w) F.no_obj in
  let ok = ref true in
  Array.iteri
    (fun k wv ->
      if wv >= 0 && !ok then begin
        let s = wv land (ncap - 1) in
        if nw.(s) >= 0 then ok := false
        else begin
          nw.(s) <- wv;
          Array.blit n.rs_tags (k * w) nt (s * w) w;
          Array.blit n.rs_nums (k * w) nn (s * w) w;
          Array.blit n.rs_flts (k * w) nf (s * w) w;
          Array.blit n.rs_objs (k * w) no (s * w) w
        end
      end)
    n.rs_wave;
  if !ok then begin
    n.rs_wave <- nw;
    n.rs_tags <- nt;
    n.rs_nums <- nn;
    n.rs_flts <- nf;
    n.rs_objs <- no
  end
  else resp_grow n (ncap * 2)

(** Claim the row for [wave]; the caller fills the token columns at
    [slot * max rs_w 1]. *)
let rec resp_insert (n : node_rt) (wave : int) : int =
  let cap = Array.length n.rs_wave in
  if cap = 0 then begin
    let w = max n.rs_w 1 in
    n.rs_wave <- Array.make 4 (-1);
    n.rs_tags <- Array.make (4 * w) F.tabsent;
    n.rs_nums <- Array.make (4 * w) 0;
    n.rs_flts <- Array.make (4 * w) 0.0;
    n.rs_objs <- Array.make (4 * w) F.no_obj;
    resp_insert n wave
  end
  else begin
    let s = wave land (cap - 1) in
    if n.rs_wave.(s) < 0 || n.rs_wave.(s) = wave then begin
      n.rs_wave.(s) <- wave;
      s
    end
    else begin
      resp_grow n (cap * 2);
      resp_insert n wave
    end
  end

let resp_ready (n : node_rt) (wave : int) : bool =
  let cap = Array.length n.rs_wave in
  cap > 0 && n.rs_wave.(wave land (cap - 1)) = wave

(* Sync-completion ring of (invocation, wave) entries. *)
let sync_push (n : node_rt) (iv : invocation) (wave : int) : unit =
  let cap = Array.length n.ns_wave in
  let m = n.ns_tail - n.ns_head in
  if m = cap then begin
    let ncap = max 4 (cap * 2) in
    let ni = Array.make ncap dummy_inv in
    let nv = Array.make ncap 0 in
    let ng = Array.make ncap 0 in
    for i = 0 to m - 1 do
      let s = (n.ns_head + i) land (cap - 1) in
      ni.(i) <- n.ns_inv.(s);
      nv.(i) <- n.ns_wave.(s);
      ng.(i) <- n.ns_gen.(s)
    done;
    n.ns_inv <- ni;
    n.ns_wave <- nv;
    n.ns_gen <- ng;
    n.ns_head <- 0;
    n.ns_tail <- m
  end;
  let s = n.ns_tail land (Array.length n.ns_wave - 1) in
  n.ns_inv.(s) <- iv;
  n.ns_wave.(s) <- wave;
  n.ns_gen.(s) <- iv.iv_gen;
  n.ns_tail <- n.ns_tail + 1

(* Junction ring of (space, sub-request) entries awaiting arbitration. *)
let dummy_sr : Memsys.subreq = dummy_access.Memsys.a_srs.(0)

let junction_push (inst : instance) (space : int) (sr : Memsys.subreq) : unit
    =
  let cap = Array.length inst.ij_space in
  let m = inst.ij_tail - inst.ij_head in
  if m = cap then begin
    let ncap = max 8 (cap * 2) in
    let nsp = Array.make ncap 0 in
    let nsr = Array.make ncap dummy_sr in
    for i = 0 to m - 1 do
      let s = (inst.ij_head + i) land (cap - 1) in
      nsp.(i) <- inst.ij_space.(s);
      nsr.(i) <- inst.ij_sr.(s)
    done;
    inst.ij_space <- nsp;
    inst.ij_sr <- nsr;
    inst.ij_head <- 0;
    inst.ij_tail <- m
  end;
  let s = inst.ij_tail land (Array.length inst.ij_space - 1) in
  inst.ij_space.(s) <- space;
  inst.ij_sr.(s) <- sr;
  inst.ij_tail <- inst.ij_tail + 1

(* Park a sync node on its join context (dedup by node identity). *)
let rec cx_parked_from (c : sync_ctx) (n : node_rt) (i : int) : bool =
  i < c.cx_nw && (c.cx_w_node.(i) == n || cx_parked_from c n (i + 1))

let cx_park (c : sync_ctx) (inst : instance) (n : node_rt) : unit =
  if not (cx_parked_from c n 0) then begin
    c.cx_w_inst <- vpush c.cx_w_inst c.cx_nw inst;
    c.cx_w_node <- vpush c.cx_w_node c.cx_nw n;
    c.cx_nw <- c.cx_nw + 1
  end

(* Task invocation queue: a ring of flat rows, [t_arity] argument
   columns plus the reply-routing fields. *)
let tq_len (trt : task_rt) : int = trt.tq_tail - trt.tq_head

let tq_grow (trt : task_rt) : unit =
  let cap = Array.length trt.tq_rkind in
  let ncap = max 8 (cap * 2) in
  let ar = max trt.t_arity 1 in
  let n = trt.tq_tail - trt.tq_head in
  let ntags = Array.make (ncap * ar) F.tabsent in
  let nnums = Array.make (ncap * ar) 0 in
  let nflts = Array.make (ncap * ar) 0.0 in
  let nobjs = Array.make (ncap * ar) F.no_obj in
  let nctx = Array.make ncap dummy_ctx in
  let nrk = Array.make ncap 0 in
  let nri = Array.make ncap dummy_inst in
  let nrn = Array.make ncap dummy_node in
  let nrw = Array.make ncap 0 in
  let nrc = Array.make ncap dummy_ctx in
  for i = 0 to n - 1 do
    let s = (trt.tq_head + i) land (cap - 1) in
    Array.blit trt.tq_tags (s * ar) ntags (i * ar) ar;
    Array.blit trt.tq_nums (s * ar) nnums (i * ar) ar;
    Array.blit trt.tq_flts (s * ar) nflts (i * ar) ar;
    Array.blit trt.tq_objs (s * ar) nobjs (i * ar) ar;
    nctx.(i) <- trt.tq_ctx.(s);
    nrk.(i) <- trt.tq_rkind.(s);
    nri.(i) <- trt.tq_rinst.(s);
    nrn.(i) <- trt.tq_rnode.(s);
    nrw.(i) <- trt.tq_rwave.(s);
    nrc.(i) <- trt.tq_rctx.(s)
  done;
  trt.tq_tags <- ntags;
  trt.tq_nums <- nnums;
  trt.tq_flts <- nflts;
  trt.tq_objs <- nobjs;
  trt.tq_ctx <- nctx;
  trt.tq_rkind <- nrk;
  trt.tq_rinst <- nri;
  trt.tq_rnode <- nrn;
  trt.tq_rwave <- nrw;
  trt.tq_rctx <- nrc;
  trt.tq_head <- 0;
  trt.tq_tail <- n

(** Reserve the tail row; the caller fills the argument columns at
    [slot * max t_arity 1]. *)
let tq_push (trt : task_rt) ~(ctx : sync_ctx) ~(rkind : int)
    ~(rinst : instance) ~(rnode : node_rt) ~(rwave : int) ~(rctx : sync_ctx)
    : int =
  if trt.tq_tail - trt.tq_head = Array.length trt.tq_rkind then tq_grow trt;
  let s = trt.tq_tail land (Array.length trt.tq_rkind - 1) in
  trt.tq_ctx.(s) <- ctx;
  trt.tq_rkind.(s) <- rkind;
  trt.tq_rinst.(s) <- rinst;
  trt.tq_rnode.(s) <- rnode;
  trt.tq_rwave.(s) <- rwave;
  trt.tq_rctx.(s) <- rctx;
  trt.tq_tail <- trt.tq_tail + 1;
  s

let inject (sim : t) (trt : task_rt) (inst : instance) (s : int) : unit =
  let wave = inst.next_wave in
  inst.next_wave <- wave + 1;
  trt.tinvocations <- trt.tinvocations + 1;
  let iv = acquire_inv inst in
  iv.iv_wave <- wave;
  iv.iv_rkind <- trt.tq_rkind.(s);
  iv.iv_rinst <- trt.tq_rinst.(s);
  iv.iv_rnode <- trt.tq_rnode.(s);
  iv.iv_rwave <- trt.tq_rwave.(s);
  iv.iv_rctx <- trt.tq_rctx.(s);
  (match iv.iv_own with
  | Some c ->
    c.live_children <- 0;
    c.cx_nw <- 0;
    iv.iv_eff_ctx <- c
  | None -> iv.iv_eff_ctx <- trt.tq_ctx.(s));
  if inst.i_nres > 0 then Array.fill iv.iv_lo_tags 0 inst.i_nres F.tabsent;
  iv.iv_stores <- 0;
  wv_insert inst wave iv;
  inst.i_count <- inst.i_count + 1;
  let base = s * max trt.t_arity 1 in
  let ln0 = sim.lanes.(0) in
  for j = 0 to Array.length inst.inodes - 1 do
    let n = inst.inodes.(j) in
    match n.nr.kind with
    | G.LiveIn i ->
      let fs = n.nr_out.(0) in
      if i < trt.t_arity then
        for k = 0 to Array.length fs - 1 do
          fifo_push ln0 fs.(k) trt.tq_tags.(base + i)
            trt.tq_nums.(base + i) trt.tq_flts
            (base + i)
            trt.tq_objs.(base + i)
        done
      else
        for k = 0 to Array.length fs - 1 do
          fifo_push ln0 fs.(k) F.tpoison 0 f0 0 F.no_obj
        done
    | _ -> ()
  done;
  wake_complete sim inst;
  sim.last_activity <- sim.now

(** Deliver a completed invocation's live-outs to its parent. *)
let deliver (sim : t) (inst : instance) (iv : invocation) : unit =
  match iv.iv_rkind with
  | 0 ->
    sim.root_done <- true;
    sim.root_val <-
      (if inst.i_nres > 1 then
         F.materialize iv.iv_lo_tags.(1) iv.iv_lo_nums.(1) iv.iv_lo_flts.(1)
           iv.iv_lo_objs.(1)
       else T.VBool true)
  | 1 ->
    let n = iv.iv_rnode in
    let w = max n.rs_w 1 in
    let s = resp_insert n iv.iv_rwave in
    let k = min n.rs_w inst.i_nres in
    Array.blit iv.iv_lo_tags 0 n.rs_tags (s * w) k;
    Array.blit iv.iv_lo_nums 0 n.rs_nums (s * w) k;
    Array.blit iv.iv_lo_flts 0 n.rs_flts (s * w) k;
    Array.blit iv.iv_lo_objs 0 n.rs_objs (s * w) k;
    wake_emit sim iv.iv_rinst n
  | _ ->
    ctx_dec sim iv.iv_rctx;
    let n = iv.iv_rnode in
    let s = resp_insert n iv.iv_rwave in
    if inst.i_nres > 1 then begin
      n.rs_tags.(s) <- iv.iv_lo_tags.(1);
      n.rs_nums.(s) <- iv.iv_lo_nums.(1);
      n.rs_flts.(s) <- iv.iv_lo_flts.(1);
      n.rs_objs.(s) <- iv.iv_lo_objs.(1)
    end
    else begin
      n.rs_tags.(s) <- F.ttrue;
      n.rs_nums.(s) <- 0;
      n.rs_flts.(s) <- 0.0;
      n.rs_objs.(s) <- F.no_obj
    end;
    wake_emit sim iv.iv_rinst n

(** A function-task wave is fully fired once every node (live-ins are
    driven by injection) has consumed it — this is exact because every
    node fires exactly once per wave in a predicated hyperblock. *)
let rec wave_fully_fired_from (inst : instance) (wave : int) (i : int) :
    bool =
  i >= Array.length inst.inodes
  || (let n = inst.inodes.(i) in
      (match n.nr.kind with
      | G.LiveIn _ -> true
      | G.CallChild _ | G.SpawnChild _ ->
        (* The child invoked for this wave must itself have completed
           (its response emitted in order): a void call's side effects
           otherwise race ahead of the caller's completion. *)
        n.nr_fired > wave && n.nr_next_resp > wave
      | _ -> n.nr_fired > wave)
      && wave_fully_fired_from inst wave (i + 1))

let wave_fully_fired (inst : instance) (wave : int) : bool =
  wave_fully_fired_from inst wave 0

(** A loop instance is quiescent when every token at rest sits on a
    primed edge (loop-control or ordering back edges) at its resting
    count and no node holds in-flight work.  Mid-invocation the
    carried values necessarily occupy other channels or pipelines, so
    quiescence is equivalent to "the invocation has fully drained". *)
let rec no_live_resp (n : node_rt) (k : int) : bool =
  k >= Array.length n.rs_wave
  || (n.rs_wave.(k) < 0 && no_live_resp n (k + 1))

let rec lq_nodes_from (inst : instance) (i : int) : bool =
  i >= Array.length inst.inodes
  || (let n = inst.inodes.(i) in
      n.np_tail - n.np_head = 0
      && n.nm_tail - n.nm_head = 0
      && no_live_resp n 0
      && n.ns_tail - n.ns_head = 0
      && (match n.nr.kind with
         | G.CallChild _ | G.SpawnChild _ -> n.nr_next_resp = n.nr_fired
         | _ -> true)
      && lq_nodes_from inst (i + 1))

let rec lq_fifos_from (inst : instance) (e : int) : bool =
  e >= Array.length inst.ififos
  || (let f = inst.ififos.(e) in
      f.ftail - f.fhead = inst.iprime.(e) && lq_fifos_from inst (e + 1))

let loop_quiescent (inst : instance) : bool =
  lq_nodes_from inst 0
  && inst.ij_tail - inst.ij_head = 0
  && lq_fifos_from inst 0

let rec lo_ready_from (iv : invocation) (nres : int) (k : int) : bool =
  k >= nres
  || (iv.iv_lo_tags.(k) <> F.tabsent && lo_ready_from iv nres (k + 1))

(* Scan waves [w, next_wave) for completions; returns how many
   completed.  Tail-recursive — the counter rides in an argument. *)
let rec complete_scan (sim : t) (inst : instance) (w : int)
    (completed : int) : int =
  if w >= inst.next_wave then completed
  else
    let completed =
      if
        wv_mem inst w
        &&
        let iv = wv_get inst w in
        lo_ready_from iv inst.i_nres 0
        && iv.iv_stores = 0
        && (match iv.iv_own with
           | Some c -> c.live_children = 0
           | None -> true)
        && (match inst.it.tkind with
           | G.Tfunc -> wave_fully_fired inst w
           | G.Tloop _ ->
             (* leaf loops have no side effects to wait for: the
                live-out tuple is the whole observable result *)
             inst.ipipe_loop || loop_quiescent inst)
      then begin
        let iv = wv_get inst w in
        wv_remove inst w;
        sim.last_activity <- sim.now;
        deliver sim inst iv;
        release_inv inst iv;
        completed + 1
      end
      else completed
    in
    complete_scan sim inst (w + 1) completed

let try_complete (sim : t) (trt : task_rt) (inst : instance) : unit =
  let completed = complete_scan sim inst inst.i_lo 0 in
  if completed > 0 then begin
    while inst.i_lo < inst.next_wave && not (wv_mem inst inst.i_lo) do
      inst.i_lo <- inst.i_lo + 1
    done;
    if inst.i_count = 0 then begin
      (* Invocation drained: every node is idle from the next cycle.
         A retiring dynamic instance also folds its accounting into
         the whole-run counter bank here, before it returns to the
         instance pool. *)
      let ip = inst.i_prof in
      for i = 0 to Array.length ip.nprofs - 1 do
        ignore
          (Tr.Prof.transition ip.nprofs.(i) (Tr.cause_index Tr.Idle)
             (sim.now + 1))
      done;
      if inst.idynamic then begin
        for i = 0 to Array.length ip.nprofs - 1 do
          Ctr.fold_into inst.i_nctr.(i)
            ~fires:inst.inodes.(i).nr_fired ~born:ip.born
            ~upto:(sim.now + 1)
            ip.nprofs.(i)
        done;
        inst.live <- false;
        inst.i_retired <- sim.now;
        sim.live_nodes <- sim.live_nodes - Array.length inst.inodes;
        pool_put trt inst
      end
    end
  end

(* ------------------------------------------------------------------ *)
(* Node firing (phase A)                                                *)

(* Push a result into the 4-slot pipeline ring.  Callers check
   occupancy first. *)
(* The float rides as [flts.(fi)] rather than a bare [float]: a float
   argument to a non-inlined call is boxed at the boundary (2-3 minor
   words per token), while an array-to-array move stays unboxed. *)
let pipe_push (n : node_rt) (ready : int) (port : int) (tag : int)
    (num : int) (flts : float array) (fi : int) (obj : token) : unit =
  let s = n.np_tail land 3 in
  n.np_ready.(s) <- ready;
  n.np_port.(s) <- port;
  n.np_tags.(s) <- tag;
  n.np_nums.(s) <- num;
  n.np_flts.(s) <- flts.(fi);
  n.np_objs.(s) <- obj;
  n.np_tail <- n.np_tail + 1

(** Could the node fire again with the tokens already committed?  Used
    to self-schedule a re-attempt after a successful firing — no other
    event will arrive for tokens that are already there. *)
let ready_again (n : node_rt) : bool =
  match n.nr.kind with
  | G.LiveIn _ -> false
  | G.MergeLoop ->
    input_ready n 0
    && (let sel =
          match n.nr_in.(0) with
          | None ->
            if Exec.truthy_flat n.im_tags.(0) n.im_nums.(0) n.im_objs.(0)
            then 2
            else 1
          | Some f ->
            let j = f.fhead land f.fmask in
            if Exec.truthy_flat f.ftags.(j) f.fnums.(j) f.fobjs.(j) then 2
            else 1
        in
        input_ready n sel)
  | _ -> all_inputs_ready n

let zeros4 = Array.make 4 0.0

(** Attempt to fire node [n] of [inst]; true if it fired.  A failed
    attempt has no side effects beyond (re)subscribing the node to the
    event that can unblock it.  All operand staging goes through the
    instance's flat scratch [i_sc]; nothing here allocates. *)
let try_fire (sim : t) (ln : lane) (inst : instance) (n : node_rt) : bool =
  let now = sim.now in
  if n.nr_busy_until > now then begin
    (* Sleeping on the initiation interval: retry when it expires. *)
    at sim ln n.nr_busy_until inst n 0;
    false
  end
  else
    match n.nr.kind with
    | G.LiveIn _ -> false (* driven by injection *)
    | G.MergeLoop ->
      (* Consume ctl, then the selected data input only. *)
      let sc = inst.i_sc in
      if not (stage_one n sc 0) then false
      else begin
        let sel =
          if Exec.truthy_flat sc.Exec.stags.(0) sc.Exec.snums.(0)
               sc.Exec.sobjs.(0)
          then 2
          else 1
        in
        if not (stage_one n sc sel) then false
        else if n.np_tail - n.np_head >= 4 then false
        else begin
          pop_in sim n 0;
          pop_in sim n sel;
          pipe_push n (now + n.nr_cost.latency - 1) 0 sc.Exec.stags.(sel)
            sc.Exec.snums.(sel) sc.Exec.sflts sel sc.Exec.sobjs.(sel);
          n.nr_fired <- n.nr_fired + 1;
          true
        end
      end
    | _ ->
      if not (all_inputs_ready n) then false
      else if n.np_tail - n.np_head >= 4 && not (G.is_memory_node n.nr) then
        false
      else begin
        match n.nr.kind with
        | G.Compute op ->
          let sc = inst.i_sc in
          ignore (stage_inputs n sc);
          pop_all sim n;
          Exec.compute_sc sc op 0 (Array.length n.nr_in);
          pipe_push n (now + n.nr_cost.latency - 1) 0 sc.Exec.rtag
            sc.Exec.rnum sc.Exec.rflt 0 sc.Exec.robj;
          n.nr_busy_until <- now + n.nr_cost.ii;
          n.nr_fired <- n.nr_fired + 1;
          true
        | G.Fused ops ->
          let sc = inst.i_sc in
          ignore (stage_inputs n sc);
          pop_all sim n;
          Exec.fused_sc sc ops (Array.length n.nr_in);
          pipe_push n (now + n.nr_cost.latency - 1) 0 sc.Exec.rtag
            sc.Exec.rnum sc.Exec.rflt 0 sc.Exec.robj;
          n.nr_busy_until <- now + n.nr_cost.ii;
          n.nr_fired <- n.nr_fired + 1;
          true
        | G.Merge k ->
          let sc = inst.i_sc in
          ignore (stage_inputs n sc);
          pop_all sim n;
          Exec.merge_sc sc k (Array.length n.nr_in);
          pipe_push n (now + n.nr_cost.latency - 1) 0 sc.Exec.rtag
            sc.Exec.rnum sc.Exec.rflt 0 sc.Exec.robj;
          n.nr_fired <- n.nr_fired + 1;
          true
        | G.Steer ->
          let sc = inst.i_sc in
          ignore (stage_inputs n sc);
          pop_all sim n;
          let port =
            if Exec.truthy_flat sc.Exec.stags.(0) sc.Exec.snums.(0)
                 sc.Exec.sobjs.(0)
            then 0
            else 1
          in
          pipe_push n (now + n.nr_cost.latency - 1) port sc.Exec.stags.(1)
            sc.Exec.snums.(1) sc.Exec.sflts 1 sc.Exec.sobjs.(1);
          n.nr_fired <- n.nr_fired + 1;
          true
        | G.FusedSteer ops ->
          let sc = inst.i_sc in
          ignore (stage_inputs n sc);
          pop_all sim n;
          let p =
            Exec.truthy_flat sc.Exec.stags.(0) sc.Exec.snums.(0)
              sc.Exec.sobjs.(0)
          in
          (* The chain's operands are inputs 1..: shift them down. *)
          let ar = Array.length n.nr_in in
          for i = 0 to ar - 2 do
            sc.Exec.stags.(i) <- sc.Exec.stags.(i + 1);
            sc.Exec.snums.(i) <- sc.Exec.snums.(i + 1);
            sc.Exec.sflts.(i) <- sc.Exec.sflts.(i + 1);
            sc.Exec.sobjs.(i) <- sc.Exec.sobjs.(i + 1)
          done;
          Exec.fused_sc sc ops (ar - 1);
          let port = if p then 0 else 1 in
          pipe_push n (now + n.nr_cost.latency - 1) port sc.Exec.rtag
            sc.Exec.rnum sc.Exec.rflt 0 sc.Exec.robj;
          n.nr_busy_until <- now + n.nr_cost.ii;
          n.nr_fired <- n.nr_fired + 1;
          true
        | G.Tcompute { top; _ } ->
          (* Tensor ops produce boxed tiles anyway; the slow path is
             fine here. *)
          let sc = inst.i_sc in
          ignore (stage_inputs n sc);
          pop_all sim n;
          let v = Exec.tensor top (Exec.slot_values sc 0 (Array.length n.nr_in)) in
          sc.Exec.rflt.(0) <- F.flt_of v;
          pipe_push n (now + n.nr_cost.latency - 1) 0 (F.tag_of v)
            (F.num_of v) sc.Exec.rflt 0 (F.obj_of v);
          n.nr_busy_until <- now + n.nr_cost.ii;
          n.nr_fired <- n.nr_fired + 1;
          true
        | G.Load _ | G.Store _ | G.Tload _ | G.Tstore _ ->
          if n.nm_tail - n.nm_head >= sim.max_outstanding then false
          else begin
            let is_store =
              match n.nr.kind with
              | G.Store _ | G.Tstore _ -> true
              | _ -> false
            in
            (* Attribution: stores pin their invocation; loads only
               advance the oldest-wave cursor (the original never read
               a load's attribution). *)
            let iv = if is_store then attr_inv inst n else dummy_inv in
            if not is_store then ignore (oldest_wave inst);
            let sc = inst.i_sc in
            ignore (stage_inputs n sc);
            let pred_ok =
              Exec.truthy_flat sc.Exec.stags.(0) sc.Exec.snums.(0)
                sc.Exec.sobjs.(0)
            in
            let addr_tag = sc.Exec.stags.(1) in
            let addr =
              Exec.to_int_flat sc.Exec.stags.(1) sc.Exec.snums.(1)
                sc.Exec.sobjs.(1)
            in
            pop_all sim n;
            let s = n.nm_tail land (Array.length n.nm_live - 1) in
            if pred_ok && addr_tag <> F.tpoison then begin
              let a =
                if n.na_n > 0 then begin
                  n.na_n <- n.na_n - 1;
                  n.na_pool.(n.na_n)
                end
                else begin
                  let a = Memsys.make_access ~words:n.nr_words ~notify:ignore in
                  (* The closure is created once per pooled access and
                     lives as long as it does.  Orphaned accesses
                     (write-buffered stores popped before their banks
                     drained) return to the pool on completion instead
                     of waking the node. *)
                  a.Memsys.a_notify <-
                    (fun () ->
                      if a.Memsys.a_orphan then begin
                        n.na_pool <- vpush n.na_pool n.na_n a;
                        n.na_n <- n.na_n + 1
                      end
                      else wake_emit sim inst n);
                  a
                end
              in
              Memsys.reset_access a ~is_store ~now;
              (match n.nr.kind with
              | G.Load _ ->
                a.Memsys.a_n <- 1;
                a.Memsys.a_addrs.(0) <- addr
              | G.Store _ ->
                a.Memsys.a_n <- 1;
                a.Memsys.a_addrs.(0) <- addr;
                a.Memsys.a_tags.(0) <- sc.Exec.stags.(2);
                a.Memsys.a_nums.(0) <- sc.Exec.snums.(2);
                a.Memsys.a_flts.(0) <- sc.Exec.sflts.(2);
                a.Memsys.a_objs.(0) <- sc.Exec.sobjs.(2)
              | G.Tload { shape; _ } ->
                let stride =
                  Exec.to_int_flat sc.Exec.stags.(2) sc.Exec.snums.(2)
                    sc.Exec.sobjs.(2)
                in
                let w = T.shape_words shape in
                a.Memsys.a_n <- w;
                for i = 0 to w - 1 do
                  let r = i / shape.cols and c = i mod shape.cols in
                  a.Memsys.a_addrs.(i) <- addr + (r * stride) + c
                done
              | G.Tstore { shape; _ } ->
                let stride =
                  Exec.to_int_flat sc.Exec.stags.(2) sc.Exec.snums.(2)
                    sc.Exec.sobjs.(2)
                in
                let tile =
                  match sc.Exec.sobjs.(3) with
                  | T.VTensor t -> t
                  | _ -> zeros4
                in
                let w = T.shape_words shape in
                a.Memsys.a_n <- w;
                for i = 0 to w - 1 do
                  let r = i / shape.cols and c = i mod shape.cols in
                  a.Memsys.a_addrs.(i) <- addr + (r * stride) + c;
                  a.Memsys.a_tags.(i) <- F.tfloat;
                  a.Memsys.a_nums.(i) <- 0;
                  a.Memsys.a_flts.(i) <- tile.(i);
                  a.Memsys.a_objs.(i) <- F.no_obj
                done
              | _ -> assert false);
              let rt = sim.ms.Memsys.space_of n.nr_space in
              Memsys.split rt a;
              let buffered = is_store && Memsys.store_buffered rt in
              if is_store && not buffered then
                iv.iv_stores <- iv.iv_stores + 1;
              for j = 0 to a.Memsys.a_nsrs - 1 do
                junction_push inst n.nr_space a.Memsys.a_srs.(j)
              done;
              (* write-back buffer: the store is architecturally done
                 the moment the buffer accepts it; it drains to the
                 bank in FIFO order behind this point *)
              if buffered then a.Memsys.a_done <- true;
              n.nm_live.(s) <- true;
              n.nm_store.(s) <- is_store;
              n.nm_hasiv.(s) <- is_store;
              n.nm_acc.(s) <- a;
              n.nm_inv.(s) <- iv
            end
            else begin
              (* Predicated off (or poison address): a gated entry
                 flows through the window without touching memory. *)
              n.nm_live.(s) <- false;
              n.nm_store.(s) <- is_store;
              n.nm_hasiv.(s) <- is_store;
              n.nm_acc.(s) <- dummy_access;
              n.nm_inv.(s) <- iv
            end;
            n.nm_tail <- n.nm_tail + 1;
            n.nr_busy_until <- now + n.nr_cost.ii;
            n.nr_fired <- n.nr_fired + 1;
            true
          end
        | G.CallChild tid | G.SpawnChild tid ->
          let sc = inst.i_sc in
          ignore (stage_inputs n sc);
          let pred_ok =
            Exec.truthy_flat sc.Exec.stags.(0) sc.Exec.snums.(0)
              sc.Exec.sobjs.(0)
          in
          let child = sim.tasks.(tid) in
          let is_spawn =
            match n.nr.kind with G.SpawnChild _ -> true | _ -> false
          in
          let queue_cap = child.tk.queue_depth * max child.tk.tiles 1 in
          if pred_ok && tq_len child >= queue_cap && not child.tdynamic
          then begin
            (* Park on the child's full queue; its dispatch pops us
               back onto the worklist. *)
            if not n.nr_wait_child then begin
              n.nr_wait_child <- true;
              child.tw_inst <- vpush child.tw_inst child.tw_n inst;
              child.tw_node <- vpush child.tw_node child.tw_n n;
              child.tw_n <- child.tw_n + 1
            end;
            false
          end
          else begin
            let wave = n.nr_fired in
            let iv = attr_inv inst n in
            let nin = Array.length n.nr_in in
            pop_all sim n;
            if pred_ok then begin
              let eff = iv.iv_eff_ctx in
              let rkind =
                if is_spawn then begin
                  eff.live_children <- eff.live_children + 1;
                  2
                end
                else 1
              in
              let s =
                tq_push child ~ctx:eff ~rkind ~rinst:inst ~rnode:n
                  ~rwave:wave ~rctx:eff
              in
              let base = s * max child.t_arity 1 in
              for i = 0 to child.t_arity - 1 do
                if i = 0 then begin
                  child.tq_tags.(base) <- F.ttrue;
                  child.tq_nums.(base) <- 0;
                  child.tq_flts.(base) <- 0.0;
                  child.tq_objs.(base) <- F.no_obj
                end
                else if i < nin then begin
                  child.tq_tags.(base + i) <- sc.Exec.stags.(i);
                  child.tq_nums.(base + i) <- sc.Exec.snums.(i);
                  child.tq_flts.(base + i) <- sc.Exec.sflts.(i);
                  child.tq_objs.(base + i) <- sc.Exec.sobjs.(i)
                end
                else begin
                  child.tq_tags.(base + i) <- F.tpoison;
                  child.tq_nums.(base + i) <- 0;
                  child.tq_flts.(base + i) <- 0.0;
                  child.tq_objs.(base + i) <- F.no_obj
                end
              done
            end
            else begin
              (* Predicated off: synthesize an immediate response. *)
              let s = resp_insert n wave in
              let w = max n.rs_w 1 in
              if is_spawn then begin
                n.rs_tags.(s * w) <- F.tpoison;
                n.rs_nums.(s * w) <- 0;
                n.rs_flts.(s * w) <- 0.0;
                n.rs_objs.(s * w) <- F.no_obj
              end
              else
                for k = 0 to n.rs_w - 1 do
                  n.rs_tags.((s * w) + k) <-
                    (if k = 0 then F.tfalse else F.tpoison);
                  n.rs_nums.((s * w) + k) <- 0;
                  n.rs_flts.((s * w) + k) <- 0.0;
                  n.rs_objs.((s * w) + k) <- F.no_obj
                done
            end;
            n.nr_busy_until <- now + n.nr_cost.ii;
            n.nr_fired <- n.nr_fired + 1;
            true
          end
        | G.SyncWait ->
          let iv = attr_inv inst n in
          pop_all sim n;
          sync_push n iv n.nr_fired;
          (* Park on the join context: each child completion retries
             the sync's emission. *)
          cx_park iv.iv_eff_ctx inst n;
          n.nr_fired <- n.nr_fired + 1;
          true
        | G.LiveOut idx ->
          let sc = inst.i_sc in
          ignore (stage_one n sc 0);
          let iv =
            match inst.it.tkind with
            | G.Tfunc -> find_inv inst n.nr_fired
            | G.Tloop _ -> attr_inv inst n
          in
          pop_all sim n;
          iv.iv_lo_tags.(idx) <- sc.Exec.stags.(0);
          iv.iv_lo_nums.(idx) <- sc.Exec.snums.(0);
          iv.iv_lo_flts.(idx) <- sc.Exec.sflts.(0);
          iv.iv_lo_objs.(idx) <- sc.Exec.sobjs.(0);
          n.nr_fired <- n.nr_fired + 1;
          true
        | G.LiveIn _ | G.MergeLoop -> assert false
      end

(* ------------------------------------------------------------------ *)
(* Stall classification (always-on)                                     *)

(* Why did this woken node fail to fire?  Mirrors [try_fire]'s failure
   paths; a failed attempt has no side effects, so re-inspecting the
   state after the attempt is exact. *)
let stall_cause (sim : t) (n : node_rt) : Tr.cause =
  if n.nr_busy_until > sim.now then Tr.Structural
  else
    match n.nr.kind with
    | G.LiveIn _ -> Tr.Idle (* driven by injection, never stalled *)
    | G.MergeLoop ->
      if not (input_ready n 0) then Tr.Operand
      else begin
        let t, m, o =
          match n.nr_in.(0) with
          | None -> (n.im_tags.(0), n.im_nums.(0), n.im_objs.(0))
          | Some f ->
            let j = f.fhead land f.fmask in
            (f.ftags.(j), f.fnums.(j), f.fobjs.(j))
        in
        if not (input_ready n (if Exec.truthy_flat t m o then 2 else 1))
        then Tr.Operand
        else Tr.Backpressure
      end
    | _ ->
      if not (all_inputs_ready n) then Tr.Operand
      else if n.np_tail - n.np_head >= 4 && not (G.is_memory_node n.nr)
      then Tr.Backpressure
      else (
        match n.nr.kind with
        | G.Load _ | G.Store _ | G.Tload _ | G.Tstore _ -> Tr.Memory
        | G.CallChild _ | G.SpawnChild _ -> Tr.Structural
        | _ -> Tr.Operand)

(* The label a node enters after firing at [sim.now], effective from
   [sim.now + 1].  Any event that changes the node's state relabels it,
   so this only has to be right for the state as left by the firing. *)
let post_fire_cause (sim : t) (n : node_rt) (ra : bool) : Tr.cause =
  match n.nr.kind with
  | G.SyncWait -> Tr.Sync
  | _ ->
    if not ra then Tr.Operand
    else if n.nr_busy_until > sim.now + 1 then Tr.Structural
    else (
      match n.nr.kind with
      | G.Load _ | G.Store _ | G.Tload _ | G.Tstore _ ->
        if n.nm_tail - n.nm_head >= sim.max_outstanding then Tr.Memory
        else Tr.Busy
      | _ ->
        if n.np_tail - n.np_head >= 4 then Tr.Backpressure else Tr.Busy)

(** Fire attempt plus the event subscriptions a success implies.
    Activity counters go to the lane; cross-lane state (the spawn
    counter, parked-caller lists, child queues) is only ever touched
    by the coordinator, because call/spawn/sync fires are deferred to
    it in sharded mode. *)
let fire_node (sim : t) (ln : lane) (trt : task_rt) (inst : instance)
    (n : node_rt) : bool =
  let fired = try_fire sim ln inst n in
  (* Interval accounting is always-on (it feeds the counter bank); the
     ring only sees events when a tracer is attached. *)
  let np = inst.i_prof.Tr.Prof.nprofs.(n.nr_idx) in
  let ra = fired && ready_again n in
  if fired then begin
    ignore (Tr.Prof.transition np (Tr.cause_index Tr.Busy) sim.now);
    ignore
      (Tr.Prof.transition np
         (Tr.cause_index (post_fire_cause sim n ra))
         (sim.now + 1));
    match sim.tr with
    | Some tr ->
      Tr.emit tr
        (Tr.Efire
           { c = sim.now; task = inst.it.tid; inst = inst.iid;
             node = n.nr.nid; lat = n.nr_cost.latency })
    | None -> ()
  end
  else begin
    let cause = stall_cause sim n in
    let changed = Tr.Prof.transition np (Tr.cause_index cause) sim.now in
    match sim.tr with
    | Some tr when changed && cause <> Tr.Idle ->
      Tr.emit tr
        (Tr.Estall
           { c = sim.now; task = inst.it.tid; inst = inst.iid;
             node = n.nr.nid; cause })
    | _ -> ()
  end;
  if fired then begin
    ln.l_fires <- ln.l_fires + 1;
    ln.l_active <- true;
    trt.t_fired_now <- true;
    (* The firing may have produced something to emit this very cycle
       and may have changed the instance's completion conditions. *)
    wake_emit sim inst n;
    wake_complete sim inst;
    (match n.nr.kind with
    | G.Load _ | G.Store _ | G.Tload _ | G.Tstore _ ->
      wake_junction sim inst
    | G.SpawnChild _ ->
      sim.ctrs.Ctr.spawns <- sim.ctrs.Ctr.spawns + 1;
      (* spawns_issued moved: parked syncs may now be able to pass *)
      for k = 0 to Array.length inst.isyncs - 1 do
        wake_emit sim inst inst.isyncs.(k)
      done
    | _ -> ());
    (* Tokens already committed can enable the next firing without any
       further event: self-schedule past the initiation interval. *)
    if ra then at sim ln (max n.nr_busy_until (sim.now + 1)) inst n 0;
    true
  end
  else false

(* ------------------------------------------------------------------ *)
(* Emission (phase B)                                                   *)

let rec port_space_from (fs : fifo array) (k : int) : bool =
  k >= Array.length fs || (fifo_space fs.(k) && port_space_from fs (k + 1))

let port_space (n : node_rt) (p : int) : bool =
  port_space_from n.nr_out.(p) 0

let emit_port (ln : lane) (n : node_rt) (p : int) (tag : int) (num : int)
    (flts : float array) (fi : int) (obj : token) : unit =
  let fs = n.nr_out.(p) in
  for k = 0 to Array.length fs - 1 do
    fifo_push ln fs.(k) tag num flts fi obj
  done

(* The emission drains below are top-level and tail-recursive, each
   threading its progress flag as an argument: defined locally to
   [try_emit] they would allocate a closure per node per cycle. *)

(* Pipeline outputs (in order). *)
let rec drain_pipe (sim : t) (ln : lane) (n : node_rt) (progressed : bool)
    : bool =
  if n.np_tail - n.np_head > 0 then begin
    let s = n.np_head land 3 in
    if n.np_ready.(s) <= sim.now && port_space n n.np_port.(s) then begin
      n.np_head <- n.np_head + 1;
      emit_port ln n n.np_port.(s) n.np_tags.(s) n.np_nums.(s) n.np_flts
        s n.np_objs.(s);
      drain_pipe sim ln n true
    end
    else progressed
  end
  else progressed

(* Memory responses (FIFO per node).  [sc] is the owning instance's
   flat scratch — tile assembly parks its float there so nothing is
   boxed on the way to the ports. *)
let rec drain_mem (ln : lane) (sc : Exec.sc) (n : node_rt)
    (progressed : bool) : bool =
  if n.nm_tail - n.nm_head > 0 then begin
    let mm = Array.length n.nm_live - 1 in
    let s = n.nm_head land mm in
    let live = n.nm_live.(s) in
    if (not live) || n.nm_acc.(s).Memsys.a_done then begin
      let is_load =
        match n.nr.kind with
        | G.Load _ | G.Tload _ -> true
        | _ -> false
      in
      let space =
        if is_load then port_space n 0 && port_space n 1
        else port_space n 0
      in
      if space then begin
        let a = n.nm_acc.(s) in
        n.nm_head <- n.nm_head + 1;
        if n.nm_store.(s) && live then begin
          let iv = n.nm_inv.(s) in
          if iv.iv_stores > 0 then iv.iv_stores <- iv.iv_stores - 1
        end;
        (match n.nr.kind, live with
        | (G.Load _ | G.Tload _), false ->
          (* gated: poison data, ack false *)
          emit_port ln n 0 F.tpoison 0 f0 0 F.no_obj;
          emit_port ln n 1 F.tfalse 0 f0 0 F.no_obj
        | G.Load _, true ->
          emit_port ln n 0 a.Memsys.a_tags.(0) a.Memsys.a_nums.(0)
            a.Memsys.a_flts 0 a.Memsys.a_objs.(0);
          emit_port ln n 1 F.ttrue 0 f0 0 F.no_obj
        | G.Tload _, true ->
          let v = Memsys.tile_value a in
          sc.Exec.rflt.(0) <- F.flt_of v;
          emit_port ln n 0 (F.tag_of v) (F.num_of v) sc.Exec.rflt 0
            (F.obj_of v);
          emit_port ln n 1 F.ttrue 0 f0 0 F.no_obj
        | (G.Store _ | G.Tstore _), false ->
          emit_port ln n 0 F.tfalse 0 f0 0 F.no_obj
        | (G.Store _ | G.Tstore _), true ->
          emit_port ln n 0 F.ttrue 0 f0 0 F.no_obj
        | _ -> assert false);
        (* Recycle the access: banks still draining a write-buffered
           store keep it as an orphan and return it on completion. *)
        if live then begin
          if a.Memsys.a_pending <= 0 then begin
            n.na_pool <- vpush n.na_pool n.na_n a;
            n.na_n <- n.na_n + 1
          end
          else a.Memsys.a_orphan <- true
        end;
        drain_mem ln sc n true
      end
      else progressed
    end
    else progressed
  end
  else progressed

let rec ports_free (n : node_rt) (p : int) (k : int) : bool =
  p >= k || (port_space n p && ports_free n (p + 1) k)

(* Call/spawn responses in wave order. *)
let rec drain_resp (ln : lane) (n : node_rt) (progressed : bool) : bool =
  if resp_ready n n.nr_next_resp then begin
    let cap = Array.length n.rs_wave in
    let s = n.nr_next_resp land (cap - 1) in
    let w = max n.rs_w 1 in
    let k = min n.rs_w (Array.length n.nr_out) in
    if ports_free n 0 k then begin
      n.rs_wave.(s) <- -1;
      n.nr_next_resp <- n.nr_next_resp + 1;
      for p = 0 to k - 1 do
        emit_port ln n p
          n.rs_tags.((s * w) + p)
          n.rs_nums.((s * w) + p)
          n.rs_flts
          ((s * w) + p)
          n.rs_objs.((s * w) + p)
      done;
      drain_resp ln n true
    end
    else progressed
  end
  else progressed

(* A sync of wave [w] may only complete once every spawn of the task
   has issued wave [w]'s spawns — otherwise it could observe a
   transiently-zero child count before the children were even
   created. *)
let rec spawns_issued_from (inst : instance) (wave : int) (i : int) : bool
    =
  i >= Array.length inst.inodes
  || ((match inst.inodes.(i).nr.kind with
      | G.SpawnChild _ -> inst.inodes.(i).nr_fired > wave
      | _ -> true)
     && spawns_issued_from inst wave (i + 1))

(* Sync completions, in order. *)
let rec drain_sync (ln : lane) (inst : instance) (n : node_rt)
    (progressed : bool) : bool =
  if n.ns_tail - n.ns_head > 0 then begin
    let s = n.ns_head land (Array.length n.ns_wave - 1) in
    let iv = n.ns_inv.(s) in
    let wave = n.ns_wave.(s) in
    (* A stale entry (its invocation completed and was reused while
       the emission was backpressured) behaves like the completed
       invocation it referenced: zero live children. *)
    let children_ok =
      iv.iv_gen <> n.ns_gen.(s) || iv.iv_eff_ctx.live_children = 0
    in
    if spawns_issued_from inst wave 0 && children_ok && port_space n 0
    then begin
      n.ns_head <- n.ns_head + 1;
      ln.l_syncs <- ln.l_syncs + 1;
      emit_port ln n 0 F.ttrue 0 f0 0 F.no_obj;
      drain_sync ln inst n true
    end
    else progressed
  end
  else progressed

let try_emit (sim : t) (ln : lane) (inst : instance) (n : node_rt) : bool =
  let progressed = drain_pipe sim ln n false in
  let progressed = drain_mem ln inst.i_sc n progressed in
  let progressed = drain_resp ln n progressed in
  let progressed = drain_sync ln inst n progressed in
  (* Whatever is still pipelined wakes the node on its due cycle. *)
  (if n.np_tail - n.np_head > 0 then
     let ready = n.np_ready.(n.np_head land 3) in
     if ready > sim.now then at sim ln ready inst n 1);
  progressed

(* ------------------------------------------------------------------ *)
(* The main loop                                                        *)

(* Pull a worklist by swapping its double buffer: the taken prefix
   lives in [*_v2], new wakes land in the other buffer for the next
   cycle.  Sorting restores the dense sweep's deterministic order. *)
let take_fire_nodes (inst : instance) : int =
  let n = inst.if_n in
  let v = inst.if_v in
  inst.if_v <- inst.if_v2;
  inst.if_v2 <- v;
  inst.if_n <- 0;
  for i = 0 to n - 1 do
    v.(i).nr_qfire <- false
  done;
  sort_nodes v n;
  n

let take_emit_nodes (inst : instance) : int =
  let n = inst.ie_n in
  let v = inst.ie_v in
  inst.ie_v <- inst.ie_v2;
  inst.ie_v2 <- v;
  inst.ie_n <- 0;
  for i = 0 to n - 1 do
    v.(i).nr_qemit <- false
  done;
  sort_nodes v n;
  n

let take_tf (trt : task_rt) : int =
  let n = trt.tf_n in
  let v = trt.tf_v in
  trt.tf_v <- trt.tf_v2;
  trt.tf_v2 <- v;
  trt.tf_n <- 0;
  sort_insts v n;
  n

let take_te (trt : task_rt) : int =
  let n = trt.te_n in
  let v = trt.te_v in
  trt.te_v <- trt.te_v2;
  trt.te_v2 <- v;
  trt.te_n <- 0;
  sort_insts v n;
  n

let take_tj (trt : task_rt) : int =
  let n = trt.tj_n in
  let v = trt.tj_v in
  trt.tj_v <- trt.tj_v2;
  trt.tj_v2 <- v;
  trt.tj_n <- 0;
  sort_insts v n;
  n

(* Phase-3 body, sequential flavor: everything fires inline, in the
   dense sweep's order.  Also used by the sharded coordinator for
   dynamic tasks (their slot arbitration is inherently serial). *)
let rec fire_nodes_any (sim : t) (ln : lane) (trt : task_rt)
    (inst : instance) (j : int) (nn : int) (any : bool) : bool =
  if j >= nn then any
  else
    let f = fire_node sim ln trt inst inst.if_v2.(j) in
    fire_nodes_any sim ln trt inst (j + 1) nn (any || f)

(* Dynamic-task flavor: at most [tiles] contexts issue datapath work
   per cycle, with the remaining slot count threaded through the
   recursion (a [ref] here would allocate every cycle). *)
let rec fire_dyn (sim : t) (ln : lane) (trt : task_rt) (k : int)
    (ni : int) (slots : int) : unit =
  if k < ni then begin
    let inst = trt.tf_v2.(k) in
    inst.i_qfire <- false;
    if not inst.live then begin
      ignore (take_fire_nodes inst);
      fire_dyn sim ln trt (k + 1) ni slots
    end
    else if slots = 0 then begin
      (* No tile this cycle: stay woken for the next one. *)
      inst.i_qfire <- true;
      trt.tf_v <- vpush trt.tf_v trt.tf_n inst;
      trt.tf_n <- trt.tf_n + 1;
      fire_dyn sim ln trt (k + 1) ni 0
    end
    else begin
      let nn = take_fire_nodes inst in
      ln.l_woken <- ln.l_woken + nn;
      let any = fire_nodes_any sim ln trt inst 0 nn false in
      fire_dyn sim ln trt (k + 1) ni (if any then slots - 1 else slots)
    end
  end

let fire_task_seq (sim : t) (ln : lane) (trt : task_rt) : unit =
  let ni = take_tf trt in
  if trt.tdynamic then fire_dyn sim ln trt 0 ni trt.tk.tiles
  else
    for k = 0 to ni - 1 do
      let inst = trt.tf_v2.(k) in
      inst.i_qfire <- false;
      if inst.live then begin
        let nn = take_fire_nodes inst in
        ln.l_woken <- ln.l_woken + nn;
        for j = 0 to nn - 1 do
          ignore (fire_node sim ln trt inst inst.if_v2.(j))
        done
      end
      else ignore (take_fire_nodes inst)
    done

(* Phase-3 body, lane flavor (static tasks only): datapath nodes fire
   in place; call/spawn/sync attempts — the only fires that touch
   other tasks' queues and contexts — are deferred verbatim for the
   coordinator to replay in task-id order. *)
let fire_task_lane (sim : t) (ln : lane) (trt : task_rt) : unit =
  let ni = take_tf trt in
  for k = 0 to ni - 1 do
    let inst = trt.tf_v2.(k) in
    inst.i_qfire <- false;
    if inst.live then begin
      let nn = take_fire_nodes inst in
      ln.l_woken <- ln.l_woken + nn;
      for j = 0 to nn - 1 do
        let n = inst.if_v2.(j) in
        match n.nr.kind with
        | G.CallChild _ | G.SpawnChild _ | G.SyncWait ->
          trt.td_inst <- vpush trt.td_inst trt.td_n inst;
          trt.td_node <- vpush trt.td_node trt.td_n n;
          trt.td_n <- trt.td_n + 1
        | _ -> ignore (fire_node sim ln trt inst n)
      done
    end
    else ignore (take_fire_nodes inst)
  done

let replay_deferred (sim : t) (trt : task_rt) : unit =
  let ln0 = sim.lanes.(0) in
  for i = 0 to trt.td_n - 1 do
    ignore (fire_node sim ln0 trt trt.td_inst.(i) trt.td_node.(i))
  done;
  trt.td_n <- 0

(* Phase-4 body: emission is instance-local, so lanes run it for all
   their tasks (including dynamic ones). *)
let emit_task (sim : t) (ln : lane) (trt : task_rt) : unit =
  let ni = take_te trt in
  for k = 0 to ni - 1 do
    let inst = trt.te_v2.(k) in
    inst.i_qemit <- false;
    let nn = take_emit_nodes inst in
    if inst.live then
      for j = 0 to nn - 1 do
        let n = inst.ie_v2.(j) in
        if try_emit sim ln inst n then begin
          ln.l_active <- true;
          (* Freed pipeline/memory slots may unblock the node's next
             firing; drained state feeds the completion check below. *)
          wake_fire sim inst n;
          wake_complete sim inst
        end
      done
  done

(* Phase 5: a child completing here can enable its parent's completion
   in the same cycle when the parent sits later in the sweep order —
   chase those wakes exactly as far as the dense sweep would have. *)
(* Partition tc_v[0, n) by i_ord > cursor: ready entries land in
   tc2[0..], later entries compact in place at tc_v[i - ready] (always
   at or before their origin, so in-place is safe).  Returns the ready
   count; the later count is n - ready. *)
let rec dc_partition (trt : task_rt) (cursor : int) (i : int) (n : int)
    (ready : int) : int =
  if i >= n then ready
  else begin
    let inst = trt.tc_v.(i) in
    if inst.i_ord > cursor then begin
      trt.tc2.(ready) <- inst;
      dc_partition trt cursor (i + 1) n (ready + 1)
    end
    else begin
      trt.tc_v.(i - ready) <- inst;
      dc_partition trt cursor (i + 1) n ready
    end
  end

(* Run completions over the sorted ready prefix; returns the last
   i_ord visited (the new cursor). *)
let rec dc_run (sim : t) (trt : task_rt) (i : int) (nready : int)
    (cursor : int) : int =
  if i >= nready then cursor
  else begin
    let inst = trt.tc2.(i) in
    inst.i_qcomplete <- false;
    if inst.live then try_complete sim trt inst;
    dc_run sim trt (i + 1) nready inst.i_ord
  end

let rec drain_complete (sim : t) (trt : task_rt) (cursor : int) : unit =
  let n = trt.tc_n in
  if n > 0 then begin
    if Array.length trt.tc2 < n then
      trt.tc2 <- Array.make (max 8 (n * 2)) dummy_inst;
    let nready = dc_partition trt cursor 0 n 0 in
    if nready > 0 then begin
      trt.tc_n <- n - nready;
      sort_insts trt.tc2 nready;
      let c = dc_run sim trt 0 nready cursor in
      drain_complete sim trt c
    end
  end

let merge_lanes (sim : t) : unit =
  for l = 0 to sim.njobs - 1 do
    let ln = sim.lanes.(l) in
    sim.fires <- sim.fires + ln.l_fires;
    ln.l_fires <- 0;
    sim.woken <- sim.woken + ln.l_woken;
    ln.l_woken <- 0;
    sim.ctrs.Ctr.syncs <- sim.ctrs.Ctr.syncs + ln.l_syncs;
    ln.l_syncs <- 0;
    if ln.l_active then begin
      sim.last_activity <- sim.now;
      ln.l_active <- false
    end
  done

(* Round-robin dispatch across a static task's tiles: a pipelined
   instance would otherwise accept every invocation and starve its
   replicas.  Returns whether anything was popped off the queue. *)
let rec rr_dispatch (sim : t) (trt : task_rt) (k : int) (n : int)
    (popped : bool) : bool =
  if k >= n then popped
  else begin
    let inst = trt.tinst.((trt.trr + k) mod n) in
    if tq_len trt > 0 && can_accept inst then begin
      let s = trt.tq_head land (Array.length trt.tq_rkind - 1) in
      trt.tq_head <- trt.tq_head + 1;
      inject sim trt inst s;
      trt.trr <- (trt.trr + k + 1) mod n;
      rr_dispatch sim trt (k + 1) n true
    end
    else rr_dispatch sim trt (k + 1) n popped
  end

let step (sim : t) : unit =
  let now = sim.now in
  let ntasks = Array.length sim.tasks in
  (* 0. always-on occupancy integrals (exact time-average and
     high-water depths, O(tasks + structures) per cycle, no
     allocation); ring samples additionally when tracing *)
  for i = 0 to ntasks - 1 do
    Ctr.occ_tick sim.otasks.(i) (tq_len sim.tasks.(i))
  done;
  for i = 0 to Array.length sim.ostructs - 1 do
    Ctr.occ_tick sim.ostructs.(i) (Memsys.struct_depth sim.ms i)
  done;
  (match sim.tr with
  | Some tr when now mod tr.Tr.sample_every = 0 ->
    Array.iter
      (fun trt ->
        Tr.occ_sample tr ~c:now (Tr.Ktask trt.tk.tid) (tq_len trt))
      sim.tasks;
    List.iter
      (fun (sid, depth) -> Tr.occ_sample tr ~c:now (Tr.Kstruct sid) depth)
      (Memsys.occupancy sim.ms)
  | _ -> ());
  drain_timed sim;
  (* 1. memory structures (completions notify waiting nodes) *)
  Memsys.step sim.ms ~now;
  (* 2. junction arbitration, only where sub-requests are queued *)
  for ti = 0 to ntasks - 1 do
    let trt = sim.tasks.(ti) in
    if trt.tj_n > 0 then begin
      let ni = take_tj trt in
      let w = sim.junction_width.(trt.tk.tid) in
      for k = 0 to ni - 1 do
        let inst = trt.tj_v2.(k) in
        inst.i_qjunction <- false;
        if inst.live then begin
          for _ = 1 to w do
            if inst.ij_tail - inst.ij_head > 0 then begin
              let s = inst.ij_head land (Array.length inst.ij_space - 1) in
              let space = inst.ij_space.(s) in
              let sr = inst.ij_sr.(s) in
              inst.ij_head <- inst.ij_head + 1;
              let rt = sim.ms.Memsys.space_of space in
              Memsys.enqueue sim.ms rt sr;
              sim.last_activity <- now;
              wake_complete sim inst
            end
          done;
          if inst.ij_tail - inst.ij_head > 0 then wake_junction sim inst
        end
      done
    end
  done;
  (* 3. fire phase over woken nodes *)
  (match sim.dpool with
  | Some p when sim.njobs > 1 ->
    (* 3a. lanes fire their static tasks' datapath, deferring
       call/spawn/sync; 3b. the coordinator replays the deferred
       fires and runs dynamic tasks, in task-id order. *)
    Dpool.run p (fun l ->
        let ln = sim.lanes.(l) in
        let tid = ref l in
        while !tid < ntasks do
          let trt = sim.tasks.(!tid) in
          if (not trt.tdynamic) && trt.tf_n > 0 then fire_task_lane sim ln trt;
          tid := !tid + sim.njobs
        done);
    for tid = 0 to ntasks - 1 do
      let trt = sim.tasks.(tid) in
      if trt.tdynamic then begin
        if trt.tf_n > 0 then fire_task_seq sim sim.lanes.(0) trt
      end
      else if trt.td_n > 0 then replay_deferred sim trt
    done
  | _ ->
    for ti = 0 to ntasks - 1 do
      let trt = sim.tasks.(ti) in
      if trt.tf_n > 0 then fire_task_seq sim sim.lanes.(0) trt
    done);
  (* utilization sweep: a task was busy if anything of it fired *)
  for ti = 0 to ntasks - 1 do
    let trt = sim.tasks.(ti) in
    if trt.t_fired_now then begin
      trt.tbusy <- trt.tbusy + 1;
      trt.t_fired_now <- false
    end
  done;
  (* 4. emission phase over woken nodes *)
  (match sim.dpool with
  | Some p when sim.njobs > 1 ->
    Dpool.run p (fun l ->
        let ln = sim.lanes.(l) in
        let tid = ref l in
        while !tid < ntasks do
          let trt = sim.tasks.(!tid) in
          if trt.te_n > 0 then emit_task sim ln trt;
          tid := !tid + sim.njobs
        done)
  | _ ->
    for ti = 0 to ntasks - 1 do
      let trt = sim.tasks.(ti) in
      if trt.te_n > 0 then emit_task sim sim.lanes.(0) trt
    done);
  merge_lanes sim;
  (* 5. completions, only on instances whose state moved *)
  for ti = 0 to ntasks - 1 do
    let trt = sim.tasks.(ti) in
    if trt.tc_n > 0 then drain_complete sim trt min_int
  done;
  (* 6. dispatch *)
  for ti = 0 to ntasks - 1 do
    let trt = sim.tasks.(ti) in
    if tq_len trt > 0 then
      if trt.tdynamic then
        (* every queued message becomes a fresh context *)
        while tq_len trt > 0 do
          let s = trt.tq_head land (Array.length trt.tq_rkind - 1) in
          trt.tq_head <- trt.tq_head + 1;
          let inst = acquire_instance sim trt in
          inst.i_ord <- trt.t_next_ord;
          (* newest contexts first, so recursion runs depth-first *)
          trt.t_next_ord <- trt.t_next_ord - 1;
          inject sim trt inst s
        done
      else begin
        let popped = rr_dispatch sim trt 0 trt.tinst_n false in
        (* Queue space freed: parked callers can try again. *)
        if popped && trt.tw_n > 0 then begin
          let nw = trt.tw_n in
          trt.tw_n <- 0;
          for i = 0 to nw - 1 do
            let wn = trt.tw_node.(i) in
            wn.nr_wait_child <- false;
            wake_fire sim trt.tw_inst.(i) wn
          done
        end
      end
  done;
  (* 7. commit staged channel writes (dirty channels only), in lane
     order — the per-channel transfer is independent, so any fixed
     order is deterministic *)
  for l = 0 to sim.njobs - 1 do
    let ln = sim.lanes.(l) in
    for i = 0 to ln.ld_n - 1 do
      let f = ln.ld_v.(i) in
      f.f_dirty <- false;
      if f.ftail - f.fmid > 0 then begin
        f.fmid <- f.ftail;
        (* Fresh tokens: the consumer may be able to fire. *)
        match f.f_dst with
        | Some (di, dn) -> wake_fire sim di dn
        | None -> ()
      end
    done;
    ln.ld_n <- 0
  done;
  sim.node_cycles <- sim.node_cycles + sim.live_nodes;
  sim.now <- now + 1

(** Pre-load cycles for DMA into scratchpads (8 words per cycle). *)
let dma_cycles (c : G.circuit) : int =
  let scratch_words =
    List.fold_left
      (fun acc (g : Muir_ir.Program.global) ->
        match List.assoc_opt g.gspace c.space_map with
        | Some sid -> (
          match (G.structure c sid).shape with
          | G.Scratchpad _ -> acc + g.gsize
          | G.Cache _ -> acc)
        | None -> acc)
      0 c.prog.globals
  in
  (scratch_words + 7) / 8

let diagnose (sim : t) : string =
  let buf = Buffer.create 256 in
  Array.iter
    (fun trt ->
      Buffer.add_string buf
        (Fmt.str "task %s: %d queued, %d invocations, %d instances@."
           trt.tk.tname (tq_len trt) trt.tinvocations trt.tinst_n);
      for k = 0 to trt.tinst_n - 1 do
        let inst = trt.tinst.(k) in
        if inst.live && inst.i_count > 0 then begin
          Buffer.add_string buf
            (Fmt.str "task %s#%d: %d inflight, lo=%d next=%d@." trt.tk.tname
               inst.iid inst.i_count inst.i_lo inst.next_wave);
          Array.iter
            (fun (n : node_rt) ->
              let in_state =
                Array.to_list
                  (Array.map
                     (function
                       | None -> "imm"
                       | Some (f : fifo) -> string_of_int (f.fmid - f.fhead))
                     n.nr_in)
              in
              let out_state =
                Array.to_list
                  (Array.map
                     (fun fs ->
                       String.concat "/"
                         (List.map
                            (fun (f : fifo) ->
                              Fmt.str "%d(%d)" (f.fmid - f.fhead) f.fcap)
                            (Array.to_list fs)))
                     n.nr_out)
              in
              Buffer.add_string buf
                (Fmt.str
                   "  n%d %s fired=%d pipe=%d mem=%d next=%d sync=%d in=[%s] out=[%s]@."
                   n.nr.nid
                   (Muir_core.Graph.kind_to_string n.nr.kind)
                   n.nr_fired
                   (n.np_tail - n.np_head)
                   (n.nm_tail - n.nm_head)
                   n.nr_next_resp
                   (n.ns_tail - n.ns_head)
                   (String.concat ";" in_state)
                   (String.concat ";" out_state)))
            inst.inodes
        end
      done)
    sim.tasks;
  Buffer.contents buf

(** Run the circuit's root task with [args] to completion.  Returns
    the root's return value, the final memory, statistics, and the
    always-on performance-counter bank (exact fires, per-cause stall
    cycles and occupancy integrals — maintained whether or not a
    tracer is attached).  [?tracer] additionally streams timeline
    events into a [Muir_trace.Trace.t]; tracing is strictly passive,
    so cycle counts, stats and counters are identical with it on or
    off.  [?jobs] > 1 shards the fire and emit phases across an
    OCaml-5 domain pool; results are bit-identical for every job
    count (a tracer forces [jobs = 1], since the event ring is not
    sharded). *)
let run ?tracer ?(args = []) ?(max_cycles = 20_000_000)
    ?(deadlock_window = 50_000) ?(jobs = 1) (c : G.circuit) : result =
  let t_start = Unix.gettimeofday () in
  let jobs = match tracer with Some _ -> 1 | None -> max 1 jobs in
  (* The steady-state kernel is allocation-free, but instance-pool
     warm-up (deep spawn recursion) allocates in bursts.  A default
     256k-word minor heap promotes those bursts straight to the major
     heap and triggers full collections mid-run; run under a roomier
     nursery and restore the caller's sizing afterwards. *)
  let gc_ctrl = Gc.get () in
  if gc_ctrl.Gc.minor_heap_size < 2_097_152 then
    Gc.set { gc_ctrl with Gc.minor_heap_size = 2_097_152 };
  let sim = create ?tracer ~jobs c in
  if sim.njobs > 1 then sim.dpool <- Some (Dpool.create sim.njobs);
  Fun.protect
    ~finally:(fun () ->
      if gc_ctrl.Gc.minor_heap_size < 2_097_152 then Gc.set gc_ctrl;
      match sim.dpool with
      | Some p ->
        sim.dpool <- None;
        Dpool.shutdown p
      | None -> ())
  @@ fun () ->
  let root = sim.tasks.(c.root) in
  let root_ctx =
    { live_children = 0; cx_owner = None; cx_w_inst = [||]; cx_w_node = [||];
      cx_nw = 0 }
  in
  let s =
    tq_push root ~ctx:root_ctx ~rkind:0 ~rinst:dummy_inst ~rnode:dummy_node
      ~rwave:0 ~rctx:root_ctx
  in
  let base = s * max root.t_arity 1 in
  for i = 0 to root.t_arity - 1 do
    root.tq_tags.(base + i) <- F.tpoison;
    root.tq_nums.(base + i) <- 0;
    root.tq_flts.(base + i) <- 0.0;
    root.tq_objs.(base + i) <- F.no_obj
  done;
  List.iteri
    (fun i v ->
      if i < root.t_arity then begin
        root.tq_tags.(base + i) <- F.tag_of v;
        root.tq_nums.(base + i) <- F.num_of v;
        root.tq_flts.(base + i) <- F.flt_of v;
        root.tq_objs.(base + i) <- F.obj_of v
      end)
    (T.VBool true :: args);
  (* GC evidence: sample the minor-heap allocation counter every 4096
     cycles; the steady-state rate is measured over the second half of
     the run, past the construction warm-up. *)
  let gc0 = Gc.quick_stat () in
  let samples = ref (Array.make 64 0.0) in
  let nsamples = ref 0 in
  let push_sample () =
    if !nsamples = Array.length !samples then begin
      let nv = Array.make (!nsamples * 2) 0.0 in
      Array.blit !samples 0 nv 0 !nsamples;
      samples := nv
    end;
    !samples.(!nsamples) <- Gc.minor_words ();
    incr nsamples
  in
  push_sample ();
  while (not sim.root_done) && sim.now < max_cycles do
    if sim.now - sim.last_activity > deadlock_window then
      raise
        (Deadlock
           (Fmt.str "no progress for %d cycles at cycle %d:@.%s"
              deadlock_window sim.now (diagnose sim)));
    step sim;
    if sim.now land 4095 = 0 then push_sample ()
  done;
  if not sim.root_done then raise (Cycle_limit max_cycles);
  (* Close the books: fold every still-live instance's accounting into
     the whole-run counter bank. *)
  sim.ctrs.Ctr.final_cycle <- sim.now;
  (match sim.tr with
  | Some tr -> tr.Tr.final_cycle <- sim.now
  | None -> ());
  Array.iter
    (fun trt ->
      for k = 0 to trt.tinst_n - 1 do
        let inst = trt.tinst.(k) in
        if inst.live then begin
          let ip = inst.i_prof in
          Array.iteri
            (fun i np ->
              let n = inst.inodes.(i) in
              Ctr.fold sim.ctrs ~task:inst.it.tid ~node:n.nr.G.nid
                ~fires:n.nr_fired ~born:ip.born ~upto:sim.now np)
            ip.Tr.Prof.nprofs
        end
      done)
    sim.tasks;
  let gc1 = Gc.quick_stat () in
  let gc_rate =
    if !nsamples >= 4 then begin
      let lo = !nsamples / 2 in
      let dw = !samples.(!nsamples - 1) -. !samples.(lo) in
      let dc = float_of_int ((!nsamples - 1 - lo) * 4096) in
      if dc > 0.0 then dw /. dc else 0.0
    end
    else if sim.now > 0 then
      (Gc.minor_words () -. !samples.(0)) /. float_of_int sim.now
    else 0.0
  in
  let value = sim.root_val in
  let dma = dma_cycles c in
  let wall = Unix.gettimeofday () -. t_start in
  (* Derived rates must stay printable on degenerate runs: a zero-cycle
     program or a wall-clock too small to resolve would otherwise put
     nan/inf into profiles and machine-read reports. *)
  let finite f = if Float.is_finite f then f else 0.0 in
  let per_cycle total =
    if sim.now = 0 then 0.0
    else finite (float_of_int total /. float_of_int sim.now)
  in
  { value;
    memory = sim.ms.Memsys.mem;
    counters = sim.ctrs;
    stats =
      { cycles = sim.now; dma_cycles = dma; total_cycles = sim.now + dma;
        fires = sim.fires;
        invocations =
          Array.to_list
            (Array.map (fun trt -> (trt.tk.tname, trt.tinvocations)) sim.tasks);
        utilization =
          Array.to_list
            (Array.map
               (fun trt ->
                 ( trt.tk.tname,
                   if sim.now = 0 then 0.0
                   else float_of_int trt.tbusy /. float_of_int sim.now ))
               sim.tasks);
        mem = Memsys.stats sim.ms;
        mem_requests = sim.ms.Memsys.total_requests;
        wall_seconds = wall;
        cycles_per_sec =
          (if wall > 0.0 then finite (float_of_int sim.now /. wall) else 0.0);
        woken_per_cycle = per_cycle sim.woken;
        live_nodes_per_cycle = per_cycle sim.node_cycles;
        gc_minor_words_per_cycle = finite gc_rate;
        gc_major_collections =
          gc1.Gc.major_collections - gc0.Gc.major_collections } }
