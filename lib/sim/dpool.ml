(** A persistent pool of OCaml 5 domains for the sharded simulator.

    The simulator's sharded mode fans the fire and emit phases out
    across lanes every cycle, so the dispatch latency of the pool is
    on the critical path: spawning domains (or even an uncontended
    futex round-trip) per cycle would dwarf the work.  This pool
    spawns its worker domains once and parks them in a hybrid
    barrier: a bounded spin for the common case where every executor
    has its own core, falling back to a mutex/condition-variable
    sleep so a loaded machine degrades to blocking handoff instead of
    livelocking the scheduler.

    Lanes are logical, executors are physical: the pool never spawns
    more domains than the machine has cores, and each executor runs
    its strided share of lanes in ascending order.  Lane-sharded work
    is independent by construction, so the lane→executor mapping —
    including the degenerate single-core case, where the coordinator
    simply runs every lane itself with no barrier at all — cannot
    change results, only wall time.

    Publication safety: the plain [job] and [quit] fields are written
    before the release increment of [go] and read after the acquire
    load, so workers always observe the coordinator's writes (the
    OCaml memory model orders plain accesses across atomics). *)

type t = {
  n : int;                   (** logical lanes *)
  nexec : int;               (** executors, including the coordinator *)
  mutable job : int -> unit; (** current phase body, indexed by lane *)
  go : int Atomic.t;         (** generation counter *)
  arrived : int Atomic.t;    (** workers finished with this generation *)
  m : Mutex.t;
  cv_go : Condition.t;       (** workers park here between phases *)
  cv_done : Condition.t;     (** coordinator parks here for stragglers *)
  mutable exn : exn option;  (** first worker exception, re-raised by
                                 the coordinator after the barrier *)
  mutable quit : bool;
  mutable doms : unit Domain.t array;
}

(* Spins before falling back to blocking.  Small: on a machine with a
   core per executor the flag flips within a few iterations; anywhere
   else spinning only steals cycles from the lane we are waiting on. *)
let spin_budget = 2000

let run_lanes (p : t) (e : int) : unit =
  let l = ref e in
  while !l < p.n do
    p.job !l;
    l := !l + p.nexec
  done

let worker (p : t) (e : int) : unit =
  let seen = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    let spins = ref 0 in
    while Atomic.get p.go = !seen && !spins < spin_budget do
      Domain.cpu_relax ();
      incr spins
    done;
    if Atomic.get p.go = !seen then begin
      Mutex.lock p.m;
      while Atomic.get p.go = !seen do
        Condition.wait p.cv_go p.m
      done;
      Mutex.unlock p.m
    end;
    seen := Atomic.get p.go;
    if p.quit then continue_ := false
    else begin
      (try run_lanes p e with ex -> p.exn <- Some ex);
      Atomic.incr p.arrived;
      (* The coordinator may already be asleep waiting for us. *)
      Mutex.lock p.m;
      Condition.signal p.cv_done;
      Mutex.unlock p.m
    end
  done

(** A pool serving [n] logical lanes.  The calling domain is executor
    0; up to [recommended_domain_count - 1] further domains are
    spawned.  [n <= 1] (or a single-core machine) spawns nothing and
    {!run} degenerates to plain calls. *)
let create (n : int) : t =
  let n = max n 1 in
  let nexec = max 1 (min n (Domain.recommended_domain_count ())) in
  let p =
    { n; nexec; job = (fun _ -> ()); go = Atomic.make 0;
      arrived = Atomic.make 0; m = Mutex.create ();
      cv_go = Condition.create (); cv_done = Condition.create ();
      exn = None; quit = false; doms = [||] }
  in
  if nexec > 1 then
    p.doms <-
      Array.init (nexec - 1) (fun i ->
          Domain.spawn (fun () -> worker p (i + 1)));
  p

let release (p : t) : unit =
  Mutex.lock p.m;
  Atomic.incr p.go;
  Condition.broadcast p.cv_go;
  Mutex.unlock p.m

(** Run [job lane] for every lane 0..n-1 and wait for all of them.
    The coordinator takes the executor-0 share. *)
let run (p : t) (job : int -> unit) : unit =
  if Array.length p.doms = 0 then
    for l = 0 to p.n - 1 do
      job l
    done
  else begin
    p.exn <- None;
    p.job <- job;
    Atomic.set p.arrived 0;
    release p;
    let mine = (try run_lanes p 0; None with ex -> Some ex) in
    let spins = ref 0 in
    while Atomic.get p.arrived < p.nexec - 1 && !spins < spin_budget do
      Domain.cpu_relax ();
      incr spins
    done;
    if Atomic.get p.arrived < p.nexec - 1 then begin
      Mutex.lock p.m;
      while Atomic.get p.arrived < p.nexec - 1 do
        Condition.wait p.cv_done p.m
      done;
      Mutex.unlock p.m
    end;
    (match p.exn with Some e -> raise e | None -> ());
    (match mine with Some e -> raise e | None -> ())
  end

(** Release the workers for good and join them. *)
let shutdown (p : t) : unit =
  if Array.length p.doms > 0 then begin
    p.quit <- true;
    release p;
    Array.iter Domain.join p.doms;
    p.doms <- [||]
  end
