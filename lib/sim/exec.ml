(** Functional evaluation of μIR node opcodes on tokens.  Shares the
    arithmetic core with the golden interpreter via
    {!Muir_ir.Eval}, so the simulator cannot drift semantically.

    Two surfaces: the boxed [compute]/[fused]/[merge]/[tensor]
    functions (reference semantics, used by tests and as the slow
    path), and the flat scratch-column ALU ({!sc}, {!compute_sc}, …)
    the kernel's zero-allocation fire path runs on.  The flat paths
    execute on native ints and unboxed floats behind range guards and
    fall back to materializing + the boxed functions whenever a result
    could diverge from the [int64] semantics — so both surfaces are
    bit-identical by construction. *)

module G = Muir_core.Graph
module T = Muir_ir.Types
module E = Muir_ir.Eval
module I = Muir_ir.Instr
module F = Muir_ir.Flat

type token = T.value

let poisoned args = List.exists T.is_poison args

(** Control-token truth: predicates and steer selectors. *)
let truthy (v : token) =
  match v with
  | T.VBool b -> b
  | T.VInt i -> not (Int64.equal i 0L)
  | _ -> false

(** Address/stride tokens as machine integers (poison maps to 0; the
    predicate gates such accesses off before they reach memory). *)
let to_int (v : token) : int =
  match v with
  | T.VInt i -> Int64.to_int i
  | T.VBool true -> 1
  | T.VBool false -> 0
  | _ -> 0

(** Arity of a scalar opcode (operands actually consumed; any further
    inputs are ordering/trigger tokens whose values are ignored). *)
let fu_arity : G.fu_op -> int = function
  | Fibin _ | Ffbin _ | Ficmp _ | Ffcmp _ | Fgep _ -> 2
  | Ffunary _ | Fcast _ | Fident -> 1
  | Fselect -> 3

let rec take k = function
  | [] -> []
  | x :: rest -> if k = 0 then [] else x :: take (k - 1) rest

let compute (op : G.fu_op) (args : token list) : token =
  let args = take (fu_arity op) args in
  if poisoned args then T.VPoison
  else
    match op, args with
    | G.Fibin o, [ a; b ] -> T.VInt (E.ibin o (T.as_int a) (T.as_int b))
    | G.Ffbin o, [ a; b ] -> T.VFloat (E.fbin o (T.as_float a) (T.as_float b))
    | G.Ficmp o, [ a; b ] -> T.VBool (E.icmp o (T.as_int a) (T.as_int b))
    | G.Ffcmp o, [ a; b ] ->
      T.VBool (E.fcmp o (T.as_float a) (T.as_float b))
    | G.Ffunary o, [ a ] -> T.VFloat (E.funary o (T.as_float a))
    | G.Fcast o, [ a ] -> E.cast o a
    | G.Fselect, [ c; a; b ] -> if T.truth c then a else b
    | G.Fgep s, [ base; idx ] ->
      T.VInt (Int64.add (T.as_int base) (Int64.mul (T.as_int idx)
                (Int64.of_int s)))
    | G.Fident, [ a ] -> a
    | _ -> invalid_arg "Exec.compute: arity mismatch"

(** A fused chain: the first opcode consumes its operands from the
    head of [args]; each later opcode consumes the running result as
    its first operand plus further tokens from [args]. *)
let fused (ops : G.fu_op list) (args : token list) : token =
  match ops with
  | [] -> invalid_arg "Exec.fused: empty chain"
  | first :: rest ->
    let k0 = fu_arity first in
    let acc = compute first (take k0 args) in
    let rec go acc args = function
      | [] -> acc
      | op :: more ->
        let extra = fu_arity op - 1 in
        let acc' = compute op (acc :: take extra args) in
        go acc'
          (List.filteri (fun i _ -> i >= extra) args)
          more
    in
    go acc (List.filteri (fun i _ -> i >= k0) args) rest

(** Merge: pick the value whose predicate fired. *)
let merge (k : int) (args : token array) : token =
  let rec find i =
    if i >= k then T.VPoison
    else
      match args.(i) with
      | T.VBool true -> args.(k + i)
      | T.VInt v when not (Int64.equal v 0L) -> args.(k + i)
      | _ -> find (i + 1)
  in
  find 0

let tensor (top : G.tensor_op) (args : token list) : token =
  if poisoned args then T.VPoison
  else
    match top, args with
    | G.Tmul2, [ T.VTensor a; T.VTensor b ] ->
      let n = int_of_float (Float.sqrt (float_of_int (Array.length a))) in
      T.VTensor (E.tensor_mul { rows = n; cols = n } a b)
    | G.Tadd2, [ T.VTensor a; T.VTensor b ] -> T.VTensor (E.tensor_add a b)
    | G.Trelu2, [ T.VTensor a ] -> T.VTensor (E.tensor_relu a)
    | _ -> invalid_arg "Exec.tensor: bad operands"

(* ------------------------------------------------------------------ *)
(* Flat scratch-column ALU                                             *)

(** The kernel's operand scratchpad: one row per input port in the
    {!Muir_ir.Flat} encoding, plus a result row.  The result float
    lives in a one-element float array (a mutable float field of a
    mixed record would box on every store). *)
type sc = {
  stags : int array;
  snums : int array;
  sflts : float array;
  sobjs : token array;
  mutable rtag : int;
  mutable rnum : int;
  rflt : float array;   (* length 1 *)
  mutable robj : token;
}

let make_sc ~(slots : int) : sc =
  let n = max slots 8 in
  { stags = Array.make n F.tabsent; snums = Array.make n 0;
    sflts = Array.make n 0.0; sobjs = Array.make n F.no_obj;
    rtag = F.tabsent; rnum = 0; rflt = [| 0.0 |]; robj = F.no_obj }

(* Raised (preallocated, no payload) when a fast path cannot guarantee
   bit-identity with the boxed semantics. *)
exception Slow

let rec any_poison (tags : int array) (off : int) (k : int) : bool =
  k > 0 && (tags.(off) = F.tpoison || any_poison tags (off + 1) (k - 1))

(* Native-int guards: operands within +/-2^30 keep every ibin result
   (products included) inside the 63-bit native range AND equal to the
   64-bit result, so native arithmetic is exact. *)
let small (x : int) = x >= -0x40000000 && x < 0x40000000
let int_like (t : int) = t = F.tint || t = F.ttrue || t = F.tfalse

let ival (sc : sc) (i : int) : int =
  let t = sc.stags.(i) in
  if t = F.tint then sc.snums.(i) else if t = F.ttrue then 1 else 0

(** Normalize arg [i] to a float in [sflts.(i)] ([as_float] semantics
    for the cases a fast path may handle); raises {!Slow} otherwise. *)
let norm_float (sc : sc) (i : int) : unit =
  let t = sc.stags.(i) in
  if t = F.tfloat then ()
  else if t = F.tint then sc.sflts.(i) <- float_of_int sc.snums.(i)
  else if t = F.ttrue then sc.sflts.(i) <- 1.0
  else if t = F.tfalse then sc.sflts.(i) <- 0.0
  else if t = F.tobj then
    match sc.sobjs.(i) with
    | T.VInt v -> sc.sflts.(i) <- Int64.to_float v
    | _ -> raise Slow
  else raise Slow

let set_poison (sc : sc) : unit =
  sc.rtag <- F.tpoison;
  sc.robj <- F.no_obj

let set_result (sc : sc) (v : token) : unit =
  sc.rtag <- F.tag_of v;
  sc.rnum <- F.num_of v;
  sc.rflt.(0) <- F.flt_of v;
  sc.robj <- F.obj_of v

let copy_to_result (sc : sc) (j : int) : unit =
  sc.rtag <- sc.stags.(j);
  sc.rnum <- sc.snums.(j);
  sc.rflt.(0) <- sc.sflts.(j);
  sc.robj <- sc.sobjs.(j)

(** Materialize row [i] back to a boxed token (slow paths only). *)
let slot_value (sc : sc) (i : int) : token =
  F.materialize sc.stags.(i) sc.snums.(i) sc.sflts.(i) sc.sobjs.(i)

let rec slot_values (sc : sc) (off : int) (k : int) : token list =
  if k = 0 then [] else slot_value sc off :: slot_values sc (off + 1) (k - 1)

let slow_compute (sc : sc) (op : G.fu_op) (off : int) (argc : int) : unit =
  set_result sc (compute op (slot_values sc off argc))

(** Evaluate [op] over rows [off .. off+argc-1], result into the [r]
    fields.  Bit-identical to [compute] on the materialized rows. *)
let compute_sc (sc : sc) (op : G.fu_op) (off : int) (argc : int) : unit =
  let k = fu_arity op in
  if argc < k then slow_compute sc op off argc
  else if any_poison sc.stags off k then set_poison sc
  else
    try
      match op with
      | G.Fibin o ->
        if not (int_like sc.stags.(off) && int_like sc.stags.(off + 1)) then
          raise Slow;
        let a = ival sc off and b = ival sc (off + 1) in
        if not (small a && small b) then raise Slow;
        let r =
          match o with
          | I.Add -> a + b
          | I.Sub -> a - b
          | I.Mul -> a * b
          | I.Sdiv -> if b = 0 then 0 else a / b
          | I.Srem -> if b = 0 then 0 else a mod b
          | I.And -> a land b
          | I.Or -> a lor b
          | I.Xor -> a lxor b
          | I.Shl ->
            let s = b land 63 in
            if s <= 32 then a lsl s else raise Slow
          | I.Lshr -> if a >= 0 then a lsr (b land 63) else raise Slow
          | I.Ashr -> a asr (b land 63)
        in
        sc.rtag <- F.tint;
        sc.rnum <- r;
        sc.robj <- F.no_obj
      | G.Ficmp o ->
        if not (int_like sc.stags.(off) && int_like sc.stags.(off + 1)) then
          raise Slow;
        let a = ival sc off and b = ival sc (off + 1) in
        let r =
          match o with
          | I.Eq -> a = b
          | I.Ne -> a <> b
          | I.Slt -> a < b
          | I.Sle -> a <= b
          | I.Sgt -> a > b
          | I.Sge -> a >= b
        in
        sc.rtag <- (if r then F.ttrue else F.tfalse);
        sc.robj <- F.no_obj
      | G.Ffbin o ->
        norm_float sc off;
        norm_float sc (off + 1);
        let a = sc.sflts.(off) and b = sc.sflts.(off + 1) in
        sc.rflt.(0) <-
          (match o with
          | I.Fadd -> a +. b
          | I.Fsub -> a -. b
          | I.Fmul -> a *. b
          | I.Fdiv -> a /. b);
        sc.rtag <- F.tfloat;
        sc.robj <- F.no_obj
      | G.Ffcmp o ->
        norm_float sc off;
        norm_float sc (off + 1);
        let a = sc.sflts.(off) and b = sc.sflts.(off + 1) in
        let r =
          match o with
          | I.Foeq -> a = b
          | I.Fone -> a <> b
          | I.Folt -> a < b
          | I.Fole -> a <= b
          | I.Fogt -> a > b
          | I.Foge -> a >= b
        in
        sc.rtag <- (if r then F.ttrue else F.tfalse);
        sc.robj <- F.no_obj
      | G.Ffunary o ->
        norm_float sc off;
        let a = sc.sflts.(off) in
        sc.rflt.(0) <-
          (match o with
          | I.Fneg -> -.a
          | I.Fexp -> Float.exp a
          | I.Fsqrt -> Float.sqrt a
          | I.Fabs -> Float.abs a);
        sc.rtag <- F.tfloat;
        sc.robj <- F.no_obj
      | G.Fcast c -> (
        let t = sc.stags.(off) in
        match c with
        | I.Sitofp ->
          if not (int_like t) then raise Slow;
          sc.rflt.(0) <- float_of_int (ival sc off);
          sc.rtag <- F.tfloat;
          sc.robj <- F.no_obj
        | I.Fptosi ->
          if t <> F.tfloat then raise Slow;
          let f = sc.sflts.(off) in
          (* In +/-4e18 the native truncation equals Int64.of_float;
             NaN fails both comparisons and takes the slow path. *)
          if not (f > -4.0e18 && f < 4.0e18) then raise Slow;
          sc.rnum <- int_of_float f;
          sc.rtag <- F.tint;
          sc.robj <- F.no_obj
        | I.Zext _ ->
          if not (int_like t) then raise Slow;
          sc.rnum <- ival sc off;
          sc.rtag <- F.tint;
          sc.robj <- F.no_obj
        | I.Trunc w ->
          if t = F.ttrue || t = F.tfalse then copy_to_result sc off
          else if t = F.tint && w >= 1 && w <= 62 then begin
            sc.rnum <- sc.snums.(off) land ((1 lsl w) - 1);
            sc.rtag <- F.tint;
            sc.robj <- F.no_obj
          end
          else raise Slow)
      | G.Fselect ->
        let t = sc.stags.(off) in
        if t = F.ttrue then copy_to_result sc (off + 1)
        else if t = F.tfalse then copy_to_result sc (off + 2)
        else if t = F.tint then
          copy_to_result sc (if sc.snums.(off) <> 0 then off + 1 else off + 2)
        else raise Slow
      | G.Fgep s ->
        if not (int_like sc.stags.(off) && int_like sc.stags.(off + 1)) then
          raise Slow;
        let base = ival sc off and idx = ival sc (off + 1) in
        if not (small base && small idx && small s) then raise Slow;
        sc.rnum <- base + (idx * s);
        sc.rtag <- F.tint;
        sc.robj <- F.no_obj
      | G.Fident -> copy_to_result sc off
    with Slow -> slow_compute sc op off k

(* Top-level recursion (not a local closure, which would allocate). *)
let rec fused_go (sc : sc) (ops : G.fu_op list) (argc : int) (cur : int) :
    unit =
  match ops with
  | [] -> ()
  | op :: rest ->
    let extra = fu_arity op - 1 in
    let avail = max 0 (min extra (argc - cur)) in
    let ch = argc in
    sc.stags.(ch) <- sc.rtag;
    sc.snums.(ch) <- sc.rnum;
    sc.sflts.(ch) <- sc.rflt.(0);
    sc.sobjs.(ch) <- sc.robj;
    for j = 0 to avail - 1 do
      let s = cur + j in
      sc.stags.(ch + 1 + j) <- sc.stags.(s);
      sc.snums.(ch + 1 + j) <- sc.snums.(s);
      sc.sflts.(ch + 1 + j) <- sc.sflts.(s);
      sc.sobjs.(ch + 1 + j) <- sc.sobjs.(s)
    done;
    compute_sc sc op ch (1 + avail);
    fused_go sc rest argc (cur + extra)

(** Fused chain over rows [0 .. argc-1]; mirrors [fused], using rows
    [argc ..] as the chain scratch (the scratchpad is sized for it). *)
let fused_sc (sc : sc) (ops : G.fu_op list) (argc : int) : unit =
  match ops with
  | [] -> invalid_arg "Exec.fused: empty chain"
  | first :: rest ->
    compute_sc sc first 0 argc;
    fused_go sc rest argc (fu_arity first)

let rec merge_find (sc : sc) (k : int) (argc : int) (i : int) : unit =
  if i >= k then set_poison sc
  else
    let pick =
      let t = sc.stags.(i) in
      if t = F.ttrue then true
      else if t = F.tint then sc.snums.(i) <> 0
      else if t = F.tobj then
        match sc.sobjs.(i) with
        | T.VInt v -> not (Int64.equal v 0L)
        | _ -> false
      else false
    in
    if pick then
      if k + i < argc then copy_to_result sc (k + i)
      else invalid_arg "index out of bounds"
    else merge_find sc k argc (i + 1)

(** Merge over rows [0 .. argc-1] ([k] predicates then [k] values);
    mirrors [merge]. *)
let merge_sc (sc : sc) (k : int) (argc : int) : unit =
  merge_find sc k argc 0

(* ------------------------------------------------------------------ *)
(* Flat control-token helpers (same semantics as truthy / to_int)      *)

let truthy_flat (tag : int) (num : int) (obj : token) : bool =
  if tag = F.ttrue then true
  else if tag = F.tint then num <> 0
  else if tag = F.tobj then
    match obj with T.VInt i -> not (Int64.equal i 0L) | _ -> false
  else false

let to_int_flat (tag : int) (num : int) (obj : token) : int =
  if tag = F.tint then num
  else if tag = F.ttrue then 1
  else if tag = F.tobj then
    match obj with T.VInt i -> Int64.to_int i | _ -> 0
  else 0
