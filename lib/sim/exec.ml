(** Functional evaluation of μIR node opcodes on tokens.  Shares the
    arithmetic core with the golden interpreter via
    {!Muir_ir.Eval}, so the simulator cannot drift semantically. *)

module G = Muir_core.Graph
module T = Muir_ir.Types
module E = Muir_ir.Eval

type token = T.value

let poisoned args = List.exists T.is_poison args

(** Control-token truth: predicates and steer selectors. *)
let truthy (v : token) =
  match v with
  | T.VBool b -> b
  | T.VInt i -> not (Int64.equal i 0L)
  | _ -> false

(** Address/stride tokens as machine integers (poison maps to 0; the
    predicate gates such accesses off before they reach memory). *)
let to_int (v : token) : int =
  match v with
  | T.VInt i -> Int64.to_int i
  | T.VBool true -> 1
  | T.VBool false -> 0
  | _ -> 0

(** Arity of a scalar opcode (operands actually consumed; any further
    inputs are ordering/trigger tokens whose values are ignored). *)
let fu_arity : G.fu_op -> int = function
  | Fibin _ | Ffbin _ | Ficmp _ | Ffcmp _ | Fgep _ -> 2
  | Ffunary _ | Fcast _ | Fident -> 1
  | Fselect -> 3

let rec take k = function
  | [] -> []
  | x :: rest -> if k = 0 then [] else x :: take (k - 1) rest

let compute (op : G.fu_op) (args : token list) : token =
  let args = take (fu_arity op) args in
  if poisoned args then T.VPoison
  else
    match op, args with
    | G.Fibin o, [ a; b ] -> T.VInt (E.ibin o (T.as_int a) (T.as_int b))
    | G.Ffbin o, [ a; b ] -> T.VFloat (E.fbin o (T.as_float a) (T.as_float b))
    | G.Ficmp o, [ a; b ] -> T.VBool (E.icmp o (T.as_int a) (T.as_int b))
    | G.Ffcmp o, [ a; b ] ->
      T.VBool (E.fcmp o (T.as_float a) (T.as_float b))
    | G.Ffunary o, [ a ] -> T.VFloat (E.funary o (T.as_float a))
    | G.Fcast o, [ a ] -> E.cast o a
    | G.Fselect, [ c; a; b ] -> if T.truth c then a else b
    | G.Fgep s, [ base; idx ] ->
      T.VInt (Int64.add (T.as_int base) (Int64.mul (T.as_int idx)
                (Int64.of_int s)))
    | G.Fident, [ a ] -> a
    | _ -> invalid_arg "Exec.compute: arity mismatch"

(** A fused chain: the first opcode consumes its operands from the
    head of [args]; each later opcode consumes the running result as
    its first operand plus further tokens from [args]. *)
let fused (ops : G.fu_op list) (args : token list) : token =
  match ops with
  | [] -> invalid_arg "Exec.fused: empty chain"
  | first :: rest ->
    let k0 = fu_arity first in
    let acc = compute first (take k0 args) in
    let rec go acc args = function
      | [] -> acc
      | op :: more ->
        let extra = fu_arity op - 1 in
        let acc' = compute op (acc :: take extra args) in
        go acc'
          (List.filteri (fun i _ -> i >= extra) args)
          more
    in
    go acc (List.filteri (fun i _ -> i >= k0) args) rest

(** Merge: pick the value whose predicate fired. *)
let merge (k : int) (args : token array) : token =
  let rec find i =
    if i >= k then T.VPoison
    else
      match args.(i) with
      | T.VBool true -> args.(k + i)
      | T.VInt v when not (Int64.equal v 0L) -> args.(k + i)
      | _ -> find (i + 1)
  in
  find 0

let tensor (top : G.tensor_op) (args : token list) : token =
  if poisoned args then T.VPoison
  else
    match top, args with
    | G.Tmul2, [ T.VTensor a; T.VTensor b ] ->
      let n = int_of_float (Float.sqrt (float_of_int (Array.length a))) in
      T.VTensor (E.tensor_mul { rows = n; cols = n } a b)
    | G.Tadd2, [ T.VTensor a; T.VTensor b ] -> T.VTensor (E.tensor_add a b)
    | G.Trelu2, [ T.VTensor a ] -> T.VTensor (E.tensor_relu a)
    | _ -> invalid_arg "Exec.tensor: bad operands"
