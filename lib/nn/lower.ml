(** Lowering: operator graph -> mini-language source.

    Every non-elided operator becomes one [func void op_<name>()] —
    which the frontend compiles to its own μIR task — and [main]
    invokes the tasks in topological order.  Every non-elided node
    owns a [global float] array named after it; those arrays are the
    inter-layer streaming buffers the tasks communicate through.

    A [Dense] whose three dimensions are all even takes the
    tensor-tile path: a 2x2 blocked matmul built from
    tload/tmul/tadd/tstore (the same shape as the 2mm[T] workload),
    followed by a scalar bias(+relu) sweep over the output buffer.
    Everything else lowers to scalar loop nests.  [Golden] mirrors
    each path's float-operation order exactly, so simulated outputs
    match the golden model bit for bit. *)

type init = {
  iname : string;  (** buffer (leaf tensor) name *)
  seed : int;
  lo : float;
  hi : float;
  count : int;     (** number of floats *)
}

type report = {
  tasks : int;         (** operator funcs emitted (excluding [main]) *)
  buffers : int;       (** global float arrays *)
  floats : int;        (** total floats across all buffers *)
  tiled : string list; (** nodes lowered through the tensor-tile path *)
}

let pp_report ppf (r : report) =
  Fmt.pf ppf "lower: %d task(s), %d buffer(s) (%d floats)%s" r.tasks
    r.buffers r.floats
    (match r.tiled with
    | [] -> ""
    | l -> ", tensor-tiled: " ^ String.concat ", " l)

(** Does this node take the 2x2 tensor-tile path?  Single source of
    truth shared with {!Golden} — the accumulation order differs
    between the scalar and tiled lowerings, so both sides must agree
    on which one runs. *)
let tiled_dense (g : Graph.t) (n : Graph.node) : bool =
  match n.op with
  | Op.Dense -> (
    match (Graph.node g (List.hd n.ins)).shape, n.shape with
    | [ _; k ], [ m; nn ] -> m mod 2 = 0 && k mod 2 = 0 && nn mod 2 = 0
    | _ -> false)
  | _ -> false

(** Leaf tensors to materialize (the workload layer turns these into
    [Data.floats] arrays so every substrate sees identical data). *)
let inits (g : Graph.t) : init list =
  List.filter_map
    (fun (n : Graph.node) ->
      match n.data with
      | Some (seed, lo, hi) ->
        Some { iname = n.name; seed; lo; hi; count = Graph.size n.shape }
      | None -> None)
    g.nodes

let lower (g : Graph.t) : string * report =
  let buf = Buffer.create 4096 in
  let line fmt = Fmt.kstr (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  let live = List.filter (fun (n : Graph.node) -> not n.elided) g.nodes in
  let ops = List.filter (fun (n : Graph.node) -> not (Op.is_leaf n.op)) live in
  (* the buffer (through elided aliases) holding input [i] of [n] *)
  let src (n : Graph.node) i =
    (Graph.buffer g (Graph.node g (List.nth n.ins i))).name
  in
  let srcdim (n : Graph.node) i = (Graph.node g (List.nth n.ins i)).shape in
  (* apply the folded activation to the final store of an op *)
  let act (n : Graph.node) e =
    if n.fused_relu then Fmt.str "fmax(%s, 0.0)" e else e
  in
  List.iter
    (fun (n : Graph.node) ->
      line "global float %s[%d];" n.name (Graph.size n.shape))
    live;
  let tiled = ref [] in
  List.iter
    (fun (n : Graph.node) ->
      line "func void op_%s() {" n.name;
      (match n.op with
      | Op.Input | Op.Weight -> assert false
      | Op.Matmul ->
        let m, k, nn =
          match (srcdim n 0, n.shape) with
          | [ _; k ], [ m; nn ] -> (m, k, nn)
          | _ -> assert false
        in
        let x = src n 0 and w = src n 1 in
        line "  for (int r = 0; r < %d; r = r + 1) {" m;
        line "    for (int c = 0; c < %d; c = c + 1) {" nn;
        line "      float acc = 0.0;";
        line "      for (int k = 0; k < %d; k = k + 1) {" k;
        line "        acc = acc + %s[r*%d+k] * %s[k*%d+c];" x k w nn;
        line "      }";
        line "      %s[r*%d+c] = %s;" n.name nn (act n "acc");
        line "    }";
        line "  }"
      | Op.Dense when tiled_dense g n ->
        tiled := !tiled @ [ n.name ];
        let m, k, nn =
          match (srcdim n 0, n.shape) with
          | [ _; k ], [ m; nn ] -> (m, k, nn)
          | _ -> assert false
        in
        let x = src n 0 and w = src n 1 and b = src n 2 in
        (* 2x2 blocked matmul, the 2mm[T] idiom: tile (rt,ct) of the
           output accumulates over k-pairs kt *)
        line "  for (int rt = 0; rt < %d; rt = rt + 1) {" (m / 2);
        line "    for (int ct = 0; ct < %d; ct = ct + 1) {" (nn / 2);
        line "      tile acc = tmul(tload(%s, rt*%d, %d), tload(%s, ct*2, %d));"
          x (2 * k) k w nn;
        line "      for (int kt = 1; kt < %d; kt = kt + 1) {" (k / 2);
        line
          "        acc = tadd(acc, tmul(tload(%s, rt*%d + kt*2, %d), tload(%s, kt*%d + ct*2, %d)));"
          x (2 * k) k w (2 * nn) nn;
        line "      }";
        line "      tstore(%s, rt*%d + ct*2, %d, acc);" n.name (2 * nn) nn;
        line "    }";
        line "  }";
        (* scalar bias (+ folded relu) sweep over the stored tiles *)
        line "  for (int r = 0; r < %d; r = r + 1) {" m;
        line "    for (int c = 0; c < %d; c = c + 1) {" nn;
        line "      %s[r*%d+c] = %s;" n.name nn
          (act n (Fmt.str "%s[r*%d+c] + %s[c]" n.name nn b));
        line "    }";
        line "  }"
      | Op.Dense ->
        let m, k, nn =
          match (srcdim n 0, n.shape) with
          | [ _; k ], [ m; nn ] -> (m, k, nn)
          | _ -> assert false
        in
        let x = src n 0 and w = src n 1 and b = src n 2 in
        line "  for (int r = 0; r < %d; r = r + 1) {" m;
        line "    for (int c = 0; c < %d; c = c + 1) {" nn;
        line "      float acc = %s[c];" b;
        line "      for (int k = 0; k < %d; k = k + 1) {" k;
        line "        acc = acc + %s[r*%d+k] * %s[k*%d+c];" x k w nn;
        line "      }";
        line "      %s[r*%d+c] = %s;" n.name nn (act n "acc");
        line "    }";
        line "  }"
      | Op.Conv2d { kh; kw } ->
        let c, h, w =
          match srcdim n 0 with
          | [ c; h; w ] -> (c, h, w)
          | _ -> assert false
        in
        let f, oh, ow =
          match n.shape with
          | [ f; oh; ow ] -> (f, oh, ow)
          | _ -> assert false
        in
        let x = src n 0 and k = src n 1 and b = src n 2 in
        line "  for (int f = 0; f < %d; f = f + 1) {" f;
        line "    for (int oy = 0; oy < %d; oy = oy + 1) {" oh;
        line "      for (int ox = 0; ox < %d; ox = ox + 1) {" ow;
        line "        float acc = %s[f];" b;
        line "        for (int c = 0; c < %d; c = c + 1) {" c;
        line "          for (int dy = 0; dy < %d; dy = dy + 1) {" kh;
        line "            for (int dx = 0; dx < %d; dx = dx + 1) {" kw;
        line
          "              acc = acc + %s[c*%d + (oy+dy)*%d + ox+dx] * %s[f*%d + c*%d + dy*%d + dx];"
          x (h * w) w k (c * kh * kw) (kh * kw) kw;
        line "            }";
        line "          }";
        line "        }";
        line "        %s[f*%d + oy*%d + ox] = %s;" n.name (oh * ow) ow
          (act n "acc");
        line "      }";
        line "    }";
        line "  }"
      | Op.Relu ->
        let s = Graph.size n.shape in
        line "  for (int i = 0; i < %d; i = i + 1) {" s;
        line "    %s[i] = fmax(%s[i], 0.0);" n.name (src n 0);
        line "  }"
      | Op.Add ->
        let s = Graph.size n.shape in
        line "  for (int i = 0; i < %d; i = i + 1) {" s;
        line "    %s[i] = %s;" n.name
          (act n (Fmt.str "%s[i] + %s[i]" (src n 0) (src n 1)));
        line "  }"
      | Op.Maxpool { ph; pw } ->
        let c, h, w =
          match srcdim n 0 with
          | [ c; h; w ] -> (c, h, w)
          | _ -> assert false
        in
        let oh = h / ph and ow = w / pw in
        let x = src n 0 in
        line "  for (int c = 0; c < %d; c = c + 1) {" c;
        line "    for (int oy = 0; oy < %d; oy = oy + 1) {" oh;
        line "      for (int ox = 0; ox < %d; ox = ox + 1) {" ow;
        line "        float m = %s[c*%d + oy*%d + ox*%d];" x (h * w)
          (ph * w) pw;
        line "        for (int dy = 0; dy < %d; dy = dy + 1) {" ph;
        line "          for (int dx = 0; dx < %d; dx = dx + 1) {" pw;
        line "            m = fmax(m, %s[c*%d + (oy*%d+dy)*%d + ox*%d+dx]);"
          x (h * w) ph w pw;
        line "          }";
        line "        }";
        line "        %s[c*%d + oy*%d + ox] = m;" n.name (oh * ow) ow;
        line "      }";
        line "    }";
        line "  }"
      | Op.Flatten ->
        (* only reached when fusion has not elided it: a plain copy *)
        let s = Graph.size n.shape in
        line "  for (int i = 0; i < %d; i = i + 1) {" s;
        line "    %s[i] = %s[i];" n.name (src n 0);
        line "  }"
      | Op.Softmax ->
        let m, nn =
          match n.shape with [ m; nn ] -> (m, nn) | _ -> assert false
        in
        let x = src n 0 in
        line "  for (int b = 0; b < %d; b = b + 1) {" m;
        line "    float m = %s[b*%d];" x nn;
        line "    for (int c = 1; c < %d; c = c + 1) { m = fmax(m, %s[b*%d+c]); }"
          nn x nn;
        line "    float s = 0.0;";
        line "    for (int c = 0; c < %d; c = c + 1) {" nn;
        line "      float e = exp(%s[b*%d+c] - m);" x nn;
        line "      %s[b*%d+c] = e;" n.name nn;
        line "      s = s + e;";
        line "    }";
        line "    for (int c = 0; c < %d; c = c + 1) {" nn;
        line "      %s[b*%d+c] = %s[b*%d+c] / s;" n.name nn n.name nn;
        line "    }";
        line "  }");
      line "}")
    ops;
  line "func void main() {";
  List.iter (fun (n : Graph.node) -> line "  op_%s();" n.name) ops;
  line "}";
  let floats =
    List.fold_left (fun a (n : Graph.node) -> a + Graph.size n.shape) 0 live
  in
  ( Buffer.contents buf,
    { tasks = List.length ops;
      buffers = List.length live;
      floats;
      tiled = !tiled } )
