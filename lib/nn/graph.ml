(** The typed operator-graph IR: a DAG of tensor-producing nodes with
    static shapes.  Construction is append-only and topological by
    design — a node can only reference nodes that already exist — so
    every pass (shape inference, fusion, lowering, the golden model)
    walks [nodes] front to back.

    Each node names the buffer holding its output tensor; those names
    become the [global float] arrays of the lowered program — the
    inter-layer streaming buffers between the per-operator μIR
    tasks. *)

type node = {
  id : int;
  op : Op.t;
  ins : int list;  (** ids of input nodes, in operator order *)
  name : string;   (** unique buffer name (a valid identifier) *)
  mutable shape : int list;  (** output shape, set by {!Shape.infer} *)
  data : (int * float * float) option;
      (** leaf tensors: (LCG seed, lo, hi) of the deterministic data *)
  mutable fused_relu : bool;  (** set by {!Fuse.run} *)
  mutable elided : bool;
      (** set by {!Fuse.run}: node lowers to no task (buffer aliases
          its input's buffer) *)
}

type t = {
  gname : string;
  mutable nodes : node list;  (** topological order *)
  mutable outputs : int list; (** ids of the graph's result tensors *)
}

exception Graph_error of string

let fail fmt = Fmt.kstr (fun s -> raise (Graph_error s)) fmt

let create gname : t = { gname; nodes = []; outputs = [] }

let node (g : t) (id : int) : node =
  match List.find_opt (fun n -> n.id = id) g.nodes with
  | Some n -> n
  | None -> fail "%s: no node %d" g.gname id

let valid_name (s : string) : bool =
  s <> ""
  && (match s.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' -> true | _ -> false)
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true
         | _ -> false)
       s

let add (g : t) ~(name : string) ?(data : (int * float * float) option)
    (op : Op.t) (ins : node list) : node =
  if not (valid_name name) then fail "%s: invalid tensor name %S" g.gname name;
  if List.exists (fun n -> n.name = name) g.nodes then
    fail "%s: duplicate tensor name %S" g.gname name;
  if List.length ins <> Op.arity op then
    fail "%s: %s takes %d input(s), got %d" g.gname (Op.to_string op)
      (Op.arity op) (List.length ins);
  if Op.is_leaf op && data = None then
    fail "%s: leaf tensor %S has no dataset seed" g.gname name;
  List.iter
    (fun (n : node) ->
      if not (List.memq n g.nodes) then
        fail "%s: %s input %S is not a node of this graph" g.gname name
          n.name)
    ins;
  let n =
    { id = List.length g.nodes; op; ins = List.map (fun n -> n.id) ins;
      name; shape = []; data; fused_relu = false; elided = false }
  in
  g.nodes <- g.nodes @ [ n ];
  n

(* Builder conveniences: one function per operator. *)

let input g ~name ~shape ~seed ?(lo = -1.0) ?(hi = 1.0) () =
  let n = add g ~name ~data:(seed, lo, hi) Op.Input [] in
  n.shape <- shape;
  n

let weight g ~name ~shape ~seed ?(lo = -1.0) ?(hi = 1.0) () =
  let n = add g ~name ~data:(seed, lo, hi) Op.Weight [] in
  n.shape <- shape;
  n

let matmul g ~name x w = add g ~name Op.Matmul [ x; w ]
let dense g ~name x w b = add g ~name Op.Dense [ x; w; b ]
let conv2d g ~name ?(kh = 3) ?(kw = 3) x w b =
  add g ~name (Op.Conv2d { kh; kw }) [ x; w; b ]
let relu g ~name x = add g ~name Op.Relu [ x ]
let add_ g ~name a b = add g ~name Op.Add [ a; b ]
let maxpool g ~name ?(ph = 2) ?(pw = 2) x =
  add g ~name (Op.Maxpool { ph; pw }) [ x ]
let flatten g ~name x = add g ~name Op.Flatten [ x ]
let softmax g ~name x = add g ~name Op.Softmax [ x ]

let output (g : t) (n : node) : unit =
  if not (List.memq n g.nodes) then
    fail "%s: output %S is not a node of this graph" g.gname n.name;
  if not (List.mem n.id g.outputs) then g.outputs <- g.outputs @ [ n.id ]

(* Queries. *)

let size (shape : int list) : int = List.fold_left ( * ) 1 shape

let consumers (g : t) (id : int) : node list =
  List.filter (fun n -> List.mem id n.ins) g.nodes

(** Resolve a node through elided (aliasing) nodes to the buffer that
    actually holds its value. *)
let rec buffer (g : t) (n : node) : node =
  if n.elided then buffer g (node g (List.hd n.ins)) else n

let shape_to_string (s : int list) : string =
  "[" ^ String.concat "x" (List.map string_of_int s) ^ "]"

let pp_node (g : t) ppf (n : node) =
  Fmt.pf ppf "#%-2d %-6s %-14s %-10s" n.id n.name (Op.to_string n.op)
    (shape_to_string n.shape);
  (match n.ins with
  | [] -> ()
  | ins ->
    Fmt.pf ppf " <- %s"
      (String.concat ", " (List.map (fun i -> (node g i).name) ins)));
  if n.fused_relu then Fmt.pf ppf "  [+relu]";
  if n.elided then Fmt.pf ppf "  [elided -> %s]" (buffer g n).name

let pp ppf (g : t) =
  let leaves, ops = List.partition (fun n -> Op.is_leaf n.op) g.nodes in
  Fmt.pf ppf "graph %s: %d op(s), %d leaf tensor(s), output(s) %s@,"
    g.gname (List.length ops) (List.length leaves)
    (String.concat ", " (List.map (fun i -> (node g i).name) g.outputs));
  List.iter (fun n -> Fmt.pf ppf "  %a@," (pp_node g) n) g.nodes
