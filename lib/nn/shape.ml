(** Shape inference and validation for operator graphs.

    [infer] fills every node's output shape from its inputs, walking
    the (topological) node list once; ill-shaped graphs raise
    {!Shape_error} with a message naming the offending node.  All
    shapes are static — there is no broadcasting and no dynamic
    dimension, exactly the contract the lowering needs to emit
    fixed-size buffers and counted loops. *)

exception Shape_error of string

let fail fmt = Fmt.kstr (fun s -> raise (Shape_error s)) fmt

let infer_node (g : Graph.t) (n : Graph.node) : int list =
  let nm = n.name in
  let in_ i = Graph.node g (List.nth n.ins i) in
  let shape i = (in_ i).shape in
  let positive s =
    if List.exists (fun d -> d <= 0) s || s = [] then
      fail "%s: non-positive dimension in %s" nm (Graph.shape_to_string s)
  in
  match n.op with
  | Op.Input | Op.Weight ->
    positive n.shape;
    n.shape
  | Op.Matmul -> (
    match (shape 0, shape 1) with
    | [ m; k ], [ k'; nn ] when k = k' -> [ m; nn ]
    | [ _; k ], [ k'; _ ] ->
      fail "%s: matmul inner dims disagree (%d vs %d)" nm k k'
    | a, b ->
      fail "%s: matmul wants two rank-2 tensors, got %s and %s" nm
        (Graph.shape_to_string a) (Graph.shape_to_string b))
  | Op.Dense -> (
    match (shape 0, shape 1, shape 2) with
    | [ m; k ], [ k'; nn ], [ b ] when k = k' && b = nn -> [ m; nn ]
    | [ _; k ], [ k'; _ ], _ when k <> k' ->
      fail "%s: dense inner dims disagree (x has %d, w has %d)" nm k k'
    | [ _; _ ], [ _; nn ], [ b ] ->
      fail "%s: dense bias length %d does not match %d units" nm b nn
    | a, b, c ->
      fail "%s: dense wants x:[m;k] w:[k;n] b:[n], got %s %s %s" nm
        (Graph.shape_to_string a) (Graph.shape_to_string b)
        (Graph.shape_to_string c))
  | Op.Conv2d { kh; kw } -> (
    match (shape 0, shape 1, shape 2) with
    | [ c; h; w ], [ f; c'; kh'; kw' ], [ b ]
      when c = c' && kh = kh' && kw = kw' && b = f ->
      if h < kh || w < kw then
        fail "%s: conv2d input %dx%d smaller than kernel %dx%d" nm h w kh
          kw;
      [ f; h - kh + 1; w - kw + 1 ]
    | [ c; _; _ ], [ _; c'; _; _ ], _ when c <> c' ->
      fail "%s: conv2d channel mismatch (input %d, kernel %d)" nm c c'
    | a, b, c ->
      fail "%s: conv2d wants x:[c;h;w] w:[f;c;%d;%d] b:[f], got %s %s %s"
        nm kh kw (Graph.shape_to_string a) (Graph.shape_to_string b)
        (Graph.shape_to_string c))
  | Op.Relu -> shape 0
  | Op.Add ->
    if shape 0 <> shape 1 then
      fail "%s: add of different shapes %s and %s" nm
        (Graph.shape_to_string (shape 0))
        (Graph.shape_to_string (shape 1));
    shape 0
  | Op.Maxpool { ph; pw } -> (
    match shape 0 with
    | [ c; h; w ] ->
      if h mod ph <> 0 || w mod pw <> 0 then
        fail "%s: maxpool %dx%d does not tile input %dx%d" nm ph pw h w;
      [ c; h / ph; w / pw ]
    | s ->
      fail "%s: maxpool wants [c;h;w], got %s" nm (Graph.shape_to_string s))
  | Op.Flatten -> [ 1; Graph.size (shape 0) ]
  | Op.Softmax -> (
    match shape 0 with
    | [ m; n ] -> [ m; n ]
    | s ->
      fail "%s: softmax wants [rows;classes], got %s" nm
        (Graph.shape_to_string s))

(** Infer every node's shape and validate the whole graph; returns the
    graph for chaining. *)
let infer (g : Graph.t) : Graph.t =
  if g.nodes = [] then fail "%s: empty graph" g.gname;
  List.iter (fun (n : Graph.node) -> n.shape <- infer_node g n) g.nodes;
  if g.outputs = [] then fail "%s: no outputs declared" g.gname;
  List.iter
    (fun id ->
      let n = Graph.node g id in
      if Op.is_leaf n.op then
        fail "%s: output %s is a leaf tensor" g.gname n.name)
    g.outputs;
  (* every non-output compute node must feed something *)
  List.iter
    (fun (n : Graph.node) ->
      if
        (not (Op.is_leaf n.op))
        && (not (List.mem n.id g.outputs))
        && Graph.consumers g n.id = []
      then fail "%s: dead operator %s (no consumers, not an output)"
             g.gname n.name)
    g.nodes;
  g
