(** Exact golden models: evaluate an operator graph with the same
    float operations, in the same order, as the lowered μIR program —
    so simulated outputs must match bit for bit, not within a
    tolerance.

    The mirrored details that matter:
    - the mini-language [fmax] lowers to an ordered-greater-than
      compare plus select, i.e. [if a > b then a else b];
    - [tmul] accumulates each 2x2 element from 0.0 in k order and
      tiled matmuls sum tile-products in kt order, so a tiled
      {!Lower.tiled_dense} has a different summation order than the
      scalar path — {!Lower.tiled_dense} is consulted to pick the
      matching one;
    - scalar dense seeds its accumulator with the bias, the tiled
      dense adds the bias in a separate sweep after the blocked
      matmul. *)

(* the ordered-compare + select that [fmax] lowers to *)
let fmax_ (a : float) (b : float) : float = if a > b then a else b

(* 2x2 tiles, row-major, mirroring lib/ir/eval.ml's tensor ops *)
let tload (x : float array) base stride =
  [| x.(base); x.(base + 1); x.(base + stride); x.(base + stride + 1) |]

let tmul (a : float array) (b : float array) =
  let c = Array.make 4 0.0 in
  for i = 0 to 1 do
    for j = 0 to 1 do
      let acc = ref 0.0 in
      for k = 0 to 1 do
        acc := !acc +. (a.((i * 2) + k) *. b.((k * 2) + j))
      done;
      c.((i * 2) + j) <- !acc
    done
  done;
  c

let tadd (a : float array) (b : float array) =
  Array.init 4 (fun i -> a.(i) +. b.(i))

let tstore (x : float array) base stride (t : float array) =
  x.(base) <- t.(0);
  x.(base + 1) <- t.(1);
  x.(base + stride) <- t.(2);
  x.(base + stride + 1) <- t.(3)

(** Evaluate [g].  [data] materializes each leaf tensor (the workload
    layer passes [Data.floats], keeping this library free of a
    dependency on it).  Returns the output buffers in declaration
    order, keyed by buffer name. *)
let run (g : Graph.t) ~(data : Lower.init -> float array) :
    (string * float array) list =
  let tbl : (int, float array) Hashtbl.t = Hashtbl.create 16 in
  let value id = Hashtbl.find tbl id in
  let eval (n : Graph.node) : float array =
    let src i = value (List.nth n.ins i) in
    let srcdim i = (Graph.node g (List.nth n.ins i)).shape in
    let act v = if n.fused_relu then fmax_ v 0.0 else v in
    match n.op with
    | Op.Input | Op.Weight ->
      let seed, lo, hi = Option.get n.data in
      data { Lower.iname = n.name; seed; lo; hi; count = Graph.size n.shape }
    | Op.Matmul ->
      let m, k, nn =
        match (srcdim 0, n.shape) with
        | [ _; k ], [ m; nn ] -> (m, k, nn)
        | _ -> assert false
      in
      let x = src 0 and w = src 1 in
      let y = Array.make (m * nn) 0.0 in
      for r = 0 to m - 1 do
        for c = 0 to nn - 1 do
          let acc = ref 0.0 in
          for kk = 0 to k - 1 do
            acc := !acc +. (x.((r * k) + kk) *. w.((kk * nn) + c))
          done;
          y.((r * nn) + c) <- act !acc
        done
      done;
      y
    | Op.Dense when Lower.tiled_dense g n ->
      let m, k, nn =
        match (srcdim 0, n.shape) with
        | [ _; k ], [ m; nn ] -> (m, k, nn)
        | _ -> assert false
      in
      let x = src 0 and w = src 1 and b = src 2 in
      let y = Array.make (m * nn) 0.0 in
      for rt = 0 to (m / 2) - 1 do
        for ct = 0 to (nn / 2) - 1 do
          let acc =
            ref (tmul (tload x (rt * 2 * k) k) (tload w (ct * 2) nn))
          in
          for kt = 1 to (k / 2) - 1 do
            acc :=
              tadd !acc
                (tmul
                   (tload x ((rt * 2 * k) + (kt * 2)) k)
                   (tload w ((kt * 2 * nn) + (ct * 2)) nn))
          done;
          tstore y ((rt * 2 * nn) + (ct * 2)) nn !acc
        done
      done;
      for r = 0 to m - 1 do
        for c = 0 to nn - 1 do
          y.((r * nn) + c) <- act (y.((r * nn) + c) +. b.(c))
        done
      done;
      y
    | Op.Dense ->
      let m, k, nn =
        match (srcdim 0, n.shape) with
        | [ _; k ], [ m; nn ] -> (m, k, nn)
        | _ -> assert false
      in
      let x = src 0 and w = src 1 and b = src 2 in
      let y = Array.make (m * nn) 0.0 in
      for r = 0 to m - 1 do
        for c = 0 to nn - 1 do
          let acc = ref b.(c) in
          for kk = 0 to k - 1 do
            acc := !acc +. (x.((r * k) + kk) *. w.((kk * nn) + c))
          done;
          y.((r * nn) + c) <- act !acc
        done
      done;
      y
    | Op.Conv2d { kh; kw } ->
      let c, h, w =
        match srcdim 0 with [ c; h; w ] -> (c, h, w) | _ -> assert false
      in
      let f, oh, ow =
        match n.shape with
        | [ f; oh; ow ] -> (f, oh, ow)
        | _ -> assert false
      in
      let x = src 0 and ker = src 1 and b = src 2 in
      let y = Array.make (f * oh * ow) 0.0 in
      for fi = 0 to f - 1 do
        for oy = 0 to oh - 1 do
          for ox = 0 to ow - 1 do
            let acc = ref b.(fi) in
            for ci = 0 to c - 1 do
              for dy = 0 to kh - 1 do
                for dx = 0 to kw - 1 do
                  acc :=
                    !acc
                    +. x.((ci * h * w) + ((oy + dy) * w) + ox + dx)
                       *. ker.(
                            (fi * c * kh * kw) + (ci * kh * kw) + (dy * kw)
                            + dx)
                done
              done
            done;
            y.((fi * oh * ow) + (oy * ow) + ox) <- act !acc
          done
        done
      done;
      y
    | Op.Relu -> Array.map (fun v -> fmax_ v 0.0) (src 0)
    | Op.Add ->
      let a = src 0 and b = src 1 in
      Array.init (Array.length a) (fun i -> act (a.(i) +. b.(i)))
    | Op.Maxpool { ph; pw } ->
      let c, h, w =
        match srcdim 0 with [ c; h; w ] -> (c, h, w) | _ -> assert false
      in
      let oh = h / ph and ow = w / pw in
      let x = src 0 in
      let y = Array.make (c * oh * ow) 0.0 in
      for ci = 0 to c - 1 do
        for oy = 0 to oh - 1 do
          for ox = 0 to ow - 1 do
            let m = ref x.((ci * h * w) + (oy * ph * w) + (ox * pw)) in
            for dy = 0 to ph - 1 do
              for dx = 0 to pw - 1 do
                m :=
                  fmax_ !m
                    x.((ci * h * w) + (((oy * ph) + dy) * w) + (ox * pw) + dx)
              done
            done;
            y.((ci * oh * ow) + (oy * ow) + ox) <- !m
          done
        done
      done;
      y
    | Op.Flatten -> Array.copy (src 0)
    | Op.Softmax ->
      let m, nn =
        match n.shape with [ m; nn ] -> (m, nn) | _ -> assert false
      in
      let x = src 0 in
      let y = Array.make (m * nn) 0.0 in
      for b = 0 to m - 1 do
        let mx = ref x.(b * nn) in
        for c = 1 to nn - 1 do
          mx := fmax_ !mx x.((b * nn) + c)
        done;
        let s = ref 0.0 in
        for c = 0 to nn - 1 do
          let e = Float.exp (x.((b * nn) + c) -. !mx) in
          y.((b * nn) + c) <- e;
          s := !s +. e
        done;
        for c = 0 to nn - 1 do
          y.((b * nn) + c) <- y.((b * nn) + c) /. !s
        done
      done;
      y
  in
  List.iter
    (fun (n : Graph.node) ->
      let v = if n.elided then value (List.hd n.ins) else eval n in
      Hashtbl.replace tbl n.id v)
    g.nodes;
  List.map
    (fun id ->
      let n = Graph.node g id in
      (n.name, value id))
    g.outputs
