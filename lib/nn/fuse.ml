(** Graph-level operator fusion.

    Two rewrites, both value-preserving bit-for-bit:

    - {b relu folding}: a [Relu] whose sole producer is an
      accumulating op ([Matmul], [Dense], [Conv2d], [Add]) and whose
      producer has no other consumer marks the producer
      [fused_relu] and elides itself.  The producer's final store
      applies [fmax(acc, 0.0)] — the same float op the standalone
      relu task would run — so the fused program writes identical
      bits with one fewer task and one fewer inter-layer buffer.
    - {b flatten elision}: [Flatten] is a pure re-indexing of a
      row-major buffer, so it lowers to no task at all; the node is
      marked [elided] and downstream operators read the producer's
      buffer directly.

    This is the graph-level mirror of [lib/muopt/fusion.ml], which
    fuses chains of cheap ALU nodes inside one μIR task; here we fuse
    whole operators before tasks exist. *)

type report = {
  relus_folded : int;
  flattens_elided : int;
}

let pp_report ppf r =
  Fmt.pf ppf "fuse: %d relu(s) folded, %d flatten(s) elided"
    r.relus_folded r.flattens_elided

(** Fuse in place (shapes must already be inferred); returns the
    report.  Idempotent: re-running fuses nothing new. *)
let run (g : Graph.t) : report =
  let relus = ref 0 and flats = ref 0 in
  List.iter
    (fun (n : Graph.node) ->
      match n.op with
      | Op.Relu when (not n.elided) && not (List.mem n.id g.outputs) ->
        let p = Graph.node g (List.hd n.ins) in
        if
          Op.can_fuse_relu p.op && (not p.fused_relu) && (not p.elided)
          && List.length (Graph.consumers g p.id) = 1
          && not (List.mem p.id g.outputs)
        then begin
          p.fused_relu <- true;
          n.elided <- true;
          incr relus
        end
      | Op.Flatten when (not n.elided) && not (List.mem n.id g.outputs) ->
        n.elided <- true;
        incr flats
      | _ -> ())
    g.nodes;
  { relus_folded = !relus; flattens_elided = !flats }
