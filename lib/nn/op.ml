(** Operators of the tensor-graph frontend (ROADMAP item 3).

    The set mirrors what the paper's TensorFlow wing feeds the
    toolchain — the building blocks of small inference networks:
    matmul, dense (matmul + bias), 2-D valid convolution, relu,
    max-pooling, elementwise/residual add, flatten and a numerically
    stable softmax.  [Input] and [Weight] are the leaf tensors; both
    carry a deterministic dataset seed so every substrate sees
    identical data (materialized by the workload layer through
    [lib/workloads/data.ml]'s LCG). *)

type t =
  | Input   (** graph input tensor (dataset leaf) *)
  | Weight  (** learned parameter tensor (dataset leaf) *)
  | Matmul  (** [m;k] x [k;n] -> [m;n] *)
  | Dense   (** x:[m;k], w:[k;n], b:[n] -> [m;n] (matmul + bias) *)
  | Conv2d of { kh : int; kw : int }
      (** valid 2-D convolution, stride 1: x:[c;h;w], w:[f;c;kh;kw],
          b:[f] -> [f;h-kh+1;w-kw+1] *)
  | Relu    (** elementwise max(x, 0) *)
  | Add     (** elementwise / residual add of two same-shape tensors *)
  | Maxpool of { ph : int; pw : int }
      (** non-overlapping max pooling: [c;h;w] -> [c;h/ph;w/pw] *)
  | Flatten (** [d0;...;dn] -> [1; d0*...*dn] *)
  | Softmax (** row-wise stable softmax over the last dim of [m;n] *)

let to_string = function
  | Input -> "input"
  | Weight -> "weight"
  | Matmul -> "matmul"
  | Dense -> "dense"
  | Conv2d { kh; kw } -> Fmt.str "conv2d %dx%d" kh kw
  | Relu -> "relu"
  | Add -> "add"
  | Maxpool { ph; pw } -> Fmt.str "maxpool %dx%d" ph pw
  | Flatten -> "flatten"
  | Softmax -> "softmax"

(** Required number of graph inputs (leaf tensors take none). *)
let arity = function
  | Input | Weight -> 0
  | Matmul -> 2
  | Dense -> 3
  | Conv2d _ -> 3
  | Relu | Flatten | Softmax -> 1
  | Add -> 2
  | Maxpool _ -> 1

(** Is this a leaf tensor (carries data instead of computing)? *)
let is_leaf = function Input | Weight -> true | _ -> false

(** Can a following [Relu] be folded into this operator's output
    stage?  These are the accumulating ops whose final write can apply
    the activation for free — the graph-level mirror of how
    [lib/muopt/fusion.ml] folds cheap ALU chains into one stage. *)
let can_fuse_relu = function
  | Matmul | Dense | Conv2d _ | Add -> true
  | _ -> false
