(** Graphviz export of operator graphs, sharing the visual vocabulary
    of [lib/muir/dot.ml]: memory-backed tensors are cylinders /
    palegreen, tensor-tile compute is a plum box3d, fused stages are
    lightsalmon, plain compute is a white box.  Every node is labeled
    with its output shape so the operator topology and the μIR circuit
    renders read side by side. *)

let escape s =
  String.concat ""
    (List.map
       (fun c ->
         match c with
         | '"' -> "\\\""
         | '\\' -> "\\\\"
         | c -> String.make 1 c)
       (List.init (String.length s) (String.get s)))

let render (g : Graph.t) : string =
  let buf = Buffer.create 2048 in
  let p fmt = Fmt.kstr (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  p "digraph \"%s\" {" (escape g.gname);
  p "  rankdir=TB;";
  p "  node [fontname=\"Helvetica\", fontsize=10, style=filled];";
  List.iter
    (fun (n : Graph.node) ->
      let shape, fill =
        match n.op with
        | Op.Input -> ("ellipse", "palegreen")
        | Op.Weight -> ("cylinder", "khaki")
        | _ when Lower.tiled_dense g n -> ("box3d", "plum")
        | _ when n.fused_relu -> ("box", "lightsalmon")
        | _ -> ("box", "white")
      in
      let label =
        Fmt.str "%s\\n%s%s\\n%s" (escape n.name)
          (escape (Op.to_string n.op))
          (if n.fused_relu then " + relu" else "")
          (escape (Graph.shape_to_string n.shape))
      in
      let extra =
        String.concat ""
          [ (if n.elided then
               ", style=\"filled,dashed\", fillcolor=gray90"
             else "");
            (if List.mem n.id g.outputs then ", peripheries=2" else "") ]
      in
      p "  n%d [label=\"%s\", shape=%s, fillcolor=%s%s];" n.id label shape
        fill extra)
    g.nodes;
  List.iter
    (fun (n : Graph.node) ->
      List.iter
        (fun i ->
          let src = Graph.node g i in
          p "  n%d -> n%d [label=\"%s\"%s];" i n.id
            (escape (Graph.shape_to_string src.shape))
            (if n.elided || src.elided then ", style=dashed" else ""))
        n.ins)
    g.nodes;
  p "}";
  Buffer.contents buf
