(** The shipped models: small but complete inference networks whose
    every layer exercises a different operator, sized so a simulation
    costs about as much as the existing micro-kernels (gemm is ~4k
    MACs; the MLP is ~1.5k, the convnet ~9k).

    All leaf tensors carry LCG seeds (211+ for the MLP, 221+ for the
    convnet — disjoint from every seed in [lib/workloads]); the
    workload layer materializes them with [Data.floats], so weights
    are deterministic across substrates and sessions. *)

(** dense(16->16) + relu -> dense(16->8) -> softmax over a batch of 4.
    Both dense layers have all-even shapes, so they lower through the
    2x2 tensor-tile path. *)
let mlp () : Graph.t =
  let g = Graph.create "mlp" in
  let x = Graph.input g ~name:"X" ~shape:[ 4; 16 ] ~seed:211 () in
  let w1 = Graph.weight g ~name:"W1" ~shape:[ 16; 16 ] ~seed:212 () in
  let b1 = Graph.weight g ~name:"B1" ~shape:[ 16 ] ~seed:213 () in
  let h1 = Graph.dense g ~name:"H1" x w1 b1 in
  let r1 = Graph.relu g ~name:"R1" h1 in
  let w2 = Graph.weight g ~name:"W2" ~shape:[ 16; 8 ] ~seed:214 () in
  let b2 = Graph.weight g ~name:"B2" ~shape:[ 8 ] ~seed:215 () in
  let h2 = Graph.dense g ~name:"H2" r1 w2 b2 in
  let y = Graph.softmax g ~name:"Y" h2 in
  Graph.output g y;
  Shape.infer g

(** LeNet-style convnet on a 14x14 input: conv(4 filters, 3x3) + relu
    -> 2x2 maxpool -> conv(6 filters, 3x3) + relu -> 2x2 maxpool ->
    flatten -> dense(24->10) -> softmax.  The batch-1 dense is odd-
    shaped, so it stays on the scalar path. *)
let lenet () : Graph.t =
  let g = Graph.create "lenet" in
  let x = Graph.input g ~name:"X" ~shape:[ 1; 14; 14 ] ~seed:221 () in
  let k1 = Graph.weight g ~name:"K1" ~shape:[ 4; 1; 3; 3 ] ~seed:222 () in
  let cb1 = Graph.weight g ~name:"CB1" ~shape:[ 4 ] ~seed:223 () in
  let c1 = Graph.conv2d g ~name:"C1" x k1 cb1 in
  let r1 = Graph.relu g ~name:"R1" c1 in
  let p1 = Graph.maxpool g ~name:"P1" r1 in
  let k2 = Graph.weight g ~name:"K2" ~shape:[ 6; 4; 3; 3 ] ~seed:224 () in
  let cb2 = Graph.weight g ~name:"CB2" ~shape:[ 6 ] ~seed:225 () in
  let c2 = Graph.conv2d g ~name:"C2" p1 k2 cb2 in
  let r2 = Graph.relu g ~name:"R2" c2 in
  let p2 = Graph.maxpool g ~name:"P2" r2 in
  let f = Graph.flatten g ~name:"F" p2 in
  let wd = Graph.weight g ~name:"WD" ~shape:[ 24; 10 ] ~seed:226 () in
  let bd = Graph.weight g ~name:"BD" ~shape:[ 10 ] ~seed:227 () in
  let d = Graph.dense g ~name:"D" f wd bd in
  let y = Graph.softmax g ~name:"Y" d in
  Graph.output g y;
  Shape.infer g

let all : (string * (unit -> Graph.t)) list =
  [ ("mlp", mlp); ("lenet", lenet) ]

let find (name : string) : (unit -> Graph.t) option =
  List.assoc_opt name all
