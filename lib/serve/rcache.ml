(** The daemon's persistent, content-addressed result cache.

    This generalizes the explorer's in-memory memo table
    ({!Muir_dse.Cache}) with an on-disk backing store, so a repeated
    batch costs zero fresh simulations {e across daemon restarts}.

    {2 Layout}

    Each entry is its own file, [<dir>/<md5hex-of-key>.rc], holding

    {v
    muir-rcache-v1 <md5hex-of-payload> <key-len> <payload-len>\n
    <key><payload>
    v}

    The payload is the deterministic JSON of a
    {!Muir_trace.Report} — schema-versioned by the report itself, so
    a cache written by an older toolchain revision is simply a
    collection of reports that no current key maps to.  The header
    checksum covers the payload; the filename covers the key.  At
    {!create} every entry is loaded and validated eagerly: a file with
    a bad magic, a mismatched checksum, truncated lengths, or a
    filename that does not hash its own key is deleted and counted in
    [corrupt] — the daemon warms from whatever survives and never
    crashes on a mangled store.

    Writes are atomic (temp file + [Unix.rename] in the same
    directory), so a daemon killed mid-write leaves at worst a stale
    [.tmp] file, never a torn entry.

    Hit/miss accounting is inherited from {!Muir_dse.Cache}: disk
    entries are installed with [seed] (neither hit nor miss — they
    were paid for by an earlier process), lookups count hits, fresh
    results count misses. *)

type t = {
  rc_dir : string option;            (** [None] = memory-only *)
  rc_mem : string Muir_dse.Cache.t;  (** key → report-JSON payload *)
  mutable rc_corrupt : int;          (** entries discarded at load *)
  mutable rc_bytes : int;            (** on-disk bytes of live entries *)
}

type stats = {
  hits : int;
  misses : int;
  entries : int;
  corrupt : int;
  disk_bytes : int;  (** 0 for memory-only caches *)
}

let magic = "muir-rcache-v1"

let entry_path (dir : string) (key : string) : string =
  Filename.concat dir (Digest.to_hex (Digest.string key) ^ ".rc")

(* ------------------------------------------------------------------ *)
(* On-disk entry codec                                                 *)

let encode_entry (key : string) (payload : string) : string =
  Fmt.str "%s %s %d %d\n%s%s" magic
    (Digest.to_hex (Digest.string payload))
    (String.length key) (String.length payload) key payload

(** Decode and validate one entry file's contents against its
    filename; [Error reason] for anything mangled. *)
let decode_entry ~(path : string) (s : string) :
    (string * string, string) result =
  match String.index_opt s '\n' with
  | None -> Error "no header line"
  | Some nl -> (
    let header = String.sub s 0 nl in
    match String.split_on_char ' ' header with
    | [ m; sum; klen_s; plen_s ] when m = magic -> (
      match (int_of_string_opt klen_s, int_of_string_opt plen_s) with
      | Some klen, Some plen
        when klen >= 0 && plen >= 0
             && String.length s = nl + 1 + klen + plen -> (
        let key = String.sub s (nl + 1) klen in
        let payload = String.sub s (nl + 1 + klen) plen in
        if Digest.to_hex (Digest.string payload) <> sum then
          Error "payload checksum mismatch"
        else if
          Filename.basename path <> Digest.to_hex (Digest.string key) ^ ".rc"
        then Error "filename does not match key hash"
        else
          (* The payload must still parse as JSON: a torn write that
             happens to keep its length honest is caught here. *)
          match Muir_trace.Json.parse payload with
          | _ -> Ok (key, payload)
          | exception Muir_trace.Json.Parse_error _ ->
            Error "payload is not valid JSON")
      | _ -> Error "truncated or inconsistent lengths")
    | _ -> Error "bad magic or header shape")

let read_file (path : string) : string =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_atomic (dir : string) (path : string) (contents : string) : unit =
  let tmp = Filename.temp_file ~temp_dir:dir "rcache" ".tmp" in
  let oc = open_out_bin tmp in
  output_string oc contents;
  close_out oc;
  Unix.rename tmp path

(* ------------------------------------------------------------------ *)

let load_dir (t : t) (dir : string) : unit =
  Array.iter
    (fun name ->
      if Filename.check_suffix name ".rc" then begin
        let path = Filename.concat dir name in
        match read_file path with
        | contents -> (
          match decode_entry ~path contents with
          | Ok (key, payload) ->
            Muir_dse.Cache.seed t.rc_mem key payload;
            t.rc_bytes <- t.rc_bytes + String.length contents
          | Error _ ->
            (try Sys.remove path with Sys_error _ -> ());
            t.rc_corrupt <- t.rc_corrupt + 1)
        | exception Sys_error _ -> t.rc_corrupt <- t.rc_corrupt + 1
      end)
    (Sys.readdir dir)

(** Open (and eagerly warm from) a cache directory; the directory is
    created if missing.  [?dir:None] gives a memory-only cache with
    identical semantics minus persistence. *)
let create ?dir () : t =
  let t = { rc_dir = dir; rc_mem = Muir_dse.Cache.create ();
            rc_corrupt = 0; rc_bytes = 0 } in
  (match dir with
  | None -> ()
  | Some d ->
    if not (Sys.file_exists d) then Unix.mkdir d 0o755;
    load_dir t d);
  t

(** Lookup; counts a hit when present. *)
let find (t : t) (key : string) : string option =
  Muir_dse.Cache.find_opt t.rc_mem key

(** Record a freshly paid-for payload: counts a miss, persists the
    entry atomically when the cache is disk-backed. *)
let add (t : t) (key : string) (payload : string) : unit =
  Muir_dse.Cache.add t.rc_mem key payload;
  match t.rc_dir with
  | None -> ()
  | Some dir ->
    let contents = encode_entry key payload in
    write_atomic dir (entry_path dir key) contents;
    t.rc_bytes <- t.rc_bytes + String.length contents

let stats (t : t) : stats =
  let s = Muir_dse.Cache.stats t.rc_mem in
  { hits = s.c_hits; misses = s.c_misses; entries = s.c_entries;
    corrupt = t.rc_corrupt; disk_bytes = t.rc_bytes }
