(** The compile-and-simulate daemon.

    A {!t} owns the persistent result cache ({!Rcache}), an admission
    queue, the counters behind the [stats] request, and a
    {!Muir_obs.Obs.t} telemetry handle.  {!handle} is the whole request
    semantics as a pure-ish function — the socket loop ({!serve}), the
    drain path and the tests all go through it — and {!serve} is a
    select-based single-threaded loop that owns the Unix-domain socket:
    it accepts connections, reads length-prefixed frames ({!Proto}),
    answers [stats]/[metrics]/[shutdown] inline, admits [run] requests
    against the queue bound, and processes one queued request per
    iteration.

    {2 Evaluation}

    A batch's items are resolved to content keys
    ([muir-serve-v1|<source-digest>|<Config.key>] — see {!item_key}),
    deduplicated, answered from the cache where possible, and the
    remaining unique keys fanned out over the OCaml-5 domain pool
    ({!Muir_dse.Pool}) through the staged {!Muir_pipeline.Pipeline}.
    Fresh results are folded into the cache by the coordinating domain
    only, so cache traffic is race-free by construction (the same
    discipline as the explorer).  Because run reports are
    deterministic, a cached answer is byte-identical to the fresh one
    it replays.

    {2 Telemetry}

    Every counter, gauge and histogram lives in the handle's registry
    under the [muir_serve_*] naming convention and is updated by the
    coordinating domain only, with the handle's (injectable) clock —
    so two runs over the same batch with a fixed clock render
    byte-identical Prometheus expositions, and none of the existing
    response payloads change shape or bytes.  Per item the daemon
    makes {e exactly one} latency observation — into
    [muir_serve_item_seconds{cached="true"}] for cache hits and
    batch-local duplicates, [{cached="false"}] for fresh evaluations
    and failed items — so the two histograms' total count always
    equals [ok + errors] from the [stats] op.  Each fresh evaluation
    additionally records its per-stage seconds into
    [muir_serve_stage_seconds{stage=...}] and pushes a span into the
    handle's ring for Chrome-trace export.

    {2 Failure containment}

    Everything that can go wrong inside an item — unknown workload or
    stack, a front-end error in inline source, a deadline expiring at
    a stage boundary, a simulator deadlock — becomes a structured
    per-item error in the response.  Nothing an item does terminates
    the daemon. *)

module Config = Muir_dse.Config
module Pipeline = Muir_pipeline.Pipeline
module W = Muir_workloads.Workloads
module Ob = Muir_obs.Obs
module M = Muir_obs.Metrics
module Olog = Muir_obs.Log
module Span = Muir_obs.Span
module J = Muir_trace.Json

(** The daemon's registered metric handles; one instance per {!t},
    created against the handle's registry so the exposition is stable
    from the first scrape (every family exists even at zero). *)
type mx = {
  x_requests : M.counter;
  x_items : M.counter;
  x_ok : M.counter;
  x_fresh : M.counter;
  x_cached : M.counter;
  x_queue_depth : M.gauge;
  x_uptime : M.gauge;
  x_draining : M.gauge;
  x_cache_hits : M.counter;
  x_cache_misses : M.counter;
  x_cache_corrupt : M.counter;
  x_cache_entries : M.gauge;
  x_disk_bytes : M.gauge;
  x_item_fresh : M.hist;
  x_item_cached : M.hist;
  x_stage : M.hist array;  (** indexed by {!Pipeline.stage_index} *)
}

type t = {
  sv_rcache : Rcache.t;
  sv_jobs : int;            (** evaluation domains per batch *)
  sv_queue_cap : int;       (** max queued items across requests *)
  sv_started : float;
  sv_queue : pending Queue.t;
  sv_stop : bool Atomic.t;  (** drain requested (signal or shutdown op) *)
  sv_obs : Ob.t;
  sv_mx : mx;
  mutable sv_requests : int;
  mutable sv_items : int;
  mutable sv_ok : int;
  mutable sv_errors : int;
  mutable sv_fresh : int;
  mutable sv_cached : int;
  sv_stage_seconds : float array;
  sv_stage_counts : int array;
}

and pending = {
  pd_fd : Unix.file_descr;
  pd_items : Proto.item list;
  pd_admitted : float;
}

let errors_help = "Per-item errors by taxonomy code."
let rejects_help = "Request-level rejections by reason."

let make_mx (obs : Ob.t) : mx =
  let r = obs.Ob.o_metrics in
  (* Pre-register the labelled families too, so a scrape before the
     first error still exposes their TYPE lines. *)
  ignore (M.family r ~kind:M.Counter ~help:errors_help ~bounds:[||]
            "muir_serve_errors_total");
  ignore (M.family r ~kind:M.Counter ~help:rejects_help ~bounds:[||]
            "muir_serve_rejects_total");
  { x_requests =
      M.counter r ~help:"Run requests processed." "muir_serve_requests_total";
    x_items = M.counter r ~help:"Items received." "muir_serve_items_total";
    x_ok = M.counter r ~help:"Items answered ok." "muir_serve_ok_total";
    x_fresh =
      M.counter r ~help:"Items answered by fresh evaluation."
        "muir_serve_fresh_total";
    x_cached =
      M.counter r ~help:"Items answered from the result cache."
        "muir_serve_cached_total";
    x_queue_depth =
      M.gauge r ~help:"Items in the admission queue."
        "muir_serve_queue_depth";
    x_uptime =
      M.gauge r ~help:"Whole seconds since daemon start."
        "muir_serve_uptime_seconds";
    x_draining =
      M.gauge r ~help:"1 while draining, else 0." "muir_serve_draining";
    x_cache_hits =
      M.counter r ~help:"Result-cache hits." "muir_serve_cache_hits_total";
    x_cache_misses =
      M.counter r ~help:"Result-cache misses (fresh payloads recorded)."
        "muir_serve_cache_misses_total";
    x_cache_corrupt =
      M.counter r ~help:"Cache entries discarded as corrupt at load."
        "muir_serve_cache_corrupt_total";
    x_cache_entries =
      M.gauge r ~help:"Live result-cache entries." "muir_serve_cache_entries";
    x_disk_bytes =
      M.gauge r ~help:"On-disk bytes of live cache entries."
        "muir_serve_rcache_disk_bytes";
    x_item_fresh =
      M.histogram r ~help:"Per-item service latency."
        ~labels:[ ("cached", "false") ] "muir_serve_item_seconds";
    x_item_cached =
      M.histogram r ~help:"Per-item service latency."
        ~labels:[ ("cached", "true") ] "muir_serve_item_seconds";
    x_stage =
      Array.of_list
        (List.map
           (fun st ->
             M.histogram r ~help:"Per-stage seconds of fresh evaluations."
               ~labels:[ ("stage", Pipeline.stage_name st) ]
               "muir_serve_stage_seconds")
           Pipeline.stages) }

let err_counter (t : t) (code : string) : M.counter =
  M.counter t.sv_obs.Ob.o_metrics ~help:errors_help
    ~labels:[ ("code", code) ] "muir_serve_errors_total"

let reject_counter (t : t) (code : string) : M.counter =
  M.counter t.sv_obs.Ob.o_metrics ~help:rejects_help
    ~labels:[ ("code", code) ] "muir_serve_rejects_total"

let create ?cache_dir ?(jobs = 1) ?(queue_cap = 256) ?obs () : t =
  let obs = match obs with Some o -> o | None -> Ob.create () in
  { sv_rcache = Rcache.create ?dir:cache_dir ();
    sv_jobs = max 1 jobs;
    sv_queue_cap = queue_cap;
    sv_started = Ob.now obs;
    sv_queue = Queue.create ();
    sv_stop = Atomic.make false;
    sv_obs = obs;
    sv_mx = make_mx obs;
    sv_requests = 0; sv_items = 0; sv_ok = 0; sv_errors = 0;
    sv_fresh = 0; sv_cached = 0;
    sv_stage_seconds = Array.make Pipeline.nstages 0.0;
    sv_stage_counts = Array.make Pipeline.nstages 0 }

(** Ask the serve loop to stop accepting work and drain what it has.
    Safe to call from a signal handler. *)
let request_drain (t : t) : unit = Atomic.set t.sv_stop true

let queue_depth (t : t) : int =
  Queue.fold (fun n p -> n + List.length p.pd_items) 0 t.sv_queue

(* ------------------------------------------------------------------ *)
(* Content keys                                                        *)

(** The cache key of one item: a protocol-versioned digest of the
    {e source} (workload text or inline text — so editing a bundled
    workload invalidates its entries) crossed with the configuration's
    content key.  [jobs] and [deadline_ms] are deliberately excluded:
    simulation is bit-identical for every job count, and a deadline
    changes when an answer arrives, never what it is. *)
let item_key (src : Proto.src) (cfg : Config.t) : string =
  let sd =
    match src with
    | Proto.Workload name ->
      let w = W.find name in
      Fmt.str "workload:%s:%s" name (Digest.to_hex (Digest.string w.source))
    | Proto.Inline { name; text } ->
      Fmt.str "inline:%s"
        (Digest.to_hex (Digest.string (name ^ "\x00" ^ text)))
  in
  Fmt.str "muir-serve-v1|%s|%s" sd (Config.key cfg)

(** The μopt configuration an item denotes: its stack's registry
    defaults, overridden by any explicit knobs.
    @raise Invalid_argument for unknown stacks *)
let item_config (it : Proto.item) : Config.t =
  let base = Config.predefined it.it_stack in
  Config.v
    ~tiles:(Option.value ~default:base.tiles it.it_tiles)
    ~banks:(Option.value ~default:base.banks it.it_banks)
    ~off:it.it_off it.it_stack

(** Display label of an item: what its span and log records carry. *)
let item_label (it : Proto.item) : string =
  let src =
    match it.it_src with
    | Proto.Workload w -> w
    | Proto.Inline { name; _ } -> name
  in
  src ^ "/" ^ it.it_stack

(* ------------------------------------------------------------------ *)
(* Item evaluation (worker side)                                       *)

type outcome =
  | Payload of string                          (** report JSON *)
  | Failed of string * string option * string  (** code, stage, msg *)

(** One worker-side evaluation: the full six-stage pipeline, every
    failure mode folded into a structured {!outcome}.  The stage
    timing arrays ride back for the coordinator to merge. *)
type wres = {
  w_out : outcome;
  w_secs : float array;
  w_counts : int array;
}

let eval_item ?(now = Unix.gettimeofday) ~(deadline : float option)
    (it : Proto.item) (cfg : Config.t) : wres =
  let ctl = Pipeline.ctl ?deadline ~now () in
  let out =
    try
      let src =
        match it.it_src with
        | Proto.Workload name -> Pipeline.of_workload_name name
        | Proto.Inline { name; text } -> Pipeline.of_text ~name text
      in
      let b = Pipeline.build ~ctl ~passes:(Config.passes cfg) src in
      let m = Pipeline.model ~ctl b in
      let r = Pipeline.simulate ~ctl ~jobs:it.it_jobs b in
      let spec = Config.spec cfg in
      let knobs =
        (if spec.sp_uses_tiles then [ ("tiles", cfg.tiles) ] else [])
        @ if spec.sp_uses_banks then [ ("banks", cfg.banks) ] else []
      in
      let mem =
        List.map
          (fun (s : Muir_sim.Memsys.struct_stats) ->
            { Muir_trace.Report.m_name = s.ss_name;
              m_accesses = s.ss_accesses; m_hits = s.ss_hits;
              m_misses = s.ss_misses; m_conflicts = s.ss_conflicts })
          r.stats.mem
      in
      let fp = m.m_fpga and ac = m.m_asic in
      let rep =
        Muir_trace.Report.make ~workload:b.p_circuit.cname
          ~stack:(Config.label cfg) ~knobs ~mem
          ~fpga:
            { Muir_trace.Report.f_mhz = fp.fr_mhz; f_alms = fp.fr_alms;
              f_regs = fp.fr_regs; f_dsps = fp.fr_dsps;
              f_brams = fp.fr_brams }
          ~asic:{ Muir_trace.Report.a_ghz = ac.ar_ghz; a_area = ac.ar_area }
          ~total_cycles:r.stats.total_cycles b.p_circuit r.counters
      in
      Payload (Muir_trace.Report.to_json rep)
    with
    | Pipeline.Deadline st ->
      Failed
        ( "deadline", Some (Pipeline.stage_name st),
          Fmt.str "deadline expired before the %s stage"
            (Pipeline.stage_name st) )
    | Muir_sim.Sim.Deadlock m -> Failed ("deadlock", Some "simulate", m)
    | Muir_sim.Sim.Cycle_limit n ->
      Failed
        ("cycle_limit", Some "simulate", Fmt.str "no progress by cycle %d" n)
    | Invalid_argument m -> Failed ("bad_request", None, m)
    | e -> (
      match Muir_frontend.Frontend.describe_error e with
      | Some m -> Failed ("compile_error", Some "compile", m)
      | None -> Failed ("internal", None, Printexc.to_string e))
  in
  { w_out = out; w_secs = ctl.stage_seconds; w_counts = ctl.stage_counts }

(* ------------------------------------------------------------------ *)
(* Batch processing (coordinator side)                                 *)

type resolved =
  | Ready of { rv_key : string; rv_cfg : Config.t }
  | Unresolvable of string  (** message; code is always bad_request *)

let resolve (it : Proto.item) : resolved =
  match
    let cfg = item_config it in
    (item_key it.it_src cfg, cfg)
  with
  | key, cfg -> Ready { rv_key = key; rv_cfg = cfg }
  | exception Invalid_argument m -> Unresolvable m

(** Exactly one latency observation per item (see the module header):
    the invariant the CI smoke reconciles against [stats]. *)
let observe_item (t : t) ~(cached : bool) (secs : float) : unit =
  M.observe
    (if cached then t.sv_mx.x_item_cached else t.sv_mx.x_item_fresh)
    secs

(** Process one admitted [run] request: dedupe by key, answer from the
    cache, evaluate the remaining unique keys on the pool, fold fresh
    results (and stage timings) back, and assemble per-item results in
    request order. *)
let run_items ~(now : float) (t : t) (items : Proto.item list) :
    Proto.response =
  let clock () = Ob.now t.sv_obs in
  let req_id = Ob.span_id t.sv_obs in
  t.sv_requests <- t.sv_requests + 1;
  t.sv_items <- t.sv_items + List.length items;
  M.inc t.sv_mx.x_requests;
  M.add t.sv_mx.x_items (List.length items);
  Olog.event t.sv_obs.Ob.o_log "request"
    [ ("req", J.Int req_id); ("items", J.Int (List.length items)) ];
  let resolved = List.map (fun it -> (it, resolve it)) items in
  (* First pass: probe the cache, timing each probe on the obs clock. *)
  let probed =
    List.map
      (fun (it, rv) ->
        let t0 = clock () in
        let what =
          match rv with
          | Unresolvable m -> `Bad m
          | Ready { rv_key = key; rv_cfg = cfg } -> (
            match Rcache.find t.sv_rcache key with
            | Some payload -> `Hit (key, payload)
            | None -> `Miss (key, cfg))
        in
        (it, what, clock () -. t0))
      resolved
  in
  (* Each uncached key gets exactly one evaluation; the other items with
     that key answer from its result. The representative must be the
     least deadline-constrained item of the group — a dup replays the
     representative's outcome, so an aggressive deadline on one copy
     must not fail the unconstrained copies. *)
  let reps : (string, Proto.item) Hashtbl.t = Hashtbl.create 16 in
  let looser a b =
    match (a, b) with
    | None, _ -> true
    | _, None -> false
    | Some x, Some y -> x > y
  in
  List.iter
    (fun ((it : Proto.item), what, _) ->
      match what with
      | `Miss (key, _) -> (
        match Hashtbl.find_opt reps key with
        | Some (prev : Proto.item)
          when not (looser it.it_deadline_ms prev.it_deadline_ms) ->
          ()
        | _ -> Hashtbl.replace reps key it)
      | _ -> ())
    probed;
  let plan =
    List.map
      (fun ((it : Proto.item), what, dt) ->
        match what with
        | (`Bad _ | `Hit _) as w -> (it, w, dt)
        | `Miss (key, cfg) ->
          if Hashtbl.find reps key == it then (it, `Fresh (key, cfg), dt)
          else (it, `Dup key, dt))
      probed
  in
  let fresh =
    List.filter_map
      (function
        | it, `Fresh (key, cfg), _ ->
          let deadline =
            Option.map
              (fun ms -> now +. (float_of_int ms /. 1000.0))
              it.Proto.it_deadline_ms
          in
          Some (key, it, cfg, deadline)
        | _ -> None)
      plan
  in
  let eval_started = clock () in
  let results =
    Muir_dse.Pool.map ~jobs:t.sv_jobs
      (fun (_, it, cfg, deadline) -> eval_item ~now:clock ~deadline it cfg)
      fresh
  in
  (* Fold fresh results into the cache, the per-stage counters, the
     stage histograms and the span ring — coordinator only, same
     discipline as the explorer's memo table. *)
  let by_key = Hashtbl.create 16 in
  List.iter2
    (fun (key, it, _, _) (w : wres) ->
      Array.iteri
        (fun i s -> t.sv_stage_seconds.(i) <- t.sv_stage_seconds.(i) +. s)
        w.w_secs;
      Array.iteri
        (fun i n -> t.sv_stage_counts.(i) <- t.sv_stage_counts.(i) + n)
        w.w_counts;
      let stages =
        List.filter_map
          (fun st ->
            let i = Pipeline.stage_index st in
            if w.w_counts.(i) > 0 then begin
              M.observe t.sv_mx.x_stage.(i) w.w_secs.(i);
              Some (Pipeline.stage_name st, w.w_secs.(i))
            end
            else None)
          Pipeline.stages
      in
      let segs, dur = Span.layout stages in
      Span.push t.sv_obs.Ob.o_spans
        { Span.sp_id = Ob.span_id t.sv_obs; sp_name = item_label it;
          sp_cat = "serve.item"; sp_start = eval_started; sp_dur = dur;
          sp_segs = segs };
      (match w.w_out with
      | Payload p -> Rcache.add t.sv_rcache key p
      | Failed _ -> ());
      Hashtbl.replace by_key key (w.w_out, dur))
    fresh results;
  (* Second pass: per-item results in request order. *)
  let fresh_n = ref 0 and cached_n = ref 0 and err_n = ref 0 in
  let ok ~cached payload =
    t.sv_ok <- t.sv_ok + 1;
    M.inc t.sv_mx.x_ok;
    M.inc (if cached then t.sv_mx.x_cached else t.sv_mx.x_fresh);
    incr (if cached then cached_n else fresh_n);
    Proto.Ok_ { cached; report = Muir_trace.Json.parse payload }
  in
  let err code stage msg =
    t.sv_errors <- t.sv_errors + 1;
    M.inc (err_counter t code);
    incr err_n;
    Proto.Err { code; stage; msg }
  in
  let log_item (it : Proto.item) ~status ~cached ~secs extra =
    Olog.event t.sv_obs.Ob.o_log "evaluate"
      ([ ("req", J.Int req_id); ("id", J.Int it.Proto.it_id);
         ("item", J.Str (item_label it)); ("status", J.Str status);
         ("cached", J.Bool cached); ("secs", J.Float secs) ]
      @ extra)
  in
  let rs =
    List.map
      (fun ((it : Proto.item), what, probe_dt) ->
        let outcome =
          match what with
          | `Bad m ->
            observe_item t ~cached:false probe_dt;
            log_item it ~status:"error" ~cached:false ~secs:probe_dt
              [ ("code", J.Str "bad_request") ];
            err "bad_request" None m
          | `Hit (_, payload) ->
            observe_item t ~cached:true probe_dt;
            log_item it ~status:"ok" ~cached:true ~secs:probe_dt [];
            ok ~cached:true payload
          | `Fresh (key, _) -> (
            let out, dur = Hashtbl.find by_key key in
            let secs = probe_dt +. dur in
            observe_item t ~cached:false secs;
            match out with
            | Payload p ->
              log_item it ~status:"ok" ~cached:false ~secs [];
              ok ~cached:false p
            | Failed (code, stage, msg) ->
              log_item it ~status:"error" ~cached:false ~secs
                [ ("code", J.Str code) ];
              err code stage msg)
          | `Dup key -> (
            (* The representative ran in this very batch; replay it
               through the cache so the hit is counted. *)
            let t0 = clock () in
            let hit = Rcache.find t.sv_rcache key in
            let secs = probe_dt +. (clock () -. t0) in
            match hit with
            | Some payload ->
              observe_item t ~cached:true secs;
              log_item it ~status:"ok" ~cached:true ~secs [];
              ok ~cached:true payload
            | None -> (
              match Hashtbl.find by_key key with
              | Failed (code, stage, msg), _ ->
                observe_item t ~cached:true secs;
                log_item it ~status:"error" ~cached:true ~secs
                  [ ("code", J.Str code) ];
                err code stage msg
              | Payload p, _ ->
                observe_item t ~cached:true secs;
                log_item it ~status:"ok" ~cached:true ~secs [];
                ok ~cached:true p))
        in
        { Proto.rs_id = it.it_id; rs_outcome = outcome })
      plan
  in
  t.sv_fresh <- t.sv_fresh + !fresh_n;
  t.sv_cached <- t.sv_cached + !cached_n;
  Olog.event t.sv_obs.Ob.o_log "respond"
    [ ("req", J.Int req_id); ("ok", J.Int (!fresh_n + !cached_n));
      ("fresh", J.Int !fresh_n); ("cached", J.Int !cached_n);
      ("errors", J.Int !err_n) ];
  Proto.Results
    { results = rs; fresh = !fresh_n; cached = !cached_n; errors = !err_n }

let stats_response ?now (t : t) : Proto.response =
  let now = match now with Some n -> n | None -> Ob.now t.sv_obs in
  let cs = Rcache.stats t.sv_rcache in
  Proto.Stats_r
    { st_uptime_s = now -. t.sv_started;
      st_queue_depth = queue_depth t;
      st_draining = Atomic.get t.sv_stop;
      st_requests = t.sv_requests;
      st_items = t.sv_items;
      st_ok = t.sv_ok;
      st_errors = t.sv_errors;
      st_fresh = t.sv_fresh;
      st_cached = t.sv_cached;
      st_cache_hits = cs.hits;
      st_cache_misses = cs.misses;
      st_cache_entries = cs.entries;
      st_cache_corrupt = cs.corrupt;
      st_cache_disk_bytes = cs.disk_bytes;
      st_stages =
        List.map
          (fun st ->
            let i = Pipeline.stage_index st in
            { Proto.tg_stage = Pipeline.stage_name st;
              tg_count = t.sv_stage_counts.(i);
              tg_seconds = t.sv_stage_seconds.(i) })
          Pipeline.stages }

(** Refresh the scrape-time gauges (uptime, queue depth, cache state)
    and render the registry as Prometheus text. *)
let render_metrics ?now (t : t) : string =
  let now = match now with Some n -> n | None -> Ob.now t.sv_obs in
  let cs = Rcache.stats t.sv_rcache in
  M.set t.sv_mx.x_uptime (int_of_float (now -. t.sv_started));
  M.set t.sv_mx.x_queue_depth (queue_depth t);
  M.set t.sv_mx.x_draining (if Atomic.get t.sv_stop then 1 else 0);
  M.counter_set t.sv_mx.x_cache_hits cs.hits;
  M.counter_set t.sv_mx.x_cache_misses cs.misses;
  M.counter_set t.sv_mx.x_cache_corrupt cs.corrupt;
  M.set t.sv_mx.x_cache_entries cs.entries;
  M.set t.sv_mx.x_disk_bytes cs.disk_bytes;
  Muir_obs.Prom.render t.sv_obs.Ob.o_metrics

(** The whole request semantics, synchronously: what {!serve} answers
    after queueing, and what tests call directly.  [now] is the
    admission time (defaults to the handle's clock). *)
let handle ?now (t : t) (req : Proto.request) : Proto.response =
  let now = match now with Some n -> n | None -> Ob.now t.sv_obs in
  match req with
  | Proto.Run items -> run_items ~now t items
  | Proto.Stats -> stats_response ~now t
  | Proto.Metrics -> Proto.Metrics_r (render_metrics ~now t)
  | Proto.Shutdown ->
    request_drain t;
    Proto.Bye

(** Parse-and-handle one raw payload: malformed requests become the
    structured [bad_request] error instead of an exception. *)
let handle_payload ?now (t : t) (payload : string) : Proto.response =
  match Proto.request_of_string payload with
  | req -> handle ?now t req
  | exception Proto.Bad_request m ->
    Proto.Error_r { code = "bad_request"; msg = m }

(* ------------------------------------------------------------------ *)
(* The socket loop                                                     *)

let send (fd : Unix.file_descr) (resp : Proto.response) : bool =
  match Proto.write_frame fd (Proto.response_to_string resp) with
  | () -> true
  | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) -> false

type drain_summary = {
  dr_requests : int;
  dr_ok : int;
  dr_errors : int;
  dr_fresh : int;
  dr_cached : int;
}

(** Atomic snapshot write: temp file + rename in the target's
    directory, the same discipline as {!Rcache.write_atomic}. *)
let write_snapshot (path : string) (contents : string) : unit =
  let dir = Filename.dirname path in
  match Filename.temp_file ~temp_dir:dir "metrics" ".tmp" with
  | tmp ->
    let oc = open_out_bin tmp in
    output_string oc contents;
    close_out oc;
    (try Unix.rename tmp path
     with Unix.Unix_error _ -> (try Sys.remove tmp with Sys_error _ -> ()))
  | exception Sys_error _ -> ()

(** Listen on [socket] (an existing file there is replaced) and serve
    until a drain is requested — by {!request_drain} (the signal path)
    or a [shutdown] request.  Draining stops accepting connections and
    admissions, answers every already-admitted request, then closes
    everything and removes the socket file.

    [?metrics_file] keeps an atomically replaced Prometheus snapshot
    current (every [metrics_interval] seconds and once at drain) for
    sidecar scrapers that cannot speak the socket protocol;
    [?trace_file] writes the retained request spans as Chrome trace
    events at drain. *)
let serve ?(max_frame = Proto.default_max_frame) ?metrics_file
    ?(metrics_interval = 2.0) ?trace_file ~(socket : string) (t : t) :
    drain_summary =
  (* A peer that disconnects mid-response must not kill the daemon. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  if Sys.file_exists socket then Unix.unlink socket;
  let lfd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind lfd (Unix.ADDR_UNIX socket);
  Unix.listen lfd 16;
  let log = t.sv_obs.Ob.o_log in
  Olog.event log "listen"
    [ ("socket", J.Str socket); ("jobs", J.Int t.sv_jobs);
      ("queue_cap", J.Int t.sv_queue_cap) ];
  let clients = ref [] in
  let client_ids : (Unix.file_descr, int) Hashtbl.t = Hashtbl.create 8 in
  let next_client = ref 0 in
  let client_id fd =
    match Hashtbl.find_opt client_ids fd with Some i -> i | None -> -1
  in
  let close_client fd =
    Olog.event log "disconnect" [ ("client", J.Int (client_id fd)) ];
    Hashtbl.remove client_ids fd;
    clients := List.filter (fun c -> c <> fd) !clients;
    (try Unix.close fd with Unix.Unix_error _ -> ())
  in
  let drop_pending fd =
    (* A request whose client vanished still gets evaluated during
       drain only if its fd is alive; otherwise it is discarded. *)
    let keep = Queue.create () in
    Queue.iter (fun p -> if p.pd_fd <> fd then Queue.add p keep) t.sv_queue;
    Queue.clear t.sv_queue;
    Queue.transfer keep t.sv_queue
  in
  let reject fd code msg =
    M.inc (reject_counter t code);
    Olog.event log ~level:Olog.Warn "reject"
      [ ("client", J.Int (client_id fd)); ("code", J.Str code);
        ("msg", J.Str msg) ];
    ignore (send fd (Proto.Error_r { code; msg }))
  in
  let on_frame fd payload =
    match Proto.request_of_string payload with
    | exception Proto.Bad_request m -> reject fd "bad_request" m
    | Proto.Stats -> ignore (send fd (stats_response t))
    | Proto.Metrics -> ignore (send fd (Proto.Metrics_r (render_metrics t)))
    | Proto.Shutdown ->
      request_drain t;
      ignore (send fd Proto.Bye)
    | Proto.Run items ->
      if Atomic.get t.sv_stop then reject fd "draining" "daemon is draining"
      else if queue_depth t + List.length items > t.sv_queue_cap then
        reject fd "overloaded"
          (Fmt.str
             "admission queue full (%d queued + %d requested > cap %d)"
             (queue_depth t) (List.length items) t.sv_queue_cap)
      else begin
        Olog.event log "admit"
          [ ("client", J.Int (client_id fd));
            ("items", J.Int (List.length items));
            ("queue_depth", J.Int (queue_depth t + List.length items)) ];
        Queue.add
          { pd_fd = fd; pd_items = items; pd_admitted = Ob.now t.sv_obs }
          t.sv_queue
      end
  in
  let read_from fd =
    match Proto.read_frame ~max_frame fd with
    | None ->
      drop_pending fd;
      close_client fd
    | Some payload -> on_frame fd payload
    | exception Proto.Oversize n ->
      (* The header is sound even when the payload is not worth
         reading; answer, then close — the stream is unsynchronized. *)
      reject fd "oversize"
        (Fmt.str "frame of %d bytes exceeds cap %d" n max_frame);
      drop_pending fd;
      close_client fd
    | exception Proto.Frame_error _ ->
      drop_pending fd;
      close_client fd
    | exception Unix.Unix_error _ ->
      drop_pending fd;
      close_client fd
  in
  let process_one () =
    match Queue.take_opt t.sv_queue with
    | None -> ()
    | Some p ->
      let resp = run_items ~now:p.pd_admitted t p.pd_items in
      if not (send p.pd_fd resp) then close_client p.pd_fd
  in
  let snapshot () =
    match metrics_file with
    | None -> ()
    | Some path -> write_snapshot path (render_metrics t)
  in
  let last_snap = ref (Ob.now t.sv_obs) in
  let maybe_snapshot () =
    if metrics_file <> None then begin
      let now = Ob.now t.sv_obs in
      if now -. !last_snap >= metrics_interval then begin
        last_snap := now;
        snapshot ()
      end
    end
  in
  let draining () = Atomic.get t.sv_stop in
  while not (draining ()) do
    match Unix.select (lfd :: !clients) [] [] 0.2 with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | readable, _, _ ->
      List.iter
        (fun fd ->
          if fd = lfd then (
            match Unix.accept lfd with
            | cfd, _ ->
              Hashtbl.replace client_ids cfd !next_client;
              Olog.event log "accept" [ ("client", J.Int !next_client) ];
              incr next_client;
              clients := cfd :: !clients
            | exception Unix.Unix_error _ -> ())
          else read_from fd)
        readable;
      process_one ();
      maybe_snapshot ()
  done;
  (* Drain: no new connections or admissions; answer the queue. *)
  Olog.event log "drain" [ ("queued_items", J.Int (queue_depth t)) ];
  (try Unix.close lfd with Unix.Unix_error _ -> ());
  while not (Queue.is_empty t.sv_queue) do
    process_one ()
  done;
  List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
    !clients;
  (try Unix.unlink socket with Unix.Unix_error _ | Sys_error _ -> ());
  snapshot ();
  (match trace_file with
  | None -> ()
  | Some path ->
    write_snapshot path (Span.chrome (Span.items t.sv_obs.Ob.o_spans)));
  Olog.event log "stopped"
    [ ("requests", J.Int t.sv_requests); ("ok", J.Int t.sv_ok);
      ("errors", J.Int t.sv_errors) ];
  { dr_requests = t.sv_requests; dr_ok = t.sv_ok; dr_errors = t.sv_errors;
    dr_fresh = t.sv_fresh; dr_cached = t.sv_cached }
