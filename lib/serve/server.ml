(** The compile-and-simulate daemon.

    A {!t} owns the persistent result cache ({!Rcache}), an admission
    queue, and the counters behind the [stats] request.  {!handle} is
    the whole request semantics as a pure-ish function — the socket
    loop ({!serve}), the drain path and the tests all go through it —
    and {!serve} is a select-based single-threaded loop that owns the
    Unix-domain socket: it accepts connections, reads length-prefixed
    frames ({!Proto}), answers [stats]/[shutdown] inline, admits [run]
    requests against the queue bound, and processes one queued request
    per iteration.

    {2 Evaluation}

    A batch's items are resolved to content keys
    ([muir-serve-v1|<source-digest>|<Config.key>] — see {!item_key}),
    deduplicated, answered from the cache where possible, and the
    remaining unique keys fanned out over the OCaml-5 domain pool
    ({!Muir_dse.Pool}) through the staged {!Muir_pipeline.Pipeline}.
    Fresh results are folded into the cache by the coordinating domain
    only, so cache traffic is race-free by construction (the same
    discipline as the explorer).  Because run reports are
    deterministic, a cached answer is byte-identical to the fresh one
    it replays.

    {2 Failure containment}

    Everything that can go wrong inside an item — unknown workload or
    stack, a front-end error in inline source, a deadline expiring at
    a stage boundary, a simulator deadlock — becomes a structured
    per-item error in the response.  Nothing an item does terminates
    the daemon. *)

module Config = Muir_dse.Config
module Pipeline = Muir_pipeline.Pipeline
module W = Muir_workloads.Workloads

type t = {
  sv_rcache : Rcache.t;
  sv_jobs : int;            (** evaluation domains per batch *)
  sv_queue_cap : int;       (** max queued items across requests *)
  sv_started : float;
  sv_queue : pending Queue.t;
  sv_stop : bool Atomic.t;  (** drain requested (signal or shutdown op) *)
  mutable sv_requests : int;
  mutable sv_items : int;
  mutable sv_ok : int;
  mutable sv_errors : int;
  mutable sv_fresh : int;
  mutable sv_cached : int;
  sv_stage_seconds : float array;
  sv_stage_counts : int array;
}

and pending = {
  pd_fd : Unix.file_descr;
  pd_items : Proto.item list;
  pd_admitted : float;
}

let create ?cache_dir ?(jobs = 1) ?(queue_cap = 256) () : t =
  { sv_rcache = Rcache.create ?dir:cache_dir ();
    sv_jobs = max 1 jobs;
    sv_queue_cap = queue_cap;
    sv_started = Unix.gettimeofday ();
    sv_queue = Queue.create ();
    sv_stop = Atomic.make false;
    sv_requests = 0; sv_items = 0; sv_ok = 0; sv_errors = 0;
    sv_fresh = 0; sv_cached = 0;
    sv_stage_seconds = Array.make Pipeline.nstages 0.0;
    sv_stage_counts = Array.make Pipeline.nstages 0 }

(** Ask the serve loop to stop accepting work and drain what it has.
    Safe to call from a signal handler. *)
let request_drain (t : t) : unit = Atomic.set t.sv_stop true

let queue_depth (t : t) : int =
  Queue.fold (fun n p -> n + List.length p.pd_items) 0 t.sv_queue

(* ------------------------------------------------------------------ *)
(* Content keys                                                        *)

(** The cache key of one item: a protocol-versioned digest of the
    {e source} (workload text or inline text — so editing a bundled
    workload invalidates its entries) crossed with the configuration's
    content key.  [jobs] and [deadline_ms] are deliberately excluded:
    simulation is bit-identical for every job count, and a deadline
    changes when an answer arrives, never what it is. *)
let item_key (src : Proto.src) (cfg : Config.t) : string =
  let sd =
    match src with
    | Proto.Workload name ->
      let w = W.find name in
      Fmt.str "workload:%s:%s" name (Digest.to_hex (Digest.string w.source))
    | Proto.Inline { name; text } ->
      Fmt.str "inline:%s"
        (Digest.to_hex (Digest.string (name ^ "\x00" ^ text)))
  in
  Fmt.str "muir-serve-v1|%s|%s" sd (Config.key cfg)

(** The μopt configuration an item denotes: its stack's registry
    defaults, overridden by any explicit knobs.
    @raise Invalid_argument for unknown stacks *)
let item_config (it : Proto.item) : Config.t =
  let base = Config.predefined it.it_stack in
  Config.v
    ~tiles:(Option.value ~default:base.tiles it.it_tiles)
    ~banks:(Option.value ~default:base.banks it.it_banks)
    ~off:it.it_off it.it_stack

(* ------------------------------------------------------------------ *)
(* Item evaluation (worker side)                                       *)

type outcome =
  | Payload of string                          (** report JSON *)
  | Failed of string * string option * string  (** code, stage, msg *)

(** One worker-side evaluation: the full six-stage pipeline, every
    failure mode folded into a structured {!outcome}.  The stage
    timing arrays ride back for the coordinator to merge. *)
type wres = {
  w_out : outcome;
  w_secs : float array;
  w_counts : int array;
}

let eval_item ~(deadline : float option) (it : Proto.item)
    (cfg : Config.t) : wres =
  let ctl = Pipeline.ctl ?deadline () in
  let out =
    try
      let src =
        match it.it_src with
        | Proto.Workload name -> Pipeline.of_workload_name name
        | Proto.Inline { name; text } -> Pipeline.of_text ~name text
      in
      let b = Pipeline.build ~ctl ~passes:(Config.passes cfg) src in
      let m = Pipeline.model ~ctl b in
      let r = Pipeline.simulate ~ctl ~jobs:it.it_jobs b in
      let spec = Config.spec cfg in
      let knobs =
        (if spec.sp_uses_tiles then [ ("tiles", cfg.tiles) ] else [])
        @ if spec.sp_uses_banks then [ ("banks", cfg.banks) ] else []
      in
      let mem =
        List.map
          (fun (s : Muir_sim.Memsys.struct_stats) ->
            { Muir_trace.Report.m_name = s.ss_name;
              m_accesses = s.ss_accesses; m_hits = s.ss_hits;
              m_misses = s.ss_misses; m_conflicts = s.ss_conflicts })
          r.stats.mem
      in
      let fp = m.m_fpga and ac = m.m_asic in
      let rep =
        Muir_trace.Report.make ~workload:b.p_circuit.cname
          ~stack:(Config.label cfg) ~knobs ~mem
          ~fpga:
            { Muir_trace.Report.f_mhz = fp.fr_mhz; f_alms = fp.fr_alms;
              f_regs = fp.fr_regs; f_dsps = fp.fr_dsps;
              f_brams = fp.fr_brams }
          ~asic:{ Muir_trace.Report.a_ghz = ac.ar_ghz; a_area = ac.ar_area }
          ~total_cycles:r.stats.total_cycles b.p_circuit r.counters
      in
      Payload (Muir_trace.Report.to_json rep)
    with
    | Pipeline.Deadline st ->
      Failed
        ( "deadline", Some (Pipeline.stage_name st),
          Fmt.str "deadline expired before the %s stage"
            (Pipeline.stage_name st) )
    | Muir_sim.Sim.Deadlock m -> Failed ("deadlock", Some "simulate", m)
    | Muir_sim.Sim.Cycle_limit n ->
      Failed
        ("cycle_limit", Some "simulate", Fmt.str "no progress by cycle %d" n)
    | Invalid_argument m -> Failed ("bad_request", None, m)
    | e -> (
      match Muir_frontend.Frontend.describe_error e with
      | Some m -> Failed ("compile_error", Some "compile", m)
      | None -> Failed ("internal", None, Printexc.to_string e))
  in
  { w_out = out; w_secs = ctl.stage_seconds; w_counts = ctl.stage_counts }

(* ------------------------------------------------------------------ *)
(* Batch processing (coordinator side)                                 *)

type resolved =
  | Ready of { rv_key : string; rv_cfg : Config.t }
  | Unresolvable of string  (** message; code is always bad_request *)

let resolve (it : Proto.item) : resolved =
  match
    let cfg = item_config it in
    (item_key it.it_src cfg, cfg)
  with
  | key, cfg -> Ready { rv_key = key; rv_cfg = cfg }
  | exception Invalid_argument m -> Unresolvable m

(** Process one admitted [run] request: dedupe by key, answer from the
    cache, evaluate the remaining unique keys on the pool, fold fresh
    results (and stage timings) back, and assemble per-item results in
    request order. *)
let run_items ~(now : float) (t : t) (items : Proto.item list) :
    Proto.response =
  t.sv_requests <- t.sv_requests + 1;
  t.sv_items <- t.sv_items + List.length items;
  let resolved = List.map (fun it -> (it, resolve it)) items in
  (* First pass: probe the cache. *)
  let probed =
    List.map
      (fun (it, rv) ->
        match rv with
        | Unresolvable m -> (it, `Bad m)
        | Ready { rv_key = key; rv_cfg = cfg } -> (
          match Rcache.find t.sv_rcache key with
          | Some payload -> (it, `Hit (key, payload))
          | None -> (it, `Miss (key, cfg))))
      resolved
  in
  (* Each uncached key gets exactly one evaluation; the other items with
     that key answer from its result. The representative must be the
     least deadline-constrained item of the group — a dup replays the
     representative's outcome, so an aggressive deadline on one copy
     must not fail the unconstrained copies. *)
  let reps : (string, Proto.item) Hashtbl.t = Hashtbl.create 16 in
  let looser a b =
    match (a, b) with
    | None, _ -> true
    | _, None -> false
    | Some x, Some y -> x > y
  in
  List.iter
    (fun ((it : Proto.item), what) ->
      match what with
      | `Miss (key, _) -> (
        match Hashtbl.find_opt reps key with
        | Some (prev : Proto.item)
          when not (looser it.it_deadline_ms prev.it_deadline_ms) ->
          ()
        | _ -> Hashtbl.replace reps key it)
      | _ -> ())
    probed;
  let plan =
    List.map
      (fun ((it : Proto.item), what) ->
        match what with
        | (`Bad _ | `Hit _) as w -> (it, w)
        | `Miss (key, cfg) ->
          if Hashtbl.find reps key == it then (it, `Fresh (key, cfg))
          else (it, `Dup key))
      probed
  in
  let fresh =
    List.filter_map
      (function
        | it, `Fresh (key, cfg) ->
          let deadline =
            Option.map
              (fun ms -> now +. (float_of_int ms /. 1000.0))
              it.Proto.it_deadline_ms
          in
          Some (key, it, cfg, deadline)
        | _ -> None)
      plan
  in
  let results =
    Muir_dse.Pool.map ~jobs:t.sv_jobs
      (fun (_, it, cfg, deadline) -> eval_item ~deadline it cfg)
      fresh
  in
  (* Fold fresh results into the cache and the per-stage counters —
     coordinator only, same discipline as the explorer's memo table. *)
  let by_key = Hashtbl.create 16 in
  List.iter2
    (fun (key, _, _, _) (w : wres) ->
      Array.iteri
        (fun i s -> t.sv_stage_seconds.(i) <- t.sv_stage_seconds.(i) +. s)
        w.w_secs;
      Array.iteri
        (fun i n -> t.sv_stage_counts.(i) <- t.sv_stage_counts.(i) + n)
        w.w_counts;
      (match w.w_out with
      | Payload p -> Rcache.add t.sv_rcache key p
      | Failed _ -> ());
      Hashtbl.replace by_key key w.w_out)
    fresh results;
  (* Second pass: per-item results in request order. *)
  let fresh_n = ref 0 and cached_n = ref 0 and err_n = ref 0 in
  let ok ~cached payload =
    t.sv_ok <- t.sv_ok + 1;
    incr (if cached then cached_n else fresh_n);
    Proto.Ok_ { cached; report = Muir_trace.Json.parse payload }
  in
  let err code stage msg =
    t.sv_errors <- t.sv_errors + 1;
    incr err_n;
    Proto.Err { code; stage; msg }
  in
  let rs =
    List.map
      (fun ((it : Proto.item), what) ->
        let outcome =
          match what with
          | `Bad m -> err "bad_request" None m
          | `Hit (_, payload) -> ok ~cached:true payload
          | `Fresh (key, _) -> (
            match Hashtbl.find by_key key with
            | Payload p -> ok ~cached:false p
            | Failed (code, stage, msg) -> err code stage msg)
          | `Dup key -> (
            (* The representative ran in this very batch; replay it
               through the cache so the hit is counted. *)
            match Rcache.find t.sv_rcache key with
            | Some payload -> ok ~cached:true payload
            | None -> (
              match Hashtbl.find by_key key with
              | Failed (code, stage, msg) -> err code stage msg
              | Payload p -> ok ~cached:true p))
        in
        { Proto.rs_id = it.it_id; rs_outcome = outcome })
      plan
  in
  t.sv_fresh <- t.sv_fresh + !fresh_n;
  t.sv_cached <- t.sv_cached + !cached_n;
  Proto.Results
    { results = rs; fresh = !fresh_n; cached = !cached_n; errors = !err_n }

let stats_response ?(now = Unix.gettimeofday ()) (t : t) : Proto.response =
  let cs = Rcache.stats t.sv_rcache in
  Proto.Stats_r
    { st_uptime_s = now -. t.sv_started;
      st_queue_depth = queue_depth t;
      st_draining = Atomic.get t.sv_stop;
      st_requests = t.sv_requests;
      st_items = t.sv_items;
      st_ok = t.sv_ok;
      st_errors = t.sv_errors;
      st_fresh = t.sv_fresh;
      st_cached = t.sv_cached;
      st_cache_hits = cs.hits;
      st_cache_misses = cs.misses;
      st_cache_entries = cs.entries;
      st_cache_corrupt = cs.corrupt;
      st_stages =
        List.map
          (fun st ->
            let i = Pipeline.stage_index st in
            { Proto.tg_stage = Pipeline.stage_name st;
              tg_count = t.sv_stage_counts.(i);
              tg_seconds = t.sv_stage_seconds.(i) })
          Pipeline.stages }

(** The whole request semantics, synchronously: what {!serve} answers
    after queueing, and what tests call directly.  [now] is the
    admission time (defaults to the current clock). *)
let handle ?(now = Unix.gettimeofday ()) (t : t) (req : Proto.request) :
    Proto.response =
  match req with
  | Proto.Run items -> run_items ~now t items
  | Proto.Stats -> stats_response ~now t
  | Proto.Shutdown ->
    request_drain t;
    Proto.Bye

(** Parse-and-handle one raw payload: malformed requests become the
    structured [bad_request] error instead of an exception. *)
let handle_payload ?now (t : t) (payload : string) : Proto.response =
  match Proto.request_of_string payload with
  | req -> handle ?now t req
  | exception Proto.Bad_request m ->
    Proto.Error_r { code = "bad_request"; msg = m }

(* ------------------------------------------------------------------ *)
(* The socket loop                                                     *)

let send (fd : Unix.file_descr) (resp : Proto.response) : bool =
  match Proto.write_frame fd (Proto.response_to_string resp) with
  | () -> true
  | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) -> false

type drain_summary = {
  dr_requests : int;
  dr_ok : int;
  dr_errors : int;
  dr_fresh : int;
  dr_cached : int;
}

(** Listen on [socket] (an existing file there is replaced) and serve
    until a drain is requested — by {!request_drain} (the signal path)
    or a [shutdown] request.  Draining stops accepting connections and
    admissions, answers every already-admitted request, then closes
    everything and removes the socket file. *)
let serve ?(max_frame = Proto.default_max_frame) ~(socket : string) (t : t) :
    drain_summary =
  (* A peer that disconnects mid-response must not kill the daemon. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  if Sys.file_exists socket then Unix.unlink socket;
  let lfd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind lfd (Unix.ADDR_UNIX socket);
  Unix.listen lfd 16;
  let clients = ref [] in
  let close_client fd =
    clients := List.filter (fun c -> c <> fd) !clients;
    (try Unix.close fd with Unix.Unix_error _ -> ())
  in
  let drop_pending fd =
    (* A request whose client vanished still gets evaluated during
       drain only if its fd is alive; otherwise it is discarded. *)
    let keep = Queue.create () in
    Queue.iter (fun p -> if p.pd_fd <> fd then Queue.add p keep) t.sv_queue;
    Queue.clear t.sv_queue;
    Queue.transfer keep t.sv_queue
  in
  let on_frame fd payload =
    match Proto.request_of_string payload with
    | exception Proto.Bad_request m ->
      ignore (send fd (Proto.Error_r { code = "bad_request"; msg = m }))
    | Proto.Stats -> ignore (send fd (stats_response t))
    | Proto.Shutdown ->
      request_drain t;
      ignore (send fd Proto.Bye)
    | Proto.Run items ->
      if Atomic.get t.sv_stop then
        ignore
          (send fd
             (Proto.Error_r
                { code = "draining"; msg = "daemon is draining" }))
      else if queue_depth t + List.length items > t.sv_queue_cap then
        ignore
          (send fd
             (Proto.Error_r
                { code = "overloaded";
                  msg =
                    Fmt.str
                      "admission queue full (%d queued + %d requested > \
                       cap %d)"
                      (queue_depth t) (List.length items) t.sv_queue_cap }))
      else
        Queue.add
          { pd_fd = fd; pd_items = items;
            pd_admitted = Unix.gettimeofday () }
          t.sv_queue
  in
  let read_from fd =
    match Proto.read_frame ~max_frame fd with
    | None ->
      drop_pending fd;
      close_client fd
    | Some payload -> on_frame fd payload
    | exception Proto.Oversize n ->
      (* The header is sound even when the payload is not worth
         reading; answer, then close — the stream is unsynchronized. *)
      ignore
        (send fd
           (Proto.Error_r
              { code = "oversize";
                msg = Fmt.str "frame of %d bytes exceeds cap %d" n max_frame }));
      drop_pending fd;
      close_client fd
    | exception Proto.Frame_error _ ->
      drop_pending fd;
      close_client fd
    | exception Unix.Unix_error _ ->
      drop_pending fd;
      close_client fd
  in
  let process_one () =
    match Queue.take_opt t.sv_queue with
    | None -> ()
    | Some p ->
      let resp = run_items ~now:p.pd_admitted t p.pd_items in
      if not (send p.pd_fd resp) then close_client p.pd_fd
  in
  let draining () = Atomic.get t.sv_stop in
  while not (draining ()) do
    match Unix.select (lfd :: !clients) [] [] 0.2 with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | readable, _, _ ->
      List.iter
        (fun fd ->
          if fd = lfd then (
            match Unix.accept lfd with
            | cfd, _ -> clients := cfd :: !clients
            | exception Unix.Unix_error _ -> ())
          else read_from fd)
        readable;
      process_one ()
  done;
  (* Drain: no new connections or admissions; answer the queue. *)
  (try Unix.close lfd with Unix.Unix_error _ -> ());
  while not (Queue.is_empty t.sv_queue) do
    process_one ()
  done;
  List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
    !clients;
  (try Unix.unlink socket with Unix.Unix_error _ | Sys_error _ -> ());
  { dr_requests = t.sv_requests; dr_ok = t.sv_ok; dr_errors = t.sv_errors;
    dr_fresh = t.sv_fresh; dr_cached = t.sv_cached }
