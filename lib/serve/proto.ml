(** The serve wire protocol: length-prefixed JSON frames over a
    Unix-domain socket.

    {2 Framing}

    Every message is one frame: a 4-byte big-endian payload length
    followed by that many bytes of UTF-8 JSON.  A peer that closes the
    connection between frames is a clean EOF ({!read_frame} returns
    [None]); a connection that dies mid-frame raises {!Frame_error};
    a length header above the frame cap raises {!Oversize} — the
    server answers that one with a structured error before closing,
    because the header itself is trustworthy even when the advertised
    payload is not worth reading.

    {2 Requests}

    {v
    {"muirc":"serve-v1","op":"run","items":[ITEM, ...]}
    {"muirc":"serve-v1","op":"stats"}
    {"muirc":"serve-v1","op":"metrics"}
    {"muirc":"serve-v1","op":"shutdown"}
    v}

    An ITEM names its subject either as a bundled workload
    ({["workload":"gemm"]}) or as inline source
    ({["name":"my-kernel","source":"..."]}), plus an optional μopt
    configuration ([stack] from the registry, [tiles]/[banks]
    overriding that stack's defaults, [off] pass names to drop) and
    sim parameters ([jobs] — bit-identical for every value, so it is
    not part of the cache key — and [deadline_ms], a per-request
    deadline measured from admission).

    {2 Responses}

    {v
    {"op":"run","results":[RESULT, ...],"fresh":n,"cached":n,"errors":n}
    {"op":"stats", ...}
    {"op":"bye"}
    {"op":"error","code":"...","msg":"..."}
    v}

    A RESULT is either
    [{"id":i,"status":"ok","cached":bool,"report":REPORT}] with REPORT
    the schema-versioned run report of {!Muir_trace.Report}, or
    [{"id":i,"status":"error","code":"...","stage":...,"msg":"..."}].
    Request-level failures (malformed JSON, an oversize frame, an
    overloaded admission queue) come back as the [error] op; per-item
    failures (unknown workload, compile errors, deadline exceeded)
    come back inside [results] while the rest of the batch is served
    normally. *)

module J = Muir_trace.Json

let version = "serve-v1"

(** Frame cap: a request or response payload may not exceed this many
    bytes (16 MiB — a full 22-workload batch response is ~2 MiB). *)
let default_max_frame = 16 * 1024 * 1024

(* ------------------------------------------------------------------ *)
(* Framing                                                             *)

exception Frame_error of string
exception Oversize of int

let rec really_write (fd : Unix.file_descr) (b : Bytes.t) (off : int)
    (len : int) : unit =
  if len > 0 then begin
    let n =
      try Unix.write fd b off len with
      | Unix.Unix_error (Unix.EINTR, _, _) -> 0
    in
    really_write fd b (off + n) (len - n)
  end

let write_frame (fd : Unix.file_descr) (payload : string) : unit =
  let n = String.length payload in
  let b = Bytes.create (4 + n) in
  Bytes.set b 0 (Char.chr ((n lsr 24) land 0xff));
  Bytes.set b 1 (Char.chr ((n lsr 16) land 0xff));
  Bytes.set b 2 (Char.chr ((n lsr 8) land 0xff));
  Bytes.set b 3 (Char.chr (n land 0xff));
  Bytes.blit_string payload 0 b 4 n;
  really_write fd b 0 (4 + n)

(** Read exactly [len] bytes; [`Eof n] reports how many arrived before
    the peer closed. *)
let read_exact (fd : Unix.file_descr) (len : int) :
    [ `Ok of string | `Eof of int ] =
  let b = Bytes.create len in
  let rec go off =
    if off >= len then `Ok (Bytes.unsafe_to_string b)
    else
      let n =
        try Unix.read fd b off (len - off) with
        | Unix.Unix_error (Unix.EINTR, _, _) -> -1
      in
      if n = 0 then `Eof off
      else go (off + max 0 n)
  in
  go 0

(** Read one frame.  [None] on a clean EOF (no header bytes at all).
    @raise Frame_error on a truncated header or payload
    @raise Oversize when the header advertises more than [max_frame] *)
let read_frame ?(max_frame = default_max_frame) (fd : Unix.file_descr) :
    string option =
  match read_exact fd 4 with
  | `Eof 0 -> None
  | `Eof n -> raise (Frame_error (Fmt.str "truncated header (%d of 4 bytes)" n))
  | `Ok hdr ->
    let len =
      (Char.code hdr.[0] lsl 24)
      lor (Char.code hdr.[1] lsl 16)
      lor (Char.code hdr.[2] lsl 8)
      lor Char.code hdr.[3]
    in
    if len > max_frame then raise (Oversize len);
    if len = 0 then Some ""
    else (
      match read_exact fd len with
      | `Ok s -> Some s
      | `Eof n ->
        raise (Frame_error (Fmt.str "truncated frame (%d of %d bytes)" n len)))

(* ------------------------------------------------------------------ *)
(* Requests                                                            *)

type src =
  | Workload of string
  | Inline of { name : string; text : string }

type item = {
  it_id : int;
  it_src : src;
  it_stack : string;           (** registry stack name *)
  it_tiles : int option;       (** [None] = the stack's default *)
  it_banks : int option;
  it_off : string list;        (** pass names to drop from the stack *)
  it_deadline_ms : int option; (** budget measured from admission *)
  it_jobs : int;               (** simulator domains for this item *)
}

type request =
  | Run of item list
  | Stats
  | Metrics  (** Prometheus text exposition of the daemon's registry *)
  | Shutdown

exception Bad_request of string

let item_to_json (it : item) : J.t =
  let base =
    match it.it_src with
    | Workload w -> [ ("id", J.Int it.it_id); ("workload", J.Str w) ]
    | Inline { name; text } ->
      [ ("id", J.Int it.it_id); ("name", J.Str name); ("source", J.Str text) ]
  in
  let opt k v f = match v with None -> [] | Some x -> [ (k, f x) ] in
  J.Obj
    (base
    @ [ ("stack", J.Str it.it_stack) ]
    @ opt "tiles" it.it_tiles (fun n -> J.Int n)
    @ opt "banks" it.it_banks (fun n -> J.Int n)
    @ (if it.it_off = [] then []
       else [ ("off", J.Arr (List.map (fun o -> J.Str o) it.it_off)) ])
    @ opt "deadline_ms" it.it_deadline_ms (fun n -> J.Int n)
    @ if it.it_jobs = 1 then [] else [ ("jobs", J.Int it.it_jobs) ])

let request_to_json (r : request) : J.t =
  let op name rest = J.Obj (("muirc", J.Str version) :: ("op", J.Str name) :: rest) in
  match r with
  | Run items -> op "run" [ ("items", J.Arr (List.map item_to_json items)) ]
  | Stats -> op "stats" []
  | Metrics -> op "metrics" []
  | Shutdown -> op "shutdown" []

let bad fmt = Fmt.kstr (fun m -> raise (Bad_request m)) fmt

let jstr = function J.Str s -> s | _ -> bad "expected a string"
let jint = function J.Int i -> i | _ -> bad "expected an integer"

let item_of_json (j : J.t) : item =
  match j with
  | J.Obj _ ->
    let m k = J.member k j in
    let src =
      match (m "workload", m "source") with
      | Some w, None -> Workload (jstr w)
      | None, Some s ->
        let name =
          match m "name" with Some n -> jstr n | None -> "inline"
        in
        Inline { name; text = jstr s }
      | Some _, Some _ -> bad "item has both \"workload\" and \"source\""
      | None, None -> bad "item has neither \"workload\" nor \"source\""
    in
    { it_id = (match m "id" with Some i -> jint i | None -> bad "item missing \"id\"");
      it_src = src;
      it_stack = (match m "stack" with Some s -> jstr s | None -> "baseline");
      it_tiles = Option.map jint (m "tiles");
      it_banks = Option.map jint (m "banks");
      it_off =
        (match m "off" with
        | None -> []
        | Some (J.Arr os) -> List.map jstr os
        | Some _ -> bad "\"off\" must be an array of pass names");
      it_deadline_ms = Option.map jint (m "deadline_ms");
      it_jobs =
        (match m "jobs" with
        | None -> 1
        | Some n ->
          let n = jint n in
          if n < 1 then bad "\"jobs\" must be >= 1" else n) }
  | _ -> bad "item must be an object"

let items_of_json (j : J.t) : item list =
  match j with
  | J.Arr items -> List.map item_of_json items
  | _ -> bad "\"items\" must be an array"

let request_of_json (j : J.t) : request =
  (match J.member "muirc" j with
  | Some (J.Str v) when v = version -> ()
  | Some (J.Str v) -> bad "unsupported protocol version %S (want %s)" v version
  | _ -> bad "missing \"muirc\" protocol version field");
  match J.member "op" j with
  | Some (J.Str "run") -> (
    match J.member "items" j with
    | Some items -> Run (items_of_json items)
    | None -> bad "run request missing \"items\"")
  | Some (J.Str "stats") -> Stats
  | Some (J.Str "metrics") -> Metrics
  | Some (J.Str "shutdown") -> Shutdown
  | Some (J.Str op) -> bad "unknown op %S" op
  | _ -> bad "missing \"op\""

(** Parse a request payload.
    @raise Bad_request on malformed JSON or shape *)
let request_of_string (s : string) : request =
  match J.parse s with
  | j -> request_of_json j
  | exception J.Parse_error e -> bad "invalid JSON: %s" e

let request_to_string (r : request) : string = J.to_string (request_to_json r)

(* ------------------------------------------------------------------ *)
(* Responses                                                           *)

type result_ = {
  rs_id : int;
  rs_outcome : outcome;
}

and outcome =
  | Ok_ of { cached : bool; report : J.t }
  | Err of { code : string; stage : string option; msg : string }

type stage_stat = { tg_stage : string; tg_count : int; tg_seconds : float }

type stats_payload = {
  st_uptime_s : float;
  st_queue_depth : int;
  st_draining : bool;
  st_requests : int;
  st_items : int;
  st_ok : int;
  st_errors : int;
  st_fresh : int;
  st_cached : int;
  st_cache_hits : int;
  st_cache_misses : int;
  st_cache_entries : int;
  st_cache_corrupt : int;
  st_cache_disk_bytes : int;
  st_stages : stage_stat list;
}

type response =
  | Results of { results : result_ list; fresh : int; cached : int; errors : int }
  | Stats_r of stats_payload
  | Metrics_r of string  (** Prometheus text exposition, verbatim *)
  | Bye
  | Error_r of { code : string; msg : string }

let result_to_json (r : result_) : J.t =
  match r.rs_outcome with
  | Ok_ { cached; report } ->
    J.Obj
      [ ("id", J.Int r.rs_id); ("status", J.Str "ok");
        ("cached", J.Bool cached); ("report", report) ]
  | Err { code; stage; msg } ->
    J.Obj
      [ ("id", J.Int r.rs_id); ("status", J.Str "error");
        ("code", J.Str code);
        ("stage", match stage with Some s -> J.Str s | None -> J.Null);
        ("msg", J.Str msg) ]

let response_to_json (r : response) : J.t =
  match r with
  | Results { results; fresh; cached; errors } ->
    J.Obj
      [ ("op", J.Str "run");
        ("results", J.Arr (List.map result_to_json results));
        ("fresh", J.Int fresh); ("cached", J.Int cached);
        ("errors", J.Int errors) ]
  | Stats_r s ->
    J.Obj
      [ ("op", J.Str "stats");
        ("uptime_s", J.Float s.st_uptime_s);
        ("queue_depth", J.Int s.st_queue_depth);
        ("draining", J.Bool s.st_draining);
        ("requests", J.Int s.st_requests);
        ("items", J.Int s.st_items);
        ("ok", J.Int s.st_ok);
        ("errors", J.Int s.st_errors);
        ("fresh", J.Int s.st_fresh);
        ("cached", J.Int s.st_cached);
        ( "cache",
          J.Obj
            [ ("hits", J.Int s.st_cache_hits);
              ("misses", J.Int s.st_cache_misses);
              ("entries", J.Int s.st_cache_entries);
              ("corrupt", J.Int s.st_cache_corrupt);
              ("disk_bytes", J.Int s.st_cache_disk_bytes) ] );
        ( "stages",
          J.Arr
            (List.map
               (fun t ->
                 J.Obj
                   [ ("stage", J.Str t.tg_stage);
                     ("count", J.Int t.tg_count);
                     ("seconds", J.Float t.tg_seconds) ])
               s.st_stages) ) ]
  | Metrics_r text -> J.Obj [ ("op", J.Str "metrics"); ("text", J.Str text) ]
  | Bye -> J.Obj [ ("op", J.Str "bye") ]
  | Error_r { code; msg } ->
    J.Obj [ ("op", J.Str "error"); ("code", J.Str code); ("msg", J.Str msg) ]

exception Bad_response of string

let badr fmt = Fmt.kstr (fun m -> raise (Bad_response m)) fmt

let result_of_json (j : J.t) : result_ =
  let m k = J.member k j in
  let id = match m "id" with Some (J.Int i) -> i | _ -> badr "result missing id" in
  match m "status" with
  | Some (J.Str "ok") ->
    let cached =
      match m "cached" with Some (J.Bool b) -> b | _ -> false
    in
    let report =
      match m "report" with Some r -> r | None -> badr "ok result missing report"
    in
    { rs_id = id; rs_outcome = Ok_ { cached; report } }
  | Some (J.Str "error") ->
    { rs_id = id;
      rs_outcome =
        Err
          { code = (match m "code" with Some (J.Str c) -> c | _ -> "unknown");
            stage = (match m "stage" with Some (J.Str s) -> Some s | _ -> None);
            msg = (match m "msg" with Some (J.Str s) -> s | _ -> "") } }
  | _ -> badr "result missing status"

let response_of_json (j : J.t) : response =
  let m k = J.member k j in
  let num k d =
    match m k with
    | Some (J.Int i) -> i
    | Some (J.Float f) -> int_of_float f
    | _ -> d
  in
  match m "op" with
  | Some (J.Str "run") ->
    let results =
      match m "results" with
      | Some (J.Arr rs) -> List.map result_of_json rs
      | _ -> badr "run response missing results"
    in
    Results
      { results; fresh = num "fresh" 0; cached = num "cached" 0;
        errors = num "errors" 0 }
  | Some (J.Str "stats") ->
    let fnum k =
      match m k with
      | Some (J.Float f) -> f
      | Some (J.Int i) -> float_of_int i
      | _ -> 0.0
    in
    let cache k =
      match m "cache" with
      | Some c -> (
        match J.member k c with Some (J.Int i) -> i | _ -> 0)
      | None -> 0
    in
    let stages =
      match m "stages" with
      | Some (J.Arr ts) ->
        List.map
          (fun t ->
            { tg_stage =
                (match J.member "stage" t with Some (J.Str s) -> s | _ -> "?");
              tg_count =
                (match J.member "count" t with Some (J.Int i) -> i | _ -> 0);
              tg_seconds =
                (match J.member "seconds" t with
                | Some (J.Float f) -> f
                | Some (J.Int i) -> float_of_int i
                | _ -> 0.0) })
          ts
      | _ -> []
    in
    Stats_r
      { st_uptime_s = fnum "uptime_s";
        st_queue_depth = num "queue_depth" 0;
        st_draining =
          (match m "draining" with Some (J.Bool b) -> b | _ -> false);
        st_requests = num "requests" 0;
        st_items = num "items" 0;
        st_ok = num "ok" 0;
        st_errors = num "errors" 0;
        st_fresh = num "fresh" 0;
        st_cached = num "cached" 0;
        st_cache_hits = cache "hits";
        st_cache_misses = cache "misses";
        st_cache_entries = cache "entries";
        st_cache_corrupt = cache "corrupt";
        st_cache_disk_bytes = cache "disk_bytes";
        st_stages = stages }
  | Some (J.Str "metrics") ->
    Metrics_r
      (match m "text" with Some (J.Str t) -> t | _ -> badr "metrics response missing text")
  | Some (J.Str "bye") -> Bye
  | Some (J.Str "error") ->
    Error_r
      { code = (match m "code" with Some (J.Str c) -> c | _ -> "unknown");
        msg = (match m "msg" with Some (J.Str s) -> s | _ -> "") }
  | _ -> badr "response missing op"

let response_of_string (s : string) : response =
  match J.parse s with
  | j -> response_of_json j
  | exception J.Parse_error e -> badr "invalid JSON: %s" e

let response_to_string (r : response) : string = J.to_string (response_to_json r)
