(** Client side of the serve protocol: connect, one request/response
    round trip per call, over the same length-prefixed frames the
    daemon speaks. *)

exception Transport of string

let connect (socket : string) : Unix.file_descr =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_UNIX socket) with
  | () -> fd
  | exception Unix.Unix_error (e, _, _) ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    raise
      (Transport (Fmt.str "cannot connect to %s: %s" socket (Unix.error_message e)))

(** One round trip: send [req], block for the response frame. *)
let rpc ?max_frame (fd : Unix.file_descr) (req : Proto.request) :
    Proto.response =
  (match Proto.write_frame fd (Proto.request_to_string req) with
  | () -> ()
  | exception Unix.Unix_error (e, _, _) ->
    raise (Transport ("write: " ^ Unix.error_message e)));
  match Proto.read_frame ?max_frame fd with
  | Some payload -> (
    match Proto.response_of_string payload with
    | r -> r
    | exception Proto.Bad_response m ->
      raise (Transport ("malformed response: " ^ m)))
  | None -> raise (Transport "daemon closed the connection")
  | exception Proto.Frame_error m -> raise (Transport m)
  | exception Proto.Oversize n ->
    raise (Transport (Fmt.str "oversize response frame (%d bytes)" n))
  | exception Unix.Unix_error (e, _, _) ->
    raise (Transport ("read: " ^ Unix.error_message e))

let with_connection (socket : string) (f : Unix.file_descr -> 'a) : 'a =
  let fd = connect socket in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () -> f fd)
