(** The toolchain pipeline as a reusable staged value.

    Every consumer of the toolchain — [muirc simulate]/[profile]/
    [check], the design-space explorer, the serve daemon — runs the
    same sequence of stages:

      compile → build → optimize → lower → model → simulate

    This module is that sequence extracted once, so the stages are no
    longer re-inlined at each call site.  The products are explicit
    ({!built} carries the program, circuit and pass reports;
    {!modeled} the lowered design and both synthesis models;
    {!simulate} returns the simulator's result record unchanged), and
    every call site composes exactly the stages it needs: a static
    check stops after {!build}, the explorer adds {!model} before
    deciding whether to simulate, the daemon runs all six.

    {2 Stage control: timing and deadlines}

    An optional {!ctl} value threads two cross-cutting concerns
    through a pipeline run without touching any stage's logic:

    - {e per-stage timing} — each executed stage adds its wall-clock
      seconds and an invocation count to the [ctl]'s arrays (indexed
      by {!stage_index}), which is what the serve daemon's per-stage
      latency counters aggregate;
    - {e deadlines} — a [ctl] built with [?deadline] (an absolute
      [Unix.gettimeofday] timestamp) makes every stage boundary check
      the clock and raise {!Deadline} naming the stage that was about
      to run.  Deadlines are enforced {e at boundaries only}: a stage
      already running is never interrupted, so an expired request
      costs at most one more stage before it fails cleanly.

    Without a [ctl] the pipeline adds no timing calls at all — the
    CLI paths that existed before this module behave (and print)
    byte-identically. *)

module G = Muir_core.Graph
module W = Muir_workloads.Workloads

(* ------------------------------------------------------------------ *)
(* Stages                                                              *)

type stage = Compile | Build | Optimize | Lower | Model | Simulate

let stages = [ Compile; Build; Optimize; Lower; Model; Simulate ]
let nstages = 6

let stage_index = function
  | Compile -> 0
  | Build -> 1
  | Optimize -> 2
  | Lower -> 3
  | Model -> 4
  | Simulate -> 5

let stage_name = function
  | Compile -> "compile"
  | Build -> "build"
  | Optimize -> "optimize"
  | Lower -> "lower"
  | Model -> "model"
  | Simulate -> "simulate"

exception Deadline of stage
(** Raised at a stage boundary when the {!ctl}'s deadline has passed;
    carries the stage that was {e about} to run. *)

type ctl = {
  deadline : float option;     (** absolute time on the [now] clock *)
  now : unit -> float;         (** the clock; injectable for byte-stable tests *)
  stage_seconds : float array; (** wall seconds, indexed by {!stage_index} *)
  stage_counts : int array;    (** invocations, same indexing *)
}

let ctl ?deadline ?(now = Unix.gettimeofday) () : ctl =
  { deadline; now;
    stage_seconds = Array.make nstages 0.0;
    stage_counts = Array.make nstages 0 }

let seconds (c : ctl) (st : stage) : float =
  c.stage_seconds.(stage_index st)

(** Run one stage under an optional control: check the deadline at the
    boundary, execute, account the wall time. *)
let staged (c : ctl option) (st : stage) (f : unit -> 'a) : 'a =
  match c with
  | None -> f ()
  | Some c ->
    (match c.deadline with
    | Some d when c.now () > d -> raise (Deadline st)
    | _ -> ());
    let t0 = c.now () in
    let r = f () in
    let i = stage_index st in
    c.stage_seconds.(i) <- c.stage_seconds.(i) +. (c.now () -. t0);
    c.stage_counts.(i) <- c.stage_counts.(i) + 1;
    r

(* ------------------------------------------------------------------ *)
(* Sources                                                             *)

(** What to push through the pipeline: an optional circuit name and a
    thunk producing a fresh program.  The thunk runs inside the
    Compile stage — and therefore inside whatever domain runs the
    pipeline, so nothing mutable (program memory included) is shared
    across parallel evaluations. *)
type source = {
  src_name : string option;  (** circuit name; [None] = builder default *)
  src_load : unit -> Muir_ir.Program.t;
}

let of_text ~(name : string) (src : string) : source =
  { src_name = Some name;
    src_load = (fun () -> Muir_frontend.Frontend.compile src) }

let of_file (path : string) : source =
  { src_name = None;
    src_load =
      (fun () ->
        let ic = open_in_bin path in
        let n = in_channel_length ic in
        let s = really_input_string ic n in
        close_in ic;
        Muir_frontend.Frontend.compile s) }

let of_workload (w : W.t) : source =
  { src_name = Some w.wname; src_load = (fun () -> W.program w) }

(** @raise Invalid_argument for unknown workload names *)
let of_workload_name (name : string) : source = of_workload (W.find name)

(* ------------------------------------------------------------------ *)
(* Stage products                                                      *)

type built = {
  p_program : Muir_ir.Program.t;
  p_circuit : G.circuit;
  p_reports : Muir_opt.Pass.report list;  (** one per applied pass *)
}

(** Compile, (optionally) unroll + build the circuit, and run the
    μopt passes.  Three stages: Compile / Build / Optimize. *)
let build ?ctl ?(unroll = false) ?(passes = []) (src : source) : built =
  let program = staged ctl Compile src.src_load in
  let circuit =
    staged ctl Build (fun () ->
        if unroll then ignore (Muir_ir.Unroll.unroll program);
        Muir_core.Build.circuit ?name:src.src_name program)
  in
  let reports =
    staged ctl Optimize (fun () -> Muir_opt.Pass.run_all passes circuit)
  in
  { p_program = program; p_circuit = circuit; p_reports = reports }

type modeled = {
  m_design : Muir_rtl.Rtl.design;
  m_fpga : Muir_model.Model.fpga_report;
  m_asic : Muir_model.Model.asic_report;
}

(** Lower to the component-level design and run both synthesis
    models.  Two stages: Lower / Model. *)
let model ?ctl (b : built) : modeled =
  let design = staged ctl Lower (fun () -> Muir_rtl.Lower.design b.p_circuit) in
  let fpga, asic =
    staged ctl Model (fun () ->
        (Muir_model.Model.fpga design, Muir_model.Model.asic design))
  in
  { m_design = design; m_fpga = fpga; m_asic = asic }

(** Cycle-accurate simulation of the built circuit (the Simulate
    stage); all simulator options pass through unchanged. *)
let simulate ?ctl ?tracer ?args ?max_cycles ?deadlock_window ?(jobs = 1)
    (b : built) : Muir_sim.Sim.result =
  staged ctl Simulate (fun () ->
      Muir_sim.Sim.run ?tracer ?args ?max_cycles ?deadlock_window ~jobs
        b.p_circuit)
