(** Structural validation of μIR circuits.  μopt passes are expected
    to leave circuits valid; the test-suite runs this after every
    transformation. *)

module G = Graph

type error = { vwhere : string; vwhat : string }

let pp_error ppf e = Fmt.pf ppf "%s: %s" e.vwhere e.vwhat

let validate_task (c : G.circuit) (t : G.task) : error list =
  let errs = ref [] in
  let err fmt =
    Fmt.kstr (fun m -> errs := { vwhere = t.tname; vwhat = m } :: !errs) fmt
  in
  (* Unique node ids; index nodes by id while we're at it so the
     per-edge endpoint checks below are O(1), not a list scan. *)
  let by_id : (int, G.node) Hashtbl.t =
    Hashtbl.create (List.length t.nodes)
  in
  List.iter
    (fun (n : G.node) ->
      if Hashtbl.mem by_id n.nid then err "duplicate node id n%d" n.nid
      else Hashtbl.replace by_id n.nid n)
    t.nodes;
  (* Unique edge ids. *)
  let eids = Hashtbl.create (List.length t.edges) in
  List.iter
    (fun (e : G.edge) ->
      if Hashtbl.mem eids e.eid then err "duplicate edge id e%d" e.eid
      else Hashtbl.replace eids e.eid ())
    t.edges;
  let find nid = Hashtbl.find_opt by_id nid in
  (* Edges reference live endpoints and in-range wired ports. *)
  let in_use = Hashtbl.create 64 in
  List.iter
    (fun (e : G.edge) ->
      (match find (fst e.src) with
      | None -> err "edge e%d: source n%d missing" e.eid (fst e.src)
      | Some n ->
        let out = G.out_arity n.kind ~call_res:max_int in
        if snd e.src < 0 || snd e.src >= out then
          err "edge e%d: source port %d out of range for %s" e.eid
            (snd e.src) (G.kind_to_string n.kind));
      (match find (fst e.dst) with
      | None -> err "edge e%d: target n%d missing" e.eid (fst e.dst)
      | Some n ->
        if snd e.dst < 0 || snd e.dst >= Array.length n.ins then
          err "edge e%d: target port %d out of range (arity %d)" e.eid
            (snd e.dst) (Array.length n.ins)
        else begin
          (match n.ins.(snd e.dst) with
          | G.Swire -> ()
          | G.Simm _ ->
            err "edge e%d: target port n%d.%d is an immediate" e.eid
              (fst e.dst) (snd e.dst));
          if Hashtbl.mem in_use e.dst then
            err "input port n%d.%d driven twice" (fst e.dst) (snd e.dst)
          else Hashtbl.add in_use e.dst ()
        end);
      if e.capacity < 1 then err "edge e%d: capacity < 1" e.eid;
      if List.length e.initial > e.capacity then
        err "edge e%d: more initial tokens than capacity" e.eid)
    t.edges;
  (* Every wired (non-immediate) input port is driven. *)
  List.iter
    (fun (n : G.node) ->
      Array.iteri
        (fun i slot ->
          match slot with
          | G.Simm _ -> ()
          | G.Swire ->
            if not (Hashtbl.mem in_use (n.nid, i)) then
              err "input port n%d.%d (%s) is undriven" n.nid i
                (G.kind_to_string n.kind))
        n.ins)
    t.nodes;
  (* Node-kind specific rules. *)
  List.iter
    (fun (n : G.node) ->
      match n.kind with
      | G.MergeLoop -> (
        match
          List.find_opt (fun (e : G.edge) -> e.dst = (n.nid, 0)) t.edges
        with
        | Some e ->
          if e.initial <> [ Muir_ir.Types.VBool false ] then
            err "mu n%d: ctl edge must carry one initial false token" n.nid
        | None -> err "mu n%d: ctl port undriven" n.nid)
      | G.LiveIn i ->
        if i < 0 || i >= List.length t.arg_tys then
          err "livein index %d out of range" i
      | G.LiveOut i ->
        if i < 0 || i >= List.length t.res_tys then
          err "liveout index %d out of range" i
      | G.CallChild tid | G.SpawnChild tid -> (
        match List.find_opt (fun (x : G.task) -> x.tid = tid) c.tasks with
        | None -> err "call/spawn n%d: no task %d" n.nid tid
        | Some child ->
          let expected = List.length child.arg_tys in
          (* inputs: pred + args (+ trailing order tokens) *)
          if Array.length n.ins < expected then
            err "call/spawn n%d: %d inputs < child arity %d" n.nid
              (Array.length n.ins) expected;
          if not (List.mem tid t.children) then
            err "call/spawn n%d: %d not in children list" n.nid tid)
      | G.Merge k ->
        if Array.length n.ins <> 2 * k then
          err "merge n%d: arity %d, expected %d" n.nid (Array.length n.ins)
            (2 * k)
      | _ -> ())
    t.nodes;
  (* Every live-out index is produced exactly once. *)
  List.iteri
    (fun i _ ->
      let count =
        List.length
          (List.filter
             (fun (n : G.node) -> n.kind = G.LiveOut i)
             t.nodes)
      in
      if count <> 1 then err "liveout %d produced %d times" i count)
    t.res_tys;
  if t.tiles < 1 then err "tiles < 1";
  if t.queue_depth < 1 then err "queue depth < 1";
  (* Combinational (fused) edges must not form cycles. *)
  let comb_succ nid =
    List.filter_map
      (fun (e : G.edge) ->
        if fst e.src = nid && e.ekind = G.Comb then Some (fst e.dst) else None)
      t.edges
  in
  let color = Hashtbl.create 64 in
  let rec dfs nid =
    match Hashtbl.find_opt color nid with
    | Some `Done -> ()
    | Some `Active -> err "combinational cycle through n%d" nid
    | None ->
      Hashtbl.replace color nid `Active;
      List.iter dfs (comb_succ nid);
      Hashtbl.replace color nid `Done
  in
  List.iter (fun (n : G.node) -> dfs n.nid) t.nodes;
  List.rev !errs

let validate (c : G.circuit) : error list =
  let errs = ref [] in
  let err fmt =
    Fmt.kstr (fun m -> errs := { vwhere = c.cname; vwhat = m } :: !errs) fmt
  in
  (* Root exists. *)
  (match List.find_opt (fun (t : G.task) -> t.tid = c.root) c.tasks with
  | Some _ -> ()
  | None -> err "root task %d missing" c.root);
  (* Space map targets exist, and every space used by a memory node is
     bound (or defaults to space 0's structure). *)
  List.iter
    (fun (sp, sid) ->
      if not (List.exists (fun (s : G.struct_inst) -> s.sid = sid) c.structures)
      then err "space %d bound to missing structure %d" sp sid)
    c.space_map;
  if not (List.mem_assoc 0 c.space_map) then
    err "space 0 (global) must be bound to a structure";
  List.iter
    (fun t -> errs := validate_task c t @ !errs)
    c.tasks;
  List.rev !errs

let check_exn (c : G.circuit) : unit =
  match validate c with
  | [] -> ()
  | errs ->
    invalid_arg
      (Fmt.str "μIR validation failed:@,%a"
         Fmt.(list ~sep:cut pp_error)
         errs)
