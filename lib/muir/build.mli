(** Construction of the baseline μIR circuit from compiler IR
    (Algorithm 1 of the paper): one task block per function and per
    loop, each lowered to a predicated hyperblock dataflow, plus the
    default shared-cache memory system. *)

val task_of_loop_name : Muir_ir.Func.t -> Muir_ir.Func.loop_info -> string
(** The task name the builder assigns to a loop of [f] — the key that
    lets analyses relate {!Muir_ir.Func.loop_info} facts (trip counts,
    parallel markers) back to circuit tasks. *)

val circuit :
  ?entry:string -> ?name:string -> Muir_ir.Program.t -> Graph.circuit
(** Build the baseline circuit for [prog], rooted at [entry]
    (default ["main"]).  The result validates under {!Validate} and is
    ready for μopt passes, simulation, and lowering. *)
