(** Graphviz export of μIR circuits, one cluster per task block. *)

type heat = {
  h_node : Graph.task_id -> Graph.node_id -> (string * string) option;
      (** fill color and annotation line; [None] keeps static styling *)
  h_edge : Graph.task_id -> Graph.node_id -> string option;
      (** color for edges leaving the node *)
}
(** A profile-driven overlay, built by [Muir_trace.Profile.heat]. *)

val render : ?heat:heat -> Graph.circuit -> string
(** Render as a Graphviz digraph (pipe through [dot -Tsvg]).  With
    [?heat], nodes are recolored by fire count and annotated with
    their dominant stall cause. *)
